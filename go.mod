module adatm

go 1.22
