#!/bin/sh
# CI entry point: the gate every change must pass. Kept to the tier-1
# targets so a full run stays fast enough for pre-merge use.
set -eux

cd "$(dirname "$0")/.."

make build
make vet
make test
make test-race

# The CLI flag paths run under the race detector explicitly (they spawn the
# full decomposition pipeline), and every benchmark body executes once so
# bench code cannot bitrot silently.
go vet ./cmd/...
go test -race ./cmd/...
make bench-smoke
make obs-smoke
