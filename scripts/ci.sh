#!/bin/sh
# CI entry point: the gate every change must pass. Kept to the tier-1
# targets so a full run stays fast enough for pre-merge use.
set -eux

cd "$(dirname "$0")/.."

make build
make vet
make test
make test-race
