#!/bin/sh
# CI entry point: the gate every change must pass. Kept to the tier-1
# targets so a full run stays fast enough for pre-merge use.
set -eux

cd "$(dirname "$0")/.."

make build
make vet
make test
make test-race

# The CLI flag paths run under the race detector explicitly (they spawn the
# full decomposition pipeline), and every benchmark body executes once so
# bench code cannot bitrot silently.
go vet ./cmd/...
go test -race ./cmd/...

# The scatter-vs-privatize agreement suite runs again under the race detector
# at a forced multi-worker width: the privatized pool's epoch stamping and the
# tiled parallel reduction are the shared-state hot spots of the accum layer,
# and the high-contention short-mode tensor maximizes the interleavings.
GOMAXPROCS=4 go test -race -count=1 -run 'TestConformanceAccum' ./internal/engine/

# The swamp fixture drives the numerical-health probe with every sink wired
# (metrics, ledger, iteration stream) through a real CP-ALS run; the race run
# covers the probe's locking against the solver loop and the /iters readers.
go test -race -count=1 -run 'TestSwamp|TestServerIters' ./internal/health/ ./internal/obs/

# The distributed conformance suite (both transports, P in {2,4,7}, coo/csf/
# memo shard engines vs the single-node solver at 1e-12) and the transport
# fault-injection regressions run under the race detector: the SPMD workers,
# the TCP retransmit timers, and the shared metrics registry are all
# concurrent by construction.
go test -race -count=1 -run 'TestDistRun|TestDistFault|TestDistributedALS|TestTransport' ./internal/dist/

make bench-smoke
make obs-smoke
make ckpt-smoke
make dist-smoke
make perf-gate
