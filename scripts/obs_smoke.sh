#!/bin/sh
# Observability smoke test: boot cpd with the live debug server, scrape it
# while the server is held open after the run, and check the exposition
# carries the memo-engine counters. Exercises the full -listen/-hold/
# -tracefile wiring end to end on a tiny synthetic tensor.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/tensorgen" ./cmd/tensorgen
go build -o "$tmp/cpd" ./cmd/cpd

"$tmp/tensorgen" -dims 40x30x20x10 -nnz 4000 -skew 0.5,0.5,0.5,0.2 -seed 7 -out "$tmp/smoke.tns"

"$tmp/cpd" -in "$tmp/smoke.tns" -rank 4 -iters 3 -engine adaptive \
    -listen 127.0.0.1:0 -hold -tracefile "$tmp/trace.json" \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

# The resolved address is announced on stderr once the listener is up.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*debug server listening on http://##p' "$tmp/stderr" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: cpd exited early"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "obs-smoke: debug server never announced its address"; cat "$tmp/stderr"; exit 1; }

# Wait for the run to finish (-hold keeps the server up afterwards) so the
# scrape sees final counter values rather than a race with the run.
for _ in $(seq 1 300); do
    grep -q "holding debug server" "$tmp/stderr" && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: cpd exited before holding"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done

curl -fsS "http://$addr/healthz" | grep -q ok || { echo "obs-smoke: /healthz failed"; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmp/metrics"
for series in adatm_memo_hits_total adatm_memo_misses_total \
    adatm_cpd_phase_seconds_bucket adatm_cpd_iterations_total \
    adatm_par_chunk_imbalance_ratio adatm_go_goroutines; do
    grep -q "$series" "$tmp/metrics" || { echo "obs-smoke: /metrics missing $series"; cat "$tmp/metrics"; exit 1; }
done
curl -fsS "http://$addr/run" | grep -q '"done": *true' || { echo "obs-smoke: /run missing final snapshot"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# The Chrome trace must be valid JSON with the expected envelope.
grep -q '"traceEvents"' "$tmp/trace.json" || { echo "obs-smoke: trace file malformed"; exit 1; }
grep -q '"displayTimeUnit"' "$tmp/trace.json" || { echo "obs-smoke: trace file malformed"; exit 1; }

echo "obs-smoke: OK ($(wc -c <"$tmp/metrics") bytes of metrics, $(wc -c <"$tmp/trace.json") bytes of trace)"
