#!/bin/sh
# Observability smoke test: boot cpd with the live debug server, scrape it
# while the server is held open after the run, and check the exposition
# carries the memo-engine counters. Exercises the full -listen/-hold/
# -tracefile wiring end to end on a tiny synthetic tensor.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/tensorgen" ./cmd/tensorgen
go build -o "$tmp/cpd" ./cmd/cpd

"$tmp/tensorgen" -dims 40x30x20x10 -nnz 4000 -skew 0.5,0.5,0.5,0.2 -seed 7 -out "$tmp/smoke.tns"

"$tmp/cpd" -in "$tmp/smoke.tns" -rank 4 -iters 3 -engine adaptive \
    -listen 127.0.0.1:0 -hold -tracefile "$tmp/trace.json" \
    -audit -auditfile "$tmp/audit.jsonl" \
    -health -healthfile "$tmp/health.jsonl" \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

# The resolved address is announced on stderr once the listener is up.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*debug server listening on http://##p' "$tmp/stderr" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: cpd exited early"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "obs-smoke: debug server never announced its address"; cat "$tmp/stderr"; exit 1; }

# Wait for the run to finish (-hold keeps the server up afterwards) so the
# scrape sees final counter values rather than a race with the run.
for _ in $(seq 1 300); do
    grep -q "holding debug server" "$tmp/stderr" && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: cpd exited before holding"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done

curl -fsS "http://$addr/healthz" | grep -q ok || { echo "obs-smoke: /healthz failed"; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmp/metrics"
for series in adatm_memo_hits_total adatm_memo_misses_total \
    adatm_cpd_phase_seconds_bucket adatm_cpd_iterations_total \
    adatm_par_chunk_imbalance_ratio adatm_go_goroutines \
    adatm_build_info adatm_model_predicted_ops adatm_model_measured_ops \
    adatm_model_ops_relative_error adatm_model_top1_agreement \
    adatm_accum_strategy adatm_accum_reduce_seconds adatm_accum_pool_bytes \
    adatm_gc_pause_seconds_bucket adatm_gc_pause_seconds_count \
    adatm_health_state adatm_health_lambda_ratio adatm_health_max_kappa \
    adatm_health_max_congruence adatm_cpd_fit_delta_bucket; do
    grep -q "$series" "$tmp/metrics" || { echo "obs-smoke: /metrics missing $series"; cat "$tmp/metrics"; exit 1; }
done

# /timeseries must serve the background resource sampler's ring buffer with
# real samples (the run plus the hold window is far longer than one sampling
# interval).
curl -fsS "http://$addr/timeseries" >"$tmp/timeseries"
grep -q '"interval_ns"' "$tmp/timeseries" || { echo "obs-smoke: /timeseries missing interval"; cat "$tmp/timeseries"; exit 1; }
grep -q '"heap_alloc_bytes"' "$tmp/timeseries" || { echo "obs-smoke: /timeseries has no samples"; cat "$tmp/timeseries"; exit 1; }
grep -q '"goroutines"' "$tmp/timeseries" || { echo "obs-smoke: /timeseries samples missing goroutines"; cat "$tmp/timeseries"; exit 1; }
# The relative-error gauge must carry a finite value (the reconciler clamps
# degenerate measurements, so NaN/Inf in the exposition is a regression).
grep '^adatm_model_ops_relative_error' "$tmp/metrics" | grep -qiE 'nan|inf' \
    && { echo "obs-smoke: non-finite model relative error"; grep adatm_model "$tmp/metrics"; exit 1; }
curl -fsS "http://$addr/run" >"$tmp/run"
grep -q '"done": *true' "$tmp/run" || { echo "obs-smoke: /run missing final snapshot"; cat "$tmp/run"; exit 1; }
grep -q '"health"' "$tmp/run" || { echo "obs-smoke: /run missing health verdict"; cat "$tmp/run"; exit 1; }

# /iters must serve the retained per-iteration health stream: one sample per
# ALS iteration with the signal fields and a verdict.
curl -fsS "http://$addr/iters" >"$tmp/iters"
grep -q '"iter"' "$tmp/iters" || { echo "obs-smoke: /iters has no samples"; cat "$tmp/iters"; exit 1; }
grep -q '"state"' "$tmp/iters" || { echo "obs-smoke: /iters samples missing verdict"; cat "$tmp/iters"; exit 1; }
grep -q '"max_congruence"' "$tmp/iters" || { echo "obs-smoke: /iters samples missing signals"; cat "$tmp/iters"; exit 1; }

# /plan must serve the model-audit decision and its reconciliation: the
# predicted/measured ops pair with a finite relative error, and a verdict.
curl -fsS "http://$addr/plan" >"$tmp/plan"
grep -q '"chosen"' "$tmp/plan" || { echo "obs-smoke: /plan missing decision"; cat "$tmp/plan"; exit 1; }
grep -q '"name": *"ops_per_iter"' "$tmp/plan" || { echo "obs-smoke: /plan missing ops quantity"; cat "$tmp/plan"; exit 1; }
grep -q '"predicted"' "$tmp/plan" || { echo "obs-smoke: /plan missing predictions"; cat "$tmp/plan"; exit 1; }
grep -q '"measured"' "$tmp/plan" || { echo "obs-smoke: /plan missing measurements"; cat "$tmp/plan"; exit 1; }
grep -q '"rel_err"' "$tmp/plan" || { echo "obs-smoke: /plan missing relative errors"; cat "$tmp/plan"; exit 1; }
grep -q '"top1_agreement"' "$tmp/plan" || { echo "obs-smoke: /plan missing top-1 verdict"; cat "$tmp/plan"; exit 1; }
grep -q '"accum"' "$tmp/plan" || { echo "obs-smoke: /plan missing accumulation choices"; cat "$tmp/plan"; exit 1; }
grep -qiE '"rel_err": *"?(nan|-?inf)' "$tmp/plan" && { echo "obs-smoke: non-finite rel_err in /plan"; cat "$tmp/plan"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# The Chrome trace must be valid JSON with the expected envelope.
grep -q '"traceEvents"' "$tmp/trace.json" || { echo "obs-smoke: trace file malformed"; exit 1; }
grep -q '"displayTimeUnit"' "$tmp/trace.json" || { echo "obs-smoke: trace file malformed"; exit 1; }

# The -audit table must have reached stdout with a verdict line.
grep -q '^top-1: model' "$tmp/stdout" || { echo "obs-smoke: -audit table missing from stdout"; cat "$tmp/stdout"; exit 1; }

# The decision ledger must be valid JSONL (decision + chosen candidate per line).
go run ./scripts/jsonlcheck "$tmp/audit.jsonl" || { echo "obs-smoke: audit ledger invalid"; cat "$tmp/audit.jsonl"; exit 1; }

# The ledger must carry the probe's health.state lifecycle event (validated as
# JSONL by the jsonlcheck pass above).
grep -q '"health.state"' "$tmp/audit.jsonl" || { echo "obs-smoke: audit ledger missing health.state event"; cat "$tmp/audit.jsonl"; exit 1; }

# -healthfile must hold the per-iteration JSONL history with verdicts.
[ -s "$tmp/health.jsonl" ] || { echo "obs-smoke: healthfile empty"; exit 1; }
grep -q '"state"' "$tmp/health.jsonl" || { echo "obs-smoke: healthfile samples missing verdict"; cat "$tmp/health.jsonl"; exit 1; }

echo "obs-smoke: cpd phase OK ($(wc -c <"$tmp/metrics") bytes of metrics, $(wc -c <"$tmp/trace.json") bytes of trace, $(wc -l <"$tmp/audit.jsonl") ledger records, $(wc -l <"$tmp/health.jsonl") health samples)"

# ---- perfgate phase: the perf-trajectory pipeline end to end --------------
# One quick sample of one scenario, self-gated (identical sample sets can
# never regress, so the gate must pass), with the debug server held open so
# the adatm_perf_* series and /timeseries can be scraped afterwards.
go build -o "$tmp/perfgate" ./cmd/perfgate

"$tmp/perfgate" gate -self -quick -samples 1 -warmup 0 \
    -scenarios mttkrp/short3/coo/scatter \
    -listen 127.0.0.1:0 -hold -auditfile "$tmp/perf_ledger.jsonl" \
    >"$tmp/perf_stdout" 2>"$tmp/perf_stderr" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*debug server listening on http://##p' "$tmp/perf_stderr" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: perfgate exited early"; cat "$tmp/perf_stderr"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "obs-smoke: perfgate server never announced its address"; cat "$tmp/perf_stderr"; exit 1; }

for _ in $(seq 1 600); do
    grep -q "holding debug server" "$tmp/perf_stderr" && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: perfgate exited before holding"; cat "$tmp/perf_stderr"; exit 1; }
    sleep 0.1
done

curl -fsS "http://$addr/metrics" >"$tmp/perf_metrics"
for series in adatm_perf_suite_running adatm_perf_scenarios \
    adatm_perf_sample_seconds adatm_perf_samples_total adatm_perf_median_seconds; do
    grep -q "$series" "$tmp/perf_metrics" || { echo "obs-smoke: perfgate /metrics missing $series"; cat "$tmp/perf_metrics"; exit 1; }
done
curl -fsS "http://$addr/timeseries" >"$tmp/perf_timeseries"
grep -q '"heap_alloc_bytes"' "$tmp/perf_timeseries" \
    || { echo "obs-smoke: perfgate /timeseries has no samples"; cat "$tmp/perf_timeseries"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# The self-gate must have passed and the delta table must name the scenario.
grep -q "gate passed" "$tmp/perf_stderr" || { echo "obs-smoke: perf self-gate did not pass"; cat "$tmp/perf_stderr"; exit 1; }
grep -q "mttkrp/short3/coo/scatter" "$tmp/perf_stdout" || { echo "obs-smoke: perf table missing scenario"; cat "$tmp/perf_stdout"; exit 1; }

# The perf ledger must be valid JSONL carrying the perf.suite event.
go run ./scripts/jsonlcheck "$tmp/perf_ledger.jsonl" || { echo "obs-smoke: perf ledger invalid"; cat "$tmp/perf_ledger.jsonl"; exit 1; }
grep -q '"perf.suite"' "$tmp/perf_ledger.jsonl" || { echo "obs-smoke: perf ledger missing perf.suite event"; cat "$tmp/perf_ledger.jsonl"; exit 1; }

echo "obs-smoke: OK (perf phase: $(wc -c <"$tmp/perf_metrics") bytes of metrics)"
