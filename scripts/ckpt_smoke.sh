#!/bin/sh
# Checkpoint/resume smoke test: run cpd with per-iteration crash-safe
# checkpoints, SIGKILL it mid-run, resume from the newest checkpoint, and
# assert the resumed run reaches the uninterrupted run's fit to 1e-12 with
# the adatm_ckpt_* metrics on /metrics and rolling retention honored.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/tensorgen" ./cmd/tensorgen
go build -o "$tmp/cpd" ./cmd/cpd

"$tmp/tensorgen" -dims 80x60x40x20 -nnz 250000 -skew 0.5,0.5,0.5,0.2 -seed 11 -out "$tmp/smoke.tns"

# Single worker keeps the floating-point reduction order identical across
# runs, so the resumed trajectory is directly comparable to the reference.
run_flags="-rank 8 -iters 40 -tol 1e-300 -seed 4 -workers 1 -engine coo"

# Reference: the uninterrupted run.
"$tmp/cpd" -in "$tmp/smoke.tns" $run_flags -json >"$tmp/ref.json" 2>/dev/null

# Checkpointed run, killed hard (SIGKILL: no cleanup handler runs) once a
# few checkpoints exist.
"$tmp/cpd" -in "$tmp/smoke.tns" $run_flags \
    -checkpoint "$tmp/ck" -ckpt-every 1 -ckpt-retain 3 \
    >/dev/null 2>"$tmp/run.err" &
pid=$!
for _ in $(seq 1 600); do
    n=$(ls "$tmp/ck" 2>/dev/null | grep -c '^ckpt-' || true)
    [ "$n" -ge 3 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.02
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

n=$(ls "$tmp/ck" | grep -c '^ckpt-' || true)
[ "$n" -ge 1 ] || { echo "ckpt-smoke: no checkpoint written before the kill"; cat "$tmp/run.err"; exit 1; }
[ "$n" -le 3 ] || { echo "ckpt-smoke: retention exceeded: $n files"; ls "$tmp/ck"; exit 1; }
ls "$tmp/ck" | grep -v '^ckpt-' && { echo "ckpt-smoke: stray (torn?) file in checkpoint dir"; ls "$tmp/ck"; exit 1; }
resumed_from=$(ls "$tmp/ck" | tail -n1)

# Resume from the newest checkpoint, holding the debug server up so the
# adatm_ckpt_* series can be scraped after the run completes.
"$tmp/cpd" -in "$tmp/smoke.tns" $run_flags \
    -checkpoint "$tmp/ck" -ckpt-every 1 -ckpt-retain 3 -resume \
    -listen 127.0.0.1:0 -hold -json >"$tmp/resume.json" 2>"$tmp/resume.err" &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*debug server listening on http://##p' "$tmp/resume.err" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "ckpt-smoke: resume exited early"; cat "$tmp/resume.err"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "ckpt-smoke: debug server never announced its address"; cat "$tmp/resume.err"; exit 1; }
for _ in $(seq 1 600); do
    grep -q "holding debug server" "$tmp/resume.err" && break
    kill -0 "$pid" 2>/dev/null || { echo "ckpt-smoke: resume exited before holding"; cat "$tmp/resume.err"; exit 1; }
    sleep 0.1
done

curl -fsS "http://$addr/metrics" >"$tmp/metrics"
for series in adatm_ckpt_writes_total adatm_ckpt_bytes_total \
    adatm_ckpt_write_seconds adatm_ckpt_last_iter; do
    grep -q "$series" "$tmp/metrics" || { echo "ckpt-smoke: /metrics missing $series"; cat "$tmp/metrics"; exit 1; }
done

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# The resumed run must complete all iterations and land on the reference fit.
fit() { sed -n 's/^ *"fit": *\([^,]*\),*$/\1/p' "$1" | head -n1; }
iters() { sed -n 's/^ *"iters": *\([^,]*\),*$/\1/p' "$1" | head -n1; }
ref_fit=$(fit "$tmp/ref.json"); res_fit=$(fit "$tmp/resume.json")
[ -n "$ref_fit" ] && [ -n "$res_fit" ] || { echo "ckpt-smoke: missing fit in reports"; exit 1; }
[ "$(iters "$tmp/ref.json")" = "$(iters "$tmp/resume.json")" ] \
    || { echo "ckpt-smoke: iteration counts differ"; exit 1; }
awk -v a="$ref_fit" -v b="$res_fit" 'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= 1e-12) }' \
    || { echo "ckpt-smoke: resumed fit $res_fit != reference $ref_fit"; exit 1; }

# Rolling retention after the completed resume: exactly 3 checkpoints.
n=$(ls "$tmp/ck" | grep -c '^ckpt-' || true)
[ "$n" -eq 3 ] || { echo "ckpt-smoke: retention kept $n checkpoints, want 3"; ls "$tmp/ck"; exit 1; }

echo "ckpt-smoke: OK (SIGKILL survived; resumed from $resumed_from to fit $res_fit = reference)"
