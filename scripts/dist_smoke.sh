#!/bin/sh
# Distributed-solver smoke test: run cpd with -procs 2 over the TCP loopback
# transport, scrape the adatm_dist_* series from the held debug server, and
# require the partition decision in the audit ledger. Exercises the partition
# model, the real wire transport, and the dist metrics wiring end to end.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/tensorgen" ./cmd/tensorgen
go build -o "$tmp/cpd" ./cmd/cpd

"$tmp/tensorgen" -dims 24x24x24 -nnz 2000 -seed 11 -out "$tmp/dist.tns"

# The plan path must print the scored partitioner table without running.
"$tmp/cpd" -in "$tmp/dist.tns" -rank 4 -procs 2 -plan >"$tmp/plan" 2>/dev/null
grep -q "chosen" "$tmp/plan" || { echo "dist-smoke: -plan missing chosen marker"; cat "$tmp/plan"; exit 1; }

"$tmp/cpd" -in "$tmp/dist.tns" -rank 4 -iters 3 \
    -procs 2 -transport tcp \
    -listen 127.0.0.1:0 -hold \
    -auditfile "$tmp/audit.jsonl" \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

# The resolved address is announced on stderr once the listener is up.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*debug server listening on http://##p' "$tmp/stderr" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "dist-smoke: cpd exited early"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "dist-smoke: debug server never announced its address"; cat "$tmp/stderr"; exit 1; }

# Wait for the run to finish so the scrape sees final counter values.
for _ in $(seq 1 300); do
    grep -q "holding debug server" "$tmp/stderr" && break
    kill -0 "$pid" 2>/dev/null || { echo "dist-smoke: cpd exited before holding"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done

curl -fsS "http://$addr/metrics" >"$tmp/metrics"
for series in adatm_dist_volume_bytes adatm_dist_messages_total \
    adatm_dist_fold_seconds_total adatm_dist_retries_total; do
    grep -q "$series" "$tmp/metrics" || { echo "dist-smoke: /metrics missing $series"; cat "$tmp/metrics"; exit 1; }
done
# The series must carry the partition/transport labels the run resolved to.
grep -q 'adatm_dist_messages_total{partition="[a-z-]*",transport="tcp"}' "$tmp/metrics" \
    || { echo "dist-smoke: dist series missing partition/transport labels"; grep adatm_dist "$tmp/metrics"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# The run summary must report the dist line with nonzero traffic.
grep -q '^dist procs=2 ' "$tmp/stdout" || { echo "dist-smoke: stdout missing dist summary"; cat "$tmp/stdout"; exit 1; }
grep -q 'messages=0' "$tmp/stdout" && { echo "dist-smoke: P=2 run sent no messages"; cat "$tmp/stdout"; exit 1; }

# The decision ledger must be valid JSONL and carry the partition decision.
go run ./scripts/jsonlcheck "$tmp/audit.jsonl" || { echo "dist-smoke: audit ledger invalid"; cat "$tmp/audit.jsonl"; exit 1; }
grep -q '"dist.partition"' "$tmp/audit.jsonl" || { echo "dist-smoke: ledger missing dist.partition event"; cat "$tmp/audit.jsonl"; exit 1; }
grep -q '"partition_candidates"' "$tmp/audit.jsonl" || { echo "dist-smoke: ledger missing scored candidates"; cat "$tmp/audit.jsonl"; exit 1; }

echo "dist-smoke: OK ($(grep -c adatm_dist "$tmp/metrics") dist metric lines, $(wc -l <"$tmp/audit.jsonl") ledger records)"
