// Command jsonlcheck validates a model-audit decision ledger (JSONL): every
// line must parse as an audit.Record carrying a decision with a chosen
// candidate. Used by scripts/obs_smoke.sh so the smoke test needs no jq.
//
// Usage: go run ./scripts/jsonlcheck ledger.jsonl
package main

import (
	"fmt"
	"os"

	"adatm/internal/audit"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck <ledger.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		os.Exit(1)
	}
	defer f.Close()
	n, err := audit.ValidateLedger(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsonlcheck:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "jsonlcheck: ledger is empty")
		os.Exit(1)
	}
	fmt.Printf("jsonlcheck: %d valid records\n", n)
}
