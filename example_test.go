package adatm_test

import (
	"fmt"
	"log"

	"adatm"
)

// ExampleDecompose shows the one-call path: generate (or load) a sparse
// tensor and let the model-driven adaptive engine factorize it.
func ExampleDecompose() {
	x := adatm.Generate(adatm.GenSpec{
		Dims: []int{100, 80, 60},
		NNZ:  5000,
		Rank: 3, // plant a low-rank signal
		Seed: 1,
	})
	res, err := adatm.Decompose(x, adatm.Options{Rank: 8, MaxIters: 25, Tol: 1e-5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v components=%d\n", res.Converged, len(res.Lambda))
}

// ExamplePlanFor shows how to inspect the cost model's decision before
// running anything.
func ExamplePlanFor() {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{500, 400, 300, 200}, NNZ: 20000, Seed: 2})
	plan := adatm.PlanFor(x, 16, 256<<20) // 256 MiB auxiliary budget
	fmt.Println("chosen strategy:", plan.Chosen.Strategy)
	fmt.Println("predicted ops per iteration:", plan.Chosen.Pred.Ops)
}

// ExampleComplete shows the masked-completion path (ratings semantics:
// missing entries are unknown, not zero).
func ExampleComplete() {
	train := adatm.Generate(adatm.GenSpec{Dims: []int{200, 150, 20}, NNZ: 8000, Rank: 4, Seed: 3})
	model, err := adatm.Complete(train, adatm.CompleteOptions{Rank: 4, MaxIters: 20, Ridge: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed RMSE %.4f; prediction at (0,0,0): %.3f\n",
		model.RMSE, model.Predict([]adatm.Index{0, 0, 0}))
}

// ExampleNewEngine shows direct engine use for custom drivers: one MTTKRP
// with the CSF baseline.
func ExampleNewEngine() {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{50, 40, 30}, NNZ: 2000, Seed: 4})
	eng, err := adatm.NewEngine(x, adatm.EngineCSF, adatm.EngineConfig{Rank: 8})
	if err != nil {
		log.Fatal(err)
	}
	factors := adatm.NVecsInit(x, 8, 2, 1, 0)
	out := &adatm.Matrix{Rows: x.Dims[0], Cols: 8, Data: make([]float64, x.Dims[0]*8)}
	eng.MTTKRP(0, factors, out)
	fmt.Println("M has", out.Rows, "rows")
}
