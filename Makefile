# Development targets for the adatm reproduction.

GO ?= go

.PHONY: all build vet test test-race bench bench-smoke bench-kernels bench-mttkrp obs-smoke ckpt-smoke dist-smoke perf-baseline perf-gate ci fuzz experiments experiments-quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bitrotted benchmark code in CI
# without paying for real measurements. (This sweep includes the
# scatter-vs-privatize MTTKRP benchmarks behind bench-mttkrp.)
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# End-to-end check of the observability wiring: run cpd with the live debug
# server, scrape /metrics + /healthz + /run, and validate the trace export.
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end crash/resume check: SIGKILL a checkpointed cpd run mid-flight,
# resume it, and require the uninterrupted fit plus adatm_ckpt_* metrics.
ckpt-smoke:
	./scripts/ckpt_smoke.sh

# End-to-end distributed-solver check: a 2-process sharded run over the TCP
# loopback transport with the adatm_dist_* scrape and the ledger's
# dist.partition decision. See DESIGN.md §2j.
dist-smoke:
	./scripts/dist_smoke.sh

# Machine-readable microbenchmarks of the shared kernel layer. Written via
# temp file + rename so an interrupted run never truncates the committed file.
bench-kernels:
	$(GO) test -bench=Kernel -benchmem -json -run='^$$' ./internal/kernel/ > BENCH_kernels.json.tmp && mv BENCH_kernels.json.tmp BENCH_kernels.json

# Machine-readable MTTKRP accumulation benchmarks: scatter vs privatize vs
# auto, side by side, on a short-mode (contended) and a long-mode (sparse
# output) tensor. See DESIGN.md §2f for the expected crossover.
bench-mttkrp:
	$(GO) test -bench=MTTKRPAccum -benchmem -json -run='^$$' ./internal/engine/ > BENCH_6.json.tmp && mv BENCH_6.json.tmp BENCH_6.json

# Refresh the committed perf-trajectory baseline (DESIGN.md §2h): the full
# scenario registry at full scale, written atomically by perfgate itself.
perf-baseline:
	$(GO) run ./cmd/perfgate run -out BENCH_8.json

# Perf-pipeline smoke for CI: one quick sample of every scenario, gated
# against itself. Identical sample sets can never be a significant
# regression, so this must pass — it proves the measure/compare/gate path
# end to end without paying for a real baseline comparison.
perf-gate:
	$(GO) run ./cmd/perfgate gate -self -quick -samples 1

ci:
	./scripts/ci.sh

fuzz:
	$(GO) test -fuzz FuzzReadTNS -fuzztime 30s ./internal/tensor/

experiments:
	$(GO) run ./cmd/adabench

experiments-quick:
	$(GO) run ./cmd/adabench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/modelpick
	$(GO) run ./examples/recommender
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/completion

clean:
	$(GO) clean ./...
