package adatm_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adatm"
)

func TestDecomposeDistMatchesDecompose(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{14, 14, 14}, NNZ: 600, Seed: 650})
	opt := adatm.Options{Rank: 4, MaxIters: 5, Tol: 1e-14, Seed: 651, Engine: adatm.EngineCOO, TrackFit: true}
	want, err := adatm.Decompose(x, opt)
	if err != nil {
		t.Fatal(err)
	}

	var ledger bytes.Buffer
	rec := adatm.NewAuditRecorder(adatm.AuditConfig{Ledger: &ledger})
	dres, err := adatm.DecomposeDist(x, adatm.DistOptions{
		Rank: 4, MaxIters: 5, Tol: 1e-14, Seed: 651,
		Procs: 3, TrackFit: true, Audit: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Engine-level summation orders differ between the full-tensor engine
	// and the shard fold, so compare at the cross-engine tolerance (the
	// strict 1e-12 conformance suite lives in internal/dist).
	if math.Abs(dres.Fit-want.Fit) > 1e-9 {
		t.Errorf("dist fit %.12f vs single-node %.12f", dres.Fit, want.Fit)
	}
	if dres.Iters != want.Iters {
		t.Errorf("iters %d vs %d", dres.Iters, want.Iters)
	}
	if dres.Messages == 0 {
		t.Error("P=3 run sent no messages")
	}
	if !strings.Contains(ledger.String(), "dist.partition") {
		t.Errorf("audit ledger lacks the partition decision:\n%s", ledger.String())
	}

	// The converted Result supports Result-based consumers.
	res := adatm.DistResultToResult(dres)
	if res.Fit != dres.Fit || len(res.Factors) != 3 {
		t.Errorf("conversion dropped fields: %+v", res)
	}
	idx := []adatm.Index{0, 0, 0}
	_ = adatm.Reconstruct(res, idx)
}

func TestDecomposeDistOptionValidation(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{8, 8, 8}, NNZ: 120, Seed: 652})
	if _, err := adatm.DecomposeDist(x, adatm.DistOptions{Rank: 3, Partition: "bogus"}); err == nil {
		t.Error("unknown partition accepted")
	}
	if _, err := adatm.DecomposeDist(x, adatm.DistOptions{Rank: 3, Transport: "bogus"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := adatm.DecomposeDist(x, adatm.DistOptions{Rank: 3, Fault: &adatm.DistFault{DropProb: 1}}); err == nil {
		t.Error("fault injection on the chan transport accepted")
	}
	if _, err := adatm.DecomposeDist(nil, adatm.DistOptions{Rank: 3}); err == nil {
		t.Error("nil tensor accepted")
	}

	// Forced partitions and the TCP transport work end to end.
	for _, part := range []string{adatm.PartitionRandom, adatm.PartitionMediumGrain, adatm.PartitionFineGreedy} {
		if _, err := adatm.DecomposeDist(x, adatm.DistOptions{Rank: 3, MaxIters: 2, Procs: 2, Partition: part}); err != nil {
			t.Errorf("partition %s: %v", part, err)
		}
	}
	if _, err := adatm.DecomposeDist(x, adatm.DistOptions{Rank: 3, MaxIters: 2, Procs: 2, Transport: adatm.TransportTCP}); err != nil {
		t.Errorf("tcp transport: %v", err)
	}

	plan, err := adatm.PartitionPlanFor(x, 4, 3, 1)
	if err != nil || len(plan.Candidates) == 0 || plan.String() == "" {
		t.Errorf("PartitionPlanFor: %v %+v", err, plan)
	}
}
