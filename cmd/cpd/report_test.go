package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"adatm"
)

// The -json report must carry the per-phase breakdown, and the iteration
// phases must account for TotalTime to within 5%.
func TestWriteReportPhaseSum(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{50, 50, 50}, NNZ: 20000, Seed: 3})
	res, err := adatm.Decompose(x, adatm.Options{
		Rank: 8, MaxIters: 10, Tol: 1e-15, Seed: 1, Workers: 1,
		Engine: adatm.EngineCOO, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeReport(f, "coo", 8, res, nil, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Engine     string  `json:"engine"`
		Iters      int     `json:"iters"`
		Fit        float64 `json:"fit"`
		TotalNS    int64   `json:"total_ns"`
		PhaseSumNS int64   `json:"phase_sum_ns"`
		Stats      struct {
			Phases map[string]struct {
				TimeNS int64 `json:"time_ns"`
				Count  int64 `json:"count"`
				Ops    int64 `json:"ops"`
			} `json:"phases"`
			ModeMTTKRP []struct {
				TimeNS int64 `json:"time_ns"`
			} `json:"mode_mttkrp"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Engine != "coo" || rep.Iters != res.Iters {
		t.Errorf("report header mismatch: %+v", rep)
	}
	for _, name := range []string{"symbolic", "mttkrp", "gram", "solve", "normalize", "fit"} {
		if _, ok := rep.Stats.Phases[name]; !ok {
			t.Errorf("phase %q missing from report", name)
		}
	}
	if len(rep.Stats.ModeMTTKRP) != 3 {
		t.Errorf("mode_mttkrp has %d entries, want 3", len(rep.Stats.ModeMTTKRP))
	}
	if rep.Stats.Phases["mttkrp"].Ops == 0 {
		t.Error("mttkrp phase has zero ops")
	}
	// The breakdown must sum to TotalTime within 5%.
	if rep.PhaseSumNS > rep.TotalNS {
		t.Errorf("phase sum %d ns exceeds total %d ns", rep.PhaseSumNS, rep.TotalNS)
	}
	if float64(rep.PhaseSumNS) < 0.95*float64(rep.TotalNS) {
		t.Errorf("phase sum %d ns covers <95%% of total %d ns", rep.PhaseSumNS, rep.TotalNS)
	}
}

// A -health run's JSON report carries the final numerical-health verdict.
func TestWriteReportHealthVerdict(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{30, 30, 30}, NNZ: 5000, Seed: 3})
	probe := adatm.NewHealthProbe(adatm.HealthConfig{})
	res, err := adatm.Decompose(x, adatm.Options{
		Rank: 4, MaxIters: 5, Tol: 1e-12, Seed: 1, Workers: 1,
		Engine: adatm.EngineCOO, Health: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := probe.Summary()

	path := filepath.Join(t.TempDir(), "report.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeReport(f, "coo", 4, res, nil, &sum); err != nil {
		t.Fatal(err)
	}
	f.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Health *struct {
			State string `json:"state"`
			Iters int    `json:"iters"`
		} `json:"health"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Health == nil {
		t.Fatal("health verdict missing from -json report")
	}
	if rep.Health.State != "healthy" || rep.Health.Iters != res.Iters {
		t.Errorf("health verdict = %+v, want healthy over %d iters", rep.Health, res.Iters)
	}
}
