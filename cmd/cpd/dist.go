package main

import (
	"fmt"
	"os"

	"adatm"
)

// distFlags carries the CLI values the distributed run path needs.
type distFlags struct {
	rank, iters    int
	tol            float64
	seed           int64
	workers, procs int
	partition      string
	transport      string
	engine         string
	fittrace       bool
	jsonOut        bool
	outPfx         string
	modelPath      string
}

// metricsReg returns the run's metrics registry (nil-safe: nil when no
// -listen was given).
func (o *obsState) metricsReg() *adatm.Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// auditRec returns the run's audit recorder (nil-safe).
func (o *obsState) auditRec() *adatm.AuditRecorder {
	if o == nil {
		return nil
	}
	return o.audit
}

// runDist executes the sharded solver and reports through the same channels
// the single-node path uses (the dist result converts to a Result).
func runDist(x *adatm.Tensor, obsst *obsState, f distFlags) {
	dres, err := adatm.DecomposeDist(x, adatm.DistOptions{
		Rank: f.rank, MaxIters: f.iters, Tol: f.tol, Seed: f.seed, Workers: f.workers,
		Procs: f.procs, Partition: f.partition, Transport: f.transport,
		Engine: adatm.EngineKind(f.engine), TrackFit: f.fittrace,
		Metrics: obsst.metricsReg(), Audit: obsst.auditRec(),
	})
	if err != nil {
		fatal(err)
	}
	res := adatm.DistResultToResult(dres)

	if f.jsonOut {
		if err := writeReport(os.Stdout, f.engine, f.rank, res, obsst.latestAudit(), nil); err != nil {
			fatal(err)
		}
	} else {
		if f.fittrace {
			for i, fit := range res.FitTrace {
				fmt.Printf("iter %3d  fit %.8f\n", i+1, fit)
			}
		}
		fmt.Printf("engine=%s rank=%d iters=%d converged=%v fit=%.6f\n", f.engine, f.rank, res.Iters, res.Converged, res.Fit)
		fmt.Printf("total=%v mttkrp=%v (%.0f%%)\n", res.TotalTime.Round(1e6), res.MTTKRPTime.Round(1e6),
			100*float64(res.MTTKRPTime)/float64(res.TotalTime))
		fmt.Printf("dist procs=%d partition=%s transport=%s volume=%dB/iter messages=%d retries=%d\n",
			f.procs, f.partition, f.transport, dres.Comm.VolumeBytes(f.rank), dres.Messages, dres.Retries)
		fmt.Printf("lambda=%v\n", res.Lambda)
	}

	if f.modelPath != "" {
		if err := adatm.SaveModel(f.modelPath, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote model to %s\n", f.modelPath)
	}
	if f.outPfx != "" {
		if err := writeVector(f.outPfx+"_lambda.txt", res.Lambda); err != nil {
			fatal(err)
		}
		for m, fac := range res.Factors {
			if err := writeMatrix(fmt.Sprintf("%s_mode%d.txt", f.outPfx, m), fac); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d factor files with prefix %s\n", len(res.Factors)+1, f.outPfx)
	}
	obsst.finish(f.engine, f.rank, res)
}
