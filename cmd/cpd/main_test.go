package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adatm"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"":        0,
		"1024":    1024,
		"1KiB":    1 << 10,
		"512MiB":  512 << 20,
		"2GiB":    2 << 30,
		"1kb":     1000,
		"1.5MiB":  3 << 19,
		"0.5GiB":  1 << 29,
		" 10KiB ": 10 << 10,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%q: got %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"abc", "12XB", "MiB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestWriteMatrixAndVector(t *testing.T) {
	dir := t.TempDir()
	m := &adatm.Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	mpath := filepath.Join(dir, "m.txt")
	if err := writeMatrix(mpath, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || lines[0] != "1 2" || lines[1] != "3 4" {
		t.Errorf("matrix file: %q", string(data))
	}

	vpath := filepath.Join(dir, "v.txt")
	if err := writeVector(vpath, []float64{0.5, -1}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(vpath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "0.5\n-1" {
		t.Errorf("vector file: %q", string(data))
	}
}
