package main

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"adatm"
	"adatm/internal/obs"
)

// obsState bundles the optional observability wiring of one CLI run: the
// span tracer behind -tracefile and the metrics registry + live debug
// server behind -listen.
type obsState struct {
	tracer    *adatm.Tracer
	metrics   *adatm.Metrics
	server    *adatm.DebugServer
	tracePath string
	hold      bool
	started   time.Time
	done      bool // finish already ran (it is called from both the normal exit and fatal)
}

// runSnapshot is the JSON payload served at /run, refreshed after every
// completed ALS iteration and finalized when the run ends.
type runSnapshot struct {
	Engine    string  `json:"engine"`
	Rank      int     `json:"rank"`
	Iter      int     `json:"iter"`
	Fit       float64 `json:"fit"`
	FitDelta  float64 `json:"fit_delta"`
	ElapsedMS int64   `json:"elapsed_ms"`
	MTTKRPMS  int64   `json:"mttkrp_ms"`
	Done      bool    `json:"done"`
	Converged bool    `json:"converged"`
}

// setupObs builds the tracer/registry/server requested by the flags. Either
// feature may be absent; a nil *obsState (no flags set) disables everything.
func setupObs(tracePath, listen string, hold bool, workers int) (*obsState, error) {
	if tracePath == "" && listen == "" {
		return nil, nil
	}
	o := &obsState{tracePath: tracePath, hold: hold, started: time.Now()}
	if tracePath != "" {
		o.tracer = adatm.NewTracer(0)
		o.tracer.SetTrackName(0, "main")
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		for i := 1; i <= w; i++ {
			o.tracer.SetTrackName(int32(i), fmt.Sprintf("worker %d", i))
		}
		adatm.TraceChunks(o.tracer)
	}
	if listen != "" {
		o.metrics = adatm.NewMetrics()
		obs.RegisterRuntimeMetrics(o.metrics)
		srv, err := adatm.ServeDebug(listen, o.metrics)
		if err != nil {
			return nil, fmt.Errorf("debug server: %w", err)
		}
		o.server = srv
		o.metrics.PublishExpvar("adatm")
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s\n", srv.Addr())
	}
	return o, nil
}

// options fills the Tracer/Metrics fields of opt.
func (o *obsState) options(opt *adatm.Options) {
	if o == nil {
		return
	}
	opt.Tracer = o.tracer
	opt.Metrics = o.metrics
}

// progress wraps the per-iteration callback so /run always serves a live
// snapshot, chaining to inner (which may be nil).
func (o *obsState) progress(engName string, rank int, inner func(adatm.IterStats) bool) func(adatm.IterStats) bool {
	if o == nil || o.server == nil {
		return inner
	}
	return func(s adatm.IterStats) bool {
		o.server.SetRun(runSnapshot{
			Engine: engName, Rank: rank, Iter: s.Iter, Fit: s.Fit, FitDelta: s.FitDelta,
			ElapsedMS: s.Elapsed.Milliseconds(), MTTKRPMS: s.MTTKRPTime.Milliseconds(),
		})
		if inner != nil {
			return inner(s)
		}
		return true
	}
}

// finish writes the Chrome trace file, publishes the final /run snapshot,
// optionally holds the debug server open until SIGINT/SIGTERM, and shuts
// the server down. Idempotent and safe on a nil receiver. A nil result marks
// an error exit: the trace is still flushed (failed runs are exactly the ones
// worth tracing) but -hold is skipped so scripted runs don't hang on failure.
func (o *obsState) finish(engName string, rank int, res *adatm.Result) {
	if o == nil || o.done {
		return
	}
	o.done = true
	if o.tracer != nil {
		adatm.TraceChunks(nil)
		if err := writeTraceFile(o.tracePath, o.tracer); err != nil {
			fmt.Fprintln(os.Stderr, "cpd: trace export:", err)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (load in Perfetto)\n", o.tracer.Len(), o.tracePath)
		}
	}
	if o.server != nil {
		if res != nil {
			o.server.SetRun(runSnapshot{
				Engine: engName, Rank: rank, Iter: res.Iters, Fit: res.Fit,
				ElapsedMS: time.Since(o.started).Milliseconds(), MTTKRPMS: res.MTTKRPTime.Milliseconds(),
				Done: true, Converged: res.Converged,
			})
		}
		if o.hold && res != nil {
			fmt.Fprintf(os.Stderr, "run finished; holding debug server on http://%s (interrupt to exit)\n", o.server.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
		}
		o.server.Close()
	}
}

func writeTraceFile(path string, tr *adatm.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
