package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"adatm"
	"adatm/internal/obs"
)

// obsConfig collects the observability flags of one CLI run.
type obsConfig struct {
	tracePath  string  // -tracefile: Chrome trace-event output
	listen     string  // -listen: debug server address
	hold       bool    // -hold: keep the server up after the run
	workers    int     // parallel width (names the tracer tracks)
	audit      bool    // -audit: print the reconciliation table
	auditFile  string  // -auditfile: JSONL decision ledger
	auditWarn  float64 // -auditwarn: |rel err| warning threshold
	logJSON    bool    // -logjson: structured JSON log events to stderr
	logFile    string  // -logfile: structured JSON log events to this file
	health     bool    // -health: numerical-health probe + final verdict
	healthFile string  // -healthfile: per-iteration health history (JSONL)
}

// enabled reports whether any observability feature was requested.
func (c obsConfig) enabled() bool {
	return c.tracePath != "" || c.listen != "" || c.wantAudit() || c.wantHealth()
}

// wantAudit reports whether the run needs a model-audit recorder: any audit
// or logging flag, or a debug server (which serves the decision at /plan and
// the adatm_model_* gauges at /metrics).
func (c obsConfig) wantAudit() bool {
	return c.audit || c.auditFile != "" || c.logJSON || c.logFile != "" || c.listen != ""
}

// wantHealth reports whether the run needs a numerical-health probe: either
// health flag, or a debug server (which serves the iteration stream at
// /iters and the adatm_health_* gauges at /metrics).
func (c obsConfig) wantHealth() bool {
	return c.health || c.healthFile != "" || c.listen != ""
}

// obsState bundles the optional observability wiring of one CLI run: the
// span tracer behind -tracefile, the metrics registry + live debug server
// behind -listen, and the model-audit recorder behind -audit/-auditfile/
// -logjson/-logfile.
type obsState struct {
	tracer     *adatm.Tracer
	metrics    *adatm.Metrics
	server     *adatm.DebugServer
	sampler    *obs.Sampler
	audit      *adatm.AuditRecorder
	auditFile  *os.File
	logFile    *os.File
	health     *adatm.HealthProbe
	iterLog    *adatm.IterLog
	healthPath string
	tracePath  string
	hold       bool
	started    time.Time
	done       bool // finish already ran (it is called from both the normal exit and fatal)
}

// runSnapshot is the JSON payload served at /run, refreshed after every
// completed ALS iteration and finalized when the run ends.
type runSnapshot struct {
	Engine string `json:"engine"`
	Rank   int    `json:"rank"`
	Iter   int    `json:"iter"`
	// Fit is omitted (not zero) when no iteration ever computed one — a
	// NaN fit cannot be JSON-marshaled and a fake 0 would be misleading.
	Fit       *float64 `json:"fit,omitempty"`
	FitDelta  float64  `json:"fit_delta"`
	ElapsedMS int64    `json:"elapsed_ms"`
	MTTKRPMS  int64    `json:"mttkrp_ms"`
	Done      bool     `json:"done"`
	Converged bool     `json:"converged"`
	// Audit carries the model-audit decision and reconciliation in the final
	// snapshot of an audited run.
	Audit *adatm.AuditRecord `json:"audit,omitempty"`
	// Health carries the final numerical-health verdict of a -health run.
	Health *adatm.HealthSummary `json:"health,omitempty"`
}

// finiteFitPtr boxes a fit for JSON output, mapping NaN (a run stopped
// before its first fit computation) to nil/omitted — encoding/json cannot
// marshal NaN.
func finiteFitPtr(fit float64) *float64 {
	if math.IsNaN(fit) {
		return nil
	}
	return &fit
}

// setupObs builds the tracer/registry/server/audit-recorder requested by the
// flags. Any feature may be absent; a nil *obsState (no flags set) disables
// everything.
func setupObs(cfg obsConfig) (*obsState, error) {
	if !cfg.enabled() {
		return nil, nil
	}
	o := &obsState{tracePath: cfg.tracePath, hold: cfg.hold, started: time.Now()}
	if cfg.tracePath != "" {
		o.tracer = adatm.NewTracer(0)
		o.tracer.SetTrackName(0, "main")
		w := cfg.workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		for i := 1; i <= w; i++ {
			o.tracer.SetTrackName(int32(i), fmt.Sprintf("worker %d", i))
		}
		adatm.TraceChunks(o.tracer)
	}
	if cfg.listen != "" {
		o.metrics = adatm.NewMetrics()
		obs.RegisterRuntimeMetrics(o.metrics)
		srv, err := adatm.ServeDebug(cfg.listen, o.metrics)
		if err != nil {
			return nil, fmt.Errorf("debug server: %w", err)
		}
		o.server = srv
		o.metrics.PublishExpvar("adatm")
		// Background resource sampler behind /timeseries: heap, GC pauses,
		// and goroutine count over the run's lifetime.
		o.sampler = obs.NewSampler(0, 0)
		o.sampler.Start()
		srv.SetSampler(o.sampler)
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s\n", srv.Addr())
	}
	if cfg.wantAudit() {
		if err := o.setupAudit(cfg); err != nil {
			o.closeFiles()
			if o.server != nil {
				o.server.Close()
			}
			return nil, err
		}
	}
	if cfg.wantHealth() {
		// Built after the audit recorder so the probe's health.state events
		// land in the same ledger/log sinks as the model-audit records.
		o.iterLog = adatm.NewIterLog(0)
		o.health = adatm.NewHealthProbe(adatm.HealthConfig{
			Metrics: o.metrics, Audit: o.audit, Log: o.iterLog,
		})
		o.healthPath = cfg.healthFile
		if o.server != nil {
			o.server.SetIterLog(o.iterLog)
		}
	}
	return o, nil
}

// setupAudit wires the model-audit recorder: JSON logger (stderr or -logfile),
// JSONL ledger (-auditfile), the metrics registry, and the /plan publisher.
func (o *obsState) setupAudit(cfg obsConfig) error {
	acfg := adatm.AuditConfig{WarnThreshold: cfg.auditWarn, Metrics: o.metrics}
	if cfg.logJSON || cfg.logFile != "" {
		dest := io.Writer(os.Stderr)
		if cfg.logFile != "" {
			f, err := os.Create(cfg.logFile)
			if err != nil {
				return fmt.Errorf("logfile: %w", err)
			}
			o.logFile = f
			dest = f
		}
		acfg.Logger = slog.New(slog.NewJSONHandler(dest, nil))
	}
	if cfg.auditFile != "" {
		f, err := os.Create(cfg.auditFile)
		if err != nil {
			return fmt.Errorf("auditfile: %w", err)
		}
		o.auditFile = f
		acfg.Ledger = f
	}
	if srv := o.server; srv != nil {
		acfg.OnUpdate = func(rec adatm.AuditRecord) { srv.SetPlan(rec) }
	}
	o.audit = adatm.NewAuditRecorder(acfg)
	return nil
}

// options fills the Tracer/Metrics/Audit fields of opt.
func (o *obsState) options(opt *adatm.Options) {
	if o == nil {
		return
	}
	opt.Tracer = o.tracer
	opt.Metrics = o.metrics
	opt.Audit = o.audit
	opt.Health = o.health
}

// healthSummary returns the run's final health verdict, or nil when no
// probe was wired.
func (o *obsState) healthSummary() *adatm.HealthSummary {
	if o == nil || o.health == nil {
		return nil
	}
	s := o.health.Summary()
	return &s
}

// latestAudit returns the run's audit record, or nil when no decision was
// recorded (no recorder, or a non-adaptive engine ran).
func (o *obsState) latestAudit() *adatm.AuditRecord {
	if o == nil || o.audit == nil {
		return nil
	}
	rec := o.audit.Latest()
	if rec.Decision == nil {
		return nil
	}
	return &rec
}

// progress wraps the per-iteration callback so /run always serves a live
// snapshot, chaining to inner (which may be nil).
func (o *obsState) progress(engName string, rank int, inner func(adatm.IterStats) bool) func(adatm.IterStats) bool {
	if o == nil || o.server == nil {
		return inner
	}
	return func(s adatm.IterStats) bool {
		o.server.SetRun(runSnapshot{
			Engine: engName, Rank: rank, Iter: s.Iter, Fit: finiteFitPtr(s.Fit), FitDelta: s.FitDelta,
			ElapsedMS: s.Elapsed.Milliseconds(), MTTKRPMS: s.MTTKRPTime.Milliseconds(),
		})
		if inner != nil {
			return inner(s)
		}
		return true
	}
}

// finish writes the Chrome trace file, publishes the final /run snapshot,
// optionally holds the debug server open until SIGINT/SIGTERM, shuts the
// server down, and closes the audit/log files. Idempotent and safe on a nil
// receiver. A nil result marks an error exit: the trace is still flushed
// (failed runs are exactly the ones worth tracing) but -hold is skipped so
// scripted runs don't hang on failure.
func (o *obsState) finish(engName string, rank int, res *adatm.Result) {
	if o == nil || o.done {
		return
	}
	o.done = true
	// Seal the iteration stream first so /iters?follow=1 clients terminate
	// (the snapshot stays served through any -hold window), then dump the
	// retained history to -healthfile — on error exits too, since a sick
	// run's trajectory is exactly what the file is for.
	o.iterLog.Close()
	if o.healthPath != "" && o.iterLog != nil {
		if err := writeIterLog(o.healthPath, o.iterLog); err != nil {
			fmt.Fprintln(os.Stderr, "cpd: healthfile:", err)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d health samples to %s\n", o.iterLog.Seq(), o.healthPath)
		}
	}
	if o.tracer != nil {
		adatm.TraceChunks(nil)
		if err := writeTraceFile(o.tracePath, o.tracer); err != nil {
			fmt.Fprintln(os.Stderr, "cpd: trace export:", err)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (load in Perfetto)\n", o.tracer.Len(), o.tracePath)
		}
	}
	if o.server != nil {
		if res != nil {
			o.server.SetRun(runSnapshot{
				Engine: engName, Rank: rank, Iter: res.Iters, Fit: finiteFitPtr(res.Fit),
				ElapsedMS: time.Since(o.started).Milliseconds(), MTTKRPMS: res.MTTKRPTime.Milliseconds(),
				Done: true, Converged: res.Converged,
				Audit:  o.latestAudit(),
				Health: o.healthSummary(),
			})
		}
		if o.hold && res != nil {
			fmt.Fprintf(os.Stderr, "run finished; holding debug server on http://%s (interrupt to exit)\n", o.server.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
		}
		// Stop after -hold so /timeseries keeps sampling while held.
		o.sampler.Stop()
		o.server.Close()
	}
	o.closeFiles()
}

// closeFiles closes the -auditfile and -logfile handles (nil-safe).
func (o *obsState) closeFiles() {
	if o.auditFile != nil {
		o.auditFile.Close()
		o.auditFile = nil
	}
	if o.logFile != nil {
		o.logFile.Close()
		o.logFile = nil
	}
}

// writeIterLog dumps the retained iteration-health history as JSONL, one
// IterSample per line (the same schema the /iters stream serves).
func writeIterLog(path string, l *adatm.IterLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, s := range l.Snapshot() {
		if err := enc.Encode(s); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func writeTraceFile(path string, tr *adatm.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
