// Command cpd computes a sparse CP decomposition of a FROSTT-format tensor.
//
// Usage:
//
//	cpd -in tensor.tns -rank 16                      # adaptive engine
//	cpd -in tensor.tns -rank 16 -engine csf          # pick a kernel
//	cpd -in tensor.tns -rank 16 -budget 512MiB       # cap memoization memory
//	cpd -in tensor.tns -rank 16 -out factors         # write factors_mode<k>.txt
//	cpd -in tensor.tns -plan                         # print the model's plan only
//	cpd -in tensor.tns -rank 16 -checkpoint ck       # crash-safe checkpoints
//	cpd -in tensor.tns -rank 16 -checkpoint ck -resume   # continue a killed run
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adatm"
)

func main() {
	var (
		in         = flag.String("in", "", "input tensor (.tns or .tns.gz), required")
		rank       = flag.Int("rank", 16, "decomposition rank")
		iters      = flag.Int("iters", 50, "maximum ALS iterations")
		tol        = flag.Float64("tol", 1e-5, "fit-change convergence tolerance")
		seed       = flag.Int64("seed", 1, "factor initialization seed")
		workers    = flag.Int("workers", 0, "parallel width (0 = GOMAXPROCS)")
		engName    = flag.String("engine", "adaptive", "engine: coo, csf, csf-one, hicoo, memo-flat, memo-2group, memo-balanced, adaptive")
		budget     = flag.String("budget", "", "memory budget for the adaptive engine, e.g. 512MiB, 2GiB")
		accumFlag  = flag.String("accum", "auto", "MTTKRP output accumulation: auto (model decides per mode), scatter, privatize")
		outPfx     = flag.String("out", "", "write factor matrices to <out>_mode<k>.txt and lambda to <out>_lambda.txt")
		plan       = flag.Bool("plan", false, "print the model-driven plan and exit")
		fittrace   = flag.Bool("fittrace", false, "print the fit after every iteration")
		jsonOut    = flag.Bool("json", false, "emit a JSON run report (with per-phase breakdown) to stdout")
		pprofOut   = flag.String("pprof", "", "write a CPU profile to this file")
		rtTrace    = flag.String("runtimetrace", "", "write a Go runtime execution trace to this file")
		traceOut   = flag.String("trace", "", "deprecated alias for -runtimetrace")
		tracefile  = flag.String("tracefile", "", "write a Chrome trace-event JSON of CP-ALS spans (load in Perfetto)")
		listen     = flag.String("listen", "", "serve /metrics, /healthz, /run, /plan, /debug/pprof on this address (e.g. :9090)")
		hold       = flag.Bool("hold", false, "with -listen: keep the debug server up after the run until interrupted")
		auditRun   = flag.Bool("audit", false, "reconcile the cost model's predictions against the measured run and print the table (adaptive engine)")
		auditFile  = flag.String("auditfile", "", "append the model-audit decision ledger (JSONL) to this file")
		auditWarn  = flag.Float64("auditwarn", 0.25, "model-audit |relative error| warning threshold")
		logJSON    = flag.Bool("logjson", false, "emit structured JSON log events (model selection, reconciliation) to stderr")
		logFile    = flag.String("logfile", "", "write structured JSON log events to this file instead of stderr")
		healthRun  = flag.Bool("health", false, "track per-iteration numerical health (swamp/stall/conditioning) and print the final verdict (standard CP-ALS only)")
		healthFile = flag.String("healthfile", "", "write the per-iteration health history (JSONL, /iters schema) to this file")
		timeout    = flag.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
		progress   = flag.Bool("progress", false, "print per-iteration progress to stderr")
		ridge      = flag.Float64("ridge", 0, "Tikhonov regularization weight")
		nonneg     = flag.Bool("nonneg", false, "constrain factors to be non-negative")
		complete   = flag.Bool("complete", false, "masked completion: fit observed entries only (ratings semantics)")
		apr        = flag.Bool("apr", false, "Poisson CP (CP-APR): maximize Poisson likelihood for count data")
		modelPath  = flag.String("model", "", "write the fitted model (lambda + factors) to this JSON file")
		procs      = flag.Int("procs", 1, "simulated process count; > 1 runs the distributed sharded solver")
		partition  = flag.String("partition", "auto", "with -procs > 1: nonzero partitioner: auto (model decides), random, medium-grain, fine-greedy")
		transport  = flag.String("transport", "chan", "with -procs > 1: transport: chan (deterministic in-process), tcp (loopback TCP)")
		ckptDir    = flag.String("checkpoint", "", "write crash-safe checkpoints to this directory during the run (standard CP-ALS only)")
		ckptEvery  = flag.String("ckpt-every", "1", "checkpoint cadence: an iteration count (e.g. 5) or a wall-clock duration (e.g. 30s)")
		ckptKeep   = flag.Int("ckpt-retain", 3, "rolling retention: keep this many newest checkpoints (0 = keep all)")
		resume     = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint instead of starting fresh")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cpd: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "cpd: -trace is deprecated; use -runtimetrace")
		if *rtTrace == "" {
			*rtTrace = *traceOut
		}
	}
	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		fatal(err)
	}
	accumStrat, err := adatm.ParseAccumStrategy(*accumFlag)
	if err != nil {
		fatal(err)
	}
	stopProf, err := startProfiling(*pprofOut, *rtTrace)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	fatalCleanup = stopProf // defers don't run through os.Exit; flush profiles on fatal too
	x, err := adatm.Load(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s\n", x)

	if *plan {
		if *procs > 1 {
			pp, err := adatm.PartitionPlanFor(x, *procs, *rank, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Print(pp)
			return
		}
		fmt.Print(adatm.PlanFor(x, *rank, budgetBytes))
		return
	}

	if *procs > 1 {
		// The distributed solver is plain CP-ALS over shards; modes that
		// change the update rule or need single-node loop hooks don't apply.
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{*apr, "-apr"}, {*complete, "-complete"}, {*nonneg, "-nonneg"},
			{*ridge != 0, "-ridge"}, {*ckptDir != "", "-checkpoint"}, {*resume, "-resume"},
			{*healthRun, "-health"}, {*healthFile != "", "-healthfile"},
			{*timeout != 0, "-timeout"},
		} {
			if bad.set {
				fatal(fmt.Errorf("%s is not supported with -procs > 1", bad.flag))
			}
		}
		obsst, err := setupObs(obsConfig{
			tracePath: *tracefile, listen: *listen, hold: *hold, workers: *workers,
			audit: *auditRun, auditFile: *auditFile, auditWarn: *auditWarn,
			logJSON: *logJSON, logFile: *logFile,
		})
		if err != nil {
			fatal(err)
		}
		fatalCleanup = func() {
			obsst.finish(*engName, *rank, nil)
			stopProf()
		}
		runDist(x, obsst, distFlags{
			rank: *rank, iters: *iters, tol: *tol, seed: *seed, workers: *workers,
			procs: *procs, partition: *partition, transport: *transport,
			engine: *engName, fittrace: *fittrace, jsonOut: *jsonOut,
			outPfx: *outPfx, modelPath: *modelPath,
		})
		return
	}

	if *apr {
		res, err := adatm.DecomposeAPR(x, adatm.APROptions{
			Rank: *rank, MaxIters: *iters, Tol: *tol, Seed: *seed, Workers: *workers, TrackLL: *fittrace,
		})
		if err != nil {
			fatal(err)
		}
		if *fittrace {
			for i, ll := range res.LLTrace {
				fmt.Printf("iter %3d  logLik %.4f\n", i+1, ll)
			}
		}
		fmt.Printf("cp-apr rank=%d iters=%d converged=%v logLik=%.4f total=%v\n",
			*rank, res.Iters, res.Converged, res.LogLik, res.TotalTime.Round(1e6))
		fmt.Printf("lambda=%v\n", res.Lambda)
		if *outPfx != "" {
			for m, f := range res.Factors {
				if err := writeMatrix(fmt.Sprintf("%s_mode%d.txt", *outPfx, m), f); err != nil {
					fatal(err)
				}
			}
		}
		return
	}

	if *complete {
		res, err := adatm.Complete(x, adatm.CompleteOptions{
			Rank: *rank, MaxIters: *iters, Tol: *tol, Seed: *seed, Workers: *workers,
			Ridge: *ridge, TrackRMSE: *fittrace,
		})
		if err != nil {
			fatal(err)
		}
		if *fittrace {
			for i, r := range res.RMSETrace {
				fmt.Printf("iter %3d  observed RMSE %.8f\n", i+1, r)
			}
		}
		fmt.Printf("completion rank=%d iters=%d converged=%v observed RMSE=%.6f total=%v\n",
			*rank, res.Iters, res.Converged, res.RMSE, res.TotalTime.Round(1e6))
		if *outPfx != "" {
			for m, f := range res.Factors {
				if err := writeMatrix(fmt.Sprintf("%s_mode%d.txt", *outPfx, m), f); err != nil {
					fatal(err)
				}
			}
		}
		return
	}

	obsst, err := setupObs(obsConfig{
		tracePath: *tracefile, listen: *listen, hold: *hold, workers: *workers,
		audit: *auditRun, auditFile: *auditFile, auditWarn: *auditWarn,
		logJSON: *logJSON, logFile: *logFile,
		health: *healthRun, healthFile: *healthFile,
	})
	if err != nil {
		fatal(err)
	}
	// fatal() exits via os.Exit, skipping defers; route error exits through
	// finish so a failed run still writes its -tracefile and closes -listen.
	fatalCleanup = func() {
		obsst.finish(*engName, *rank, nil)
		stopProf()
	}
	opt := adatm.Options{
		Rank: *rank, MaxIters: *iters, Tol: *tol, Seed: *seed, Workers: *workers,
		Engine: adatm.EngineKind(*engName), MemoryBudget: budgetBytes, TrackFit: *fittrace,
		Ridge: *ridge, NonNegative: *nonneg, Accum: accumStrat,
		CollectStats: *jsonOut,
	}
	obsst.options(&opt)
	if *ckptDir != "" {
		cfg := &adatm.CheckpointConfig{Dir: *ckptDir, Retain: *ckptKeep}
		if n, err := strconv.Atoi(*ckptEvery); err == nil {
			cfg.Every = n
		} else if d, err := time.ParseDuration(*ckptEvery); err == nil {
			cfg.Interval = d
		} else {
			fatal(fmt.Errorf("bad -ckpt-every %q: want an iteration count or a duration", *ckptEvery))
		}
		opt.Checkpoint = cfg
	} else if *resume {
		fatal(fmt.Errorf("-resume requires -checkpoint <dir>"))
	}
	ctx := context.Background()
	if *timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, *timeout)
		defer cancel()
		ctx = tctx
	}
	if opt.Checkpoint != nil {
		// A SIGINT/SIGTERM cancels the run between mode updates; the solver
		// writes a final checkpoint of the last completed iteration before
		// returning, so an interrupted run loses at most one sweep.
		sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		ctx = sctx
	}
	if ctx != context.Background() {
		opt.Ctx = ctx
	}
	if *progress {
		opt.Progress = func(s adatm.IterStats) bool {
			fmt.Fprintf(os.Stderr, "iter %3d  fit %.8f  Δ %.3g  elapsed %v\n",
				s.Iter, s.Fit, s.FitDelta, s.Elapsed.Round(time.Millisecond))
			return true
		}
	}
	opt.Progress = obsst.progress(*engName, *rank, opt.Progress)
	var res *adatm.Result
	if *resume {
		res, err = adatm.Resume(x, opt)
	} else {
		res, err = adatm.Decompose(x, opt)
	}
	if err != nil {
		if res != nil && res.Stopped {
			fmt.Fprintf(os.Stderr, "cpd: stopped early: %v\n", err)
		} else {
			fatal(err)
		}
	}
	auditRec := obsst.latestAudit()
	if *auditRun && auditRec == nil {
		fmt.Fprintln(os.Stderr, "cpd: -audit: no model decision recorded (auditing needs -engine adaptive without a strategy override)")
	}
	if *jsonOut {
		if err := writeReport(os.Stdout, *engName, *rank, res, auditRec, obsst.healthSummary()); err != nil {
			fatal(err)
		}
	} else {
		if *fittrace {
			for i, f := range res.FitTrace {
				fmt.Printf("iter %3d  fit %.8f\n", i+1, f)
			}
		}
		fmt.Printf("engine=%s rank=%d iters=%d converged=%v fit=%.6f\n", *engName, *rank, res.Iters, res.Converged, res.Fit)
		fmt.Printf("total=%v mttkrp=%v (%.0f%%)\n", res.TotalTime.Round(1e6), res.MTTKRPTime.Round(1e6),
			100*float64(res.MTTKRPTime)/float64(res.TotalTime))
		fmt.Printf("lambda=%v\n", res.Lambda)
		if *healthRun {
			if s := obsst.healthSummary(); s != nil {
				fmt.Println(s)
			}
		}
		if *auditRun && auditRec != nil {
			fmt.Print(auditRec.String())
		}
	}

	if *modelPath != "" {
		if err := adatm.SaveModel(*modelPath, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote model to %s\n", *modelPath)
	}
	if *outPfx != "" {
		if err := writeVector(*outPfx+"_lambda.txt", res.Lambda); err != nil {
			fatal(err)
		}
		for m, f := range res.Factors {
			path := fmt.Sprintf("%s_mode%d.txt", *outPfx, m)
			if err := writeMatrix(path, f); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d factor files with prefix %s\n", len(res.Factors)+1, *outPfx)
	}
	obsst.finish(*engName, *rank, res)
}

// fatalCleanup flushes observability state (trace file, profiles, debug
// server) before a fatal exit; main replaces it as each subsystem comes up.
var fatalCleanup func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpd:", err)
	if fatalCleanup != nil {
		fatalCleanup()
	}
	os.Exit(1)
}

// startProfiling starts the optional CPU profile and runtime trace; the
// returned stop function flushes and closes both (idempotent, safe when
// neither was requested).
func startProfiling(pprofPath, tracePath string) (func(), error) {
	var stops []func()
	if pprofPath != "" {
		f, err := os.Create(pprofPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			for _, s := range stops {
				s()
			}
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			for _, s := range stops {
				s()
			}
			return nil, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		for _, s := range stops {
			s()
		}
	}, nil
}

// runReport is the -json output schema.
type runReport struct {
	Engine    string `json:"engine"`
	Rank      int    `json:"rank"`
	Iters     int    `json:"iters"`
	Converged bool   `json:"converged"`
	Stopped   bool   `json:"stopped"`
	// Fit is omitted when the run stopped before its first fit computation
	// (Result.Fit is NaN there, which JSON cannot carry).
	Fit        *float64        `json:"fit,omitempty"`
	TotalNS    int64           `json:"total_ns"`
	MTTKRPNS   int64           `json:"mttkrp_ns"`
	Lambda     []float64       `json:"lambda"`
	FitTrace   []float64       `json:"fit_trace,omitempty"`
	Stats      *adatm.RunStats `json:"stats,omitempty"`
	PhaseSumNS int64           `json:"phase_sum_ns,omitempty"`
	// Audit is the model-audit decision and reconciliation of an audited
	// adaptive run (-audit/-auditfile/-listen with -engine adaptive).
	Audit *adatm.AuditRecord `json:"audit,omitempty"`
	// Health is the final numerical-health verdict of a -health run.
	Health *adatm.HealthSummary `json:"health,omitempty"`
}

func writeReport(w *os.File, engName string, rank int, res *adatm.Result, auditRec *adatm.AuditRecord, healthSum *adatm.HealthSummary) error {
	rep := runReport{
		Engine:    engName,
		Rank:      rank,
		Iters:     res.Iters,
		Converged: res.Converged,
		Stopped:   res.Stopped,
		Fit:       finiteFitPtr(res.Fit),
		TotalNS:   res.TotalTime.Nanoseconds(),
		MTTKRPNS:  res.MTTKRPTime.Nanoseconds(),
		Lambda:    res.Lambda,
		FitTrace:  res.FitTrace,
		Stats:     res.Stats,
		Audit:     auditRec,
		Health:    healthSum,
	}
	if res.Stats != nil {
		rep.PhaseSumNS = res.Stats.PhaseTimeSum().Nanoseconds()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBytes parses "512MiB"/"2GiB"/"1048576" into a byte count.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	up := strings.ToUpper(s)
	for suffix, m := range map[string]int64{"KIB": 1 << 10, "MIB": 1 << 20, "GIB": 1 << 30, "KB": 1000, "MB": 1e6, "GB": 1e9} {
		if strings.HasSuffix(up, suffix) {
			mult = m
			s = s[:len(s)-len(suffix)]
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad budget %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}

func writeVector(path string, v []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, x := range v {
		fmt.Fprintf(w, "%.17g\n", x)
	}
	return w.Flush()
}

func writeMatrix(path string, m *adatm.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			if j > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%.17g", x)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
