package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adatm/internal/audit"
	"adatm/internal/perf"
)

// tinyArgs keeps suite runs in tests to one small scenario, one sample.
func tinyArgs(extra ...string) []string {
	base := []string{"-quick", "-samples", "1", "-warmup", "1", "-workers", "1",
		"-scenarios", "mttkrp/short3/coo/scatter"}
	return append(base, extra...)
}

func TestUsageAndList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"list"}, &out, &errb); code != 0 {
		t.Fatalf("list: exit %d", code)
	}
	listed := strings.Fields(out.String())
	if len(listed) != len(perf.Names()) {
		t.Errorf("list printed %d names, registry has %d", len(listed), len(perf.Names()))
	}
	if !strings.Contains(out.String(), "mttkrp/short3/coo/scatter") {
		t.Errorf("list output missing known scenario:\n%s", out.String())
	}
}

func TestRunWritesResultFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	args := append([]string{"run", "-out", path}, tinyArgs()...)
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run: exit %d\nstderr: %s", code, errb.String())
	}
	res, err := perf.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Name != "mttkrp/short3/coo/scatter" {
		t.Errorf("result scenarios: %+v", res.Scenarios)
	}
	if len(res.Timeline) == 0 {
		t.Error("result has no resource timeline")
	}
}

func TestRunStdoutAndUnknownScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(append([]string{"run"}, tinyArgs()...), &out, &errb); code != 0 {
		t.Fatalf("run to stdout: exit %d\nstderr: %s", code, errb.String())
	}
	var res perf.SuiteResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not a result JSON: %v", err)
	}
	if res.Format != perf.FormatVersion {
		t.Errorf("format = %q", res.Format)
	}

	errb.Reset()
	code := run([]string{"run", "-scenarios", "no/such"}, &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "unknown scenario") {
		t.Errorf("unknown scenario: exit %d, stderr %q", code, errb.String())
	}
}

func TestGateSelfPasses(t *testing.T) {
	var out, errb bytes.Buffer
	args := append([]string{"gate", "-self"}, tinyArgs()...)
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("gate -self: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "gate passed") {
		t.Errorf("missing pass confirmation: %s", errb.String())
	}
}

func TestGateAgainstBaselineBothWays(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	args := tinyArgs("-samples", "6")
	// The quick-mode unit runs in under a millisecond, where scheduler noise
	// (other test binaries sharing the box) can exceed the default 5% floor;
	// a 200% floor keeps the clean side deterministic while the injected
	// 250ms delay is a >1000% signal — soundness is still proven in both
	// directions.
	floor := []string{"-min-delta", "200"}

	var out, errb bytes.Buffer
	if code := run(append([]string{"run", "-out", baseline}, args...), &out, &errb); code != 0 {
		t.Fatalf("baseline run: exit %d\nstderr: %s", code, errb.String())
	}

	// Clean working tree: fresh run against the baseline passes.
	out.Reset()
	errb.Reset()
	clean := append([]string{"gate", "-baseline", baseline}, floor...)
	if code := run(append(clean, args...), &out, &errb); code != 0 {
		t.Fatalf("clean gate: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	// Injected slowdown: the gate fails, names the scenario, and logs a
	// perf.regression event to the ledger. 250ms per sample dwarfs the unit
	// even under the race detector's ~50x slowdown, keeping the delta far
	// above the floor.
	ledger := filepath.Join(dir, "ledger.jsonl")
	restore := perf.InjectSampleDelay("mttkrp/short3/coo/scatter", 250*time.Millisecond)
	defer restore()
	out.Reset()
	errb.Reset()
	slowed := append([]string{"gate", "-baseline", baseline, "-auditfile", ledger}, floor...)
	code := run(append(slowed, args...), &out, &errb)
	if code != 1 {
		t.Fatalf("slowed gate: exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "mttkrp/short3/coo/scatter") {
		t.Errorf("gate failure does not name the scenario: %s", errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table missing REGRESSION verdict:\n%s", out.String())
	}

	f, err := os.Open(ledger)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Event *audit.Event `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		if rec.Event != nil {
			kinds[rec.Event.Kind]++
		}
	}
	if kinds["perf.suite"] != 1 || kinds["perf.regression"] != 1 {
		t.Errorf("ledger event kinds = %v, want one perf.suite and one perf.regression", kinds)
	}
}

func TestGateMissingScenarioFails(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	current := filepath.Join(dir, "current.json")

	var out, errb bytes.Buffer
	two := tinyArgs()
	two[len(two)-1] = "mttkrp/short3/coo/scatter,mttkrp/short3/coo/privatize"
	if code := run(append([]string{"run", "-out", baseline}, two...), &out, &errb); code != 0 {
		t.Fatalf("baseline run: exit %d\nstderr: %s", code, errb.String())
	}
	if code := run(append([]string{"run", "-out", current}, tinyArgs()...), &out, &errb); code != 0 {
		t.Fatalf("current run: exit %d\nstderr: %s", code, errb.String())
	}
	errb.Reset()
	code := run([]string{"gate", "-baseline", baseline, "-current", current}, &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "missing from current") {
		t.Errorf("dropped scenario gate: exit %d, stderr %s", code, errb.String())
	}
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	var out, errb bytes.Buffer
	if code := run(append([]string{"run", "-out", a}, tinyArgs()...), &out, &errb); code != 0 {
		t.Fatalf("run: exit %d\nstderr: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"compare", "-baseline", a, "-current", a}, &out, &errb); code != 0 {
		t.Fatalf("compare: exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "mttkrp/short3/coo/scatter") {
		t.Errorf("compare table missing scenario:\n%s", out.String())
	}
	if code := run([]string{"compare", "-baseline", a}, &out, &errb); code != 2 {
		t.Errorf("compare without -current: exit %d, want 2", code)
	}
	if code := run([]string{"gate"}, &out, &errb); code != 2 {
		t.Errorf("gate without -self/-baseline: exit %d, want 2", code)
	}
}
