// Command perfgate runs the perf-trajectory suite and gates commits on
// statistical regressions against a committed baseline (DESIGN.md §2h).
//
// Usage:
//
//	perfgate run -out BENCH_8.json            # measure, write a baseline
//	perfgate compare -baseline A -current B   # print the delta table
//	perfgate gate -baseline BENCH_8.json      # fresh run vs baseline; exit 1 on regression
//	perfgate gate -self -quick -samples 1     # pipeline smoke: run once, compare to itself
//	perfgate list                             # print the scenario registry
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"adatm/internal/audit"
	"adatm/internal/obs"
	"adatm/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: perfgate <run|compare|gate|list> [flags]

  run      execute the benchmark suite and write a result file
  compare  print the delta table between two result files
  gate     fail (exit 1) when the current run regresses past the baseline
  list     print the scenario registry
`

// run is the testable entry point: exit code 0 on success, 1 on a failed
// gate or runtime error, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "run":
		return runSuite(args[1:], stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	case "gate":
		return runGate(args[1:], stdout, stderr)
	case "list":
		for _, n := range perf.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "perfgate: unknown subcommand %q\n%s", args[0], usage)
		return 2
	}
}

// suiteFlags are the measurement flags shared by `run` and `gate` (which may
// execute a fresh suite for the current side).
type suiteFlags struct {
	samples   int
	warmup    int
	quick     bool
	workers   int
	scenarios string
	listen    string
	auditfile string
	hold      bool
}

func (f *suiteFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&f.samples, "samples", 5, "measured samples per scenario")
	fs.IntVar(&f.warmup, "warmup", 1, "unmeasured warmup units per scenario")
	fs.BoolVar(&f.quick, "quick", false, "~8x smaller tensors, rank 8")
	fs.IntVar(&f.workers, "workers", 0, "engine parallel width (0 = GOMAXPROCS)")
	fs.StringVar(&f.scenarios, "scenarios", "", "comma-separated scenario names (default: full registry)")
	fs.StringVar(&f.listen, "listen", "", "serve /metrics and /timeseries on this address while the suite runs")
	fs.StringVar(&f.auditfile, "auditfile", "", "append perf.suite/perf.regression events to this JSONL ledger")
	fs.BoolVar(&f.hold, "hold", false, "keep the debug server up after the suite until interrupted")
}

// execute runs one suite under the configured observability sinks.
func (f *suiteFlags) execute(stderr io.Writer) (*perf.SuiteResult, *audit.Recorder, func(), error) {
	scs, err := perf.Select(splitList(f.scenarios))
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := perf.RunnerConfig{
		Samples: f.samples, Warmup: f.warmup, Quick: f.quick,
		Workers: f.workers, Log: stderr,
	}
	cleanup := func() {}
	if f.listen != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		srv, err := obs.Serve(f.listen, reg)
		if err != nil {
			return nil, nil, nil, err
		}
		sampler := obs.NewSampler(0, 0)
		sampler.Start()
		srv.SetSampler(sampler)
		fmt.Fprintf(stderr, "debug server listening on http://%s\n", srv.Addr())
		cfg.Metrics = reg
		cfg.Sampler = sampler
		cleanup = func() {
			if f.hold {
				fmt.Fprintf(stderr, "suite finished; holding debug server on http://%s (interrupt to exit)\n", srv.Addr())
				waitForInterrupt()
			}
			sampler.Stop()
			srv.Close()
		}
	}
	var rec *audit.Recorder
	if f.auditfile != "" {
		af, err := os.OpenFile(f.auditfile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		rec = audit.NewRecorder(audit.Config{Ledger: af})
		prev := cleanup
		cleanup = func() { prev(); af.Close() }
	}
	cfg.Audit = rec
	res, err := perf.RunSuite(scs, cfg)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	// The per-listen sampler keeps running until cleanup; its timeline window
	// for the result was already captured by RunSuite.
	return res, rec, cleanup, nil
}

func runSuite(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sf suiteFlags
	sf.register(fs)
	out := fs.String("out", "", "write the result JSON to this file (atomic temp+rename); default stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	res, _, cleanup, err := sf.execute(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "perfgate:", err)
		return 1
	}
	defer cleanup()
	if *out == "" {
		if err := res.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "perfgate:", err)
			return 1
		}
		return 0
	}
	if err := perf.WriteFile(*out, res); err != nil {
		fmt.Fprintln(stderr, "perfgate:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %d scenarios × %d samples to %s\n", len(res.Scenarios), res.Samples, *out)
	return 0
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "baseline result file")
	current := fs.String("current", "", "current result file")
	alpha := fs.Float64("alpha", 0.05, "Mann–Whitney significance level")
	minDelta := fs.Float64("min-delta", 5, "minimum median slowdown percent that can regress")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(stderr, "perfgate compare: -baseline and -current are required")
		return 2
	}
	base, err := perf.LoadFile(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "perfgate:", err)
		return 1
	}
	cur, err := perf.LoadFile(*current)
	if err != nil {
		fmt.Fprintln(stderr, "perfgate:", err)
		return 1
	}
	perf.Compare(base, cur, perf.Thresholds{Alpha: *alpha, MinDeltaPct: *minDelta}).WriteTable(stdout)
	return 0
}

func runGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate gate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sf suiteFlags
	sf.register(fs)
	baseline := fs.String("baseline", "", "baseline result file")
	current := fs.String("current", "", "current result file (default: run a fresh suite)")
	self := fs.Bool("self", false, "run one fresh suite and gate it against itself (pipeline smoke)")
	alpha := fs.Float64("alpha", 0.05, "Mann–Whitney significance level")
	minDelta := fs.Float64("min-delta", 5, "minimum median slowdown percent that can regress")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *self == (*baseline != "") {
		fmt.Fprintln(stderr, "perfgate gate: exactly one of -self or -baseline is required")
		return 2
	}

	var base, cur *perf.SuiteResult
	var rec *audit.Recorder
	cleanup := func() {}
	switch {
	case *self:
		res, r, cl, err := sf.execute(stderr)
		if err != nil {
			fmt.Fprintln(stderr, "perfgate:", err)
			return 1
		}
		base, cur, rec, cleanup = res, res, r, cl
	default:
		var err error
		base, err = perf.LoadFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "perfgate:", err)
			return 1
		}
		if *current != "" {
			cur, err = perf.LoadFile(*current)
			if err != nil {
				fmt.Fprintln(stderr, "perfgate:", err)
				return 1
			}
		} else {
			// Gate the working tree: measure the scenarios the baseline holds.
			if sf.scenarios == "" {
				var names []string
				for _, sc := range base.Scenarios {
					names = append(names, sc.Name)
				}
				sf.scenarios = strings.Join(names, ",")
			}
			cur, rec, cleanup, err = sf.execute(stderr)
			if err != nil {
				fmt.Fprintln(stderr, "perfgate:", err)
				return 1
			}
		}
	}
	defer cleanup()

	cmp := perf.Compare(base, cur, perf.Thresholds{Alpha: *alpha, MinDeltaPct: *minDelta})
	cmp.WriteTable(stdout)
	if err := cmp.Gate(); err != nil {
		for _, d := range cmp.Regressions() {
			rec.RecordEvent(audit.Event{
				Kind:   "perf.regression",
				Detail: fmt.Sprintf("%s: +%.1f%% median (p=%.4g)", d.Scenario, d.DeltaPct, d.P),
			})
		}
		fmt.Fprintln(stderr, "perfgate:", err)
		return 1
	}
	fmt.Fprintln(stderr, "perfgate: gate passed")
	return 0
}

// waitForInterrupt blocks until SIGINT/SIGTERM (the -hold behavior).
func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
