// Command adabench runs the reproduction's experiment suite (DESIGN.md §3)
// and prints the paper-style tables.
//
// Usage:
//
//	adabench                 # run everything at full scale
//	adabench -quick          # ~8x smaller datasets
//	adabench -exp E3,E7      # run a subset
//	adabench -markdown       # emit markdown tables (for EXPERIMENTS.md)
//	adabench -rank 32        # override the default rank
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"adatm/internal/exp"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run on ~8x smaller datasets")
		expList  = flag.String("exp", "", "comma-separated experiment ids (default: all); known: "+strings.Join(exp.IDs(), ","))
		markdown = flag.Bool("markdown", false, "render tables as markdown")
		jsonOut  = flag.Bool("json", false, "render tables as JSON records")
		pprofOut = flag.String("pprof", "", "write a CPU profile of the whole run to this file")
		traceOut = flag.String("trace", "", "write a runtime execution trace of the whole run to this file")
		rank     = flag.Int("rank", 16, "CP rank for non-sweeping experiments")
		workers  = flag.Int("workers", 0, "parallel width (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 0, "dataset seed offset")
	)
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			os.Exit(1)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}

	cfg := exp.Config{Quick: *quick, Workers: *workers, Rank: *rank, Seed: *seed}
	runners := exp.Registry()
	if *expList != "" {
		runners = runners[:0]
		for _, id := range strings.Split(*expList, ",") {
			r := exp.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "adabench: unknown experiment %q (known: %s)\n", id, strings.Join(exp.IDs(), ", "))
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}
	for _, r := range runners {
		start := time.Now()
		table := r.Run(cfg)
		switch {
		case *jsonOut:
			if err := table.JSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "adabench:", err)
				os.Exit(1)
			}
		case *markdown:
			table.Markdown(os.Stdout)
		default:
			table.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
