// Command adabench runs the reproduction's experiment suite (DESIGN.md §3)
// and prints the paper-style tables.
//
// Usage:
//
//	adabench                 # run everything at full scale
//	adabench -quick          # ~8x smaller datasets
//	adabench -exp E3,E7      # run a subset
//	adabench -markdown       # emit markdown tables (for EXPERIMENTS.md)
//	adabench -rank 32        # override the default rank
//	adabench -suite          # run the perf-trajectory suite (result JSON to stdout)
//	adabench -baseline F     # run the suite and gate it against baseline F
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"adatm"
	"adatm/internal/audit"
	"adatm/internal/exp"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/perf"
)

func main() {
	os.Exit(run())
}

// run carries the whole CLI so deferred profile/trace/server teardown fires
// before the process exits with a meaningful code.
func run() int {
	var (
		quick     = flag.Bool("quick", false, "run on ~8x smaller datasets")
		expList   = flag.String("exp", "", "comma-separated experiment ids (default: all); known: "+strings.Join(exp.IDs(), ","))
		markdown  = flag.Bool("markdown", false, "render tables as markdown")
		jsonOut   = flag.Bool("json", false, "render tables as JSON records")
		pprofOut  = flag.String("pprof", "", "write a CPU profile of the whole run to this file")
		rtTrace   = flag.String("runtimetrace", "", "write a runtime execution trace of the whole run to this file")
		traceOut  = flag.String("trace", "", "deprecated alias for -runtimetrace")
		tracefile = flag.String("tracefile", "", "write a Chrome trace-event JSON of the suite's spans (load in Perfetto)")
		listen    = flag.String("listen", "", "serve /metrics, /healthz, /run, /debug/pprof on this address while the suite runs")
		rank      = flag.Int("rank", 16, "CP rank for non-sweeping experiments")
		workers   = flag.Int("workers", 0, "parallel width (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 0, "dataset seed offset")
		accumStr  = flag.String("accum", "auto", "MTTKRP output accumulation: auto (model decides per mode), scatter, privatize")
		auditFile = flag.String("auditfile", "", "write the model-audit decision ledger (JSONL) from model experiments (E7) to this file")
		healthRun = flag.Bool("health", false, "attach a numerical-health probe to the full CP-ALS experiment runs (E2); with -listen, serves the shared iteration stream at /iters")
		suiteMode = flag.Bool("suite", false, "run the perf-trajectory benchmark suite instead of the experiments; result JSON to stdout")
		baseline  = flag.String("baseline", "", "run the perf suite and gate it against this baseline result file (implies -suite; exit 1 on regression)")
		samples   = flag.Int("samples", 5, "measured samples per perf-suite scenario (with -suite/-baseline)")
	)
	flag.Parse()
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "adabench: -trace is deprecated; use -runtimetrace")
		if *rtTrace == "" {
			*rtTrace = *traceOut
		}
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *rtTrace != "" {
		f, err := os.Create(*rtTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}

	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.NewTracer(0)
		tracer.SetTrackName(0, "main")
		par.SetChunkTracer(tracer)
		defer func() {
			par.SetChunkTracer(nil)
			f, err := os.Create(*tracefile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adabench: trace export:", err)
				return
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, "adabench: trace export:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (load in Perfetto)\n", tracer.Len(), *tracefile)
		}()
	}
	var srv *obs.Server
	var reg *obs.Registry
	if *listen != "" {
		reg = adatm.NewMetrics()
		obs.RegisterRuntimeMetrics(reg)
		var err error
		srv, err = obs.Serve(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s\n", srv.Addr())
	}

	if *suiteMode || *baseline != "" {
		return runPerfSuite(*baseline, *samples, *quick, *workers, *auditFile, tracer, reg, srv)
	}

	accumStrat, err := adatm.ParseAccumStrategy(*accumStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adabench:", err)
		return 2
	}
	cfg := exp.Config{Quick: *quick, Workers: *workers, Rank: *rank, Seed: *seed, Accum: accumStrat}
	if *healthRun {
		// One shared iteration stream for every probed run; the per-run
		// label tells the streams apart. With -listen it is served live at
		// /iters and the adatm_health_* gauges land in /metrics.
		iterLog := obs.NewIterLog(0)
		if srv != nil {
			srv.SetIterLog(iterLog)
		}
		defer iterLog.Close()
		cfg.Health = func(run string) *adatm.HealthProbe {
			return adatm.NewHealthProbe(adatm.HealthConfig{Run: run, Metrics: reg, Log: iterLog})
		}
	}
	if *auditFile != "" {
		f, err := os.Create(*auditFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		defer f.Close()
		cfg.AuditW = f
	}
	runners := exp.Registry()
	if *expList != "" {
		runners = runners[:0]
		for _, id := range strings.Split(*expList, ",") {
			r := exp.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "adabench: unknown experiment %q (known: %s)\n", id, strings.Join(exp.IDs(), ", "))
				return 2
			}
			runners = append(runners, *r)
		}
	}
	for _, r := range runners {
		start := time.Now()
		if srv != nil {
			srv.SetRun(map[string]any{"experiment": r.ID, "state": "running"})
		}
		sp := tracer.StartSpan("exp/"+r.ID, 0)
		table := r.Run(cfg)
		sp.End()
		if srv != nil {
			srv.SetRun(map[string]any{"experiment": r.ID, "state": "done", "elapsed_ms": time.Since(start).Milliseconds()})
		}
		switch {
		case *jsonOut:
			if err := table.JSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "adabench:", err)
				return 1
			}
		case *markdown:
			table.Markdown(os.Stdout)
		default:
			table.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runPerfSuite executes the perf-trajectory scenario registry (-suite),
// optionally gating it against a committed baseline (-baseline). The suite
// reuses the experiment CLI's observability wiring: spans into -tracefile,
// adatm_perf_* gauges and /timeseries onto -listen, and perf.suite events
// into -auditfile.
func runPerfSuite(baseline string, samples int, quick bool, workers int, auditFile string, tracer *obs.Tracer, reg *obs.Registry, srv *obs.Server) int {
	pcfg := perf.RunnerConfig{
		Samples: samples, Quick: quick, Workers: workers,
		Tracer: tracer, Metrics: reg, Log: os.Stderr,
	}
	if auditFile != "" {
		f, err := os.Create(auditFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		defer f.Close()
		pcfg.Audit = audit.NewRecorder(audit.Config{Ledger: f})
	}
	if srv != nil {
		sampler := obs.NewSampler(0, 0)
		sampler.Start()
		defer sampler.Stop()
		srv.SetSampler(sampler)
		pcfg.Sampler = sampler
	}
	res, err := perf.RunSuite(perf.Scenarios(), pcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adabench:", err)
		return 1
	}
	if baseline == "" {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "adabench:", err)
			return 1
		}
		return 0
	}
	base, err := perf.LoadFile(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adabench:", err)
		return 1
	}
	cmp := perf.Compare(base, res, perf.DefaultThresholds())
	cmp.WriteTable(os.Stdout)
	if err := cmp.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, "adabench:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "adabench: perf gate passed")
	return 0
}
