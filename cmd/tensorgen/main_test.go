package main

import (
	"testing"
)

func TestParseDims(t *testing.T) {
	d, err := parseDims("10x20x30")
	if err != nil || len(d) != 3 || d[2] != 30 {
		t.Fatalf("got %v, %v", d, err)
	}
	if _, err := parseDims("10"); err == nil {
		t.Error("single dimension accepted")
	}
	if _, err := parseDims("10x0x5"); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := parseDims("10xbad"); err == nil {
		t.Error("garbage dimension accepted")
	}
}

func TestParseSkew(t *testing.T) {
	s, err := parseSkew("0.5, 0, 1.2", 3)
	if err != nil || len(s) != 3 || s[2] != 1.2 {
		t.Fatalf("got %v, %v", s, err)
	}
	if s, err := parseSkew("", 3); err != nil || s != nil {
		t.Error("empty skew should be nil, nil")
	}
	if _, err := parseSkew("0.5,0.5", 3); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := parseSkew("-1,0,0", 3); err == nil {
		t.Error("negative skew accepted")
	}
}
