// Command tensorgen emits synthetic sparse tensors in FROSTT .tns format.
//
// Usage:
//
//	tensorgen -profile delicious4d -out d.tns.gz       # named shape profile
//	tensorgen -dims 1000x800x600 -nnz 100000 -out x.tns
//	tensorgen -dims 500x500x500 -nnz 50000 -skew 0.8,0.8,0.2 -out y.tns
//	tensorgen -dims 100x100x100 -nnz 20000 -rank 4 -noise 0.05 -out lr.tns
//	tensorgen -list                                    # list profiles
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adatm"
)

func main() {
	var (
		profile = flag.String("profile", "", "named dataset profile (see -list)")
		dims    = flag.String("dims", "", "mode sizes, e.g. 1000x800x600")
		nnz     = flag.Int("nnz", 100000, "target nonzero count")
		skew    = flag.String("skew", "", "per-mode Zipf skew, e.g. 0.8,0.8,0.2 (default uniform)")
		rank    = flag.Int("rank", 0, "plant a low-rank CP signal of this rank in the values")
		noise   = flag.Float64("noise", 0, "relative noise amplitude for -rank")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output path (.tns or .tns.gz), required unless -list")
		list    = flag.Bool("list", false, "list the built-in profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range adatm.Profiles() {
			fmt.Printf("%-12s order=%d dims=%v nnz=%d skew=%v\n", p.Name, len(p.Dims), p.Dims, p.NNZ, p.Skew)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tensorgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var spec adatm.GenSpec
	switch {
	case *profile != "":
		p, err := adatm.Profile(*profile)
		if err != nil {
			fatal(err)
		}
		spec = p
		if *seed != 1 {
			spec.Seed = *seed
		}
	case *dims != "":
		d, err := parseDims(*dims)
		if err != nil {
			fatal(err)
		}
		sk, err := parseSkew(*skew, len(d))
		if err != nil {
			fatal(err)
		}
		spec = adatm.GenSpec{Name: "custom", Dims: d, NNZ: *nnz, Skew: sk, Rank: *rank, Noise: *noise, Seed: *seed}
	default:
		fatal(fmt.Errorf("one of -profile or -dims is required"))
	}

	x := adatm.Generate(spec)
	if err := adatm.Save(*out, x); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, x)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least 2 dims, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func parseSkew(s string, n int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("skew has %d entries for %d modes", len(parts), n)
	}
	sk := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad skew %q", p)
		}
		sk[i] = v
	}
	return sk, nil
}
