package adatm_test

import (
	"encoding/json"
	"strings"
	"testing"

	"adatm"
)

// TestDecomposeWithObservability runs the public-API end-to-end path: a
// Decompose with a tracer and metrics registry attached must produce a
// Perfetto-parseable trace holding the ALS phase and per-mode MTTKRP spans,
// and a /metrics exposition with the engine, memo, and phase families.
func TestDecomposeWithObservability(t *testing.T) {
	x := testTensor(t)
	tr := adatm.NewTracer(0)
	reg := adatm.NewMetrics()
	res, err := adatm.Decompose(x, adatm.Options{
		Rank: 4, MaxIters: 3, Seed: 1, Workers: 1,
		Engine: adatm.EngineAdaptive,
		Tracer: tr, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("run performed no iterations")
	}

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"mttkrp/mode0", "gram", "solve", "normalize", "fit"} {
		if !seen[want] {
			t.Errorf("trace missing span %q", want)
		}
	}

	sb.Reset()
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"adatm_cpd_phase_seconds_bucket",
		`phase="mttkrp"`,
		"adatm_cpd_iterations_total 3",
		"adatm_cpd_fit",
		"adatm_memo_hits_total",
		"adatm_engine_mttkrp_calls_total",
		"adatm_par_chunk_imbalance_ratio",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestInstrumentWithDecomposeWith covers the advanced path: a caller-built
// engine instrumented explicitly, with only a registry (no tracer).
func TestInstrumentWithDecomposeWith(t *testing.T) {
	x := testTensor(t)
	eng, err := adatm.NewEngine(x, adatm.EngineCSF, adatm.EngineConfig{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := adatm.NewMetrics()
	adatm.Instrument(eng, nil, reg)
	if _, err := adatm.DecomposeWith(x, eng, adatm.Options{Rank: 4, MaxIters: 2, Seed: 1, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `engine="csf"`) {
		t.Error("metrics exposition missing the csf engine series")
	}
}
