// Benchmark harness: one testing.B benchmark per experiment table/figure of
// the evaluation (see DESIGN.md §3). cmd/adabench produces the full
// paper-style tables; these benchmarks regenerate the same series under
// `go test -bench`, sized to finish quickly.
package adatm_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adatm"
	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/dist"
	"adatm/internal/engine"
	"adatm/internal/exp"
	"adatm/internal/memo"
	"adatm/internal/model"
	"adatm/internal/tensor"
)

// benchCfg keeps benchmark datasets small enough for CI while preserving
// the comparative shapes.
var benchCfg = exp.Config{Quick: true, Rank: 16}

var (
	datasetOnce  sync.Once
	benchTensors map[string]*tensor.COO
)

func dataset(name string) *tensor.COO {
	datasetOnce.Do(func() {
		benchTensors = map[string]*tensor.COO{}
		for _, ds := range exp.ProfileSuite(benchCfg, "delicious4d", "flickr4d", "netflix3d", "enron4d") {
			benchTensors[ds.Name] = ds.X
		}
		for _, ds := range exp.RandomOrderSuite(benchCfg, []int{3, 4, 6, 8}) {
			benchTensors[ds.Name] = ds.X
		}
	})
	return benchTensors[name]
}

func newEngine(b *testing.B, x *tensor.COO, kind adatm.EngineKind, rank, workers int) engine.Engine {
	b.Helper()
	e, err := adatm.NewEngine(x, kind, adatm.EngineConfig{Rank: rank, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchSweep times one full MTTKRP mode sweep per b.N iteration.
func benchSweep(b *testing.B, x *tensor.COO, e engine.Engine, rank int) {
	b.Helper()
	fs := make([]*dense.Matrix, x.Order())
	rng := rand.New(rand.NewSource(7))
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], rank, rng)
	}
	out := dense.New(maxDim(x.Dims), rank)
	exp.SweepOnce(e, x, fs, out) // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.SweepOnce(e, x, fs, out)
	}
	b.ReportMetric(float64(x.NNZ()), "nnz")
}

// BenchmarkE1_MTTKRP regenerates table E1: sweep time per engine per tensor.
func BenchmarkE1_MTTKRP(b *testing.B) {
	for _, name := range []string{"netflix3d", "delicious4d", "flickr4d", "enron4d"} {
		x := dataset(name)
		for _, kind := range adatm.EngineKinds() {
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				benchSweep(b, x, newEngine(b, x, kind, benchCfg.Rank, 0), benchCfg.Rank)
			})
		}
	}
}

// BenchmarkE2_CPALSIteration regenerates table E2: one full ALS iteration.
func BenchmarkE2_CPALSIteration(b *testing.B) {
	x := dataset("delicious4d")
	for _, kind := range adatm.EngineKinds() {
		b.Run(string(kind), func(b *testing.B) {
			eng := newEngine(b, x, kind, benchCfg.Rank, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := adatm.DecomposeWith(x, eng, adatm.Options{Rank: benchCfg.Rank, MaxIters: 1, Tol: 1e-12, Seed: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_OrderScaling regenerates figure E3: sweep time vs order.
func BenchmarkE3_OrderScaling(b *testing.B) {
	for _, order := range []int{3, 4, 6, 8} {
		x := dataset(fmt.Sprintf("random%dd", order))
		for _, kind := range []adatm.EngineKind{adatm.EngineCSF, adatm.EngineMemoBalanced, adatm.EngineAdaptive} {
			b.Run(fmt.Sprintf("order%d/%s", order, kind), func(b *testing.B) {
				benchSweep(b, x, newEngine(b, x, kind, benchCfg.Rank, 0), benchCfg.Rank)
			})
		}
	}
}

// BenchmarkE4_RankSweep regenerates figure E4: sweep time vs rank.
func BenchmarkE4_RankSweep(b *testing.B) {
	x := dataset("delicious4d")
	for _, rank := range []int{8, 16, 32, 64} {
		for _, kind := range []adatm.EngineKind{adatm.EngineCSF, adatm.EngineAdaptive} {
			b.Run(fmt.Sprintf("rank%d/%s", rank, kind), func(b *testing.B) {
				benchSweep(b, x, newEngine(b, x, kind, rank, 0), rank)
			})
		}
	}
}

// BenchmarkE5_ThreadScaling regenerates figure E5: sweep time vs workers.
func BenchmarkE5_ThreadScaling(b *testing.B) {
	x := dataset("flickr4d")
	for _, w := range []int{1, 2, 4, 8} {
		for _, kind := range []adatm.EngineKind{adatm.EngineCSF, adatm.EngineMemoBalanced} {
			b.Run(fmt.Sprintf("workers%d/%s", w, kind), func(b *testing.B) {
				benchSweep(b, x, newEngine(b, x, kind, benchCfg.Rank, w), benchCfg.Rank)
			})
		}
	}
}

// BenchmarkE6_MemoryFootprint regenerates table E6 as reported metrics:
// auxiliary bytes per engine after a sweep.
func BenchmarkE6_MemoryFootprint(b *testing.B) {
	x := dataset("enron4d")
	for _, kind := range adatm.EngineKinds() {
		b.Run(string(kind), func(b *testing.B) {
			eng := newEngine(b, x, kind, benchCfg.Rank, 0)
			benchSweep(b, x, eng, benchCfg.Rank)
			s := eng.Stats()
			b.ReportMetric(float64(s.IndexBytes), "index-bytes")
			b.ReportMetric(float64(s.PeakValueBytes), "peak-value-bytes")
		})
	}
}

// BenchmarkE7_ModelSelection regenerates experiment E7's cost: the full
// model-driven selection pass (sketching + candidate scoring + DP).
func BenchmarkE7_ModelSelection(b *testing.B) {
	for _, name := range []string{"delicious4d", "random6d"} {
		x := dataset(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := model.Select(x, model.Options{Rank: benchCfg.Rank})
				if plan.Chosen.Strategy == nil {
					b.Fatal("no strategy chosen")
				}
			}
		})
	}
}

// BenchmarkE8_BudgetedSelection regenerates experiment E8's selection under
// a shrinking budget.
func BenchmarkE8_BudgetedSelection(b *testing.B) {
	x := dataset("enron4d")
	full := adatm.PlanFor(x, benchCfg.Rank, 0)
	budget := (full.Chosen.Pred.IndexBytes + full.Chosen.Pred.PeakValueBytes) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := adatm.PlanFor(x, benchCfg.Rank, budget)
		if plan.Chosen.Strategy == nil {
			b.Fatal("no choice")
		}
	}
}

// BenchmarkE9_SymbolicPhase regenerates experiment E9's one-time cost: the
// symbolic tree construction.
func BenchmarkE9_SymbolicPhase(b *testing.B) {
	for _, name := range []string{"delicious4d", "random6d"} {
		x := dataset(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memo.New(x, memo.Balanced(x.Order()), 0, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_EndToEnd regenerates experiment E10's end-to-end run: full
// CP-ALS to convergence with the adaptive engine.
func BenchmarkE10_EndToEnd(b *testing.B) {
	x := dataset("netflix3d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := adatm.Decompose(x, adatm.Options{Rank: 8, MaxIters: 10, Tol: 1e-6, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fit, "fit")
	}
}

// BenchmarkE16_PermutedSelection regenerates experiment E16's selection
// pass: permutation-aware model-driven planning.
func BenchmarkE16_PermutedSelection(b *testing.B) {
	x := dataset("random4d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp := adatm.PlanPermutedFor(x, benchCfg.Rank, 0)
		if pp.Chosen.Plan == nil {
			b.Fatal("no permuted choice")
		}
	}
}

// BenchmarkE17_NVecsInit regenerates experiment E17's one-time cost: the
// HOSVD-style initialization.
func BenchmarkE17_NVecsInit(b *testing.B) {
	x := dataset("netflix3d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adatm.NVecsInit(x, 8, 2, 1, 0)
	}
}

// BenchmarkE18_APRIteration regenerates experiment E18's kernel: one outer
// CP-APR iteration on count data.
func BenchmarkE18_APRIteration(b *testing.B) {
	x := dataset("enron4d").Clone()
	for k := range x.Vals {
		if x.Vals[k] < 0 {
			x.Vals[k] = -x.Vals[k]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adatm.DecomposeAPR(x, adatm.APROptions{Rank: 8, MaxIters: 1, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE21_Partitioners regenerates experiment E21's kernels: one
// partitioning + communication analysis per scheme.
func BenchmarkE21_Partitioners(b *testing.B) {
	x := dataset("delicious4d")
	schemes := map[string]func() *dist.Partition{
		"random":       func() *dist.Partition { return dist.RandomPartition(x, 16, 1) },
		"medium-grain": func() *dist.Partition { return dist.MediumGrainPartition(x, 16) },
		"fine-greedy":  func() *dist.Partition { return dist.FineGrainGreedyPartition(x, 16, 1) },
	}
	for name, build := range schemes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := build()
				if _, stats := dist.AnalyzeComm(x, p); stats.TotalRows < 0 {
					b.Fatal("bad stats")
				}
			}
		})
	}
}

// BenchmarkE22_DistributedSweep regenerates experiment E22's measured side:
// one simulated-cluster MTTKRP sweep.
func BenchmarkE22_DistributedSweep(b *testing.B) {
	x := dataset("flickr4d")
	c := dist.NewCluster(x, dist.FineGrainGreedyPartition(x, 8, 1), func(s *tensor.COO) engine.Engine {
		return coo.New(s, 1)
	})
	benchSweep(b, x, c, benchCfg.Rank)
}

func maxDim(dims []int) int {
	m := 0
	for _, d := range dims {
		if d > m {
			m = d
		}
	}
	return m
}
