// Package adatm is the public API of the library: model-driven sparse
// CANDECOMP/PARAFAC (CP) decomposition for higher-order tensors.
//
// The library reproduces the system of "Model-Driven Sparse CP Decomposition
// for Higher-Order Tensors" (IPDPS 2017): CP-ALS whose MTTKRP bottleneck is
// served by memoized semi-sparse intermediate tensors arranged in a strategy
// tree, with an analytical cost model that picks the best strategy for a
// given tensor, rank, and memory budget. Classic baselines (streaming COO
// and SPLATT-style CSF) are included for comparison.
//
// Quick start:
//
//	x, _ := adatm.Load("data.tns")
//	res, _ := adatm.Decompose(x, adatm.Options{Rank: 16})
//	fmt.Println(res.Fit, res.Lambda)
//
// See examples/ for complete programs.
package adatm

import (
	"context"
	"fmt"

	"adatm/internal/accum"
	"adatm/internal/audit"
	"adatm/internal/ckpt"
	"adatm/internal/coo"
	"adatm/internal/cpd"
	"adatm/internal/csf"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/health"
	"adatm/internal/hicoo"
	"adatm/internal/memo"
	"adatm/internal/model"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Tensor is a sparse tensor in coordinate format.
	Tensor = tensor.COO
	// Index is the integer type of tensor mode indices.
	Index = tensor.Index
	// Matrix is a dense row-major matrix (factor matrices, MTTKRP outputs).
	Matrix = dense.Matrix
	// Result is a computed CP decomposition with run statistics.
	Result = cpd.Result
	// Engine is a pluggable MTTKRP kernel.
	Engine = engine.Engine
	// EngineStats carries an engine's operation and memory counters.
	EngineStats = engine.Stats
	// Strategy is a memoization tree over the tensor modes.
	Strategy = memo.Strategy
	// Plan is the cost model's scored candidate list and chosen strategy.
	Plan = model.Plan
	// GenSpec describes a synthetic tensor for the built-in generators.
	GenSpec = tensor.GenSpec
	// CompleteOptions configures masked tensor completion.
	CompleteOptions = cpd.CompleteOptions
	// CompleteResult is a fitted completion model.
	CompleteResult = cpd.CompleteResult
	// APROptions configures Poisson CP (CP-APR) for count data.
	APROptions = cpd.APROptions
	// APRResult is a fitted Poisson CP model.
	APRResult = cpd.APRResult
	// RunStats is the per-phase breakdown attached to a Result when
	// Options.CollectStats is set.
	RunStats = cpd.RunStats
	// PhaseStats accumulates one phase's time/count/ops over a run.
	PhaseStats = cpd.PhaseStats
	// Phase identifies one stage of the CP-ALS loop.
	Phase = cpd.Phase
	// IterStats is the per-iteration snapshot handed to Options.Progress.
	IterStats = cpd.IterStats
	// Tracer records timing spans into a bounded ring and exports them as a
	// Chrome trace-event file (load in Perfetto or chrome://tracing). A nil
	// Tracer is valid and records nothing.
	Tracer = obs.Tracer
	// Metrics is a registry of counters, gauges, and histograms exposed in
	// Prometheus text format. A nil Metrics is valid and records nothing.
	Metrics = obs.Registry
	// MetricLabels is the label set attached to a metric series.
	MetricLabels = obs.Labels
	// DebugServer is the live HTTP debug endpoint (/metrics, /healthz,
	// /debug/pprof/*, /run, /plan, /timeseries, /iters).
	DebugServer = obs.Server
	// AuditRecorder records the cost model's selection decision and
	// reconciles it against the run's measured counters (the model-audit
	// layer). A nil recorder is valid and free.
	AuditRecorder = audit.Recorder
	// AuditConfig parameterizes NewAuditRecorder (logger, JSONL ledger,
	// metrics registry, warn threshold, update hook).
	AuditConfig = audit.Config
	// AuditDecision is one recorded selection decision.
	AuditDecision = audit.Decision
	// AuditReport is the reconciliation of a decision against measurements.
	AuditReport = audit.Report
	// AuditRecord is a decision plus its reconciliation (the ledger entry
	// and the /plan payload).
	AuditRecord = audit.Record
	// AuditMeasured carries a run's measured counters for reconciliation.
	AuditMeasured = audit.Measured
	// AccumStrategy selects the MTTKRP output-accumulation backend:
	// striped-lock scatter, per-worker privatized copies with a parallel
	// reduction, or model-driven per-mode auto-selection.
	AccumStrategy = accum.Strategy
	// CheckpointConfig enables periodic crash-safe checkpoints of a run
	// (directory, cadence, rolling retention). Attach via
	// Options.Checkpoint; resume with Resume.
	CheckpointConfig = cpd.CheckpointConfig
	// AuditEvent is a run-lifecycle entry in the audit ledger (e.g. a
	// checkpoint resume), alongside decisions and reports.
	AuditEvent = audit.Event
	// HealthProbe observes each ALS iteration's numerical state (fit delta,
	// λ dynamics, Gram-Hadamard conditioning, factor congruence) and keeps a
	// debounced healthy/stalled/swamp-suspect/ill-conditioned verdict. A
	// nil probe is valid and free. Attach via Options.Health.
	HealthProbe = health.Probe
	// HealthConfig parameterizes NewHealthProbe (sinks and thresholds).
	HealthConfig = health.Config
	// HealthThresholds tunes the health rule layer; zero fields select the
	// documented defaults.
	HealthThresholds = health.Thresholds
	// HealthState is the probe's typed verdict.
	HealthState = health.State
	// HealthSummary is the probe's end-of-run verdict and aggregates.
	HealthSummary = health.Summary
	// IterLog is the bounded ring of per-iteration health samples served at
	// the debug server's /iters endpoint.
	IterLog = obs.IterLog
	// IterSample is one iteration's record in an IterLog.
	IterSample = obs.IterSample
)

// Health verdicts, in increasing order of severity.
const (
	HealthHealthy        = health.Healthy
	HealthStalled        = health.Stalled
	HealthSwampSuspect   = health.SwampSuspect
	HealthIllConditioned = health.IllConditioned
)

// Accumulation backends for Options.Accum / EngineConfig.Accum.
const (
	// AccumAuto lets the cost model pick scatter or privatize per
	// (engine, mode) — the default.
	AccumAuto = accum.Auto
	// AccumScatter forces in-place scatter accumulation.
	AccumScatter = accum.Scatter
	// AccumPrivatize forces per-worker privatized accumulation.
	AccumPrivatize = accum.Privatize
)

// ParseAccumStrategy converts the CLI spelling ("auto", "scatter",
// "privatize"; empty = auto) into an AccumStrategy.
func ParseAccumStrategy(s string) (AccumStrategy, error) { return accum.Parse(s) }

// Re-exported phase identifiers for reading RunStats.Phases.
const (
	PhaseSymbolic  = cpd.PhaseSymbolic
	PhaseMTTKRP    = cpd.PhaseMTTKRP
	PhaseGram      = cpd.PhaseGram
	PhaseSolve     = cpd.PhaseSolve
	PhaseNormalize = cpd.PhaseNormalize
	PhaseFit       = cpd.PhaseFit
	NumPhases      = cpd.NumPhases
)

// DecomposeAPR fits a Poisson CP model (CP-APR with multiplicative updates)
// to a non-negative count tensor — the statistically appropriate objective
// for the web/NLP/healthcare count data that motivates sparse CP.
func DecomposeAPR(x *Tensor, opt APROptions) (*APRResult, error) {
	return cpd.RunAPR(x, opt)
}

// PredictAPR evaluates a Poisson CP model's rate at one coordinate.
func PredictAPR(res *APRResult, idx []Index) float64 { return cpd.PredictAPR(res, idx) }

// SaveModel writes a decomposition (λ + factors) to a portable JSON file.
func SaveModel(path string, res *Result) error { return cpd.SaveModel(path, res) }

// LoadModel reads a decomposition written by SaveModel (λ and factors only;
// run statistics are not persisted).
func LoadModel(path string) (*Result, error) { return cpd.LoadModel(path) }

// NVecsInit computes HOSVD-style initial factors (the leading Rank left
// singular vectors of each matricization, by matricization-free block power
// iteration) for use as Options.Init — the literature-standard alternative
// to random initialization.
func NVecsInit(x *Tensor, rank, iters int, seed int64, workers int) []*Matrix {
	return cpd.NVecsInit(x, rank, iters, seed, workers)
}

// Complete fits a CP model to the *observed* entries of x only (masked
// alternating least squares) — the recommender-system semantics where
// missing coordinates are unknown rather than zero. Use Decompose for count
// data where absent coordinates genuinely mean zero.
func Complete(x *Tensor, opt CompleteOptions) (*CompleteResult, error) {
	return cpd.Complete(x, opt)
}

// EngineKind selects the MTTKRP kernel used by Decompose.
type EngineKind string

const (
	// EngineCOO is the element-streaming coordinate-format baseline.
	EngineCOO EngineKind = "coo"
	// EngineCSF is the SPLATT-equivalent compressed-sparse-fiber baseline
	// (one tree per mode, root kernels only).
	EngineCSF EngineKind = "csf"
	// EngineCSFOne is the memory-lean single-tree CSF variant: one tree
	// serves every mode through level kernels (push-down/pull-up).
	EngineCSFOne EngineKind = "csf-one"
	// EngineHiCOO is the blocked-COO baseline (HiCOO-style): block
	// coordinates stored once, 1-byte element offsets inside 128-wide
	// blocks.
	EngineHiCOO EngineKind = "hicoo"
	// EngineMemoFlat memoizes with the flat (no-reuse, index-compressed)
	// strategy.
	EngineMemoFlat EngineKind = "memo-flat"
	// EngineMemoTwoGroup memoizes with the two-group (3-level) strategy
	// split at N/2.
	EngineMemoTwoGroup EngineKind = "memo-2group"
	// EngineMemoBalanced memoizes with the balanced binary strategy.
	EngineMemoBalanced EngineKind = "memo-balanced"
	// EngineAdaptive runs the cost model and uses its chosen strategy —
	// the paper's headline configuration.
	EngineAdaptive EngineKind = "adaptive"
)

// EngineKinds lists every selectable engine, in the canonical report order.
func EngineKinds() []EngineKind {
	return []EngineKind{EngineCOO, EngineCSF, EngineCSFOne, EngineHiCOO, EngineMemoFlat, EngineMemoTwoGroup, EngineMemoBalanced, EngineAdaptive}
}

// Options configures Decompose.
type Options struct {
	// Rank is the number of rank-one components (required).
	Rank int
	// MaxIters bounds the ALS iterations (default 50).
	MaxIters int
	// Tol is the convergence threshold on the fit change (default 1e-5).
	Tol float64
	// Seed drives the random factor initialization.
	Seed int64
	// Workers is the parallel width (<= 0: GOMAXPROCS).
	Workers int
	// Engine selects the MTTKRP kernel (default EngineAdaptive).
	Engine EngineKind
	// MemoryBudget caps the adaptive engine's predicted auxiliary bytes
	// (<= 0: unbounded). Ignored by non-adaptive engines.
	MemoryBudget int64
	// Accum selects the MTTKRP output-accumulation backend (default
	// AccumAuto: the cost model decides per mode).
	Accum AccumStrategy
	// TrackFit retains the per-iteration fit trajectory in the result.
	TrackFit bool
	// Init supplies initial factor matrices (one I_n × Rank per mode);
	// nil selects random initialization.
	Init []*Matrix
	// Ridge adds Tikhonov regularization λ·I to every factor update.
	Ridge float64
	// NonNegative constrains every factor entry to be non-negative
	// (multiplicative updates); requires a non-negative tensor.
	NonNegative bool
	// ModeOrder sets the ALS sub-iteration order (a permutation of the
	// modes; nil = natural). Mode-permuted engines require it to match
	// their sweep order.
	ModeOrder []int
	// Ctx, when non-nil, cancels the run between mode sub-iterations; the
	// partial Result is returned with ctx's error.
	Ctx context.Context
	// Progress is invoked after every completed iteration; returning false
	// stops the run early with a valid Result.
	Progress func(IterStats) bool
	// CollectStats attaches a per-phase RunStats breakdown to the Result.
	CollectStats bool
	// Tracer, when non-nil, records phase and per-mode MTTKRP spans for
	// Chrome-trace export. Engines built by Decompose are instrumented
	// automatically; with DecomposeWith, call Instrument yourself.
	Tracer *Tracer
	// Metrics, when non-nil, receives the run's counters, gauges, and
	// latency histograms for /metrics scraping.
	Metrics *Metrics
	// Audit, when non-nil, receives the cost model's selection decision
	// (when the adaptive engine runs the model) and, at run end, the
	// reconciliation of that decision against the measured counters. Build
	// one with NewAuditRecorder.
	Audit *AuditRecorder
	// Checkpoint, when non-nil, writes crash-safe checkpoints during the
	// run (atomic temp-file+rename protocol, rolling retention). A killed
	// run restarts from the newest checkpoint with Resume.
	Checkpoint *CheckpointConfig
	// Health, when non-nil, observes every iteration's numerical state and
	// maintains a debounced convergence-health verdict (swamp/stall/
	// conditioning detection) fanned out to the probe's configured sinks.
	// Build one with NewHealthProbe.
	Health *HealthProbe
}

// Decompose computes a rank-R CP decomposition of x.
func Decompose(x *Tensor, opt Options) (*Result, error) {
	eng, err := engineFor(x, opt)
	if err != nil {
		return nil, err
	}
	return DecomposeWith(x, eng, opt)
}

// engineFor builds, audits, and instruments the engine Decompose (and
// Resume) would use for opt.
func engineFor(x *Tensor, opt Options) (Engine, error) {
	kind := opt.Engine
	if kind == "" {
		kind = EngineAdaptive
	}
	eng, plan, err := NewEnginePlanned(x, kind, EngineConfig{Rank: opt.Rank, Workers: opt.Workers, MemoryBudget: opt.MemoryBudget, Accum: opt.Accum})
	if err != nil {
		return nil, err
	}
	if opt.Audit != nil && plan != nil {
		opt.Audit.RecordDecision(audit.NewDecision(plan))
	}
	Instrument(eng, opt.Tracer, opt.Metrics)
	return eng, nil
}

// cpdOptions translates the public Options into the solver's.
func cpdOptions(opt Options) cpd.Options {
	return cpd.Options{
		Rank:         opt.Rank,
		MaxIters:     opt.MaxIters,
		Tol:          opt.Tol,
		Seed:         opt.Seed,
		Workers:      opt.Workers,
		Init:         opt.Init,
		TrackFit:     opt.TrackFit,
		Ridge:        opt.Ridge,
		NonNegative:  opt.NonNegative,
		ModeOrder:    opt.ModeOrder,
		Ctx:          opt.Ctx,
		Progress:     opt.Progress,
		CollectStats: opt.CollectStats,
		Tracer:       opt.Tracer,
		Metrics:      opt.Metrics,
		Audit:        opt.Audit,
		Checkpoint:   opt.Checkpoint,
		Health:       opt.Health,
	}
}

// DecomposeWith runs CP-ALS with a caller-provided engine (for custom
// strategies or instrumentation).
func DecomposeWith(x *Tensor, eng Engine, opt Options) (*Result, error) {
	return cpd.Run(x, eng, cpdOptions(opt))
}

// Resume restarts an interrupted checkpointed run from the newest valid
// checkpoint in opt.Checkpoint.Dir. The tensor and the
// trajectory-determining options (rank, ridge, constraints, mode order)
// must match the checkpointed run — a fingerprint mismatch is refused.
// The run continues exactly where it stopped: a resumed run reaches the
// same fit as an uninterrupted one.
func Resume(x *Tensor, opt Options) (*Result, error) {
	if opt.Checkpoint == nil || opt.Checkpoint.Dir == "" {
		return nil, fmt.Errorf("adatm: Resume requires Options.Checkpoint.Dir")
	}
	mgr, err := ckpt.NewManager(opt.Checkpoint.Dir, opt.Checkpoint.Retain)
	if err != nil {
		return nil, err
	}
	c, path, err := mgr.LoadLatest()
	if err != nil {
		return nil, fmt.Errorf("adatm: resume: %w", err)
	}
	if opt.Audit != nil {
		opt.Audit.RecordEvent(audit.Event{Kind: "resume.load", Iter: c.Iter, Path: path, Fingerprint: c.Fingerprint})
	}
	eng, err := engineFor(x, opt)
	if err != nil {
		return nil, err
	}
	return cpd.Resume(x, eng, c, cpdOptions(opt))
}

// NewHealthProbe builds a numerical-health probe over the configured sinks
// (all optional): metrics registry, audit-ledger recorder, and iteration
// log. Attach it via Options.Health; read the verdict back with its Summary
// method or any of the sinks.
func NewHealthProbe(cfg HealthConfig) *HealthProbe { return health.New(cfg) }

// NewIterLog builds a ring buffer for per-iteration health samples
// (capacity <= 0 selects the default of 1024). Wire it into a HealthConfig
// and serve it live with DebugServer.SetIterLog (the /iters endpoint).
func NewIterLog(capacity int) *IterLog { return obs.NewIterLog(capacity) }

// NewAuditRecorder builds a model-audit recorder over the configured sinks
// (all optional): structured logger, JSONL decision ledger, metrics registry,
// and an update hook. Attach it via Options.Audit; read the outcome back with
// its Latest method or any of the sinks.
func NewAuditRecorder(cfg AuditConfig) *AuditRecorder { return audit.NewRecorder(cfg) }

// Instrument attaches a tracer and/or metrics registry to an engine that
// supports it (all built-in engines do). Engines constructed inside
// Decompose are instrumented automatically from Options; use this with
// NewEngine + DecomposeWith. Both arguments may be nil. Call once per
// engine: metric registration is idempotent per (name, labels) series, but
// repeated calls with different registries only keep the first wiring for
// callback-based gauges.
func Instrument(eng Engine, tr *Tracer, reg *Metrics) {
	if tr == nil && reg == nil {
		return
	}
	if in, ok := eng.(engine.Instrumentable); ok {
		in.Instrument(tr, reg)
	}
}

// NewTracer builds a span tracer holding up to capacity completed spans
// (capacity <= 0 selects the default of 65536). Attach it via
// Options.Tracer and write the collected trace with WriteChromeTrace.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewMetrics builds an empty metrics registry. Attach it via
// Options.Metrics, serve it with ServeDebug, or render it with WriteTo.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ServeDebug starts the HTTP debug server on addr (e.g. ":9090" or
// "127.0.0.1:0") serving /metrics from reg, /healthz, /run, and
// /debug/pprof/*. Close the returned server to stop it.
func ServeDebug(addr string, reg *Metrics) (*DebugServer, error) {
	return obs.Serve(addr, reg)
}

// TraceChunks routes per-chunk execution spans from the parallel scheduler
// into tr (pass nil to disable). Chunk spans are the finest-grained and most
// voluminous track; they are opt-in separately from Options.Tracer so phase-
// level tracing stays cheap. The hook is process-global.
func TraceChunks(tr *Tracer) { par.SetChunkTracer(tr) }

// EngineConfig parameterizes NewEngine.
type EngineConfig struct {
	// Rank the engine will be used at (the adaptive model needs it; other
	// engines ignore it). <= 0 defaults to 16.
	Rank int
	// Workers is the engine's parallel width (<= 0: GOMAXPROCS).
	Workers int
	// MemoryBudget caps the adaptive choice (<= 0: unbounded).
	MemoryBudget int64
	// Strategy overrides the memoization tree for the memo engines; nil
	// uses the kind's default shape.
	Strategy *Strategy
	// RetainBuffers keeps memoized value storage allocated across ALS
	// iterations (steady memory at peak, zero per-iteration allocation).
	RetainBuffers bool
	// Accum selects the output-accumulation backend (default AccumAuto:
	// per-mode model-driven choice; the adaptive kind takes its per-mode
	// table from the plan).
	Accum AccumStrategy
	// accumPerMode carries the adaptive plan's resolved per-mode table to
	// the engine constructor (internal plumbing, set by NewEnginePlanned).
	accumPerMode []accum.Strategy
}

// NewEngine constructs the MTTKRP kernel of the given kind for x. The
// tensor is validated first: every engine's builder indexes by the declared
// dims, so a malformed tensor must be rejected here rather than panic
// deep inside a kernel.
func NewEngine(x *Tensor, kind EngineKind, cfg EngineConfig) (Engine, error) {
	eng, _, err := NewEnginePlanned(x, kind, cfg)
	return eng, err
}

// NewEnginePlanned is NewEngine plus the selection evidence: when the
// adaptive kind actually runs the cost model (no explicit Strategy
// override), the scored Plan is returned alongside the engine so callers can
// audit the decision (see Options.Audit). Every other path returns a nil
// Plan.
func NewEnginePlanned(x *Tensor, kind EngineKind, cfg EngineConfig) (Engine, *Plan, error) {
	if x == nil {
		return nil, nil, fmt.Errorf("adatm: nil tensor")
	}
	if err := x.Validate(); err != nil {
		return nil, nil, fmt.Errorf("adatm: %w", err)
	}
	n := x.Order()
	acfg := accum.Config{Strategy: cfg.Accum, Workers: cfg.Workers, Budget: cfg.MemoryBudget}
	switch kind {
	case EngineCOO:
		return coo.NewWithAccum(x, cfg.Workers, acfg), nil, nil
	case EngineCSF:
		return csf.NewAllMode(x, cfg.Workers), nil, nil
	case EngineCSFOne:
		return csf.NewSingle(x, cfg.Workers), nil, nil
	case EngineHiCOO:
		return hicoo.NewWithAccum(x, cfg.Workers, acfg), nil, nil
	case EngineMemoFlat:
		eng, err := memoEngine(x, cfg, memo.Flat(n), string(kind))
		return eng, nil, err
	case EngineMemoTwoGroup:
		if n < 2 {
			return nil, nil, fmt.Errorf("adatm: %s needs order >= 2", kind)
		}
		eng, err := memoEngine(x, cfg, memo.TwoGroup(n, n/2), string(kind))
		return eng, nil, err
	case EngineMemoBalanced:
		eng, err := memoEngine(x, cfg, memo.Balanced(n), string(kind))
		return eng, nil, err
	case EngineAdaptive:
		if cfg.Strategy != nil {
			eng, err := memoEngine(x, cfg, cfg.Strategy, string(kind))
			return eng, nil, err
		}
		plan := model.Select(x, model.Options{
			Rank: cfg.Rank, Budget: cfg.MemoryBudget,
			Workers: cfg.Workers, Accum: cfg.Accum,
		})
		// The plan resolved the accumulation backend per mode (budget slack
		// already accounted for); hand the table to the engine so kernel
		// entries don't re-derive it.
		cfgP := cfg
		cfgP.accumPerMode = plan.AccumPerMode()
		eng, err := memoEngine(x, cfgP, plan.Chosen.Strategy, fmt.Sprintf("adaptive[%s]", plan.Chosen.Name))
		if err != nil {
			return nil, nil, err
		}
		return eng, plan, nil
	default:
		return nil, nil, fmt.Errorf("adatm: unknown engine kind %q", kind)
	}
}

func memoEngine(x *Tensor, cfg EngineConfig, s *Strategy, name string) (Engine, error) {
	if cfg.Strategy != nil {
		s = cfg.Strategy
	}
	return memo.NewWithConfig(x, s, memo.Config{
		Workers: cfg.Workers, Name: name, RetainBuffers: cfg.RetainBuffers,
		Accum: accum.Config{
			Strategy: cfg.Accum,
			PerMode:  cfg.accumPerMode,
			Workers:  cfg.Workers,
			Budget:   cfg.MemoryBudget,
		},
	})
}

// PlanFor runs the model-driven selection for x at the given rank and
// memory budget and returns the scored plan (call Plan.String for a report).
func PlanFor(x *Tensor, rank int, budget int64) *Plan {
	return model.Select(x, model.Options{Rank: rank, Budget: budget})
}

// PermPlan is the outcome of permutation-aware selection: the best
// (mode permutation, strategy) pair.
type PermPlan = model.PermPlan

// PlanPermutedFor extends PlanFor over candidate mode permutations,
// unlocking strategies that group non-adjacent modes.
func PlanPermutedFor(x *Tensor, rank int, budget int64) *PermPlan {
	return model.SelectPermuted(x, model.Options{Rank: rank, Budget: budget}, nil)
}

// DecomposePermuted is Decompose with permutation-aware adaptive selection:
// it picks the best (permutation, strategy) pair, builds the permuted
// memoized engine, and sweeps the modes in the engine's order. opt.Engine
// and opt.ModeOrder are ignored.
func DecomposePermuted(x *Tensor, opt Options) (*Result, error) {
	pp := PlanPermutedFor(x, opt.Rank, opt.MemoryBudget)
	eng, err := pp.BuildChosen(x, opt.Workers)
	if err != nil {
		return nil, err
	}
	opt.ModeOrder = eng.SweepOrder()
	return DecomposeWith(x, eng, opt)
}

// Load reads a tensor from a FROSTT .tns or .tns.gz file, merging duplicate
// coordinates and validating the result: a tensor returned by Load is
// structurally sound (consistent arities, in-range indices, finite values).
func Load(path string) (*Tensor, error) {
	x, err := tensor.LoadFile(path)
	if err != nil {
		return nil, err
	}
	x.Dedup()
	if err := x.Validate(); err != nil {
		return nil, fmt.Errorf("adatm: %s: %w", path, err)
	}
	return x, nil
}

// Save writes a tensor to a .tns or .tns.gz file.
func Save(path string, x *Tensor) error { return tensor.SaveFile(path, x) }

// Generate builds a synthetic tensor from a generator spec; see GenSpec and
// Profiles.
func Generate(spec GenSpec) *Tensor { return tensor.Generate(spec) }

// Profiles lists the built-in synthetic dataset profiles mirroring the
// shapes of the common evaluation tensors.
func Profiles() []GenSpec { return tensor.Profiles }

// Profile returns the named built-in generator spec.
func Profile(name string) (GenSpec, error) { return tensor.Profile(name) }

// Reconstruct evaluates the decomposition at one coordinate.
func Reconstruct(res *Result, idx []Index) float64 { return cpd.Reconstruct(res, idx) }
