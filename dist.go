package adatm

import (
	"fmt"

	"adatm/internal/audit"
	"adatm/internal/dist"
	"adatm/internal/model"
	"adatm/internal/tensor"
)

// Distributed (sharded) decomposition: the public surface over
// internal/dist. The solver runs one SPMD worker per simulated process,
// exchanging fold/expand row messages over a pluggable transport, and is
// numerically identical to the single-node solver (see DESIGN.md §2j).

// Re-exported distributed-layer types.
type (
	// DistResult is a distributed decomposition plus its communication
	// accounting (messages sent, transport retries, predicted volume).
	DistResult = dist.Result
	// DistFault injects transport faults (drop/duplicate/delay) into the
	// TCP transport for resilience testing.
	DistFault = dist.FaultConfig
	// DistCommStats is the partition's exact per-iteration communication
	// accounting (fold row volume, message count, connectivity).
	DistCommStats = dist.CommStats
	// PartitionPlan is the scored partitioner candidate list and choice.
	PartitionPlan = model.PartitionPlan
)

// Partition names accepted by DistOptions.Partition.
const (
	// PartitionAuto lets the cost model choose (the default).
	PartitionAuto = "auto"
	// PartitionRandom places nonzeros uniformly at random.
	PartitionRandom = "random"
	// PartitionMediumGrain uses the Cartesian process-grid scheme.
	PartitionMediumGrain = "medium-grain"
	// PartitionFineGreedy uses the affinity-greedy per-nonzero scheme.
	PartitionFineGreedy = "fine-greedy"
)

// Transport names accepted by DistOptions.Transport.
const (
	// TransportChan is the deterministic in-process transport (default).
	TransportChan = "chan"
	// TransportTCP is the length-prefixed TCP loopback transport with
	// acknowledged retransmission.
	TransportTCP = "tcp"
)

// DistOptions configures DecomposeDist.
type DistOptions struct {
	// Rank is the number of rank-one components (required).
	Rank int
	// MaxIters bounds the ALS iterations (default 50).
	MaxIters int
	// Tol is the convergence threshold on the fit change (default 1e-5).
	Tol float64
	// Seed drives the random factor initialization (shared with the
	// single-node solver: same seed, same trajectory).
	Seed int64
	// Workers is the per-process parallel width for dense kernels.
	Workers int
	// Procs is the simulated process count (default 2).
	Procs int
	// Partition picks the nonzero partitioner: PartitionAuto (default,
	// model-driven), PartitionRandom, PartitionMediumGrain, or
	// PartitionFineGreedy.
	Partition string
	// Transport picks the wire: TransportChan (default) or TransportTCP.
	Transport string
	// Engine is the per-shard MTTKRP kernel kind (default EngineCOO).
	// Empty shards always fall back to the streaming COO kernel.
	Engine EngineKind
	// TrackFit retains the per-iteration fit trajectory.
	TrackFit bool
	// Init supplies initial factor matrices; nil selects the Seed-derived
	// random initialization.
	Init []*Matrix
	// Fault, when non-nil, enables fault injection on the TCP transport.
	Fault *DistFault
	// Metrics, when non-nil, receives the adatm_dist_* series.
	Metrics *Metrics
	// Audit, when non-nil, records the partition decision in the ledger
	// (a "dist.partition" event with the scored candidates).
	Audit *AuditRecorder
}

// PartitionPlanFor scores the partitioner family for x at the given process
// count and rank and returns the plan (call PartitionPlan.String for a
// report table).
func PartitionPlanFor(x *Tensor, procs, rank int, seed int64) (*PartitionPlan, error) {
	return model.SelectPartition(x, model.PartitionOptions{Procs: procs, Rank: rank, Seed: seed})
}

// DecomposeDist computes a rank-R CP decomposition of x over opt.Procs
// simulated processes. The returned DistResult matches what Decompose
// produces for the same options to within float reassociation of the
// distributed reductions (see DESIGN.md §2j); convert it with
// DistResultToResult to reuse Result-based reporting.
func DecomposeDist(x *Tensor, opt DistOptions) (*DistResult, error) {
	if x == nil {
		return nil, fmt.Errorf("adatm: nil tensor")
	}
	if err := x.Validate(); err != nil {
		return nil, fmt.Errorf("adatm: %w", err)
	}
	if opt.Procs <= 0 {
		opt.Procs = 2
	}
	part, err := selectPartition(x, &opt)
	if err != nil {
		return nil, err
	}

	kind := opt.Engine
	if kind == "" {
		kind = EngineCOO
	}
	var engErr error
	cluster := dist.NewCluster(x, part, func(shard *tensor.COO) Engine {
		k := kind
		if shard.NNZ() == 0 {
			k = EngineCOO
		}
		eng, err := NewEngine(shard, k, EngineConfig{Rank: opt.Rank, Workers: opt.Workers})
		if err != nil && engErr == nil {
			engErr = err
		}
		return eng
	})
	if engErr != nil {
		return nil, engErr
	}

	tr, err := buildTransport(&opt)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	return dist.Run(x, cluster, tr, dist.RunOptions{
		Rank: opt.Rank, MaxIters: opt.MaxIters, Tol: opt.Tol,
		Seed: opt.Seed, Workers: opt.Workers,
		Init: opt.Init, TrackFit: opt.TrackFit, Metrics: opt.Metrics,
	})
}

// selectPartition resolves DistOptions.Partition: the model's choice for
// PartitionAuto, the named partitioner otherwise. In both cases the scored
// plan is recorded through the audit recorder so the ledger carries the
// evidence (and, for a forced partitioner, what the model would have done).
func selectPartition(x *Tensor, opt *DistOptions) (*dist.Partition, error) {
	name := opt.Partition
	if name == "" {
		name = PartitionAuto
	}
	transport := opt.Transport
	if transport == "" {
		transport = TransportChan
	}
	plan, err := model.SelectPartition(x, model.PartitionOptions{Procs: opt.Procs, Rank: opt.Rank, Seed: opt.Seed})
	if err != nil {
		return nil, fmt.Errorf("adatm: %w", err)
	}
	var part *dist.Partition
	dec := audit.NewPartitionDecision(plan, transport)
	switch name {
	case PartitionAuto:
		part = plan.Chosen.Part
	case PartitionRandom, PartitionMediumGrain, PartitionFineGreedy:
		if c := plan.Partitioner(name); c != nil {
			part = c.Part
		} else if name == PartitionFineGreedy {
			// Past the feasibility gate (procs > 64 or order > 16) the
			// greedy partitioner would panic; refuse explicitly.
			return nil, fmt.Errorf("adatm: fine-greedy partition supports at most 64 processes and order 16")
		}
		dec.Chosen = name
		dec.Reason = "user-forced"
	default:
		return nil, fmt.Errorf("adatm: unknown partition %q (want auto, random, medium-grain, fine-greedy)", name)
	}
	if opt.Audit != nil {
		opt.Audit.RecordPartition(dec)
	}
	return part, nil
}

// buildTransport resolves DistOptions.Transport.
func buildTransport(opt *DistOptions) (dist.Transport, error) {
	switch opt.Transport {
	case "", TransportChan:
		if opt.Fault != nil {
			return nil, fmt.Errorf("adatm: fault injection requires the tcp transport")
		}
		return dist.NewChanTransport(opt.Procs), nil
	case TransportTCP:
		cfg := dist.TCPConfig{}
		if opt.Fault != nil {
			cfg.Fault = *opt.Fault
		}
		return dist.NewTCPTransport(opt.Procs, cfg)
	default:
		return nil, fmt.Errorf("adatm: unknown transport %q (want chan, tcp)", opt.Transport)
	}
}

// DistResultToResult converts a distributed result to the single-node
// Result shape so Result-based reporting (model save, reconstruction,
// CLI summaries) applies unchanged.
func DistResultToResult(r *DistResult) *Result {
	if r == nil {
		return nil
	}
	return &Result{
		Lambda:     r.Lambda,
		Factors:    r.Factors,
		Iters:      r.Iters,
		Fit:        r.Fit,
		Converged:  r.Converged,
		FitTrace:   r.FitTrace,
		MTTKRPTime: r.MTTKRPTime,
		TotalTime:  r.TotalTime,
	}
}
