package exp

import (
	"fmt"
	"math/rand"

	"adatm"
	"adatm/internal/model"
	"adatm/internal/tensor"
)

// correlatedTensor builds an order-4 tensor whose modes 0 and 2 are nearly
// functionally dependent — the {0,2} projection compresses massively, but
// the pair is not adjacent, so only mode permutation can exploit it.
func correlatedTensor(nnz int, seed int64) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{4000, 3000, 4000, 2000}
	x := tensor.NewCOO(dims, nnz)
	idx := make([]tensor.Index, 4)
	for k := 0; k < nnz; k++ {
		i0 := rng.Intn(dims[0])
		idx[0] = tensor.Index(i0)
		idx[1] = tensor.Index(rng.Intn(dims[1]))
		idx[2] = tensor.Index((i0*7 + rng.Intn(3)) % dims[2])
		idx[3] = tensor.Index(rng.Intn(dims[3]))
		x.Append(idx, rng.Float64()+0.5)
	}
	x.Dedup()
	return x
}

// E16PermutationAblation compares natural-order adaptive selection against
// permutation-aware selection on a tensor whose compressible mode pair is
// non-adjacent — the final dimension of the strategy space.
func E16PermutationAblation(cfg Config) *Table {
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("ablation: mode-permutation-aware selection (correlated non-adjacent modes, R=%d)", cfg.rank()),
		Columns: []string{"selector", "perm", "tree", "pred ops", "sweep time"},
	}
	nnz := 200000
	if cfg.Quick {
		nnz = 40000
	}
	x := correlatedTensor(nnz, 999+cfg.Seed)

	// Baseline: csf.
	csfEng, err := adatm.NewEngine(x, adatm.EngineCSF, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	t.Add("csf baseline", "-", "-", "-", fmtDur(TimeSweeps(csfEng, x, cfg.rank(), 2, 41)))

	// Natural-order adaptive.
	plan := adatm.PlanFor(x, cfg.rank(), 0)
	natEng, err := adatm.NewEngine(x, adatm.EngineAdaptive, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	t.Add("adaptive (natural)", "[0 1 2 3]", plan.Chosen.Strategy.String(), plan.Chosen.Pred.Ops,
		fmtDur(TimeSweeps(natEng, x, cfg.rank(), 2, 41)))

	// Permutation-aware adaptive, including the grouping the heuristics
	// would have to discover.
	perms := model.HeuristicPermutations(x)
	perms["group-02"] = []int{0, 2, 1, 3}
	pp := model.SelectPermuted(x, model.Options{Rank: cfg.rank()}, perms)
	permEng, err := pp.BuildChosen(x, cfg.Workers)
	if err != nil {
		panic(err)
	}
	// Time the sweep in the engine's own order (TimeSweeps uses the natural
	// order, which would defeat the permuted reuse).
	d := timeSweepsOrdered(permEng, x, cfg.rank(), 2, 41, permEng.SweepOrder())
	t.Add(fmt.Sprintf("adaptive-perm (%s)", pp.Chosen.Name), fmt.Sprint(pp.Chosen.Perm),
		pp.Chosen.Plan.Chosen.Strategy.String(), pp.Chosen.Plan.Chosen.Pred.Ops, fmtDur(d))

	t.Notes = append(t.Notes, "modes 0 and 2 are ~functionally dependent; grouping them needs a permutation")
	return t
}
