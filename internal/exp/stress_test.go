package exp

import (
	"testing"

	"adatm"
	"adatm/internal/tensor"
)

// TestLargeStress exercises the full pipeline at a realistic scale: an
// order-6 tensor with ~1M nonzeros through symbolic construction, adaptive
// selection, and two ALS iterations with every counter coherent at the end.
func TestLargeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	x := tensor.RandomClustered(6, 1<<15, 1000000, 0.8, 777)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := adatm.PlanFor(x, 16, 0)
	if plan.Chosen.Strategy == nil {
		t.Fatal("no plan")
	}
	res, err := adatm.Decompose(x, adatm.Options{Rank: 16, MaxIters: 2, Seed: 1, Engine: adatm.EngineAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 2 || res.Fit != res.Fit /* NaN check */ {
		t.Fatalf("stress run degenerate: iters=%d fit=%v", res.Iters, res.Fit)
	}
	eng, err := adatm.NewEngine(x, adatm.EngineAdaptive, adatm.EngineConfig{Rank: 16})
	if err != nil {
		t.Fatal(err)
	}
	d := TimeSweeps(eng, x, 16, 1, 3)
	if d <= 0 {
		t.Fatal("no sweep time measured")
	}
	s := eng.Stats()
	if s.HadamardOps <= 0 || s.IndexBytes <= 0 || s.PeakValueBytes <= 0 {
		t.Fatalf("incoherent stats at scale: %+v", s)
	}
	t.Logf("1M-nnz order-6: plan=%s sweep=%v idx=%.1fMiB peak=%.1fMiB",
		plan.Chosen.Strategy, d, float64(s.IndexBytes)/(1<<20), float64(s.PeakValueBytes)/(1<<20))
}
