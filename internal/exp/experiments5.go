package exp

import (
	"fmt"
	"math"

	"adatm"
	"adatm/internal/tensor"
)

// E17InitQuality compares random factor initialization against HOSVD-style
// nvecs initialization: iterations to reach a fit threshold on planted
// low-rank tensors.
func E17InitQuality(cfg Config) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "extension: random vs nvecs (HOSVD-style) initialization",
		Columns: []string{"tensor", "threshold", "random: iters", "random: final fit", "nvecs: iters", "nvecs: final fit"},
	}
	cases := []struct {
		name   string
		x      *tensor.COO
		rank   int
		thresh float64
	}{
		{"planted-3d (dense rank-3)", tensor.DenseLowRank([]int{20, 18, 16}, 3, 0.01, 811), 3, 0.95},
		{"planted-4d (dense rank-2)", tensor.DenseLowRank([]int{12, 10, 10, 8}, 2, 0.01, 812), 2, 0.95},
	}
	for _, c := range cases {
		run := func(init []*adatm.Matrix) (int, float64) {
			res, err := adatm.Decompose(c.x, adatm.Options{
				Rank: c.rank, MaxIters: 80, Tol: 1e-12, Seed: 5, Workers: cfg.Workers,
				Engine: adatm.EngineCSF, Init: init, TrackFit: true,
			})
			if err != nil {
				panic(err)
			}
			for i, f := range res.FitTrace {
				if f >= c.thresh {
					return i + 1, res.Fit
				}
			}
			return res.Iters, res.Fit
		}
		ri, rf := run(nil)
		ni, nf := run(adatm.NVecsInit(c.x, c.rank, 5, 9, cfg.Workers))
		t.Add(c.name, fmt.Sprintf("fit>=%.2f", c.thresh), ri, fmt.Sprintf("%.4f", rf), ni, fmt.Sprintf("%.4f", nf))
	}
	t.Notes = append(t.Notes, "nvecs typically needs no more iterations than random to cross the threshold; the advantage is data-dependent")
	return t
}

// E18PoissonVsGaussian compares CP-APR (Poisson objective) against CP-ALS
// (Gaussian objective) on sparse count data, measuring how well the fitted
// rates track the observed counts.
func E18PoissonVsGaussian(cfg Config) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "extension: Poisson CP (CP-APR) vs Gaussian CP-ALS on count data",
		Columns: []string{"model", "count-rate correlation", "negative predictions", "iters"},
	}
	nnz := 60000
	if cfg.Quick {
		nnz = 15000
	}
	// Count tensor: skewed co-occurrence counts with planted structure.
	x := adatm.Generate(adatm.GenSpec{
		Name: "counts", Dims: []int{800, 600, 100}, NNZ: nnz,
		Skew: []float64{0.6, 0.6, 0.2}, Rank: 4, Noise: 0, Seed: 813 + cfg.Seed,
	})
	// Convert planted values to integer counts >= 1.
	for k := range x.Vals {
		x.Vals[k] = math.Ceil(x.Vals[k] * 10)
	}

	corr := func(predict func([]tensor.Index) float64) float64 {
		idx := make([]tensor.Index, x.Order())
		var sx, sy, sxx, syy, sxy float64
		nn := float64(x.NNZ())
		for k := 0; k < x.NNZ(); k++ {
			for m := range idx {
				idx[m] = x.Inds[m][k]
			}
			a, b := x.Vals[k], predict(idx)
			sx += a
			sy += b
			sxx += a * a
			syy += b * b
			sxy += a * b
		}
		return (nn*sxy - sx*sy) / math.Sqrt((nn*sxx-sx*sx)*(nn*syy-sy*sy))
	}

	negatives := func(predict func([]tensor.Index) float64) int {
		// Probe a grid of coordinates off the nonzero pattern.
		neg := 0
		idx := make([]tensor.Index, x.Order())
		for k := 0; k < x.NNZ(); k += 7 {
			for m := range idx {
				// Perturb each coordinate to likely-unobserved positions.
				idx[m] = (x.Inds[m][k] + tensor.Index(m+1)) % tensor.Index(x.Dims[m])
			}
			if predict(idx) < 0 {
				neg++
			}
		}
		return neg
	}

	apr, err := adatm.DecomposeAPR(x, adatm.APROptions{Rank: 8, MaxIters: 40, Seed: 3, Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	aprPredict := func(i []tensor.Index) float64 { return adatm.PredictAPR(apr, i) }
	t.Add("cp-apr (Poisson) r=8", fmt.Sprintf("%.3f", corr(aprPredict)), negatives(aprPredict), apr.Iters)

	als, err := adatm.Decompose(x, adatm.Options{Rank: 8, MaxIters: 40, Seed: 3, Workers: cfg.Workers, Engine: adatm.EngineCSF})
	if err != nil {
		panic(err)
	}
	alsPredict := func(i []tensor.Index) float64 { return adatm.Reconstruct(als, i) }
	t.Add("cp-als (Gaussian) r=8", fmt.Sprintf("%.3f", corr(alsPredict)), negatives(alsPredict), als.Iters)

	t.Notes = append(t.Notes,
		"correlation is computed on the observed counts; 'negative predictions' probes off-pattern coordinates",
		"CP-APR rates are non-negative by construction — Gaussian CP has no such guarantee on count data")
	return t
}
