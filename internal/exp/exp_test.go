package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"adatm"
	"adatm/internal/dense"
	"adatm/internal/tensor"
)

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.Add("1", 2.5)
	tab.Add("longer", 3)
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tab.Add(1, 2)
	var buf bytes.Buffer
	tab.Markdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Errorf("markdown wrong:\n%s", out)
	}
}

func TestProfileSuiteSubset(t *testing.T) {
	cfg := Config{Quick: true}
	suite := ProfileSuite(cfg, "uber4d")
	if len(suite) != 1 || suite[0].Name != "uber4d" {
		t.Fatalf("suite = %v", suite)
	}
	if suite[0].X.Order() != 4 {
		t.Errorf("order = %d", suite[0].X.Order())
	}
}

func TestRandomOrderSuite(t *testing.T) {
	suite := RandomOrderSuite(Config{Quick: true}, []int{3, 5})
	if len(suite) != 2 || suite[1].X.Order() != 5 {
		t.Fatalf("bad suite")
	}
}

func TestEngineSetMatchesKinds(t *testing.T) {
	x := tensor.RandomClustered(3, 30, 500, 0.5, 1)
	set := EngineSet(x, Config{})
	if len(set) != len(adatm.EngineKinds()) {
		t.Fatalf("%d engines for %d kinds", len(set), len(adatm.EngineKinds()))
	}
}

func TestSweepAndTime(t *testing.T) {
	x := tensor.RandomClustered(3, 30, 500, 0.5, 2)
	e := EngineSet(x, Config{})[1]
	d := TimeSweeps(e, x, 8, 1, 3)
	if d <= 0 || d > time.Minute {
		t.Fatalf("implausible sweep time %v", d)
	}
}

func TestSpearman(t *testing.T) {
	if s := spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(s-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", s)
	}
	if s := spearman([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}); math.Abs(s+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g", s)
	}
	if s := spearman([]float64{1}, []float64{2}); s != 0 {
		t.Errorf("degenerate input = %g", s)
	}
}

func TestRegistryAndFind(t *testing.T) {
	ids := IDs()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		if Find(id) == nil {
			t.Errorf("Find(%q) = nil", id)
		}
	}
	if Find("nope") != nil {
		t.Error("Find accepted unknown id")
	}
}

// Smoke-run the fast experiments end to end at a tiny scale.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	cfg := Config{Quick: true, Rank: 8}
	for _, id := range []string{"T1", "E8", "E10", "E17"} {
		r := Find(id)
		tab := r.Run(cfg)
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", id)
		}
	}
}

func TestSweepOnceMatchesEngineOutput(t *testing.T) {
	// SweepOnce must leave the last mode's MTTKRP in the output buffer.
	x := tensor.RandomClustered(3, 20, 300, 0.4, 4)
	e := EngineSet(x, Config{})[0]
	fs := randomFactors(x, 4, 5)
	out := dense.New(maxDim(x.Dims), 4)
	SweepOnce(e, x, fs, out)
	direct := dense.New(x.Dims[2], 4)
	e.MTTKRP(2, fs, direct)
	last := &dense.Matrix{Rows: x.Dims[2], Cols: 4, Data: out.Data[:x.Dims[2]*4]}
	if d := last.MaxAbsDiff(direct); d > 1e-9 {
		t.Errorf("sweep output differs from direct MTTKRP by %g", d)
	}
}
