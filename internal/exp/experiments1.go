package exp

import (
	"fmt"
	"time"

	"adatm"
	"adatm/internal/model"
	"adatm/internal/par"
)

// T1DatasetTable reports the statistics of the dataset suite, including the
// root-split compression factors that drive memoization gains (nnz divided
// by the distinct-tuple count of each half of the mode range).
func T1DatasetTable(cfg Config) *Table {
	t := &Table{
		ID:      "T1",
		Title:   "dataset suite (synthetic, shape-matched to the literature's tensors)",
		Columns: []string{"tensor", "order", "dims", "nnz", "density", "comp(lo-half)", "comp(hi-half)"},
	}
	suite := append(ProfileSuite(cfg), RandomOrderSuite(cfg, []int{4, 6, 8})...)
	for _, ds := range suite {
		x := ds.X
		n := x.Order()
		est := model.NewEstimator(x, 0)
		mid := (n + 1) / 2
		compLo := float64(x.NNZ()) / float64(est.Distinct(0, mid))
		compHi := float64(x.NNZ()) / float64(est.Distinct(mid, n))
		t.Add(ds.Name, n, fmt.Sprint(x.Dims), x.NNZ(), fmt.Sprintf("%.2e", x.Density()),
			fmt.Sprintf("%.2f", compLo), fmt.Sprintf("%.2f", compHi))
	}
	t.Notes = append(t.Notes, "comp(·) = nnz / distinct tuples of that half of the modes; higher means more memoization reuse")
	return t
}

// E1MTTKRPTime compares one full MTTKRP sweep (all modes) across every
// engine on the profile suite. This is the paper's core kernel comparison.
func E1MTTKRPTime(cfg Config) *Table {
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("MTTKRP sweep time per engine (R=%d), speedup vs csf in parens", cfg.rank()),
		Columns: []string{"tensor"},
	}
	suite := ProfileSuite(cfg)
	kinds := adatm.EngineKinds()
	for _, k := range kinds {
		t.Columns = append(t.Columns, string(k))
	}
	for _, ds := range suite {
		engines := EngineSet(ds.X, cfg)
		times := make([]time.Duration, len(engines))
		for i, e := range engines {
			times[i] = TimeSweeps(e, ds.X, cfg.rank(), 3, 7)
		}
		csfTime := times[1] // kinds[1] == csf
		row := []any{ds.Name}
		for i := range engines {
			row = append(row, fmt.Sprintf("%s (%.2fx)", fmtDur(times[i]), float64(csfTime)/float64(times[i])))
		}
		t.Add(row...)
	}
	return t
}

// E2CPALSIter compares full CP-ALS per-iteration time (MTTKRP + dense
// updates + fit) across engines.
func E2CPALSIter(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("CP-ALS time per iteration (R=%d), speedup vs csf in parens", cfg.rank()),
		Columns: []string{"tensor"},
	}
	kinds := adatm.EngineKinds()
	for _, k := range kinds {
		t.Columns = append(t.Columns, string(k))
	}
	iters := 4
	for _, ds := range ProfileSuite(cfg) {
		row := []any{ds.Name}
		var csfPer time.Duration
		for i, k := range kinds {
			opt := adatm.Options{
				Rank: cfg.rank(), MaxIters: iters, Tol: 1e-12, Seed: 5, Workers: cfg.Workers, Engine: k,
			}
			if cfg.Health != nil {
				opt.Health = cfg.Health(ds.Name + "/" + string(k))
			}
			res, err := adatm.Decompose(ds.X, opt)
			if err != nil {
				panic(err)
			}
			per := res.TotalTime / time.Duration(res.Iters)
			if i == 1 {
				csfPer = per
			}
			if csfPer > 0 {
				row = append(row, fmt.Sprintf("%s (%.2fx)", fmtDur(per), float64(csfPer)/float64(per)))
			} else {
				row = append(row, fmtDur(per))
			}
		}
		t.Add(row...)
	}
	return t
}

// E3OrderScaling shows how the memoization advantage grows with tensor
// order on shape-controlled random tensors.
func E3OrderScaling(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("MTTKRP sweep time vs tensor order (random clustered tensors, R=%d)", cfg.rank()),
		Columns: []string{"order"},
	}
	kinds := adatm.EngineKinds()
	for _, k := range kinds {
		t.Columns = append(t.Columns, string(k))
	}
	t.Columns = append(t.Columns, "best-memo/csf")
	orders := []int{3, 4, 5, 6, 8}
	if cfg.Quick {
		orders = []int{3, 4, 6}
	}
	for _, ds := range RandomOrderSuite(cfg, orders) {
		engines := EngineSet(ds.X, cfg)
		row := []any{ds.X.Order()}
		var csfTime, bestMemo time.Duration
		for i, e := range engines {
			d := TimeSweeps(e, ds.X, cfg.rank(), 3, 9)
			row = append(row, fmtDur(d))
			if i == 1 {
				csfTime = d
			}
			if i >= 2 && (bestMemo == 0 || d < bestMemo) {
				bestMemo = d
			}
		}
		row = append(row, fmt.Sprintf("%.2fx", float64(csfTime)/float64(bestMemo)))
		t.Add(row...)
	}
	t.Notes = append(t.Notes, "expected shape: memoized engines pull away from the baselines as order grows")
	return t
}

// E4RankSweep varies the decomposition rank on a 4-order tensor.
func E4RankSweep(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "MTTKRP sweep time vs rank (delicious4d profile)",
		Columns: []string{"rank"},
	}
	kinds := adatm.EngineKinds()
	for _, k := range kinds {
		t.Columns = append(t.Columns, string(k))
	}
	ds := ProfileSuite(cfg, "delicious4d")[0]
	ranks := []int{8, 16, 32, 64}
	if cfg.Quick {
		ranks = []int{8, 32}
	}
	for _, r := range ranks {
		row := []any{r}
		for _, k := range kinds {
			e, err := adatm.NewEngine(ds.X, k, adatm.EngineConfig{Rank: r, Workers: cfg.Workers})
			if err != nil {
				panic(err)
			}
			row = append(row, fmtDur(TimeSweeps(e, ds.X, r, 3, 11)))
		}
		t.Add(row...)
	}
	return t
}

// E5ThreadScaling measures the parallel speedup of each engine.
func E5ThreadScaling(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("MTTKRP sweep time vs worker count (flickr4d profile, R=%d)", cfg.rank()),
		Columns: []string{"workers"},
	}
	kinds := []adatm.EngineKind{adatm.EngineCOO, adatm.EngineCSF, adatm.EngineMemoBalanced, adatm.EngineAdaptive}
	for _, k := range kinds {
		t.Columns = append(t.Columns, string(k))
	}
	ds := ProfileSuite(cfg, "flickr4d")[0]
	max := cfg.Workers
	if max <= 0 {
		max = defaultMaxWorkers()
	}
	if par.MaxWorkers() == 1 {
		t.Notes = append(t.Notes,
			"HOST LIMITATION: GOMAXPROCS=1 on this machine — parallel speedup cannot manifest; extra workers only measure scheduling overhead")
		if max < 4 {
			max = 4
		}
	}
	base := make(map[adatm.EngineKind]time.Duration)
	for w := 1; w <= max; w *= 2 {
		row := []any{w}
		for _, k := range kinds {
			e, err := adatm.NewEngine(ds.X, k, adatm.EngineConfig{Rank: cfg.rank(), Workers: w})
			if err != nil {
				panic(err)
			}
			d := TimeSweeps(e, ds.X, cfg.rank(), 2, 13)
			if w == 1 {
				base[k] = d
			}
			row = append(row, fmt.Sprintf("%s (%.2fx)", fmtDur(d), float64(base[k])/float64(d)))
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes, "parens: self-relative speedup over the engine's single-worker time")
	return t
}

// defaultMaxWorkers returns the largest power of two not exceeding
// GOMAXPROCS, so the scaling table halves cleanly.
func defaultMaxWorkers() int {
	w := 1
	for w*2 <= par.MaxWorkers() {
		w *= 2
	}
	return w
}
