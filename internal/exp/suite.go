package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"adatm"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/tensor"
)

// Config controls the experiment suite.
type Config struct {
	// Quick scales every dataset down (~8x fewer nonzeros) for CI-speed
	// runs; the shapes and relative comparisons survive scaling.
	Quick bool
	// Workers is the parallel width used by the engines (<= 0: GOMAXPROCS).
	Workers int
	// Rank is the CP rank used where an experiment does not sweep it
	// (default 16).
	Rank int
	// Seed offsets the generator seeds for robustness runs.
	Seed int64
	// AuditW, when non-nil, receives the model-audit decision ledger (JSONL
	// audit.Records) from the experiments that exercise the cost model
	// (E7); adabench wires its -auditfile here.
	AuditW io.Writer
	// Accum forces the MTTKRP output-accumulation backend for every engine
	// in the suite (default adatm.AccumAuto: model-driven per mode);
	// adabench wires its -accum flag here.
	Accum adatm.AccumStrategy
	// Health, when non-nil, builds a fresh numerical-health probe for every
	// full CP-ALS run of the experiments that fit models (E2). The run
	// label ("dataset/engine") distinguishes the runs in a shared iteration
	// stream; adabench wires its -health flag here.
	Health func(run string) *adatm.HealthProbe
}

func (c Config) rank() int {
	if c.Rank <= 0 {
		return 16
	}
	return c.Rank
}

// Dataset is one tensor of the evaluation suite.
type Dataset struct {
	Name string
	X    *tensor.COO
}

// ProfileSuite materializes the named real-shape profiles (all of them when
// names is empty).
func ProfileSuite(cfg Config, names ...string) []Dataset {
	specs := tensor.Profiles
	if len(names) > 0 {
		specs = nil
		for _, n := range names {
			p, err := tensor.Profile(n)
			if err != nil {
				panic(err)
			}
			specs = append(specs, p)
		}
	}
	out := make([]Dataset, 0, len(specs))
	for _, p := range specs {
		if cfg.Quick {
			p.NNZ /= 8
		}
		p.Seed += cfg.Seed
		out = append(out, Dataset{Name: p.Name, X: tensor.Generate(p)})
	}
	return out
}

// RandomOrderSuite generates uniform-dimension clustered random tensors of
// the given orders (the higher-order scaling workload).
func RandomOrderSuite(cfg Config, orders []int) []Dataset {
	nnz := 200000
	if cfg.Quick {
		nnz = 25000
	}
	out := make([]Dataset, 0, len(orders))
	for _, n := range orders {
		dim := 1 << 14
		if cfg.Quick {
			dim = 1 << 11
		}
		x := tensor.RandomClustered(n, dim, nnz, 0.8, 1000+int64(n)+cfg.Seed)
		out = append(out, Dataset{Name: fmt.Sprintf("random%dd", n), X: x})
	}
	return out
}

// EngineSet builds the engines compared throughout the evaluation, in
// report order.
func EngineSet(x *tensor.COO, cfg Config) []engine.Engine {
	kinds := adatm.EngineKinds()
	out := make([]engine.Engine, 0, len(kinds))
	for _, k := range kinds {
		e, err := adatm.NewEngine(x, k, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers, Accum: cfg.Accum})
		if err != nil {
			panic(err)
		}
		out = append(out, e)
	}
	return out
}

// randomFactors builds one random factor matrix per mode.
func randomFactors(x *tensor.COO, r int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*dense.Matrix, x.Order())
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], r, rng)
	}
	return fs
}

// SweepOnce runs one full MTTKRP sweep (every mode, with the ALS
// invalidation protocol) and returns the in-kernel time measured by the
// engine's own MTTKRPNS counter — not an external stopwatch — so harness
// overhead (loop, header construction, invalidation) never pollutes the
// kernel comparison. The factors are not modified; FactorUpdated is still
// issued so memoizing engines follow their steady-state
// compute-once-per-node pattern.
func SweepOnce(e engine.Engine, x *tensor.COO, factors []*dense.Matrix, out *dense.Matrix) time.Duration {
	startNS := e.Stats().MTTKRPNS
	for mode := 0; mode < x.Order(); mode++ {
		mm := &dense.Matrix{Rows: x.Dims[mode], Cols: out.Cols, Data: out.Data[:x.Dims[mode]*out.Cols]}
		if err := e.MTTKRP(mode, factors, mm); err != nil {
			panic(err)
		}
		e.FactorUpdated(mode)
	}
	return time.Duration(e.Stats().MTTKRPNS - startNS)
}

// TimeSweeps warms the engine with one sweep, then returns the *minimum* of
// reps timed sweeps (the minimum is the standard noise-resistant
// microbenchmark statistic: external interference only ever adds time).
func TimeSweeps(e engine.Engine, x *tensor.COO, r, reps int, seed int64) time.Duration {
	fs := randomFactors(x, r, seed)
	out := dense.New(maxDim(x.Dims), r)
	SweepOnce(e, x, fs, out) // warm-up: symbolic reuse, allocator, caches
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		if d := SweepOnce(e, x, fs, out); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// timeSweepsOrdered is TimeSweeps with an explicit mode sweep order (for
// permuted engines whose reuse depends on the visit order).
func timeSweepsOrdered(e engine.Engine, x *tensor.COO, r, reps int, seed int64, order []int) time.Duration {
	fs := randomFactors(x, r, seed)
	out := dense.New(maxDim(x.Dims), r)
	sweep := func() time.Duration {
		startNS := e.Stats().MTTKRPNS
		for _, mode := range order {
			mm := &dense.Matrix{Rows: x.Dims[mode], Cols: r, Data: out.Data[:x.Dims[mode]*r]}
			if err := e.MTTKRP(mode, fs, mm); err != nil {
				panic(err)
			}
			e.FactorUpdated(mode)
		}
		return time.Duration(e.Stats().MTTKRPNS - startNS)
	}
	sweep() // warm-up
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		if d := sweep(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func maxDim(dims []int) int {
	m := 0
	for _, d := range dims {
		if d > m {
			m = d
		}
	}
	return m
}

// spearman computes the Spearman rank correlation of two equally long
// series.
func spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

// fmtDur renders a duration in milliseconds with 3 significant digits.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3gms", float64(d.Nanoseconds())/1e6)
}

// fmtMiB renders a byte count in MiB.
func fmtMiB(b int64) string {
	return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
}
