package exp

import (
	"fmt"
	"math"
	"time"

	"adatm"
	"adatm/internal/memo"
	"adatm/internal/model"
	"adatm/internal/tensor"
)

// E11SketchSensitivity ablates the KMV sketch size: estimation error of the
// projection counts, selection agreement with the exact model, and the cost
// of the estimation pass.
func E11SketchSensitivity(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "ablation: sketch size k vs estimation error, selection agreement, and cost",
		Columns: []string{"tensor", "k", "max rel err", "mean rel err", "same pick as exact", "estimator time"},
	}
	for _, ds := range ProfileSuite(cfg, "delicious4d", "enron4d") {
		x := ds.X
		n := x.Order()
		exact := model.NewExactEstimator(x)
		exactPlan := model.SelectWithEstimator(exact, model.Options{Rank: cfg.rank()})
		for _, k := range []int{64, 256, 1024, 4096} {
			start := time.Now()
			est := model.NewEstimator(x, k)
			buildTime := time.Since(start)
			maxErr, sumErr, cnt := 0.0, 0.0, 0
			for lo := 0; lo < n; lo++ {
				for hi := lo + 1; hi <= n; hi++ {
					e := float64(exact.Distinct(lo, hi))
					g := float64(est.Distinct(lo, hi))
					rel := math.Abs(g-e) / e
					sumErr += rel
					cnt++
					if rel > maxErr {
						maxErr = rel
					}
				}
			}
			plan := model.SelectWithEstimator(est, model.Options{Rank: cfg.rank()})
			same := plan.Chosen.Strategy.Equal(exactPlan.Chosen.Strategy)
			t.Add(ds.Name, k, fmt.Sprintf("%.1f%%", 100*maxErr), fmt.Sprintf("%.1f%%", 100*sumErr/float64(cnt)),
				fmt.Sprint(same), fmtDur(buildTime))
		}
	}
	t.Notes = append(t.Notes, "expected: error shrinks ~1/sqrt(k); the selection stabilizes well before the counts do")
	return t
}

// E12OverlapSensitivity sweeps the index skew of a synthetic tensor: the
// memoization advantage is a function of projection overlap, which skew
// controls directly.
func E12OverlapSensitivity(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("ablation: memoization gain vs index skew (order-5 synthetic, R=%d)", cfg.rank()),
		Columns: []string{"skew", "comp(half)", "csf", "memo-balanced", "adaptive", "balanced/csf speedup"},
	}
	nnz := 150000
	if cfg.Quick {
		nnz = 25000
	}
	for _, skew := range []float64{0, 0.4, 0.8, 1.2} {
		x := tensor.RandomClustered(5, 4096, nnz, skew, 777+cfg.Seed)
		est := model.NewEstimator(x, 0)
		comp := float64(x.NNZ()) / float64(est.Distinct(0, 3))
		var times []time.Duration
		for _, kind := range []adatm.EngineKind{adatm.EngineCSF, adatm.EngineMemoBalanced, adatm.EngineAdaptive} {
			e, err := adatm.NewEngine(x, kind, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers})
			if err != nil {
				panic(err)
			}
			times = append(times, TimeSweeps(e, x, cfg.rank(), 2, 31))
		}
		t.Add(fmt.Sprintf("%.1f", skew), fmt.Sprintf("%.2f", comp),
			fmtDur(times[0]), fmtDur(times[1]), fmtDur(times[2]),
			fmt.Sprintf("%.2fx", float64(times[0])/float64(times[1])))
	}
	t.Notes = append(t.Notes, "higher skew => more index overlap after contraction => deeper trees pay off more")
	return t
}

// E13NNZScaling verifies the kernels scale linearly in the nonzero count.
func E13NNZScaling(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("sweep time vs nnz (order-4 synthetic, R=%d)", cfg.rank()),
		Columns: []string{"nnz", "coo", "csf", "adaptive", "adaptive us/knnz"},
	}
	sizes := []int{50000, 100000, 200000, 400000}
	if cfg.Quick {
		sizes = []int{20000, 40000, 80000}
	}
	for _, nnz := range sizes {
		x := tensor.RandomClustered(4, 8192, nnz, 0.7, 888+cfg.Seed)
		var times []time.Duration
		for _, kind := range []adatm.EngineKind{adatm.EngineCOO, adatm.EngineCSF, adatm.EngineAdaptive} {
			e, err := adatm.NewEngine(x, kind, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers})
			if err != nil {
				panic(err)
			}
			times = append(times, TimeSweeps(e, x, cfg.rank(), 2, 37))
		}
		perK := float64(times[2].Microseconds()) / (float64(x.NNZ()) / 1000)
		t.Add(x.NNZ(), fmtDur(times[0]), fmtDur(times[1]), fmtDur(times[2]), fmt.Sprintf("%.2f", perK))
	}
	t.Notes = append(t.Notes, "us/knnz should stay roughly flat: the kernels are linear in nnz")
	return t
}

// E14CompletionQuality reports the masked-completion extension: held-out
// RMSE vs the mean baseline and the zero-imputing decomposition.
func E14CompletionQuality(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "extension: masked completion vs zero-imputing CP on held-out entries",
		Columns: []string{"model", "train RMSE", "test RMSE", "vs mean baseline"},
	}
	nnz := 120000
	if cfg.Quick {
		nnz = 30000
	}
	full := tensor.Generate(tensor.GenSpec{
		Name: "ratings", Dims: []int{1200, 500, 40}, NNZ: nnz,
		Skew: []float64{0.3, 0.5, 0.1}, Rank: 5, Noise: 0.05, Seed: 555 + cfg.Seed,
	})
	train, testIdx, testVals := holdOut(full, 0.1)
	mu := 0.0
	for _, v := range train.Vals {
		mu += v
	}
	mu /= float64(train.NNZ())
	baseRMSE := rmseOver(testIdx, testVals, func([]tensor.Index) float64 { return mu })
	t.Add("predict-the-mean", "-", fmt.Sprintf("%.4f", baseRMSE), "1.00x")

	dec, err := adatm.Decompose(train, adatm.Options{Rank: 8, MaxIters: 20, Tol: 1e-6, Seed: 3, Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	zeroRMSE := rmseOver(testIdx, testVals, func(idx []tensor.Index) float64 { return adatm.Reconstruct(dec, idx) })
	t.Add("zero-imputing CP r=8", "-", fmt.Sprintf("%.4f", zeroRMSE), fmt.Sprintf("%.2fx", baseRMSE/zeroRMSE))

	for _, r := range []int{4, 8} {
		res, err := adatm.Complete(train, adatm.CompleteOptions{Rank: r, MaxIters: 20, Seed: 3, Ridge: 0.05, Workers: cfg.Workers})
		if err != nil {
			panic(err)
		}
		rmse := rmseOver(testIdx, testVals, res.Predict)
		t.Add(fmt.Sprintf("masked completion r=%d", r), fmt.Sprintf("%.4f", res.RMSE),
			fmt.Sprintf("%.4f", rmse), fmt.Sprintf("%.2fx", baseRMSE/rmse))
	}
	t.Notes = append(t.Notes, "completion must beat the mean baseline; zero-imputing CP is expected to lose (bias toward zero)")
	return t
}

func holdOut(x *tensor.COO, frac float64) (train *tensor.COO, testIdx [][]tensor.Index, testVals []float64) {
	train = tensor.NewCOO(x.Dims, x.NNZ())
	idx := make([]tensor.Index, x.Order())
	for k := 0; k < x.NNZ(); k++ {
		for m := range idx {
			idx[m] = x.Inds[m][k]
		}
		// Deterministic pseudo-random split from the coordinate hash.
		h := uint64(2166136261)
		for _, i := range idx {
			h = (h ^ uint64(i)) * 16777619
		}
		if float64(h%1000)/1000 < frac {
			testIdx = append(testIdx, append([]tensor.Index(nil), idx...))
			testVals = append(testVals, x.Vals[k])
		} else {
			train.Append(idx, x.Vals[k])
		}
	}
	return train, testIdx, testVals
}

func rmseOver(idx [][]tensor.Index, vals []float64, predict func([]tensor.Index) float64) float64 {
	s := 0.0
	for i, coords := range idx {
		d := vals[i] - predict(coords)
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)))
}

// E15SymbolicThroughput compares the radix-based symbolic builder's
// throughput across strategies and orders (design-choice ablation).
func E15SymbolicThroughput(cfg Config) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "ablation: symbolic-phase throughput (radix builder) by strategy and order",
		Columns: []string{"tensor", "strategy", "symbolic time", "Mnnz/s", "index bytes"},
	}
	suite := append(ProfileSuite(cfg, "delicious4d"), RandomOrderSuite(cfg, []int{6, 8})...)
	for _, ds := range suite {
		x := ds.X
		n := x.Order()
		for _, s := range []struct {
			name string
			str  *memo.Strategy
		}{{"flat", memo.Flat(n)}, {"balanced", memo.Balanced(n)}} {
			start := time.Now()
			e, err := memo.New(x, s.str, cfg.Workers, s.name)
			if err != nil {
				panic(err)
			}
			d := time.Since(start)
			mnnzs := float64(x.NNZ()) / 1e6 / d.Seconds()
			t.Add(ds.Name, s.name, fmtDur(d), fmt.Sprintf("%.1f", mnnzs), fmtMiB(e.Stats().IndexBytes))
		}
	}
	return t
}
