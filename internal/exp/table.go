// Package exp implements the reproduction's experiment harness: one driver
// per table/figure of the evaluation (see DESIGN.md §3 and EXPERIMENTS.md),
// producing aligned text tables that cmd/adabench prints and the root
// benchmark suite wraps.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of string cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// JSON renders the table as one machine-readable JSON object per table:
// the header fields plus rows as column-keyed records.
func (t *Table) JSON(w io.Writer) error {
	records := make([]map[string]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		rec := make(map[string]string, len(t.Columns))
		for i, c := range t.Columns {
			if i < len(row) {
				rec[c] = row[i]
			}
		}
		records = append(records, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID    string              `json:"id"`
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
		Notes []string            `json:"notes,omitempty"`
	}{t.ID, t.Title, records, t.Notes})
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
