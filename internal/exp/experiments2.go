package exp

import (
	"fmt"
	"math"
	"time"

	"adatm"
	"adatm/internal/audit"
	"adatm/internal/memo"
)

// E6Memory reports each engine's auxiliary storage relative to the raw COO
// tensor footprint.
func E6Memory(cfg Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("auxiliary memory after one CP-ALS iteration (R=%d)", cfg.rank()),
		Columns: []string{"tensor", "coo bytes", "engine", "index", "peak values", "aux/coo"},
	}
	for _, ds := range ProfileSuite(cfg) {
		x := ds.X
		cooBytes := int64(x.NNZ()) * int64(4*x.Order()+8)
		for _, e := range EngineSet(x, cfg) {
			TimeSweeps(e, x, cfg.rank(), 1, 17) // populate caches/counters
			s := e.Stats()
			aux := s.IndexBytes + s.PeakValueBytes
			t.Add(ds.Name, fmtMiB(cooBytes), e.Name(), fmtMiB(s.IndexBytes), fmtMiB(s.PeakValueBytes),
				fmt.Sprintf("%.2f", float64(aux)/float64(cooBytes)))
		}
	}
	t.Notes = append(t.Notes, "coo bytes = nnz·(4·N + 8); the coo engine needs no auxiliary structures")
	return t
}

// E7ModelAccuracy validates the cost model through the audit layer: one
// audit.Decision per tensor (the scored plan), one reconciliation per
// candidate (measured ops from the engine's exact counters, measured time
// from timed sweeps), and the table derived from the resulting audit
// records — the same machinery production runs use, so the offline
// validation and the always-on audit can never drift apart. With
// Config.AuditW set (adabench -auditfile), every record is appended to the
// JSONL decision ledger.
func E7ModelAccuracy(cfg Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("model accuracy (R=%d): prediction error, rank correlation, top-1 hit", cfg.rank()),
		Columns: []string{"tensor", "max |pred-exact|/exact", "spearman(pred, time)", "model pick", "measured best", "top1", "penalty"},
	}
	ledger := audit.NewLedger(cfg.AuditW)
	for _, ds := range ProfileSuite(cfg) {
		x := ds.X
		plan := adatm.PlanFor(x, cfg.rank(), 0)
		dec := audit.NewDecision(plan)
		var predOps, measured []float64
		var names []string
		maxRelErr := 0.0
		for _, c := range plan.Candidates {
			eng, err := memo.New(x, c.Strategy, cfg.Workers, c.Name)
			if err != nil {
				panic(err)
			}
			exact := eng.PerIterationOps(cfg.rank())
			d := TimeSweeps(eng, x, cfg.rank(), 2, 19)
			s := eng.Stats()
			rep := audit.ReconcileCandidate(dec, c.Name, audit.Measured{
				Iters:                1,
				OpsPerIter:           float64(exact),
				MTTKRPSecondsPerIter: d.Seconds(),
				PeakValueBytes:       s.PeakValueBytes,
				IndexBytes:           s.IndexBytes,
			}, 0)
			if err := ledger.Append(audit.Record{Decision: dec, Report: rep}); err != nil {
				panic(err)
			}
			q, _ := rep.Quantity(audit.QOpsPerIter)
			if re := math.Abs(q.RelErr); re > maxRelErr {
				maxRelErr = re
			}
			predOps = append(predOps, float64(c.Pred.Ops))
			measured = append(measured, d.Seconds())
			names = append(names, c.Name)
		}
		bestIdx := 0
		for i := range measured {
			if measured[i] < measured[bestIdx] {
				bestIdx = i
			}
		}
		pickIdx := 0
		for i, n := range names {
			if n == plan.Chosen.Name {
				pickIdx = i
			}
		}
		penalty := measured[pickIdx]/measured[bestIdx] - 1
		t.Add(ds.Name, fmt.Sprintf("%.1f%%", 100*maxRelErr),
			fmt.Sprintf("%.2f", spearman(predOps, measured)),
			names[pickIdx], names[bestIdx], fmt.Sprint(pickIdx == bestIdx),
			fmt.Sprintf("%.1f%%", 100*penalty))
	}
	t.Notes = append(t.Notes,
		"pred-exact error isolates the sketch (the op formula is exact given exact counts)",
		"penalty = time(model pick)/time(measured best) − 1",
		"each (decision, candidate) pair is an audit.Record; adabench -auditfile captures them as JSONL")
	return t
}

// E8BudgetAdaptivity shows the selector degrading gracefully as the memory
// budget shrinks.
func E8BudgetAdaptivity(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("adaptive strategy vs memory budget (enron4d profile, R=%d)", cfg.rank()),
		Columns: []string{"budget", "chosen", "tree", "pred ops", "pred aux bytes", "sweep time"},
	}
	ds := ProfileSuite(cfg, "enron4d")[0]
	x := ds.X
	unbounded := adatm.PlanFor(x, cfg.rank(), 0)
	full := unbounded.Chosen.Pred.IndexBytes + unbounded.Chosen.Pred.PeakValueBytes
	for _, frac := range []float64{0, 1.0, 0.75, 0.5, 0.25, 0.1} {
		budget := int64(0)
		if frac > 0 {
			budget = int64(frac * float64(full))
		}
		plan := adatm.PlanFor(x, cfg.rank(), budget)
		eng, err := memo.New(x, plan.Chosen.Strategy, cfg.Workers, plan.Chosen.Name)
		if err != nil {
			panic(err)
		}
		d := TimeSweeps(eng, x, cfg.rank(), 2, 23)
		label := "unbounded"
		if budget > 0 {
			label = fmt.Sprintf("%.0f%% of full", 100*frac)
		}
		aux := plan.Chosen.Pred.IndexBytes + plan.Chosen.Pred.PeakValueBytes
		t.Add(label, plan.Chosen.Name, plan.Chosen.Strategy.String(), plan.Chosen.Pred.Ops, fmtMiB(aux), fmtDur(d))
	}
	return t
}

// E9SymbolicCost quantifies the one-time symbolic preprocessing against the
// per-iteration saving over the CSF baseline.
func E9SymbolicCost(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("symbolic (one-time) cost vs per-iteration saving (R=%d)", cfg.rank()),
		Columns: []string{"tensor", "engine", "symbolic", "sweep", "csf sweep", "amortize after"},
	}
	for _, ds := range ProfileSuite(cfg) {
		x := ds.X
		csfEng, err := adatm.NewEngine(x, adatm.EngineCSF, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers})
		if err != nil {
			panic(err)
		}
		csfSweep := TimeSweeps(csfEng, x, cfg.rank(), 2, 29)
		for _, kind := range []adatm.EngineKind{adatm.EngineMemoBalanced, adatm.EngineAdaptive} {
			e, err := adatm.NewEngine(x, kind, adatm.EngineConfig{Rank: cfg.rank(), Workers: cfg.Workers})
			if err != nil {
				panic(err)
			}
			sweep := TimeSweeps(e, x, cfg.rank(), 2, 29)
			sym := time.Duration(e.Stats().SymbolicNS)
			amortize := "never"
			if saving := csfSweep - sweep; saving > 0 {
				amortize = fmt.Sprintf("%d iters", int64(math.Ceil(float64(sym)/float64(saving))))
			}
			t.Add(ds.Name, e.Name(), fmtDur(sym), fmtDur(sweep), fmtDur(csfSweep), amortize)
		}
	}
	t.Notes = append(t.Notes, "symbolic cost is paid once per tensor and reused across ranks, initializations, and restarts")
	return t
}

// E10Convergence verifies end-to-end that every engine drives CP-ALS to the
// same solution, and that a planted low-rank signal is recovered.
func E10Convergence(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "CP-ALS convergence equivalence across engines (planted rank-4 tensor, R=4)",
		Columns: []string{"engine", "iters", "final fit", "|fit - reference|"},
	}
	x := adatm.Generate(adatm.GenSpec{
		Name: "planted", Dims: []int{60, 50, 40, 30}, NNZ: 60000,
		Skew: []float64{0.3, 0.3, 0.3, 0.3}, Rank: 4, Noise: 0.01, Seed: 424 + cfg.Seed,
	})
	var refFit float64
	for i, k := range adatm.EngineKinds() {
		res, err := adatm.Decompose(x, adatm.Options{Rank: 4, MaxIters: 30, Tol: 1e-9, Seed: 31, Workers: cfg.Workers, Engine: k})
		if err != nil {
			panic(err)
		}
		if i == 0 {
			refFit = res.Fit
		}
		t.Add(string(k), res.Iters, fmt.Sprintf("%.6f", res.Fit), fmt.Sprintf("%.2e", math.Abs(res.Fit-refFit)))
	}
	t.Notes = append(t.Notes, "identical seeds: all engines must follow the same ALS trajectory (differences are FP reassociation only)")
	return t
}

// Runner is an experiment entry point.
type Runner struct {
	ID   string
	Desc string
	Run  func(Config) *Table
}

// Registry lists every experiment in run order.
func Registry() []Runner {
	return []Runner{
		{"T1", "dataset suite statistics", T1DatasetTable},
		{"E1", "MTTKRP sweep time per engine", E1MTTKRPTime},
		{"E2", "CP-ALS per-iteration time", E2CPALSIter},
		{"E3", "order scaling", E3OrderScaling},
		{"E4", "rank sweep", E4RankSweep},
		{"E5", "thread scaling", E5ThreadScaling},
		{"E6", "memory footprint", E6Memory},
		{"E7", "model accuracy", E7ModelAccuracy},
		{"E8", "memory-budget adaptivity", E8BudgetAdaptivity},
		{"E9", "symbolic preprocessing cost", E9SymbolicCost},
		{"E10", "convergence equivalence", E10Convergence},
		{"E11", "sketch-size ablation", E11SketchSensitivity},
		{"E12", "overlap-sensitivity ablation", E12OverlapSensitivity},
		{"E13", "nnz scaling", E13NNZScaling},
		{"E14", "masked-completion extension", E14CompletionQuality},
		{"E15", "symbolic throughput ablation", E15SymbolicThroughput},
		{"E16", "mode-permutation ablation", E16PermutationAblation},
		{"E17", "initialization quality", E17InitQuality},
		{"E18", "Poisson vs Gaussian objective", E18PoissonVsGaussian},
		{"E19", "statistical selector validation", E19SelectorRegret},
		{"E20", "roofline time-model ablation", E20TimeModel},
		{"E21", "partitioner quality (distributed sim)", E21PartitionerQuality},
		{"E22", "simulated strong scaling", E22SimulatedScaling},
	}
}

// Find returns the runner with the given id (case-sensitive) or nil.
func Find(id string) *Runner {
	for _, r := range Registry() {
		if r.ID == id {
			return &r
		}
	}
	return nil
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, r := range reg {
		ids[i] = r.ID
	}
	return ids
}
