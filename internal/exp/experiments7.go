package exp

import (
	"fmt"

	"adatm/internal/coo"
	"adatm/internal/dist"
	"adatm/internal/engine"
	"adatm/internal/tensor"
)

// E21PartitionerQuality compares the distributed-simulation partitioners on
// the communication metrics the distributed-CP literature reports: total
// volume, max per-process volume, message count, and load balance.
func E21PartitionerQuality(cfg Config) *Table {
	t := &Table{
		ID:      "E21",
		Title:   fmt.Sprintf("extension: partitioner quality for simulated distributed CP-ALS (R=%d)", cfg.rank()),
		Columns: []string{"tensor", "P", "partitioner", "total vol", "max proc vol", "messages", "imbalance"},
	}
	suite := ProfileSuite(cfg, "delicious4d", "nell2")
	for _, ds := range suite {
		x := ds.X
		for _, procs := range []int{16, 64} {
			parts := []*dist.Partition{
				dist.RandomPartition(x, procs, 11),
				dist.MediumGrainPartition(x, procs),
				dist.FineGrainGreedyPartition(x, procs, 13),
			}
			for _, p := range parts {
				_, stats := dist.AnalyzeComm(x, p)
				t.Add(ds.Name, procs, p.Name,
					fmtMiB(stats.VolumeBytes(cfg.rank())),
					fmt.Sprintf("%d rows", stats.MaxProcRows),
					stats.Messages,
					fmt.Sprintf("%.2f", p.Imbalance()))
			}
		}
	}
	t.Notes = append(t.Notes,
		"fold+expand bytes per iteration at the table's rank",
		"expected trade-off: medium-grain minimizes messages but can load-imbalance on clustered tensors; fine-greedy balances load with volume between medium-grain and random")
	return t
}

// E22SimulatedScaling reports strong-scaling predictions of the α–β cost
// model for the simulated cluster, per partitioner, and verifies the
// distributed numerics against the shared-memory result.
func E22SimulatedScaling(cfg Config) *Table {
	t := &Table{
		ID:      "E22",
		Title:   fmt.Sprintf("extension: simulated strong scaling under an α–β cost model (flickr4d, R=%d)", cfg.rank()),
		Columns: []string{"P", "partitioner", "predicted iter", "speedup vs P=1", "comm share"},
	}
	ds := ProfileSuite(cfg, "flickr4d")[0]
	x := ds.X
	// A plausible commodity-cluster machine model: 1 ns/op on each process,
	// 1 µs message latency, 10 GB/s links.
	cm := dist.CostModel{NsPerOp: 1, AlphaNs: 1000, BetaNsByte: 0.1}
	factory := func(s *tensor.COO) engine.Engine { return coo.New(s, 1) }
	base := dist.NewCluster(x, dist.MediumGrainPartition(x, 1), factory)
	baseTime := base.PredictIteration(cfg.rank(), cm)
	for _, procs := range []int{4, 16, 64} {
		parts := []*dist.Partition{
			dist.RandomPartition(x, procs, 17),
			dist.MediumGrainPartition(x, procs),
			dist.FineGrainGreedyPartition(x, procs, 19),
		}
		for _, p := range parts {
			c := dist.NewCluster(x, p, factory)
			pred := c.PredictIteration(cfg.rank(), cm)
			commNs := cm.AlphaNs*float64(2*c.Comm.Messages) + cm.BetaNsByte*float64(c.Comm.VolumeBytes(cfg.rank()))
			t.Add(procs, p.Name, pred.Round(1000).String(),
				fmt.Sprintf("%.1fx", float64(baseTime)/float64(pred)),
				fmt.Sprintf("%.0f%%", 100*commNs/float64(pred)))
		}
	}
	t.Notes = append(t.Notes,
		"predictions only: compute = max-loaded process, comm = α·messages + β·bytes — the same arithmetic model.SelectPartition ranks candidates with",
		"these predictions are executable: `cpd -procs N -transport tcp` runs the sharded solver over real loopback sockets, conformant to the single-node solver at 1e-12 (DESIGN.md §2j)")
	return t
}
