package exp

import (
	"fmt"
	"math/rand"
	"time"

	"adatm"
	"adatm/internal/memo"
	"adatm/internal/model"
	"adatm/internal/tensor"
)

// E19SelectorRegret validates the model statistically: over a population of
// random tensors (random order, shape, and skew), how often is the model's
// pick the measured-fastest strategy, and how much slower is it when not?
func E19SelectorRegret(cfg Config) *Table {
	t := &Table{
		ID:      "E19",
		Title:   fmt.Sprintf("statistical selector validation over random tensors (R=%d)", cfg.rank()),
		Columns: []string{"population", "tensors", "top-1 rate", "top-2 rate", "mean penalty", "max penalty"},
	}
	trials := 12
	nnz := 120000
	if cfg.Quick {
		trials = 6
		nnz = 25000
	}
	populations := []struct {
		name   string
		orders []int
	}{
		{"order 3-4", []int{3, 4}},
		{"order 5-8", []int{5, 6, 8}},
	}
	rng := rand.New(rand.NewSource(4242 + cfg.Seed))
	for _, pop := range populations {
		top1, top2 := 0, 0
		var meanPen, maxPen float64
		for trial := 0; trial < trials; trial++ {
			order := pop.orders[trial%len(pop.orders)]
			skew := 0.3 + rng.Float64()*0.9
			dim := 1 << (10 + rng.Intn(4))
			x := tensor.RandomClustered(order, dim, nnz, skew, rng.Int63())
			plan := adatm.PlanFor(x, cfg.rank(), 0)
			// Measure every candidate.
			var times []time.Duration
			pickIdx := -1
			for i, c := range plan.Candidates {
				eng, err := memo.New(x, c.Strategy, cfg.Workers, c.Name)
				if err != nil {
					panic(err)
				}
				times = append(times, TimeSweeps(eng, x, cfg.rank(), 2, 47))
				if c.Name == plan.Chosen.Name {
					pickIdx = i
				}
			}
			best, second := bestTwo(times)
			pen := float64(times[pickIdx])/float64(times[best]) - 1
			meanPen += pen
			if pen > maxPen {
				maxPen = pen
			}
			if pickIdx == best {
				top1++
				top2++
			} else if pickIdx == second {
				top2++
			}
		}
		meanPen /= float64(trials)
		t.Add(pop.name, trials,
			fmt.Sprintf("%d/%d", top1, trials), fmt.Sprintf("%d/%d", top2, trials),
			fmt.Sprintf("%.1f%%", 100*meanPen), fmt.Sprintf("%.1f%%", 100*maxPen))
	}
	t.Notes = append(t.Notes,
		"penalty = time(model pick)/time(measured best) − 1, per tensor",
		"near-ties between candidates make top-1 noisy; the penalty is the operative metric")
	return t
}

// E20TimeModel compares op-count-ranked selection against roofline
// time-ranked selection (calibrated ns/op and ns/byte).
func E20TimeModel(cfg Config) *Table {
	t := &Table{
		ID:      "E20",
		Title:   fmt.Sprintf("ablation: op-count model vs calibrated roofline time model (R=%d)", cfg.rank()),
		Columns: []string{"tensor", "ops-model pick", "sweep", "time-model pick", "sweep", "calibration"},
	}
	coeffs := model.Calibrate()
	calib := fmt.Sprintf("%.2fns/op %.3fns/B", coeffs.NsPerOp, coeffs.NsPerByte)
	for _, ds := range ProfileSuite(cfg, "delicious4d", "enron4d", "lbnl5d") {
		x := ds.X
		opsPlan := adatm.PlanFor(x, cfg.rank(), 0)
		timePlan := model.SelectByTime(x, model.Options{Rank: cfg.rank()}, coeffs)
		measure := func(s *memo.Strategy, name string) time.Duration {
			eng, err := memo.New(x, s, cfg.Workers, name)
			if err != nil {
				panic(err)
			}
			return TimeSweeps(eng, x, cfg.rank(), 2, 53)
		}
		t.Add(ds.Name,
			opsPlan.Chosen.Name, fmtDur(measure(opsPlan.Chosen.Strategy, "ops")),
			timePlan.Chosen.Name, fmtDur(measure(timePlan.Chosen.Strategy, "time")),
			calib)
	}
	t.Notes = append(t.Notes, "the two models usually agree; they diverge when a deep tree's traffic outweighs its op savings")
	return t
}

func bestTwo(times []time.Duration) (best, second int) {
	best, second = 0, -1
	for i := 1; i < len(times); i++ {
		if times[i] < times[best] {
			second = best
			best = i
		} else if second < 0 || times[i] < times[second] {
			second = i
		}
	}
	if second < 0 {
		second = best
	}
	return best, second
}
