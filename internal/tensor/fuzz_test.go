package tensor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS hardens the parser: arbitrary input must either parse into a
// tensor that passes Validate and survives a write/read round trip, or
// return an error — never panic or produce an inconsistent container.
func FuzzReadTNS(f *testing.F) {
	f.Add("1 1 1 2.5\n2 3 1 -1\n")
	f.Add("# comment\n\n1 2 0.5\n")
	f.Add("1 1 1 1 1 1e30\n")
	f.Add("3 4 nan\n")
	f.Add("1 2 3\n4 5 6\n")
	f.Add(strings.Repeat("9 9 9 1\n", 100))
	f.Add("0 0 0\n")
	f.Add("-1 2 3\n")
	f.Add("1\n")
	f.Add("1 1 NaN\n")
	f.Add("1 1 -NAN\n")
	f.Add("2 2 Inf\n")
	f.Add("2 2 -inf\n")
	f.Add("1 1 +Infinity\n")
	f.Add("1 1 1e400\n")
	f.Add("99999999999 1 1\n")
	f.Add("1 4294967296 1\n")
	f.Add("9223372036854775807 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		x, err := ReadTNS(strings.NewReader(input))
		if err != nil {
			return
		}
		// Successful parses must yield a structurally valid tensor — the
		// parser rejects non-finite values itself, so Validate must never
		// fail on its output.
		if verr := x.Validate(); verr != nil {
			t.Fatalf("invalid tensor accepted: %v", verr)
		}
		// Round trip: write and re-read, shapes must survive.
		var buf bytes.Buffer
		if err := WriteTNS(&buf, x); err != nil {
			t.Fatalf("write of parsed tensor failed: %v", err)
		}
		y, err := ReadTNS(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if y.NNZ() != x.NNZ() || y.Order() != x.Order() {
			t.Fatalf("round trip changed shape: %v -> %v", x, y)
		}
	})
}

// FuzzGenerate hardens the synthetic generator against odd specs.
func FuzzGenerate(f *testing.F) {
	f.Add(uint8(3), uint16(10), uint16(100), float64(0.5), int64(1))
	f.Add(uint8(2), uint16(1), uint16(1), float64(0), int64(0))
	f.Add(uint8(6), uint16(1000), uint16(5000), float64(2), int64(-5))
	f.Fuzz(func(t *testing.T, orderRaw uint8, dimRaw, nnzRaw uint16, skew float64, seed int64) {
		order := 2 + int(orderRaw%6)
		dim := 1 + int(dimRaw%2000)
		nnz := int(nnzRaw % 3000)
		if skew < 0 || skew > 4 || skew != skew {
			skew = 0
		}
		dims := make([]int, order)
		sk := make([]float64, order)
		for i := range dims {
			dims[i] = dim
			sk[i] = skew
		}
		x := Generate(GenSpec{Dims: dims, NNZ: nnz, Skew: sk, Seed: seed})
		if err := x.Validate(); err != nil {
			t.Fatalf("generator produced invalid tensor: %v", err)
		}
		if x.NNZ() > nnz {
			t.Fatalf("generator overshot nnz: %d > %d", x.NNZ(), nnz)
		}
	})
}
