package tensor

import (
	"fmt"
	"math/rand"
	"sort"
)

// Synthetic tensor generators. Real evaluation datasets (FROSTT, Netflix,
// NELL, healthcare claims) are multi-gigabyte and not redistributable, so the
// benchmark suite is driven by generators that reproduce the *shape*
// statistics that determine MTTKRP cost: order, mode sizes, nonzero count,
// and — critically for memoization — the index-reuse (projection overlap)
// profile of each mode, controlled by per-mode skew.

// GenSpec describes a synthetic tensor.
type GenSpec struct {
	Name string
	Dims []int
	NNZ  int
	// Skew per mode: 0 = uniform indices; larger values concentrate mass on
	// few indices (Zipf s=1+Skew), which increases projection overlap the
	// way real web/commerce/health tensors do.
	Skew []float64
	// Rank, if > 0, generates values from a random rank-Rank CP model plus
	// noise so that CP-ALS has signal to recover; otherwise values are
	// uniform in (0, 1].
	Rank int
	// Noise is the relative amplitude of additive noise for Rank > 0.
	Noise float64
	Seed  int64
}

// Generate builds the tensor described by the spec. Duplicate coordinates
// are merged; the requested NNZ is therefore an upper bound that is met
// closely for sparse regimes.
func Generate(spec GenSpec) *COO {
	if len(spec.Dims) < 2 {
		panic("tensor: Generate needs order >= 2")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := len(spec.Dims)
	samplers := make([]func() Index, n)
	for m := 0; m < n; m++ {
		samplers[m] = indexSampler(rng, spec.Dims[m], skewAt(spec.Skew, m))
	}
	t := NewCOO(spec.Dims, spec.NNZ)
	idx := make([]Index, n)
	// Skewed modes collide often; resample in rounds until the deduplicated
	// nonzero count reaches the target (or the pattern saturates).
	for round := 0; round < 8 && t.NNZ() < spec.NNZ; round++ {
		need := spec.NNZ - t.NNZ()
		for k := 0; k < need; k++ {
			for m := 0; m < n; m++ {
				idx[m] = samplers[m]()
			}
			t.Append(idx, rng.Float64()+0.5)
		}
		t.Dedup()
	}
	if spec.Rank > 0 {
		imposeLowRank(t, spec.Rank, spec.Noise, rng)
	}
	return t
}

func skewAt(skew []float64, m int) float64 {
	if m < len(skew) {
		return skew[m]
	}
	return 0
}

// indexSampler returns a sampler over [0, dim). skew==0 is uniform; skew>0
// uses a Zipf distribution with exponent 1+skew whose support is randomly
// permuted so hot indices are scattered across the index space (as in real
// data after random relabelling).
func indexSampler(rng *rand.Rand, dim int, skew float64) func() Index {
	if skew <= 0 {
		return func() Index { return Index(rng.Intn(dim)) }
	}
	z := rand.NewZipf(rng, 1+skew, 1, uint64(dim-1))
	// A lightweight scrambling permutation: affine map with a stride coprime
	// to dim (guaranteeing a bijection), so hot indices are scattered across
	// the index space the way relabelled real data looks.
	d := uint64(dim)
	stride := uint64(rng.Intn(dim)) + 1
	for gcd(stride, d) != 1 {
		stride++
	}
	return func() Index {
		return Index((z.Uint64() * stride) % d)
	}
}

// imposeLowRank overwrites the values at the existing nonzero coordinates
// with samples from a random rank-R CP model plus relative Gaussian noise.
// The sparsity pattern is kept, so structural statistics are unchanged.
func imposeLowRank(t *COO, rank int, noise float64, rng *rand.Rand) {
	n := t.Order()
	factors := make([][][]float64, n)
	for m := 0; m < n; m++ {
		f := make([][]float64, t.Dims[m])
		for i := range f {
			row := make([]float64, rank)
			for r := range row {
				row[r] = rng.Float64()
			}
			f[i] = row
		}
		factors[m] = f
	}
	maxAbs := 0.0
	for k := 0; k < t.NNZ(); k++ {
		v := 0.0
		for r := 0; r < rank; r++ {
			p := 1.0
			for m := 0; m < n; m++ {
				p *= factors[m][t.Inds[m][k]][r]
			}
			v += p
		}
		t.Vals[k] = v
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if noise > 0 {
		for k := range t.Vals {
			t.Vals[k] += noise * maxAbs * rng.NormFloat64()
		}
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Profiles mirrors (at laptop scale) the shapes of the tensors commonly used
// in the sparse-CP literature this paper evaluates on. Dimensions and nnz
// are scaled down ~1000x while preserving order, relative mode sizes, and
// skew (index reuse).
var Profiles = []GenSpec{
	{Name: "netflix3d", Dims: []int{4800, 1700, 200}, NNZ: 400000, Skew: []float64{0.3, 0.5, 0.1}, Seed: 101},
	{Name: "nell2", Dims: []int{12000, 300, 8000}, NNZ: 300000, Skew: []float64{0.6, 0.9, 0.6}, Seed: 102},
	{Name: "amazon3d", Dims: []int{26000, 9500, 1500}, NNZ: 500000, Skew: []float64{0.5, 0.5, 0.8}, Seed: 103},
	{Name: "delicious4d", Dims: []int{600, 5300, 17000, 2400}, NNZ: 400000, Skew: []float64{0.2, 0.6, 0.7, 0.7}, Seed: 104},
	{Name: "flickr4d", Dims: []int{320, 3200, 28000, 1600}, NNZ: 350000, Skew: []float64{0.2, 0.6, 0.7, 0.7}, Seed: 105},
	{Name: "enron4d", Dims: []int{1100, 1200, 12000, 400}, NNZ: 250000, Skew: []float64{0.8, 0.8, 0.9, 0.3}, Seed: 106},
	{Name: "uber4d", Dims: []int{180, 24, 1100, 1600}, NNZ: 300000, Skew: []float64{0.1, 0.0, 0.4, 0.4}, Seed: 107},
	{Name: "chicago4d", Dims: []int{600, 24, 77, 320}, NNZ: 350000, Skew: []float64{0.1, 0.1, 0.5, 0.3}, Seed: 108},
	{Name: "nips4d", Dims: []int{2500, 2800, 14000, 17}, NNZ: 300000, Skew: []float64{0.4, 0.5, 0.8, 0.0}, Seed: 109},
	{Name: "lbnl5d", Dims: []int{1600, 4200, 1600, 4200, 860}, NNZ: 250000, Skew: []float64{0.5, 0.5, 0.5, 0.5, 0.6}, Seed: 110},
}

// Profile returns the named generator spec, or an error listing the known
// names.
func Profile(name string) (GenSpec, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(Profiles))
	for i, p := range Profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	return GenSpec{}, fmt.Errorf("tensor: unknown profile %q (known: %v)", name, names)
}

// RandomUniform is a convenience wrapper generating an order-n uniform
// random tensor with every dimension equal to dim.
func RandomUniform(order, dim, nnz int, seed int64) *COO {
	dims := make([]int, order)
	for i := range dims {
		dims[i] = dim
	}
	return Generate(GenSpec{Name: fmt.Sprintf("random%dd", order), Dims: dims, NNZ: nnz, Seed: seed})
}

// RandomClustered generates an order-n random tensor with uniform dimension
// dim and identical skew in every mode, exercising high projection overlap.
func RandomClustered(order, dim, nnz int, skew float64, seed int64) *COO {
	dims := make([]int, order)
	sk := make([]float64, order)
	for i := range dims {
		dims[i] = dim
		sk[i] = skew
	}
	return Generate(GenSpec{Name: fmt.Sprintf("clustered%dd", order), Dims: dims, NNZ: nnz, Skew: sk, Seed: seed})
}

// LowRank generates a tensor whose values follow a random rank-r CP model
// with the given relative noise, on a uniform random sparsity pattern. Note
// that masking a low-rank model to a sparse pattern does not yield a
// low-rank tensor (the implicit zeros break the structure); use
// DenseLowRank when exact recoverability is required.
func LowRank(dims []int, nnz, rank int, noise float64, seed int64) *COO {
	return Generate(GenSpec{Name: "lowrank", Dims: dims, NNZ: nnz, Rank: rank, Noise: noise, Seed: seed})
}

// DenseLowRank generates an exactly rank-r tensor (plus optional relative
// noise) with *every* coordinate stored, so a CP decomposition at rank >= r
// can recover it to machine precision. The product of dims must stay small.
func DenseLowRank(dims []int, rank int, noise float64, seed int64) *COO {
	total := 1
	for _, d := range dims {
		total *= d
		if total > 1<<22 {
			panic("tensor: DenseLowRank expansion too large")
		}
	}
	t := NewCOO(dims, total)
	idx := make([]Index, len(dims))
	var walk func(m int)
	walk = func(m int) {
		if m == len(dims) {
			t.Append(idx, 1)
			return
		}
		for i := 0; i < dims[m]; i++ {
			idx[m] = Index(i)
			walk(m + 1)
		}
	}
	walk(0)
	imposeLowRank(t, rank, noise, rand.New(rand.NewSource(seed)))
	return t
}
