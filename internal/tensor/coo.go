// Package tensor provides the sparse tensor containers, transformations,
// file I/O, and synthetic workload generators shared by every algorithm in
// this repository.
//
// The central type is COO, a coordinate-format sparse tensor stored
// structure-of-arrays: one int32 index slice per mode plus one float64 value
// slice. All MTTKRP engines (COO streaming, CSF, memoized semi-sparse trees)
// are built from a COO instance.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Index is the integer type used for mode indices. int32 keeps the large
// index arrays at half the footprint of int64 while still covering every
// tensor in the evaluation suite (dims < 2^31).
type Index = int32

// COO is a sparse tensor of arbitrary order in coordinate format.
// Invariants (checked by Validate): len(Inds) == len(Dims) == Order();
// every Inds[m] has the same length as Vals; 0 <= Inds[m][k] < Dims[m].
type COO struct {
	Dims []int     // size of each mode
	Inds [][]Index // Inds[m][k]: mode-m index of the k-th nonzero
	Vals []float64 // nonzero values
}

// NewCOO allocates an empty tensor with the given dimensions and capacity
// for nnz nonzeros.
func NewCOO(dims []int, nnz int) *COO {
	t := &COO{Dims: append([]int(nil), dims...), Vals: make([]float64, 0, nnz)}
	t.Inds = make([][]Index, len(dims))
	for m := range t.Inds {
		t.Inds[m] = make([]Index, 0, nnz)
	}
	return t
}

// Order returns the number of modes.
func (t *COO) Order() int { return len(t.Dims) }

// NNZ returns the number of stored nonzeros.
func (t *COO) NNZ() int { return len(t.Vals) }

// Append adds one nonzero. idx must have Order() entries.
func (t *COO) Append(idx []Index, v float64) {
	if len(idx) != t.Order() {
		panic("tensor: Append index arity mismatch")
	}
	for m, i := range idx {
		t.Inds[m] = append(t.Inds[m], i)
	}
	t.Vals = append(t.Vals, v)
}

// Validate checks the structural invariants and index bounds.
func (t *COO) Validate() error {
	if len(t.Inds) != len(t.Dims) {
		return fmt.Errorf("tensor: %d index arrays for %d dims", len(t.Inds), len(t.Dims))
	}
	for m, ind := range t.Inds {
		if len(ind) != len(t.Vals) {
			return fmt.Errorf("tensor: mode %d has %d indices, want %d", m, len(ind), len(t.Vals))
		}
		dim := t.Dims[m]
		if dim <= 0 {
			return fmt.Errorf("tensor: mode %d has non-positive size %d", m, dim)
		}
		for k, i := range ind {
			if i < 0 || int(i) >= dim {
				return fmt.Errorf("tensor: nonzero %d index %d out of range [0,%d) in mode %d", k, i, dim, m)
			}
		}
	}
	for k, v := range t.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tensor: nonzero %d has non-finite value %g", k, v)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *COO) Clone() *COO {
	c := &COO{
		Dims: append([]int(nil), t.Dims...),
		Vals: append([]float64(nil), t.Vals...),
	}
	c.Inds = make([][]Index, len(t.Inds))
	for m := range t.Inds {
		c.Inds[m] = append([]Index(nil), t.Inds[m]...)
	}
	return c
}

// Norm returns the Frobenius norm of the tensor (assuming no duplicate
// coordinates; call Dedup first if duplicates may exist).
func (t *COO) Norm() float64 {
	s := 0.0
	for _, v := range t.Vals {
		s += v * v
	}
	return math.Sqrt(s)
}

// Density returns nnz divided by the product of the dimensions (as float64;
// the product may overflow int64 for high orders).
func (t *COO) Density() float64 {
	p := 1.0
	for _, d := range t.Dims {
		p *= float64(d)
	}
	if p == 0 {
		return 0
	}
	return float64(t.NNZ()) / p
}

// lessTuple compares nonzeros a and b lexicographically over modeOrder.
func (t *COO) lessTuple(a, b int, modeOrder []int) bool {
	for _, m := range modeOrder {
		ia, ib := t.Inds[m][a], t.Inds[m][b]
		if ia != ib {
			return ia < ib
		}
	}
	return false
}

// equalTuple reports whether nonzeros a and b coincide on every mode.
func (t *COO) equalTuple(a, b int) bool {
	for m := range t.Inds {
		if t.Inds[m][a] != t.Inds[m][b] {
			return false
		}
	}
	return true
}

// Sort orders the nonzeros lexicographically by the given mode order (which
// must be a permutation of 0..N-1 or a prefix of one; remaining modes are
// appended in ascending order as tie-breakers).
func (t *COO) Sort(modeOrder []int) {
	order := completeModeOrder(modeOrder, t.Order())
	perm := make([]int, t.NNZ())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return t.lessTuple(perm[a], perm[b], order) })
	t.applyPermutation(perm)
}

// applyPermutation reorders all nonzeros so the k-th is the old perm[k]-th.
func (t *COO) applyPermutation(perm []int) {
	for m := range t.Inds {
		src := t.Inds[m]
		dst := make([]Index, len(src))
		for k, p := range perm {
			dst[k] = src[p]
		}
		t.Inds[m] = dst
	}
	vals := make([]float64, len(t.Vals))
	for k, p := range perm {
		vals[k] = t.Vals[p]
	}
	t.Vals = vals
}

// completeModeOrder validates a (possibly partial) mode order and extends it
// to a full permutation of 0..n-1.
func completeModeOrder(modeOrder []int, n int) []int {
	seen := make([]bool, n)
	order := make([]int, 0, n)
	for _, m := range modeOrder {
		if m < 0 || m >= n || seen[m] {
			panic(fmt.Sprintf("tensor: invalid mode order %v for order-%d tensor", modeOrder, n))
		}
		seen[m] = true
		order = append(order, m)
	}
	for m := 0; m < n; m++ {
		if !seen[m] {
			order = append(order, m)
		}
	}
	return order
}

// Dedup sorts the tensor and sums duplicate coordinates in place. Returns
// the number of duplicates merged.
func (t *COO) Dedup() int {
	if t.NNZ() == 0 {
		return 0
	}
	t.Sort(nil)
	w := 0
	for k := 1; k < t.NNZ(); k++ {
		if t.equalTuple(w, k) {
			t.Vals[w] += t.Vals[k]
			continue
		}
		w++
		if w != k {
			for m := range t.Inds {
				t.Inds[m][w] = t.Inds[m][k]
			}
			t.Vals[w] = t.Vals[k]
		}
	}
	merged := t.NNZ() - (w + 1)
	for m := range t.Inds {
		t.Inds[m] = t.Inds[m][:w+1]
	}
	t.Vals = t.Vals[:w+1]
	return merged
}

// PermuteModes returns a new tensor with modes reordered so that new mode m
// is old mode perm[m].
func (t *COO) PermuteModes(perm []int) *COO {
	if len(perm) != t.Order() {
		panic("tensor: PermuteModes arity mismatch")
	}
	c := &COO{Vals: append([]float64(nil), t.Vals...)}
	c.Dims = make([]int, t.Order())
	c.Inds = make([][]Index, t.Order())
	seen := make([]bool, t.Order())
	for m, p := range perm {
		if p < 0 || p >= t.Order() || seen[p] {
			panic("tensor: PermuteModes invalid permutation")
		}
		seen[p] = true
		c.Dims[m] = t.Dims[p]
		c.Inds[m] = append([]Index(nil), t.Inds[p]...)
	}
	return c
}

// CompactModes removes empty slices: every mode index space is relabelled to
// the dense range of indices that actually occur. Returns, per mode, the
// mapping from new index to original index.
func (t *COO) CompactModes() [][]Index {
	maps := make([][]Index, t.Order())
	for m := range t.Inds {
		used := make([]bool, t.Dims[m])
		for _, i := range t.Inds[m] {
			used[i] = true
		}
		relabel := make([]Index, t.Dims[m])
		var back []Index
		next := Index(0)
		for i, u := range used {
			if u {
				relabel[i] = next
				back = append(back, Index(i))
				next++
			}
		}
		if int(next) == t.Dims[m] {
			maps[m] = back
			continue // no empty slices in this mode
		}
		for k, i := range t.Inds[m] {
			t.Inds[m][k] = relabel[i]
		}
		t.Dims[m] = int(next)
		maps[m] = back
	}
	return maps
}

// At returns the value at the given coordinate by linear search, for tests
// and tiny tensors only.
func (t *COO) At(idx []Index) float64 {
	s := 0.0
	for k := 0; k < t.NNZ(); k++ {
		match := true
		for m := range idx {
			if t.Inds[m][k] != idx[m] {
				match = false
				break
			}
		}
		if match {
			s += t.Vals[k]
		}
	}
	return s
}

// ErrTooLarge is returned by ToDense when the dense expansion would exceed
// the element cap.
var ErrTooLarge = errors.New("tensor: dense expansion too large")

// ToDense expands the tensor into a dense row-major array (last mode
// fastest), refusing if the total element count exceeds maxElems. Intended
// for reference computations in tests.
func (t *COO) ToDense(maxElems int) ([]float64, error) {
	total := 1
	for _, d := range t.Dims {
		if d <= 0 || total > maxElems/d {
			return nil, ErrTooLarge
		}
		total *= d
	}
	out := make([]float64, total)
	strides := make([]int, t.Order())
	s := 1
	for m := t.Order() - 1; m >= 0; m-- {
		strides[m] = s
		s *= t.Dims[m]
	}
	for k := 0; k < t.NNZ(); k++ {
		off := 0
		for m := range strides {
			off += int(t.Inds[m][k]) * strides[m]
		}
		out[off] += t.Vals[k]
	}
	return out, nil
}

// String summarizes the tensor shape.
func (t *COO) String() string {
	return fmt.Sprintf("COO(order=%d dims=%v nnz=%d)", t.Order(), t.Dims, t.NNZ())
}
