package tensor

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Name: "x", Dims: []int{50, 60, 70}, NNZ: 500, Skew: []float64{0.5, 0, 0.3}, Seed: 42}
	a := Generate(spec)
	b := Generate(spec)
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nondeterministic nnz: %d vs %d", a.NNZ(), b.NNZ())
	}
	for k := range a.Vals {
		if a.Vals[k] != b.Vals[k] {
			t.Fatal("nondeterministic values")
		}
	}
}

func TestGenerateValidAndDeduped(t *testing.T) {
	x := Generate(GenSpec{Dims: []int{5, 5, 5, 5}, NNZ: 2000, Skew: []float64{1, 1, 1, 1}, Seed: 7})
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.NNZ() > 2000 {
		t.Fatalf("nnz %d exceeds requested", x.NNZ())
	}
	for k := 1; k < x.NNZ(); k++ {
		if x.equalTuple(k-1, k) {
			t.Fatal("duplicate coordinates after Generate")
		}
	}
}

func TestSkewIncreasesOverlap(t *testing.T) {
	// Higher skew must reduce the number of distinct indices used in a mode.
	flat := Generate(GenSpec{Dims: []int{10000, 10}, NNZ: 5000, Seed: 1})
	skewed := Generate(GenSpec{Dims: []int{10000, 10}, NNZ: 5000, Skew: []float64{1.5, 0}, Seed: 1})
	distinct := func(x *COO, m int) int {
		set := map[Index]struct{}{}
		for _, i := range x.Inds[m] {
			set[i] = struct{}{}
		}
		return len(set)
	}
	df, ds := distinct(flat, 0), distinct(skewed, 0)
	if ds >= df {
		t.Errorf("skewed mode uses %d distinct indices, flat uses %d; want fewer", ds, df)
	}
}

func TestLowRankValuesHaveSignal(t *testing.T) {
	x := LowRank([]int{20, 20, 20}, 2000, 3, 0, 99)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rank-3 model with non-negative factors: all values positive.
	for _, v := range x.Vals {
		if v <= 0 {
			t.Fatalf("non-positive low-rank value %g", v)
		}
	}
}

func TestProfileLookup(t *testing.T) {
	p, err := Profile("delicious4d")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Dims) != 4 {
		t.Fatalf("delicious4d dims = %v", p.Dims)
	}
	if _, err := Profile("no-such"); err == nil {
		t.Fatal("Profile accepted unknown name")
	}
}

func TestProfilesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("profile generation is slow in -short mode")
	}
	for _, p := range Profiles {
		p.NNZ = 20000 // shrink for test speed; shape statistics still checked
		x := Generate(p)
		if err := x.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if x.NNZ() < p.NNZ/2 {
			t.Errorf("%s: dedup collapsed to %d of %d nonzeros", p.Name, x.NNZ(), p.NNZ)
		}
	}
}

func TestRandomHelpers(t *testing.T) {
	u := RandomUniform(4, 30, 500, 5)
	if u.Order() != 4 || u.Dims[3] != 30 {
		t.Fatalf("RandomUniform shape: %v", u.Dims)
	}
	c := RandomClustered(3, 40, 500, 1.0, 5)
	if c.Order() != 3 {
		t.Fatalf("RandomClustered order: %d", c.Order())
	}
}

func TestGenerateTooFewModesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for order < 2")
		}
	}()
	Generate(GenSpec{Dims: []int{5}, NNZ: 10})
}
