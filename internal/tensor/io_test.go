package tensor

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adatm/internal/ckpt"
)

func TestTNSRoundTrip(t *testing.T) {
	x := smallTensor()
	x.Sort(nil)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Dims are inferred as max index + 1, which can shrink modes that end
	// in empty slices; compare the data itself.
	if y.NNZ() != x.NNZ() {
		t.Fatalf("nnz %d != %d", y.NNZ(), x.NNZ())
	}
	for k := 0; k < x.NNZ(); k++ {
		for m := 0; m < x.Order(); m++ {
			if x.Inds[m][k] != y.Inds[m][k] {
				t.Fatalf("index mismatch at nz %d mode %d", k, m)
			}
		}
		if x.Vals[k] != y.Vals[k] {
			t.Fatalf("value mismatch at nz %d", k)
		}
	}
}

func TestReadTNSCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n1 1 1 2.5\n  2 3 1 -1\n"
	x, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 3 || x.NNZ() != 2 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
	if x.Dims[0] != 2 || x.Dims[1] != 3 || x.Dims[2] != 1 {
		t.Fatalf("dims = %v", x.Dims)
	}
	if x.Vals[0] != 2.5 || x.Vals[1] != -1 {
		t.Fatalf("vals = %v", x.Vals)
	}
}

func TestReadTNSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "# only comments\n",
		"mixed order":    "1 1 1 1.0\n1 1 2.0\n",
		"zero index":     "0 1 1.0\n",
		"bad index":      "x 1 1.0\n",
		"bad value":      "1 1 zz\n",
		"lonely field":   "42\n",
		"negative index": "-3 1 1.0\n",
		"nan value":      "1 1 NaN\n",
		"inf value":      "1 1 Inf\n",
		"neg inf value":  "1 1 -Infinity\n",
	}
	for name, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTNS accepted %q", name, in)
		}
	}
}

func TestReadTNSNonFiniteErrorIsLineNumbered(t *testing.T) {
	in := "1 1 1.0\n# fine so far\n2 2 nan\n"
	_, err := ReadTNS(strings.NewReader(in))
	if err == nil {
		t.Fatal("ReadTNS accepted a NaN value")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("error %q does not carry line number and cause", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	x := smallTensor()
	x.Sort(nil)
	for _, name := range []string{"t.tns", "t.tns.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, x); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if y.NNZ() != x.NNZ() || y.Order() != x.Order() {
			t.Fatalf("%s: shape mismatch", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.tns")); err == nil {
		t.Fatal("LoadFile of missing file succeeded")
	}
}

// TestSaveFileCrashMidWriteKeepsOldFile injects a short-writing sink into
// the atomic writer and asserts a save "killed" mid-stream leaves the
// previously saved tensor intact and no temp files behind.
func TestSaveFileCrashMidWriteKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tns")
	x := smallTensor()
	x.Sort(nil)
	if err := SaveFile(path, x); err != nil {
		t.Fatal(err)
	}

	y := RandomClustered(3, 9, 400, 0.5, 77)
	restore := ckpt.InjectFault(&ckpt.Fault{Point: ckpt.FaultMidWrite, AfterBytes: 32})
	err := SaveFile(path, y)
	restore()
	if !errors.Is(err, ckpt.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("old tensor corrupted by crashed save: %v", err)
	}
	if got.NNZ() != x.NNZ() || got.Order() != x.Order() {
		t.Fatalf("old tensor changed: %d nnz order %d", got.NNZ(), got.Order())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("crashed save left stray files: %v", ents)
	}
}
