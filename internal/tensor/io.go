package tensor

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"adatm/internal/ckpt"
)

// The FROSTT ".tns" text format: one nonzero per line, N 1-based integer
// indices followed by a floating-point value, '#' comments and blank lines
// allowed. Files ending in ".gz" are transparently (de)compressed.

// ReadTNS parses a tensor in FROSTT format from r. The order and dimensions
// are inferred: order from the first data line, each dimension as the
// maximum index seen in that mode.
func ReadTNS(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var t *COO
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("tensor: line %d: want at least 2 fields, got %d", line, len(fields))
		}
		order := len(fields) - 1
		if t == nil {
			t = NewCOO(make([]int, order), 1024)
		} else if order != t.Order() {
			return nil, fmt.Errorf("tensor: line %d: order %d differs from first line's %d", line, order, t.Order())
		}
		for m := 0; m < order; m++ {
			i, err := strconv.ParseInt(fields[m], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d mode %d: %v", line, m, err)
			}
			if i < 1 {
				return nil, fmt.Errorf("tensor: line %d mode %d: index %d is not 1-based positive", line, m, i)
			}
			idx := Index(i - 1)
			t.Inds[m] = append(t.Inds[m], idx)
			if int(idx)+1 > t.Dims[m] {
				t.Dims[m] = int(idx) + 1
			}
		}
		v, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d value: %v", line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("tensor: line %d value: non-finite value %q", line, fields[order])
		}
		t.Vals = append(t.Vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("tensor: empty input")
	}
	return t, nil
}

// WriteTNS writes the tensor in FROSTT format (1-based indices).
func WriteTNS(w io.Writer, t *COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var sb []byte
	for k := 0; k < t.NNZ(); k++ {
		sb = sb[:0]
		for m := 0; m < t.Order(); m++ {
			sb = strconv.AppendInt(sb, int64(t.Inds[m][k])+1, 10)
			sb = append(sb, ' ')
		}
		sb = strconv.AppendFloat(sb, t.Vals[k], 'g', -1, 64)
		sb = append(sb, '\n')
		if _, err := bw.Write(sb); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a tensor from a .tns or .tns.gz file.
func LoadFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	return ReadTNS(r)
}

// SaveFile writes a tensor to a .tns or .tns.gz file. The write is
// crash-atomic (temp file + fsync + rename): a process killed mid-save
// leaves any previous file at path intact instead of a truncated one.
func SaveFile(path string, t *COO) error {
	return ckpt.WriteFileAtomic(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".gz") {
			gz := gzip.NewWriter(w)
			if err := WriteTNS(gz, t); err != nil {
				return err
			}
			return gz.Close()
		}
		return WriteTNS(w, t)
	})
}
