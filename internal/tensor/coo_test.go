package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallTensor() *COO {
	t := NewCOO([]int{3, 4, 2}, 4)
	t.Append([]Index{2, 1, 0}, 1.5)
	t.Append([]Index{0, 3, 1}, -2.0)
	t.Append([]Index{1, 0, 0}, 0.5)
	t.Append([]Index{2, 1, 1}, 3.0)
	return t
}

func TestBasicAccessors(t *testing.T) {
	x := smallTensor()
	if x.Order() != 3 || x.NNZ() != 4 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1.5*1.5 + 4 + 0.25 + 9)
	if math.Abs(x.Norm()-want) > 1e-12 {
		t.Errorf("norm = %g, want %g", x.Norm(), want)
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	x := smallTensor()
	x.Inds[1][2] = 4 // dims[1] == 4, so index 4 is out of range
	if err := x.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range index")
	}
}

func TestValidateCatchesNaN(t *testing.T) {
	x := smallTensor()
	x.Vals[0] = math.NaN()
	if err := x.Validate(); err == nil {
		t.Fatal("Validate accepted NaN value")
	}
}

func TestValidateCatchesRaggedArrays(t *testing.T) {
	x := smallTensor()
	x.Inds[2] = x.Inds[2][:3]
	if err := x.Validate(); err == nil {
		t.Fatal("Validate accepted ragged index arrays")
	}
}

func TestSortLexicographic(t *testing.T) {
	x := smallTensor()
	x.Sort(nil)
	for k := 1; k < x.NNZ(); k++ {
		if x.lessTuple(k, k-1, []int{0, 1, 2}) {
			t.Fatalf("not sorted at position %d", k)
		}
	}
	// Values must travel with their coordinates.
	if got := x.At([]Index{0, 3, 1}); got != -2.0 {
		t.Errorf("value moved: At(0,3,1) = %g", got)
	}
}

func TestSortByModeOrder(t *testing.T) {
	x := smallTensor()
	x.Sort([]int{2}) // sort primarily by the last mode
	for k := 1; k < x.NNZ(); k++ {
		if x.Inds[2][k] < x.Inds[2][k-1] {
			t.Fatalf("mode-2 keys not ascending at %d", k)
		}
	}
}

func TestSortInvalidModePanics(t *testing.T) {
	x := smallTensor()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on invalid mode order")
		}
	}()
	x.Sort([]int{0, 0})
}

func TestDedupSums(t *testing.T) {
	x := NewCOO([]int{2, 2}, 4)
	x.Append([]Index{0, 1}, 1)
	x.Append([]Index{1, 1}, 5)
	x.Append([]Index{0, 1}, 2)
	x.Append([]Index{0, 1}, 3)
	merged := x.Dedup()
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if x.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", x.NNZ())
	}
	if got := x.At([]Index{0, 1}); got != 6 {
		t.Errorf("At(0,1) = %g, want 6", got)
	}
	if got := x.At([]Index{1, 1}); got != 5 {
		t.Errorf("At(1,1) = %g, want 5", got)
	}
}

func TestDedupEmpty(t *testing.T) {
	x := NewCOO([]int{2, 2}, 0)
	if x.Dedup() != 0 {
		t.Fatal("Dedup of empty tensor")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := smallTensor()
	c := x.Clone()
	c.Vals[0] = 99
	c.Inds[0][0] = 0
	if x.Vals[0] == 99 || x.Inds[0][0] == 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestPermuteModes(t *testing.T) {
	x := smallTensor()
	p := x.PermuteModes([]int{2, 0, 1})
	if p.Dims[0] != 2 || p.Dims[1] != 3 || p.Dims[2] != 4 {
		t.Fatalf("dims = %v", p.Dims)
	}
	// Element (2,1,0) of x becomes (0,2,1) of p.
	if got := p.At([]Index{0, 2, 1}); got != 1.5 {
		t.Errorf("permuted value = %g, want 1.5", got)
	}
}

func TestCompactModes(t *testing.T) {
	x := NewCOO([]int{10, 5}, 2)
	x.Append([]Index{2, 0}, 1)
	x.Append([]Index{7, 4}, 2)
	maps := x.CompactModes()
	if x.Dims[0] != 2 || x.Dims[1] != 2 {
		t.Fatalf("compact dims = %v", x.Dims)
	}
	if maps[0][0] != 2 || maps[0][1] != 7 || maps[1][0] != 0 || maps[1][1] != 4 {
		t.Fatalf("back maps = %v", maps)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := x.At([]Index{1, 1}); got != 2 {
		t.Errorf("relabelled value = %g, want 2", got)
	}
}

func TestToDense(t *testing.T) {
	x := smallTensor()
	d, err := x.ToDense(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: last mode fastest; element (2,1,0) at offset 2*8 + 1*2 + 0.
	if d[2*8+1*2+0] != 1.5 {
		t.Errorf("dense[2,1,0] = %g", d[2*8+1*2+0])
	}
	if d[0*8+3*2+1] != -2.0 {
		t.Errorf("dense[0,3,1] = %g", d[0*8+3*2+1])
	}
}

func TestToDenseTooLarge(t *testing.T) {
	x := NewCOO([]int{1 << 20, 1 << 20}, 0)
	if _, err := x.ToDense(1 << 20); err == nil {
		t.Fatal("ToDense accepted an oversized expansion")
	}
}

func TestDensity(t *testing.T) {
	x := smallTensor()
	want := 4.0 / (3 * 4 * 2)
	if math.Abs(x.Density()-want) > 1e-15 {
		t.Errorf("density = %g, want %g", x.Density(), want)
	}
}

// Property: Sort is a permutation — multiset of (coords, value) preserved.
func TestSortPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := RandomUniform(3, 6, 30, seed)
		sumBefore := 0.0
		for _, v := range x.Vals {
			sumBefore += v
		}
		mode := rng.Intn(3)
		x.Sort([]int{mode})
		sumAfter := 0.0
		for _, v := range x.Vals {
			sumAfter += v
		}
		if math.Abs(sumBefore-sumAfter) > 1e-9 {
			return false
		}
		return x.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: after Dedup, all coordinates are distinct.
func TestDedupDistinctProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := RandomUniform(3, 3, 40, seed) // small dims force collisions
		x.Dedup()
		for k := 1; k < x.NNZ(); k++ {
			if x.equalTuple(k-1, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
