package perf

import (
	"strings"
	"testing"
)

// mkResult builds a SuiteResult from scenario name -> ns sample vectors.
func mkResult(scenarios map[string][]int64) *SuiteResult {
	r := &SuiteResult{Format: FormatVersion, Env: Fingerprint(), Samples: 1}
	for name, ns := range scenarios {
		sc := ScenarioResult{Name: name}
		for _, v := range ns {
			sc.Samples = append(sc.Samples, Sample{NS: v})
		}
		sc.Summary = Summarize(sc.nsSamples())
		r.Scenarios = append(r.Scenarios, sc)
	}
	return r
}

func TestCompareSelfPasses(t *testing.T) {
	base := mkResult(map[string][]int64{
		"a": {100, 110, 105, 98, 102},
		"b": {2000, 2100, 1950, 2050, 2020},
	})
	c := Compare(base, base, DefaultThresholds())
	if err := c.Gate(); err != nil {
		t.Fatalf("self-compare gate failed: %v", err)
	}
	for _, d := range c.Deltas {
		if d.Regression || d.Significant {
			t.Errorf("self-compare delta flagged: %+v", d)
		}
		if d.DeltaPct != 0 {
			t.Errorf("self-compare delta pct = %v, want 0", d.DeltaPct)
		}
	}
	if !c.EnvComparable {
		t.Error("same-process envs reported as not comparable")
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := mkResult(map[string][]int64{
		"hot":  {100, 101, 99, 102, 100, 98, 103, 100},
		"cold": {500, 505, 498, 502, 501, 499, 503, 500},
	})
	cur := mkResult(map[string][]int64{
		"hot":  {200, 202, 198, 205, 201, 197, 203, 199}, // 2x slower
		"cold": {500, 506, 497, 503, 500, 498, 504, 501}, // unchanged
	})
	c := Compare(base, cur, DefaultThresholds())
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Scenario != "hot" {
		t.Fatalf("Regressions() = %+v, want exactly [hot]", regs)
	}
	err := c.Gate()
	if err == nil {
		t.Fatal("gate passed despite 2x regression")
	}
	if !strings.Contains(err.Error(), "hot") {
		t.Errorf("gate error does not name the scenario: %v", err)
	}
	if strings.Contains(err.Error(), "cold") {
		t.Errorf("gate error names the unchanged scenario: %v", err)
	}
}

func TestCompareImprovementDoesNotGate(t *testing.T) {
	base := mkResult(map[string][]int64{"a": {200, 202, 198, 205, 201, 197, 203, 199}})
	cur := mkResult(map[string][]int64{"a": {100, 101, 99, 102, 100, 98, 103, 100}})
	c := Compare(base, cur, DefaultThresholds())
	if err := c.Gate(); err != nil {
		t.Fatalf("gate failed on improvement: %v", err)
	}
	if len(c.Deltas) != 1 || !c.Deltas[0].Improvement {
		t.Errorf("improvement not reported: %+v", c.Deltas)
	}
}

// TestCompareSizeFloor: a significant but tiny slowdown stays below the
// MinDeltaPct floor and must not gate.
func TestCompareSizeFloor(t *testing.T) {
	base := mkResult(map[string][]int64{"a": {1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}})
	cur := mkResult(map[string][]int64{"a": {1010, 1011, 1012, 1013, 1014, 1015, 1016, 1017}}) // +1%
	c := Compare(base, cur, DefaultThresholds())
	if len(c.Deltas) != 1 {
		t.Fatalf("deltas = %+v", c.Deltas)
	}
	d := c.Deltas[0]
	if !d.Significant {
		t.Fatalf("disjoint samples not significant: %+v", d)
	}
	if d.Regression {
		t.Errorf("1%% delta gated despite 5%% floor: %+v", d)
	}
	if err := c.Gate(); err != nil {
		t.Errorf("gate failed below size floor: %v", err)
	}
}

func TestCompareMissingScenarioFailsGate(t *testing.T) {
	base := mkResult(map[string][]int64{"a": {100}, "dropped": {100}})
	cur := mkResult(map[string][]int64{"a": {100}, "added": {100}})
	c := Compare(base, cur, DefaultThresholds())
	if got := c.OnlyBaseline; len(got) != 1 || got[0] != "dropped" {
		t.Errorf("OnlyBaseline = %v", got)
	}
	if got := c.OnlyCurrent; len(got) != 1 || got[0] != "added" {
		t.Errorf("OnlyCurrent = %v", got)
	}
	err := c.Gate()
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Errorf("gate did not fail on dropped scenario: %v", err)
	}
}

func TestCompareEnvMismatchFlagged(t *testing.T) {
	base := mkResult(map[string][]int64{"a": {100}})
	cur := mkResult(map[string][]int64{"a": {100}})
	cur.Env.MaxProcs = base.Env.MaxProcs + 1
	c := Compare(base, cur, DefaultThresholds())
	if c.EnvComparable {
		t.Error("differing GOMAXPROCS reported comparable")
	}
	var b strings.Builder
	c.WriteTable(&b)
	if !strings.Contains(b.String(), "warning") {
		t.Errorf("table missing env warning:\n%s", b.String())
	}
}

func TestThresholdDefaults(t *testing.T) {
	var z Thresholds
	if z.alpha() != 0.05 || z.minDelta() != 5 {
		t.Errorf("zero-value thresholds = alpha %v, minDelta %v", z.alpha(), z.minDelta())
	}
	custom := Thresholds{Alpha: 0.01, MinDeltaPct: 20}
	if custom.alpha() != 0.01 || custom.minDelta() != 20 {
		t.Errorf("custom thresholds not honored")
	}
}
