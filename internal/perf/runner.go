package perf

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"adatm"
	"adatm/internal/audit"
	"adatm/internal/dense"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// RunnerConfig parameterizes one suite run. Every observability sink is
// optional and nil-safe.
type RunnerConfig struct {
	// Samples is the number of measured samples per scenario (default 5).
	Samples int
	// Warmup is the number of unmeasured warmup units per scenario
	// (default 1): symbolic preprocessing, allocator growth, and cache
	// warming happen there instead of polluting sample 0.
	Warmup int
	// Quick scales every scenario down (~8x fewer nonzeros, rank 8).
	Quick bool
	// Workers is the engines' parallel width (<= 0: GOMAXPROCS).
	Workers int
	// Tracer receives one span per warmup/sample unit (perf/<scenario>).
	Tracer *obs.Tracer
	// Metrics receives the adatm_perf_* series while the suite runs.
	Metrics *obs.Registry
	// Audit receives a perf.suite ledger event when the suite completes.
	Audit *audit.Recorder
	// Sampler supplies the resource timeline embedded in the result. Nil
	// starts a private sampler for the duration of the run, so bench
	// records always carry their timeline.
	Sampler *obs.Sampler
	// Log, when non-nil, receives one progress line per scenario.
	Log io.Writer
}

func (c RunnerConfig) samples() int {
	if c.Samples <= 0 {
		return 5
	}
	return c.Samples
}

func (c RunnerConfig) warmup() int {
	if c.Warmup < 0 {
		return 0
	}
	if c.Warmup == 0 {
		return 1
	}
	return c.Warmup
}

// injectedDelays is the test-only fault hook: a per-scenario artificial
// slowdown added to every sample, used to prove the regression gate fails
// when (and only when) a scenario actually got slower. Production code never
// writes it.
var (
	injectMu       sync.Mutex
	injectedDelays map[string]time.Duration
)

// InjectSampleDelay arms an artificial per-sample delay for the named
// scenario (test hook). The returned function restores the previous state.
func InjectSampleDelay(scenario string, d time.Duration) (restore func()) {
	injectMu.Lock()
	defer injectMu.Unlock()
	if injectedDelays == nil {
		injectedDelays = make(map[string]time.Duration)
	}
	old, had := injectedDelays[scenario]
	injectedDelays[scenario] = d
	return func() {
		injectMu.Lock()
		defer injectMu.Unlock()
		if had {
			injectedDelays[scenario] = old
		} else {
			delete(injectedDelays, scenario)
		}
	}
}

func injectedDelay(scenario string) time.Duration {
	injectMu.Lock()
	defer injectMu.Unlock()
	return injectedDelays[scenario]
}

// runnable is one scenario prepared for repeated sampling.
type runnable struct {
	sc      Scenario
	x       *tensor.COO
	eng     adatm.Engine // KindMTTKRP only; KindFit rebuilds per sample
	factors []*dense.Matrix
	out     *dense.Matrix
	workers int
	samples []Sample
}

// prepare generates the tensor and builds the measurement fixture.
func prepare(sc Scenario, cfg RunnerConfig) (*runnable, error) {
	sc = sc.scaled(cfg.Quick)
	r := &runnable{sc: sc, workers: cfg.Workers}
	r.x = tensor.Generate(sc.Spec)
	if sc.Kind == KindMTTKRP {
		eng, err := adatm.NewEngine(r.x, sc.Engine, adatm.EngineConfig{
			Rank: sc.Rank, Workers: cfg.Workers, Accum: sc.Accum,
		})
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", sc.Name, err)
		}
		r.eng = eng
		rng := rand.New(rand.NewSource(sc.Spec.Seed + 1))
		r.factors = make([]*dense.Matrix, r.x.Order())
		maxDim := 0
		for m := range r.factors {
			r.factors[m] = dense.Random(r.x.Dims[m], sc.Rank, rng)
			if r.x.Dims[m] > maxDim {
				maxDim = r.x.Dims[m]
			}
		}
		r.out = dense.New(maxDim, sc.Rank)
	}
	return r, nil
}

// unit executes one scenario unit (unmeasured warmup or the body of a
// measured sample).
func (r *runnable) unit() error {
	switch r.sc.Kind {
	case KindMTTKRP:
		for mode := 0; mode < r.x.Order(); mode++ {
			mm := &dense.Matrix{Rows: r.x.Dims[mode], Cols: r.sc.Rank, Data: r.out.Data[:r.x.Dims[mode]*r.sc.Rank]}
			if err := r.eng.MTTKRP(mode, r.factors, mm); err != nil {
				return fmt.Errorf("perf: %s: %w", r.sc.Name, err)
			}
			r.eng.FactorUpdated(mode)
		}
		return nil
	case KindFit:
		_, err := adatm.Decompose(r.x, adatm.Options{
			Rank: r.sc.Rank, MaxIters: r.sc.Iters, Tol: 1e-12,
			Seed: r.sc.Spec.Seed + 2, Workers: r.workers,
			Engine: r.sc.Engine, Accum: r.sc.Accum,
		})
		if err != nil {
			return fmt.Errorf("perf: %s: %w", r.sc.Name, err)
		}
		return nil
	default:
		return fmt.Errorf("perf: %s: unknown kind %d", r.sc.Name, r.sc.Kind)
	}
}

// engineOps reads the cumulative engine work counters (zero for KindFit,
// whose engine is internal to Decompose).
func (r *runnable) engineOps() (ops, calls int64) {
	if r.eng == nil {
		return 0, 0
	}
	st := r.eng.Stats()
	return st.HadamardOps, st.MTTKRPCalls
}

// sample runs one measured unit.
func (r *runnable) sample() (Sample, error) {
	var before, after runtime.MemStats
	ops0, calls0 := r.engineOps()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := r.unit(); err != nil {
		return Sample{}, err
	}
	if d := injectedDelay(r.sc.Name); d > 0 {
		time.Sleep(d)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ops1, calls1 := r.engineOps()
	return Sample{
		StartUnixNano: start.UnixNano(),
		NS:            elapsed.Nanoseconds(),
		Allocs:        int64(after.Mallocs - before.Mallocs),
		Bytes:         int64(after.TotalAlloc - before.TotalAlloc),
		HadamardOps:   ops1 - ops0,
		MTTKRPCalls:   calls1 - calls0,
	}, nil
}

// RunSuite executes the scenarios under the repeated-sample protocol: every
// scenario is prepared and warmed, then samples are taken *interleaved*
// (sample i of every scenario before sample i+1 of any) so slow environment
// drift — thermal throttling, a background daemon waking up — spreads across
// all sample sets instead of biasing whichever scenario ran last. Returns
// the versioned suite result with the resource timeline embedded.
func RunSuite(scenarios []Scenario, cfg RunnerConfig) (*SuiteResult, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("perf: no scenarios to run")
	}
	reg := cfg.Metrics
	running := reg.Gauge("adatm_perf_suite_running", "1 while a perf suite is executing.", nil)
	running.Set(1)
	defer running.Set(0)
	reg.Gauge("adatm_perf_scenarios", "Scenario count of the executing perf suite.", nil).
		Set(float64(len(scenarios)))

	suiteStart := time.Now()
	sampler := cfg.Sampler
	private := sampler == nil
	if private {
		sampler = obs.NewSampler(50*time.Millisecond, 8192)
		sampler.Start()
		defer sampler.Stop()
	}

	runs := make([]*runnable, len(scenarios))
	for i, sc := range scenarios {
		r, err := prepare(sc, cfg)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}

	// Warmup phase (unmeasured, traced for post-hoc timeline reading).
	warm := cfg.warmup()
	for _, r := range runs {
		for w := 0; w < warm; w++ {
			sp := cfg.Tracer.StartSpan("perf/warmup/"+r.sc.Name, 0)
			err := r.unit()
			sp.End()
			if err != nil {
				return nil, err
			}
		}
	}

	// Interleaved sampling.
	n := cfg.samples()
	for i := 0; i < n; i++ {
		for _, r := range runs {
			sp := cfg.Tracer.StartSpan("perf/"+r.sc.Name, 0)
			s, err := r.sample()
			sp.End()
			if err != nil {
				return nil, err
			}
			r.samples = append(r.samples, s)
			l := obs.Labels{"scenario": r.sc.Name}
			reg.Gauge("adatm_perf_sample_seconds",
				"Wall seconds of the most recent sample of each perf scenario.", l).
				Set(float64(s.NS) / 1e9)
			reg.Counter("adatm_perf_samples_total",
				"Measured perf samples taken, by scenario.", l).Inc()
		}
	}

	res := &SuiteResult{
		Format:  FormatVersion,
		UnixSec: suiteStart.Unix(),
		Env:     Fingerprint(),
		Samples: n,
		Warmup:  warm,
		Quick:   cfg.Quick,
	}
	for _, r := range runs {
		sc := ScenarioResult{Name: r.sc.Name, Samples: r.samples}
		sc.Summary = Summarize(sc.nsSamples())
		res.Scenarios = append(res.Scenarios, sc)
		reg.Gauge("adatm_perf_median_seconds",
			"Median sample wall seconds of each perf scenario in the last suite run.",
			obs.Labels{"scenario": r.sc.Name}).Set(sc.Summary.MedianNS / 1e9)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "perf: %-40s median %12.0f ns  mad %10.0f ns  (%d samples)\n",
				r.sc.Name, sc.Summary.MedianNS, sc.Summary.MADNS, sc.Summary.N)
		}
	}
	if private {
		// Stop records the final sample before we read the timeline (Stop is
		// idempotent, so the deferred call is a no-op).
		sampler.Stop()
	}
	res.Timeline = sampler.Since(suiteStart.UnixNano())

	cfg.Audit.RecordEvent(audit.Event{
		Kind:   "perf.suite",
		Detail: fmt.Sprintf("%d scenarios × %d samples (warmup %d, quick=%v) in %s", len(scenarios), n, warm, cfg.Quick, time.Since(suiteStart).Round(time.Millisecond)),
	})
	return res, nil
}
