package perf

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adatm"
	"adatm/internal/audit"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// tinyScenarios keeps runner tests fast: a few thousand nonzeros per unit.
func tinyScenarios() []Scenario {
	spec := tensor.GenSpec{Name: "tiny3", Dims: []int{64, 48, 32}, NNZ: 2000, Seed: 901}
	return []Scenario{
		{Name: "mttkrp/tiny3/coo/scatter", Kind: KindMTTKRP, Spec: spec, Engine: adatm.EngineCOO, Accum: adatm.AccumScatter, Rank: 4},
		{Name: "fit/tiny3/coo/scatter", Kind: KindFit, Spec: spec, Engine: adatm.EngineCOO, Accum: adatm.AccumScatter, Rank: 4, Iters: 2},
	}
}

func TestRunSuiteProducesValidResult(t *testing.T) {
	res, err := RunSuite(tinyScenarios(), RunnerConfig{Samples: 3, Warmup: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("result fails validation: %v", err)
	}
	if res.Samples != 3 || res.Warmup != 1 {
		t.Errorf("recorded samples/warmup = %d/%d", res.Samples, res.Warmup)
	}
	if res.Env.GoVersion == "" || res.Env.CPUs <= 0 {
		t.Errorf("fingerprint incomplete: %+v", res.Env)
	}
	mt := res.Scenario("mttkrp/tiny3/coo/scatter")
	if mt == nil || len(mt.Samples) != 3 {
		t.Fatalf("mttkrp scenario result = %+v", mt)
	}
	for i, s := range mt.Samples {
		if s.NS <= 0 || s.StartUnixNano == 0 {
			t.Errorf("sample %d missing timing: %+v", i, s)
		}
		// One sweep of an order-3 tensor = 3 MTTKRP calls with real work.
		if s.MTTKRPCalls != 3 || s.HadamardOps <= 0 {
			t.Errorf("sample %d engine counters: calls=%d ops=%d", i, s.MTTKRPCalls, s.HadamardOps)
		}
	}
	if mt.Summary.N != 3 || mt.Summary.MedianNS <= 0 {
		t.Errorf("summary = %+v", mt.Summary)
	}
	if res.Scenario("fit/tiny3/coo/scatter") == nil {
		t.Error("fit scenario missing from result")
	}
	// The private sampler records at least start and stop samples.
	if len(res.Timeline) < 2 {
		t.Errorf("timeline has %d samples, want >= 2", len(res.Timeline))
	}
}

func TestRunSuiteSinks(t *testing.T) {
	reg := obs.NewRegistry()
	var ledger bytes.Buffer
	rec := audit.NewRecorder(audit.Config{Ledger: &ledger})
	var log bytes.Buffer
	tr := obs.NewTracer(1024)

	if _, err := RunSuite(tinyScenarios()[:1], RunnerConfig{
		Samples: 2, Workers: 1, Metrics: reg, Audit: rec, Tracer: tr, Log: &log,
	}); err != nil {
		t.Fatal(err)
	}
	// One span per warmup unit plus one per sample.
	if tr.Len() < 3 {
		t.Errorf("tracer recorded %d spans, want >= 3", tr.Len())
	}

	var expo bytes.Buffer
	if _, err := reg.WriteTo(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"adatm_perf_suite_running 0",
		"adatm_perf_scenarios 1",
		`adatm_perf_sample_seconds{scenario="mttkrp/tiny3/coo/scatter"}`,
		`adatm_perf_samples_total{scenario="mttkrp/tiny3/coo/scatter"} 2`,
		`adatm_perf_median_seconds{scenario="mttkrp/tiny3/coo/scatter"}`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, expo.String())
		}
	}

	// The ledger got one perf.suite event.
	found := false
	sc := bufio.NewScanner(&ledger)
	for sc.Scan() {
		var rec struct {
			Event *audit.Event `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad ledger line: %v", err)
		}
		if rec.Event != nil && rec.Event.Kind == "perf.suite" {
			found = true
			if !strings.Contains(rec.Event.Detail, "1 scenarios") {
				t.Errorf("perf.suite detail = %q", rec.Event.Detail)
			}
		}
	}
	if !found {
		t.Error("ledger has no perf.suite event")
	}
	if !strings.Contains(log.String(), "mttkrp/tiny3/coo/scatter") {
		t.Errorf("progress log missing scenario line:\n%s", log.String())
	}
}

func TestResultRoundTrip(t *testing.T) {
	res, err := RunSuite(tinyScenarios()[:1], RunnerConfig{Samples: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, res); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Format != FormatVersion {
		t.Errorf("format = %q", back.Format)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Errorf("round trip changed the result:\n%s\nvs\n%s", a, b)
	}
}

func TestWriteFileRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, &SuiteResult{Format: "bogus"}); err == nil {
		t.Fatal("WriteFile accepted an invalid result")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("invalid result still created %s", path)
	}
}

func TestLoadFileRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted corrupt JSON")
	}
	if err := os.WriteFile(path, []byte(`{"format":"adatm-bench/v0","scenarios":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a wrong format version")
	}
}

// TestGateSoundBothWays is the acceptance check for the regression gate:
// a same-commit self-comparison passes, and the same comparison with an
// injected slowdown in one scenario fails naming exactly that scenario.
func TestGateSoundBothWays(t *testing.T) {
	scs := tinyScenarios()[:1]
	name := scs[0].Name
	cfg := RunnerConfig{Samples: 6, Warmup: 1, Workers: 1}
	// The tiny unit runs in ~100µs, where scheduler noise on a busy CI box
	// can exceed the default 5% floor; a 200% floor keeps the clean side
	// deterministic while the injected slowdown below is a >100x signal.
	th := Thresholds{Alpha: 0.05, MinDeltaPct: 200}

	baseline, err := RunSuite(scs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunSuite(scs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(baseline, clean, th).Gate(); err != nil {
		t.Fatalf("same-commit gate failed (false positive): %v", err)
	}

	// Inject a delay that dwarfs the unit time (sub-ms for 2000 nnz, still
	// low single-digit ms under the race detector), rerun, and the gate must
	// fail naming the scenario.
	restore := InjectSampleDelay(name, 100*time.Millisecond)
	slow, err := RunSuite(scs, cfg)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	gerr := Compare(baseline, slow, th).Gate()
	if gerr == nil {
		t.Fatal("gate passed despite injected 20ms slowdown")
	}
	if !strings.Contains(gerr.Error(), name) {
		t.Errorf("gate error does not name the slowed scenario: %v", gerr)
	}

	// The restore function disarmed the hook. (Not re-measured: the sleeps
	// above let the CPU downclock, so an immediate re-run times slow for
	// reasons outside the hook's control.)
	if d := injectedDelay(name); d != 0 {
		t.Errorf("injected delay still armed after restore: %v", d)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() has %d entries, registry %d", len(names), len(registry))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate scenario name %q", n)
		}
		seen[n] = true
		if _, err := Find(n); err != nil {
			t.Errorf("Find(%q): %v", n, err)
		}
	}
	if _, err := Find("no/such/scenario"); err == nil {
		t.Error("Find accepted an unknown name")
	}
	if _, err := Select([]string{"no/such/scenario"}); err == nil {
		t.Error("Select accepted an unknown name")
	}
	all, err := Select(nil)
	if err != nil || len(all) != len(registry) {
		t.Errorf("Select(nil) = %d scenarios, err %v", len(all), err)
	}
}

// TestRegistryScenariosConstruct verifies every registered scenario can build
// its engine fixture in quick mode — a registry typo (bad engine/accum combo)
// should fail here, not in CI's first real suite run.
func TestRegistryScenariosConstruct(t *testing.T) {
	if testing.Short() {
		t.Skip("constructs every registry engine; skipped in -short")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			r, err := prepare(sc, RunnerConfig{Quick: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if sc.Kind == KindMTTKRP {
				if err := r.unit(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestScaledQuick(t *testing.T) {
	sc := registry[0]
	q := sc.scaled(true)
	if q.Spec.NNZ != sc.Spec.NNZ/8 {
		t.Errorf("quick NNZ = %d, want %d", q.Spec.NNZ, sc.Spec.NNZ/8)
	}
	if q.Rank != 8 {
		t.Errorf("quick rank = %d, want 8", q.Rank)
	}
	if full := sc.scaled(false); full.Spec.NNZ != sc.Spec.NNZ {
		t.Error("non-quick scaling changed the spec")
	}
}
