// Package perf is the performance-trajectory subsystem: a registry of named,
// seeded benchmark scenarios, a repeated-sample runner with an environment
// fingerprint, robust summary statistics with a benchstat-style significance
// test, a versioned on-disk result format, and a baseline comparison that
// turns two result files into a regression verdict.
//
// The paper's claim — the cost model picks the fastest configuration — is
// only checkable over time if the underlying measurements are trustworthy
// and comparable across commits. Everything here is dependency-free and
// deterministic given a seed, so two runs of the same binary on the same
// machine are comparable sample sets, not anecdotes.
package perf

import (
	"math"
	"sort"
)

// Summary is the robust description of one scenario's sample set. Median and
// MAD (median absolute deviation) are used instead of mean/stddev because
// bench samples on a shared machine are contaminated by one-sided noise
// (interference only ever adds time): the median ignores a minority of slow
// outliers, and the MAD is a dispersion estimate that a single 10x outlier
// cannot poison.
type Summary struct {
	N        int     `json:"n"`
	MedianNS float64 `json:"median_ns"`
	MADNS    float64 `json:"mad_ns"`
	MinNS    float64 `json:"min_ns"`
	MaxNS    float64 `json:"max_ns"`
}

// Median returns the median of xs (0 for an empty slice). xs is not mutated.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs around med.
func MAD(xs []float64, med float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// Summarize computes the robust summary of one sample set.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.MedianNS = Median(xs)
	s.MADNS = MAD(xs, s.MedianNS)
	s.MinNS, s.MaxNS = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.MinNS = math.Min(s.MinNS, x)
		s.MaxNS = math.Max(s.MaxNS, x)
	}
	return s
}

// exactMax bounds the sample sizes for which the exact Mann–Whitney null
// distribution is computed (DP table is O(n·m·(n·m)) floats). Beyond it the
// normal approximation is used, which is accurate there anyway.
const exactMax = 20

// MannWhitneyU performs the two-sided Mann–Whitney U test (Wilcoxon rank-sum)
// on two independent samples, returning the smaller U statistic and the
// p-value for the null hypothesis that both samples come from the same
// distribution. This is the benchstat significance test: nonparametric, so a
// single GC-hit outlier cannot manufacture significance the way it inflates
// a t-test's variance estimate.
//
// Without ties and with both samples at most exactMax, the p-value is exact
// (computed from the full null distribution); otherwise the normal
// approximation with tie correction and continuity correction is used.
// Degenerate inputs (an empty sample, or all values tied) return p = 1:
// no evidence of a difference.
func MannWhitneyU(xs, ys []float64) (u, p float64) {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return 0, 1
	}
	// Rank the pooled samples (average ranks on ties).
	type obs struct {
		v float64
		x bool
	}
	pool := make([]obs, 0, n+m)
	for _, v := range xs {
		pool = append(pool, obs{v, true})
	}
	for _, v := range ys {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].v < pool[b].v })

	var rankX float64  // rank sum of xs
	var tieSum float64 // Σ(t³-t) over tie groups
	hasTies := false
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		t := float64(j - i)
		if t > 1 {
			hasTies = true
			tieSum += t*t*t - t
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: positions i+1..j
		for k := i; k < j; k++ {
			if pool[k].x {
				rankX += avgRank
			}
		}
		i = j
	}
	u1 := rankX - float64(n)*float64(n+1)/2
	u2 := float64(n)*float64(m) - u1
	u = math.Min(u1, u2)

	if !hasTies && n <= exactMax && m <= exactMax {
		return u, exactP(n, m, u)
	}

	N := float64(n + m)
	mu := float64(n) * float64(m) / 2
	variance := float64(n) * float64(m) / 12 * ((N + 1) - tieSum/(N*(N-1)))
	if variance <= 0 {
		return u, 1 // every value tied: no evidence either way
	}
	// Continuity correction pulls |u - mu| toward zero by 0.5.
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	p = math.Erfc(z / math.Sqrt2) // = 2·(1 − Φ(z))
	return u, math.Min(1, p)
}

// exactP returns the exact two-sided p-value 2·P(U ≤ u) under the null
// distribution for sample sizes n, m without ties. The count of arrangements
// with statistic exactly u follows the classic recurrence
// c(n,m,u) = c(n-1,m,u-m) + c(n,m-1,u).
func exactP(n, m int, u float64) float64 {
	k := int(u) // u is integral when there are no ties
	umax := n * m
	if k < 0 {
		k = 0
	}
	if k > umax {
		k = umax
	}
	// dp[i][j][v] built iteratively; float64 counts are exact for the
	// magnitudes here (C(40,20) ≈ 1.4e11 « 2^53).
	dp := make([][][]float64, n+1)
	for i := range dp {
		dp[i] = make([][]float64, m+1)
		for j := range dp[i] {
			dp[i][j] = make([]float64, umax+1)
		}
	}
	for j := 0; j <= m; j++ {
		dp[0][j][0] = 1
	}
	for i := 1; i <= n; i++ {
		dp[i][0][0] = 1
		for j := 1; j <= m; j++ {
			for v := 0; v <= i*j; v++ {
				c := dp[i][j-1][v]
				if v >= j {
					c += dp[i-1][j][v-j]
				}
				dp[i][j][v] = c
			}
		}
	}
	var cum, total float64
	for v := 0; v <= umax; v++ {
		total += dp[n][m][v]
		if v <= k {
			cum += dp[n][m][v]
		}
	}
	return math.Min(1, 2*cum/total)
}
