package perf

import (
	"fmt"
	"sort"

	"adatm"
	"adatm/internal/tensor"
)

// Kind distinguishes what one sample of a scenario measures.
type Kind int

const (
	// KindMTTKRP samples one full MTTKRP sweep (every mode once, with the
	// ALS invalidation protocol) — the hot path the kernel and accumulation
	// PRs tuned.
	KindMTTKRP Kind = iota
	// KindFit samples one fixed-iteration end-to-end CP-ALS fit: engine
	// build, factor init, and the full solver loop. Catches regressions in
	// everything MTTKRP sweeps don't cover (gram, solve, normalize, fit).
	KindFit
)

// String names the kind for scenario names and reports.
func (k Kind) String() string {
	if k == KindFit {
		return "fit"
	}
	return "mttkrp"
}

// Scenario is one named, seeded benchmark configuration: a synthetic tensor
// spec crossed with an engine and an accumulation strategy. Names are stable
// identifiers — the comparison layer joins baseline and current results by
// name, so renaming a scenario resets its trajectory.
type Scenario struct {
	Name   string
	Kind   Kind
	Spec   tensor.GenSpec
	Engine adatm.EngineKind
	Accum  adatm.AccumStrategy
	Rank   int
	// Iters is the fixed CP-ALS iteration count for KindFit scenarios.
	Iters int
}

// scaled returns the quick-mode variant: ~8x fewer nonzeros and half the
// rank, preserving shapes and relative comparisons (the same contract as the
// experiment suite's -quick).
func (s Scenario) scaled(quick bool) Scenario {
	if !quick {
		return s
	}
	s.Spec.NNZ /= 8
	if s.Rank > 8 {
		s.Rank = 8
	}
	return s
}

// The standard synthetic shapes. Dimensions are chosen so each scenario unit
// runs in single-digit milliseconds at full scale: large enough to exercise
// the parallel scheduler and accumulation layer, small enough that a
// multi-sample suite stays under a minute.
var (
	// short3 has one 16-wide mode: MTTKRP into it is the high-contention
	// scatter case where privatized accumulation wins.
	short3 = tensor.GenSpec{Name: "short3", Dims: []int{2048, 2048, 16}, NNZ: 60000, Skew: []float64{0.3, 0.3, 0}, Seed: 801}
	// long3 is uniform with all modes long: sparse outputs, scatter's home
	// turf.
	long3 = tensor.GenSpec{Name: "long3", Dims: []int{8192, 8192, 8192}, NNZ: 60000, Seed: 802}
	// zipf4 is an order-4 tensor with heavy Zipf skew in every mode: high
	// projection overlap, the memoization-friendly regime.
	zipf4 = tensor.GenSpec{Name: "zipf4", Dims: []int{1024, 1024, 1024, 1024}, NNZ: 60000, Skew: []float64{0.8, 0.8, 0.8, 0.8}, Seed: 803}
	// order5 exercises the deepest strategy trees.
	order5 = tensor.GenSpec{Name: "order5", Dims: []int{256, 256, 256, 256, 256}, NNZ: 50000, Skew: []float64{0.5, 0.5, 0.5, 0.5, 0.5}, Seed: 804}
)

// registry is the standard suite: tensor shape × engine × accumulation
// strategy coverage of the tuned hot paths, plus end-to-end fits. Kept to a
// dozen scenarios so the full suite (warmup + N samples each) finishes in
// CI-friendly time; add a scenario when a PR tunes a path no current
// scenario would catch regressing.
var registry = []Scenario{
	{Name: "mttkrp/short3/coo/scatter", Kind: KindMTTKRP, Spec: short3, Engine: adatm.EngineCOO, Accum: adatm.AccumScatter, Rank: 16},
	{Name: "mttkrp/short3/coo/privatize", Kind: KindMTTKRP, Spec: short3, Engine: adatm.EngineCOO, Accum: adatm.AccumPrivatize, Rank: 16},
	{Name: "mttkrp/short3/memo-balanced/auto", Kind: KindMTTKRP, Spec: short3, Engine: adatm.EngineMemoBalanced, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "mttkrp/long3/coo/scatter", Kind: KindMTTKRP, Spec: long3, Engine: adatm.EngineCOO, Accum: adatm.AccumScatter, Rank: 16},
	{Name: "mttkrp/long3/csf", Kind: KindMTTKRP, Spec: long3, Engine: adatm.EngineCSF, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "mttkrp/zipf4/hicoo/auto", Kind: KindMTTKRP, Spec: zipf4, Engine: adatm.EngineHiCOO, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "mttkrp/zipf4/memo-balanced/auto", Kind: KindMTTKRP, Spec: zipf4, Engine: adatm.EngineMemoBalanced, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "mttkrp/zipf4/adaptive/auto", Kind: KindMTTKRP, Spec: zipf4, Engine: adatm.EngineAdaptive, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "mttkrp/order5/csf-one", Kind: KindMTTKRP, Spec: order5, Engine: adatm.EngineCSFOne, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "mttkrp/order5/adaptive/auto", Kind: KindMTTKRP, Spec: order5, Engine: adatm.EngineAdaptive, Accum: adatm.AccumAuto, Rank: 16},
	{Name: "fit/short3/coo/scatter", Kind: KindFit, Spec: short3, Engine: adatm.EngineCOO, Accum: adatm.AccumScatter, Rank: 16, Iters: 3},
	{Name: "fit/zipf4/adaptive/auto", Kind: KindFit, Spec: zipf4, Engine: adatm.EngineAdaptive, Accum: adatm.AccumAuto, Rank: 16, Iters: 3},
}

// Scenarios returns a copy of the standard scenario registry.
func Scenarios() []Scenario {
	return append([]Scenario(nil), registry...)
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// Find returns the named scenario from the registry.
func Find(name string) (Scenario, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("perf: unknown scenario %q (known: %v)", name, Names())
}

// Select resolves a list of scenario names (empty = the full registry).
func Select(names []string) ([]Scenario, error) {
	if len(names) == 0 {
		return Scenarios(), nil
	}
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		s, err := Find(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
