package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"

	"adatm/internal/ckpt"
	"adatm/internal/obs"
)

// FormatVersion identifies the on-disk bench result format. Bump only with a
// reader that still accepts every older version; the comparison layer
// refuses mismatched formats rather than silently comparing apples to
// renamed oranges.
const FormatVersion = "adatm-bench/v1"

// Env is the environment fingerprint stamped into every suite result: the
// facts that make two measurements comparable (or explain why they aren't).
// Comparing results across differing fingerprints is allowed but flagged by
// Compare, because a CPU or GOMAXPROCS change is the most common benign
// explanation for a wholesale shift.
type Env struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUModel  string `json:"cpu_model,omitempty"`
	CPUs      int    `json:"cpus"`
	MaxProcs  int    `json:"maxprocs"`
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision of the binary when built from a checkout
	// ("unknown" under `go run` / `go test`, where build info has no VCS
	// stamp).
	Revision string `json:"revision"`
}

// Fingerprint captures the current process environment.
func Fingerprint() Env {
	e := Env{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUModel:  cpuModel(),
		CPUs:      runtime.NumCPU(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion: runtime.Version(),
		Revision:  "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				e.Revision = s.Value
			}
		}
	}
	return e
}

// Comparable reports whether two fingerprints describe measurement-
// equivalent environments (same hardware class and parallel width).
func (e Env) Comparable(o Env) bool {
	return e.OS == o.OS && e.Arch == o.Arch && e.CPUModel == o.CPUModel &&
		e.CPUs == o.CPUs && e.MaxProcs == o.MaxProcs
}

// cpuModel reads the CPU model name from /proc/cpuinfo (Linux); other
// platforms report "".
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Sample is one repeated-sample measurement of a scenario: wall time plus
// the allocation and engine work counters over the same window, so a slow
// sample can be attributed (did it do more work, allocate more, or just run
// slower?).
type Sample struct {
	// StartUnixNano anchors the sample on the suite's resource timeline.
	StartUnixNano int64 `json:"t"`
	// NS is the wall time of one scenario unit (one MTTKRP sweep, or one
	// fixed-iteration CP-ALS fit).
	NS int64 `json:"ns"`
	// Allocs and Bytes are the heap allocation deltas over the sample.
	Allocs int64 `json:"allocs"`
	Bytes  int64 `json:"bytes"`
	// HadamardOps and MTTKRPCalls are the engine work-counter deltas: the
	// machine-independent op count that must stay constant across commits
	// for ns deltas to mean anything.
	HadamardOps int64 `json:"hadamard_ops"`
	MTTKRPCalls int64 `json:"mttkrp_calls"`
}

// ScenarioResult is one scenario's sample set plus its robust summary.
type ScenarioResult struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
	Summary Summary  `json:"summary"`
}

// SuiteResult is one suite run: the versioned envelope written to disk.
type SuiteResult struct {
	Format    string           `json:"format"`
	UnixSec   int64            `json:"unix_sec"`
	Env       Env              `json:"env"`
	Samples   int              `json:"samples_per_scenario"`
	Warmup    int              `json:"warmup_per_scenario"`
	Quick     bool             `json:"quick,omitempty"`
	Scenarios []ScenarioResult `json:"scenarios"`
	// Timeline is the suite-wide resource timeline recorded while the
	// samples ran; each Sample's StartUnixNano indexes into it, so a noisy
	// sample can be explained post hoc (GC cycle, goroutine spike).
	Timeline []obs.ResourceSample `json:"timeline,omitempty"`
}

// Scenario returns the named scenario result, or nil.
func (r *SuiteResult) Scenario(name string) *ScenarioResult {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// Validate checks the structural invariants of a loaded result.
func (r *SuiteResult) Validate() error {
	if r.Format != FormatVersion {
		return fmt.Errorf("perf: result format %q, want %q", r.Format, FormatVersion)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("perf: result has no scenarios")
	}
	seen := make(map[string]bool, len(r.Scenarios))
	for _, sc := range r.Scenarios {
		if sc.Name == "" {
			return fmt.Errorf("perf: scenario with empty name")
		}
		if seen[sc.Name] {
			return fmt.Errorf("perf: duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		if len(sc.Samples) == 0 {
			return fmt.Errorf("perf: scenario %q has no samples", sc.Name)
		}
		for i, s := range sc.Samples {
			if s.NS <= 0 {
				return fmt.Errorf("perf: scenario %q sample %d has non-positive ns", sc.Name, i)
			}
		}
	}
	return nil
}

// nsSamples extracts the wall-time sample vector for the stats layer.
func (sc *ScenarioResult) nsSamples() []float64 {
	out := make([]float64, len(sc.Samples))
	for i, s := range sc.Samples {
		out[i] = float64(s.NS)
	}
	return out
}

// WriteJSON renders the result as indented JSON.
func (r *SuiteResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile persists the result crash-atomically (temp file + fsync +
// rename via the ckpt atomic writer), so an interrupted bench run can never
// truncate a previously committed baseline.
func WriteFile(path string, r *SuiteResult) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, r.WriteJSON)
}

// LoadFile reads and validates a result file.
func LoadFile(path string) (*SuiteResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r SuiteResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &r, nil
}
