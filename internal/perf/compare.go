package perf

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Thresholds configures when a measured difference counts as a regression.
// Both conditions must hold: statistically significant (Mann–Whitney p below
// Alpha) AND practically large (median delta beyond MinDeltaPct). The size
// floor exists because with enough samples even a 0.3% drift is
// "significant", and gating on noise-level deltas teaches people to ignore
// the gate.
type Thresholds struct {
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// MinDeltaPct is the minimum median slowdown, in percent, that can fail
	// the gate (default 5).
	MinDeltaPct float64
}

// DefaultThresholds returns the standard gate configuration.
func DefaultThresholds() Thresholds { return Thresholds{Alpha: 0.05, MinDeltaPct: 5} }

func (t Thresholds) alpha() float64 {
	if t.Alpha <= 0 {
		return 0.05
	}
	return t.Alpha
}

func (t Thresholds) minDelta() float64 {
	if t.MinDeltaPct <= 0 {
		return 5
	}
	return t.MinDeltaPct
}

// Delta is the per-scenario comparison of current against baseline.
type Delta struct {
	Scenario         string  `json:"scenario"`
	BaselineMedianNS float64 `json:"baseline_median_ns"`
	CurrentMedianNS  float64 `json:"current_median_ns"`
	// DeltaPct is the median change in percent: positive = current slower.
	DeltaPct float64 `json:"delta_pct"`
	// P is the two-sided Mann–Whitney p-value over the raw sample sets.
	P float64 `json:"p"`
	// Significant reports p < alpha.
	Significant bool `json:"significant"`
	// Regression: significant AND slower beyond the size floor.
	Regression bool `json:"regression"`
	// Improvement: significant AND faster beyond the size floor (reported,
	// never gated on — a real improvement should refresh the baseline).
	Improvement bool `json:"improvement"`
}

// Comparison is the full verdict of Compare.
type Comparison struct {
	Thresholds Thresholds `json:"thresholds"`
	// EnvComparable is false when the two results carry fingerprints of
	// different hardware/width — deltas are then explanatory, not gateable.
	EnvComparable bool    `json:"env_comparable"`
	Deltas        []Delta `json:"deltas"`
	// OnlyBaseline / OnlyCurrent list scenarios present on one side only
	// (a renamed or removed scenario silently resets its trajectory; the
	// gate surfaces that instead of ignoring it).
	OnlyBaseline []string `json:"only_baseline,omitempty"`
	OnlyCurrent  []string `json:"only_current,omitempty"`
}

// Compare joins baseline and current by scenario name and computes the
// per-scenario deltas, significance, and regression verdicts.
func Compare(baseline, current *SuiteResult, th Thresholds) *Comparison {
	c := &Comparison{Thresholds: th, EnvComparable: baseline.Env.Comparable(current.Env)}
	for _, cur := range current.Scenarios {
		base := baseline.Scenario(cur.Name)
		if base == nil {
			c.OnlyCurrent = append(c.OnlyCurrent, cur.Name)
			continue
		}
		d := Delta{
			Scenario:         cur.Name,
			BaselineMedianNS: base.Summary.MedianNS,
			CurrentMedianNS:  cur.Summary.MedianNS,
		}
		if d.BaselineMedianNS > 0 {
			d.DeltaPct = (d.CurrentMedianNS - d.BaselineMedianNS) / d.BaselineMedianNS * 100
		}
		_, d.P = MannWhitneyU(base.nsSamples(), cur.nsSamples())
		d.Significant = d.P < th.alpha()
		d.Regression = d.Significant && d.DeltaPct > th.minDelta()
		d.Improvement = d.Significant && d.DeltaPct < -th.minDelta()
		c.Deltas = append(c.Deltas, d)
	}
	for _, base := range baseline.Scenarios {
		if current.Scenario(base.Name) == nil {
			c.OnlyBaseline = append(c.OnlyBaseline, base.Name)
		}
	}
	sort.Slice(c.Deltas, func(a, b int) bool { return c.Deltas[a].Scenario < c.Deltas[b].Scenario })
	sort.Strings(c.OnlyBaseline)
	sort.Strings(c.OnlyCurrent)
	return c
}

// Regressions returns the scenarios that fail the gate, worst first.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].DeltaPct > out[b].DeltaPct })
	return out
}

// Gate returns nil when no scenario regressed, or an error naming every
// regressed scenario with its delta and p-value. Scenarios missing from the
// current run also fail the gate: silently dropping a scenario must not look
// like a pass.
func (c *Comparison) Gate() error {
	regs := c.Regressions()
	if len(regs) == 0 && len(c.OnlyBaseline) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("perf gate failed:")
	for _, d := range regs {
		fmt.Fprintf(&b, "\n  %s: +%.1f%% (%.0f ns -> %.0f ns median, p=%.4g)",
			d.Scenario, d.DeltaPct, d.BaselineMedianNS, d.CurrentMedianNS, d.P)
	}
	for _, name := range c.OnlyBaseline {
		fmt.Fprintf(&b, "\n  %s: present in baseline but missing from current run", name)
	}
	return fmt.Errorf("%s", b.String())
}

// WriteTable renders the comparison as an aligned human-readable table.
func (c *Comparison) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-40s %14s %14s %8s %9s  %s\n", "scenario", "base median", "cur median", "delta", "p", "verdict")
	for _, d := range c.Deltas {
		verdict := "~"
		switch {
		case d.Regression:
			verdict = "REGRESSION"
		case d.Improvement:
			verdict = "improvement"
		case d.Significant:
			verdict = "significant (below size floor)"
		}
		fmt.Fprintf(w, "%-40s %12.0fns %12.0fns %+7.1f%% %9.4f  %s\n",
			d.Scenario, d.BaselineMedianNS, d.CurrentMedianNS, d.DeltaPct, d.P, verdict)
	}
	for _, name := range c.OnlyCurrent {
		fmt.Fprintf(w, "%-40s %14s\n", name, "(new: no baseline)")
	}
	for _, name := range c.OnlyBaseline {
		fmt.Fprintf(w, "%-40s %14s\n", name, "(MISSING from current)")
	}
	if !c.EnvComparable {
		fmt.Fprintln(w, "warning: environment fingerprints differ (hardware or GOMAXPROCS changed); deltas are explanatory, not comparable")
	}
}
