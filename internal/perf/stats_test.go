package perf

import (
	"math"
	"math/rand"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{1e9, 1, 2, 3, 4}, 3}, // single huge outlier ignored
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	med := Median(xs) // 3
	if got := MAD(xs, med); got != 1 {
		t.Errorf("MAD = %v, want 1 (deviations 2,1,0,1,97 -> median 1)", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 30, 20})
	if s.N != 3 || s.MedianNS != 20 || s.MinNS != 10 || s.MaxNS != 30 {
		t.Errorf("Summarize = %+v", s)
	}
	if got := Summarize(nil); got.N != 0 || got.MedianNS != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

// samplesWithU builds tie-free sample pairs (xs of size n, ys of size m)
// whose Mann–Whitney U statistic (count of x>y pairs) is exactly u.
func samplesWithU(n, m, u int) (xs, ys []float64) {
	ys = make([]float64, m)
	for j := range ys {
		ys[j] = float64(10 * (j + 1)) // 10, 20, ..., 10m
	}
	q, r := u/m, u%m
	for i := 0; i < n; i++ {
		switch {
		case i < q:
			xs = append(xs, float64(10*m+100+i)) // beats all m ys
		case i == q && r > 0:
			xs = append(xs, float64(10*r+5)) // beats exactly r ys
		default:
			xs = append(xs, float64(i)+0.5) // beats none (all < 10)
		}
	}
	return xs, ys
}

// TestMannWhitneyCriticalValues pins the test against the published
// two-tailed α=0.05 critical-value table: for equal sample sizes n, the
// largest U that is significant is U_crit(n) — one more must not be.
// (Standard table: n=4→0, n=5→2, n=6→5, n=8→13, n=10→23.)
func TestMannWhitneyCriticalValues(t *testing.T) {
	crit := map[int]int{4: 0, 5: 2, 6: 5, 8: 13, 10: 23}
	for n, uc := range crit {
		xs, ys := samplesWithU(n, n, uc)
		u, p := MannWhitneyU(xs, ys)
		if u != float64(uc) {
			t.Fatalf("n=%d: constructed U=%v, want %d", n, u, uc)
		}
		if p > 0.05 {
			t.Errorf("n=%d U=%d: p=%v, want <= 0.05 (critical value)", n, uc, p)
		}
		xs, ys = samplesWithU(n, n, uc+1)
		u, p = MannWhitneyU(xs, ys)
		if u != float64(uc+1) {
			t.Fatalf("n=%d: constructed U=%v, want %d", n, u, uc+1)
		}
		if p <= 0.05 {
			t.Errorf("n=%d U=%d: p=%v, want > 0.05 (one above critical)", n, uc+1, p)
		}
	}
}

// TestMannWhitneySmallSamplesNeverSignificant: at n=m=3 the most extreme
// arrangement has p=0.1, so 3-sample comparisons can never trip an α=0.05
// gate — and 1-sample smoke comparisons always pass (p=1).
func TestMannWhitneySmallSamplesNeverSignificant(t *testing.T) {
	_, p := MannWhitneyU([]float64{1, 2, 3}, []float64{10, 20, 30})
	if math.Abs(p-0.1) > 1e-12 {
		t.Errorf("n=m=3 extreme p = %v, want 0.1", p)
	}
	_, p = MannWhitneyU([]float64{1}, []float64{100})
	if p != 1 {
		t.Errorf("n=m=1 p = %v, want 1", p)
	}
}

func TestMannWhitneyExactKnownValue(t *testing.T) {
	// n=m=5, complete separation: U=0, exact p = 2·(1/252) = 0.00794.
	xs, ys := samplesWithU(5, 5, 0)
	u, p := MannWhitneyU(xs, ys)
	if u != 0 {
		t.Fatalf("U = %v, want 0", u)
	}
	if math.Abs(p-2.0/252) > 1e-12 {
		t.Errorf("p = %v, want %v", p, 2.0/252)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if _, p := MannWhitneyU(nil, []float64{1}); p != 1 {
		t.Errorf("empty sample p = %v, want 1", p)
	}
	// All values tied: zero variance, no evidence.
	if _, p := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Errorf("all-tied p = %v, want 1", p)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	xs, ys := samplesWithU(6, 8, 11)
	_, p1 := MannWhitneyU(xs, ys)
	_, p2 := MannWhitneyU(ys, xs)
	if p1 != p2 {
		t.Errorf("p not symmetric: %v vs %v", p1, p2)
	}
}

// TestMannWhitneyTiesApproximation drives the tie-corrected normal path and
// checks it still separates clearly different distributions and accepts
// clearly identical ones.
func TestMannWhitneyTiesApproximation(t *testing.T) {
	// Heavy overlap with ties: must not be significant.
	xs := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	ys := []float64{1, 2, 2, 3, 3, 4, 4, 4}
	if _, p := MannWhitneyU(xs, ys); p < 0.4 {
		t.Errorf("near-identical tied samples p = %v, want large", p)
	}
	// Complete separation with internal ties: strongly significant. 22
	// samples a side also exercises the >exactMax normal path.
	xs, ys = nil, nil
	for i := 0; i < 22; i++ {
		xs = append(xs, float64(1+i%3))   // {1,2,3} repeated
		ys = append(ys, float64(100+i%3)) // {100,101,102} repeated
	}
	if _, p := MannWhitneyU(xs, ys); p > 1e-6 {
		t.Errorf("fully separated tied samples p = %v, want tiny", p)
	}
}

// TestMannWhitneyFalsePositiveRate is the same-distribution property test:
// when both sample sets come from one distribution, the rejection rate at
// level α must be bounded by α (the exact test is conservative, so α itself
// is the ceiling up to binomial noise).
func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	const (
		trials = 600
		n      = 8
		alpha  = 0.05
	)
	rng := rand.New(rand.NewSource(42))
	rejections := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for j := range xs {
			// Lognormal-ish positive "latencies", identical distribution on
			// both sides.
			xs[j] = math.Exp(rng.NormFloat64())
			ys[j] = math.Exp(rng.NormFloat64())
		}
		if _, p := MannWhitneyU(xs, ys); p < alpha {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	// Exact-test rejection probability at n=m=8, α=0.05 is ~0.041; with 600
	// trials the 5σ binomial band stays below 0.085. A rate above that means
	// the test is anti-conservative — the property this pin protects.
	if rate > 0.085 {
		t.Errorf("false-positive rate %.3f over %d trials, want <= 0.085 (alpha %.2f)", rate, trials, alpha)
	}
}

// TestMannWhitneyPower sanity-checks the other direction: a real 3x shift
// at usable sample sizes must be detected essentially always.
func TestMannWhitneyPower(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for j := range xs {
			xs[j] = 1 + 0.05*rng.Float64()
			ys[j] = 3 + 0.05*rng.Float64()
		}
		if _, p := MannWhitneyU(xs, ys); p < 0.05 {
			detected++
		}
	}
	if detected < trials*95/100 {
		t.Errorf("detected %d/%d clear 3x shifts, want >= 95%%", detected, trials)
	}
}
