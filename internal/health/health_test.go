package health

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adatm/internal/audit"
	"adatm/internal/dense"
	"adatm/internal/obs"
)

// identityGrams builds n well-conditioned (identity) R×R Gram matrices.
func identityGrams(n, r int) []*dense.Matrix {
	out := make([]*dense.Matrix, n)
	for m := range out {
		g := dense.New(r, r)
		for i := 0; i < r; i++ {
			g.Set(i, i, 1)
		}
		out[m] = g
	}
	return out
}

// congruentGrams builds Grams of unit columns with pairwise inner product c —
// the signature of near-collinear factor columns.
func congruentGrams(n, r int, c float64) []*dense.Matrix {
	out := make([]*dense.Matrix, n)
	for m := range out {
		g := dense.New(r, r)
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i == j {
					g.Set(i, j, 1)
				} else {
					g.Set(i, j, c)
				}
			}
		}
		out[m] = g
	}
	return out
}

func healthyInput(iter int, grams []*dense.Matrix) Input {
	return Input{
		Iter: iter, Fit: 0.5 + 0.01*float64(iter), PrevFit: 0.5 + 0.01*float64(iter-1),
		Tol: 1e-9, Lambda: []float64{2, 1}, Grams: grams,
	}
}

func TestStateStringParseJSON(t *testing.T) {
	for _, s := range []State{Healthy, Stalled, SwampSuspect, IllConditioned} {
		name := s.String()
		back, ok := ParseState(name)
		if !ok || back != s {
			t.Errorf("ParseState(%q) = %v, %v", name, back, ok)
		}
		j, err := s.MarshalJSON()
		if err != nil || string(j) != `"`+name+`"` {
			t.Errorf("MarshalJSON(%v) = %s, %v", s, j, err)
		}
	}
	if _, ok := ParseState("bogus"); ok {
		t.Error("ParseState accepted an unknown name")
	}
	if got := State(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range State.String() = %q", got)
	}
}

func TestThresholdDefaults(t *testing.T) {
	thr := Thresholds{}.withDefaults()
	if thr.Kappa != 1e8 || thr.Congruence != 0.97 || thr.StallFraction != 0.02 ||
		thr.StallMinIters != 6 || thr.Debounce != 2 {
		t.Errorf("defaults = %+v", thr)
	}
	// Explicit overrides survive.
	thr = Thresholds{Kappa: 10, Congruence: 0.5, Debounce: 1}.withDefaults()
	if thr.Kappa != 10 || thr.Congruence != 0.5 || thr.Debounce != 1 {
		t.Errorf("overrides clobbered: %+v", thr)
	}
}

func TestMachineDebounce(t *testing.T) {
	m := machine{debounce: 2}
	if st, ch := m.step(SwampSuspect); st != Healthy || ch {
		t.Fatalf("one raw observation transitioned: %v %v", st, ch)
	}
	if st, ch := m.step(SwampSuspect); st != SwampSuspect || !ch {
		t.Fatalf("second consecutive raw observation did not commit: %v %v", st, ch)
	}
	// A single flap back does not transition...
	if st, ch := m.step(Healthy); st != SwampSuspect || ch {
		t.Fatalf("single flap transitioned: %v %v", st, ch)
	}
	// ...and returning to the current state resets the candidate streak.
	if st, _ := m.step(SwampSuspect); st != SwampSuspect {
		t.Fatal("state lost after flap")
	}
	if st, ch := m.step(Healthy); st != SwampSuspect || ch {
		t.Fatalf("streak survived the reset: %v %v", st, ch)
	}
	if m.transitions != 1 {
		t.Errorf("transitions = %d, want 1", m.transitions)
	}
}

func TestLambdaRatio(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1}, 1},
		{[]float64{4, -2, 1}, 4},
		{[]float64{1, 0}, KappaCeil},
		{[]float64{5}, 1},
	}
	for _, c := range cases {
		if got := lambdaRatio(c.in); got != c.want {
			t.Errorf("lambdaRatio(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCongruence(t *testing.T) {
	g := dense.New(3, 3)
	g.Set(0, 0, 4)
	g.Set(1, 1, 1)
	g.Set(2, 2, 1)
	g.Set(0, 1, 1.0) // normalized: 1/(2·1) = 0.5
	g.Set(1, 0, 1.0)
	g.Set(1, 2, 0.9) // normalized: 0.9
	g.Set(2, 1, 0.9)
	if got := congruence(g); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("congruence = %v, want 0.9", got)
	}
	// Dead (zero-diagonal) columns are skipped, FP overshoot clamps to 1.
	g.Set(2, 2, 0)
	if got := congruence(g); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("congruence with dead column = %v, want 0.5", got)
	}
	g2 := dense.New(2, 2)
	g2.Set(0, 0, 1)
	g2.Set(1, 1, 1)
	g2.Set(0, 1, 1.0000000001)
	g2.Set(1, 0, 1.0000000001)
	if got := congruence(g2); got != 1 {
		t.Errorf("congruence overshoot = %v, want clamped 1", got)
	}
}

func TestObserveHealthyStaysHealthy(t *testing.T) {
	p := New(Config{})
	grams := identityGrams(3, 2)
	for i := 1; i <= 10; i++ {
		p.Observe(healthyInput(i, grams))
	}
	s := p.Summary()
	if s.State != Healthy || s.Transitions != 0 || s.Iters != 10 {
		t.Errorf("healthy run summary = %+v", s)
	}
	if s.StateIters["healthy"] != 10 {
		t.Errorf("StateIters = %v", s.StateIters)
	}
	if s.MaxKappa < 1 || s.MaxKappa > 2 {
		t.Errorf("identity system MaxKappa = %v, want ~1", s.MaxKappa)
	}
}

func TestObserveSwampDebounced(t *testing.T) {
	p := New(Config{})
	grams := congruentGrams(3, 2, 0.99) // congruence 0.99 >= 0.97
	in := healthyInput(1, grams)
	p.Observe(in)
	if p.State() != Healthy {
		t.Fatal("swamp verdict committed before the debounce window")
	}
	in.Iter = 2
	p.Observe(in)
	if p.State() != SwampSuspect {
		t.Fatalf("state = %v after 2 consecutive swamp observations, want swamp-suspect", p.State())
	}
	s := p.Summary()
	if s.Transitions != 1 || s.MaxCongruence < 0.97 {
		t.Errorf("summary = %+v", s)
	}
}

func TestObserveIllConditionedWinsPrecedence(t *testing.T) {
	// Grams that are simultaneously near-singular (huge Hadamard κ) and
	// highly congruent: the most severe verdict must win.
	p := New(Config{})
	grams := congruentGrams(3, 2, 0.999999999) // H off-diag ~1 → κ ≥ 1e8; congruence ≥ 0.97 too
	in := healthyInput(1, grams)
	p.Observe(in)
	in.Iter = 2
	p.Observe(in)
	if p.State() != IllConditioned {
		t.Fatalf("state = %v, want ill-conditioned to subsume the swamp signal", p.State())
	}
}

func TestObserveIllConditionedWithoutCongruence(t *testing.T) {
	// Wildly scaled orthogonal columns: zero congruence, huge κ.
	p := New(Config{})
	grams := identityGrams(3, 2)
	for _, g := range grams {
		g.Set(0, 0, 1e10)
		g.Set(1, 1, 1e-10)
	}
	in := healthyInput(1, grams)
	p.Observe(in)
	in.Iter = 2
	p.Observe(in)
	if p.State() != IllConditioned {
		t.Fatalf("state = %v, want ill-conditioned", p.State())
	}
	if s := p.Summary(); s.MaxCongruence != 0 {
		t.Errorf("diagonal grams produced congruence %v", s.MaxCongruence)
	}
}

func TestObserveStallDetection(t *testing.T) {
	p := New(Config{})
	grams := identityGrams(3, 2)
	fit := 0.1
	// Establish a healthy progress baseline: Δfit = 0.01 per iteration.
	for i := 1; i <= 8; i++ {
		prev := fit
		fit += 0.01
		p.Observe(Input{Iter: i, Fit: fit, PrevFit: prev, Tol: 1e-9,
			Lambda: []float64{1, 1}, Grams: grams})
	}
	if p.State() != Healthy {
		t.Fatalf("baseline phase state = %v", p.State())
	}
	// Progress collapses to 1e-5 — far below 2% of the 0.01 median, yet well
	// above Tol, so this is a stall rather than convergence.
	for i := 9; i <= 10; i++ {
		prev := fit
		fit += 1e-5
		p.Observe(Input{Iter: i, Fit: fit, PrevFit: prev, Tol: 1e-9,
			Lambda: []float64{1, 1}, Grams: grams})
	}
	if p.State() != Stalled {
		t.Fatalf("state = %v after collapsed progress, want stalled", p.State())
	}
}

func TestObserveStallSuppressedNearConvergence(t *testing.T) {
	// The same collapsed deltas with Tol above them mean the run is simply
	// converging; the stall rule must stay quiet.
	p := New(Config{})
	grams := identityGrams(3, 2)
	fit := 0.1
	for i := 1; i <= 8; i++ {
		prev := fit
		fit += 0.01
		p.Observe(Input{Iter: i, Fit: fit, PrevFit: prev, Tol: 1e-4,
			Lambda: []float64{1, 1}, Grams: grams})
	}
	for i := 9; i <= 12; i++ {
		prev := fit
		fit += 1e-5
		p.Observe(Input{Iter: i, Fit: fit, PrevFit: prev, Tol: 1e-4,
			Lambda: []float64{1, 1}, Grams: grams})
	}
	if p.State() != Healthy {
		t.Fatalf("state = %v for a converging run, want healthy", p.State())
	}
}

func TestObserveNilAndEmptySafe(t *testing.T) {
	var p *Probe
	p.Observe(healthyInput(1, identityGrams(3, 2)))
	if p.State() != Healthy {
		t.Error("nil probe state not healthy")
	}
	if s := p.Summary(); s.Iters != 0 {
		t.Errorf("nil probe summary = %+v", s)
	}
	q := New(Config{})
	q.Observe(Input{Iter: 1}) // no grams, no lambda: ignored
	if q.Summary().Iters != 0 {
		t.Error("degenerate input counted as an observation")
	}
}

func TestObserveSinksFanOut(t *testing.T) {
	reg := obs.NewRegistry()
	var ledger bytes.Buffer
	log := obs.NewIterLog(8)
	p := New(Config{
		Run:     "fixture/coo",
		Metrics: reg,
		Audit:   audit.NewRecorder(audit.Config{Ledger: &ledger}),
		Log:     log,
	})
	grams := congruentGrams(3, 2, 0.99)
	in := healthyInput(1, grams)
	p.Observe(in)
	in.Iter = 2
	p.Observe(in)

	// Metrics sink.
	snap := reg.Snapshot()
	if got := snap["adatm_health_state"]; got != float64(SwampSuspect) {
		t.Errorf("adatm_health_state = %v, want %v", got, float64(SwampSuspect))
	}
	if got := snap["adatm_health_max_congruence"]; got < 0.97 {
		t.Errorf("adatm_health_max_congruence = %v", got)
	}
	if got := snap["adatm_health_transitions_total"]; got != 1 {
		t.Errorf("adatm_health_transitions_total = %v, want 1", got)
	}
	if got := snap["adatm_cpd_fit_delta_count"]; got != 2 {
		t.Errorf("adatm_cpd_fit_delta_count = %v, want 2", got)
	}

	// Ledger sink: start event + transition event, both valid JSONL.
	text := ledger.String()
	if !strings.Contains(text, "health.state") || !strings.Contains(text, "swamp-suspect") {
		t.Errorf("ledger missing health.state transition:\n%s", text)
	}
	if n, err := audit.ValidateLedger(bytes.NewReader(ledger.Bytes())); err != nil || n != 2 {
		t.Errorf("ledger validation: n=%d err=%v", n, err)
	}

	// Iteration-stream sink.
	samples := log.Snapshot()
	if len(samples) != 2 {
		t.Fatalf("iterlog has %d samples, want 2", len(samples))
	}
	last := samples[1]
	if last.Run != "fixture/coo" || last.Iter != 2 || last.State != SwampSuspect.String() {
		t.Errorf("iterlog last sample = %+v", last)
	}
	if len(last.Kappa) != 3 || last.MaxCongruence < 0.97 {
		t.Errorf("iterlog sample signals = %+v", last)
	}
}

// The probe must be allocation-free in steady state even with every sink
// wired: the solver pins its iteration loop at zero allocations and the probe
// rides inside it.
func TestObserveSteadyStateZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	log := obs.NewIterLog(16)
	p := New(Config{
		Run:     "zeroalloc",
		Metrics: reg,
		Audit:   audit.NewRecorder(audit.Config{Ledger: &bytes.Buffer{}}),
		Log:     log,
	})
	grams := identityGrams(3, 4)
	in := healthyInput(3, identityGrams(3, 4))
	in.Grams = grams
	// Warm: sizes scratch, registers nothing (registration happened in New),
	// emits the one-time monitoring-started ledger event.
	p.Observe(in)
	p.Observe(in)
	allocs := testing.AllocsPerRun(100, func() {
		p.Observe(in)
	})
	if allocs != 0 {
		t.Errorf("steady-state Observe: %v allocs, want 0", allocs)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{State: SwampSuspect, Iters: 7, Transitions: 1, MaxKappa: 123, MaxCongruence: 0.99}
	out := s.String()
	for _, want := range []string{"health=swamp-suspect", "iters=7", "transitions=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary.String() = %q, missing %q", out, want)
		}
	}
}

func TestFitDeltaBuckets(t *testing.T) {
	b := FitDeltaBuckets()
	if len(b) != 41 || b[0] != math.Ldexp(1, -40) || b[40] != 1 {
		t.Fatalf("bounds = [%v .. %v], len %d", b[0], b[len(b)-1], len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bounds not log2-spaced at %d", i)
		}
	}
}
