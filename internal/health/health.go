// Package health implements the per-iteration numerical-health probe for
// CP-ALS runs: from state already resident in the solver loop (the factor
// Gram matrices, the λ vector, and the fit trajectory — no extra MTTKRPs) it
// derives the fit delta, the λ max/min component-weight ratio, a cheap
// power-iteration condition estimate κ̂ of each mode's Gram-Hadamard system,
// and the factor column congruence (max off-diagonal of the normalized
// cross-Gram — the standard swamp indicator). A rule layer turns the signals
// into typed verdicts with debounced transitions, fanned out to three sinks:
// health.state audit-ledger events, adatm_health_* metrics, and an
// obs.IterLog ring served at the debug server's /iters endpoint.
//
// Everything is nil-safe (a nil *Probe no-ops, so the disabled path is one
// pointer test in the solver loop) and allocation-free in steady state:
// scratch is sized at the first Observe, and only verdict transitions — rare
// by construction — format strings.
package health

import (
	"fmt"
	"math"
	"sync"

	"adatm/internal/audit"
	"adatm/internal/dense"
	"adatm/internal/obs"
)

// State is the probe's typed verdict about a run's numerical condition.
type State int

const (
	// Healthy: the fit is improving at a rate consistent with its own
	// history and no structural warning signal is raised.
	Healthy State = iota
	// Stalled: the fit delta has collapsed far below the run's own typical
	// progress without being close enough to Tol to count as convergence.
	Stalled
	// SwampSuspect: two or more factor columns are near-collinear (high
	// congruence) — the classic CP swamp, where ALS crawls along a
	// degenerate ridge.
	SwampSuspect
	// IllConditioned: some mode's Gram-Hadamard system has an estimated
	// condition number beyond the threshold; factor updates amplify noise.
	IllConditioned

	numStates = 4
)

var stateNames = [numStates]string{"healthy", "stalled", "swamp-suspect", "ill-conditioned"}

// String returns the verdict's wire name ("healthy", "stalled",
// "swamp-suspect", "ill-conditioned").
func (s State) String() string {
	if s < 0 || int(s) >= numStates {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalJSON renders the verdict as its wire name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ParseState maps a wire name back to its State.
func ParseState(name string) (State, bool) {
	for i, n := range stateNames {
		if n == name {
			return State(i), true
		}
	}
	return Healthy, false
}

// Thresholds tunes the rule layer. The zero value of any field selects its
// default, so callers set only what they mean to override.
type Thresholds struct {
	// Kappa is the Gram-Hadamard condition estimate at or above which a mode
	// counts as ill-conditioned. Default 1e8 — half of float64's digits
	// gone, the customary alarm line for normal-equations solves.
	Kappa float64
	// Congruence is the max normalized cross-Gram off-diagonal at or above
	// which factors count as swamp-suspect. Default 0.97 (columns within
	// ~14° of collinear), per the CP degeneracy literature.
	Congruence float64
	// StallFraction: an iteration counts as stalled when |Δfit| drops below
	// this fraction of the run's own median |Δfit| (from the probe's
	// fit-delta histogram) while still above Tol. Default 0.02.
	StallFraction float64
	// StallMinIters is the first iteration at which the stall rule may
	// fire, so the median has history behind it. Default 6.
	StallMinIters int
	// Debounce is the number of consecutive iterations a new raw verdict
	// must persist before the reported state transitions (<= 1 transitions
	// immediately). Default 2.
	Debounce int
}

const (
	defaultKappa         = 1e8
	defaultCongruence    = 0.97
	defaultStallFraction = 0.02
	defaultStallMinIters = 6
	defaultDebounce      = 2
)

func (t Thresholds) withDefaults() Thresholds {
	if t.Kappa <= 0 {
		t.Kappa = defaultKappa
	}
	if t.Congruence <= 0 {
		t.Congruence = defaultCongruence
	}
	if t.StallFraction <= 0 {
		t.StallFraction = defaultStallFraction
	}
	if t.StallMinIters <= 0 {
		t.StallMinIters = defaultStallMinIters
	}
	if t.Debounce <= 0 {
		t.Debounce = defaultDebounce
	}
	return t
}

// Config wires a probe to its sinks. Every sink is optional.
type Config struct {
	// Run labels this run's samples in a shared IterLog (e.g. an experiment
	// sweep writing one stream).
	Run string
	// Metrics, when non-nil, receives the adatm_health_* gauges, the
	// adatm_health_transitions_total counter, and the adatm_cpd_fit_delta
	// histogram.
	Metrics *obs.Registry
	// Audit, when non-nil, receives one health.state ledger event at the
	// first observation and one per debounced verdict transition.
	Audit *audit.Recorder
	// Log, when non-nil, receives one IterSample per observation (the
	// /iters ring).
	Log *obs.IterLog
	// Thresholds tunes the rule layer; zero fields select defaults.
	Thresholds Thresholds
}

// Input is one iteration's raw solver state, handed to Observe. Slices are
// read, never retained.
type Input struct {
	Iter    int
	Fit     float64
	// PrevFit is the previous iteration's fit; non-finite (the solver seeds
	// it with -Inf) marks the first iteration, whose delta is excluded from
	// the stall baseline.
	PrevFit float64
	// Tol is the run's convergence threshold: a delta below it means the
	// run is about to converge, which the stall rule must not flag.
	Tol float64
	// Lambda is the component weight vector.
	Lambda []float64
	// Grams holds each mode's factor Gram matrix W⁽ⁿ⁾ = U⁽ⁿ⁾ᵀU⁽ⁿ⁾ (R×R),
	// exactly as the solver maintains them.
	Grams []*dense.Matrix
}

// Probe computes the health signals and drives the verdict state machine.
// Safe for concurrent use; a nil *Probe no-ops everywhere.
type Probe struct {
	mu  sync.Mutex
	cfg Config
	thr Thresholds

	// Lazily sized scratch (first Observe fixes modes and rank).
	hbuf  *dense.Matrix // Gram-Hadamard accumulator, R×R
	kappa []float64     // per-mode κ̂
	congr []float64     // per-mode congruence
	est   condEstimator
	smp   obs.IterSample // reused sample; Log.Append copies it

	// deltaHist is the run's own |Δfit| distribution, the stall rule's
	// baseline. Private (always present) so the rule works without a
	// metrics registry; mirrored to adatm_cpd_fit_delta when one is wired.
	deltaHist *obs.Histogram

	m machine

	// Metric series, registered once in New (nil without a registry).
	stateG *obs.Gauge
	deltaG *obs.Gauge
	ratioG *obs.Gauge
	kappaG *obs.Gauge
	congrG *obs.Gauge
	transC *obs.Counter
	deltaH *obs.Histogram

	// Run aggregates for Summary.
	iters      int
	maxKappa   float64
	maxCongr   float64
	lastDelta  float64
	stateIters [numStates]int
	emitted    bool // initial health.state event sent
}

// FitDeltaBuckets returns the log2 bucket bounds for |Δfit| histograms:
// powers of two from 2⁻⁴⁰ (≈9e-13, well under any practical Tol) up to 1
// (fit is bounded by 1, so deltas beyond that land in +Inf). Log2 spacing
// makes Histogram.Quantile's geometric interpolation accurate to within one
// bucket ratio (2×).
func FitDeltaBuckets() []float64 {
	out := make([]float64, 41)
	b := math.Ldexp(1, -40)
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// New builds a probe. All metric registration happens here, never in
// Observe, so the steady state takes no registry locks and allocates
// nothing.
func New(cfg Config) *Probe {
	p := &Probe{
		cfg:       cfg,
		thr:       cfg.Thresholds.withDefaults(),
		deltaHist: obs.NewHistogram(FitDeltaBuckets()),
	}
	p.m.debounce = p.thr.Debounce
	if reg := cfg.Metrics; reg != nil {
		p.stateG = reg.Gauge("adatm_health_state",
			"Debounced numerical-health verdict (0 healthy, 1 stalled, 2 swamp-suspect, 3 ill-conditioned).", nil)
		p.deltaG = reg.Gauge("adatm_health_fit_delta",
			"Signed fit change of the latest ALS iteration.", nil)
		p.ratioG = reg.Gauge("adatm_health_lambda_ratio",
			"Max/min component weight ratio of the latest iteration.", nil)
		p.kappaG = reg.Gauge("adatm_health_max_kappa",
			"Worst per-mode condition estimate of the Gram-Hadamard systems.", nil)
		p.congrG = reg.Gauge("adatm_health_max_congruence",
			"Worst per-mode factor column congruence (swamp indicator).", nil)
		p.transC = reg.Counter("adatm_health_transitions_total",
			"Debounced health-state transitions.", nil)
		p.deltaH = reg.Histogram("adatm_cpd_fit_delta",
			"Distribution of |Δfit| per ALS iteration.", nil, FitDeltaBuckets())
	}
	return p
}

// size (re)fits the scratch to the observed mode count and rank.
func (p *Probe) size(modes, rank int) {
	if p.hbuf != nil && len(p.kappa) == modes && p.hbuf.Rows == rank {
		return
	}
	p.hbuf = dense.New(rank, rank)
	p.kappa = make([]float64, modes)
	p.congr = make([]float64, modes)
	p.smp.Kappa = p.kappa
	p.smp.Congruence = p.congr
}

// clampFinite bounds a signal for storage: NaN → 0, magnitude capped at
// KappaCeil so every sink (JSON endpoints included) sees finite values.
func clampFinite(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > KappaCeil {
		return KappaCeil
	}
	if v < -KappaCeil {
		return -KappaCeil
	}
	return v
}

// Observe ingests one iteration's state: computes the signals, advances the
// debounced verdict machine, and fans out to the configured sinks.
// Allocation-free after the first call except on verdict transitions.
func (p *Probe) Observe(in Input) {
	if p == nil {
		return
	}
	modes := len(in.Grams)
	if modes == 0 || len(in.Lambda) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rank := in.Grams[0].Rows
	p.size(modes, rank)

	delta := in.Fit - in.PrevFit
	deltaOK := !math.IsNaN(delta) && !math.IsInf(delta, 0)
	absDelta := math.Abs(delta)
	if deltaOK {
		p.deltaHist.Observe(absDelta)
		p.deltaH.Observe(absDelta)
	}
	ratio := lambdaRatio(in.Lambda)

	maxK, maxC := 0.0, 0.0
	for mode := 0; mode < modes; mode++ {
		p.hbuf.Fill(1)
		for i, g := range in.Grams {
			if i != mode {
				dense.Hadamard(p.hbuf, g, p.hbuf)
			}
		}
		k := p.est.estimate(p.hbuf)
		c := congruence(in.Grams[mode])
		p.kappa[mode] = k
		p.congr[mode] = c
		if k > maxK {
			maxK = k
		}
		if c > maxC {
			maxC = c
		}
	}

	// Rule layer, most severe wins: a genuinely ill-conditioned system
	// subsumes the swamp signal it usually also produces, and both subsume
	// a stall.
	raw := Healthy
	switch {
	case maxK >= p.thr.Kappa:
		raw = IllConditioned
	case maxC >= p.thr.Congruence:
		raw = SwampSuspect
	case deltaOK && in.Iter >= p.thr.StallMinIters && absDelta >= in.Tol:
		if med := p.deltaHist.Quantile(0.5); med > 0 && absDelta < p.thr.StallFraction*med {
			raw = Stalled
		}
	}

	prev := p.m.state
	st, changed := p.m.step(raw)

	// Aggregates.
	p.iters++
	p.stateIters[st]++
	if deltaOK {
		p.lastDelta = delta
	} else {
		p.lastDelta = 0
	}
	if maxK > p.maxKappa {
		p.maxKappa = maxK
	}
	if maxC > p.maxCongr {
		p.maxCongr = maxC
	}

	// Metrics.
	p.stateG.Set(float64(st))
	if deltaOK {
		p.deltaG.Set(delta)
	}
	p.ratioG.Set(ratio)
	p.kappaG.Set(maxK)
	p.congrG.Set(maxC)

	// Iteration stream.
	if p.cfg.Log != nil {
		p.smp.Run = p.cfg.Run
		p.smp.Iter = in.Iter
		p.smp.Fit = clampFinite(in.Fit)
		p.smp.FitDelta = clampFinite(p.lastDelta)
		p.smp.LambdaRatio = clampFinite(ratio)
		p.smp.MaxKappa = clampFinite(maxK)
		p.smp.MaxCongruence = clampFinite(maxC)
		p.smp.State = st.String()
		p.cfg.Log.Append(p.smp)
	}

	// Ledger: one event when monitoring starts, one per transition. Both
	// are rare, so the formatting cost stays off the steady-state path.
	if !p.emitted {
		p.emitted = true
		p.cfg.Audit.RecordEvent(audit.Event{
			Kind: "health.state", Iter: in.Iter,
			Detail: fmt.Sprintf("state=%s (monitoring started, run=%s)", st, p.cfg.Run),
		})
	} else if changed {
		p.transC.Inc()
		p.cfg.Audit.RecordEvent(audit.Event{
			Kind: "health.state", Iter: in.Iter,
			Detail: fmt.Sprintf("%s -> %s: fit_delta=%.3g lambda_ratio=%.3g max_kappa=%.3g max_congruence=%.3g",
				prev, st, p.lastDelta, ratio, maxK, maxC),
		})
	}
}

// machine debounces verdict transitions: a candidate state must persist for
// debounce consecutive observations before it is reported, so one noisy
// iteration cannot flap the verdict.
type machine struct {
	state       State
	cand        State
	streak      int
	debounce    int
	transitions int
}

func (m *machine) step(raw State) (State, bool) {
	if raw == m.state {
		m.cand = raw
		m.streak = 0
		return m.state, false
	}
	if raw == m.cand {
		m.streak++
	} else {
		m.cand = raw
		m.streak = 1
	}
	if m.streak >= m.debounce {
		m.state = raw
		m.streak = 0
		m.transitions++
		return m.state, true
	}
	return m.state, false
}

// lambdaRatio returns max|λ|/min|λ|, clamped to [1, KappaCeil]; a zero
// component reports the ceiling (the component is dead).
func lambdaRatio(lambda []float64) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, v := range lambda {
		a := math.Abs(v)
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if lo <= 0 || hi == 0 {
		return KappaCeil
	}
	r := hi / lo
	if r < 1 {
		r = 1
	}
	if r > KappaCeil || math.IsNaN(r) {
		return KappaCeil
	}
	return r
}

// congruence returns the largest off-diagonal of the column-normalized Gram
// matrix, |G[i,j]|/√(G[i,i]·G[j,j]) — how close the two closest factor
// columns are to collinear. Dead columns (zero diagonal) are skipped.
func congruence(g *dense.Matrix) float64 {
	r := g.Rows
	max := 0.0
	for i := 0; i < r; i++ {
		di := g.At(i, i)
		if di <= 0 {
			continue
		}
		for j := i + 1; j < r; j++ {
			dj := g.At(j, j)
			if dj <= 0 {
				continue
			}
			c := math.Abs(g.At(i, j)) / math.Sqrt(di*dj)
			if c > max {
				max = c
			}
		}
	}
	if max > 1 || math.IsNaN(max) {
		// FP noise can push a truly collinear pair infinitesimally past 1.
		max = 1
	}
	return max
}

// Summary is the probe's end-of-run verdict, JSON-marshalable for the CLI
// -json report and the /run snapshot.
type Summary struct {
	State       State   `json:"state"`
	Iters       int     `json:"iters"`
	Transitions int     `json:"transitions"`
	MaxKappa    float64 `json:"max_kappa"`
	// MaxCongruence is the worst factor column congruence seen.
	MaxCongruence float64 `json:"max_congruence"`
	// LastFitDelta is the final iteration's signed fit change.
	LastFitDelta float64 `json:"last_fit_delta"`
	// StateIters counts observed iterations per verdict.
	StateIters map[string]int `json:"state_iters,omitempty"`
}

// String renders the one-line verdict for terminal output.
func (s Summary) String() string {
	return fmt.Sprintf("health=%s (iters=%d, transitions=%d, max_kappa=%.3g, max_congruence=%.3g, last_fit_delta=%.3g)",
		s.State, s.Iters, s.Transitions, s.MaxKappa, s.MaxCongruence, s.LastFitDelta)
}

// Summary returns the current verdict and run aggregates. Nil-safe (a nil
// probe reports a zero healthy summary).
func (p *Probe) Summary() Summary {
	if p == nil {
		return Summary{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Summary{
		State:         p.m.state,
		Iters:         p.iters,
		Transitions:   p.m.transitions,
		MaxKappa:      clampFinite(p.maxKappa),
		MaxCongruence: clampFinite(p.maxCongr),
		LastFitDelta:  clampFinite(p.lastDelta),
	}
	if p.iters > 0 {
		s.StateIters = make(map[string]int, numStates)
		for i, n := range p.stateIters {
			if n > 0 {
				s.StateIters[State(i).String()] = n
			}
		}
	}
	return s
}

// State returns the current debounced verdict. Nil-safe.
func (p *Probe) State() State {
	if p == nil {
		return Healthy
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m.state
}
