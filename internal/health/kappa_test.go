package health

import (
	"math"
	"math/rand"
	"testing"

	"adatm/internal/dense"
)

// randomOrthonormal returns an n×n orthonormal matrix: the eigenvectors of a
// random symmetric matrix (a Haar-ish random rotation, good enough to decouple
// the test spectra from any axis alignment).
func randomOrthonormal(n int, rng *rand.Rand) *dense.Matrix {
	s := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	_, v := dense.SymEig(s)
	return v
}

// spdWithSpectrum builds A = V·diag(d)·Vᵀ for a random rotation V.
func spdWithSpectrum(d []float64, rng *rand.Rand) *dense.Matrix {
	n := len(d)
	v := randomOrthonormal(n, rng)
	a := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += v.At(i, k) * d[k] * v.At(j, k)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

// symEigCond computes the exact spectral condition number via the dense
// eigensolver — the reference the power-iteration estimate is judged against.
func symEigCond(a *dense.Matrix) float64 {
	w, _ := dense.SymEig(a)
	lo, hi := math.Inf(1), 0.0
	for _, v := range w {
		av := math.Abs(v)
		if av < lo {
			lo = av
		}
		if av > hi {
			hi = av
		}
	}
	return hi / lo
}

// Property: on random SPD R×R systems the power-iteration estimate κ̂ stays
// within a factor of 2 of the exact condition number from the eigensolver.
func TestCondEstimateWithinTwoOfExact(t *testing.T) {
	var ce condEstimator
	for _, r := range []int{8, 16, 32} {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		for trial := 0; trial < 20; trial++ {
			// Log-spaced spectrum with a random spread in [1e1, 1e6].
			kappa := math.Pow(10, 1+5*rng.Float64())
			d := make([]float64, r)
			for i := range d {
				d[i] = math.Pow(kappa, float64(i)/float64(r-1))
			}
			a := spdWithSpectrum(d, rng)
			exact := symEigCond(a)
			got := ce.estimate(a)
			if got < exact/2 || got > exact*2 {
				t.Errorf("R=%d trial=%d: κ̂=%.4g outside 2x of exact %.4g", r, trial, got, exact)
			}
		}
	}
}

// The same property on matrices shaped like the probe actually sees: the
// Hadamard product of factor Gram matrices.
func TestCondEstimateGramHadamard(t *testing.T) {
	var ce condEstimator
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		r := 8
		g1 := dense.Gram(dense.Random(4*r, r, rng), nil, 1)
		g2 := dense.Gram(dense.Random(4*r, r, rng), nil, 1)
		h := dense.New(r, r)
		h.Fill(1)
		dense.Hadamard(h, g1, h)
		dense.Hadamard(h, g2, h)
		exact := symEigCond(h)
		got := ce.estimate(h)
		if got < exact/2 || got > exact*2 {
			t.Errorf("trial=%d: κ̂=%.4g outside 2x of exact %.4g", trial, got, exact)
		}
	}
}

func TestCondEstimateEdgeCases(t *testing.T) {
	var ce condEstimator

	// Identity: perfectly conditioned.
	id := dense.New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if got := ce.estimate(id); math.Abs(got-1) > 1e-6 {
		t.Errorf("κ̂(I) = %v, want 1", got)
	}

	// Known diagonal spread.
	d := dense.New(3, 3)
	d.Set(0, 0, 100)
	d.Set(1, 1, 10)
	d.Set(2, 2, 1)
	if got := ce.estimate(d); got < 50 || got > 200 {
		t.Errorf("κ̂(diag(100,10,1)) = %v, want ~100", got)
	}

	// Singular (rank-deficient) matrix: Cholesky fails, ceiling reported.
	sing := dense.New(2, 2)
	sing.Set(0, 0, 1)
	sing.Set(0, 1, 1)
	sing.Set(1, 0, 1)
	sing.Set(1, 1, 1)
	if got := ce.estimate(sing); got != KappaCeil {
		t.Errorf("κ̂(singular) = %v, want KappaCeil", got)
	}

	// Indefinite matrix (negative diagonal) reports the ceiling too.
	neg := dense.New(2, 2)
	neg.Set(0, 0, -1)
	neg.Set(1, 1, -1)
	if got := ce.estimate(neg); got != KappaCeil {
		t.Errorf("κ̂(negative-definite) = %v, want KappaCeil", got)
	}

	// 1x1 fast path.
	one := dense.New(1, 1)
	one.Set(0, 0, 5)
	if got := ce.estimate(one); got != 1 {
		t.Errorf("κ̂([5]) = %v, want 1", got)
	}
	one.Set(0, 0, 0)
	if got := ce.estimate(one); got != KappaCeil {
		t.Errorf("κ̂([0]) = %v, want KappaCeil", got)
	}

	// Non-square input is a programming error.
	defer func() {
		if recover() == nil {
			t.Error("estimate of a non-square matrix did not panic")
		}
	}()
	ce.estimate(dense.New(2, 3))
}

// Repeated estimates at a fixed size reuse scratch: no allocations.
func TestCondEstimateSteadyStateZeroAlloc(t *testing.T) {
	var ce condEstimator
	rng := rand.New(rand.NewSource(3))
	a := dense.Gram(dense.Random(32, 8, rng), nil, 1)
	ce.estimate(a) // warm: sizes scratch
	allocs := testing.AllocsPerRun(100, func() {
		ce.estimate(a)
	})
	if allocs != 0 {
		t.Errorf("steady-state estimate: %v allocs, want 0", allocs)
	}
}
