package health

import (
	"math"

	"adatm/internal/dense"
)

// KappaCeil is the largest condition number the estimator reports. Values
// beyond it are indistinguishable from singular in float64 arithmetic, and a
// finite ceiling keeps every health signal JSON-marshalable.
const KappaCeil = 1e15

const (
	// maxPowerIters bounds both the forward and the inverse power iteration.
	// On R×R Gram-Hadamard systems (R ≤ 256) each iteration is O(R²), so the
	// bound caps the probe's per-mode cost at a few thousand flops while
	// leaving enough headroom for clustered spectra: with an eigenvalue ratio
	// as benign as 0.9 the Rayleigh quotient converges to machine-level in
	// well under 48 steps, and for near-degenerate extremes (ratio → 1) the
	// quotient is within the cluster anyway, so truncation cannot miss by
	// more than the cluster width.
	maxPowerIters = 48
	// powerTol is the relative Rayleigh-quotient change below which the
	// iteration is declared converged.
	powerTol = 1e-6
)

// condEstimator estimates the spectral condition number of small SPD
// matrices with reusable scratch, so repeated estimates (one per mode per
// ALS iteration) are allocation-free after the first call at a given size.
type condEstimator struct {
	n    int
	chol []float64 // in-place lower-triangular Cholesky factor, row-major n×n
	v    []float64 // power-iteration vector
	w    []float64 // power-iteration workspace
}

func (ce *condEstimator) resize(n int) {
	if ce.n == n {
		return
	}
	ce.n = n
	ce.chol = make([]float64, n*n)
	ce.v = make([]float64, n)
	ce.w = make([]float64, n)
}

// estimate returns κ̂ = λ̂max/λ̂min of the SPD matrix a, clamped to
// [1, KappaCeil]. λ̂max comes from forward power iteration, λ̂min from
// inverse power iteration through a Cholesky factorization; both use the
// Rayleigh quotient with an early exit, bounded at maxPowerIters matrix
// applications. A matrix whose factorization fails (numerically
// semi-definite) reports KappaCeil.
func (ce *condEstimator) estimate(a *dense.Matrix) float64 {
	n := a.Rows
	if n != a.Cols {
		panic("health: condition estimate needs a square matrix")
	}
	ce.resize(n)
	if n == 1 {
		if a.Data[0] > 0 {
			return 1
		}
		return KappaCeil
	}
	lmax := ce.powerMax(a)
	if !(lmax > 0) || math.IsInf(lmax, 0) {
		return KappaCeil
	}
	copy(ce.chol, a.Data)
	if !cholInPlace(ce.chol, n) {
		return KappaCeil
	}
	lmin := ce.invPowerMin(n)
	if !(lmin > 0) {
		return KappaCeil
	}
	k := lmax / lmin
	if math.IsNaN(k) || k > KappaCeil {
		return KappaCeil
	}
	if k < 1 {
		k = 1
	}
	return k
}

// seedVector fills v with a fixed, mildly graded start vector and normalizes
// it. Deterministic (the probe must not perturb run reproducibility) and
// non-uniform, so it is never exactly orthogonal to the extremal
// eigenvector of a structured matrix the way an all-ones vector can be.
func seedVector(v []float64) {
	n := float64(len(v))
	for i := range v {
		v[i] = 1 + float64(i+1)/n
	}
	normalize(v)
}

// powerMax estimates the largest eigenvalue of a via power iteration.
func (ce *condEstimator) powerMax(a *dense.Matrix) float64 {
	n, v, w := ce.n, ce.v, ce.w
	seedVector(v)
	lam := 0.0
	for it := 0; it < maxPowerIters; it++ {
		for i := 0; i < n; i++ {
			row := a.Row(i)
			s := 0.0
			for j, x := range row {
				s += x * v[j]
			}
			w[i] = s
		}
		rq := dot(v, w) // Rayleigh quotient (v is unit-norm)
		nw := norm(w)
		if nw == 0 || math.IsNaN(nw) || math.IsInf(nw, 0) {
			return rq
		}
		inv := 1 / nw
		for i := range v {
			v[i] = w[i] * inv
		}
		if it > 0 && math.Abs(rq-lam) <= powerTol*math.Abs(rq) {
			return rq
		}
		lam = rq
	}
	return lam
}

// invPowerMin estimates the smallest eigenvalue of the matrix whose Cholesky
// factor is held in ce.chol, by power iteration on the inverse (each step is
// one forward + one backward triangular solve).
func (ce *condEstimator) invPowerMin(n int) float64 {
	v, w := ce.v, ce.w
	seedVector(v)
	lam := 0.0 // dominant eigenvalue of A⁻¹
	for it := 0; it < maxPowerIters; it++ {
		copy(w, v)
		cholSolve(ce.chol, n, w)
		rq := dot(v, w)
		nw := norm(w)
		if nw == 0 || math.IsNaN(nw) || math.IsInf(nw, 0) {
			return 0
		}
		inv := 1 / nw
		for i := range v {
			v[i] = w[i] * inv
		}
		if it > 0 && math.Abs(rq-lam) <= powerTol*math.Abs(rq) {
			lam = rq
			break
		}
		lam = rq
	}
	if !(lam > 0) {
		return 0
	}
	return 1 / lam
}

// cholInPlace factors the SPD matrix held row-major in a (n×n) into its
// lower-triangular Cholesky factor, in place. Returns false on a
// non-positive pivot (the matrix is numerically semi-definite). Unlike
// dense.Cholesky this works on a raw slice and never allocates, which the
// probe's zero-alloc steady state requires.
func cholInPlace(a []float64, n int) bool {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s * inv
		}
	}
	return true
}

// cholSolve solves A·x = b in place on b, given the lower-triangular
// Cholesky factor of A in l (row-major n×n, upper triangle ignored).
func cholSolve(l []float64, n int, b []float64) {
	for i := 0; i < n; i++ { // forward: L·y = b
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
	for i := n - 1; i >= 0; i-- { // backward: Lᵀ·x = y
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}
