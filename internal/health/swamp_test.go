package health_test

import (
	"bytes"
	"strings"
	"testing"

	"adatm/internal/audit"
	"adatm/internal/coo"
	"adatm/internal/cpd"
	"adatm/internal/dense"
	"adatm/internal/health"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// swampFixture builds the deterministic degenerate fixture: a dense rank-3
// order-3 tensor whose first two components are near-collinear in every mode
// (the canonical CP swamp configuration), plus the matching factor matrices
// to initialize ALS right on the degenerate ridge.
func swampFixture() (*tensor.COO, []*dense.Matrix) {
	const dim, rank = 8, 3
	eps := 0.02
	factors := make([]*dense.Matrix, 3)
	for m := range factors {
		f := dense.New(dim, rank)
		for i := 0; i < dim; i++ {
			base := 1 + 0.3*float64((i+m)%dim)
			pert := float64(i%3) - 1 // -1, 0, 1 pattern
			f.Set(i, 0, base)
			f.Set(i, 1, base+eps*pert) // component 2 ≈ component 1
			f.Set(i, 2, 1+0.7*float64((dim-1-i+m)%dim))
		}
		factors[m] = f
	}
	x := tensor.NewCOO([]int{dim, dim, dim}, dim*dim*dim)
	idx := make([]tensor.Index, 3)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			for k := 0; k < dim; k++ {
				v := 0.0
				for r := 0; r < rank; r++ {
					v += factors[0].At(i, r) * factors[1].At(j, r) * factors[2].At(k, r)
				}
				idx[0], idx[1], idx[2] = tensor.Index(i), tensor.Index(j), tensor.Index(k)
				x.Append(idx, v)
			}
		}
	}
	return x, factors
}

// The swamp fixture must be flagged swamp-suspect within 5 iterations, and
// the verdict must be visible in all three sinks: the audit ledger, the
// adatm_health_* metrics, and the /iters iteration stream.
func TestSwampFixtureDetectedInAllSinks(t *testing.T) {
	x, init := swampFixture()
	reg := obs.NewRegistry()
	var ledger bytes.Buffer
	log := obs.NewIterLog(32)
	probe := health.New(health.Config{
		Run:     "swamp-fixture",
		Metrics: reg,
		Audit:   audit.NewRecorder(audit.Config{Ledger: &ledger}),
		Log:     log,
	})
	res, err := cpd.Run(x, coo.New(x, 1), cpd.Options{
		Rank: 3, MaxIters: 5, Tol: 1e-12, Init: init, Health: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 5 {
		t.Fatalf("fixture ran %d iterations, cap is 5", res.Iters)
	}

	if st := probe.State(); st != health.SwampSuspect {
		t.Fatalf("verdict = %v within %d iterations, want swamp-suspect (summary %+v)",
			st, res.Iters, probe.Summary())
	}
	sum := probe.Summary()
	if sum.MaxCongruence < 0.97 {
		t.Errorf("MaxCongruence = %v, want >= 0.97", sum.MaxCongruence)
	}

	// Sink 1: audit ledger carries a valid health.state transition event.
	text := ledger.String()
	if !strings.Contains(text, `"health.state"`) || !strings.Contains(text, "swamp-suspect") {
		t.Errorf("ledger missing swamp-suspect health.state event:\n%s", text)
	}
	if _, err := audit.ValidateLedger(bytes.NewReader(ledger.Bytes())); err != nil {
		t.Errorf("ledger invalid: %v", err)
	}

	// Sink 2: metrics gauge reports the swamp verdict.
	snap := reg.Snapshot()
	if got := snap["adatm_health_state"]; got != float64(health.SwampSuspect) {
		t.Errorf("adatm_health_state = %v, want %v", got, float64(health.SwampSuspect))
	}
	if snap["adatm_cpd_fit_delta_count"] == 0 {
		t.Error("adatm_cpd_fit_delta histogram saw no observations")
	}

	// Sink 3: the iteration stream's newest sample carries the verdict.
	samples := log.Snapshot()
	if len(samples) != res.Iters {
		t.Fatalf("iterlog has %d samples for %d iterations", len(samples), res.Iters)
	}
	last := samples[len(samples)-1]
	if last.State != "swamp-suspect" || last.Run != "swamp-fixture" {
		t.Errorf("iterlog last sample = %+v, want swamp-suspect", last)
	}
	if last.MaxCongruence < 0.97 {
		t.Errorf("iterlog sample MaxCongruence = %v", last.MaxCongruence)
	}
}

// The quickstart-style fixture (well-separated random CP signal) must sail
// through with a clean bill: no transitions, healthy end state.
func TestQuickstartFixtureStaysHealthy(t *testing.T) {
	x := tensor.Generate(tensor.GenSpec{
		Name: "quickstart", Dims: []int{30, 40, 25}, NNZ: 5000, Rank: 4, Noise: 0.1, Seed: 7,
	})
	log := obs.NewIterLog(64)
	probe := health.New(health.Config{Run: "quickstart", Log: log})
	res, err := cpd.Run(x, coo.New(x, 1), cpd.Options{
		Rank: 4, MaxIters: 15, Tol: 1e-6, Seed: 1, Health: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := probe.Summary()
	if sum.State != health.Healthy || sum.Transitions != 0 {
		t.Fatalf("quickstart fixture verdict = %+v, want healthy with 0 transitions", sum)
	}
	if sum.Iters != res.Iters {
		t.Errorf("probe observed %d iterations, run did %d", sum.Iters, res.Iters)
	}
	for _, s := range log.Snapshot() {
		if s.State != "healthy" {
			t.Errorf("iteration %d streamed state %q, want healthy", s.Iter, s.State)
		}
	}
}

// The solver's steady-state allocation counter must not move when the probe
// is enabled with every sink wired: the probe warms its scratch during
// iteration 1 (outside the steady window) and allocates nothing after.
func TestProbeKeepsSolverSteadyStateZeroAlloc(t *testing.T) {
	x := tensor.Generate(tensor.GenSpec{
		Name: "alloc-pin", Dims: []int{30, 40, 25}, NNZ: 5000, Rank: 4, Noise: 0.1, Seed: 7,
	})
	base, err := cpd.Run(x, coo.New(x, 1), cpd.Options{
		Rank: 4, MaxIters: 8, Tol: 1e-15, Seed: 5, Workers: 1, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ledger bytes.Buffer
	probe := health.New(health.Config{
		Run:     "alloc-pin",
		Metrics: obs.NewRegistry(),
		Audit:   audit.NewRecorder(audit.Config{Ledger: &ledger}),
		Log:     obs.NewIterLog(16),
	})
	probed, err := cpd.Run(x, coo.New(x, 1), cpd.Options{
		Rank: 4, MaxIters: 8, Tol: 1e-15, Seed: 5, Workers: 1, CollectStats: true,
		Health: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if probe.State() != health.Healthy {
		t.Fatalf("alloc-pin fixture not healthy: %+v", probe.Summary())
	}
	if got, want := probed.Stats.SteadyAllocs, base.Stats.SteadyAllocs; got > want {
		t.Errorf("probe added steady-state allocations: %d with probe, %d without", got, want)
	}
}

// The probe must not perturb the trajectory: a probed run and a bare run
// produce bit-identical results.
func TestProbeDoesNotPerturbRun(t *testing.T) {
	x := tensor.RandomClustered(3, 20, 800, 0.6, 17)
	opt := cpd.Options{Rank: 4, MaxIters: 8, Tol: 1e-12, Seed: 5}
	base, err := cpd.Run(x, coo.New(x, 1), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Health = health.New(health.Config{})
	probed, err := cpd.Run(x, coo.New(x, 1), opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fit != probed.Fit || base.Iters != probed.Iters {
		t.Fatalf("probed run diverged: fit %v vs %v, iters %d vs %d",
			base.Fit, probed.Fit, base.Iters, probed.Iters)
	}
	for m := range base.Factors {
		if base.Factors[m].MaxAbsDiff(probed.Factors[m]) != 0 {
			t.Errorf("factor %d differs under the probe", m)
		}
	}
}
