// Package ckpt provides crash-safe persistence for long CP-ALS runs: an
// atomic file writer (temp file + fsync + rename + parent-dir fsync), a
// versioned checkpoint format capturing the ALS loop state at an iteration
// boundary, and a rolling-retention checkpoint manager. A deterministic
// fault-injection hook lets tests kill a write at any point of the protocol
// and assert that no corrupt or partially-written file is ever observable.
package ckpt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// FaultPoint names one step of the atomic-write protocol at which an
// injected fault fires, simulating a crash at that instant.
type FaultPoint int

const (
	// FaultNone disables the fault.
	FaultNone FaultPoint = iota
	// FaultBeforeWrite fails before the temp file is created: the crash
	// happens before any byte reaches disk.
	FaultBeforeWrite
	// FaultMidWrite fails after Fault.AfterBytes bytes have been accepted
	// by the temp file's writer: the crash leaves a truncated temp file
	// that must never replace the target.
	FaultMidWrite
	// FaultAfterRename fails after the rename committed the new file but
	// before the parent directory is fsynced: the new content is already
	// the durable winner on any journaled filesystem, and the caller's
	// post-write bookkeeping (retention pruning, counters) is lost.
	FaultAfterRename
)

// String names the fault point for test output.
func (p FaultPoint) String() string {
	switch p {
	case FaultNone:
		return "none"
	case FaultBeforeWrite:
		return "before-write"
	case FaultMidWrite:
		return "mid-write"
	case FaultAfterRename:
		return "after-rename"
	}
	return fmt.Sprintf("FaultPoint(%d)", int(p))
}

// ErrInjected is the sentinel wrapped by every injected fault, so tests can
// distinguish a simulated crash from a real I/O error.
var ErrInjected = errors.New("ckpt: injected fault")

// Fault is one armed fault for crash-safety tests. The first write attempt
// after Skip successful writes fires the fault at the configured point;
// every later attempt fires too (a crashed process does not come back).
type Fault struct {
	Point FaultPoint
	// AfterBytes is the number of bytes the temp-file writer accepts
	// before failing (FaultMidWrite only).
	AfterBytes int64
	// Skip is the number of atomic writes allowed to complete before the
	// fault fires, making "crash during the k-th checkpoint" deterministic.
	Skip int32

	writes atomic.Int32
}

// fires reports whether this write attempt is past the skip window.
func (f *Fault) fires() bool {
	if f == nil || f.Point == FaultNone {
		return false
	}
	return f.writes.Add(1) > f.Skip
}

// globalFault is the process-wide injected fault consulted by every
// AtomicWriter with no per-writer fault. Test-only; see InjectFault.
var globalFault atomic.Pointer[Fault]

// InjectFault arms a process-wide fault for every subsequent atomic write
// (test hook — production code never sets it). The returned function
// restores the previous state; call it before the test returns.
func InjectFault(f *Fault) (restore func()) {
	old := globalFault.Swap(f)
	return func() { globalFault.Store(old) }
}

// AtomicWriter writes files crash-atomically: the content goes to a hidden
// temp file in the target's directory, is fsynced, then renamed over the
// target, and the parent directory is fsynced so the rename itself is
// durable. At no instant is a torn target visible: readers see either the
// complete old file or the complete new one.
//
// The zero value is ready to use.
type AtomicWriter struct {
	// Fault, when non-nil, overrides the process-wide injected fault for
	// this writer (deterministic per-writer crash tests).
	Fault *Fault
}

// shortWriter accepts up to n bytes and then fails with ErrInjected,
// simulating a process killed mid-write.
type shortWriter struct {
	w io.Writer
	n int64
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.n <= 0 {
		return 0, fmt.Errorf("write after %w", ErrInjected)
	}
	if int64(len(p)) > s.n {
		n, _ := s.w.Write(p[:s.n])
		s.n = 0
		return n, fmt.Errorf("short write: %w", ErrInjected)
	}
	n, err := s.w.Write(p)
	s.n -= int64(n)
	return n, err
}

// WriteFile atomically replaces path with the bytes produced by write. On
// any error (including an injected fault) the temp file is removed and the
// previous target content is untouched; only a completed rename publishes
// the new content.
func (aw *AtomicWriter) WriteFile(path string, write func(io.Writer) error) (err error) {
	var fault *Fault
	if aw != nil && aw.Fault != nil {
		fault = aw.Fault
	} else {
		fault = globalFault.Load()
	}
	firing := fault.fires()
	if firing && fault.Point == FaultBeforeWrite {
		return fmt.Errorf("ckpt: write %s: %w", path, ErrInjected)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	var w io.Writer = tmp
	if firing && fault.Point == FaultMidWrite {
		w = &shortWriter{w: tmp, n: fault.AfterBytes}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	// fsync before rename: the content must be durable before the name
	// points at it, or a crash after the rename could expose an empty or
	// torn file on power loss.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	if firing && fault.Point == FaultAfterRename {
		// The rename committed: the new file is the durable content. Only
		// the post-rename bookkeeping is lost.
		return fmt.Errorf("ckpt: post-rename %s: %w", path, ErrInjected)
	}
	return syncDir(dir)
}

// WriteFileAtomic writes path crash-atomically with a zero-value writer —
// the drop-in replacement for os.Create-then-write in save paths.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return (&AtomicWriter{}).WriteFile(path, write)
}

// syncDir fsyncs a directory so a completed rename inside it survives power
// loss. Some platforms/filesystems reject directory fsync; those errors are
// ignored (the rename is still atomic, only its durability window widens).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
