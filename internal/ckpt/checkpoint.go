package ckpt

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"adatm/internal/dense"
)

// Format is the versioned checkpoint container identifier.
const Format = "adatm-ckpt/v1"

// Checkpoint is the complete CP-ALS loop state at an iteration boundary:
// everything a resumed run needs to continue bit-for-bit where the crashed
// run left off. Factors are the column-normalized matrices at the end of
// iteration Iter; Fit is the fit computed that iteration (the resumed run's
// convergence test compares against it exactly as the uninterrupted loop
// would have).
type Checkpoint struct {
	Iter     int
	Fit      float64
	Lambda   []float64
	Factors  []*dense.Matrix
	FitTrace []float64 // per-iteration fit history (present when tracked)
	Seed     int64     // initialization seed of the original run (informational)
	// Fingerprint binds the checkpoint to one (tensor, run-parameter)
	// pair; Resume refuses a checkpoint whose fingerprint does not match
	// the tensor and options it is asked to continue.
	Fingerprint string
}

// checkpointJSON is the on-disk schema.
type checkpointJSON struct {
	Format      string       `json:"format"`
	Iter        int          `json:"iter"`
	Fit         float64      `json:"fit"`
	Lambda      []float64    `json:"lambda"`
	Factors     []matrixJSON `json:"factors"`
	FitTrace    []float64    `json:"fit_trace,omitempty"`
	Seed        int64        `json:"seed"`
	Fingerprint string       `json:"fingerprint"`
}

type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// Validate checks structural soundness and rejects non-finite state: a
// checkpoint carrying NaN/Inf must never be silently resumed (the poisoned
// values would propagate through every remaining iteration).
func (c *Checkpoint) Validate() error {
	if c.Iter < 1 {
		return fmt.Errorf("ckpt: iteration %d is not positive", c.Iter)
	}
	if len(c.Factors) == 0 {
		return fmt.Errorf("ckpt: no factors")
	}
	r := c.Factors[0].Cols
	if len(c.Lambda) != r {
		return fmt.Errorf("ckpt: lambda has %d entries for rank %d", len(c.Lambda), r)
	}
	for i, v := range c.Lambda {
		if !isFinite(v) {
			return fmt.Errorf("ckpt: lambda[%d] is non-finite (%g)", i, v)
		}
	}
	if !isFinite(c.Fit) {
		// -Inf is the loop's pre-first-fit sentinel and never checkpointed.
		return fmt.Errorf("ckpt: fit is non-finite (%g)", c.Fit)
	}
	for m, f := range c.Factors {
		if f == nil || f.Rows < 0 || f.Cols != r || len(f.Data) != f.Rows*f.Cols {
			return fmt.Errorf("ckpt: factor %d is malformed", m)
		}
		for k, v := range f.Data {
			if !isFinite(v) {
				return fmt.Errorf("ckpt: factor %d entry (%d,%d) is non-finite (%g)", m, k/f.Cols, k%f.Cols, v)
			}
		}
	}
	for i, v := range c.FitTrace {
		if !isFinite(v) {
			return fmt.Errorf("ckpt: fit_trace[%d] is non-finite (%g)", i, v)
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Write serializes the checkpoint to w, validating first so a poisoned
// in-memory state is refused rather than persisted.
func Write(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	j := checkpointJSON{
		Format:      Format,
		Iter:        c.Iter,
		Fit:         c.Fit,
		Lambda:      c.Lambda,
		FitTrace:    c.FitTrace,
		Seed:        c.Seed,
		Fingerprint: c.Fingerprint,
	}
	for _, f := range c.Factors {
		j.Factors = append(j.Factors, matrixJSON{Rows: f.Rows, Cols: f.Cols, Data: f.Data})
	}
	return json.NewEncoder(w).Encode(&j)
}

// Read parses and validates a checkpoint written by Write. Corrupt input —
// wrong version, malformed shapes, non-finite values — is rejected with the
// offending location in the error.
func Read(r io.Reader) (*Checkpoint, error) {
	var j checkpointJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("ckpt: parsing checkpoint: %w", err)
	}
	if j.Format != Format {
		return nil, fmt.Errorf("ckpt: unsupported checkpoint format %q", j.Format)
	}
	c := &Checkpoint{
		Iter:        j.Iter,
		Fit:         j.Fit,
		Lambda:      j.Lambda,
		FitTrace:    j.FitTrace,
		Seed:        j.Seed,
		Fingerprint: j.Fingerprint,
	}
	for _, fj := range j.Factors {
		c.Factors = append(c.Factors, &dense.Matrix{Rows: fj.Rows, Cols: fj.Cols, Data: fj.Data})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Meta is the run-parameter half of a fingerprint: the knobs that change
// the ALS trajectory and therefore must match between the checkpointed run
// and the resuming one. The initialization seed is deliberately excluded —
// the factors themselves are in the checkpoint, so the seed only matters
// for the original initialization.
type Meta struct {
	Rank        int
	Ridge       float64
	NonNegative bool
	ModeOrder   []int
}

// Fingerprint hashes a tensor (dims, nonzero pattern, values) together with
// the run parameters into the stable identity a checkpoint is bound to.
// The index slices use the tensor package's Index representation (int32)
// without importing it, keeping this package a leaf below tensor.
func Fingerprint(dims []int, inds [][]int32, vals []float64, m Meta) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(len(dims)))
	for _, d := range dims {
		put(uint64(d))
	}
	put(uint64(len(vals)))
	for _, ind := range inds {
		for _, i := range ind {
			put(uint64(uint32(i)))
		}
	}
	for _, v := range vals {
		put(math.Float64bits(v))
	}
	put(uint64(m.Rank))
	put(math.Float64bits(m.Ridge))
	if m.NonNegative {
		put(1)
	} else {
		put(0)
	}
	put(uint64(len(m.ModeOrder)))
	for _, o := range m.ModeOrder {
		put(uint64(o))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
