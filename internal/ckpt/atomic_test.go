package ckpt

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeString(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// dirEntries returns the names present in dir (for temp-file leak checks).
func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileAtomic(path, writeString("one")); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "one" {
		t.Fatalf("got %q", got)
	}
	if err := WriteFileAtomic(path, writeString("two")); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "two" {
		t.Fatalf("got %q", got)
	}
}

func TestWriteFileCallbackErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, writeString("good")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := readFile(t, path); got != "good" {
		t.Fatalf("target corrupted: %q", got)
	}
	if names := dirEntries(t, dir); len(names) != 1 {
		t.Fatalf("temp file leaked: %v", names)
	}
}

func TestFaultPoints(t *testing.T) {
	const old = "old content that must survive"
	const next = "replacement payload, long enough to be cut mid-way"
	cases := []struct {
		fault   Fault
		wantNew bool // target holds the new content after the "crash"
	}{
		{Fault{Point: FaultBeforeWrite}, false},
		{Fault{Point: FaultMidWrite, AfterBytes: 8}, false},
		{Fault{Point: FaultMidWrite, AfterBytes: 0}, false},
		{Fault{Point: FaultAfterRename}, true},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.fault.Point.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.txt")
			if err := WriteFileAtomic(path, writeString(old)); err != nil {
				t.Fatal(err)
			}
			aw := &AtomicWriter{Fault: &tc.fault}
			err := aw.WriteFile(path, writeString(next))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("err = %v, want injected fault", err)
			}
			want := old
			if tc.wantNew {
				want = next
			}
			if got := readFile(t, path); got != want {
				t.Fatalf("after %v: target = %q, want %q", tc.fault.Point, got, want)
			}
			if names := dirEntries(t, dir); len(names) != 1 {
				t.Fatalf("after %v: stray files %v", tc.fault.Point, names)
			}
		})
	}
}

func TestFaultSkipWindow(t *testing.T) {
	dir := t.TempDir()
	aw := &AtomicWriter{Fault: &Fault{Point: FaultBeforeWrite, Skip: 2}}
	for i := 0; i < 2; i++ {
		if err := aw.WriteFile(filepath.Join(dir, "f.txt"), writeString("ok")); err != nil {
			t.Fatalf("write %d inside skip window failed: %v", i, err)
		}
	}
	if err := aw.WriteFile(filepath.Join(dir, "f.txt"), writeString("no")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write: err = %v, want injected", err)
	}
	// A fired fault keeps firing: the crashed process does not come back.
	if err := aw.WriteFile(filepath.Join(dir, "f.txt"), writeString("no")); !errors.Is(err, ErrInjected) {
		t.Fatalf("fourth write: err = %v, want injected", err)
	}
}

func TestInjectFaultGlobal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	restore := InjectFault(&Fault{Point: FaultBeforeWrite})
	err := WriteFileAtomic(path, writeString("x"))
	restore()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("global fault not consulted: %v", err)
	}
	if err := WriteFileAtomic(path, writeString("x")); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	if !strings.Contains(readFile(t, path), "x") {
		t.Fatal("content missing after restore")
	}
}
