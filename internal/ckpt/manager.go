package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"adatm/internal/obs"
)

// DefaultRetain is the rolling-retention depth when the caller leaves it
// unset: the newest checkpoints kept on disk.
const DefaultRetain = 3

// ErrNoCheckpoint is returned by LoadLatest when the directory holds no
// loadable checkpoint.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// Manager owns one checkpoint directory: atomic writes of numbered
// checkpoint files, rolling retention of the newest K, and
// latest-checkpoint discovery for resume. Checkpoints are named
// ckpt-<iter>.json so the newest is identifiable without parsing.
type Manager struct {
	dir    string
	retain int
	writer AtomicWriter

	// Optional metrics (nil-safe): write count, bytes, latency, last iter.
	writes   *obs.Counter
	errs     *obs.Counter
	bytes    *obs.Counter
	seconds  *obs.Histogram
	lastIter *obs.Gauge
}

// NewManager creates (if needed) the checkpoint directory and returns a
// manager with the given retention depth (<= 0 selects DefaultRetain).
func NewManager(dir string, retain int) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Manager{dir: dir, retain: retain}, nil
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

// SetFault arms a deterministic fault on this manager's writes (test hook).
func (m *Manager) SetFault(f *Fault) { m.writer.Fault = f }

// Instrument registers the adatm_ckpt_* metrics on reg (idempotent per
// registry; nil reg is a no-op).
func (m *Manager) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.writes = reg.Counter("adatm_ckpt_writes_total",
		"Checkpoint files written (atomic rename committed).", nil)
	m.errs = reg.Counter("adatm_ckpt_write_errors_total",
		"Checkpoint writes that failed before committing.", nil)
	m.bytes = reg.Counter("adatm_ckpt_bytes_total",
		"Serialized checkpoint bytes written.", nil)
	m.seconds = reg.Histogram("adatm_ckpt_write_seconds",
		"Checkpoint write latency (serialize + fsync + rename).", nil, nil)
	m.lastIter = reg.Gauge("adatm_ckpt_last_iter",
		"ALS iteration of the most recently written checkpoint.", nil)
}

// Path returns the checkpoint file path for an iteration.
func (m *Manager) Path(iter int) string {
	return filepath.Join(m.dir, fmt.Sprintf("ckpt-%08d.json", iter))
}

// countingWriter tallies bytes for the adatm_ckpt_bytes_total counter.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Save atomically writes c to its numbered file and prunes checkpoints
// beyond the retention depth. The prune runs only after a committed write,
// so a failed write can never reduce the set of good checkpoints on disk.
func (m *Manager) Save(c *Checkpoint) (string, error) {
	path := m.Path(c.Iter)
	start := time.Now()
	var written int64
	err := m.writer.WriteFile(path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := Write(cw, c)
		written = cw.n
		return err
	})
	if err != nil {
		if m.errs != nil {
			m.errs.Inc()
		}
		return "", err
	}
	if m.writes != nil {
		m.writes.Inc()
		m.bytes.Add(written)
		m.seconds.Observe(time.Since(start).Seconds())
		m.lastIter.Set(float64(c.Iter))
	}
	if err := m.prune(); err != nil {
		return path, err
	}
	return path, nil
}

// List returns the checkpoint iterations present in the directory, ascending.
func (m *Manager) List() ([]int, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var iters []int
	for _, e := range ents {
		var it int
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%d.json", &it); n == 1 && err == nil {
			iters = append(iters, it)
		}
	}
	sort.Ints(iters)
	return iters, nil
}

// prune removes the oldest checkpoints beyond the retention depth.
func (m *Manager) prune() error {
	iters, err := m.List()
	if err != nil {
		return err
	}
	for len(iters) > m.retain {
		if err := os.Remove(m.Path(iters[0])); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("ckpt: prune: %w", err)
		}
		iters = iters[1:]
	}
	return nil
}

// Load reads and validates one checkpoint file.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// LoadLatest returns the newest loadable checkpoint and its path. A
// checkpoint that fails to parse or validate is skipped in favor of the
// next-newest (defense in depth — the atomic writer should make corruption
// unobservable, but resuming from an older good state always beats
// refusing to resume at all). ErrNoCheckpoint is returned when nothing
// loadable remains; the last corruption error is attached when one was seen.
func (m *Manager) LoadLatest() (*Checkpoint, string, error) {
	iters, err := m.List()
	if err != nil {
		return nil, "", err
	}
	var lastErr error
	for i := len(iters) - 1; i >= 0; i-- {
		path := m.Path(iters[i])
		c, err := Load(path)
		if err != nil {
			lastErr = err
			continue
		}
		return c, path, nil
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("%w (newest unreadable: %v)", ErrNoCheckpoint, lastErr)
	}
	return nil, "", ErrNoCheckpoint
}
