package ckpt

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"adatm/internal/dense"
)

// randomCheckpoint builds a structurally valid checkpoint of the given
// order with random shapes and values.
func randomCheckpoint(rng *rand.Rand, order int) *Checkpoint {
	r := 1 + rng.Intn(6)
	c := &Checkpoint{
		Iter:        1 + rng.Intn(100),
		Fit:         rng.Float64(),
		Lambda:      make([]float64, r),
		Seed:        rng.Int63(),
		Fingerprint: "deadbeefdeadbeef",
	}
	for i := range c.Lambda {
		c.Lambda[i] = rng.NormFloat64()
	}
	for m := 0; m < order; m++ {
		rows := 1 + rng.Intn(12)
		f := dense.New(rows, r)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		c.Factors = append(c.Factors, f)
	}
	for i := 0; i < rng.Intn(5); i++ {
		c.FitTrace = append(c.FitTrace, rng.Float64())
	}
	return c
}

// TestCheckpointRoundTripProperty round-trips random checkpoints over
// orders 3-5 and demands bit-exact equality: resume correctness depends on
// the factors surviving serialization unchanged.
func TestCheckpointRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for order := 3; order <= 5; order++ {
		for trial := 0; trial < 25; trial++ {
			c := randomCheckpoint(rng, order)
			var buf bytes.Buffer
			if err := Write(&buf, c); err != nil {
				t.Fatalf("order %d trial %d: write: %v", order, trial, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("order %d trial %d: read: %v", order, trial, err)
			}
			if got.Iter != c.Iter || got.Fit != c.Fit || got.Seed != c.Seed || got.Fingerprint != c.Fingerprint {
				t.Fatalf("order %d trial %d: header changed", order, trial)
			}
			for i := range c.Lambda {
				if got.Lambda[i] != c.Lambda[i] {
					t.Fatalf("order %d trial %d: lambda[%d] %v != %v", order, trial, i, got.Lambda[i], c.Lambda[i])
				}
			}
			for m := range c.Factors {
				if d := got.Factors[m].MaxAbsDiff(c.Factors[m]); d != 0 {
					t.Fatalf("order %d trial %d: factor %d differs by %g", order, trial, m, d)
				}
			}
			for i := range c.FitTrace {
				if got.FitTrace[i] != c.FitTrace[i] {
					t.Fatalf("order %d trial %d: fit trace changed", order, trial)
				}
			}
		}
	}
}

func TestCheckpointRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	poison := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, bad := range poison {
		c := randomCheckpoint(rng, 3)
		c.Factors[1].Data[2] = bad
		var buf bytes.Buffer
		if err := Write(&buf, c); err == nil {
			t.Errorf("factor poisoned with %g accepted on write", bad)
		} else if !strings.Contains(err.Error(), "factor 1") {
			t.Errorf("error does not name the factor: %v", err)
		}

		c = randomCheckpoint(rng, 3)
		c.Lambda[0] = bad
		buf.Reset()
		if err := Write(&buf, c); err == nil || !strings.Contains(err.Error(), "lambda[0]") {
			t.Errorf("poisoned lambda: err = %v", err)
		}
	}
	// A poisoned file (bypassing Write's validation) must be rejected on Read.
	in := `{"format":"adatm-ckpt/v1","iter":3,"fit":0.5,"lambda":[1],` +
		`"factors":[{"rows":2,"cols":1,"data":[1,"NaN"]}],"fingerprint":"00"}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("NaN-bearing checkpoint accepted on read")
	}
}

func TestCheckpointReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":     "hello",
		"wrong format": `{"format":"adatm-cp/v1","iter":1,"lambda":[1],"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
		"zero iter":    `{"format":"adatm-ckpt/v1","iter":0,"lambda":[1],"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
		"no factors":   `{"format":"adatm-ckpt/v1","iter":1,"lambda":[1],"factors":[]}`,
		"ragged":       `{"format":"adatm-ckpt/v1","iter":1,"lambda":[1],"factors":[{"rows":2,"cols":1,"data":[1]}]}`,
		"bad lambda":   `{"format":"adatm-ckpt/v1","iter":1,"lambda":[1,2],"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	dims := []int{4, 3, 2}
	inds := [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 1}}
	vals := []float64{1, 2, 3}
	meta := Meta{Rank: 8, Ridge: 0.1}
	base := Fingerprint(dims, inds, vals, meta)

	if got := Fingerprint(dims, inds, vals, meta); got != base {
		t.Fatal("fingerprint is not deterministic")
	}
	vals2 := []float64{1, 2, 3.0000001}
	if Fingerprint(dims, inds, vals2, meta) == base {
		t.Error("value change not detected")
	}
	inds2 := [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 0}}
	if Fingerprint(dims, inds2, vals, meta) == base {
		t.Error("index change not detected")
	}
	if Fingerprint([]int{4, 3, 3}, inds, vals, meta) == base {
		t.Error("dims change not detected")
	}
	if Fingerprint(dims, inds, vals, Meta{Rank: 9, Ridge: 0.1}) == base {
		t.Error("rank change not detected")
	}
	if Fingerprint(dims, inds, vals, Meta{Rank: 8, Ridge: 0.2}) == base {
		t.Error("ridge change not detected")
	}
	if Fingerprint(dims, inds, vals, Meta{Rank: 8, Ridge: 0.1, NonNegative: true}) == base {
		t.Error("non-negativity change not detected")
	}
	if Fingerprint(dims, inds, vals, Meta{Rank: 8, Ridge: 0.1, ModeOrder: []int{2, 1, 0}}) == base {
		t.Error("mode order change not detected")
	}
}
