package ckpt

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"adatm/internal/obs"
)

func managerCheckpoint(iter int) *Checkpoint {
	rng := rand.New(rand.NewSource(int64(iter)))
	c := randomCheckpoint(rng, 3)
	c.Iter = iter
	return c
}

func TestManagerRetention(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ck"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 1; iter <= 7; iter++ {
		if _, err := m.Save(managerCheckpoint(iter)); err != nil {
			t.Fatalf("save %d: %v", iter, err)
		}
	}
	iters, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 || iters[0] != 5 || iters[2] != 7 {
		t.Fatalf("retention kept %v, want [5 6 7]", iters)
	}
}

func TestManagerLoadLatest(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ck"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v", err)
	}
	for _, iter := range []int{2, 9, 4} {
		if _, err := m.Save(managerCheckpoint(iter)); err != nil {
			t.Fatal(err)
		}
	}
	c, path, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if c.Iter != 9 || path != m.Path(9) {
		t.Fatalf("latest = iter %d (%s), want 9", c.Iter, path)
	}
}

// TestManagerLoadLatestSkipsCorrupt: a corrupt newest file (written outside
// the atomic protocol) must not block resume — the next-newest good
// checkpoint wins.
func TestManagerLoadLatestSkipsCorrupt(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ck"), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, iter := range []int{3, 6} {
		if _, err := m.Save(managerCheckpoint(iter)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(m.Path(8), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	c, _, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if c.Iter != 6 {
		t.Fatalf("latest = iter %d, want fallback to 6", c.Iter)
	}
}

func TestManagerFailedWriteKeepsGoodCheckpoints(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ck"), 2)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 1; iter <= 2; iter++ {
		if _, err := m.Save(managerCheckpoint(iter)); err != nil {
			t.Fatal(err)
		}
	}
	m.SetFault(&Fault{Point: FaultMidWrite, AfterBytes: 40})
	if _, err := m.Save(managerCheckpoint(3)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	m.SetFault(nil)
	iters, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 || iters[0] != 1 || iters[1] != 2 {
		t.Fatalf("failed write disturbed retained set: %v", iters)
	}
	c, _, err := m.LoadLatest()
	if err != nil || c.Iter != 2 {
		t.Fatalf("latest after failed write: %v, %v", c, err)
	}
}

func TestManagerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := NewManager(filepath.Join(t.TempDir(), "ck"), 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Instrument(reg)
	for iter := 1; iter <= 4; iter++ {
		if _, err := m.Save(managerCheckpoint(iter)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap["adatm_ckpt_writes_total"]; got != 4 {
		t.Errorf("writes_total = %v, want 4", got)
	}
	if got := snap["adatm_ckpt_bytes_total"]; got <= 0 {
		t.Errorf("bytes_total = %v, want > 0", got)
	}
	if got := snap["adatm_ckpt_last_iter"]; got != 4 {
		t.Errorf("last_iter = %v, want 4", got)
	}
}
