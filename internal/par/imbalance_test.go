package par

import (
	"strings"
	"testing"

	"adatm/internal/obs"
)

func TestImbalanceRatio(t *testing.T) {
	// Four unit-weight items in two chunks of two: perfect split.
	prefix := []int64{0, 1, 2, 3, 4}
	if r := ImbalanceRatio(prefix, []int{0, 2, 4}); r != 1 {
		t.Errorf("even split ratio = %g, want 1", r)
	}
	// One chunk holds 3 of 4 units across 2 chunks: 3*2/4 = 1.5.
	if r := ImbalanceRatio(prefix, []int{0, 3, 4}); r != 1.5 {
		t.Errorf("skewed split ratio = %g, want 1.5", r)
	}
	// Degenerate inputs report 1 (no imbalance to speak of).
	if r := ImbalanceRatio(nil, nil); r != 1 {
		t.Errorf("nil inputs ratio = %g, want 1", r)
	}
	if r := ImbalanceRatio([]int64{0, 0, 0}, []int{0, 1, 2}); r != 1 {
		t.Errorf("zero-weight ratio = %g, want 1", r)
	}
	// A single mega-item dominates whatever chunk holds it, so the ratio is
	// pinned between the item's own share and that share plus the stray
	// units that may ride along in its chunk.
	prefix = []int64{0, 1, 101, 102, 103, 104}
	b := WeightedBounds(prefix, 4)
	r := ImbalanceRatio(prefix, b)
	nchunks := float64(len(b) - 1)
	lo, hi := 100*nchunks/104, 104*nchunks/104
	if r < lo-1e-12 || r > hi+1e-12 {
		t.Errorf("mega-item ratio = %g, want in [%g, %g] (bounds %v)", r, lo, hi, b)
	}
}

// TestChunkTracerSpans verifies the package-global tracer hook: ForChunks
// wraps every executed chunk in a span on the worker's track, and resetting
// the hook to nil stops emission.
func TestChunkTracerSpans(t *testing.T) {
	tr := obs.NewTracer(256)
	SetChunkTracer(tr)
	defer SetChunkTracer(nil)

	prefix := []int64{0, 4, 8, 12, 16}
	bounds := WeightedBounds(prefix, 4)
	var visited int
	ForChunks(bounds, 1, func(worker, lo, hi int) { visited++ })
	if visited == 0 {
		t.Fatal("ForChunks executed no chunks")
	}
	if tr.Len() != visited {
		t.Errorf("tracer holds %d spans, want one per executed chunk (%d)", tr.Len(), visited)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "par.chunk") {
		t.Error("trace export missing par.chunk spans")
	}

	SetChunkTracer(nil)
	before := tr.Len()
	ForChunks(bounds, 1, func(worker, lo, hi int) {})
	if tr.Len() != before {
		t.Error("spans emitted after the chunk tracer was cleared")
	}
}
