package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{0, 1, 3, 16, 2000} {
			var hits sync.Map
			var count atomic.Int64
			For(n, w, func(i int) {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("n=%d w=%d: index %d visited twice", n, w, i)
				}
				count.Add(1)
			})
			if int(count.Load()) != n {
				t.Errorf("n=%d w=%d: visited %d indices", n, w, count.Load())
			}
		}
	}
}

func TestForRangeBlocksPartition(t *testing.T) {
	n := 103
	covered := make([]atomic.Int32, n)
	ForRange(n, 7, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ForWorker(100, 5, func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if seen[w] {
			t.Errorf("worker id %d reused", w)
		}
		seen[w] = true
	})
	if len(seen) != 5 {
		t.Fatalf("saw %d worker ids, want 5", len(seen))
	}
}

func TestForBlocksCoversAll(t *testing.T) {
	n := 250
	covered := make([]atomic.Int32, n)
	ForBlocks(n, 16, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForBlocksZeroAndNegative(t *testing.T) {
	called := false
	ForBlocks(0, 8, 4, func(lo, hi int) { called = true })
	ForBlocks(-3, 8, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
	// blockSize <= 0 must not hang or panic.
	var count atomic.Int64
	ForBlocks(5, 0, 2, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 5 {
		t.Fatalf("covered %d of 5", count.Load())
	}
}

func TestStripesProtect(t *testing.T) {
	s := NewStripes(64)
	counters := make([]int, 1000) // unsynchronized ints; stripes must serialize
	For(10000, 8, func(i int) {
		row := int32(i % 1000)
		s.Lock(row)
		counters[row]++
		s.Unlock(row)
	})
	for i, c := range counters {
		if c != 10 {
			t.Fatalf("counter %d = %d, want 10", i, c)
		}
	}
}

func TestStripesPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 63, 64, 65} {
		s := NewStripes(n)
		if s.Len() < n || s.Len()&(s.Len()-1) != 0 {
			t.Errorf("NewStripes(%d) has %d stripes", n, s.Len())
		}
	}
}

// Edge cases the engines rely on: n smaller than one block, n = 0, and more
// workers than elements must all cover [0, n) exactly once with no empty
// callbacks hanging around.
func TestForBlocksEdgeCases(t *testing.T) {
	// n < blockSize: a single block spanning everything.
	var blocks [][2]int
	var mu sync.Mutex
	ForBlocks(10, 256, 4, func(lo, hi int) {
		mu.Lock()
		blocks = append(blocks, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(blocks) != 1 || blocks[0] != [2]int{0, 10} {
		t.Fatalf("n<blockSize: blocks = %v, want [[0 10]]", blocks)
	}
	// workers > n: every index still visited exactly once.
	covered := make([]atomic.Int32, 3)
	ForBlocks(3, 1, 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("workers>n: index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForRangeAndWorkerEdgeCases(t *testing.T) {
	called := false
	ForRange(0, 4, func(lo, hi int) { called = true })
	ForWorker(0, 4, func(w, lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n = 0")
	}
	// workers > n: at most n non-empty blocks, each of width 1.
	var count atomic.Int64
	ForWorker(3, 50, func(w, lo, hi int) {
		if hi-lo != 1 {
			t.Errorf("workers>n: block [%d,%d) not width 1", lo, hi)
		}
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("workers>n: %d blocks, want 3", count.Load())
	}
}

func TestWeightedBounds(t *testing.T) {
	// Uniform weights: bounds are (near-)even splits.
	prefix := make([]int64, 101)
	for i := range prefix {
		prefix[i] = int64(i)
	}
	b := WeightedBounds(prefix, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 100 {
		t.Fatalf("uniform bounds = %v", b)
	}
	for c := 0; c < 4; c++ {
		if w := b[c+1] - b[c]; w < 20 || w > 30 {
			t.Errorf("uniform chunk %d width %d", c, w)
		}
	}
	// Skewed weights: one heavy element gets its own chunk; total weight per
	// chunk stays within 2x the ideal share for the rest.
	skew := []int64{0, 1, 2, 3, 1003, 1004, 1005, 1006, 1007} // element 3 weighs 1000
	b = WeightedBounds(skew, 4)
	if b[0] != 0 || b[len(b)-1] != 8 {
		t.Fatalf("skewed bounds = %v", b)
	}
	for c := 0; c < len(b)-1; c++ {
		if b[c] > b[c+1] {
			t.Fatalf("non-monotone bounds %v", b)
		}
	}
	// Degenerate shapes.
	if b := WeightedBounds([]int64{0}, 4); len(b) != 1 || b[0] != 0 {
		t.Errorf("empty bounds = %v", b)
	}
	if b := WeightedBounds([]int64{0, 0, 0}, 8); b[0] != 0 || b[len(b)-1] != 2 {
		t.Errorf("zero-weight bounds = %v", b)
	}
	// More chunks than elements: clamped to n.
	if b := WeightedBounds([]int64{0, 5, 9}, 100); len(b) != 3 || b[2] != 2 {
		t.Errorf("overchunked bounds = %v", b)
	}
}

// chunkWeights returns the weight of every chunk described by bounds.
func chunkWeights(prefix []int64, bounds []int) []int64 {
	out := make([]int64, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		out[c] = prefix[bounds[c+1]] - prefix[bounds[c]]
	}
	return out
}

// maxItemWeight returns the largest single item weight in the prefix array.
func maxItemWeight(prefix []int64) int64 {
	var m int64
	for i := 0; i+1 < len(prefix); i++ {
		if w := prefix[i+1] - prefix[i]; w > m {
			m = w
		}
	}
	return m
}

// checkBalance asserts the load-balance invariant of WeightedBounds: every
// chunk's weight is at most the ideal share (rounded up) plus one maximal
// item — the best any contiguous splitter can guarantee.
func checkBalance(t *testing.T, name string, prefix []int64, nchunks int) {
	t.Helper()
	b := WeightedBounds(prefix, nchunks)
	n := len(prefix) - 1
	if b[0] != 0 || b[len(b)-1] != n {
		t.Fatalf("%s: bounds %v do not span [0,%d]", name, b, n)
	}
	for c := 0; c+1 < len(b); c++ {
		if b[c] > b[c+1] {
			t.Fatalf("%s: non-monotone bounds %v", name, b)
		}
	}
	total := prefix[n]
	k := int64(len(b) - 1)
	ideal := (total + k - 1) / k // ⌈total/nchunks⌉
	limit := ideal + maxItemWeight(prefix)
	for c, w := range chunkWeights(prefix, b) {
		if w > limit {
			t.Errorf("%s: chunk %d weight %d > ideal %d + max item %d",
				name, c, w, ideal, maxItemWeight(prefix))
		}
	}
}

// TestWeightedBoundsBalance is the regression test for the truncating-
// division scheduler bug: computing targets as total/nchunks*c loses up to
// nchunks-1 weight units per chunk share, which piled onto the last chunk
// (weight 55 vs the ideal 15.6 at 1000 unit items / 64 chunks). Every shape
// here must satisfy max chunk weight <= ceil(total/nchunks) + max item.
func TestWeightedBoundsBalance(t *testing.T) {
	// The reproduced imbalance case: 1000 unit-weight items, 64 chunks.
	uniform := make([]int64, 1001)
	for i := range uniform {
		uniform[i] = int64(i)
	}
	checkBalance(t, "uniform-1000x64", uniform, 64)
	b := WeightedBounds(uniform, 64)
	var worst int64
	for _, w := range chunkWeights(uniform, b) {
		if w > worst {
			worst = w
		}
	}
	// ceil(1000/64) = 16 (+1 item); the truncating bug produced 55 here.
	if worst > 17 {
		t.Errorf("uniform 1000x64: max chunk weight %d, want <= 17", worst)
	}

	// Zipf-skewed weights: item i weighs ~ 1/(i+1) scaled up.
	zipf := make([]int64, 2001)
	for i := 1; i < len(zipf); i++ {
		zipf[i] = zipf[i-1] + int64(100000/(i))
	}
	checkBalance(t, "zipf", zipf, 64)
	checkBalance(t, "zipf", zipf, 7)

	// Zero-weight runs interleaved with weighted items.
	mixed := make([]int64, 501)
	for i := 1; i < len(mixed); i++ {
		w := int64(0)
		if i%5 == 0 {
			w = int64(i)
		}
		mixed[i] = mixed[i-1] + w
	}
	checkBalance(t, "sparse-weights", mixed, 32)

	// total < nchunks: targets round to tiny values; invariant must hold.
	small := []int64{0, 1, 1, 2, 2, 3, 3, 3, 4, 5}
	checkBalance(t, "total<nchunks", small, 8)
	checkBalance(t, "total<nchunks", small, 64)
}

// TestWeightedBoundsZeroTotal pins the degenerate all-zero-weight fix: the
// bounds must fall back to an even item split instead of collapsing every
// interior bound to 0 (which handed one chunk all n items).
func TestWeightedBoundsZeroTotal(t *testing.T) {
	prefix := make([]int64, 129) // 128 items, all weight 0
	b := WeightedBounds(prefix, 8)
	if len(b) != 9 || b[0] != 0 || b[8] != 128 {
		t.Fatalf("zero-total bounds = %v", b)
	}
	for c := 0; c < 8; c++ {
		if w := b[c+1] - b[c]; w != 16 {
			t.Errorf("zero-total chunk %d spans %d items, want 16", c, w)
		}
	}
}

// TestWeightedBoundsHugeTotal exercises the 128-bit overflow guard: totals
// beyond 2^40 must still produce exact floor(c*total/nchunks) targets.
func TestWeightedBoundsHugeTotal(t *testing.T) {
	const n = 64
	per := int64(1) << 45 // total = 2^51, c*total would overflow naive i64 at c*total ~ 2^57 < 2^63, so also check near the edge below
	prefix := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		prefix[i] = prefix[i-1] + per
	}
	checkBalance(t, "huge-uniform", prefix, 16)
	// Near-overflow: total close to 2^62, 64 chunks — naive c*total overflows.
	prefix2 := make([]int64, n+1)
	per2 := (int64(1) << 62) / n
	for i := 1; i <= n; i++ {
		prefix2[i] = prefix2[i-1] + per2
	}
	checkBalance(t, "near-overflow", prefix2, 64)
	b := WeightedBounds(prefix2, 64)
	for c := 0; c < 64; c++ {
		if b[c] != c {
			t.Fatalf("near-overflow bounds %v: want the identity split", b)
		}
	}
}

func TestForChunksCoversAndSkipsEmpty(t *testing.T) {
	prefix := []int64{0, 10, 10, 10, 40, 45, 50, 100, 100, 120}
	n := len(prefix) - 1
	for _, workers := range []int{1, 3, 16} {
		bounds := WeightedBounds(prefix, workers*8)
		covered := make([]atomic.Int32, n)
		ForChunks(bounds, workers, func(w, lo, hi int) {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d) dispatched", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, covered[i].Load())
			}
		}
	}
	// Empty bounds: no calls, no hang.
	ForChunks([]int{0}, 4, func(w, lo, hi int) { t.Error("called on empty bounds") })
	ForChunks(nil, 4, func(w, lo, hi int) { t.Error("called on nil bounds") })
}

func TestForChunksSingleWorkerAllocFree(t *testing.T) {
	prefix := make([]int64, 1001)
	for i := range prefix {
		prefix[i] = int64(i * 3)
	}
	bounds := WeightedBounds(prefix, 8)
	var sink atomic.Int64
	body := func(w, lo, hi int) { sink.Store(int64(hi)) }
	if n := testing.AllocsPerRun(50, func() {
		ForChunks(bounds, 1, body)
	}); n != 0 {
		t.Errorf("single-worker ForChunks allocates %v/op", n)
	}
}

func TestStripesFor(t *testing.T) {
	for _, tc := range []struct{ rows, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {8192, 8192}, {100000, 8192},
	} {
		if got := StripesFor(tc.rows).Len(); got != tc.want {
			t.Errorf("StripesFor(%d) = %d stripes, want %d", tc.rows, got, tc.want)
		}
	}
}

// Property: the sum computed by a parallel reduction equals the sequential
// sum for any n and worker count.
func TestParallelSumProperty(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 2000)
		var total atomic.Int64
		For(nn, int(w%32), func(i int) { total.Add(int64(i)) })
		return total.Load() == int64(nn)*int64(nn-1)/2 || nn == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
