package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{0, 1, 3, 16, 2000} {
			var hits sync.Map
			var count atomic.Int64
			For(n, w, func(i int) {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("n=%d w=%d: index %d visited twice", n, w, i)
				}
				count.Add(1)
			})
			if int(count.Load()) != n {
				t.Errorf("n=%d w=%d: visited %d indices", n, w, count.Load())
			}
		}
	}
}

func TestForRangeBlocksPartition(t *testing.T) {
	n := 103
	covered := make([]atomic.Int32, n)
	ForRange(n, 7, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ForWorker(100, 5, func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if seen[w] {
			t.Errorf("worker id %d reused", w)
		}
		seen[w] = true
	})
	if len(seen) != 5 {
		t.Fatalf("saw %d worker ids, want 5", len(seen))
	}
}

func TestForBlocksCoversAll(t *testing.T) {
	n := 250
	covered := make([]atomic.Int32, n)
	ForBlocks(n, 16, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForBlocksZeroAndNegative(t *testing.T) {
	called := false
	ForBlocks(0, 8, 4, func(lo, hi int) { called = true })
	ForBlocks(-3, 8, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
	// blockSize <= 0 must not hang or panic.
	var count atomic.Int64
	ForBlocks(5, 0, 2, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 5 {
		t.Fatalf("covered %d of 5", count.Load())
	}
}

func TestStripesProtect(t *testing.T) {
	s := NewStripes(64)
	counters := make([]int, 1000) // unsynchronized ints; stripes must serialize
	For(10000, 8, func(i int) {
		row := int32(i % 1000)
		s.Lock(row)
		counters[row]++
		s.Unlock(row)
	})
	for i, c := range counters {
		if c != 10 {
			t.Fatalf("counter %d = %d, want 10", i, c)
		}
	}
}

func TestStripesPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 63, 64, 65} {
		s := NewStripes(n)
		if s.Len() < n || s.Len()&(s.Len()-1) != 0 {
			t.Errorf("NewStripes(%d) has %d stripes", n, s.Len())
		}
	}
}

// Property: the sum computed by a parallel reduction equals the sequential
// sum for any n and worker count.
func TestParallelSumProperty(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 2000)
		var total atomic.Int64
		For(nn, int(w%32), func(i int) { total.Add(int64(i)) })
		return total.Load() == int64(nn)*int64(nn-1)/2 || nn == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
