package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{0, 1, 3, 16, 2000} {
			var hits sync.Map
			var count atomic.Int64
			For(n, w, func(i int) {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("n=%d w=%d: index %d visited twice", n, w, i)
				}
				count.Add(1)
			})
			if int(count.Load()) != n {
				t.Errorf("n=%d w=%d: visited %d indices", n, w, count.Load())
			}
		}
	}
}

func TestForRangeBlocksPartition(t *testing.T) {
	n := 103
	covered := make([]atomic.Int32, n)
	ForRange(n, 7, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ForWorker(100, 5, func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if seen[w] {
			t.Errorf("worker id %d reused", w)
		}
		seen[w] = true
	})
	if len(seen) != 5 {
		t.Fatalf("saw %d worker ids, want 5", len(seen))
	}
}

func TestForBlocksCoversAll(t *testing.T) {
	n := 250
	covered := make([]atomic.Int32, n)
	ForBlocks(n, 16, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForBlocksZeroAndNegative(t *testing.T) {
	called := false
	ForBlocks(0, 8, 4, func(lo, hi int) { called = true })
	ForBlocks(-3, 8, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
	// blockSize <= 0 must not hang or panic.
	var count atomic.Int64
	ForBlocks(5, 0, 2, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 5 {
		t.Fatalf("covered %d of 5", count.Load())
	}
}

func TestStripesProtect(t *testing.T) {
	s := NewStripes(64)
	counters := make([]int, 1000) // unsynchronized ints; stripes must serialize
	For(10000, 8, func(i int) {
		row := int32(i % 1000)
		s.Lock(row)
		counters[row]++
		s.Unlock(row)
	})
	for i, c := range counters {
		if c != 10 {
			t.Fatalf("counter %d = %d, want 10", i, c)
		}
	}
}

func TestStripesPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 63, 64, 65} {
		s := NewStripes(n)
		if s.Len() < n || s.Len()&(s.Len()-1) != 0 {
			t.Errorf("NewStripes(%d) has %d stripes", n, s.Len())
		}
	}
}

// Edge cases the engines rely on: n smaller than one block, n = 0, and more
// workers than elements must all cover [0, n) exactly once with no empty
// callbacks hanging around.
func TestForBlocksEdgeCases(t *testing.T) {
	// n < blockSize: a single block spanning everything.
	var blocks [][2]int
	var mu sync.Mutex
	ForBlocks(10, 256, 4, func(lo, hi int) {
		mu.Lock()
		blocks = append(blocks, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(blocks) != 1 || blocks[0] != [2]int{0, 10} {
		t.Fatalf("n<blockSize: blocks = %v, want [[0 10]]", blocks)
	}
	// workers > n: every index still visited exactly once.
	covered := make([]atomic.Int32, 3)
	ForBlocks(3, 1, 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("workers>n: index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestForRangeAndWorkerEdgeCases(t *testing.T) {
	called := false
	ForRange(0, 4, func(lo, hi int) { called = true })
	ForWorker(0, 4, func(w, lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n = 0")
	}
	// workers > n: at most n non-empty blocks, each of width 1.
	var count atomic.Int64
	ForWorker(3, 50, func(w, lo, hi int) {
		if hi-lo != 1 {
			t.Errorf("workers>n: block [%d,%d) not width 1", lo, hi)
		}
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("workers>n: %d blocks, want 3", count.Load())
	}
}

func TestWeightedBounds(t *testing.T) {
	// Uniform weights: bounds are (near-)even splits.
	prefix := make([]int64, 101)
	for i := range prefix {
		prefix[i] = int64(i)
	}
	b := WeightedBounds(prefix, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 100 {
		t.Fatalf("uniform bounds = %v", b)
	}
	for c := 0; c < 4; c++ {
		if w := b[c+1] - b[c]; w < 20 || w > 30 {
			t.Errorf("uniform chunk %d width %d", c, w)
		}
	}
	// Skewed weights: one heavy element gets its own chunk; total weight per
	// chunk stays within 2x the ideal share for the rest.
	skew := []int64{0, 1, 2, 3, 1003, 1004, 1005, 1006, 1007} // element 3 weighs 1000
	b = WeightedBounds(skew, 4)
	if b[0] != 0 || b[len(b)-1] != 8 {
		t.Fatalf("skewed bounds = %v", b)
	}
	for c := 0; c < len(b)-1; c++ {
		if b[c] > b[c+1] {
			t.Fatalf("non-monotone bounds %v", b)
		}
	}
	// Degenerate shapes.
	if b := WeightedBounds([]int64{0}, 4); len(b) != 1 || b[0] != 0 {
		t.Errorf("empty bounds = %v", b)
	}
	if b := WeightedBounds([]int64{0, 0, 0}, 8); b[0] != 0 || b[len(b)-1] != 2 {
		t.Errorf("zero-weight bounds = %v", b)
	}
	// More chunks than elements: clamped to n.
	if b := WeightedBounds([]int64{0, 5, 9}, 100); len(b) != 3 || b[2] != 2 {
		t.Errorf("overchunked bounds = %v", b)
	}
}

func TestForChunksCoversAndSkipsEmpty(t *testing.T) {
	prefix := []int64{0, 10, 10, 10, 40, 45, 50, 100, 100, 120}
	n := len(prefix) - 1
	for _, workers := range []int{1, 3, 16} {
		bounds := WeightedBounds(prefix, workers*8)
		covered := make([]atomic.Int32, n)
		ForChunks(bounds, workers, func(w, lo, hi int) {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d) dispatched", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, covered[i].Load())
			}
		}
	}
	// Empty bounds: no calls, no hang.
	ForChunks([]int{0}, 4, func(w, lo, hi int) { t.Error("called on empty bounds") })
	ForChunks(nil, 4, func(w, lo, hi int) { t.Error("called on nil bounds") })
}

func TestForChunksSingleWorkerAllocFree(t *testing.T) {
	prefix := make([]int64, 1001)
	for i := range prefix {
		prefix[i] = int64(i * 3)
	}
	bounds := WeightedBounds(prefix, 8)
	var sink atomic.Int64
	body := func(w, lo, hi int) { sink.Store(int64(hi)) }
	if n := testing.AllocsPerRun(50, func() {
		ForChunks(bounds, 1, body)
	}); n != 0 {
		t.Errorf("single-worker ForChunks allocates %v/op", n)
	}
}

func TestStripesFor(t *testing.T) {
	for _, tc := range []struct{ rows, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {8192, 8192}, {100000, 8192},
	} {
		if got := StripesFor(tc.rows).Len(); got != tc.want {
			t.Errorf("StripesFor(%d) = %d stripes, want %d", tc.rows, got, tc.want)
		}
	}
}

// Property: the sum computed by a parallel reduction equals the sequential
// sum for any n and worker count.
func TestParallelSumProperty(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 2000)
		var total atomic.Int64
		For(nn, int(w%32), func(i int) { total.Add(int64(i)) })
		return total.Load() == int64(nn)*int64(nn-1)/2 || nn == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
