// Package par provides small shared-memory parallelism helpers used by every
// numeric kernel in the repository: a blocked parallel-for, a parallel-range
// variant that hands each worker one contiguous chunk, and a striped lock set
// for scatter-style accumulation.
//
// The helpers intentionally mirror the OpenMP loop constructs the original
// system was written with: static chunking, no work stealing, and a worker
// count that defaults to GOMAXPROCS but can be overridden per call so that
// thread-scaling experiments can pin the parallel width.
package par

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"adatm/internal/obs"
)

// MaxWorkers returns the default parallel width, GOMAXPROCS(0).
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a requested worker count against the amount of
// available work. workers <= 0 selects the default width.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs body(i) for every i in [0, n) using the given number of workers.
// Iterations are distributed in contiguous blocks (static schedule). body
// must be safe to call concurrently for distinct i.
func For(n, workers int, body func(i int)) {
	ForRange(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange splits [0, n) into one contiguous [lo, hi) block per worker and
// runs body on each block concurrently. It is the building block for kernels
// that want per-worker private state allocated once per block.
func ForRange(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	// Distribute the remainder one extra element to the first n%workers
	// blocks so block sizes differ by at most one.
	q, r := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForWorker is like ForRange but also passes the worker id, for kernels that
// index into preallocated per-worker scratch buffers.
func ForWorker(n, workers int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	q, r := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForBlocks runs body over [0,n) in blocks of the given size using a dynamic
// schedule: workers pull the next block off a shared channel. Useful when
// per-element cost is highly skewed (e.g. fibers with wildly different
// lengths).
func ForBlocks(n, blockSize, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	nblocks := (n + blockSize - 1) / blockSize
	workers = clampWorkers(workers, nblocks)
	if workers == 1 {
		body(0, n)
		return
	}
	blocks := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for b := range blocks {
				lo := b * blockSize
				hi := lo + blockSize
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	for b := 0; b < nblocks; b++ {
		blocks <- b
	}
	close(blocks)
	wg.Wait()
}

// chunkTracer, when set, receives one span per executed ForChunks chunk on
// track worker+1, making scheduler imbalance directly visible in a trace
// viewer: an idle worker shows as a gap in its track. A package-level hook
// (rather than a per-call parameter) keeps every existing kernel call site
// untouched and the disabled cost at one atomic pointer load per chunk loop.
var chunkTracer atomic.Pointer[obs.Tracer]

// chunkSpanName labels the per-chunk spans in exported traces.
const chunkSpanName = "par.chunk"

// SetChunkTracer installs (or, with nil, removes) the tracer that records
// per-chunk execution spans from ForChunks. Safe to call concurrently with
// running kernels.
func SetChunkTracer(t *obs.Tracer) { chunkTracer.Store(t) }

// ImbalanceRatio measures the load imbalance of a weighted chunking: the
// heaviest chunk's weight divided by the ideal per-chunk share total/nchunks.
// 1.0 is a perfect split; the ratio is also the parallel slowdown an
// otherwise-perfect schedule suffers from the heaviest chunk. Returns 1 for
// degenerate inputs (no items, zero total weight).
func ImbalanceRatio(prefix []int64, bounds []int) float64 {
	nchunks := len(bounds) - 1
	if nchunks <= 0 || len(prefix) == 0 {
		return 1
	}
	total := prefix[len(prefix)-1]
	if total <= 0 {
		return 1
	}
	var heaviest int64
	for c := 0; c < nchunks; c++ {
		w := prefix[bounds[c+1]] - prefix[bounds[c]]
		if w > heaviest {
			heaviest = w
		}
	}
	return float64(heaviest) * float64(nchunks) / float64(total)
}

// WeightedBounds splits the n items described by a prefix-sum array
// (len n+1, prefix[i] = total weight of items [0, i)) into at most nchunks
// contiguous ranges of roughly equal weight. The returned boundary array b
// has b[0] = 0 and b[len(b)-1] = n; chunk c spans [b[c], b[c+1]) and may be
// empty when a single item outweighs a whole chunk share.
//
// This is the load-balancing primitive of the kernel layer: fiber- and
// reduction-grouped kernels have wildly skewed per-element cost, so the
// schedulers chunk by nonzero weight (typically workers × 8 chunks) instead
// of by element count.
func WeightedBounds(prefix []int64, nchunks int) []int {
	n := len(prefix) - 1
	if n <= 0 {
		return []int{0}
	}
	if nchunks > n {
		nchunks = n
	}
	if nchunks < 1 {
		nchunks = 1
	}
	total := prefix[n]
	bounds := make([]int, nchunks+1)
	bounds[nchunks] = n
	if total <= 0 {
		// Degenerate all-zero weights: weight targets cannot separate the
		// items (every interior bound would collapse to 0 and the last chunk
		// would carry all n items), so fall back to an even item split.
		for c := 1; c < nchunks; c++ {
			bounds[c] = c * n / nchunks
		}
		return bounds
	}
	for c := 1; c < nchunks; c++ {
		target := chunkTarget(total, c, nchunks)
		// First boundary position whose prefix weight reaches the target,
		// clamped to keep the boundaries monotone.
		i := sort.Search(n, func(i int) bool { return prefix[i] >= target })
		if i < bounds[c-1] {
			i = bounds[c-1]
		}
		bounds[c] = i
	}
	return bounds
}

// chunkTarget returns ⌊c·total/nchunks⌋ exactly. Scaling before dividing is
// what keeps consecutive targets ⌈total/nchunks⌉ apart at most — dividing
// first (total/nchunks·c) truncates the per-chunk share and piles the
// accumulated rounding loss onto the final chunk (up to nchunks-1 extra
// weight units per chunk share, a measured 3.5x imbalance at 1000 items /
// 64 chunks). Weights are nnz counts, so c·total can exceed int64 only for
// astronomically large tensors; past 2^40 the product is routed through a
// 128-bit multiply/divide instead of risking overflow.
func chunkTarget(total int64, c, nchunks int) int64 {
	if total <= 1<<40 {
		return int64(c) * total / int64(nchunks)
	}
	// hi < nchunks because c < nchunks and total < 2^63, so Div64 cannot
	// trap and the quotient fits in int64.
	hi, lo := bits.Mul64(uint64(c), uint64(total))
	q, _ := bits.Div64(hi, lo, uint64(nchunks))
	return int64(q)
}

// ForChunks runs body over precomputed chunk boundaries (the WeightedBounds
// format) with a dynamic schedule: workers pull the next chunk off a shared
// channel, and body receives the worker id so kernels can index into
// preallocated per-worker scratch (e.g. a kernel.Arena). Empty chunks are
// skipped. With one worker the chunks run inline on the calling goroutine,
// so the call performs no allocation — the property the steady-state
// MTTKRP regression tests pin down.
func ForChunks(bounds []int, workers int, body func(worker, lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 {
		return
	}
	workers = clampWorkers(workers, nchunks)
	tr := chunkTracer.Load()
	if workers == 1 {
		for c := 0; c < nchunks; c++ {
			if bounds[c] < bounds[c+1] {
				sp := tr.StartSpan(chunkSpanName, 1)
				body(0, bounds[c], bounds[c+1])
				sp.End()
			}
		}
		return
	}
	chunks := make(chan int, nchunks)
	for c := 0; c < nchunks; c++ {
		chunks <- c
	}
	close(chunks)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for c := range chunks {
				if bounds[c] < bounds[c+1] {
					sp := tr.StartSpan(chunkSpanName, int32(w)+1)
					body(w, bounds[c], bounds[c+1])
					sp.End()
				}
			}
		}(w)
	}
	wg.Wait()
}

// paddedMutex spaces adjacent stripes one cache line apart. A bare
// sync.Mutex is 8 bytes, so an unpadded []sync.Mutex packs 8 stripes per
// 64-byte line and every lock acquisition invalidates its seven neighbours
// on other cores — false sharing that BenchmarkStripesScatter measures as a
// multiple on contended scatters.
type paddedMutex struct {
	mu sync.Mutex
	_  [64 - 8]byte
}

// Stripes is a fixed pool of mutexes used to protect scatter updates into a
// large row-indexed array without one lock per row. Rows hash to stripes by
// low bits, so the stripe count must be a power of two.
type Stripes struct {
	locks []paddedMutex
	mask  uint32
}

// NewStripes creates a stripe set with at least n locks, rounded up to a
// power of two (minimum 1).
func NewStripes(n int) *Stripes {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Stripes{locks: make([]paddedMutex, size), mask: uint32(size - 1)}
}

// maxStripes caps StripesFor: past a few thousand stripes the collision
// probability is negligible and the mutex pool only wastes cache.
const maxStripes = 8192

// StripesFor sizes a stripe set for scatter updates into rows output rows:
// the next power of two at or above rows, capped at 8192 and never below 1.
// Sizing from the actual output height (instead of a fixed pool) keeps the
// collision rate flat as tensors grow while bounding the lock footprint.
func StripesFor(rows int) *Stripes {
	n := rows
	if n > maxStripes {
		n = maxStripes
	}
	return NewStripes(n)
}

// EnsureStripes returns a stripe set sized for scatter updates into rows
// output rows, reusing s when it is already big enough (or already at the
// stripe cap). This is the grow-on-demand step every scatter engine runs at
// kernel entry; it was previously copy-pasted per engine.
func EnsureStripes(s *Stripes, rows int) *Stripes {
	if s == nil || (s.Len() < rows && s.Len() < maxStripes) {
		return StripesFor(rows)
	}
	return s
}

// Lock acquires the stripe owning row i.
func (s *Stripes) Lock(i int32) { s.locks[uint32(i)&s.mask].mu.Lock() }

// Unlock releases the stripe owning row i.
func (s *Stripes) Unlock(i int32) { s.locks[uint32(i)&s.mask].mu.Unlock() }

// Len reports the number of stripes.
func (s *Stripes) Len() int { return len(s.locks) }
