// Package par provides small shared-memory parallelism helpers used by every
// numeric kernel in the repository: a blocked parallel-for, a parallel-range
// variant that hands each worker one contiguous chunk, and a striped lock set
// for scatter-style accumulation.
//
// The helpers intentionally mirror the OpenMP loop constructs the original
// system was written with: static chunking, no work stealing, and a worker
// count that defaults to GOMAXPROCS but can be overridden per call so that
// thread-scaling experiments can pin the parallel width.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the default parallel width, GOMAXPROCS(0).
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a requested worker count against the amount of
// available work. workers <= 0 selects the default width.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs body(i) for every i in [0, n) using the given number of workers.
// Iterations are distributed in contiguous blocks (static schedule). body
// must be safe to call concurrently for distinct i.
func For(n, workers int, body func(i int)) {
	ForRange(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange splits [0, n) into one contiguous [lo, hi) block per worker and
// runs body on each block concurrently. It is the building block for kernels
// that want per-worker private state allocated once per block.
func ForRange(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	// Distribute the remainder one extra element to the first n%workers
	// blocks so block sizes differ by at most one.
	q, r := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForWorker is like ForRange but also passes the worker id, for kernels that
// index into preallocated per-worker scratch buffers.
func ForWorker(n, workers int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	q, r := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForBlocks runs body over [0,n) in blocks of the given size using a dynamic
// schedule: workers pull the next block off a shared channel. Useful when
// per-element cost is highly skewed (e.g. fibers with wildly different
// lengths).
func ForBlocks(n, blockSize, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	nblocks := (n + blockSize - 1) / blockSize
	workers = clampWorkers(workers, nblocks)
	if workers == 1 {
		body(0, n)
		return
	}
	blocks := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for b := range blocks {
				lo := b * blockSize
				hi := lo + blockSize
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	for b := 0; b < nblocks; b++ {
		blocks <- b
	}
	close(blocks)
	wg.Wait()
}

// Stripes is a fixed pool of mutexes used to protect scatter updates into a
// large row-indexed array without one lock per row. Rows hash to stripes by
// low bits, so the stripe count must be a power of two.
type Stripes struct {
	locks []sync.Mutex
	mask  uint32
}

// NewStripes creates a stripe set with at least n locks, rounded up to a
// power of two (minimum 1).
func NewStripes(n int) *Stripes {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Stripes{locks: make([]sync.Mutex, size), mask: uint32(size - 1)}
}

// Lock acquires the stripe owning row i.
func (s *Stripes) Lock(i int32) { s.locks[uint32(i)&s.mask].Lock() }

// Unlock releases the stripe owning row i.
func (s *Stripes) Unlock(i int32) { s.locks[uint32(i)&s.mask].Unlock() }

// Len reports the number of stripes.
func (s *Stripes) Len() int { return len(s.locks) }
