package par

import (
	"runtime"
	"sync"
	"testing"
)

// TestEnsureStripes pins the grow-on-demand semantics shared by the scatter
// engines: nil allocates, a larger mode grows, a smaller or equal mode
// reuses, and sets at the cap never grow again.
func TestEnsureStripes(t *testing.T) {
	s := EnsureStripes(nil, 100)
	if s == nil || s.Len() != 128 {
		t.Fatalf("EnsureStripes(nil, 100).Len() = %v, want 128", s.Len())
	}
	if got := EnsureStripes(s, 64); got != s {
		t.Fatal("smaller mode reallocated the stripe set")
	}
	if got := EnsureStripes(s, 128); got != s {
		t.Fatal("equal mode reallocated the stripe set")
	}
	// The grow-on-larger-mode path: a 3-mode tensor whose first MTTKRP ran
	// on a short mode must re-size when a taller mode comes through.
	grown := EnsureStripes(s, 5000)
	if grown == s || grown.Len() != 8192 {
		t.Fatalf("larger mode: Len() = %d (reused=%v), want fresh 8192", grown.Len(), grown == s)
	}
	// At the cap, even much larger modes reuse.
	if got := EnsureStripes(grown, 1<<24); got != grown {
		t.Fatal("capped set reallocated for a huge mode")
	}
}

// unpaddedStripes is the pre-padding layout (8 sync.Mutex per cache line),
// kept here solely as the benchmark baseline for the false-sharing fix.
type unpaddedStripes struct {
	locks []sync.Mutex
	mask  uint32
}

func newUnpaddedStripes(n int) *unpaddedStripes {
	size := 1
	for size < n {
		size <<= 1
	}
	return &unpaddedStripes{locks: make([]sync.Mutex, size), mask: uint32(size - 1)}
}

func (s *unpaddedStripes) Lock(i int32)   { s.locks[uint32(i)&s.mask].Lock() }
func (s *unpaddedStripes) Unlock(i int32) { s.locks[uint32(i)&s.mask].Unlock() }

// scatterRows mimics a contended MTTKRP scatter: every worker walks the same
// row cycle, taking the row's stripe and updating R=16 output floats. With
// 64 rows on 64 stripes, distinct rows never share a lock — any remaining
// slowdown versus one worker is line bouncing, which is exactly what the
// padding removes.
const (
	scatterRows = 64
	scatterR    = 16
)

type lockSet interface {
	Lock(i int32)
	Unlock(i int32)
}

func benchScatter(b *testing.B, locks lockSet) {
	workers := runtime.GOMAXPROCS(0)
	out := make([]float64, scatterRows*scatterR)
	b.ResetTimer()
	ForWorker(b.N, workers, func(w, lo, hi int) {
		for it := lo; it < hi; it++ {
			row := int32((it + w*7) % scatterRows)
			locks.Lock(row)
			o := out[int(row)*scatterR : (int(row)+1)*scatterR]
			for j := range o {
				o[j] += 1
			}
			locks.Unlock(row)
		}
	})
}

// BenchmarkStripesScatter pins the padded-vs-unpadded delta under a
// contended scatter. Run with -cpu to sweep widths:
//
//	go test ./internal/par/ -run='^$' -bench=StripesScatter -cpu=1,4,8
func BenchmarkStripesScatter(b *testing.B) {
	b.Run("padded", func(b *testing.B) {
		benchScatter(b, NewStripes(scatterRows))
	})
	b.Run("unpadded", func(b *testing.B) {
		benchScatter(b, newUnpaddedStripes(scatterRows))
	})
}
