package model

import (
	"strings"
	"testing"

	"adatm/internal/tensor"
)

// Plan.String must render every candidate with the chosen marker, and
// announce the budget fallback when nothing fit.
func TestPlanReport(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 800, 0.6, 51)

	plan := Select(x, Options{Rank: 8})
	s := plan.String()
	if !strings.Contains(s, "plan: order=4 rank=8 budget=-") {
		t.Errorf("header wrong:\n%s", s)
	}
	for _, c := range plan.Candidates {
		if !strings.Contains(s, c.Name) {
			t.Errorf("candidate %q missing:\n%s", c.Name, s)
		}
	}
	if strings.Count(s, "<= chosen") != 1 {
		t.Errorf("chosen marker count != 1:\n%s", s)
	}
	if strings.Contains(s, "budget fallback") {
		t.Errorf("unbounded plan claims a fallback:\n%s", s)
	}
	if plan.Reason() != "op-optimal" {
		t.Errorf("Reason = %q, want op-optimal", plan.Reason())
	}

	// A 1-byte budget fits nothing: the fallback must be chosen and reported.
	forced := Select(x, Options{Rank: 8, Budget: 1})
	if !forced.BudgetFallback {
		t.Fatal("1-byte budget did not force a fallback")
	}
	fs := forced.String()
	if !strings.Contains(fs, "budget fallback: no candidate fits 1B") {
		t.Errorf("fallback notice missing:\n%s", fs)
	}
	if strings.Count(fs, "<= chosen") != 1 {
		t.Errorf("fallback plan lost its chosen marker:\n%s", fs)
	}
	if forced.Reason() != "budget-fallback" {
		t.Errorf("Reason = %q, want budget-fallback", forced.Reason())
	}
	// The forced choice is the smallest-footprint candidate.
	best := forced.Candidates[0]
	for _, c := range forced.Candidates {
		if c.Pred.IndexBytes+c.Pred.PeakValueBytes < best.Pred.IndexBytes+best.Pred.PeakValueBytes {
			best = c
		}
	}
	if forced.Chosen.Name != best.Name {
		t.Errorf("fallback chose %q, smallest footprint is %q", forced.Chosen.Name, best.Name)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "-"},
		{-5, "-"},
		{1, "1B"},
		{1023, "1023B"},
		{1 << 10, "1.0KiB"},
		{1<<20 - 1, "1024.0KiB"},
		{1 << 20, "1.0MiB"},
		{5 << 20, "5.0MiB"},
		{1<<30 - 1, "1024.0MiB"},
		{1 << 30, "1.00GiB"},
		{3 << 30, "3.00GiB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.in); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
