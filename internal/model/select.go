package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"adatm/internal/accum"
	"adatm/internal/memo"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Candidate is one strategy considered by the selector, with its
// predictions and feasibility under the memory budget.
type Candidate struct {
	Name     string
	Strategy *memo.Strategy
	Pred     Prediction
	// PredTime is the roofline time-model forecast; zero unless selection
	// ranked by predicted time (SelectByTime).
	PredTime time.Duration
	Feasible bool
}

// Plan is the selector's full output: every candidate it scored (sorted by
// predicted ops) and the chosen one. Beyond the choice itself, the plan
// records everything the audit layer needs to reconcile the decision against
// measurements later: the tensor shape, the estimator's distinct-tuple table
// (the model's inputs), and why the chosen candidate won.
type Plan struct {
	Order      int
	Rank       int
	Budget     int64 // bytes; <= 0 means unbounded
	Dims       []int // mode dimensions (selector's mode order)
	NNZ        int64
	Exact      bool // distinct counts were exact, not sketched
	ByTime     bool // ranked by the roofline time model, not op counts
	// BudgetFallback reports that no candidate fit the budget and the
	// smallest-footprint candidate was chosen instead of the op-optimal one.
	BudgetFallback bool
	// Ranges is the estimator's distinct-tuple table (all contiguous mode
	// ranges) — the raw inputs the predictions were computed from.
	Ranges     []RangeCount
	Candidates []Candidate
	Chosen     Candidate
	// Workers is the parallel width the accumulation table was computed
	// for (from Options.Workers, defaulting to GOMAXPROCS).
	Workers int
	// Accum is the per-target-mode output-accumulation decision: privatized
	// per-worker copies versus in-place scatter, with the model's evidence.
	Accum []AccumChoice
}

// Options configures Select.
type Options struct {
	Rank int
	// Budget caps predicted auxiliary memory (index + peak value bytes);
	// <= 0 disables the cap.
	Budget int64
	// SketchK is the bottom-k sketch size (<= 0 → 1024). Ignored when
	// Exact is set.
	SketchK int
	// Exact uses exact distinct counting instead of sketching (slower; for
	// validation).
	Exact bool
	// Workers is the parallel width the kernels will run with; used by the
	// accumulation model (<= 0 → GOMAXPROCS).
	Workers int
	// Accum forces one accumulation backend for every mode; accum.Auto
	// (the zero value) lets the model decide per mode.
	Accum accum.Strategy
}

// Select runs the model-driven selection for x: estimate the projection
// sizes, enumerate the candidate strategy family (flat, every two-group
// split, balanced binary, and the DP-optimal binary tree), score each with
// the cost model, and choose the cheapest feasible candidate.
func Select(x *tensor.COO, opt Options) *Plan {
	var est *Estimator
	if opt.Exact {
		est = NewExactEstimator(x)
	} else {
		est = NewEstimator(x, opt.SketchK)
	}
	return SelectWithEstimator(est, opt)
}

// SelectWithEstimator is Select with a prebuilt estimator (so callers can
// reuse one estimator across ranks and budgets).
func SelectWithEstimator(est *Estimator, opt Options) *Plan {
	n := est.Order()
	rank := opt.Rank
	if rank <= 0 {
		rank = 16
	}
	plan := &Plan{
		Order: n, Rank: rank, Budget: opt.Budget,
		Dims: est.Dims(), NNZ: est.NNZ(), Exact: est.Exact(), Ranges: est.Ranges(),
	}

	add := func(name string, s *memo.Strategy) {
		pred := Predict(est, s, rank)
		feasible := opt.Budget <= 0 || pred.IndexBytes+pred.PeakValueBytes <= opt.Budget
		plan.Candidates = append(plan.Candidates, Candidate{Name: name, Strategy: s, Pred: pred, Feasible: feasible})
	}

	add("flat", memo.Flat(n))
	for s := 1; s < n; s++ {
		add(fmt.Sprintf("2group@%d", s), memo.TwoGroup(n, s))
	}
	if n >= 3 {
		add("balanced", memo.Balanced(n))
	}
	if n >= 3 {
		if dp := dpBinary(est, rank); dp != nil {
			add("dp-binary", dp)
		}
	}

	// Deduplicate structurally identical candidates (e.g. balanced ==
	// dp-binary, or 2group == balanced at n=3), keeping the first name.
	plan.Candidates = dedupCandidates(plan.Candidates)

	sort.SliceStable(plan.Candidates, func(a, b int) bool {
		return plan.Candidates[a].Pred.Ops < plan.Candidates[b].Pred.Ops
	})
	chosen := -1
	for i, c := range plan.Candidates {
		if c.Feasible {
			chosen = i
			break
		}
	}
	if chosen < 0 {
		// Nothing fits the budget: fall back to the candidate with the
		// smallest footprint (flat is typically the floor).
		plan.BudgetFallback = true
		best := 0
		for i, c := range plan.Candidates {
			if c.Pred.IndexBytes+c.Pred.PeakValueBytes <
				plan.Candidates[best].Pred.IndexBytes+plan.Candidates[best].Pred.PeakValueBytes {
				best = i
			}
		}
		chosen = best
	}
	plan.Chosen = plan.Candidates[chosen]
	plan.Workers = opt.Workers
	if plan.Workers <= 0 {
		plan.Workers = par.MaxWorkers()
	}
	fillAccum(plan, plan.Workers, accum.DefaultCosts)
	applyAccumOverride(plan, opt.Accum)
	return plan
}

// applyAccumOverride pins every mode's accumulation strategy to a forced
// backend, keeping the model's predictions as evidence in the plan.
func applyAccumOverride(p *Plan, s accum.Strategy) {
	if s == accum.Auto {
		return
	}
	for i := range p.Accum {
		p.Accum[i].Strategy = s
	}
}

func dedupCandidates(cs []Candidate) []Candidate {
	out := cs[:0]
	for _, c := range cs {
		dup := false
		for _, kept := range out {
			if kept.Strategy.Equal(c.Strategy) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// dpBinary finds the binary strategy minimizing predicted ops by dynamic
// programming over contiguous mode ranges. The cost of materializing the
// two children of a node covering [i, j) is elems(i,j)·(span+2)·R
// regardless of the split, so the DP chooses splits to minimize the
// descendants' costs.
func dpBinary(est *Estimator, rank int) *memo.Strategy {
	n := est.Order()
	cost := make([][]int64, n+1)
	split := make([][]int, n+1)
	for i := range cost {
		cost[i] = make([]int64, n+1)
		split[i] = make([]int, n+1)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length <= n; i++ {
			j := i + length
			own := est.Distinct(i, j) * int64(length+2) * int64(rank)
			best := int64(math.MaxInt64)
			bestS := -1
			for s := i + 1; s < j; s++ {
				c := cost[i][s] + cost[s][j]
				if c < best {
					best = c
					bestS = s
				}
			}
			cost[i][j] = own + best
			split[i][j] = bestS
		}
	}
	if n < 2 {
		return nil
	}
	return memo.BinaryFromSplits(n, func(lo, hi int) int { return split[lo][hi] })
}

// Reason names why the chosen candidate won, in the vocabulary the audit
// ledger records: "op-optimal" (cheapest feasible by predicted ops),
// "time-optimal" (cheapest feasible by the roofline time model), or
// "budget-fallback" (nothing fit; smallest footprint chosen).
func (p *Plan) Reason() string {
	switch {
	case p.BudgetFallback:
		return "budget-fallback"
	case p.ByTime:
		return "time-optimal"
	default:
		return "op-optimal"
	}
}

// String renders the plan as a small report table.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: order=%d rank=%d budget=%s\n", p.Order, p.Rank, fmtBytes(p.Budget))
	fmt.Fprintf(&b, "%-12s %-28s %14s %12s %12s %s\n", "candidate", "tree", "pred ops", "index", "peak vals", "feasible")
	for _, c := range p.Candidates {
		mark := ""
		if c.Strategy.Equal(p.Chosen.Strategy) && c.Name == p.Chosen.Name {
			mark = "  <= chosen"
		}
		fmt.Fprintf(&b, "%-12s %-28s %14d %12s %12s %-5v%s\n",
			c.Name, c.Strategy, c.Pred.Ops, fmtBytes(c.Pred.IndexBytes), fmtBytes(c.Pred.PeakValueBytes), c.Feasible, mark)
	}
	if p.BudgetFallback {
		fmt.Fprintf(&b, "budget fallback: no candidate fits %s; chose the smallest footprint\n", fmtBytes(p.Budget))
	}
	if len(p.Accum) > 0 {
		fmt.Fprintf(&b, "accum (workers=%d):\n", p.Workers)
		fmt.Fprintf(&b, "  %-6s %10s %-10s %12s %12s %12s %s\n",
			"mode", "rows", "strategy", "scatter", "privatize", "footprint", "feasible")
		for _, a := range p.Accum {
			fmt.Fprintf(&b, "  %-6d %10d %-10s %12s %12s %12s %v\n",
				a.Mode, a.Rows, a.Strategy,
				time.Duration(a.ScatterNS), time.Duration(a.PrivatizeNS),
				fmtBytes(a.FootprintBytes), a.Feasible)
		}
	}
	return b.String()
}

func fmtBytes(b int64) string {
	switch {
	case b <= 0:
		return "-"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}
