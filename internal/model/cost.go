package model

import (
	"adatm/internal/memo"
)

// Prediction is the model's forecast for one strategy at a given rank.
type Prediction struct {
	// Ops is the predicted Hadamard op units (scalar multiply–adds on
	// length-R rows) of one full CP-ALS iteration: every non-root node is
	// materialized exactly once per iteration at a cost of
	// parentElems · (|δ|+1) · R.
	Ops int64
	// IndexBytes is the predicted symbolic storage: per non-root node, its
	// index arrays (4 bytes × span × elems), the reduction element array
	// (4 bytes × parentElems) and the reduction pointer array (8 bytes ×
	// (elems+1)).
	IndexBytes int64
	// PeakValueBytes is the predicted maximum simultaneously live
	// semi-sparse value storage: the union of the value matrices on the
	// paths to two consecutive leaves (the live set while the ALS sweep
	// advances from one mode to the next), maximized over the sweep. Leaf
	// nodes are excluded — the engine fuses their contraction with the
	// output scatter and never materializes them.
	PeakValueBytes int64
}

// Predict evaluates the cost model for a strategy at the given rank, using
// distinct-tuple counts from est.
func Predict(est *Estimator, s *memo.Strategy, rank int) Prediction {
	n := est.Order()
	var p Prediction
	elems := func(node *memo.Strategy) int64 { return est.Distinct(node.Lo, node.Hi) }

	// Walk the tree accumulating ops and index bytes, and remember each
	// node's predicted element count for the peak computation.
	type liveNode struct {
		lo, hi int
		bytes  int64
	}
	var lives []liveNode
	var walk func(node *memo.Strategy, parentElems int64)
	walk = func(node *memo.Strategy, parentElems int64) {
		for _, c := range node.Children {
			ce := elems(c)
			delta := int64(node.Span() - c.Span())
			p.Ops += parentElems * (delta + 1) * int64(rank)
			p.IndexBytes += ce*int64(c.Span())*4 + parentElems*4 + (ce+1)*8
			if !c.IsLeaf() {
				lives = append(lives, liveNode{c.Lo, c.Hi, ce * int64(rank) * 8})
			}
			walk(c, ce)
		}
	}
	walk(s, elems(s))

	// Peak live value bytes: while computing mode m's MTTKRP, the ancestors
	// of leaf m are materialized and the ancestors of the previously swept
	// leaf (m-1, cyclically) may still be live.
	pathBytes := func(prev, cur int) int64 {
		var b int64
		for _, ln := range lives {
			onPrev := ln.lo <= prev && prev < ln.hi
			onCur := ln.lo <= cur && cur < ln.hi
			if onPrev || onCur {
				b += ln.bytes
			}
		}
		return b
	}
	for m := 0; m < n; m++ {
		prev := (m + n - 1) % n
		if b := pathBytes(prev, m); b > p.PeakValueBytes {
			p.PeakValueBytes = b
		}
	}
	return p
}

// PredictBaselineCOO returns the per-iteration op count of the streaming
// COO kernel: N·R ops per nonzero per mode, N modes.
func PredictBaselineCOO(est *Estimator, rank int) int64 {
	n := int64(est.Order())
	return est.NNZ() * n * n * int64(rank)
}
