package model

import (
	"math/rand"
	"testing"

	"adatm/internal/dense"
	"adatm/internal/memo"
	"adatm/internal/tensor"
)

// With exact projection counts, the model's index-byte prediction must match
// the engine's measured symbolic storage EXACTLY (same formula, real
// counts), and the peak-value-byte prediction must match the engine's
// measured peak under the ALS sweep protocol.
func TestPredictMemoryMatchesEngine(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for _, order := range []int{3, 4, 5} {
			x := tensor.RandomClustered(order, 12, 600, 0.8, seed*100+int64(order))
			est := NewExactEstimator(x)
			strategies := []*memo.Strategy{memo.Flat(order), memo.Balanced(order)}
			if order >= 3 {
				strategies = append(strategies, memo.TwoGroup(order, order/2))
			}
			for _, s := range strategies {
				rank := 8
				pred := Predict(est, s, rank)
				eng, err := memo.New(x, s, 1, "")
				if err != nil {
					t.Fatal(err)
				}
				// Drive two full ALS sweeps so the peak reaches steady state.
				fs := make([]*dense.Matrix, order)
				rng := rand.New(rand.NewSource(seed))
				for m := range fs {
					fs[m] = dense.Random(x.Dims[m], rank, rng)
				}
				for iter := 0; iter < 2; iter++ {
					for mode := 0; mode < order; mode++ {
						out := dense.New(x.Dims[mode], rank)
						eng.MTTKRP(mode, fs, out)
						eng.FactorUpdated(mode)
					}
				}
				stats := eng.Stats()
				if pred.IndexBytes != stats.IndexBytes {
					t.Errorf("order %d %s: predicted index bytes %d != measured %d",
						order, s, pred.IndexBytes, stats.IndexBytes)
				}
				if pred.PeakValueBytes != stats.PeakValueBytes {
					t.Errorf("order %d %s: predicted peak value bytes %d != measured %d",
						order, s, pred.PeakValueBytes, stats.PeakValueBytes)
				}
			}
		}
	}
}
