package model

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adatm/internal/dist"
	"adatm/internal/tensor"
)

// Model-driven partition selection for the distributed layer: the same
// philosophy as format selection (enumerate a small candidate family, score
// each with a cost model, pick the cheapest), applied to the question of
// which nonzero partitioner a sharded run should use. The score mirrors
// dist.CostModel.PredictIteration exactly — the slowest process's compute
// under the roofline's NsPerOp plus α–β communication over the exact
// fold/expand volume AnalyzeComm computes — so the audit layer can later
// reconcile the prediction against the measured run.

// PartitionOptions configures SelectPartition.
type PartitionOptions struct {
	// Procs is the process count (required, >= 1).
	Procs int
	// Rank sizes the factor rows exchanged per fold/expand (<= 0 → 16).
	Rank int
	// Seed drives the randomized partitioners (random placement, greedy
	// visit order).
	Seed int64
	// Coeffs supplies the calibrated machine constants; the zero value uses
	// built-in defaults so hermetic tests need no calibration.
	Coeffs Coeffs
	// AlphaNS is the per-message latency in nanoseconds (<= 0 → 20µs, a
	// loopback-TCP-flavored default).
	AlphaNS float64
}

// PartitionCandidate is one scored partitioner.
type PartitionCandidate struct {
	Name      string
	Part      *dist.Partition
	Comm      dist.CommStats
	Imbalance float64
	ComputeNS float64 // slowest process's per-iteration compute
	CommNS    float64 // α·2·Messages + β·VolumeBytes(rank)
	PredNS    float64 // ComputeNS + CommNS — the ranking criterion
}

// PartitionPlan is the selector's full output: every candidate scored
// (sorted by predicted iteration time ascending) and the chosen one.
type PartitionPlan struct {
	Procs      int
	Rank       int
	NNZ        int
	Order      int
	AlphaNS    float64
	NsPerOp    float64
	NsPerByte  float64
	Candidates []PartitionCandidate
	Chosen     PartitionCandidate
}

// defaults for a zero Coeffs, in the units Calibrate produces. Roughly a
// 1 GHz scalar FMA pipe and 10 GB/s of streaming bandwidth — pessimistic
// constants are fine because only the ranking matters.
const (
	defaultNsPerOp   = 1.0
	defaultNsPerByte = 0.1
	defaultAlphaNS   = 20_000.0
)

// SelectPartition scores the partitioner family (random, medium-grain
// Cartesian, fine-grain greedy) for x at the given process count and picks
// the one with the smallest predicted per-iteration time. Ties resolve to
// the earlier candidate in enumeration order (random, medium-grain,
// fine-greedy), making the choice deterministic.
func SelectPartition(x *tensor.COO, opt PartitionOptions) (*PartitionPlan, error) {
	if x == nil || x.NNZ() == 0 {
		return nil, fmt.Errorf("model: partition selection needs a non-empty tensor")
	}
	if opt.Procs < 1 {
		return nil, fmt.Errorf("model: partition selection needs procs >= 1, got %d", opt.Procs)
	}
	rank := opt.Rank
	if rank <= 0 {
		rank = 16
	}
	nsPerOp := opt.Coeffs.NsPerOp
	if nsPerOp <= 0 {
		nsPerOp = defaultNsPerOp
	}
	nsPerByte := opt.Coeffs.NsPerByte
	if nsPerByte <= 0 {
		nsPerByte = defaultNsPerByte
	}
	alpha := opt.AlphaNS
	if alpha <= 0 {
		alpha = defaultAlphaNS
	}

	parts := []*dist.Partition{
		dist.RandomPartition(x, opt.Procs, opt.Seed),
		dist.MediumGrainPartition(x, opt.Procs),
	}
	// The fine-grain greedy partitioner stores process sets as 64-bit masks
	// and per-nonzero mode loops over a fixed array: feasibility-gate it.
	if opt.Procs <= 64 && x.Order() <= 16 {
		parts = append(parts, dist.FineGrainGreedyPartition(x, opt.Procs, opt.Seed))
	}

	plan := &PartitionPlan{
		Procs: opt.Procs, Rank: rank, NNZ: x.NNZ(), Order: x.Order(),
		AlphaNS: alpha, NsPerOp: nsPerOp, NsPerByte: nsPerByte,
	}
	n := x.Order()
	for _, p := range parts {
		_, stats := dist.AnalyzeComm(x, p)
		maxLoad := 0
		for _, l := range p.Loads() {
			if l > maxLoad {
				maxLoad = l
			}
		}
		// Identical arithmetic to dist.CostModel.PredictIteration with
		// {NsPerOp: nsPerOp, AlphaNs: alpha, BetaNsByte: nsPerByte}.
		computeNS := float64(maxLoad) * float64(n*n*rank) * nsPerOp
		commNS := alpha*float64(2*stats.Messages) + nsPerByte*float64(stats.VolumeBytes(rank))
		plan.Candidates = append(plan.Candidates, PartitionCandidate{
			Name: p.Name, Part: p, Comm: stats, Imbalance: p.Imbalance(),
			ComputeNS: computeNS, CommNS: commNS, PredNS: computeNS + commNS,
		})
	}
	sort.SliceStable(plan.Candidates, func(a, b int) bool {
		return plan.Candidates[a].PredNS < plan.Candidates[b].PredNS
	})
	plan.Chosen = plan.Candidates[0]
	return plan, nil
}

// Partitioner returns the named partitioner's candidate from the plan, or
// nil if it was not scored (e.g. fine-greedy past the feasibility gate).
func (p *PartitionPlan) Partitioner(name string) *PartitionCandidate {
	for i := range p.Candidates {
		if p.Candidates[i].Name == name {
			return &p.Candidates[i]
		}
	}
	return nil
}

// String renders the plan as a small report table.
func (p *PartitionPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition plan: procs=%d rank=%d nnz=%d (α=%s/msg, %.2f ns/op, %.2f ns/B)\n",
		p.Procs, p.Rank, p.NNZ, time.Duration(p.AlphaNS), p.NsPerOp, p.NsPerByte)
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %12s %12s %12s\n",
		"partition", "vol rows", "messages", "imbal", "compute", "comm", "predicted")
	for _, c := range p.Candidates {
		mark := ""
		if c.Name == p.Chosen.Name {
			mark = "  <= chosen"
		}
		fmt.Fprintf(&b, "%-14s %10d %10d %8.2f %12s %12s %12s%s\n",
			c.Name, c.Comm.TotalRows, c.Comm.Messages, c.Imbalance,
			time.Duration(c.ComputeNS), time.Duration(c.CommNS), time.Duration(c.PredNS), mark)
	}
	return b.String()
}
