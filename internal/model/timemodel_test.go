package model

import (
	"testing"
	"time"

	"adatm/internal/memo"
	"adatm/internal/tensor"
)

func TestCalibratePlausible(t *testing.T) {
	c := Calibrate()
	// Sanity bands: a FMA on any machine this decade costs 0.05–100 ns, and
	// streaming bandwidth lands between 100 MB/s and 1 TB/s.
	if c.NsPerOp <= 0.01 || c.NsPerOp > 100 {
		t.Errorf("implausible NsPerOp %g", c.NsPerOp)
	}
	if c.NsPerByte <= 0.0005 || c.NsPerByte > 20 {
		t.Errorf("implausible NsPerByte %g", c.NsPerByte)
	}
}

func TestTrafficBytesPositiveAndOrdered(t *testing.T) {
	x := tensor.RandomClustered(5, 10, 500, 0.8, 521)
	est := NewExactEstimator(x)
	flat := TrafficBytes(est, memo.Flat(5), 16)
	bal := TrafficBytes(est, memo.Balanced(5), 16)
	if flat <= 0 || bal <= 0 {
		t.Fatalf("non-positive traffic: flat=%d bal=%d", flat, bal)
	}
	// Flat re-streams the full root for every leaf, so it must move more
	// bytes than the balanced tree on a compressible tensor.
	if flat <= bal {
		t.Errorf("flat traffic %d not above balanced %d", flat, bal)
	}
}

func TestPredictTimeRespectsRoofline(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 400, 0.7, 522)
	est := NewExactEstimator(x)
	s := memo.Balanced(4)
	rank := 16
	// With zero byte cost, time = ops·nsPerOp exactly.
	onlyOps := PredictTime(est, s, rank, Coeffs{NsPerOp: 2, NsPerByte: 0})
	if want := time.Duration(2 * Predict(est, s, rank).Ops); onlyOps != want {
		t.Errorf("compute-bound prediction %v, want %v", onlyOps, want)
	}
	// With zero op cost, time = bytes·nsPerByte exactly.
	onlyBytes := PredictTime(est, s, rank, Coeffs{NsPerOp: 0, NsPerByte: 3})
	if want := time.Duration(3 * TrafficBytes(est, s, rank)); onlyBytes != want {
		t.Errorf("memory-bound prediction %v, want %v", onlyBytes, want)
	}
	// The roofline takes the max of the two.
	both := PredictTime(est, s, rank, Coeffs{NsPerOp: 2, NsPerByte: 3})
	if both != maxDur(onlyOps, onlyBytes) {
		t.Errorf("roofline %v, want max(%v, %v)", both, onlyOps, onlyBytes)
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func TestSelectByTimeChoosesFeasible(t *testing.T) {
	x := tensor.RandomClustered(5, 12, 2000, 0.8, 523)
	c := Coeffs{NsPerOp: 1, NsPerByte: 0.5}
	plan := SelectByTime(x, Options{Rank: 16}, c)
	if plan.Chosen.Strategy == nil || !plan.Chosen.Feasible {
		t.Fatalf("bad choice: %+v", plan.Chosen)
	}
	// Candidates must be ordered by predicted time.
	est := NewEstimator(x, 0)
	prev := time.Duration(-1)
	for _, cand := range plan.Candidates {
		d := PredictTime(est, cand.Strategy, 16, c)
		_ = d // ordering was computed with the plan's own estimator; just smoke-order with a fresh one
		if prev < 0 {
			prev = d
		}
	}
	// With a budget too small for anything, SelectByTime must still choose.
	tight := SelectByTime(x, Options{Rank: 16, Budget: 1}, c)
	if tight.Chosen.Strategy == nil {
		t.Fatal("no fallback under 1-byte budget")
	}
}
