package model

import (
	"strings"
	"testing"
	"time"

	"adatm/internal/coo"
	"adatm/internal/dist"
	"adatm/internal/engine"
	"adatm/internal/tensor"
)

func TestSelectPartitionPrefersStructure(t *testing.T) {
	// On a clustered tensor the structure-aware partitioners move far less
	// data than random placement, so with any sane coefficients the model
	// must not choose random.
	x := tensor.RandomClustered(3, 64, 6000, 1.0, 630)
	plan, err := SelectPartition(x, PartitionOptions{Procs: 8, Rank: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen.Name == "random" {
		t.Errorf("model chose random placement on a clustered tensor:\n%s", plan)
	}
	if len(plan.Candidates) != 3 {
		t.Errorf("want 3 scored candidates, got %d", len(plan.Candidates))
	}
	// Candidates are sorted by predicted time ascending and carry their
	// evidence.
	for i, c := range plan.Candidates {
		if c.Part == nil || c.PredNS != c.ComputeNS+c.CommNS {
			t.Errorf("candidate %s: inconsistent record %+v", c.Name, c)
		}
		if i > 0 && c.PredNS < plan.Candidates[i-1].PredNS {
			t.Errorf("candidates not sorted by PredNS at %d", i)
		}
	}
	if plan.Chosen.PredNS > plan.Candidates[len(plan.Candidates)-1].PredNS {
		t.Error("chosen candidate is not the cheapest")
	}
	if got := plan.Partitioner("random"); got == nil || got.Comm.TotalRows == 0 {
		t.Error("random candidate missing or with zero recorded volume")
	}
	if s := plan.String(); !strings.Contains(s, "<= chosen") || !strings.Contains(s, plan.Chosen.Name) {
		t.Errorf("plan report does not mark the choice:\n%s", s)
	}
}

// The score must be the same arithmetic dist.CostModel.PredictIteration
// uses, so audit reconciliation can compare prediction to measurement.
func TestSelectPartitionMirrorsCostModel(t *testing.T) {
	x := tensor.RandomClustered(3, 20, 800, 0.6, 631)
	plan, err := SelectPartition(x, PartitionOptions{Procs: 4, Rank: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cm := dist.CostModel{NsPerOp: plan.NsPerOp, AlphaNs: plan.AlphaNS, BetaNsByte: plan.NsPerByte}
	for _, cand := range plan.Candidates {
		c := dist.NewCluster(x, cand.Part, func(s *tensor.COO) engine.Engine { return coo.New(s, 1) })
		want := c.PredictIteration(plan.Rank, cm)
		if got := time.Duration(cand.PredNS); got != want {
			t.Errorf("%s: plan predicts %v, dist.CostModel predicts %v", cand.Name, got, want)
		}
	}

	// Degenerate inputs are rejected, not scored.
	if _, err := SelectPartition(x, PartitionOptions{Procs: 0}); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, err := SelectPartition(tensor.NewCOO([]int{2, 2}, 0), PartitionOptions{Procs: 2}); err == nil {
		t.Error("empty tensor accepted")
	}
}
