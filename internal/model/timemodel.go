package model

import (
	"time"

	"adatm/internal/dense"
	"adatm/internal/memo"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Roofline-style time model. Operation counts alone rank strategies well
// when every strategy is compute-bound, but memoized kernels move
// intermediate value rows through memory, so two strategies with similar op
// counts can differ in traffic. The time model predicts
//
//	time ≈ max( ops · nsPerOp , bytes · nsPerByte )
//
// with the two machine constants calibrated once per host by timing two
// tiny probe kernels (a compute-heavy Hadamard loop and a streaming copy).

// Coeffs are the calibrated machine constants.
type Coeffs struct {
	NsPerOp   float64 // nanoseconds per fused multiply–add on a factor row
	NsPerByte float64 // nanoseconds per byte of streaming traffic
	NsPerLock float64 // nanoseconds per uncontended mutex lock/unlock pair
}

// Calibrate measures the machine constants with short synthetic probes
// (~milliseconds). Deterministic workload; wall-clock measured with the
// minimum of reps.
func Calibrate() Coeffs {
	const (
		rows = 1 << 12
		r    = 32
		reps = 3
	)
	a := dense.New(rows, r)
	b := dense.New(rows, r)
	for i := range a.Data {
		a.Data[i] = float64(i%7) + 0.5
		b.Data[i] = float64(i%5) + 0.25
	}
	// Compute probe: row-wise multiply–accumulate, touching resident data.
	ops := 0
	var best time.Duration
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		acc := make([]float64, r)
		for sweep := 0; sweep < 16; sweep++ {
			for i := 0; i < rows; i++ {
				ra := a.Row(i)
				rb := b.Row(i)
				for j := 0; j < r; j++ {
					acc[j] += ra[j] * rb[j]
				}
			}
		}
		if acc[0] == -1 {
			panic("unreachable; defeats dead-code elimination")
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
		ops = 16 * rows * r
	}
	nsPerOp := float64(best.Nanoseconds()) / float64(ops)

	// Traffic probe: streaming copy over a buffer larger than L2.
	buf := make([]float64, 1<<21) // 16 MiB
	dst := make([]float64, 1<<21)
	for i := range buf {
		buf[i] = float64(i)
	}
	best = 0
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		copy(dst, buf)
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	bytes := float64(len(buf) * 8 * 2) // read + write
	nsPerByte := float64(best.Nanoseconds()) / bytes
	if dst[1] == -1 {
		panic("unreachable")
	}

	// Lock probe: uncontended striped lock/unlock pairs over rotating rows,
	// the per-nonzero synchronization cost of the scatter accumulation.
	stripes := par.NewStripes(256)
	const lockIters = 1 << 16
	best = 0
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 0; i < lockIters; i++ {
			stripes.Lock(int32(i))
			stripes.Unlock(int32(i))
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	nsPerLock := float64(best.Nanoseconds()) / lockIters

	return Coeffs{NsPerOp: nsPerOp, NsPerByte: nsPerByte, NsPerLock: nsPerLock}
}

// TrafficBytes estimates the per-iteration memory traffic of a strategy:
// for every non-root node, computing it streams the parent's value rows
// (or the root's scalar values), the reduction arrays, the delta factor
// rows, and writes the node's value matrix once.
func TrafficBytes(est *Estimator, s *memo.Strategy, rank int) int64 {
	var bytes int64
	rowB := int64(rank) * 8
	var walk func(node *memo.Strategy, parentElems int64)
	walk = func(node *memo.Strategy, parentElems int64) {
		for _, c := range node.Children {
			ce := est.Distinct(c.Lo, c.Hi)
			delta := int64(node.Span() - c.Span())
			// Read: parent rows once each + delta factor rows + reduction ids.
			bytes += parentElems * (rowB + delta*rowB + 4)
			// Write: the node's value matrix.
			bytes += ce * rowB
			walk(c, ce)
		}
	}
	walk(s, est.Distinct(s.Lo, s.Hi))
	return bytes
}

// PredictTime evaluates the roofline bound for a strategy.
func PredictTime(est *Estimator, s *memo.Strategy, rank int, c Coeffs) time.Duration {
	pred := Predict(est, s, rank)
	traffic := TrafficBytes(est, s, rank)
	compute := float64(pred.Ops) * c.NsPerOp
	memoryNS := float64(traffic) * c.NsPerByte
	ns := compute
	if memoryNS > ns {
		ns = memoryNS
	}
	return time.Duration(ns)
}

// SelectByTime is Select with candidates ranked by the roofline time model
// instead of raw op counts. The candidate set and feasibility rules are
// identical; only the ordering criterion changes.
func SelectByTime(x *tensor.COO, opt Options, c Coeffs) *Plan {
	var est *Estimator
	if opt.Exact {
		est = NewExactEstimator(x)
	} else {
		est = NewEstimator(x, opt.SketchK)
	}
	plan := SelectWithEstimator(est, opt)
	// Re-rank by predicted time; re-choose the cheapest feasible.
	plan.ByTime = true
	for i := range plan.Candidates {
		cand := &plan.Candidates[i]
		cand.PredTime = PredictTime(est, cand.Strategy, plan.Rank, c)
	}
	sortCandidatesBy(plan, func(a, b Candidate) bool { return a.PredTime < b.PredTime })
	found := false
	for _, cand := range plan.Candidates {
		if cand.Feasible {
			plan.Chosen = cand
			plan.BudgetFallback = false
			found = true
			break
		}
	}
	if !found {
		// Budget fallback: keep SelectWithEstimator's smallest-footprint
		// choice, refreshed from the slice so it carries its PredTime.
		for _, cand := range plan.Candidates {
			if cand.Name == plan.Chosen.Name {
				plan.Chosen = cand
				break
			}
		}
	}
	// The accumulation table depends on the chosen candidate's footprint
	// (budget slack) and now has calibrated coefficients available —
	// recompute it against the time-ranked choice.
	fillAccum(plan, plan.Workers, c.AccumCosts())
	applyAccumOverride(plan, opt.Accum)
	return plan
}

func sortCandidatesBy(p *Plan, less func(a, b Candidate) bool) {
	cs := p.Candidates
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
