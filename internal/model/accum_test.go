package model

import (
	"strings"
	"testing"

	"adatm/internal/accum"
	"adatm/internal/tensor"
)

// shortModePlan selects a plan over a tensor whose first mode is tiny (fewer
// rows than workers): the one regime where the lock-free leaf scatter cannot
// use the full parallel width, so the model must privatize it.
func shortModePlan(t *testing.T, opt Options) *Plan {
	t.Helper()
	x := tensor.Generate(tensor.GenSpec{
		Name: "short-mode",
		Dims: []int{4, 1024, 1024},
		NNZ:  50000,
		Skew: []float64{0, 0.8, 0.8},
		Seed: 241,
	})
	plan := Select(x, opt)
	if len(plan.Accum) != x.Order() {
		t.Fatalf("plan has %d accum choices, want %d", len(plan.Accum), x.Order())
	}
	return plan
}

// The model's accum crossover: a 4-row mode at 8 workers caps the lock-free
// scatter at width 4, so privatization's full-width streaming wins; the
// 1024-row modes scatter at full width and keep the lock-free baseline.
func TestPlanAccumCrossover(t *testing.T) {
	plan := shortModePlan(t, Options{Rank: 16, Workers: 8})
	if got := plan.Accum[0].Strategy; got != accum.Privatize {
		t.Errorf("short mode (4 rows, 8 workers): chose %s, want privatize\n%s", got, plan)
	}
	for _, mode := range []int{1, 2} {
		if got := plan.Accum[mode].Strategy; got != accum.Scatter {
			t.Errorf("wide mode %d (1024 rows): chose %s, want scatter", mode, got)
		}
	}
	for _, a := range plan.Accum {
		if !a.Feasible {
			t.Errorf("mode %d: privatization infeasible with no budget set", a.Mode)
		}
		if a.FootprintBytes <= 0 {
			t.Errorf("mode %d: non-positive footprint %d", a.Mode, a.FootprintBytes)
		}
	}
}

// A budget the chosen format has already spent leaves no headroom for
// privatized copies: every mode must fall back to scatter and record the
// infeasibility as evidence.
func TestPlanAccumBudgetForcesScatter(t *testing.T) {
	plan := shortModePlan(t, Options{Rank: 16, Workers: 8, Budget: 1})
	for _, a := range plan.Accum {
		if a.Strategy != accum.Scatter {
			t.Errorf("mode %d: chose %s under a spent budget, want scatter", a.Mode, a.Strategy)
		}
		if a.Feasible {
			t.Errorf("mode %d: privatization marked feasible under a spent budget", a.Mode)
		}
	}
}

// A forced Options.Accum overrides the model's per-mode picks but keeps the
// cost evidence for the audit ledger.
func TestPlanAccumOverride(t *testing.T) {
	plan := shortModePlan(t, Options{Rank: 16, Workers: 8, Accum: accum.Privatize})
	for _, a := range plan.Accum {
		if a.Strategy != accum.Privatize {
			t.Errorf("mode %d: forced privatize but plan says %s", a.Mode, a.Strategy)
		}
		if a.ScatterNS <= 0 || a.PrivatizeNS <= 0 {
			t.Errorf("mode %d: override dropped the cost evidence", a.Mode)
		}
	}
	per := plan.AccumPerMode()
	if len(per) != len(plan.Accum) {
		t.Fatalf("AccumPerMode len %d, want %d", len(per), len(plan.Accum))
	}
	for m, s := range per {
		if s != plan.Accum[m].Strategy {
			t.Errorf("AccumPerMode[%d] = %s, plan says %s", m, s, plan.Accum[m].Strategy)
		}
	}
}

// The rendered plan must surface the accumulation table (the /plan endpoint
// and cpd -plan show this text).
func TestPlanStringShowsAccum(t *testing.T) {
	plan := shortModePlan(t, Options{Rank: 16, Workers: 8})
	s := plan.String()
	if !strings.Contains(s, "accum") {
		t.Fatalf("plan report has no accum section:\n%s", s)
	}
	if !strings.Contains(s, "privatize") || !strings.Contains(s, "scatter") {
		t.Errorf("plan report accum table missing strategies:\n%s", s)
	}
}
