// Package model implements the paper's model-driven strategy selection: it
// predicts, for every candidate memoization strategy, the per-iteration
// operation count and the memory footprint — without materializing any
// intermediate tensor — and picks the cheapest strategy that fits a memory
// budget.
//
// The predictions need one nontrivial input: the number of *distinct* index
// tuples of the tensor projected onto each contiguous mode range (that is
// the element count of the corresponding semi-sparse intermediate). The
// package estimates all of these in a single pass over the nonzeros with a
// bottom-k (KMV) distinct-count sketch per range.
package model

import (
	"sort"
)

// mix64 is the splitmix64 finalizer, a strong 64-bit mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// kmv is a bottom-k sketch over a stream of 64-bit hashes: it retains the k
// smallest distinct hash values and estimates the distinct count of the
// stream as (k-1)/kth-smallest-normalized-hash. With k=1024 the standard
// error is about 1/√k ≈ 3%.
type kmv struct {
	k      int
	seen   map[uint64]struct{}
	thresh uint64 // hashes >= thresh are ignored (cannot be in the bottom k)
	exact  bool   // true while the sketch has never overflowed
}

func newKMV(k int) *kmv {
	if k < 16 {
		k = 16
	}
	return &kmv{k: k, seen: make(map[uint64]struct{}, 2*k), thresh: ^uint64(0), exact: true}
}

// offer adds one hash to the sketch.
func (s *kmv) offer(h uint64) {
	if h >= s.thresh {
		return
	}
	if _, ok := s.seen[h]; ok {
		return
	}
	s.seen[h] = struct{}{}
	if len(s.seen) > 2*s.k {
		s.compact()
	}
}

// compact trims the retained set back to the k smallest hashes.
func (s *kmv) compact() {
	hs := make([]uint64, 0, len(s.seen))
	for h := range s.seen {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a] < hs[b] })
	hs = hs[:s.k]
	s.thresh = hs[len(hs)-1] + 1
	s.seen = make(map[uint64]struct{}, 2*s.k)
	for _, h := range hs {
		s.seen[h] = struct{}{}
	}
	s.exact = false
}

// estimate returns the estimated number of distinct hashes offered.
func (s *kmv) estimate() int64 {
	if s.exact || len(s.seen) < s.k {
		return int64(len(s.seen))
	}
	hs := make([]uint64, 0, len(s.seen))
	for h := range s.seen {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a] < hs[b] })
	kth := hs[s.k-1]
	if kth == 0 {
		return int64(s.k)
	}
	// D ≈ (k-1) / U(k) with U(k) the k-th smallest hash normalized to (0,1).
	frac := float64(kth) / float64(^uint64(0))
	return int64(float64(s.k-1) / frac)
}
