package model

import (
	"sort"

	"adatm/internal/memo"
	"adatm/internal/tensor"
)

// Mode permutation support: strategy trees group contiguous mode ranges, so
// grouping non-adjacent modes requires permuting the modes first. The
// functions here score candidate permutations (each with its own projection
// estimator over the permuted order) and pick the best (permutation,
// strategy) pair.

// NewEstimatorOrdered is NewEstimator over a permuted mode order: range
// [lo, hi) refers to permuted positions, i.e. original modes
// perm[lo..hi-1].
func NewEstimatorOrdered(x *tensor.COO, perm []int, k int) *Estimator {
	if len(perm) != x.Order() {
		panic("model: permutation arity mismatch")
	}
	px := &tensor.COO{Dims: make([]int, len(perm)), Inds: make([][]tensor.Index, len(perm)), Vals: x.Vals}
	for p, m := range perm {
		px.Dims[p] = x.Dims[m]
		px.Inds[p] = x.Inds[m] // aliasing is fine: the estimator only reads
	}
	return NewEstimator(px, k)
}

// PermCandidate is one scored (permutation, plan) pair.
type PermCandidate struct {
	Name string
	Perm []int
	Plan *Plan
}

// PermPlan is the outcome of permutation-aware selection.
type PermPlan struct {
	Candidates []PermCandidate
	Chosen     PermCandidate
}

// HeuristicPermutations returns the candidate mode orders the selector
// scores: natural, dimensions ascending, dimensions descending, and
// per-mode distinct-count ascending (most compressible modes first, so they
// sink deep into the tree where they are contracted last).
func HeuristicPermutations(x *tensor.COO) map[string][]int {
	n := x.Order()
	natural := make([]int, n)
	for i := range natural {
		natural[i] = i
	}
	byDims := func(less func(a, b int) bool) []int {
		p := append([]int(nil), natural...)
		sort.SliceStable(p, func(a, b int) bool { return less(p[a], p[b]) })
		return p
	}
	est := NewEstimator(x, 512)
	distinct := make([]int64, n)
	for m := 0; m < n; m++ {
		distinct[m] = est.Distinct(m, m+1)
	}
	return map[string][]int{
		"natural":      natural,
		"dims-asc":     byDims(func(a, b int) bool { return x.Dims[a] < x.Dims[b] }),
		"dims-desc":    byDims(func(a, b int) bool { return x.Dims[a] > x.Dims[b] }),
		"distinct-asc": byDims(func(a, b int) bool { return distinct[a] < distinct[b] }),
	}
}

// SelectPermuted scores every candidate permutation (each with a fresh
// estimator over its order) and returns the (permutation, strategy) pair
// with the lowest predicted op count among feasible plans. perms may be
// nil, in which case HeuristicPermutations is used.
func SelectPermuted(x *tensor.COO, opt Options, perms map[string][]int) *PermPlan {
	if perms == nil {
		perms = HeuristicPermutations(x)
	}
	out := &PermPlan{}
	for name, perm := range perms {
		var est *Estimator
		if opt.Exact {
			est = NewExactEstimator(permutedView(x, perm))
		} else {
			est = NewEstimatorOrdered(x, perm, opt.SketchK)
		}
		plan := SelectWithEstimator(est, opt)
		out.Candidates = append(out.Candidates, PermCandidate{Name: name, Perm: perm, Plan: plan})
	}
	// Deterministic order (map iteration is random).
	sort.Slice(out.Candidates, func(a, b int) bool { return out.Candidates[a].Name < out.Candidates[b].Name })
	best := -1
	for i, c := range out.Candidates {
		if best < 0 {
			best = i
			continue
		}
		bi, ci := out.Candidates[best], c
		// Prefer feasible plans, then lower predicted ops.
		if (ci.Plan.Chosen.Feasible && !bi.Plan.Chosen.Feasible) ||
			(ci.Plan.Chosen.Feasible == bi.Plan.Chosen.Feasible && ci.Plan.Chosen.Pred.Ops < bi.Plan.Chosen.Pred.Ops) {
			best = i
		}
	}
	out.Chosen = out.Candidates[best]
	return out
}

func permutedView(x *tensor.COO, perm []int) *tensor.COO {
	px := &tensor.COO{Dims: make([]int, len(perm)), Inds: make([][]tensor.Index, len(perm)), Vals: x.Vals}
	for p, m := range perm {
		px.Dims[p] = x.Dims[m]
		px.Inds[p] = x.Inds[m]
	}
	return px
}

// BuildChosen constructs the permuted memoized engine for the selection.
func (pp *PermPlan) BuildChosen(x *tensor.COO, workers int) (*memo.Permuted, error) {
	return memo.NewPermuted(x, pp.Chosen.Plan.Chosen.Strategy, pp.Chosen.Perm, workers,
		"adaptive-perm["+pp.Chosen.Name+"/"+pp.Chosen.Plan.Chosen.Name+"]")
}
