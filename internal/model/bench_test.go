package model

import (
	"fmt"
	"testing"

	"adatm/internal/tensor"
)

func BenchmarkEstimatorBuild(b *testing.B) {
	for _, order := range []int{4, 6, 8} {
		x := tensor.RandomClustered(order, 4096, 100000, 0.8, int64(order))
		for _, k := range []int{256, 1024} {
			b.Run(fmt.Sprintf("order%d/k%d", order, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					NewEstimator(x, k)
				}
				b.ReportMetric(float64(x.NNZ()), "nnz")
			})
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	x := tensor.RandomClustered(6, 4096, 100000, 0.8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(x, Options{Rank: 16})
	}
}

func BenchmarkSelectPermuted(b *testing.B) {
	x := tensor.RandomClustered(5, 4096, 80000, 0.8, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectPermuted(x, Options{Rank: 16}, nil)
	}
}

func BenchmarkKMVOffer(b *testing.B) {
	s := newKMV(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.offer(mix64(uint64(i)))
	}
}
