package model

import (
	"adatm/internal/accum"
)

// Plan-time accumulation selection. The strategy-tree choice decides *what*
// intermediate tensors to compute; this layer decides *how* each mode's
// MTTKRP output is accumulated — striped/lock-free scatter in place, or
// per-worker privatized copies with a folding reduction (see
// internal/accum). The decision is per target mode: the output height
// dims[mode] drives both the privatized footprint W·rows·R·8 (checked
// against the budget slack left after the chosen strategy's own storage)
// and the scatter's parallel width.

// AccumChoice records the accumulation decision for one target mode.
type AccumChoice struct {
	Mode int `json:"mode"`
	Rows int `json:"rows"`
	accum.Choice
}

// AccumCosts maps the calibrated roofline constants into the accumulation
// model's coefficient set (the lock coefficient falls back to the default
// when the Coeffs predate lock calibration).
func (c Coeffs) AccumCosts() accum.Costs {
	return accum.Costs{NsPerOp: c.NsPerOp, NsPerByte: c.NsPerByte, NsPerLock: c.NsPerLock}
}

// fillAccum computes the per-mode accumulation table for the plan. workers
// <= 0 leaves the table with the default parallel width of 1 worker — the
// privatized path never wins there, which is the correct degenerate answer.
// The privatized footprint is budgeted against what the chosen candidate
// leaves free: Budget − (index + peak value bytes).
func fillAccum(p *Plan, workers int, c accum.Costs) {
	slack := int64(0)
	if p.Budget > 0 {
		slack = p.Budget - (p.Chosen.Pred.IndexBytes + p.Chosen.Pred.PeakValueBytes)
		if slack < 1 {
			slack = 1 // spent budget: any footprint is infeasible
		}
	}
	p.Accum = p.Accum[:0]
	for m := 0; m < p.Order; m++ {
		in := accum.Input{
			Rows:    p.Dims[m],
			NNZ:     p.NNZ,
			Rank:    p.Rank,
			Workers: workers,
			// The planned engines' baseline scatter is the memoized leaf
			// contraction, which is lock-free by construction.
			LockFree: true,
			Budget:   slack,
		}
		p.Accum = append(p.Accum, AccumChoice{Mode: m, Rows: p.Dims[m], Choice: accum.Choose(in, c)})
	}
}

// AccumPerMode flattens the plan's accumulation table into the per-mode
// strategy slice engine constructors accept (accum.Config.PerMode).
func (p *Plan) AccumPerMode() []accum.Strategy {
	if len(p.Accum) == 0 {
		return nil
	}
	out := make([]accum.Strategy, len(p.Accum))
	for i, a := range p.Accum {
		out[i] = a.Strategy
	}
	return out
}
