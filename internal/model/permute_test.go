package model

import (
	"math/rand"
	"testing"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

// correlated builds an order-4 tensor where modes 0 and 2 are nearly
// functionally dependent (idx2 = f(idx0) with small jitter), so the {0,2}
// projection compresses massively — but only a permutation can group them
// into one contiguous range.
func correlated(nnz int, seed int64) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{500, 400, 500, 300}
	x := tensor.NewCOO(dims, nnz)
	idx := make([]tensor.Index, 4)
	for k := 0; k < nnz; k++ {
		i0 := rng.Intn(dims[0])
		idx[0] = tensor.Index(i0)
		idx[1] = tensor.Index(rng.Intn(dims[1]))
		idx[2] = tensor.Index((i0*7 + rng.Intn(3)) % dims[2])
		idx[3] = tensor.Index(rng.Intn(dims[3]))
		x.Append(idx, rng.Float64()+0.5)
	}
	x.Dedup()
	return x
}

func TestEstimatorOrderedMatchesPermutedClone(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 500, 0.8, 501)
	perm := []int{3, 1, 0, 2}
	a := NewEstimatorOrdered(x, perm, 1<<14)
	b := NewEstimator(x.PermuteModes(perm), 1<<14)
	for lo := 0; lo < 4; lo++ {
		for hi := lo + 1; hi <= 4; hi++ {
			if a.Distinct(lo, hi) != b.Distinct(lo, hi) {
				t.Errorf("range [%d,%d): ordered %d vs clone %d", lo, hi, a.Distinct(lo, hi), b.Distinct(lo, hi))
			}
		}
	}
}

func TestHeuristicPermutationsValid(t *testing.T) {
	x := tensor.RandomClustered(5, 8, 300, 0.7, 502)
	perms := HeuristicPermutations(x)
	if len(perms) < 3 {
		t.Fatalf("only %d heuristics", len(perms))
	}
	for name, p := range perms {
		seen := make([]bool, 5)
		for _, m := range p {
			if m < 0 || m >= 5 || seen[m] {
				t.Fatalf("%s: invalid permutation %v", name, p)
			}
			seen[m] = true
		}
	}
	// dims-asc must actually sort by dimension.
	asc := perms["dims-asc"]
	for i := 1; i < len(asc); i++ {
		if x.Dims[asc[i-1]] > x.Dims[asc[i]] {
			t.Fatalf("dims-asc not sorted: %v (dims %v)", asc, x.Dims)
		}
	}
}

func TestSelectPermutedFindsCorrelatedGrouping(t *testing.T) {
	x := correlated(30000, 503)
	// Hand the selector a permutation that groups the correlated pair in
	// addition to the heuristics; it must beat the natural order's plan.
	perms := HeuristicPermutations(x)
	perms["group02"] = []int{0, 2, 1, 3}
	pp := SelectPermuted(x, Options{Rank: 16}, perms)

	var natural, chosen int64
	for _, c := range pp.Candidates {
		if c.Name == "natural" {
			natural = c.Plan.Chosen.Pred.Ops
		}
	}
	chosen = pp.Chosen.Plan.Chosen.Pred.Ops
	if chosen >= natural {
		t.Errorf("permuted selection (%s, %d ops) no better than natural (%d ops)", pp.Chosen.Name, chosen, natural)
	}
	// The winning permutation must place modes 0 and 2 adjacently.
	pos := make([]int, 4)
	for p, m := range pp.Chosen.Perm {
		pos[m] = p
	}
	if d := pos[0] - pos[2]; d != 1 && d != -1 {
		t.Errorf("chosen permutation %v does not group the correlated modes", pp.Chosen.Perm)
	}
}

func TestBuildChosenComputesCorrectMTTKRP(t *testing.T) {
	x := correlated(5000, 504)
	pp := SelectPermuted(x, Options{Rank: 4}, nil)
	eng, err := pp.BuildChosen(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(505))
	fs := make([]*dense.Matrix, 4)
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], 4, rng)
	}
	for mode := 0; mode < 4; mode++ {
		out := dense.New(x.Dims[mode], 4)
		eng.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-8 {
			t.Errorf("mode %d: diff %g", mode, d)
		}
	}
}

func TestSelectPermutedDeterministicOrder(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 400, 0.6, 506)
	a := SelectPermuted(x, Options{Rank: 8}, nil)
	b := SelectPermuted(x, Options{Rank: 8}, nil)
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatal("nondeterministic candidate count")
	}
	for i := range a.Candidates {
		if a.Candidates[i].Name != b.Candidates[i].Name {
			t.Fatalf("nondeterministic candidate order: %s vs %s", a.Candidates[i].Name, b.Candidates[i].Name)
		}
	}
}
