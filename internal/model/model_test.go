package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/memo"
	"adatm/internal/tensor"
)

func TestKMVExactBelowK(t *testing.T) {
	s := newKMV(64)
	for i := 0; i < 40; i++ {
		s.offer(mix64(uint64(i)))
		s.offer(mix64(uint64(i))) // duplicates must not count
	}
	if got := s.estimate(); got != 40 {
		t.Errorf("estimate = %d, want exact 40", got)
	}
}

func TestKMVEstimateWithinError(t *testing.T) {
	for _, trueD := range []int{5000, 50000, 200000} {
		s := newKMV(1024)
		rng := rand.New(rand.NewSource(int64(trueD)))
		for i := 0; i < trueD; i++ {
			h := mix64(uint64(i) ^ 0xabcdef)
			s.offer(h)
			if rng.Intn(3) == 0 {
				s.offer(h) // re-offers must be harmless
			}
		}
		got := float64(s.estimate())
		relErr := math.Abs(got-float64(trueD)) / float64(trueD)
		if relErr > 0.15 { // 1/sqrt(1024) ≈ 3.1%; 15% is a generous gate
			t.Errorf("trueD=%d: estimate %g, rel err %.3f", trueD, got, relErr)
		}
	}
}

func TestEstimatorMatchesExactOnSmall(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 800, 0.8, 81)
	sketch := NewEstimator(x, 4096) // k above every true count → exact
	exact := NewExactEstimator(x)
	for lo := 0; lo < 4; lo++ {
		for hi := lo + 1; hi <= 4; hi++ {
			if s, e := sketch.Distinct(lo, hi), exact.Distinct(lo, hi); s != e {
				t.Errorf("range [%d,%d): sketch %d != exact %d", lo, hi, s, e)
			}
		}
	}
}

func TestExactEstimatorMatchesSymbolicCounts(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 600, 0.9, 82)
	est := NewExactEstimator(x)
	eng, err := memo.New(x, memo.Balanced(4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.NodeElemCounts() {
		if got := est.Distinct(c.Lo, c.Hi); got != int64(c.Elems) {
			t.Errorf("range [%d,%d): model %d != symbolic %d", c.Lo, c.Hi, got, c.Elems)
		}
	}
}

// With exact counts the model's op prediction must equal the engine's exact
// per-iteration op count for any strategy.
func TestPredictOpsMatchEngine(t *testing.T) {
	x := tensor.RandomClustered(5, 9, 500, 0.7, 83)
	est := NewExactEstimator(x)
	for _, s := range []*memo.Strategy{memo.Flat(5), memo.TwoGroup(5, 2), memo.Balanced(5)} {
		eng, err := memo.New(x, s, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		rank := 16
		pred := Predict(est, s, rank)
		if want := eng.PerIterationOps(rank); pred.Ops != want {
			t.Errorf("%s: predicted %d, engine %d", s, pred.Ops, want)
		}
	}
}

func TestDistinctFullRangeIsNNZ(t *testing.T) {
	x := tensor.RandomUniform(3, 20, 400, 84)
	est := NewEstimator(x, 64) // small sketch; full range must still be pinned
	if got := est.Distinct(0, 3); got != int64(x.NNZ()) {
		t.Errorf("full range = %d, want nnz %d", got, x.NNZ())
	}
}

func TestDistinctOutOfRangePanics(t *testing.T) {
	x := tensor.RandomUniform(3, 5, 20, 85)
	est := NewEstimator(x, 64)
	for _, rng := range [][2]int{{-1, 2}, {2, 2}, {1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Distinct(%d,%d) did not panic", rng[0], rng[1])
				}
			}()
			est.Distinct(rng[0], rng[1])
		}()
	}
}

// Brute-force all binary trees over [0,n) and verify the DP finds the
// minimum predicted op count.
func enumerateBinary(lo, hi int) []*memo.Strategy {
	if hi-lo == 1 {
		return []*memo.Strategy{{Lo: lo, Hi: hi}}
	}
	var out []*memo.Strategy
	for s := lo + 1; s < hi; s++ {
		for _, l := range enumerateBinary(lo, s) {
			for _, r := range enumerateBinary(s, hi) {
				out = append(out, &memo.Strategy{Lo: lo, Hi: hi, Children: []*memo.Strategy{l, r}})
			}
		}
	}
	return out
}

func TestDPBinaryIsOptimal(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		x := tensor.RandomClustered(5, 8, 400, 1.0, seed*91)
		est := NewExactEstimator(x)
		rank := 8
		dp := dpBinary(est, rank)
		if err := dp.Validate(5); err != nil {
			t.Fatal(err)
		}
		dpOps := Predict(est, dp, rank).Ops
		for _, cand := range enumerateBinary(0, 5) {
			if ops := Predict(est, cand, rank).Ops; ops < dpOps {
				t.Errorf("seed %d: DP %d beaten by %s with %d", seed, dpOps, cand, ops)
			}
		}
	}
}

func TestSelectPrefersMemoizationOnClustered(t *testing.T) {
	x := tensor.RandomClustered(6, 10, 2000, 1.0, 92)
	plan := Select(x, Options{Rank: 16})
	if plan.Chosen.Name == "flat" {
		t.Errorf("selector chose flat on a order-6 clustered tensor:\n%s", plan)
	}
	// Candidates must be sorted by predicted ops.
	for i := 1; i < len(plan.Candidates); i++ {
		if plan.Candidates[i].Pred.Ops < plan.Candidates[i-1].Pred.Ops {
			t.Error("candidates not sorted by predicted ops")
		}
	}
}

func TestSelectHonorsBudget(t *testing.T) {
	x := tensor.RandomClustered(5, 12, 3000, 0.6, 93)
	unbounded := Select(x, Options{Rank: 32})
	// A budget just below the unbounded choice's footprint must force a
	// different (cheaper-memory) choice or the fallback.
	foot := unbounded.Chosen.Pred.IndexBytes + unbounded.Chosen.Pred.PeakValueBytes
	tight := Select(x, Options{Rank: 32, Budget: foot - 1})
	tightFoot := tight.Chosen.Pred.IndexBytes + tight.Chosen.Pred.PeakValueBytes
	if tight.Chosen.Feasible && tightFoot > foot-1 {
		t.Errorf("budget violated: footprint %d > budget %d", tightFoot, foot-1)
	}
	if tight.Chosen.Strategy.Equal(unbounded.Chosen.Strategy) && tight.Chosen.Feasible {
		t.Error("tight budget did not change the feasible choice")
	}
}

func TestSelectFallbackWhenNothingFits(t *testing.T) {
	x := tensor.RandomUniform(4, 10, 500, 94)
	plan := Select(x, Options{Rank: 16, Budget: 1}) // 1 byte: nothing fits
	if plan.Chosen.Strategy == nil {
		t.Fatal("no fallback choice")
	}
	if plan.Chosen.Feasible {
		t.Error("choice marked feasible under a 1-byte budget")
	}
}

func TestSelectExactMode(t *testing.T) {
	x := tensor.RandomClustered(4, 8, 300, 0.8, 95)
	a := Select(x, Options{Rank: 8, Exact: true})
	b := Select(x, Options{Rank: 8, SketchK: 1 << 15})
	if !a.Chosen.Strategy.Equal(b.Chosen.Strategy) {
		t.Errorf("exact and oversized-sketch selection disagree: %s vs %s", a.Chosen.Strategy, b.Chosen.Strategy)
	}
}

func TestPlanString(t *testing.T) {
	x := tensor.RandomUniform(3, 10, 200, 96)
	plan := Select(x, Options{Rank: 8, Budget: 1 << 30})
	s := plan.String()
	if len(s) == 0 {
		t.Fatal("empty plan report")
	}
}

func TestPredictBaselineCOO(t *testing.T) {
	x := tensor.RandomUniform(3, 10, 200, 97)
	est := NewEstimator(x, 0)
	want := int64(x.NNZ()) * 3 * 3 * 8
	if got := PredictBaselineCOO(est, 8); got != want {
		t.Errorf("coo baseline = %d, want %d", got, want)
	}
}

// Property: the sketch estimator's interval counts are monotone under range
// extension up to sketch error: distinct([lo,hi)) <= distinct([lo,hi+1)) is
// true exactly; allow 20% slack for sketch noise.
func TestMonotoneRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(3)
		x := tensor.RandomClustered(order, 6+rng.Intn(10), 300, rng.Float64(), seed)
		est := NewEstimator(x, 512)
		for lo := 0; lo < order; lo++ {
			for hi := lo + 1; hi < order; hi++ {
				if float64(est.Distinct(lo, hi)) > 1.2*float64(est.Distinct(lo, hi+1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
