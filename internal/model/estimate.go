package model

import (
	"adatm/internal/tensor"
)

// Estimator provides (estimated or exact) distinct-tuple counts for every
// contiguous mode range [lo, hi) of a tensor — the element counts of the
// candidate semi-sparse intermediates. One pass over the nonzeros feeds a
// rolling hash per range start into a KMV sketch per range.
type Estimator struct {
	order int
	nnz   int64
	dims  []int
	// counts[rangeID(lo,hi)] = estimated distinct tuples of modes [lo,hi).
	counts []int64
	exact  bool
}

// rangeID maps [lo, hi) with 0 <= lo < hi <= n to a dense table index.
func rangeID(lo, hi, n int) int { return lo*n + hi - 1 }

// NewEstimator builds the range table with bottom-k sketches of size k
// (k <= 0 selects the default 1024). The pass costs O(nnz · N²) hash
// operations and O(N² · k) memory.
func NewEstimator(x *tensor.COO, k int) *Estimator {
	if k <= 0 {
		k = 1024
	}
	n := x.Order()
	e := &Estimator{order: n, nnz: int64(x.NNZ()), dims: append([]int(nil), x.Dims...), counts: make([]int64, n*n)}
	sketches := make([]*kmv, n*n)
	for lo := 0; lo < n; lo++ {
		for hi := lo + 1; hi <= n; hi++ {
			sketches[rangeID(lo, hi, n)] = newKMV(k)
		}
	}
	nnz := x.NNZ()
	for t := 0; t < nnz; t++ {
		for lo := 0; lo < n; lo++ {
			h := uint64(0x9e3779b97f4a7c15)
			for hi := lo + 1; hi <= n; hi++ {
				h = mix64(h ^ (uint64(uint32(x.Inds[hi-1][t])) + 0x632be59bd9b4e019))
				sketches[rangeID(lo, hi, n)].offer(h)
			}
		}
	}
	for id, s := range sketches {
		if s != nil {
			e.counts[id] = s.estimate()
		}
	}
	// Full-range projection is the nonzero count itself (assuming dedup),
	// and a full-range sketch may be off by the sketch error; pin it.
	e.counts[rangeID(0, n, n)] = int64(nnz)
	return e
}

// NewExactEstimator computes the same table exactly with hash sets, for
// model-validation experiments. Cost: O(nnz · N²) time and up to
// O(nnz · N²) transient memory.
func NewExactEstimator(x *tensor.COO) *Estimator {
	n := x.Order()
	e := &Estimator{order: n, nnz: int64(x.NNZ()), dims: append([]int(nil), x.Dims...), counts: make([]int64, n*n), exact: true}
	for lo := 0; lo < n; lo++ {
		set := make(map[uint64]struct{})
		for hi := lo + 1; hi <= n; hi++ {
			// Recompute the rolling hash per (lo, hi) prefix; reuse the set
			// across hi is not possible since keys differ, so clear it.
			clear(set)
			for t := 0; t < x.NNZ(); t++ {
				h := uint64(0x9e3779b97f4a7c15)
				for m := lo; m < hi; m++ {
					h = mix64(h ^ (uint64(uint32(x.Inds[m][t])) + 0x632be59bd9b4e019))
				}
				set[h] = struct{}{}
			}
			e.counts[rangeID(lo, hi, n)] = int64(len(set))
		}
	}
	return e
}

// Order returns the tensor order the estimator was built for.
func (e *Estimator) Order() int { return e.order }

// Dims returns the mode dimensions of the underlying tensor (in the
// estimator's mode order).
func (e *Estimator) Dims() []int { return e.dims }

// RangeCount is one entry of the estimator's distinct-tuple table: the
// (estimated) number of distinct index tuples of modes [Lo, Hi).
type RangeCount struct {
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Count int64 `json:"count"`
}

// Ranges returns the full distinct-tuple table — every contiguous mode range
// [lo, hi), in (lo, hi) order. These counts are the inputs of the op and
// memory models, so the audit layer records them with each decision.
func (e *Estimator) Ranges() []RangeCount {
	out := make([]RangeCount, 0, e.order*(e.order+1)/2)
	for lo := 0; lo < e.order; lo++ {
		for hi := lo + 1; hi <= e.order; hi++ {
			out = append(out, RangeCount{Lo: lo, Hi: hi, Count: e.counts[rangeID(lo, hi, e.order)]})
		}
	}
	return out
}

// NNZ returns the nonzero count of the underlying tensor.
func (e *Estimator) NNZ() int64 { return e.nnz }

// Exact reports whether the table holds exact counts.
func (e *Estimator) Exact() bool { return e.exact }

// Distinct returns the (estimated) number of distinct index tuples of the
// tensor projected onto modes [lo, hi).
func (e *Estimator) Distinct(lo, hi int) int64 {
	if lo < 0 || hi <= lo || hi > e.order {
		panic("model: Distinct range out of bounds")
	}
	return e.counts[rangeID(lo, hi, e.order)]
}
