// Steady-state allocation regression suite: the kernel-layer rewrite pinned
// the memoized and CSF engines at zero allocations per MTTKRP once warm.
// Measured at workers = 1 so the par helpers run inline — goroutine spawning
// itself allocates and is outside the kernel contract.
package engine_test

import (
	"testing"

	"adatm/internal/accum"
	"adatm/internal/coo"
	"adatm/internal/csf"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/hicoo"
	"adatm/internal/memo"
	"adatm/internal/tensor"
)

// sweepWithInvalidation runs the ALS access pattern once: MTTKRP per mode
// followed by the invalidation of that mode's factor.
func sweepWithInvalidation(e engine.Engine, x *tensor.COO, fs []*dense.Matrix, outs []*dense.Matrix) {
	for mode := 0; mode < x.Order(); mode++ {
		e.MTTKRP(mode, fs, outs[mode])
		e.FactorUpdated(mode)
	}
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	const r = 16
	x := tensor.RandomClustered(4, 12, 800, 0.7, 173)
	fs := factors(x, r, 179)
	outs := make([]*dense.Matrix, x.Order())
	for m := range outs {
		outs[m] = dense.New(x.Dims[m], r)
	}

	memoEng, err := memo.NewWithConfig(x, memo.Balanced(x.Order()), memo.Config{Workers: 1, RetainBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]engine.Engine{
		"memo-retain": memoEng,
		"csf":         csf.NewAllMode(x, 1),
		"csf-one":     csf.NewSingle(x, 1),
	}
	for name, e := range engines {
		// Two warm-up sweeps: the first materializes caches and retained
		// buffers, the second settles any rank-dependent arena growth.
		sweepWithInvalidation(e, x, fs, outs)
		sweepWithInvalidation(e, x, fs, outs)
		allocs := testing.AllocsPerRun(5, func() {
			sweepWithInvalidation(e, x, fs, outs)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state sweep, want 0", name, allocs)
		}
	}
}

// TestSteadyStateZeroAllocPrivatized pins the privatized accumulation path
// at zero allocations per sweep once warm: the pool's backing arena is sized
// on the first call and every later Begin/Acquire/Reduce only re-slices it.
func TestSteadyStateZeroAllocPrivatized(t *testing.T) {
	const r = 16
	x := tensor.RandomClustered(4, 12, 800, 0.7, 173)
	fs := factors(x, r, 179)
	outs := make([]*dense.Matrix, x.Order())
	for m := range outs {
		outs[m] = dense.New(x.Dims[m], r)
	}

	acfg := accum.Config{Strategy: accum.Privatize, Workers: 1}
	memoEng, err := memo.NewWithConfig(x, memo.Balanced(x.Order()),
		memo.Config{Workers: 1, RetainBuffers: true, Accum: acfg})
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]engine.Engine{
		"coo-priv":   coo.NewWithAccum(x, 1, acfg),
		"hicoo-priv": hicoo.NewWithAccum(x, 1, acfg),
		"memo-priv":  memoEng,
	}
	for name, e := range engines {
		sweepWithInvalidation(e, x, fs, outs) // sizes the privatized pool
		sweepWithInvalidation(e, x, fs, outs)
		allocs := testing.AllocsPerRun(5, func() {
			sweepWithInvalidation(e, x, fs, outs)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state privatized sweep, want 0", name, allocs)
		}
	}
}
