// Scatter-vs-privatize agreement suite: both output-accumulation backends
// must compute the same MTTKRP on every engine that supports them, under
// deliberately high output contention (a tiny mode shared by many nonzeros).
// scripts/ci.sh runs this file under -race, so the privatized reduction and
// the striped scatter are both exercised with the race detector watching.
package engine_test

import (
	"testing"

	"adatm/internal/accum"
	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/hicoo"
	"adatm/internal/memo"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

// accumEngines builds every accum-aware engine with a forced strategy.
func accumEngines(t testing.TB, x *tensor.COO, workers int, s accum.Strategy) map[string]engine.Engine {
	t.Helper()
	cfg := accum.Config{Strategy: s, Workers: workers}
	out := map[string]engine.Engine{
		"coo":   coo.NewWithAccum(x, workers, cfg),
		"hicoo": hicoo.NewWithAccum(x, workers, cfg),
	}
	n := x.Order()
	for name, strat := range map[string]*memo.Strategy{
		"memo-flat":     memo.Flat(n),
		"memo-balanced": memo.Balanced(n),
	} {
		e, err := memo.NewWithConfig(x, strat, memo.Config{Workers: workers, Name: name, Accum: cfg})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = e
	}
	return out
}

// shortModeTensor builds a high-contention workload: mode 0 has only a few
// rows, so every worker's scatter stream hammers the same output lines.
func shortModeTensor(t testing.TB) *tensor.COO {
	t.Helper()
	nnz := 20000
	if testing.Short() {
		nnz = 4000
	}
	return tensor.Generate(tensor.GenSpec{
		Name: "short-mode",
		Dims: []int{8, 256, 256},
		NNZ:  nnz,
		Skew: []float64{0, 0.8, 0.8},
		Seed: 211,
	})
}

// Contract 7: the scatter and privatize backends agree with the reference
// (and hence with each other) on every engine, every mode, and multiple
// worker widths, on a short-mode high-contention tensor.
func TestConformanceAccumAgreement(t *testing.T) {
	x := shortModeTensor(t)
	const r = 16
	fs := factors(x, r, 223)
	want := make([]*dense.Matrix, x.Order())
	for mode := range want {
		want[mode] = ref.MTTKRPSparse(x, mode, fs)
	}
	for _, workers := range []int{1, 4} {
		for _, s := range []accum.Strategy{accum.Scatter, accum.Privatize} {
			for name, e := range accumEngines(t, x, workers, s) {
				for mode := 0; mode < x.Order(); mode++ {
					out := dense.New(x.Dims[mode], r)
					out.Fill(777) // stale garbage must be overwritten by both paths
					if err := e.MTTKRP(mode, fs, out); err != nil {
						t.Fatalf("%s %s workers=%d mode %d: %v", name, s, workers, mode, err)
					}
					if d := out.MaxAbsDiff(want[mode]); d > 1e-8 {
						t.Errorf("%s %s workers=%d mode %d: diff %g", name, s, workers, mode, d)
					}
				}
			}
		}
	}
}

// Contract 7b: repeated privatized MTTKRPs are stable — the pool's epoch
// reuse never leaks a previous call's partials into the next result. The
// tolerance admits reassociation only: engines with dynamic chunk dealing
// (hicoo) distribute nonzeros across private copies differently per run, so
// the per-row sums reassociate; anything beyond ~1e-9 on O(1)-magnitude
// values would mean a partial actually leaked.
func TestConformanceAccumPrivatizeRepeatable(t *testing.T) {
	x := shortModeTensor(t)
	const r = 8
	fs := factors(x, r, 227)
	for name, e := range accumEngines(t, x, 4, accum.Privatize) {
		a := dense.New(x.Dims[0], r)
		b := dense.New(x.Dims[0], r)
		e.MTTKRP(0, fs, a)
		e.MTTKRP(0, fs, b)
		if d := a.MaxAbsDiff(b); d > 1e-9 {
			t.Errorf("%s: repeated privatized MTTKRP differs by %g", name, d)
		}
	}
}

// Contract 7c: interleaving strategies on the *same* engine instance (the
// Auto resolver may pick differently per mode) never corrupts shared state:
// a privatized call followed by a scatter call on another mode still matches
// the reference.
func TestConformanceAccumPerModeMix(t *testing.T) {
	x := shortModeTensor(t)
	const r = 8
	fs := factors(x, r, 229)
	per := []accum.Strategy{accum.Privatize, accum.Scatter, accum.Privatize}
	cfg := accum.Config{PerMode: per, Workers: 4}
	engines := map[string]engine.Engine{
		"coo":   coo.NewWithAccum(x, 4, cfg),
		"hicoo": hicoo.NewWithAccum(x, 4, cfg),
	}
	if e, err := memo.NewWithConfig(x, memo.Flat(x.Order()), memo.Config{Workers: 4, Name: "memo-flat", Accum: cfg}); err != nil {
		t.Fatal(err)
	} else {
		engines["memo-flat"] = e
	}
	for name, e := range engines {
		for mode := 0; mode < x.Order(); mode++ {
			out := dense.New(x.Dims[mode], r)
			if err := e.MTTKRP(mode, fs, out); err != nil {
				t.Fatalf("%s mode %d: %v", name, mode, err)
			}
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("%s mode %d (%s): diff %g", name, mode, per[mode], d)
			}
		}
	}
}

// Contract 7d: with an empty-output mode (a row range no nonzero touches),
// the privatized reduction still zeroes untouched rows. Uses a hand-built
// tensor whose mode-0 support skips rows.
func TestConformanceAccumPrivatizeEmptyRows(t *testing.T) {
	x := tensor.NewCOO([]int{6, 4, 4}, 2)
	x.Append([]tensor.Index{1, 2, 3}, 1.5)
	x.Append([]tensor.Index{4, 0, 2}, -2.0)
	fs := factors(x, 3, 233)
	for name, e := range accumEngines(t, x, 2, accum.Privatize) {
		out := dense.New(6, 3)
		out.Fill(777)
		if err := e.MTTKRP(0, fs, out); err != nil {
			t.Fatal(err)
		}
		for _, row := range []int{0, 2, 3, 5} {
			for j := 0; j < 3; j++ {
				if out.At(row, j) != 0 {
					t.Errorf("%s: empty row %d not zeroed: %v", name, row, out.Row(row))
				}
			}
		}
	}
}
