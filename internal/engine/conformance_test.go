// Cross-engine conformance suite: every MTTKRP engine in the repository
// must satisfy the same contract. Per-package tests cover engine-specific
// behaviour; this file is the single place that pins the shared semantics.
package engine_test

import (
	"math/rand"
	"testing"

	"adatm/internal/coo"
	"adatm/internal/csf"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/hicoo"
	"adatm/internal/memo"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

// allEngines builds one engine of every kind over x.
func allEngines(t testing.TB, x *tensor.COO, workers int) map[string]engine.Engine {
	t.Helper()
	out := map[string]engine.Engine{
		"coo":     coo.New(x, workers),
		"csf":     csf.NewAllMode(x, workers),
		"csf-one": csf.NewSingle(x, workers),
		"hicoo":   hicoo.New(x, workers),
	}
	n := x.Order()
	for name, s := range map[string]*memo.Strategy{
		"memo-flat":     memo.Flat(n),
		"memo-2group":   memo.TwoGroup(n, n/2),
		"memo-balanced": memo.Balanced(n),
	} {
		e, err := memo.New(x, s, workers, name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = e
	}
	return out
}

func factors(x *tensor.COO, r int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*dense.Matrix, x.Order())
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], r, rng)
	}
	return fs
}

// Contract 1: every engine computes the same MTTKRP as the independent
// reference, for every mode, at several orders.
func TestConformanceEquivalence(t *testing.T) {
	for _, order := range []int{3, 4, 5} {
		x := tensor.RandomClustered(order, 14, 600, 0.8, int64(order*101))
		fs := factors(x, 7, int64(order*103))
		for name, e := range allEngines(t, x, 3) {
			for mode := 0; mode < order; mode++ {
				out := dense.New(x.Dims[mode], 7)
				e.MTTKRP(mode, fs, out)
				want := ref.MTTKRPSparse(x, mode, fs)
				if d := out.MaxAbsDiff(want); d > 1e-8 {
					t.Errorf("%s order %d mode %d: diff %g", name, order, mode, d)
				}
			}
		}
	}
}

// Contract 1b: rank robustness — the kernel layer's specialized fast paths
// (R = 8, 16, 32) and the generic tail path (R = 17) must agree with the
// reference on a higher-order tensor, for every engine and mode.
func TestConformanceRankSweepOrder5(t *testing.T) {
	const order = 5
	x := tensor.RandomClustered(order, 11, 700, 0.75, 163)
	for _, r := range []int{8, 16, 17, 32} {
		fs := factors(x, r, int64(167+r))
		for name, e := range allEngines(t, x, 3) {
			for mode := 0; mode < order; mode++ {
				out := dense.New(x.Dims[mode], r)
				e.MTTKRP(mode, fs, out)
				want := ref.MTTKRPSparse(x, mode, fs)
				if d := out.MaxAbsDiff(want); d > 1e-8 {
					t.Errorf("%s rank %d mode %d: diff %g", name, r, mode, d)
				}
			}
		}
	}
}

// Contract 2: MTTKRP is repeatable — calling it twice with unchanged
// factors yields identical output (no hidden state corruption). Serial
// execution must be bitwise identical; parallel execution may reassociate
// the floating-point scatter sums of lock-striped engines depending on
// worker timing, so it gets an epsilon far below any real corruption but
// far above accumulation-order jitter.
func TestConformanceRepeatable(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 500, 0.6, 107)
	fs := factors(x, 5, 109)
	for _, workers := range []int{1, 2} {
		tol := 0.0
		if workers > 1 {
			tol = 1e-12
		}
		for name, e := range allEngines(t, x, workers) {
			a := dense.New(x.Dims[1], 5)
			b := dense.New(x.Dims[1], 5)
			e.MTTKRP(1, fs, a)
			e.MTTKRP(1, fs, b)
			if d := a.MaxAbsDiff(b); d > tol {
				t.Errorf("%s workers=%d: repeated MTTKRP differs by %g", name, workers, d)
			}
		}
	}
}

// Contract 3: the full ALS protocol (interleaved updates + invalidations)
// never serves stale values.
func TestConformanceALSProtocol(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 400, 0.9, 113)
	fs := factors(x, 4, 127)
	rng := rand.New(rand.NewSource(131))
	for name, e := range allEngines(t, x, 2) {
		for iter := 0; iter < 2; iter++ {
			for mode := 0; mode < 4; mode++ {
				out := dense.New(x.Dims[mode], 4)
				e.MTTKRP(mode, fs, out)
				want := ref.MTTKRPSparse(x, mode, fs)
				if d := out.MaxAbsDiff(want); d > 1e-8 {
					t.Fatalf("%s iter %d mode %d: stale result, diff %g", name, iter, mode, d)
				}
				fs[mode] = dense.Random(x.Dims[mode], 4, rng)
				e.FactorUpdated(mode)
			}
		}
	}
}

// Contract 4: Stats counters accumulate work and ResetStats clears them;
// names are stable and non-empty.
func TestConformanceStats(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 300, 0.5, 137)
	fs := factors(x, 4, 139)
	for name, e := range allEngines(t, x, 1) {
		if e.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
		out := dense.New(x.Dims[0], 4)
		e.MTTKRP(0, fs, out)
		if e.Stats().HadamardOps <= 0 {
			t.Errorf("%s: no ops recorded", name)
		}
		e.ResetStats()
		if e.Stats().HadamardOps != 0 {
			t.Errorf("%s: ResetStats left %d ops", name, e.Stats().HadamardOps)
		}
	}
}

// Contract 5 (adjoint identity): the inner product ⟨X, ⟦U¹,…,Uᴺ⟧⟩ computed
// as Σ_ij M⁽ⁿ⁾(i,j)·U⁽ⁿ⁾(i,j) must be identical for every mode n — MTTKRP
// against any mode evaluates the same contraction. Catches subtle
// mode-handling asymmetries no single-mode test can see.
func TestConformanceAdjointIdentity(t *testing.T) {
	x := tensor.RandomClustered(5, 9, 400, 0.7, 151)
	fs := factors(x, 6, 157)
	for name, e := range allEngines(t, x, 2) {
		var ref float64
		for mode := 0; mode < 5; mode++ {
			out := dense.New(x.Dims[mode], 6)
			e.MTTKRP(mode, fs, out)
			inner := 0.0
			for i := 0; i < out.Rows; i++ {
				orow := out.Row(i)
				frow := fs[mode].Row(i)
				for j := range orow {
					inner += orow[j] * frow[j]
				}
			}
			if mode == 0 {
				ref = inner
				continue
			}
			if diff := inner - ref; diff > 1e-6*(1+absf(ref)) || diff < -1e-6*(1+absf(ref)) {
				t.Errorf("%s: mode-%d inner product %.10g != mode-0 %.10g", name, mode, inner, ref)
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Contract 6: output buffers are fully overwritten, including rows with no
// corresponding nonzeros.
func TestConformanceOverwrite(t *testing.T) {
	x := tensor.NewCOO([]int{6, 4, 4}, 2)
	x.Append([]tensor.Index{1, 2, 3}, 1.5)
	x.Append([]tensor.Index{4, 0, 2}, -2.0)
	fs := factors(x, 3, 149)
	for name, e := range allEngines(t, x, 1) {
		out := dense.New(6, 3)
		out.Fill(777)
		e.MTTKRP(0, fs, out)
		for _, row := range []int{0, 2, 3, 5} {
			for j := 0; j < 3; j++ {
				if out.At(row, j) != 0 {
					t.Errorf("%s: empty row %d not zeroed: %v", name, row, out.Row(row))
				}
			}
		}
	}
}
