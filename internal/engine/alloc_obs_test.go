package engine_test

import (
	"testing"

	"adatm/internal/audit"
	"adatm/internal/csf"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/memo"
	"adatm/internal/model"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// TestInstrumentedSteadyStateZeroAlloc extends the steady-state pin to the
// observability path: with a live tracer, metrics registry, and the global
// chunk-span hook all enabled, a warm MTTKRP sweep must still allocate
// nothing. Span starts are value types, counter updates are atomics, and
// ring writes reuse preallocated slots — none of it may escape to the heap.
func TestInstrumentedSteadyStateZeroAlloc(t *testing.T) {
	const r = 16
	x := tensor.RandomClustered(4, 12, 800, 0.7, 173)
	fs := factors(x, r, 179)
	outs := make([]*dense.Matrix, x.Order())
	for m := range outs {
		outs[m] = dense.New(x.Dims[m], r)
	}

	tr := obs.NewTracer(1 << 12)
	reg := obs.NewRegistry()
	par.SetChunkTracer(tr)
	defer par.SetChunkTracer(nil)

	// An audit recorder exporting its gauges into the same registry must not
	// disturb the hot path: the decision/reconciliation happens once, outside
	// the sweep, and the gauges it sets are plain registry series.
	rec := audit.NewRecorder(audit.Config{Metrics: reg})
	rec.RecordDecision(audit.NewDecision(model.Select(x, model.Options{Rank: r})))
	rec.Reconcile(audit.Measured{Iters: 1, OpsPerIter: 1000, PeakValueBytes: 1 << 10, IndexBytes: 1 << 10})

	memoEng, err := memo.NewWithConfig(x, memo.Balanced(x.Order()), memo.Config{Workers: 1, RetainBuffers: true, Name: "memo-retain"})
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]engine.Engine{
		"memo-retain": memoEng,
		"csf":         csf.NewAllMode(x, 1),
		"csf-one":     csf.NewSingle(x, 1),
	}
	for name, e := range engines {
		if in, ok := e.(engine.Instrumentable); ok {
			in.Instrument(tr, reg)
		} else {
			t.Fatalf("%s does not implement engine.Instrumentable", name)
		}
		sweepWithInvalidation(e, x, fs, outs)
		sweepWithInvalidation(e, x, fs, outs)
		allocs := testing.AllocsPerRun(5, func() {
			sweepWithInvalidation(e, x, fs, outs)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per instrumented steady-state sweep, want 0", name, allocs)
		}
	}
	if tr.Len() == 0 {
		t.Error("instrumented sweeps emitted no spans")
	}
}
