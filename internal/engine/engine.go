// Package engine defines the interface every MTTKRP kernel in this
// repository implements, plus the operation/memory accounting structure the
// benchmark harness and the cost model share.
//
// CP-ALS is written against this interface so the streaming-COO baseline,
// the CSF (SPLATT-equivalent) baseline, and the memoized semi-sparse engines
// are interchangeable, which is what makes the paper's engine-vs-engine
// comparisons meaningful: everything outside MTTKRP is identical code.
package engine

import (
	"adatm/internal/dense"
)

// Stats aggregates the work and footprint counters of an engine.
//
// HadamardOps counts fused multiply–accumulate operations on length-R rows
// (one unit = one scalar multiply-add), which is the paper's
// machine-independent operation metric. IndexBytes and ValueBytes are the
// engine's auxiliary storage beyond the input tensor; PeakValueBytes tracks
// the maximum simultaneously live intermediate value storage.
type Stats struct {
	HadamardOps    int64
	IndexBytes     int64
	ValueBytes     int64
	PeakValueBytes int64
	SymbolicNS     int64 // one-time preprocessing time, nanoseconds
}

// Engine computes MTTKRP products for a fixed sparse tensor.
type Engine interface {
	// Name identifies the engine in reports ("coo", "csf", "memo-binary", ...).
	Name() string

	// MTTKRP computes M = X_(mode) · ⊙_{i≠mode} factors[i] into out, which
	// must be Dims[mode] × R and is fully overwritten. factors must hold one
	// I_i × R matrix per mode (factors[mode] is ignored).
	MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix)

	// FactorUpdated tells the engine that factors[mode] changed, so any
	// cached intermediate depending on it must be invalidated. Engines
	// without caches treat this as a no-op.
	FactorUpdated(mode int)

	// Stats returns the accumulated counters.
	Stats() Stats

	// ResetStats zeroes the work counters (footprint counters persist).
	ResetStats()
}
