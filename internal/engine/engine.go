// Package engine defines the interface every MTTKRP kernel in this
// repository implements, plus the operation/memory accounting structure the
// benchmark harness and the cost model share.
//
// CP-ALS is written against this interface so the streaming-COO baseline,
// the CSF (SPLATT-equivalent) baseline, and the memoized semi-sparse engines
// are interchangeable, which is what makes the paper's engine-vs-engine
// comparisons meaningful: everything outside MTTKRP is identical code.
package engine

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"adatm/internal/accum"
	"adatm/internal/dense"
	"adatm/internal/obs"
)

// Stats aggregates the work and footprint counters of an engine.
//
// HadamardOps counts fused multiply–accumulate operations on length-R rows
// (one unit = one scalar multiply-add), which is the paper's
// machine-independent operation metric. MTTKRPCalls/MTTKRPNS record how many
// MTTKRP invocations ran and the wall time spent inside them — the counters
// the run-report and experiment harness read instead of wrapping every call
// in an ad-hoc stopwatch. IndexBytes and ValueBytes are the engine's
// auxiliary storage beyond the input tensor; PeakValueBytes tracks the
// maximum simultaneously live intermediate value storage.
type Stats struct {
	HadamardOps    int64
	MTTKRPCalls    int64
	MTTKRPNS       int64 // wall time inside MTTKRP, nanoseconds
	IndexBytes     int64
	ValueBytes     int64
	PeakValueBytes int64
	SymbolicNS     int64 // one-time preprocessing time, nanoseconds
}

// Engine computes MTTKRP products for a fixed sparse tensor.
type Engine interface {
	// Name identifies the engine in reports ("coo", "csf", "memo-binary", ...).
	Name() string

	// MTTKRP computes M = X_(mode) · ⊙_{i≠mode} factors[i] into out, which
	// must be Dims[mode] × R and is fully overwritten. factors must hold one
	// I_i × R matrix per mode (factors[mode] is ignored). Malformed inputs —
	// mode out of range, wrong factor arity or shapes, an output that is not
	// Dims[mode] × R — return an error without touching out, so a server
	// embedding the library cannot be crashed by a bad request.
	MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error

	// FactorUpdated tells the engine that factors[mode] changed, so any
	// cached intermediate depending on it must be invalidated. Engines
	// without caches treat this as a no-op.
	FactorUpdated(mode int)

	// Stats returns the accumulated counters.
	Stats() Stats

	// ResetStats zeroes the work counters (footprint counters persist).
	ResetStats()
}

// Instrumentable is implemented by engines that can attach to the
// observability layer: registering their counters with a metrics registry
// and (where they have interesting internal structure, like the memoized
// strategy tree) emitting spans into a tracer. Either argument may be nil;
// engines must treat instrumentation as strictly additive — a nil tracer or
// registry leaves the hot path at a pointer test.
type Instrumentable interface {
	Instrument(tr *obs.Tracer, reg *obs.Registry)
}

// RegisterCommonMetrics registers the work counters every engine shares —
// Hadamard op units, MTTKRP call count, and cumulative in-kernel seconds —
// as callback metrics reading the engine's atomic Counters. Labelled by
// engine name so several engines can coexist in one registry. Safe to call
// with a nil registry.
func RegisterCommonMetrics(reg *obs.Registry, name string, c *Counters) {
	if reg == nil {
		return
	}
	l := obs.Labels{"engine": name}
	reg.CounterFunc("adatm_engine_hadamard_ops_total",
		"Fused multiply-add op units executed by the MTTKRP kernel.", l,
		func() float64 { return float64(c.ops.Load()) })
	reg.CounterFunc("adatm_engine_mttkrp_calls_total",
		"Completed MTTKRP kernel invocations.", l,
		func() float64 { return float64(c.calls.Load()) })
	reg.CounterFunc("adatm_engine_mttkrp_seconds_total",
		"Wall-clock seconds spent inside the MTTKRP kernel.", l,
		func() float64 { return float64(c.ns.Load()) / 1e9 })
}

// RegisterAccumMetrics registers the accumulation-layer metrics every
// scatter engine shares: the per-mode resolved strategy (encoded as the
// accum.Strategy value — 0 auto/unresolved, 1 scatter, 2 privatize),
// cumulative seconds inside the privatized parallel reduction, and the
// privatized pool footprint. Safe to call with a nil registry.
func RegisterAccumMetrics(reg *obs.Registry, name string, nmodes int, res *accum.Resolver, pool *accum.Pool) {
	if reg == nil {
		return
	}
	for m := 0; m < nmodes; m++ {
		mode := m
		reg.GaugeFunc("adatm_accum_strategy",
			"Resolved output-accumulation backend per target mode (0 auto/unresolved, 1 scatter, 2 privatize).",
			obs.Labels{"engine": name, "mode": strconv.Itoa(mode)},
			func() float64 { return float64(res.Resolved(mode)) })
	}
	l := obs.Labels{"engine": name}
	reg.CounterFunc("adatm_accum_reduce_seconds",
		"Wall-clock seconds spent folding privatized partials into the MTTKRP output.", l,
		func() float64 { return float64(pool.ReduceNS()) / 1e9 })
	reg.GaugeFunc("adatm_accum_pool_bytes",
		"Backing bytes of the per-worker privatized output copies.", l,
		func() float64 { return float64(pool.Bytes()) })
}

// CheckInputs validates the MTTKRP contract shared by every engine against
// the tensor's dimensions: mode in range, one factor per mode (the target
// mode's entry may be nil — it is never read), every non-target factor
// shaped at least Dims[m] × R, and out shaped exactly Dims[mode] × R with
// R >= 1. The happy path performs no allocation, so engines can call it on
// every kernel entry without disturbing the steady-state zero-alloc
// guarantee.
func CheckInputs(dims []int, mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if mode < 0 || mode >= len(dims) {
		return fmt.Errorf("engine: mode %d out of range for order-%d tensor", mode, len(dims))
	}
	if out == nil {
		return fmt.Errorf("engine: nil MTTKRP output matrix")
	}
	if out.Rows != dims[mode] {
		return fmt.Errorf("engine: MTTKRP output has %d rows, want Dims[%d] = %d", out.Rows, mode, dims[mode])
	}
	r := out.Cols
	if r < 1 {
		return fmt.Errorf("engine: MTTKRP output has %d columns, want rank >= 1", r)
	}
	if len(factors) != len(dims) {
		return fmt.Errorf("engine: %d factor matrices for order-%d tensor", len(factors), len(dims))
	}
	for m, f := range factors {
		if m == mode {
			continue
		}
		if f == nil {
			return fmt.Errorf("engine: factor %d is nil", m)
		}
		if f.Rows < dims[m] || f.Cols != r {
			return fmt.Errorf("engine: factor %d is %dx%d, want at least %dx%d", m, f.Rows, f.Cols, dims[m], r)
		}
	}
	return nil
}

// Counters is the atomic work accumulator every engine embeds: Hadamard op
// units plus the MTTKRP call count and wall time. AddOps is safe to call
// from worker goroutines; Observe is called once per MTTKRP from the
// single-threaded kernel entry.
type Counters struct {
	ops   atomic.Int64
	calls atomic.Int64
	ns    atomic.Int64
}

// AddOps accumulates Hadamard op units.
func (c *Counters) AddOps(n int64) { c.ops.Add(n) }

// Observe records one completed MTTKRP call that started at the given time.
func (c *Counters) Observe(start time.Time) {
	c.calls.Add(1)
	c.ns.Add(time.Since(start).Nanoseconds())
}

// Fill copies the work counters into s (footprint fields are untouched).
func (c *Counters) Fill(s *Stats) {
	s.HadamardOps = c.ops.Load()
	s.MTTKRPCalls = c.calls.Load()
	s.MTTKRPNS = c.ns.Load()
}

// Reset zeroes the work counters.
func (c *Counters) Reset() {
	c.ops.Store(0)
	c.calls.Store(0)
	c.ns.Store(0)
}
