// Scatter-vs-privatize MTTKRP benchmark (make bench-mttkrp -> BENCH_6.json).
// Two shapes bracket the accumulation trade-off:
//
//   - short: a 16-row mode shared by every nonzero — the scatter path pays a
//     striped lock round-trip per nonzero on perpetually hot rows, while the
//     privatized path streams lock-free and folds 16×R doubles at the end.
//   - long: a 256Ki-row mode — scatter locks are uncontended and cold, while
//     privatization must zero and reduce W full output copies.
//
// The "auto" variants show what the model resolves to; at GOMAXPROCS >= 4 it
// should privatize the short mode and keep scatter on the long one.
package engine_test

import (
	"fmt"
	"testing"

	"adatm/internal/accum"
	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/hicoo"
	"adatm/internal/memo"
	"adatm/internal/tensor"
)

type accumBenchShape struct {
	name string
	spec tensor.GenSpec
}

var accumBenchShapes = []accumBenchShape{
	{"short16", tensor.GenSpec{
		Name: "short16",
		Dims: []int{16, 2048, 2048},
		NNZ:  200000,
		Skew: []float64{0, 0.9, 0.9},
		Seed: 251,
	}},
	{"long256k", tensor.GenSpec{
		Name: "long256k",
		Dims: []int{1 << 18, 64, 64},
		NNZ:  200000,
		Skew: []float64{0.4, 0, 0},
		Seed: 257,
	}},
}

func accumBenchEngines(b *testing.B, x *tensor.COO, s accum.Strategy) []engine.Engine {
	b.Helper()
	cfg := accum.Config{Strategy: s}
	memoEng, err := memo.NewWithConfig(x, memo.Flat(x.Order()),
		memo.Config{Name: "memo-flat", RetainBuffers: true, Accum: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return []engine.Engine{
		coo.NewWithAccum(x, 0, cfg),
		hicoo.NewWithAccum(x, 0, cfg),
		memoEng,
	}
}

// BenchmarkMTTKRPAccum times mode-0 MTTKRP (the mode whose accumulation the
// shapes are built to stress) per shape x engine x strategy.
func BenchmarkMTTKRPAccum(b *testing.B) {
	const r = 16
	for _, sh := range accumBenchShapes {
		x := tensor.Generate(sh.spec)
		fs := factors(x, r, sh.spec.Seed+1)
		for _, s := range []accum.Strategy{accum.Scatter, accum.Privatize, accum.Auto} {
			for _, e := range accumBenchEngines(b, x, s) {
				name := fmt.Sprintf("%s/%s/%s", sh.name, e.Name(), s)
				b.Run(name, func(b *testing.B) {
					out := dense.New(x.Dims[0], r)
					if err := e.MTTKRP(0, fs, out); err != nil { // warm: pools, arenas, memo tree
						b.Fatal(err)
					}
					b.SetBytes(int64(x.NNZ()) * int64(x.Order()) * 8)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.MTTKRP(0, fs, out)
					}
				})
			}
		}
	}
}
