package ref

import (
	"math/rand"
	"testing"

	"adatm/internal/dense"
	"adatm/internal/tensor"
)

func TestKhatriRao(t *testing.T) {
	a := dense.FromRows([][]float64{{1, 2}, {3, 4}})
	b := dense.FromRows([][]float64{{5, 6}, {7, 8}, {9, 10}})
	kr := KhatriRao(a, b)
	if kr.Rows != 6 || kr.Cols != 2 {
		t.Fatalf("shape %dx%d", kr.Rows, kr.Cols)
	}
	// Row (i·3 + j) = a.Row(i) .* b.Row(j).
	if kr.At(0, 0) != 5 || kr.At(0, 1) != 12 {
		t.Errorf("row 0 = %v", kr.Row(0))
	}
	if kr.At(5, 0) != 27 || kr.At(5, 1) != 40 {
		t.Errorf("row 5 = %v", kr.Row(5))
	}
}

func TestMatricizeInverseConsistency(t *testing.T) {
	// Matricize each mode of a known small tensor and verify elements land
	// where the Kolda–Bader mapping says.
	x := tensor.NewCOO([]int{2, 3, 2}, 2)
	x.Append([]tensor.Index{1, 2, 0}, 5)
	x.Append([]tensor.Index{0, 1, 1}, 7)
	data, err := x.ToDense(100)
	if err != nil {
		t.Fatal(err)
	}
	// Mode 0: col = j + k·3 for element (i, j, k).
	m0 := Matricize(data, x.Dims, 0)
	if m0.At(1, 2+0*3) != 5 || m0.At(0, 1+1*3) != 7 {
		t.Errorf("mode-0 matricization wrong")
	}
	// Mode 1: col = i + k·2.
	m1 := Matricize(data, x.Dims, 1)
	if m1.At(2, 1+0*2) != 5 || m1.At(1, 0+1*2) != 7 {
		t.Errorf("mode-1 matricization wrong")
	}
	// Mode 2: col = i + j·2.
	m2 := Matricize(data, x.Dims, 2)
	if m2.At(0, 1+2*2) != 5 || m2.At(1, 0+1*2) != 7 {
		t.Errorf("mode-2 matricization wrong")
	}
}

// The two independent references must agree with each other.
func TestDenseAndSparseReferencesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, order := range []int{3, 4, 5} {
		x := tensor.RandomUniform(order, 5, 60, int64(order))
		fs := make([]*dense.Matrix, order)
		for m := range fs {
			fs[m] = dense.Random(x.Dims[m], 4, rng)
		}
		for mode := 0; mode < order; mode++ {
			a := MTTKRP(x, mode, fs)
			b := MTTKRPSparse(x, mode, fs)
			if d := a.MaxAbsDiff(b); d > 1e-9 {
				t.Errorf("order %d mode %d: references disagree by %g", order, mode, d)
			}
		}
	}
}
