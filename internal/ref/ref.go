// Package ref holds deliberately naive reference implementations used only
// by tests and model-validation experiments. Correctness over speed: the
// MTTKRP here is computed through the explicit matricization and Khatri-Rao
// product definitions, sharing no code with the optimized engines.
package ref

import (
	"adatm/internal/dense"
	"adatm/internal/tensor"
)

// KhatriRao computes the column-wise Kronecker product A ⊙ B
// ((I·J) × R for A: I×R, B: J×R).
func KhatriRao(a, b *dense.Matrix) *dense.Matrix {
	if a.Cols != b.Cols {
		panic("ref: KhatriRao column mismatch")
	}
	out := dense.New(a.Rows*b.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			row := out.Row(i*b.Rows + j)
			ar := a.Row(i)
			br := b.Row(j)
			for c := range row {
				row[c] = ar[c] * br[c]
			}
		}
	}
	return out
}

// Matricize returns the mode-n matricization X_(n) of a dense tensor laid
// out with the *last mode fastest* (the layout tensor.COO.ToDense emits).
// Columns follow the standard Kolda–Bader ordering: the remaining modes in
// increasing order, with the first remaining mode varying fastest.
func Matricize(data []float64, dims []int, mode int) *dense.Matrix {
	n := len(dims)
	rows := dims[mode]
	cols := 1
	for m, d := range dims {
		if m != mode {
			cols *= d
		}
	}
	out := dense.New(rows, cols)
	// Strides of the dense layout (last mode fastest).
	strides := make([]int, n)
	s := 1
	for m := n - 1; m >= 0; m-- {
		strides[m] = s
		s *= dims[m]
	}
	// Column index: for remaining modes r1 < r2 < … (excluding mode),
	// col = Σ i_{r_k} · Π_{l<k} dims[r_l] with r1 varying fastest.
	rest := make([]int, 0, n-1)
	for m := 0; m < n; m++ {
		if m != mode {
			rest = append(rest, m)
		}
	}
	idx := make([]int, n)
	var walk func(m int)
	walk = func(m int) {
		if m == n {
			off := 0
			for d := 0; d < n; d++ {
				off += idx[d] * strides[d]
			}
			col := 0
			mult := 1
			for _, rm := range rest {
				col += idx[rm] * mult
				mult *= dims[rm]
			}
			out.Set(idx[mode], col, data[off])
			return
		}
		for i := 0; i < dims[m]; i++ {
			idx[m] = i
			walk(m + 1)
		}
	}
	walk(0)
	return out
}

// MTTKRP computes X_(mode) · (U⁽ᴺ⁾ ⊙ … ⊙ U⁽ᵐᵒᵈᵉ⁺¹⁾ ⊙ U⁽ᵐᵒᵈᵉ⁻¹⁾ ⊙ … ⊙ U⁽¹⁾)
// through the explicit dense matricization and Khatri-Rao product. Only
// usable for tiny tensors (the dense expansion is capped at 1<<22 elements).
func MTTKRP(x *tensor.COO, mode int, factors []*dense.Matrix) *dense.Matrix {
	data, err := x.ToDense(1 << 22)
	if err != nil {
		panic(err)
	}
	xm := Matricize(data, x.Dims, mode)
	// Khatri-Rao over the remaining modes: with the Kolda–Bader column
	// ordering (first remaining mode fastest), the product is
	// U^{r_{last}} ⊙ … ⊙ U^{r_first}.
	rest := make([]int, 0, x.Order()-1)
	for m := 0; m < x.Order(); m++ {
		if m != mode {
			rest = append(rest, m)
		}
	}
	kr := factors[rest[len(rest)-1]]
	for i := len(rest) - 2; i >= 0; i-- {
		kr = KhatriRao(kr, factors[rest[i]])
	}
	return dense.MatMul(xm, kr, nil, 1)
}

// MTTKRPSparse is an independent sequential sparse MTTKRP over the nonzeros,
// usable at any size (used to cross-check engines on tensors too large to
// densify).
func MTTKRPSparse(x *tensor.COO, mode int, factors []*dense.Matrix) *dense.Matrix {
	r := factors[mode].Cols
	out := dense.New(x.Dims[mode], r)
	row := make([]float64, r)
	for k := 0; k < x.NNZ(); k++ {
		v := x.Vals[k]
		for j := range row {
			row[j] = v
		}
		for m := 0; m < x.Order(); m++ {
			if m == mode {
				continue
			}
			f := factors[m].Row(int(x.Inds[m][k]))
			for j := range row {
				row[j] *= f[j]
			}
		}
		o := out.Row(int(x.Inds[mode][k]))
		for j := range row {
			o[j] += row[j]
		}
	}
	return out
}
