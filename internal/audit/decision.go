// Package audit is the model-audit layer: it records every model-driven
// selection decision (the scored candidates, their predictions, and why the
// winner won) and reconciles it against the measured counters of the
// finished run. The paper validates its cost model offline (predicted vs
// measured op counts, top-1 strategy agreement); this package turns that
// validation into an always-on observability surface — Prometheus series,
// a /plan debug endpoint, structured log events, and a JSONL decision
// ledger — so a mis-calibrated model or a drifting sketch estimate is
// visible in production instead of silently degrading strategy choices.
package audit

import (
	"time"

	"adatm/internal/model"
)

// Selection reasons recorded in Decision.Reason.
const (
	// ReasonOpOptimal: the chosen candidate had the lowest predicted op
	// count among budget-feasible candidates.
	ReasonOpOptimal = "op-optimal"
	// ReasonTimeOptimal: the chosen candidate had the lowest roofline
	// time-model forecast among budget-feasible candidates.
	ReasonTimeOptimal = "time-optimal"
	// ReasonBudgetFallback: no candidate fit the memory budget; the
	// smallest-footprint candidate was forced instead of the optimal one.
	ReasonBudgetFallback = "budget-fallback"
)

// CandidateRecord is one scored strategy in a Decision — the model's full
// forecast for it, flattened to plain data so the ledger is self-contained
// without the strategy-tree types.
type CandidateRecord struct {
	Name string `json:"name"`
	// Tree is the strategy's rendered shape, e.g. "((0 1) (2 3))".
	Tree               string `json:"tree"`
	PredOps            int64  `json:"pred_ops"`
	PredIndexBytes     int64  `json:"pred_index_bytes"`
	PredPeakValueBytes int64  `json:"pred_peak_value_bytes"`
	// PredTimeNS is the roofline time-model forecast; zero unless the
	// selection ranked by predicted time.
	PredTimeNS int64 `json:"pred_time_ns,omitempty"`
	Feasible   bool  `json:"feasible"`
}

// RangeCount mirrors model.RangeCount: the (estimated) distinct-tuple count
// of the contiguous mode range [Lo, Hi) — one input of the cost model.
type RangeCount struct {
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Count int64 `json:"count"`
}

// AccumRecord is one per-mode output-accumulation decision: the chosen
// backend plus the model's evidence (both forecasts, the privatized
// footprint, and whether it fit the budget slack).
type AccumRecord struct {
	Mode            int     `json:"mode"`
	Rows            int     `json:"rows"`
	Strategy        string  `json:"strategy"`
	PredScatterNS   float64 `json:"pred_scatter_ns"`
	PredPrivatizeNS float64 `json:"pred_privatize_ns"`
	FootprintBytes  int64   `json:"footprint_bytes"`
	Feasible        bool    `json:"feasible"`
}

// Decision is one model-driven selection, captured at Select time: the
// tensor shape, the budget, every scored candidate with its predictions,
// the sketch-estimated distinct-tuple table the predictions came from, and
// the chosen strategy with the reason it won.
type Decision struct {
	Time   time.Time `json:"time"`
	Dims   []int     `json:"dims"`
	NNZ    int64     `json:"nnz"`
	Rank   int       `json:"rank"`
	Budget int64     `json:"budget_bytes"`
	// Kind distinguishes decision flavors in the ledger: "" (the default)
	// is a format/strategy selection, "partition" is a distributed-layer
	// partitioner selection (see partition.go).
	Kind string `json:"decision_kind,omitempty"`
	// Procs and Transport describe the distributed run a partition decision
	// was made for.
	Procs     int    `json:"procs,omitempty"`
	Transport string `json:"transport,omitempty"`
	// Partition holds the scored partitioner candidates of a partition
	// decision (Candidates stays empty for those).
	Partition []PartitionCandidateRecord `json:"partition_candidates,omitempty"`
	// Exact reports the distinct counts were computed exactly rather than
	// sketched (model-validation runs).
	Exact bool `json:"exact_counts,omitempty"`
	// ByTime reports the candidates were ranked by the roofline time model
	// rather than raw op counts.
	ByTime     bool              `json:"by_time,omitempty"`
	Candidates []CandidateRecord `json:"candidates"`
	Chosen     string            `json:"chosen"`
	Reason     string            `json:"reason"`
	// Ranges is the estimator's distinct-tuple table (sketch-estimated
	// unless Exact), recorded so estimate drift is diagnosable after the
	// fact.
	Ranges []RangeCount `json:"distinct_ranges,omitempty"`
	// Workers is the parallel width the accumulation table assumed.
	Workers int `json:"workers,omitempty"`
	// Accum is the per-mode output-accumulation decision table.
	Accum []AccumRecord `json:"accum,omitempty"`
}

// NewDecision flattens a scored model.Plan into a Decision. The timestamp
// is the call time.
func NewDecision(p *model.Plan) *Decision {
	d := &Decision{
		Time:   time.Now(),
		Dims:   append([]int(nil), p.Dims...),
		NNZ:    p.NNZ,
		Rank:   p.Rank,
		Budget: p.Budget,
		Exact:  p.Exact,
		ByTime: p.ByTime,
		Chosen: p.Chosen.Name,
		Reason: p.Reason(),
	}
	d.Candidates = make([]CandidateRecord, len(p.Candidates))
	for i, c := range p.Candidates {
		d.Candidates[i] = CandidateRecord{
			Name:               c.Name,
			Tree:               c.Strategy.String(),
			PredOps:            c.Pred.Ops,
			PredIndexBytes:     c.Pred.IndexBytes,
			PredPeakValueBytes: c.Pred.PeakValueBytes,
			PredTimeNS:         c.PredTime.Nanoseconds(),
			Feasible:           c.Feasible,
		}
	}
	d.Ranges = make([]RangeCount, len(p.Ranges))
	for i, r := range p.Ranges {
		d.Ranges[i] = RangeCount{Lo: r.Lo, Hi: r.Hi, Count: r.Count}
	}
	d.Workers = p.Workers
	d.Accum = make([]AccumRecord, len(p.Accum))
	for i, a := range p.Accum {
		d.Accum[i] = AccumRecord{
			Mode:            a.Mode,
			Rows:            a.Rows,
			Strategy:        a.Strategy.String(),
			PredScatterNS:   a.ScatterNS,
			PredPrivatizeNS: a.PrivatizeNS,
			FootprintBytes:  a.FootprintBytes,
			Feasible:        a.Feasible,
		}
	}
	return d
}

// Candidate returns the named candidate record, or nil.
func (d *Decision) Candidate(name string) *CandidateRecord {
	for i := range d.Candidates {
		if d.Candidates[i].Name == name {
			return &d.Candidates[i]
		}
	}
	return nil
}
