package audit

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"adatm/internal/model"
	"adatm/internal/tensor"
)

func TestRecordPartitionLedgerAndHooks(t *testing.T) {
	x := tensor.RandomClustered(3, 24, 1200, 0.8, 640)
	plan, err := model.SelectPartition(x, model.PartitionOptions{Procs: 4, Rank: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var ledger, logs bytes.Buffer
	var hook Record
	r := NewRecorder(Config{
		Logger:   slog.New(slog.NewJSONHandler(&logs, nil)),
		Ledger:   &ledger,
		OnUpdate: func(rec Record) { hook = rec },
	})

	d := NewPartitionDecision(plan, "tcp")
	if d.Kind != "partition" || d.Chosen != plan.Chosen.Name || len(d.Partition) != len(plan.Candidates) {
		t.Fatalf("bad partition decision: %+v", d)
	}
	if c := d.PartitionCandidate(d.Chosen); c == nil || c.VolumeBytes != plan.Chosen.Comm.VolumeBytes(plan.Rank) {
		t.Fatalf("chosen candidate record missing or wrong: %+v", c)
	}
	r.RecordPartition(d)

	// The ledger line must validate and carry the dist.partition event.
	n, err := ValidateLedger(bytes.NewReader(ledger.Bytes()))
	if err != nil || n != 1 {
		t.Fatalf("ledger invalid: n=%d err=%v\n%s", n, err, ledger.String())
	}
	if !strings.Contains(ledger.String(), `"kind":"dist.partition"`) {
		t.Errorf("ledger record lacks the dist.partition event:\n%s", ledger.String())
	}
	if !strings.Contains(logs.String(), "run.dist.partition") {
		t.Errorf("no structured log event emitted:\n%s", logs.String())
	}
	if hook.Decision != d || hook.Event == nil || hook.Event.Kind != EventPartition {
		t.Errorf("OnUpdate hook record wrong: %+v", hook)
	}

	// RecordPartition must not disturb the pending format decision:
	// Reconcile still returns nil because none was recorded.
	if rep := r.Reconcile(Measured{Iters: 1}); rep != nil {
		t.Errorf("partition decision leaked into reconciliation: %+v", rep)
	}

	// Nil receiver and nil decision are no-ops.
	var nilRec *Recorder
	nilRec.RecordPartition(d)
	r.RecordPartition(nil)
}
