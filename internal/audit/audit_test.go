package audit

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"

	"adatm/internal/model"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// twoCandidates builds a minimal decision: A chosen at 100 predicted ops,
// B runner-up at 120, both feasible under an optional budget.
func twoCandidates(budget int64) *Decision {
	return &Decision{
		Dims: []int{10, 10, 10}, NNZ: 500, Rank: 8, Budget: budget,
		Candidates: []CandidateRecord{
			{Name: "A", Tree: "(0 [1-2])", PredOps: 100, PredIndexBytes: 1000, PredPeakValueBytes: 500, Feasible: true},
			{Name: "B", Tree: "([0-1] 2)", PredOps: 120, PredIndexBytes: 800, PredPeakValueBytes: 400, Feasible: true},
		},
		Chosen: "A", Reason: ReasonOpOptimal,
	}
}

func TestNewDecisionFromPlan(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 800, 0.6, 41)
	plan := model.Select(x, model.Options{Rank: 8})
	d := NewDecision(plan)
	if d.Rank != 8 || d.NNZ != int64(x.NNZ()) || len(d.Dims) != 4 {
		t.Errorf("decision header = %+v", d)
	}
	if d.Chosen != plan.Chosen.Name || d.Reason != ReasonOpOptimal {
		t.Errorf("chosen=%q reason=%q, plan chose %q", d.Chosen, d.Reason, plan.Chosen.Name)
	}
	if len(d.Candidates) != len(plan.Candidates) {
		t.Fatalf("%d candidates, plan had %d", len(d.Candidates), len(plan.Candidates))
	}
	c := d.Candidate(d.Chosen)
	if c == nil || c.PredOps != plan.Chosen.Pred.Ops || c.Tree == "" {
		t.Errorf("chosen record = %+v", c)
	}
	if len(d.Ranges) == 0 {
		t.Error("decision lost the estimator's distinct-tuple table")
	}
	if d.Candidate("nonexistent") != nil {
		t.Error("Candidate(nonexistent) != nil")
	}

	// Budget-forced fallback must be recorded as such.
	forced := model.Select(x, model.Options{Rank: 8, Budget: 1})
	fd := NewDecision(forced)
	if fd.Reason != ReasonBudgetFallback {
		t.Errorf("tiny budget: reason = %q, want %q", fd.Reason, ReasonBudgetFallback)
	}
}

func TestReconcileAgreement(t *testing.T) {
	d := twoCandidates(0)
	rep := Reconcile(d, Measured{Iters: 3, OpsPerIter: 100, PeakValueBytes: 500, IndexBytes: 1000}, 0)
	if rep == nil {
		t.Fatal("nil report")
	}
	q, ok := rep.Quantity(QOpsPerIter)
	if !ok || q.RelErr != 0 {
		t.Errorf("ops quantity = %+v", q)
	}
	if !rep.Top1Agreement || rep.MeasuredChoice != "A" {
		t.Errorf("agreement=%v choice=%q, want true/A", rep.Top1Agreement, rep.MeasuredChoice)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", rep.Warnings)
	}
	if _, ok := rep.Quantity(QMTTKRPSeconds); ok {
		t.Error("time quantity present without a time prediction")
	}
}

// When the chosen candidate's measured cost overtakes the runner-up's
// prediction, the substitution re-rank must flip the verdict.
func TestReconcileTop1Flip(t *testing.T) {
	d := twoCandidates(0)
	rep := Reconcile(d, Measured{Iters: 3, OpsPerIter: 150, PeakValueBytes: 500, IndexBytes: 1000}, 0)
	if rep.Top1Agreement || rep.MeasuredChoice != "B" {
		t.Errorf("agreement=%v choice=%q, want false/B", rep.Top1Agreement, rep.MeasuredChoice)
	}
	// rel err = (100-150)/150: the model under-predicted by a third.
	q, _ := rep.Quantity(QOpsPerIter)
	if math.Abs(q.RelErr-(-1.0/3)) > 1e-12 {
		t.Errorf("rel err = %v", q.RelErr)
	}
	// |−33%| exceeds the default 25% threshold.
	if len(rep.Warnings) == 0 || !strings.Contains(rep.Warnings[0], QOpsPerIter) {
		t.Errorf("warnings = %v", rep.Warnings)
	}
}

// A measured footprint that blows the budget makes the chosen candidate
// infeasible under substitution even if its measured ops stay lowest.
func TestReconcileMeasuredFootprintInfeasible(t *testing.T) {
	d := twoCandidates(1500)
	rep := Reconcile(d, Measured{Iters: 3, OpsPerIter: 100, PeakValueBytes: 5000, IndexBytes: 1000}, 0)
	if rep.Top1Agreement || rep.MeasuredChoice != "B" {
		t.Errorf("agreement=%v choice=%q, want false/B (measured footprint 6000 > budget 1500)",
			rep.Top1Agreement, rep.MeasuredChoice)
	}
}

func TestReconcileDegenerateMeasurement(t *testing.T) {
	d := twoCandidates(0)
	rep := Reconcile(d, Measured{Iters: 1}, 0)
	for _, q := range rep.Quantities {
		if math.IsNaN(q.RelErr) || math.IsInf(q.RelErr, 0) {
			t.Errorf("%s: non-finite rel err %v", q.Name, q.RelErr)
		}
	}
	q, _ := rep.Quantity(QOpsPerIter)
	if q.RelErr != 1 {
		t.Errorf("zero measurement, positive prediction: rel err = %v, want +1", q.RelErr)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "measured 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("no degenerate-measurement warning: %v", rep.Warnings)
	}
}

func TestReconcileNilAndMissing(t *testing.T) {
	if Reconcile(nil, Measured{}, 0) != nil {
		t.Error("nil decision must reconcile to nil")
	}
	if ReconcileCandidate(twoCandidates(0), "nope", Measured{}, 0) != nil {
		t.Error("missing candidate must reconcile to nil")
	}
}

func TestReportString(t *testing.T) {
	d := twoCandidates(0)
	rep := Reconcile(d, Measured{Iters: 3, OpsPerIter: 110, PeakValueBytes: 500, IndexBytes: 1000}, 0)
	s := rep.String()
	for _, frag := range []string{"candidate=A", QOpsPerIter, "top-1: model agrees", "rel err"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report table missing %q:\n%s", frag, s)
		}
	}
	flip := Reconcile(d, Measured{Iters: 3, OpsPerIter: 200, PeakValueBytes: 500, IndexBytes: 1000}, 0)
	if !strings.Contains(flip.String(), "DISAGREES") {
		t.Errorf("flip table missing DISAGREES:\n%s", flip.String())
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	d := twoCandidates(0)
	rep := Reconcile(d, Measured{Iters: 3, OpsPerIter: 100, PeakValueBytes: 500, IndexBytes: 1000}, 0)
	if err := l.Append(Record{Decision: d}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Decision: d, Report: rep}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateLedger(bytes.NewReader(buf.Bytes()))
	if n != 2 || err != nil {
		t.Errorf("ValidateLedger = %d, %v; want 2, nil", n, err)
	}

	// Malformed and decision-less lines must be rejected with their line number.
	if _, err := ValidateLedger(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ValidateLedger(strings.NewReader("{\"report\":null}\n")); err == nil {
		t.Error("decision-less record accepted")
	}
	if n, err := ValidateLedger(strings.NewReader("\n\n")); n != 0 || err != nil {
		t.Errorf("blank ledger = %d, %v", n, err)
	}
	if NewLedger(nil) != nil {
		t.Error("NewLedger(nil) != nil")
	}
	var nilLedger *Ledger
	if err := nilLedger.Append(Record{}); err != nil {
		t.Errorf("nil ledger Append: %v", err)
	}
}

func TestRecorderFanOut(t *testing.T) {
	var logBuf, ledgerBuf bytes.Buffer
	reg := obs.NewRegistry()
	var updates []Record
	rec := NewRecorder(Config{
		Logger:  slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Ledger:  &ledgerBuf,
		Metrics: reg,
		OnUpdate: func(r Record) {
			updates = append(updates, r)
		},
	})

	d := twoCandidates(0)
	rec.RecordDecision(d)
	rep := rec.Reconcile(Measured{Iters: 3, OpsPerIter: 110, PeakValueBytes: 600, IndexBytes: 1000})
	if rep == nil {
		t.Fatal("Reconcile returned nil with a decision recorded")
	}

	latest := rec.Latest()
	if latest.Decision != d || latest.Report != rep {
		t.Error("Latest does not carry the decision and report")
	}
	if len(updates) != 2 || updates[0].Report != nil || updates[1].Report == nil {
		t.Errorf("OnUpdate sequence wrong: %d updates", len(updates))
	}

	logs := logBuf.String()
	for _, event := range []string{"model.selection", "model.reconciliation"} {
		if !strings.Contains(logs, event) {
			t.Errorf("log missing %s event:\n%s", event, logs)
		}
	}
	if strings.Contains(logs, "model.budget_fallback") {
		t.Error("unexpected budget_fallback event for an op-optimal decision")
	}

	var expo strings.Builder
	if _, err := reg.WriteTo(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	for _, series := range []string{
		`adatm_model_predicted_ops{strategy="A"} 100`,
		`adatm_model_measured_ops{strategy="A"} 110`,
		`adatm_model_ops_relative_error{strategy="A"}`,
		`adatm_model_predicted_peak_bytes{strategy="A"} 500`,
		`adatm_model_measured_peak_bytes{strategy="A"} 600`,
		`adatm_model_top1_agreement{strategy="A"} 1`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s:\n%s", series, out)
		}
	}

	if n, err := ValidateLedger(bytes.NewReader(ledgerBuf.Bytes())); n != 1 || err != nil {
		t.Errorf("ledger after reconcile = %d, %v; want 1, nil", n, err)
	}
}

func TestRecorderBudgetFallbackAndWarnEvents(t *testing.T) {
	var logBuf bytes.Buffer
	rec := NewRecorder(Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	d := twoCandidates(0)
	d.Reason = ReasonBudgetFallback
	rec.RecordDecision(d)
	if !strings.Contains(logBuf.String(), "model.budget_fallback") {
		t.Errorf("no budget_fallback event:\n%s", logBuf.String())
	}
	logBuf.Reset()
	rec.Reconcile(Measured{Iters: 1, OpsPerIter: 300, PeakValueBytes: 500, IndexBytes: 1000})
	if !strings.Contains(logBuf.String(), "model.prediction_error") {
		t.Errorf("no prediction_error warning for a 3x miss:\n%s", logBuf.String())
	}
}

func TestRecorderNoDecision(t *testing.T) {
	rec := NewRecorder(Config{})
	if rec.Reconcile(Measured{Iters: 1}) != nil {
		t.Error("Reconcile without a decision must return nil")
	}
	if l := rec.Latest(); l.Decision != nil || l.Report != nil {
		t.Errorf("Latest = %+v, want empty", l)
	}
}

// A nil recorder is the uninstrumented path: every method must be a pointer
// test and nothing else — zero allocations.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var rec *Recorder
	d := twoCandidates(0)
	m := Measured{Iters: 3, OpsPerIter: 100}
	allocs := testing.AllocsPerRun(100, func() {
		rec.RecordDecision(d)
		rec.Reconcile(m)
		rec.Latest()
	})
	if allocs != 0 {
		t.Errorf("nil recorder: %v allocs per call set, want 0", allocs)
	}
}

func TestRecordString(t *testing.T) {
	if !strings.Contains(Record{}.String(), "no decision") {
		t.Error("empty record String misses the no-decision notice")
	}
	d := twoCandidates(0)
	rep := Reconcile(d, Measured{Iters: 3, OpsPerIter: 100, PeakValueBytes: 500, IndexBytes: 1000}, 0)
	s := Record{Decision: d, Report: rep}.String()
	for _, frag := range []string{"decision:", "chosen=A", "model audit:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("record String missing %q:\n%s", frag, s)
		}
	}
}

func TestRecordEventLedgerAndValidate(t *testing.T) {
	var ledger bytes.Buffer
	var logs bytes.Buffer
	rec := NewRecorder(Config{Ledger: &ledger, Logger: slog.New(slog.NewTextHandler(&logs, nil))})
	rec.RecordEvent(Event{Kind: "resume", Iter: 7, Path: "ck/ckpt-00000007.json", Fingerprint: "deadbeef"})
	rec.RecordEvent(Event{}) // kindless events are dropped, not written

	n, err := ValidateLedger(bytes.NewReader(ledger.Bytes()))
	if err != nil || n != 1 {
		t.Fatalf("ValidateLedger = %d, %v; ledger: %s", n, err, ledger.String())
	}
	for _, want := range []string{`"kind":"resume"`, `"iter":7`, "deadbeef"} {
		if !strings.Contains(ledger.String(), want) {
			t.Errorf("ledger missing %s: %s", want, ledger.String())
		}
	}
	if !strings.Contains(logs.String(), "run.resume") {
		t.Errorf("log missing run.resume: %s", logs.String())
	}

	// A mixed ledger (decision line + event line) validates; a kindless
	// event line does not.
	mixed := ledger.String() + "\n" + `{"decision":{"chosen":"A"}}` + "\n"
	if n, err := ValidateLedger(strings.NewReader(mixed)); err != nil || n != 2 {
		t.Errorf("mixed ledger = %d, %v", n, err)
	}
	if _, err := ValidateLedger(strings.NewReader(`{"event":{"iter":3}}`)); err == nil {
		t.Error("kindless event accepted")
	}
}

func TestEventRecordString(t *testing.T) {
	r := Record{Event: &Event{Kind: "resume", Iter: 4, Path: "p.json"}}
	s := r.String()
	if !strings.Contains(s, "resume") || !strings.Contains(s, "4") {
		t.Errorf("event record renders as %q", s)
	}
}

// A nil recorder must remain free to use from every path, events included.
func TestNilRecorderEvent(t *testing.T) {
	var rec *Recorder
	rec.RecordEvent(Event{Kind: "resume"})
}
