package audit

import (
	"io"
	"log/slog"
	"sync"

	"adatm/internal/obs"
)

// Config parameterizes a Recorder. Every sink is optional.
type Config struct {
	// Logger receives structured events: selection made, budget fallback
	// taken, reconciliation complete, relative error above threshold.
	Logger *slog.Logger
	// Ledger receives one JSONL record per reconciliation (the decision
	// ledger; typically an -auditfile).
	Ledger io.Writer
	// Metrics receives the adatm_model_* gauges at reconciliation time.
	Metrics *obs.Registry
	// WarnThreshold is the |relative error| that triggers warnings
	// (<= 0 selects DefaultWarnThreshold).
	WarnThreshold float64
	// OnUpdate is invoked (outside the recorder lock) after each decision
	// and each reconciliation with the latest record — the hook the CLI
	// uses to refresh the /plan debug endpoint.
	OnUpdate func(Record)
}

// Recorder is the run-scoped audit hook: the selection path deposits the
// Decision, the run driver deposits the Measured counters at run end, and
// the recorder fans the reconciled Report out to every configured sink.
//
// A nil *Recorder is valid and free: every method no-ops after one pointer
// test, so the uninstrumented path costs nothing.
type Recorder struct {
	cfg    Config
	ledger *Ledger

	mu  sync.Mutex
	dec *Decision
	rep *Report
}

// NewRecorder builds a recorder over the configured sinks.
func NewRecorder(cfg Config) *Recorder {
	if cfg.WarnThreshold <= 0 {
		cfg.WarnThreshold = DefaultWarnThreshold
	}
	return &Recorder{cfg: cfg, ledger: NewLedger(cfg.Ledger)}
}

// RecordDecision stores the selection decision and emits the selection
// events. Later decisions replace earlier ones (one recorder serves one
// run at a time; sweeps use the ledger for history).
func (r *Recorder) RecordDecision(d *Decision) {
	if r == nil || d == nil {
		return
	}
	r.mu.Lock()
	r.dec = d
	r.rep = nil
	r.mu.Unlock()

	if lg := r.cfg.Logger; lg != nil {
		chosen := d.Candidate(d.Chosen)
		attrs := []any{
			slog.String("chosen", d.Chosen),
			slog.String("reason", d.Reason),
			slog.Int("candidates", len(d.Candidates)),
			slog.Int("rank", d.Rank),
			slog.Int64("nnz", d.NNZ),
			slog.Int64("budget_bytes", d.Budget),
		}
		if chosen != nil {
			attrs = append(attrs,
				slog.Int64("pred_ops", chosen.PredOps),
				slog.Int64("pred_peak_value_bytes", chosen.PredPeakValueBytes),
				slog.String("tree", chosen.Tree))
		}
		lg.Info("model.selection", attrs...)
		if d.Reason == ReasonBudgetFallback {
			lg.Warn("model.budget_fallback",
				slog.String("chosen", d.Chosen),
				slog.Int64("budget_bytes", d.Budget))
		}
	}
	if fn := r.cfg.OnUpdate; fn != nil {
		fn(Record{Decision: d})
	}
}

// RecordEvent appends a run-lifecycle event (e.g. a checkpoint resume) to
// the ledger and emits it as a structured log event. Events don't disturb
// the pending decision/report pair.
func (r *Recorder) RecordEvent(ev Event) {
	if r == nil || ev.Kind == "" {
		return
	}
	if lg := r.cfg.Logger; lg != nil {
		lg.Info("run."+ev.Kind,
			slog.Int("iter", ev.Iter),
			slog.String("path", ev.Path),
			slog.String("fingerprint", ev.Fingerprint),
			slog.String("detail", ev.Detail))
	}
	if err := r.ledger.Append(Record{Event: &ev}); err != nil && r.cfg.Logger != nil {
		r.cfg.Logger.Error("model.ledger_append", slog.String("error", err.Error()))
	}
}

// Reconcile reconciles the stored decision against the run's measurements
// and fans the report out: metrics gauges, log events, the JSONL ledger,
// and the OnUpdate hook. Returns nil when no decision was recorded (e.g. a
// non-adaptive engine ran).
func (r *Recorder) Reconcile(m Measured) *Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	d := r.dec
	r.mu.Unlock()
	if d == nil {
		return nil
	}
	rep := Reconcile(d, m, r.cfg.WarnThreshold)
	if rep == nil {
		return nil
	}
	r.mu.Lock()
	r.rep = rep
	r.mu.Unlock()

	r.exportMetrics(rep)
	if lg := r.cfg.Logger; lg != nil {
		attrs := []any{
			slog.String("candidate", rep.Candidate),
			slog.Bool("top1_agreement", rep.Top1Agreement),
			slog.String("measured_choice", rep.MeasuredChoice),
			slog.Int("iters", m.Iters),
		}
		for _, q := range rep.Quantities {
			attrs = append(attrs, slog.Group(q.Name,
				slog.Float64("predicted", q.Predicted),
				slog.Float64("measured", q.Measured),
				slog.Float64("rel_err", q.RelErr)))
		}
		lg.Info("model.reconciliation", attrs...)
		for _, w := range rep.Warnings {
			lg.Warn("model.prediction_error", slog.String("detail", w))
		}
	}
	if err := r.ledger.Append(Record{Decision: d, Report: rep}); err != nil && r.cfg.Logger != nil {
		r.cfg.Logger.Error("model.ledger_append", slog.String("error", err.Error()))
	}
	if fn := r.cfg.OnUpdate; fn != nil {
		fn(Record{Decision: d, Report: rep})
	}
	return rep
}

// exportMetrics publishes the reconciliation as adatm_model_* gauges,
// labelled by the reconciled strategy name.
func (r *Recorder) exportMetrics(rep *Report) {
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	l := obs.Labels{"strategy": rep.Candidate}
	if q, ok := rep.Quantity(QOpsPerIter); ok {
		reg.Gauge("adatm_model_predicted_ops",
			"Cost-model predicted Hadamard op units per ALS iteration.", l).Set(q.Predicted)
		reg.Gauge("adatm_model_measured_ops",
			"Measured Hadamard op units per ALS iteration.", l).Set(q.Measured)
		reg.Gauge("adatm_model_ops_relative_error",
			"Signed relative error of the op prediction ((pred-meas)/meas).", l).Set(q.RelErr)
	}
	if q, ok := rep.Quantity(QPeakValueBytes); ok {
		reg.Gauge("adatm_model_predicted_peak_bytes",
			"Cost-model predicted peak live value bytes.", l).Set(q.Predicted)
		reg.Gauge("adatm_model_measured_peak_bytes",
			"Measured peak live value bytes.", l).Set(q.Measured)
	}
	agree := 0.0
	if rep.Top1Agreement {
		agree = 1
	}
	reg.Gauge("adatm_model_top1_agreement",
		"1 when the chosen strategy survives substituting measurement for prediction.", l).Set(agree)
}

// Latest returns the most recent decision and report (either may be nil).
func (r *Recorder) Latest() Record {
	if r == nil {
		return Record{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Record{Decision: r.dec, Report: r.rep}
}
