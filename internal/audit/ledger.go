package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Record is one ledger entry: a decision plus (once the run finished) its
// reconciliation. Sweeps accumulate one entry per reconciled candidate.
type Record struct {
	Decision *Decision `json:"decision"`
	Report   *Report   `json:"report,omitempty"`
}

// String renders the record for human consumption: the decision summary
// followed by the reconciliation table (when present).
func (rec Record) String() string {
	if rec.Decision == nil {
		return "audit: no decision recorded\n"
	}
	d := rec.Decision
	s := fmt.Sprintf("decision: dims=%v nnz=%d rank=%d budget=%s chosen=%s reason=%s candidates=%d\n",
		d.Dims, d.NNZ, d.Rank, fmtBytes(d.Budget), d.Chosen, d.Reason, len(d.Candidates))
	if rec.Report != nil {
		s += rec.Report.String()
	}
	return s
}

// Ledger appends Records as JSONL (one JSON object per line) to a writer —
// the durable decision history sweeps and long-running services accumulate.
// Safe for concurrent Append. A nil *Ledger no-ops.
type Ledger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLedger wraps w; a nil writer yields a nil (no-op) ledger.
func NewLedger(w io.Writer) *Ledger {
	if w == nil {
		return nil
	}
	return &Ledger{w: w}
}

// Append writes one record as a single JSON line.
func (l *Ledger) Append(rec Record) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(data)
	return err
}

// ValidateLedger checks a JSONL decision ledger: every non-empty line must
// parse as a Record carrying a decision with a chosen candidate. Returns the
// number of valid records, stopping at the first malformed line.
func ValidateLedger(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return n, fmt.Errorf("audit: ledger line %d: %w", line, err)
		}
		if rec.Decision == nil {
			return n, fmt.Errorf("audit: ledger line %d: missing decision", line)
		}
		if rec.Decision.Chosen == "" {
			return n, fmt.Errorf("audit: ledger line %d: decision has no chosen candidate", line)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
