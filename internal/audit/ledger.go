package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Record is one ledger entry: a decision plus (once the run finished) its
// reconciliation, or a standalone run-lifecycle event (e.g. a checkpoint
// resume). Sweeps accumulate one entry per reconciled candidate.
type Record struct {
	Decision *Decision `json:"decision,omitempty"`
	Report   *Report   `json:"report,omitempty"`
	Event    *Event    `json:"event,omitempty"`
}

// Event is a run-lifecycle entry in the ledger outside the model-selection
// flow: checkpoint resumes (which explain why a run's measured iteration
// counts start mid-trajectory) and perf-suite runs/regression verdicts
// (which anchor the performance trajectory to the decision history).
type Event struct {
	// Kind identifies the event ("resume", "perf.suite", "perf.regression").
	Kind string `json:"kind"`
	// Iter is the ALS iteration the event refers to (for a resume: the
	// checkpointed iteration the run continues from).
	Iter int `json:"iter,omitempty"`
	// Path is the file involved (checkpoint or bench result), when known.
	Path string `json:"path,omitempty"`
	// Fingerprint is the tensor+plan fingerprint the checkpoint was
	// validated against.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Detail carries kind-specific context: for perf.suite the scenario and
	// sample counts, for perf.regression the offending scenario and delta.
	Detail string `json:"detail,omitempty"`
}

// String renders the record for human consumption: the decision summary
// followed by the reconciliation table (when present).
func (rec Record) String() string {
	if rec.Decision == nil {
		if ev := rec.Event; ev != nil {
			return fmt.Sprintf("event: kind=%s iter=%d path=%s fingerprint=%s\n",
				ev.Kind, ev.Iter, ev.Path, ev.Fingerprint)
		}
		return "audit: no decision recorded\n"
	}
	d := rec.Decision
	s := fmt.Sprintf("decision: dims=%v nnz=%d rank=%d budget=%s chosen=%s reason=%s candidates=%d\n",
		d.Dims, d.NNZ, d.Rank, fmtBytes(d.Budget), d.Chosen, d.Reason, len(d.Candidates))
	if rec.Report != nil {
		s += rec.Report.String()
	}
	return s
}

// Ledger appends Records as JSONL (one JSON object per line) to a writer —
// the durable decision history sweeps and long-running services accumulate.
// Safe for concurrent Append. A nil *Ledger no-ops.
type Ledger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLedger wraps w; a nil writer yields a nil (no-op) ledger.
func NewLedger(w io.Writer) *Ledger {
	if w == nil {
		return nil
	}
	return &Ledger{w: w}
}

// Append writes one record as a single JSON line.
func (l *Ledger) Append(rec Record) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(data)
	return err
}

// ValidateLedger checks a JSONL decision ledger: every non-empty line must
// parse as a Record carrying either a decision with a chosen candidate or a
// lifecycle event with a kind. Returns the number of valid records,
// stopping at the first malformed line.
func ValidateLedger(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return n, fmt.Errorf("audit: ledger line %d: %w", line, err)
		}
		switch {
		case rec.Decision != nil:
			if rec.Decision.Chosen == "" {
				return n, fmt.Errorf("audit: ledger line %d: decision has no chosen candidate", line)
			}
		case rec.Event != nil:
			if rec.Event.Kind == "" {
				return n, fmt.Errorf("audit: ledger line %d: event has no kind", line)
			}
		default:
			return n, fmt.Errorf("audit: ledger line %d: missing decision", line)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
