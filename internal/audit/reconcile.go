package audit

import (
	"fmt"
	"math"
	"strings"
)

// Canonical quantity names in Report.Quantities. Stable identifiers: the
// smoke tests, metrics layer, and experiment harness key on them.
const (
	QOpsPerIter     = "ops_per_iter"
	QPeakValueBytes = "peak_value_bytes"
	QIndexBytes     = "index_bytes"
	QMTTKRPSeconds  = "mttkrp_seconds_per_iter"
)

// DefaultWarnThreshold is the |relative error| above which a reconciliation
// emits a warning (and a warn-level log event when a logger is attached).
const DefaultWarnThreshold = 0.25

// Measured carries the run's measured counterparts of the model's
// predictions, collected from the engine counters and the per-phase run
// breakdown at run end.
type Measured struct {
	// Iters is the number of completed ALS iterations the totals were
	// averaged over.
	Iters int `json:"iters"`
	// OpsPerIter is the measured Hadamard op units per full iteration
	// (engine counter delta / iterations).
	OpsPerIter float64 `json:"ops_per_iter"`
	// MTTKRPSecondsPerIter is the measured wall time inside the MTTKRP
	// kernel per iteration.
	MTTKRPSecondsPerIter float64 `json:"mttkrp_seconds_per_iter"`
	// PeakValueBytes is the engine's peak simultaneously-live semi-sparse
	// value storage (atomic high-water mark).
	PeakValueBytes int64 `json:"peak_value_bytes"`
	// IndexBytes is the engine's symbolic index storage.
	IndexBytes int64 `json:"index_bytes"`
	// PhaseSeconds is the per-phase wall-time breakdown keyed by the
	// canonical cpd phase names; nil unless the run collected stats.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// ModeMTTKRPSeconds is the measured wall time of each mode's MTTKRP
	// call per iteration, indexed by mode; nil unless the run collected
	// per-mode stats.
	ModeMTTKRPSeconds []float64 `json:"mode_mttkrp_seconds,omitempty"`
}

// AccumOutcome is the per-mode reconciliation of an accumulation decision:
// the backend the model picked with its forecast for the accumulation
// component, alongside the measured wall time of the whole mode-MTTKRP
// call. The two scopes differ (the forecast covers only the accumulation
// layer), so the pair is informational — recorded for offline crossover
// analysis, never warned on.
type AccumOutcome struct {
	Mode             int     `json:"mode"`
	Strategy         string  `json:"strategy"`
	PredScatterNS    float64 `json:"pred_scatter_ns"`
	PredPrivatizeNS  float64 `json:"pred_privatize_ns"`
	MeasuredModeSecs float64 `json:"measured_mode_seconds,omitempty"`
}

// Quantity is one predicted/measured pair with its signed relative error.
type Quantity struct {
	Name      string  `json:"name"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	// RelErr is (predicted − measured) / measured: positive means the model
	// over-predicted. Always finite: a zero measurement yields 0 when the
	// prediction is also zero and ±1 (flagged in Warnings) otherwise.
	RelErr float64 `json:"rel_err"`
}

// Report is the reconciliation of one Decision against one run's
// measurements.
type Report struct {
	// Candidate is the candidate the measurements belong to — the chosen
	// one in production runs; sweep harnesses reconcile every candidate.
	Candidate string `json:"candidate"`
	Reason    string `json:"reason"`
	// Quantities holds the per-quantity predicted/measured pairs.
	Quantities []Quantity `json:"quantities"`
	Measured   Measured   `json:"measured_raw"`
	// MeasuredChoice is the candidate the selector would pick if the
	// reconciled candidate's predictions were replaced by its measurements
	// (other candidates keep their predictions — only one was run).
	MeasuredChoice string `json:"measured_choice"`
	// Top1Agreement is the paper's headline model metric: the chosen
	// candidate survives the substitution of measurement for prediction.
	Top1Agreement bool `json:"top1_agreement"`
	// Warnings lists quantities whose |relative error| exceeded
	// WarnThreshold, plus degenerate measurements.
	Warnings      []string `json:"warnings,omitempty"`
	WarnThreshold float64  `json:"warn_threshold"`
	// Accum is the per-mode accumulation-decision outcome table (see
	// AccumOutcome); nil when the decision predates accumulation planning.
	Accum []AccumOutcome `json:"accum,omitempty"`
}

// relErr computes the signed relative error (pred − meas)/meas, kept finite
// for degenerate measurements so exports never carry NaN/Inf.
func relErr(pred, meas float64) float64 {
	if meas == 0 {
		if pred == 0 {
			return 0
		}
		return math.Copysign(1, pred)
	}
	return (pred - meas) / meas
}

// Reconcile reconciles the decision's chosen candidate against the run's
// measurements. warnThreshold <= 0 selects DefaultWarnThreshold. Returns nil
// when d is nil or the chosen candidate is missing from the record.
func Reconcile(d *Decision, m Measured, warnThreshold float64) *Report {
	if d == nil {
		return nil
	}
	return ReconcileCandidate(d, d.Chosen, m, warnThreshold)
}

// ReconcileCandidate is Reconcile against a specific candidate of the
// decision — sweep harnesses (the E7 model-accuracy experiment) measure
// every candidate, not only the chosen one.
func ReconcileCandidate(d *Decision, name string, m Measured, warnThreshold float64) *Report {
	if d == nil {
		return nil
	}
	cand := d.Candidate(name)
	if cand == nil {
		return nil
	}
	if warnThreshold <= 0 {
		warnThreshold = DefaultWarnThreshold
	}
	rep := &Report{
		Candidate:     name,
		Reason:        d.Reason,
		Measured:      m,
		WarnThreshold: warnThreshold,
	}
	add := func(qname string, pred, meas float64) {
		rep.Quantities = append(rep.Quantities, Quantity{
			Name: qname, Predicted: pred, Measured: meas, RelErr: relErr(pred, meas),
		})
	}
	add(QOpsPerIter, float64(cand.PredOps), m.OpsPerIter)
	add(QPeakValueBytes, float64(cand.PredPeakValueBytes), float64(m.PeakValueBytes))
	if m.IndexBytes > 0 {
		add(QIndexBytes, float64(cand.PredIndexBytes), float64(m.IndexBytes))
	}
	if cand.PredTimeNS > 0 && m.MTTKRPSecondsPerIter > 0 {
		add(QMTTKRPSeconds, float64(cand.PredTimeNS)/1e9, m.MTTKRPSecondsPerIter)
	}

	for _, a := range d.Accum {
		o := AccumOutcome{
			Mode:            a.Mode,
			Strategy:        a.Strategy,
			PredScatterNS:   a.PredScatterNS,
			PredPrivatizeNS: a.PredPrivatizeNS,
		}
		if a.Mode < len(m.ModeMTTKRPSeconds) {
			o.MeasuredModeSecs = m.ModeMTTKRPSeconds[a.Mode]
		}
		rep.Accum = append(rep.Accum, o)
	}

	rep.MeasuredChoice = measuredChoice(d, cand, m)
	rep.Top1Agreement = rep.MeasuredChoice == name

	for _, q := range rep.Quantities {
		if q.Measured == 0 && q.Predicted != 0 {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s: measured 0 against prediction %g", q.Name, q.Predicted))
			continue
		}
		if math.Abs(q.RelErr) > warnThreshold {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s: relative error %+.1f%% exceeds %.0f%%", q.Name, 100*q.RelErr, 100*warnThreshold))
		}
	}
	return rep
}

// measuredChoice re-runs the selection with the reconciled candidate's
// predictions replaced by its measurements: its cost key becomes the
// measured ops (or measured kernel time under time ranking) and its
// feasibility is re-evaluated from the measured footprint. Every other
// candidate keeps its predictions — only one strategy actually ran.
func measuredChoice(d *Decision, cand *CandidateRecord, m Measured) string {
	type scored struct {
		name     string
		key      float64
		footInt  int64
		feasible bool
	}
	cs := make([]scored, 0, len(d.Candidates))
	for i := range d.Candidates {
		c := &d.Candidates[i]
		s := scored{name: c.Name, feasible: c.Feasible, footInt: c.PredIndexBytes + c.PredPeakValueBytes}
		if d.ByTime && c.PredTimeNS > 0 {
			s.key = float64(c.PredTimeNS) / 1e9
		} else {
			s.key = float64(c.PredOps)
		}
		if c.Name == cand.Name {
			if d.ByTime && m.MTTKRPSecondsPerIter > 0 {
				s.key = m.MTTKRPSecondsPerIter
			} else if m.OpsPerIter > 0 {
				s.key = m.OpsPerIter
			}
			s.footInt = m.IndexBytes + m.PeakValueBytes
			s.feasible = d.Budget <= 0 || s.footInt <= d.Budget
		}
		cs = append(cs, s)
	}
	best := -1
	for i, s := range cs {
		if !s.feasible {
			continue
		}
		if best < 0 || s.key < cs[best].key {
			best = i
		}
	}
	if best < 0 {
		// Nothing feasible even after substitution: smallest footprint, the
		// selector's own fallback rule.
		best = 0
		for i, s := range cs {
			if s.footInt < cs[best].footInt {
				best = i
			}
		}
	}
	return cs[best].name
}

// Quantity returns the named predicted/measured pair, if present.
func (r *Report) Quantity(name string) (Quantity, bool) {
	for _, q := range r.Quantities {
		if q.Name == name {
			return q, true
		}
	}
	return Quantity{}, false
}

// String renders the reconciliation as a human-readable table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model audit: candidate=%s reason=%s iters=%d\n", r.Candidate, r.Reason, r.Measured.Iters)
	fmt.Fprintf(&b, "%-24s %16s %16s %9s\n", "quantity", "predicted", "measured", "rel err")
	for _, q := range r.Quantities {
		fmt.Fprintf(&b, "%-24s %16s %16s %+8.1f%%\n", q.Name, fmtQty(q.Name, q.Predicted), fmtQty(q.Name, q.Measured), 100*q.RelErr)
	}
	verdict := "agrees"
	if !r.Top1Agreement {
		verdict = "DISAGREES"
	}
	fmt.Fprintf(&b, "top-1: model %s with measurement (measured choice: %s)\n", verdict, r.MeasuredChoice)
	for _, a := range r.Accum {
		fmt.Fprintf(&b, "accum mode %d: %s (pred scatter %.3gms privatize %.3gms", a.Mode, a.Strategy,
			a.PredScatterNS/1e6, a.PredPrivatizeNS/1e6)
		if a.MeasuredModeSecs > 0 {
			fmt.Fprintf(&b, "; measured mode-MTTKRP %.3gms", a.MeasuredModeSecs*1e3)
		}
		fmt.Fprintf(&b, ")\n")
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}

// fmtQty renders a quantity value in its natural unit.
func fmtQty(name string, v float64) string {
	switch name {
	case QPeakValueBytes, QIndexBytes:
		return fmtBytes(int64(v))
	case QMTTKRPSeconds:
		return fmt.Sprintf("%.3gs", v)
	default:
		return fmt.Sprintf("%.6g", v)
	}
}

// fmtBytes renders a byte count with binary-unit suffixes ("-" for <= 0,
// matching the plan report's formatter).
func fmtBytes(b int64) string {
	switch {
	case b <= 0:
		return "-"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}
