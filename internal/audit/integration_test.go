package audit_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"adatm"
	"adatm/internal/audit"
	"adatm/internal/cpd"
	"adatm/internal/obs"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

// End to end: an adaptive Decompose with an audit recorder attached must
// capture the selection decision and reconcile it against the finished run
// with finite errors and exact op agreement (the op formula is exact given
// the engine's own counters).
func TestDecomposeAuditEndToEnd(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{40, 30, 20, 10}, NNZ: 4000, Seed: 7})
	var ledger bytes.Buffer
	reg := adatm.NewMetrics()
	rec := adatm.NewAuditRecorder(adatm.AuditConfig{Ledger: &ledger, Metrics: reg})
	res, err := adatm.Decompose(x, adatm.Options{
		Rank: 4, MaxIters: 3, Tol: 1e-15, Seed: 1, Workers: 1,
		Engine: adatm.EngineAdaptive, CollectStats: true, Audit: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	latest := rec.Latest()
	if latest.Decision == nil {
		t.Fatal("no decision recorded by adaptive Decompose")
	}
	if latest.Report == nil {
		t.Fatal("no reconciliation recorded at run end")
	}
	rep := latest.Report
	if rep.Candidate != latest.Decision.Chosen {
		t.Errorf("report candidate %q != chosen %q", rep.Candidate, latest.Decision.Chosen)
	}
	if rep.Measured.Iters != res.Iters {
		t.Errorf("measured iters %d != result iters %d", rep.Measured.Iters, res.Iters)
	}
	q, ok := rep.Quantity(audit.QOpsPerIter)
	if !ok {
		t.Fatal("no ops quantity in report")
	}
	if q.Measured <= 0 || math.Abs(q.RelErr) > 0.05 {
		t.Errorf("op prediction off by %+.1f%% (pred %g, meas %g); the sketch should be near-exact at this size",
			100*q.RelErr, q.Predicted, q.Measured)
	}
	for _, qq := range rep.Quantities {
		if math.IsNaN(qq.RelErr) || math.IsInf(qq.RelErr, 0) {
			t.Errorf("%s: non-finite rel err", qq.Name)
		}
	}

	// The ledger line written at reconcile time must validate.
	if n, err := audit.ValidateLedger(bytes.NewReader(ledger.Bytes())); n != 1 || err != nil {
		t.Errorf("ledger = %d records, %v; want 1, nil", n, err)
	}

	// The gauges must be live on the registry.
	var expo bytes.Buffer
	if _, err := reg.WriteTo(&expo); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"adatm_model_predicted_ops", "adatm_model_measured_ops",
		"adatm_model_ops_relative_error", "adatm_model_top1_agreement"} {
		if !bytes.Contains(expo.Bytes(), []byte(series)) {
			t.Errorf("exposition missing %s", series)
		}
	}

	// The per-phase breakdown keys must round-trip through cpd.ParsePhase:
	// the audit layer records them by canonical name, and a renamed phase
	// would silently orphan the history.
	if len(rep.Measured.PhaseSeconds) != int(cpd.NumPhases) {
		t.Errorf("PhaseSeconds has %d entries, want %d", len(rep.Measured.PhaseSeconds), cpd.NumPhases)
	}
	for name := range rep.Measured.PhaseSeconds {
		if _, err := cpd.ParsePhase(name); err != nil {
			t.Errorf("phase key %q does not round-trip: %v", name, err)
		}
	}
}

// A non-adaptive engine records no decision; the recorder must stay empty
// rather than reconciling against nothing.
func TestDecomposeAuditNonAdaptive(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{20, 15, 10}, NNZ: 800, Seed: 3})
	rec := adatm.NewAuditRecorder(adatm.AuditConfig{})
	_, err := adatm.Decompose(x, adatm.Options{
		Rank: 4, MaxIters: 2, Seed: 1, Workers: 1, Engine: adatm.EngineCOO, Audit: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l := rec.Latest(); l.Decision != nil || l.Report != nil {
		t.Errorf("coo engine produced an audit record: %+v", l)
	}
}

// The /run snapshot of an audited CLI run embeds the audit record; publishing
// and scraping it concurrently must be race-free and always serve complete
// JSON (regression: atomic.Value payloads must be immutable snapshots).
func TestRunSnapshotWithReportConcurrentScrape(t *testing.T) {
	x := adatm.Generate(adatm.GenSpec{Dims: []int{30, 20, 10, 8}, NNZ: 2000, Seed: 11})
	rec := adatm.NewAuditRecorder(adatm.AuditConfig{})
	if _, err := adatm.Decompose(x, adatm.Options{
		Rank: 4, MaxIters: 2, Seed: 1, Workers: 1, Engine: adatm.EngineAdaptive,
		CollectStats: true, Audit: rec,
	}); err != nil {
		t.Fatal(err)
	}
	latest := rec.Latest()
	if latest.Report == nil {
		t.Fatal("no report to publish")
	}

	srv, err := obs.Serve("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type snapshot struct {
		Iter  int           `json:"iter"`
		Done  bool          `json:"done"`
		Audit *audit.Record `json:"audit,omitempty"`
	}
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.SetRun(snapshot{Iter: i, Done: true, Audit: &latest})
		}
	}()
	defer close(stop)

	for i := 0; i < 30; i++ {
		var snap snapshot
		getJSON(t, "http://"+srv.Addr()+"/run", &snap)
		if snap.Audit == nil || snap.Audit.Report == nil {
			t.Fatalf("scrape %d: snapshot lost the audit record", i)
		}
		if snap.Audit.Report.Candidate != latest.Report.Candidate {
			t.Fatalf("scrape %d: candidate %q != %q", i, snap.Audit.Report.Candidate, latest.Report.Candidate)
		}
	}
}
