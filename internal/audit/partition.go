package audit

import (
	"fmt"
	"log/slog"
	"time"

	"adatm/internal/model"
)

// Partition-selection auditing: the distributed layer's partitioner choice
// is a model-driven decision exactly like format selection, so it flows
// through the same ledger. A partition decision is recorded as a Record
// carrying both the Decision (so ValidateLedger and the /plan endpoint see
// a chosen candidate with evidence) and a "dist.partition" lifecycle Event
// (so log/ledger consumers can filter distributed runs). It deliberately
// does NOT become the recorder's pending decision: Reconcile pairs the
// pending *format* decision with the run's measured counters, and a
// partition decision has no op-count reconciliation.

// ReasonCommOptimal: the chosen partitioner had the lowest predicted
// per-iteration time (slowest-process compute + α–β communication).
const ReasonCommOptimal = "comm-optimal"

// EventPartition is the ledger event kind for a partition decision.
const EventPartition = "dist.partition"

// PartitionCandidateRecord is one scored partitioner in a partition
// decision, flattened to plain data for the ledger.
type PartitionCandidateRecord struct {
	Name string `json:"name"`
	// VolumeRows is Σ (connectivity − 1) over all modes and rows: the fold
	// row volume per iteration (expands mirror it).
	VolumeRows int64 `json:"volume_rows"`
	// VolumeBytes is the fold+expand byte volume per iteration at the
	// decision's rank.
	VolumeBytes int64 `json:"volume_bytes"`
	// Messages is the distinct sender→owner pair count per iteration.
	Messages  int64   `json:"messages"`
	Imbalance float64 `json:"imbalance"`
	// PredComputeNS/PredCommNS/PredNS are the cost-model forecast the
	// ranking used (PredNS = compute + comm).
	PredComputeNS float64 `json:"pred_compute_ns"`
	PredCommNS    float64 `json:"pred_comm_ns"`
	PredNS        float64 `json:"pred_ns"`
}

// NewPartitionDecision flattens a scored model.PartitionPlan into a
// Decision. Transport names the wire the run will use ("chan", "tcp").
func NewPartitionDecision(p *model.PartitionPlan, transport string) *Decision {
	d := &Decision{
		Time:      time.Now(),
		NNZ:       int64(p.NNZ),
		Rank:      p.Rank,
		Kind:      "partition",
		Procs:     p.Procs,
		Transport: transport,
		Chosen:    p.Chosen.Name,
		Reason:    ReasonCommOptimal,
	}
	d.Partition = make([]PartitionCandidateRecord, len(p.Candidates))
	for i, c := range p.Candidates {
		d.Partition[i] = PartitionCandidateRecord{
			Name:          c.Name,
			VolumeRows:    c.Comm.TotalRows,
			VolumeBytes:   c.Comm.VolumeBytes(p.Rank),
			Messages:      c.Comm.Messages,
			Imbalance:     c.Imbalance,
			PredComputeNS: c.ComputeNS,
			PredCommNS:    c.CommNS,
			PredNS:        c.PredNS,
		}
	}
	return d
}

// RecordPartition appends the partition decision to the ledger (as a
// decision + "dist.partition" event record), emits the structured log
// event, and refreshes the OnUpdate hook. Unlike RecordDecision it never
// replaces the recorder's pending decision — the format decision still owns
// the end-of-run reconciliation.
func (r *Recorder) RecordPartition(d *Decision) {
	if r == nil || d == nil {
		return
	}
	ev := &Event{
		Kind: EventPartition,
		Detail: fmt.Sprintf("procs=%d transport=%s chosen=%s candidates=%d",
			d.Procs, d.Transport, d.Chosen, len(d.Partition)),
	}
	if lg := r.cfg.Logger; lg != nil {
		attrs := []any{
			slog.String("chosen", d.Chosen),
			slog.String("reason", d.Reason),
			slog.Int("procs", d.Procs),
			slog.String("transport", d.Transport),
			slog.Int("candidates", len(d.Partition)),
			slog.Int("rank", d.Rank),
			slog.Int64("nnz", d.NNZ),
		}
		if c := d.PartitionCandidate(d.Chosen); c != nil {
			attrs = append(attrs,
				slog.Int64("volume_bytes", c.VolumeBytes),
				slog.Int64("messages", c.Messages),
				slog.Float64("pred_ns", c.PredNS))
		}
		lg.Info("run."+EventPartition, attrs...)
	}
	if err := r.ledger.Append(Record{Decision: d, Event: ev}); err != nil && r.cfg.Logger != nil {
		r.cfg.Logger.Error("model.ledger_append", slog.String("error", err.Error()))
	}
	if fn := r.cfg.OnUpdate; fn != nil {
		fn(Record{Decision: d, Event: ev})
	}
}

// PartitionCandidate returns the named partition candidate record, or nil.
func (d *Decision) PartitionCandidate(name string) *PartitionCandidateRecord {
	for i := range d.Partition {
		if d.Partition[i].Name == name {
			return &d.Partition[i]
		}
	}
	return nil
}
