package cpd

import (
	"math"
	"testing"

	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func TestColumnIDsGroupComplementTuples(t *testing.T) {
	x := tensor.NewCOO([]int{3, 2, 2}, 5)
	x.Append([]tensor.Index{0, 0, 0}, 1)
	x.Append([]tensor.Index{1, 0, 0}, 2) // same (j,k) as above -> same column
	x.Append([]tensor.Index{0, 1, 0}, 3)
	x.Append([]tensor.Index{2, 1, 0}, 4) // same column as previous
	x.Append([]tensor.Index{0, 1, 1}, 5)
	ids, ncols := columnIDs(x, 0)
	if ncols != 3 {
		t.Fatalf("ncols = %d, want 3", ncols)
	}
	if ids[0] != ids[1] || ids[2] != ids[3] || ids[0] == ids[2] || ids[4] == ids[2] {
		t.Errorf("grouping wrong: %v", ids)
	}
}

func TestOrthonormalize(t *testing.T) {
	v := dense.FromRows([][]float64{{1, 1, 0}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1}})
	orthonormalize(v)
	g := dense.Gram(v, nil, 1)
	if d := g.MaxAbsDiff(dense.Identity(3)); d > 1e-10 {
		t.Errorf("VᵀV deviates from I by %g", d)
	}
}

func TestOrthonormalizeDegenerateColumns(t *testing.T) {
	// Two identical columns: the second must be replaced, not left as zero.
	v := dense.FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	orthonormalize(v)
	g := dense.Gram(v, nil, 1)
	if d := g.MaxAbsDiff(dense.Identity(2)); d > 1e-10 {
		t.Errorf("degenerate input: VᵀV deviates by %g", d)
	}
}

// NVecs must capture the dominant left singular subspace: on a (dense,
// small) tensor, S·V ≈ V·(VᵀSV) for the converged subspace, i.e. the
// residual of the subspace iteration is small relative to the top
// eigenvalue.
func TestNVecsCapturesDominantSubspace(t *testing.T) {
	x := tensor.LowRank([]int{12, 10, 8}, 600, 2, 0.01, 701)
	r := 2
	v := NVecs(x, 0, r, 12, 3, 2)
	// Build S = X_(0) X_(0)ᵀ explicitly through the dense reference.
	data, err := x.ToDense(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	xm := ref.Matricize(data, x.Dims, 0)
	s := dense.MatMul(xm, xm.Transpose(), nil, 1)
	sv := dense.MatMul(s, v, nil, 1)
	// Rayleigh quotient matrix and residual ‖SV − V(VᵀSV)‖.
	vtsv := dense.MatMul(v.Transpose(), sv, nil, 1)
	vq := dense.MatMul(v, vtsv, nil, 1)
	res := sv.MaxAbsDiff(vq)
	// Scale by the dominant eigenvalue estimate.
	scale := math.Abs(vtsv.At(0, 0)) + math.Abs(vtsv.At(1, 1))
	if res > 0.02*scale {
		t.Errorf("subspace residual %g vs scale %g", res, scale)
	}
}

func TestNVecsInitSpeedsConvergence(t *testing.T) {
	// On a planted low-rank tensor, nvecs init must reach a high fit in
	// fewer iterations than random init (or at least match it).
	x := tensor.DenseLowRank([]int{14, 12, 10}, 3, 0.01, 702)
	itersTo := func(init []*dense.Matrix) int {
		res, err := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 60, Tol: 1e-12, Seed: 5, Init: init, TrackFit: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range res.FitTrace {
			if f > 0.995 {
				return i + 1
			}
		}
		return len(res.FitTrace) + 1
	}
	random := itersTo(nil)
	nv := itersTo(NVecsInit(x, 3, 5, 9, 2))
	if nv > random {
		t.Errorf("nvecs init took %d iterations, random took %d", nv, random)
	}
}

func TestNVecsShapes(t *testing.T) {
	x := tensor.RandomClustered(4, 15, 400, 0.5, 703)
	fs := NVecsInit(x, 5, 2, 1, 2)
	if len(fs) != 4 {
		t.Fatalf("%d factors", len(fs))
	}
	for m, f := range fs {
		if f.Rows != x.Dims[m] || f.Cols != 5 {
			t.Errorf("factor %d is %dx%d", m, f.Rows, f.Cols)
		}
		g := dense.Gram(f, nil, 1)
		if d := g.MaxAbsDiff(dense.Identity(5)); d > 1e-8 {
			t.Errorf("factor %d not orthonormal (dev %g)", m, d)
		}
	}
}
