package cpd

import (
	"math"
	"math/rand"
	"sort"

	"adatm/internal/dense"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// HOSVD-style factor initialization ("nvecs"): the leading R left singular
// vectors of each matricization X_(n), approximated by block power
// iteration on S = X_(n)·X_(n)ᵀ. Neither S (I_n × I_n) nor the
// matricization (I_n × Πother) is ever formed: one application of S streams
// the nonzeros twice through a per-mode column-id array (the id of each
// nonzero's complement index tuple). Literature-standard for CP-ALS when a
// better-than-random starting point is wanted.

// columnIDs assigns every nonzero the dense id of its complement tuple
// (all modes except mode), returning the ids and the number of distinct
// columns.
func columnIDs(x *tensor.COO, mode int) (ids []int32, ncols int) {
	nnz := x.NNZ()
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	rest := make([]int, 0, x.Order()-1)
	for m := 0; m < x.Order(); m++ {
		if m != mode {
			rest = append(rest, m)
		}
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		for _, m := range rest {
			ia, ib := x.Inds[m][ka], x.Inds[m][kb]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})
	same := func(a, b int) bool {
		for _, m := range rest {
			if x.Inds[m][a] != x.Inds[m][b] {
				return false
			}
		}
		return true
	}
	ids = make([]int32, nnz)
	col := int32(-1)
	for i, k := range perm {
		if i == 0 || !same(perm[i-1], k) {
			col++
		}
		ids[k] = col
	}
	return ids, int(col) + 1
}

// NVecs approximates the leading r left singular vectors of X_(mode) with
// iters rounds of block power iteration (orthonormalized each round).
func NVecs(x *tensor.COO, mode, r, iters int, seed int64, workers int) *dense.Matrix {
	if iters <= 0 {
		iters = 3
	}
	ids, ncols := columnIDs(x, mode)
	rows := x.Dims[mode]
	rng := rand.New(rand.NewSource(seed))
	v := dense.Random(rows, r, rng)
	for i := range v.Data {
		v.Data[i] -= 0.5 // signed start exposes all singular directions
	}
	orthonormalize(v)
	z := dense.New(ncols, r)
	w := dense.New(rows, r)
	ind := x.Inds[mode]
	stripesZ := par.NewStripes(1024)
	stripesW := par.NewStripes(1024)
	for it := 0; it < iters; it++ {
		// Z = X_(mode)ᵀ · V.
		z.Zero()
		par.ForRange(x.NNZ(), workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				val := x.Vals[k]
				src := v.Row(int(ind[k]))
				c := ids[k]
				stripesZ.Lock(c)
				dst := z.Row(int(c))
				for j := range dst {
					dst[j] += val * src[j]
				}
				stripesZ.Unlock(c)
			}
		})
		// W = X_(mode) · Z.
		w.Zero()
		par.ForRange(x.NNZ(), workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				val := x.Vals[k]
				src := z.Row(int(ids[k]))
				i := ind[k]
				stripesW.Lock(i)
				dst := w.Row(int(i))
				for j := range dst {
					dst[j] += val * src[j]
				}
				stripesW.Unlock(i)
			}
		})
		v.CopyFrom(w)
		orthonormalize(v)
	}
	return v
}

// NVecsInit builds HOSVD-style initial factors for every mode.
func NVecsInit(x *tensor.COO, rank, iters int, seed int64, workers int) []*dense.Matrix {
	out := make([]*dense.Matrix, x.Order())
	for m := range out {
		out[m] = NVecs(x, m, rank, iters, seed+int64(m), workers)
	}
	return out
}

// orthonormalize applies modified Gram–Schmidt to the columns of v. Columns
// that collapse to (numerical) zero are re-randomized against a fixed
// deterministic pattern and re-orthogonalized once.
func orthonormalize(v *dense.Matrix) {
	rows, cols := v.Rows, v.Cols
	colDot := func(a, b int) float64 {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += v.At(i, a) * v.At(i, b)
		}
		return s
	}
	for j := 0; j < cols; j++ {
		for p := 0; p < j; p++ {
			d := colDot(p, j)
			for i := 0; i < rows; i++ {
				v.Set(i, j, v.At(i, j)-d*v.At(i, p))
			}
		}
		norm := math.Sqrt(colDot(j, j))
		if norm < 1e-12 {
			// Degenerate column: replace with a deterministic pattern and
			// orthogonalize it against the previous columns.
			for i := 0; i < rows; i++ {
				v.Set(i, j, math.Cos(float64(i*(j+3)+1)))
			}
			for p := 0; p < j; p++ {
				d := colDot(p, j)
				for i := 0; i < rows; i++ {
					v.Set(i, j, v.At(i, j)-d*v.At(i, p))
				}
			}
			norm = math.Sqrt(colDot(j, j))
			if norm < 1e-12 {
				norm = 1
			}
		}
		inv := 1 / norm
		for i := 0; i < rows; i++ {
			v.Set(i, j, v.At(i, j)*inv)
		}
	}
}
