// Package cpd implements the CP-ALS (alternating least squares) driver for
// sparse CANDECOMP/PARAFAC decomposition. The MTTKRP bottleneck is delegated
// to a pluggable engine (streaming COO, CSF, or a memoized semi-sparse
// strategy tree), so everything outside that kernel — Gram precomputation,
// the pseudoinverse solve, column normalization, and the fast fit — is
// shared code across every engine comparison in the evaluation.
package cpd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"adatm/internal/audit"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/health"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// Options configures a decomposition run.
type Options struct {
	Rank     int     // number of rank-one components (R)
	MaxIters int     // maximum ALS iterations (default 50)
	Tol      float64 // convergence threshold on the fit change (default 1e-5)
	Seed     int64   // RNG seed for factor initialization
	Workers  int     // parallel width for dense kernels (<= 0: GOMAXPROCS)
	// Init provides initial factor matrices (one I_n × Rank matrix per
	// mode); nil selects random initialization from Seed.
	Init []*dense.Matrix
	// TrackFit records the fit after every iteration in Result.FitTrace.
	// The fit is always computed for the convergence test; this only
	// controls whether the trajectory is retained.
	TrackFit bool
	// Ridge adds λ·I to the Gram-Hadamard system before each solve
	// (Tikhonov regularization), stabilizing ill-conditioned updates and
	// damping overfitting in completion-style uses.
	Ridge float64
	// NonNegative switches the factor update from the least-squares solve
	// to the Lee–Seung multiplicative rule U ← U ∘ M ⁄ (U·H + ε), keeping
	// every factor entry non-negative. Requires a non-negative tensor.
	NonNegative bool
	// ModeOrder is the order the sub-iterations visit the modes (a
	// permutation of 0..N-1; nil = natural). Mode-permuted memoization
	// engines need the sweep to follow their permutation so every
	// intermediate is materialized exactly once per iteration.
	ModeOrder []int
	// Ctx, when non-nil, is checked between mode sub-iterations. On
	// cancellation Run stops within one sub-iteration and returns the
	// partial Result (factors normalized, Stopped set) together with
	// ctx.Err().
	Ctx context.Context
	// Progress, when non-nil, is invoked after every completed iteration.
	// Returning false stops the run early with a valid Result (Stopped
	// set, no error).
	Progress func(IterStats) bool
	// CollectStats attaches a per-phase RunStats breakdown to the Result.
	// When false (the default) only the coarse MTTKRPTime/TotalTime
	// stopwatches run and the overhead is near zero.
	CollectStats bool
	// Tracer, when non-nil, receives one span per ALS phase interval and per
	// per-mode MTTKRP call, exportable as Chrome trace-event JSON.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives per-phase latency histograms and the
	// iteration/fit run gauges (metric names adatm_cpd_*).
	Metrics *obs.Registry
	// Audit, when non-nil, reconciles the cost model's selection decision
	// against the run's measured counters at run end (adaptive engines
	// deposit their Decision at construction time). The uninstrumented path
	// is one pointer test; all audit work happens outside the iteration
	// loop, so the steady state stays allocation-free.
	Audit *audit.Recorder
	// Checkpoint, when non-nil, makes the run durable: iteration-boundary
	// state is written crash-atomically to Checkpoint.Dir on the configured
	// cadence (and on every exit path), and Resume continues the run from
	// the newest checkpoint with an identical trajectory. The disabled path
	// is one pointer test per iteration.
	Checkpoint *CheckpointConfig
	// Health, when non-nil, observes every completed iteration's numerical
	// state (fit delta, λ dynamics, Gram-Hadamard conditioning, factor
	// congruence) and maintains a debounced healthy/stalled/swamp-suspect/
	// ill-conditioned verdict. The probe reads only state already resident
	// in the loop — no extra MTTKRPs — and is allocation-free in steady
	// state; the disabled path is one pointer test per iteration.
	Health *health.Probe
}

// epsMU guards the multiplicative-update denominator against division by
// zero (the customary NMF epsilon).
const epsMU = 1e-12

// Result holds the decomposition [λ; U¹, …, Uᴺ] and run statistics.
type Result struct {
	Lambda  []float64       // component weights, one per rank
	Factors []*dense.Matrix // column-normalized factor matrices
	Iters   int
	// Fit is 1 − ‖X − X̂‖/‖X‖ after the final iteration. NaN when the run
	// was stopped (ctx cancellation) before any iteration completed, i.e.
	// before the first fit was ever computed — check Iters > 0 or
	// math.IsNaN before consuming it.
	Fit float64
	// Converged reports whether the fit change dropped below Tol before
	// MaxIters.
	Converged bool
	FitTrace  []float64
	// Stopped reports that the run ended early — Ctx was cancelled or a
	// Progress callback returned false — rather than by convergence or the
	// iteration cap.
	Stopped bool
	// Timing breakdown.
	MTTKRPTime time.Duration
	TotalTime  time.Duration
	// Stats holds the per-phase breakdown; nil unless Options.CollectStats.
	Stats *RunStats
}

// Run decomposes x at the configured rank using the given MTTKRP engine.
func Run(x *tensor.COO, eng engine.Engine, opt Options) (*Result, error) {
	return run(x, eng, opt, nil)
}

// run is the ALS loop shared by Run (rs == nil) and Resume (rs carries the
// checkpointed loop state; opt.Init holds the checkpointed factors).
func run(x *tensor.COO, eng engine.Engine, opt Options, rs *resumeState) (*Result, error) {
	n := x.Order()
	if opt.Rank <= 0 {
		return nil, errors.New("cpd: Rank must be positive")
	}
	if n < 2 {
		return nil, errors.New("cpd: tensor order must be at least 2")
	}
	if x.NNZ() == 0 {
		return nil, errors.New("cpd: empty tensor")
	}
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 50
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-5
	}
	r := opt.Rank

	if opt.NonNegative {
		for _, v := range x.Vals {
			if v < 0 {
				return nil, errors.New("cpd: NonNegative requires a non-negative tensor")
			}
		}
	}

	sweep, err := sweepOrder(opt.ModeOrder, n)
	if err != nil {
		return nil, err
	}

	factors, err := initFactors(x, opt)
	if err != nil {
		return nil, err
	}

	lambda := make([]float64, r)
	// Fit starts at NaN, not 0: a run cancelled before the first fit
	// computation must not report a (perfect-looking for an exact model)
	// fit of zero. The first completed iteration overwrites it.
	res := &Result{Factors: factors, Fit: math.NaN()}
	startIter := 1
	prevFit := math.Inf(-1)
	if rs != nil {
		startIter = rs.startIter
		prevFit = rs.prevFit
		copy(lambda, rs.lambda)
		res.Iters = startIter - 1
		res.Fit = rs.prevFit
		if opt.TrackFit {
			res.FitTrace = append([]float64(nil), rs.fitTrace...)
		}
	}
	cw, err := newCheckpointer(x, opt, sweep)
	if err != nil {
		return nil, err
	}
	if cw != nil {
		cw.written = startIter - 1
	}
	if opt.CollectStats {
		res.Stats = &RunStats{ModeMTTKRP: make([]PhaseStats, n)}
	}
	clock := newPhaseClock(res.Stats, opt.Tracer, opt.Metrics, n)

	start := time.Now()

	// Precompute the Gram matrices W⁽ⁿ⁾ = U⁽ⁿ⁾ᵀU⁽ⁿ⁾.
	clock.start()
	grams := make([]*dense.Matrix, n)
	for m := 0; m < n; m++ {
		grams[m] = dense.Gram(factors[m], nil, opt.Workers)
	}
	clock.tick(PhaseGram)

	normX := x.Norm()
	clock.tick(PhaseFit)
	m := dense.New(maxDim(x.Dims), r) // MTTKRP output, reused across modes
	h := dense.New(r, r)

	// auditBase snapshots the engine counters before the first iteration so
	// reconciliation works on this run's deltas even when the caller reuses
	// an engine across runs.
	var auditBase engine.Stats
	if opt.Audit != nil {
		auditBase = eng.Stats()
	}

	// finish seals the result on every exit path: the λ vector, the total
	// stopwatch, and (when collecting) the symbolic phase copied from the
	// engine plus the steady-state allocation counters. The audit
	// reconciliation runs last, after the steady-state memstats read, so its
	// (one-time, end-of-run) allocations never pollute the steady counters.
	var memBase runtime.MemStats
	memBased := false
	finish := func() {
		res.Lambda = lambda
		res.TotalTime = time.Since(start)
		if res.Stats != nil {
			res.Stats.Phases[PhaseSymbolic].Time = time.Duration(eng.Stats().SymbolicNS)
			res.Stats.Phases[PhaseSymbolic].Count = 1
			if memBased && res.Iters > 1 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				res.Stats.SteadyAllocs = int64(ms.Mallocs - memBase.Mallocs)
				res.Stats.SteadyAllocBytes = int64(ms.TotalAlloc - memBase.TotalAlloc)
				res.Stats.SteadyIters = int64(res.Iters) - 1
			}
		}
		if opt.Audit != nil && res.Iters > 0 {
			opt.Audit.Reconcile(measuredFrom(eng.Stats(), auditBase, res))
		}
	}

	var prevOps int64
	if clock != nil {
		prevOps = eng.Stats().HadamardOps
	}
	lastMode := sweep[n-1]
	for iter := startIter; iter <= maxIters; iter++ {
		if res.Stats != nil && iter == startIter+1 {
			// Iteration 1 warms scratch buffers; steady state starts here.
			runtime.ReadMemStats(&memBase)
			memBased = true
		}
		var lastM *dense.Matrix
		for _, mode := range sweep {
			if opt.Ctx != nil {
				select {
				case <-opt.Ctx.Done():
					res.Stopped = true
					finish()
					// The snapshot from the last completed iteration is
					// boundary-consistent even though this sweep is mid-
					// flight; persist it so the cancellation (e.g. a
					// SIGTERM routed through Ctx) loses no finished work.
					if werr := cw.finalWrite(); werr != nil {
						return res, errors.Join(opt.Ctx.Err(), werr)
					}
					return res, opt.Ctx.Err()
				default:
				}
			}
			mm := &dense.Matrix{Rows: x.Dims[mode], Cols: r, Data: m.Data[:x.Dims[mode]*r]}
			t0 := time.Now()
			if err := eng.MTTKRP(mode, factors, mm); err != nil {
				return nil, err
			}
			d := time.Since(t0)
			res.MTTKRPTime += d
			if clock != nil {
				ops := eng.Stats().HadamardOps
				clock.mttkrp(mode, d, ops-prevOps)
				prevOps = ops
			}

			// H = ∘_{i≠mode} W⁽ⁱ⁾.
			clock.start()
			h.Fill(1)
			for i := 0; i < n; i++ {
				if i != mode {
					dense.Hadamard(h, grams[i], h)
				}
			}
			clock.tick(PhaseGram)
			if opt.NonNegative {
				// Multiplicative rule: U ← U ∘ M ⁄ (U·H + ridge·U + ε).
				denom := dense.MatMul(factors[mode], h, nil, opt.Workers)
				u := factors[mode]
				for i := range u.Data {
					d := denom.Data[i] + opt.Ridge*u.Data[i] + epsMU
					u.Data[i] *= mm.Data[i] / d
				}
			} else {
				// Least squares: U⁽ᵐᵒᵈᵉ⁾ = M·(H + ridge·I)⁺.
				if opt.Ridge > 0 {
					for i := 0; i < r; i++ {
						h.Set(i, i, h.At(i, i)+opt.Ridge)
					}
				}
				factors[mode].CopyFrom(mm)
				dense.SolveSPDInPlace(h, factors[mode], opt.Workers)
			}
			clock.tick(PhaseSolve)

			norms := dense.NormalizeColumns(factors[mode])
			copy(lambda, norms)
			clock.tick(PhaseNormalize)
			dense.Gram(factors[mode], grams[mode], opt.Workers)
			eng.FactorUpdated(mode)
			clock.tick(PhaseGram)
			if mode == lastMode {
				lastM = mm
			}
		}

		clock.start()
		fit := computeFit(normX, lambda, factors[lastMode], lastM, grams)
		clock.tick(PhaseFit)
		if opt.TrackFit {
			res.FitTrace = append(res.FitTrace, fit)
		}
		res.Iters = iter
		res.Fit = fit
		clock.iteration(fit)
		opt.Health.Observe(health.Input{
			Iter: iter, Fit: fit, PrevFit: prevFit, Tol: tol,
			Lambda: lambda, Grams: grams,
		})
		if cw != nil {
			if cerr := cw.boundary(iter, fit, lambda, factors, res.FitTrace); cerr != nil {
				finish()
				return res, cerr
			}
		}
		if math.Abs(fit-prevFit) < tol {
			res.Converged = true
			break
		}
		if opt.Progress != nil {
			stop := !opt.Progress(IterStats{
				Iter:       iter,
				Fit:        fit,
				FitDelta:   fit - prevFit,
				Elapsed:    time.Since(start),
				MTTKRPTime: res.MTTKRPTime,
			})
			if stop {
				res.Stopped = true
				break
			}
		}
		prevFit = fit
	}
	finish()
	if werr := cw.finalWrite(); werr != nil {
		return res, werr
	}
	return res, nil
}

// measuredFrom converts the run's engine-counter deltas and per-phase
// breakdown into the audit layer's Measured record: totals averaged per
// completed iteration so they are comparable with the model's per-iteration
// predictions.
func measuredFrom(s, base engine.Stats, res *Result) audit.Measured {
	iters := float64(res.Iters)
	m := audit.Measured{
		Iters:                res.Iters,
		OpsPerIter:           float64(s.HadamardOps-base.HadamardOps) / iters,
		MTTKRPSecondsPerIter: float64(s.MTTKRPNS-base.MTTKRPNS) / 1e9 / iters,
		PeakValueBytes:       s.PeakValueBytes,
		IndexBytes:           s.IndexBytes,
	}
	if res.Stats != nil {
		m.PhaseSeconds = make(map[string]float64, NumPhases)
		for p := Phase(0); p < NumPhases; p++ {
			m.PhaseSeconds[p.String()] = res.Stats.Phases[p].Time.Seconds()
		}
		m.ModeMTTKRPSeconds = make([]float64, len(res.Stats.ModeMTTKRP))
		for mode, mp := range res.Stats.ModeMTTKRP {
			m.ModeMTTKRPSeconds[mode] = mp.Time.Seconds() / iters
		}
	}
	return m
}

// sweepOrder validates the sub-iteration mode order (nil = natural).
func sweepOrder(order []int, n int) ([]int, error) {
	if order == nil {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	if len(order) != n {
		return nil, fmt.Errorf("cpd: ModeOrder has %d entries for order-%d tensor", len(order), n)
	}
	seen := make([]bool, n)
	for _, m := range order {
		if m < 0 || m >= n || seen[m] {
			return nil, fmt.Errorf("cpd: ModeOrder %v is not a permutation", order)
		}
		seen[m] = true
	}
	return order, nil
}

// initFactors builds the initial factor matrices.
func initFactors(x *tensor.COO, opt Options) ([]*dense.Matrix, error) {
	n := x.Order()
	if opt.Init != nil {
		if len(opt.Init) != n {
			return nil, fmt.Errorf("cpd: %d initial factors for order-%d tensor", len(opt.Init), n)
		}
		factors := make([]*dense.Matrix, n)
		for m, f := range opt.Init {
			if f.Rows != x.Dims[m] || f.Cols != opt.Rank {
				return nil, fmt.Errorf("cpd: initial factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, x.Dims[m], opt.Rank)
			}
			factors[m] = f.Clone()
		}
		return factors, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*dense.Matrix, n)
	for m := 0; m < n; m++ {
		factors[m] = dense.Random(x.Dims[m], opt.Rank, rng)
	}
	return factors, nil
}

// computeFit evaluates fit = 1 − ‖X − X̂‖/‖X‖ without touching the tensor:
// ‖X̂‖² = λᵀ(∘ₙ W⁽ⁿ⁾)λ and ⟨X, X̂⟩ = Σᵣ λᵣ Σᵢ M⁽ᴺ⁾(i,r)·U⁽ᴺ⁾(i,r), where M⁽ᴺ⁾
// is the final mode's MTTKRP result and U⁽ᴺ⁾ the freshly normalized factor.
func computeFit(normX float64, lambda []float64, lastFactor, lastM *dense.Matrix, grams []*dense.Matrix) float64 {
	r := len(lambda)
	// ‖X̂‖².
	hadAll := dense.HadamardAll(grams)
	normEst2 := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			normEst2 += lambda[i] * lambda[j] * hadAll.At(i, j)
		}
	}
	// ⟨X, X̂⟩.
	inner := 0.0
	for i := 0; i < lastM.Rows; i++ {
		mrow := lastM.Row(i)
		frow := lastFactor.Row(i)
		for j := 0; j < r; j++ {
			inner += lambda[j] * mrow[j] * frow[j]
		}
	}
	res2 := normX*normX + normEst2 - 2*inner
	if res2 < 0 {
		res2 = 0
	}
	if normX == 0 {
		return 0
	}
	return 1 - math.Sqrt(res2)/normX
}

func maxDim(dims []int) int {
	m := 0
	for _, d := range dims {
		if d > m {
			m = d
		}
	}
	return m
}

// Reconstruct evaluates the CP model Σᵣ λᵣ · u¹ᵣ ∘ … ∘ uᴺᵣ at one coordinate.
func Reconstruct(res *Result, idx []tensor.Index) float64 {
	v := 0.0
	for r := range res.Lambda {
		p := res.Lambda[r]
		for m, f := range res.Factors {
			p *= f.At(int(idx[m]), r)
		}
		v += p
	}
	return v
}

// ResidualNorm computes ‖X − X̂‖ exactly by streaming the nonzeros and
// accounting for the model mass off the sparsity pattern:
// ‖X−X̂‖² = Σ_{nz} (x−x̂)² − Σ_{nz} x̂² + ‖X̂‖². Exact and O(nnz·N·R);
// used in tests to validate the fast fit formula.
func ResidualNorm(x *tensor.COO, res *Result) float64 {
	grams := make([]*dense.Matrix, len(res.Factors))
	for m, f := range res.Factors {
		grams[m] = dense.Gram(f, nil, 0)
	}
	hadAll := dense.HadamardAll(grams)
	normEst2 := 0.0
	r := len(res.Lambda)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			normEst2 += res.Lambda[i] * res.Lambda[j] * hadAll.At(i, j)
		}
	}
	onPattern := 0.0
	estOnPattern := 0.0
	idx := make([]tensor.Index, x.Order())
	for k := 0; k < x.NNZ(); k++ {
		for m := range idx {
			idx[m] = x.Inds[m][k]
		}
		est := Reconstruct(res, idx)
		d := x.Vals[k] - est
		onPattern += d * d
		estOnPattern += est * est
	}
	res2 := onPattern - estOnPattern + normEst2
	if res2 < 0 {
		res2 = 0
	}
	return math.Sqrt(res2)
}
