package cpd

import (
	"math"
	"math/rand"
	"testing"

	"adatm/internal/tensor"
)

// poissonCounts samples a sparse count tensor from a planted Poisson CP
// model (nonzeros only, which is how count data is stored).
func poissonCounts(dims []int, rank int, mean float64, seed int64) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	// Planted column-stochastic factors and weights.
	factors := make([][][]float64, len(dims))
	for m, d := range dims {
		f := make([][]float64, d)
		colSum := make([]float64, rank)
		for i := range f {
			row := make([]float64, rank)
			for j := range row {
				row[j] = rng.Float64()
				colSum[j] += row[j]
			}
			f[i] = row
		}
		for i := range f {
			for j := range f[i] {
				f[i][j] /= colSum[j]
			}
		}
		factors[m] = f
	}
	total := 1.0
	for range dims {
		total *= 1
	}
	_ = total
	x := tensor.NewCOO(dims, 0)
	idx := make([]tensor.Index, len(dims))
	// Sample events: each event picks a component then an index per mode
	// from that component's distribution — exactly the Poisson CP model
	// with total mass = #events.
	events := int(mean)
	for e := 0; e < events; e++ {
		j := rng.Intn(rank)
		for m := range dims {
			idx[m] = tensor.Index(sampleFrom(factors[m], j, rng))
		}
		x.Append(idx, 1)
	}
	x.Dedup()
	return x
}

func sampleFrom(f [][]float64, j int, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i := range f {
		acc += f[i][j]
		if u <= acc {
			return i
		}
	}
	return len(f) - 1
}

func TestAPRLogLikelihoodNonDecreasing(t *testing.T) {
	x := poissonCounts([]int{30, 25, 20}, 3, 20000, 601)
	res, err := RunAPR(x, APROptions{Rank: 4, MaxIters: 15, Seed: 3, TrackLL: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.LLTrace); i++ {
		if res.LLTrace[i] < res.LLTrace[i-1]-1e-6*math.Abs(res.LLTrace[i-1]) {
			t.Errorf("log-likelihood dropped at iter %d: %.4f -> %.4f", i, res.LLTrace[i-1], res.LLTrace[i])
		}
	}
}

func TestAPRFactorsStochasticAndNonNegative(t *testing.T) {
	x := poissonCounts([]int{20, 20, 20}, 2, 8000, 602)
	res, err := RunAPR(x, APROptions{Rank: 3, MaxIters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range res.Factors {
		for j := 0; j < f.Cols; j++ {
			s := 0.0
			for i := 0; i < f.Rows; i++ {
				v := f.At(i, j)
				if v < 0 {
					t.Fatalf("negative entry in factor %d", m)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Errorf("factor %d column %d sums to %.12f", m, j, s)
			}
		}
	}
	for _, l := range res.Lambda {
		if l < 0 {
			t.Fatal("negative lambda")
		}
	}
}

// At a Poisson MLE stationary point the total model mass equals the total
// observed count: Σ λ ≈ Σ x.
func TestAPRMassConservation(t *testing.T) {
	x := poissonCounts([]int{25, 20, 15}, 3, 15000, 603)
	res, err := RunAPR(x, APROptions{Rank: 3, MaxIters: 40, InnerIter: 8, Seed: 7, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	mass := 0.0
	for _, l := range res.Lambda {
		mass += l
	}
	total := sumVals(x)
	if math.Abs(mass-total)/total > 0.05 {
		t.Errorf("model mass %.1f vs observed %.1f (%.1f%% off)", mass, total, 100*math.Abs(mass-total)/total)
	}
}

func TestAPRRecoversPlantedStructure(t *testing.T) {
	// The fitted rates should correlate strongly with the observed counts.
	x := poissonCounts([]int{30, 25, 20}, 2, 30000, 604)
	res, err := RunAPR(x, APROptions{Rank: 2, MaxIters: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]tensor.Index, 3)
	var sx, sy, sxx, syy, sxy float64
	nn := float64(x.NNZ())
	for k := 0; k < x.NNZ(); k++ {
		for m := range idx {
			idx[m] = x.Inds[m][k]
		}
		a := x.Vals[k]
		b := PredictAPR(res, idx)
		sx += a
		sy += b
		sxx += a * a
		syy += b * b
		sxy += a * b
	}
	corr := (nn*sxy - sx*sy) / math.Sqrt((nn*sxx-sx*sx)*(nn*syy-sy*sy))
	if corr < 0.5 {
		t.Errorf("rate-count correlation %.3f, want strong positive", corr)
	}
}

func TestAPRHigherOrder(t *testing.T) {
	x := poissonCounts([]int{12, 12, 12, 12}, 2, 12000, 605)
	res, err := RunAPR(x, APROptions{Rank: 2, MaxIters: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.LogLik) || math.IsInf(res.LogLik, 0) {
		t.Fatal("non-finite log-likelihood")
	}
}

func TestAPRValidation(t *testing.T) {
	x := poissonCounts([]int{5, 5, 5}, 2, 100, 606)
	if _, err := RunAPR(x, APROptions{Rank: 0}); err == nil {
		t.Error("Rank 0 accepted")
	}
	neg := tensor.NewCOO([]int{3, 3}, 1)
	neg.Append([]tensor.Index{0, 0}, -1)
	if _, err := RunAPR(neg, APROptions{Rank: 2}); err == nil {
		t.Error("negative tensor accepted")
	}
	empty := tensor.NewCOO([]int{3, 3}, 0)
	if _, err := RunAPR(empty, APROptions{Rank: 2}); err == nil {
		t.Error("empty tensor accepted")
	}
}

func TestAPRParallelConsistency(t *testing.T) {
	x := poissonCounts([]int{20, 20, 20}, 2, 6000, 607)
	a, err := RunAPR(x, APROptions{Rank: 2, MaxIters: 5, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAPR(x, APROptions{Rank: 2, MaxIters: 5, Seed: 13, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LogLik-b.LogLik) > 1e-6*math.Abs(a.LogLik) {
		t.Errorf("parallel LL %.8f differs from sequential %.8f", b.LogLik, a.LogLik)
	}
}
