package cpd

import (
	"encoding/json"
	"fmt"
	"time"

	"adatm/internal/obs"
)

// Phase identifies one stage of the CP-ALS loop in the per-phase run
// breakdown.
type Phase int

const (
	// PhaseSymbolic is the engine's one-time symbolic/structure build. It
	// happens at engine construction, outside Run's wall clock; the time is
	// copied from the engine's counters so reports can show the full cost.
	PhaseSymbolic Phase = iota
	// PhaseMTTKRP covers the sparse MTTKRP kernel calls.
	PhaseMTTKRP
	// PhaseGram covers Gram precomputation, the per-mode Hadamard of Gram
	// matrices, and the post-solve Gram refresh.
	PhaseGram
	// PhaseSolve covers the least-squares (or multiplicative-update) factor
	// solve, including the copy of the MTTKRP output into the factor.
	PhaseSolve
	// PhaseNormalize covers column normalization of the updated factor.
	PhaseNormalize
	// PhaseFit covers the fast-fit evaluation (and the one-time ‖X‖).
	PhaseFit
	// NumPhases is the number of phases (array length, not a phase).
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseSymbolic:  "symbolic",
	PhaseMTTKRP:    "mttkrp",
	PhaseGram:      "gram",
	PhaseSolve:     "solve",
	PhaseNormalize: "normalize",
	PhaseFit:       "fit",
}

// String returns the phase's report name — the single canonical name source
// shared by the -json report, span names, and metric labels.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// ParsePhase resolves a report name back to its Phase.
func ParsePhase(s string) (Phase, error) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cpd: unknown phase %q", s)
}

// MarshalJSON renders the phase as its canonical name, so JSON reports never
// leak the enum's integer values.
func (p Phase) MarshalJSON() ([]byte, error) {
	if p < 0 || p >= NumPhases {
		return nil, fmt.Errorf("cpd: cannot marshal out-of-range phase %d", int(p))
	}
	return json.Marshal(p.String())
}

// UnmarshalJSON parses a canonical phase name.
func (p *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParsePhase(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// PhaseStats accumulates one phase's cost over a run.
type PhaseStats struct {
	Time  time.Duration `json:"time_ns"`
	Count int64         `json:"count"`
	// Ops is the Hadamard op-unit count (MTTKRP phases only; 0 elsewhere).
	Ops int64 `json:"ops,omitempty"`
}

// RunStats is the structured per-phase breakdown of one decomposition run,
// attached to Result when Options.CollectStats is set.
type RunStats struct {
	Phases [NumPhases]PhaseStats
	// ModeMTTKRP splits the MTTKRP phase per tensor mode.
	ModeMTTKRP []PhaseStats
	// Steady-state allocation behaviour, measured from iteration 2 onward
	// (iteration 1 warms caches and scratch buffers).
	SteadyAllocs     int64
	SteadyAllocBytes int64
	SteadyIters      int64
}

// PhaseTimeSum returns the summed time of the iteration phases — everything
// except PhaseSymbolic, which is engine-construction work outside Run's
// wall clock. It accounts for (nearly) all of Result.TotalTime.
func (rs *RunStats) PhaseTimeSum() time.Duration {
	var sum time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if p == PhaseSymbolic {
			continue
		}
		sum += rs.Phases[p].Time
	}
	return sum
}

// MarshalJSON renders the phase array as a name-keyed object so reports
// stay readable without the Phase enum.
func (rs *RunStats) MarshalJSON() ([]byte, error) {
	phases := make(map[string]PhaseStats, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		phases[p.String()] = rs.Phases[p]
	}
	return json.Marshal(struct {
		Phases           map[string]PhaseStats `json:"phases"`
		ModeMTTKRP       []PhaseStats          `json:"mode_mttkrp"`
		SteadyAllocs     int64                 `json:"steady_allocs"`
		SteadyAllocBytes int64                 `json:"steady_alloc_bytes"`
		SteadyIters      int64                 `json:"steady_iters"`
	}{phases, rs.ModeMTTKRP, rs.SteadyAllocs, rs.SteadyAllocBytes, rs.SteadyIters})
}

// IterStats is the per-iteration progress snapshot handed to
// Options.Progress.
type IterStats struct {
	Iter       int           // 1-based iteration number just completed
	Fit        float64       // fit after this iteration
	FitDelta   float64       // fit − previous fit (+Inf after iteration 1)
	Elapsed    time.Duration // wall time since the iteration loop started
	MTTKRPTime time.Duration // cumulative MTTKRP time so far
}

// phaseClock attributes wall time to phases and fans each interval out to
// every enabled instrumentation sink: the RunStats breakdown (CollectStats),
// the span tracer (Chrome trace export), and the per-phase latency
// histograms of a metrics registry. Any subset may be nil. A nil clock is
// valid and makes every method a no-op, so the uninstrumented path costs one
// pointer test per phase boundary and performs no time syscalls beyond the
// coarse MTTKRP/total stopwatches that were always there.
type phaseClock struct {
	rs        *RunStats // nil unless Options.CollectStats
	tr        *obs.Tracer
	hist      [NumPhases]*obs.Histogram
	modeNames []string // tracer span names, one per mode ("mttkrp/mode<k>")
	itersC    *obs.Counter
	fitG      *obs.Gauge
	mark      time.Time
}

// newPhaseClock builds the clock for the enabled sinks; returns nil when no
// instrumentation is requested so the fast path stays a nil check.
func newPhaseClock(rs *RunStats, tr *obs.Tracer, reg *obs.Registry, nModes int) *phaseClock {
	if rs == nil && tr == nil && reg == nil {
		return nil
	}
	c := &phaseClock{rs: rs, tr: tr}
	if tr != nil {
		c.modeNames = make([]string, nModes)
		for m := range c.modeNames {
			c.modeNames[m] = fmt.Sprintf("mttkrp/mode%d", m)
		}
	}
	if reg != nil {
		for p := Phase(0); p < NumPhases; p++ {
			if p == PhaseSymbolic {
				continue // engine-construction work, outside Run's clock
			}
			c.hist[p] = reg.Histogram("adatm_cpd_phase_seconds",
				"CP-ALS phase latency.", obs.Labels{"phase": p.String()}, nil)
		}
		c.itersC = reg.Counter("adatm_cpd_iterations_total", "Completed ALS iterations.", nil)
		c.fitG = reg.Gauge("adatm_cpd_fit", "Model fit after the latest iteration.", nil)
	}
	return c
}

// start begins a measurement interval.
func (c *phaseClock) start() {
	if c != nil {
		c.mark = time.Now()
	}
}

// tick charges the time since the previous start/tick to the phase and
// starts the next interval.
func (c *phaseClock) tick(p Phase) {
	if c == nil {
		return
	}
	now := time.Now()
	d := now.Sub(c.mark)
	if c.rs != nil {
		c.rs.Phases[p].Time += d
		c.rs.Phases[p].Count++
	}
	c.hist[p].Observe(d.Seconds())
	if c.tr != nil {
		end := c.tr.Now()
		c.tr.EmitRange(phaseNames[p], 0, end-d.Nanoseconds(), d.Nanoseconds())
	}
	c.mark = now
}

// mttkrp records one completed MTTKRP kernel call (timed by the caller's
// stopwatch, which predates the clock) with its mode and op-unit delta.
func (c *phaseClock) mttkrp(mode int, d time.Duration, ops int64) {
	if c == nil {
		return
	}
	if c.rs != nil {
		ps := &c.rs.Phases[PhaseMTTKRP]
		ps.Time += d
		ps.Count++
		ps.Ops += ops
		mp := &c.rs.ModeMTTKRP[mode]
		mp.Time += d
		mp.Count++
		mp.Ops += ops
	}
	c.hist[PhaseMTTKRP].Observe(d.Seconds())
	if c.tr != nil {
		end := c.tr.Now()
		c.tr.EmitRange(c.modeNames[mode], 0, end-d.Nanoseconds(), d.Nanoseconds())
	}
}

// iteration publishes the per-iteration run-level metrics.
func (c *phaseClock) iteration(fit float64) {
	if c == nil {
		return
	}
	c.itersC.Inc()
	c.fitG.Set(fit)
}
