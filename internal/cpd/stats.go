package cpd

import (
	"encoding/json"
	"time"
)

// Phase identifies one stage of the CP-ALS loop in the per-phase run
// breakdown.
type Phase int

const (
	// PhaseSymbolic is the engine's one-time symbolic/structure build. It
	// happens at engine construction, outside Run's wall clock; the time is
	// copied from the engine's counters so reports can show the full cost.
	PhaseSymbolic Phase = iota
	// PhaseMTTKRP covers the sparse MTTKRP kernel calls.
	PhaseMTTKRP
	// PhaseGram covers Gram precomputation, the per-mode Hadamard of Gram
	// matrices, and the post-solve Gram refresh.
	PhaseGram
	// PhaseSolve covers the least-squares (or multiplicative-update) factor
	// solve, including the copy of the MTTKRP output into the factor.
	PhaseSolve
	// PhaseNormalize covers column normalization of the updated factor.
	PhaseNormalize
	// PhaseFit covers the fast-fit evaluation (and the one-time ‖X‖).
	PhaseFit
	// NumPhases is the number of phases (array length, not a phase).
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseSymbolic:  "symbolic",
	PhaseMTTKRP:    "mttkrp",
	PhaseGram:      "gram",
	PhaseSolve:     "solve",
	PhaseNormalize: "normalize",
	PhaseFit:       "fit",
}

// String returns the phase's report name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseStats accumulates one phase's cost over a run.
type PhaseStats struct {
	Time  time.Duration `json:"time_ns"`
	Count int64         `json:"count"`
	// Ops is the Hadamard op-unit count (MTTKRP phases only; 0 elsewhere).
	Ops int64 `json:"ops,omitempty"`
}

// RunStats is the structured per-phase breakdown of one decomposition run,
// attached to Result when Options.CollectStats is set.
type RunStats struct {
	Phases [NumPhases]PhaseStats
	// ModeMTTKRP splits the MTTKRP phase per tensor mode.
	ModeMTTKRP []PhaseStats
	// Steady-state allocation behaviour, measured from iteration 2 onward
	// (iteration 1 warms caches and scratch buffers).
	SteadyAllocs     int64
	SteadyAllocBytes int64
	SteadyIters      int64
}

// PhaseTimeSum returns the summed time of the iteration phases — everything
// except PhaseSymbolic, which is engine-construction work outside Run's
// wall clock. It accounts for (nearly) all of Result.TotalTime.
func (rs *RunStats) PhaseTimeSum() time.Duration {
	var sum time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if p == PhaseSymbolic {
			continue
		}
		sum += rs.Phases[p].Time
	}
	return sum
}

// MarshalJSON renders the phase array as a name-keyed object so reports
// stay readable without the Phase enum.
func (rs *RunStats) MarshalJSON() ([]byte, error) {
	phases := make(map[string]PhaseStats, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		phases[p.String()] = rs.Phases[p]
	}
	return json.Marshal(struct {
		Phases           map[string]PhaseStats `json:"phases"`
		ModeMTTKRP       []PhaseStats          `json:"mode_mttkrp"`
		SteadyAllocs     int64                 `json:"steady_allocs"`
		SteadyAllocBytes int64                 `json:"steady_alloc_bytes"`
		SteadyIters      int64                 `json:"steady_iters"`
	}{phases, rs.ModeMTTKRP, rs.SteadyAllocs, rs.SteadyAllocBytes, rs.SteadyIters})
}

// IterStats is the per-iteration progress snapshot handed to
// Options.Progress.
type IterStats struct {
	Iter       int           // 1-based iteration number just completed
	Fit        float64       // fit after this iteration
	FitDelta   float64       // fit − previous fit (+Inf after iteration 1)
	Elapsed    time.Duration // wall time since the iteration loop started
	MTTKRPTime time.Duration // cumulative MTTKRP time so far
}

// phaseClock attributes wall time to phases. A nil clock is valid and makes
// every method a no-op, so the uninstrumented path costs one pointer test
// per phase boundary and performs no time syscalls beyond the coarse
// MTTKRP/total stopwatches that were always there.
type phaseClock struct {
	rs   *RunStats
	mark time.Time
}

// start begins a measurement interval.
func (c *phaseClock) start() {
	if c != nil {
		c.mark = time.Now()
	}
}

// tick charges the time since the previous start/tick to the phase and
// starts the next interval.
func (c *phaseClock) tick(p Phase) {
	if c == nil {
		return
	}
	now := time.Now()
	c.rs.Phases[p].Time += now.Sub(c.mark)
	c.rs.Phases[p].Count++
	c.mark = now
}
