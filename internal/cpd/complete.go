package cpd

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"adatm/internal/dense"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Tensor completion: alternating least squares on the *observed* entries
// only. Unlike Run, which treats unobserved coordinates as zeros (the right
// semantics for count data), Complete solves the masked problem
//
//	min_{U} Σ_{(i₁..i_N) ∈ Ω} ( x_{i₁..i_N} − Σ_r Π_n U⁽ⁿ⁾(i_n, r) )² + λ‖U‖²
//
// which is the recommender-system semantics: missing entries are unknown,
// not zero. Each mode-n row update solves its own R×R normal system built
// from that row's observed entries, so the per-iteration cost is
// O(nnz·R² + rows·R³).

// CompleteOptions configures Complete.
type CompleteOptions struct {
	Rank     int
	MaxIters int     // default 30
	Tol      float64 // convergence threshold on observed RMSE change (default 1e-5)
	Seed     int64
	Workers  int
	Ridge    float64 // per-row Tikhonov term; default 1e-3 (0 keeps the default; use negative to force 0)
	// TrackRMSE retains the observed-entry RMSE after every iteration.
	TrackRMSE bool
}

// CompleteResult is a completion model: factors without the λ normalization
// (scale is left inside the factors, as is customary for completion).
type CompleteResult struct {
	Factors   []*dense.Matrix
	Iters     int
	RMSE      float64 // observed-entry RMSE after the final iteration
	Converged bool
	RMSETrace []float64
	TotalTime time.Duration
}

// rowIndex is a CSR-like view grouping nonzeros by their index in one mode.
type rowIndex struct {
	ptr   []int32 // len dims[mode]+1
	elems []int32 // nonzero ids grouped by row
}

func buildRowIndex(x *tensor.COO, mode int) rowIndex {
	ind := x.Inds[mode]
	ri := rowIndex{ptr: make([]int32, x.Dims[mode]+1), elems: make([]int32, x.NNZ())}
	for _, i := range ind {
		ri.ptr[i+1]++
	}
	for i := 1; i < len(ri.ptr); i++ {
		ri.ptr[i] += ri.ptr[i-1]
	}
	next := append([]int32(nil), ri.ptr[:len(ri.ptr)-1]...)
	for k := 0; k < x.NNZ(); k++ {
		i := ind[k]
		ri.elems[next[i]] = int32(k)
		next[i]++
	}
	return ri
}

// Complete fits a completion model to the observed entries of x.
func Complete(x *tensor.COO, opt CompleteOptions) (*CompleteResult, error) {
	n := x.Order()
	if opt.Rank <= 0 {
		return nil, errors.New("cpd: Rank must be positive")
	}
	if x.NNZ() == 0 {
		return nil, errors.New("cpd: empty tensor")
	}
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 30
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-5
	}
	ridge := opt.Ridge
	if ridge == 0 {
		ridge = 1e-3
	} else if ridge < 0 {
		ridge = 0
	}
	r := opt.Rank

	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*dense.Matrix, n)
	for m := 0; m < n; m++ {
		factors[m] = dense.Random(x.Dims[m], r, rng)
		// Small magnitudes keep the first products near the data scale.
		factors[m].Scale(0.5)
	}
	rows := make([]rowIndex, n)
	for m := 0; m < n; m++ {
		rows[m] = buildRowIndex(x, m)
	}

	res := &CompleteResult{Factors: factors}
	start := time.Now()
	prev := math.Inf(1)
	for iter := 1; iter <= maxIters; iter++ {
		for mode := 0; mode < n; mode++ {
			updateModeMasked(x, factors, rows[mode], mode, ridge, opt.Workers)
		}
		rmse := observedRMSE(x, factors, opt.Workers)
		if opt.TrackRMSE {
			res.RMSETrace = append(res.RMSETrace, rmse)
		}
		res.Iters = iter
		res.RMSE = rmse
		if math.Abs(prev-rmse) < tol {
			res.Converged = true
			break
		}
		prev = rmse
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// updateModeMasked solves, for every row i of the mode's factor, the
// normal system built from the row's observed entries:
// ( Σ_k h_k h_kᵀ + λI ) u = Σ_k x_k h_k, where h_k is the Hadamard product
// of the other modes' factor rows at nonzero k. Rows are independent.
func updateModeMasked(x *tensor.COO, factors []*dense.Matrix, ri rowIndex, mode int, ridge float64, workers int) {
	n := x.Order()
	r := factors[mode].Cols
	par.ForBlocks(x.Dims[mode], 64, workers, func(lo, hi int) {
		h := make([]float64, r)
		a := dense.New(r, r)
		b := make([]float64, r)
		for i := lo; i < hi; i++ {
			k0, k1 := ri.ptr[i], ri.ptr[i+1]
			if k0 == k1 {
				continue // unobserved row: leave the prior factor row
			}
			a.Zero()
			for j := range b {
				b[j] = 0
			}
			for e := k0; e < k1; e++ {
				k := ri.elems[e]
				for j := range h {
					h[j] = 1
				}
				for m := 0; m < n; m++ {
					if m == mode {
						continue
					}
					f := factors[m].Row(int(x.Inds[m][k]))
					for j := range h {
						h[j] *= f[j]
					}
				}
				v := x.Vals[k]
				for p := 0; p < r; p++ {
					hp := h[p]
					b[p] += v * hp
					if hp == 0 {
						continue
					}
					arow := a.Row(p)
					for q := 0; q < r; q++ {
						arow[q] += hp * h[q]
					}
				}
			}
			for p := 0; p < r; p++ {
				a.Set(p, p, a.At(p, p)+ridge)
			}
			solveRowSystem(a, b, factors[mode].Row(i))
		}
	})
}

// solveRowSystem solves a·u = b for one factor row, falling back to the
// pseudoinverse when the per-row system is singular.
func solveRowSystem(a *dense.Matrix, b, out []float64) {
	l, ok := dense.Cholesky(a)
	if !ok {
		pinv := dense.PseudoInverseSym(a, 0)
		for p := range out {
			s := 0.0
			for q := range b {
				s += pinv.At(p, q) * b[q]
			}
			out[p] = s
		}
		return
	}
	r := len(b)
	y := make([]float64, r)
	for i := 0; i < r; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	for i := r - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < r; k++ {
			s -= l.At(k, i) * out[k]
		}
		out[i] = s / l.At(i, i)
	}
}

// observedRMSE evaluates the model on the observed entries.
func observedRMSE(x *tensor.COO, factors []*dense.Matrix, workers int) float64 {
	n := x.Order()
	r := factors[0].Cols
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	partial := make([]float64, w)
	par.ForWorker(x.NNZ(), w, func(worker, lo, hi int) {
		h := make([]float64, r)
		s := 0.0
		for k := lo; k < hi; k++ {
			for j := range h {
				h[j] = 1
			}
			for m := 0; m < n; m++ {
				f := factors[m].Row(int(x.Inds[m][k]))
				for j := range h {
					h[j] *= f[j]
				}
			}
			est := 0.0
			for _, v := range h {
				est += v
			}
			d := x.Vals[k] - est
			s += d * d
		}
		partial[worker] += s
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return math.Sqrt(total / float64(x.NNZ()))
}

// Predict evaluates a completion model at one coordinate.
func (c *CompleteResult) Predict(idx []tensor.Index) float64 {
	r := c.Factors[0].Cols
	v := 0.0
	for j := 0; j < r; j++ {
		p := 1.0
		for m, f := range c.Factors {
			p *= f.At(int(idx[m]), j)
		}
		v += p
	}
	return v
}
