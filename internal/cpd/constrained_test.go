package cpd

import (
	"math"
	"testing"

	"adatm/internal/coo"
	"adatm/internal/csf"
	"adatm/internal/tensor"
)

func TestNonNegativeFactorsStayNonNegative(t *testing.T) {
	x := tensor.DenseLowRank([]int{12, 10, 8}, 3, 0, 201) // non-negative by construction
	for name, eng := range engines(x) {
		res, err := Run(x, eng, Options{Rank: 4, MaxIters: 30, Tol: 1e-8, Seed: 3, NonNegative: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for m, f := range res.Factors {
			for _, v := range f.Data {
				if v < 0 {
					t.Fatalf("%s: negative entry %g in factor %d", name, v, m)
				}
			}
		}
		for _, l := range res.Lambda {
			if l < 0 {
				t.Fatalf("%s: negative lambda %g", name, l)
			}
		}
	}
}

func TestNonNegativeFitsNonNegativeData(t *testing.T) {
	x := tensor.DenseLowRank([]int{12, 10, 8}, 2, 0, 202)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 300, Tol: 1e-10, Seed: 5, NonNegative: true})
	if err != nil {
		t.Fatal(err)
	}
	// Multiplicative updates converge slowly; 0.97 is a solid recovery gate.
	if res.Fit < 0.97 {
		t.Errorf("nonnegative fit %.4f after %d iters", res.Fit, res.Iters)
	}
}

func TestNonNegativeRejectsNegativeTensor(t *testing.T) {
	x := tensor.NewCOO([]int{3, 3}, 2)
	x.Append([]tensor.Index{0, 0}, 1)
	x.Append([]tensor.Index{1, 2}, -1)
	if _, err := Run(x, coo.New(x, 1), Options{Rank: 2, NonNegative: true}); err == nil {
		t.Fatal("negative tensor accepted in NonNegative mode")
	}
}

func TestNonNegativeFitMostlyMonotone(t *testing.T) {
	x := tensor.DenseLowRank([]int{10, 10, 10}, 3, 0, 203)
	res, err := Run(x, csf.NewAllMode(x, 2), Options{Rank: 4, MaxIters: 40, Tol: 1e-12, Seed: 7, NonNegative: true, TrackFit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.FitTrace); i++ {
		if res.FitTrace[i] < res.FitTrace[i-1]-1e-5 {
			t.Errorf("fit dropped at iter %d: %.8f -> %.8f", i, res.FitTrace[i-1], res.FitTrace[i])
		}
	}
}

func TestRidgeShrinksSolution(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 300, 0.5, 204)
	plain, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ridged, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 10, Seed: 9, Ridge: 50})
	if err != nil {
		t.Fatal(err)
	}
	normOf := func(r *Result) float64 {
		s := 0.0
		for _, l := range r.Lambda {
			s += l * l
		}
		return math.Sqrt(s)
	}
	if normOf(ridged) >= normOf(plain) {
		t.Errorf("ridge did not shrink component weights: %g vs %g", normOf(ridged), normOf(plain))
	}
	// Heavy ridge necessarily lowers the training fit.
	if ridged.Fit > plain.Fit {
		t.Errorf("ridged fit %.4f above unregularized %.4f", ridged.Fit, plain.Fit)
	}
}

func TestRidgeStabilizesRankDeficiency(t *testing.T) {
	// Rank far above the data's information content makes H nearly
	// singular; ridge must keep everything finite.
	x := tensor.NewCOO([]int{4, 4, 4}, 3)
	x.Append([]tensor.Index{0, 0, 0}, 1)
	x.Append([]tensor.Index{1, 1, 1}, 2)
	x.Append([]tensor.Index{2, 2, 2}, 3)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 8, MaxIters: 20, Seed: 11, Ridge: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Factors {
		for _, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite factor entry under ridge")
			}
		}
	}
}
