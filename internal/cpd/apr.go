package cpd

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"adatm/internal/dense"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// CP-APR: CANDECOMP/PARAFAC alternating Poisson regression (Chi & Kolda,
// 2012) with multiplicative updates. For count tensors, maximizing the
// Poisson log-likelihood
//
//	max Σ_i x_i·log(m_i) − m_i,   m = Σ_r λ_r u¹ᵣ ∘ … ∘ uᴺᵣ,  U ≥ 0
//
// is the statistically right objective (CP-ALS minimizes a Gaussian loss).
// The multiplicative update only evaluates the model at the *nonzero*
// coordinates, so each inner iteration streams the nonzeros once per mode —
// the same data-access pattern as MTTKRP with the same row-grouping reuse.

// APROptions configures RunAPR.
type APROptions struct {
	Rank      int
	MaxIters  int     // outer iterations (default 25)
	InnerIter int     // multiplicative updates per mode per outer iteration (default 5)
	Tol       float64 // convergence threshold on log-likelihood change per nonzero (default 1e-6)
	Seed      int64
	Workers   int
	// TrackLL retains the per-outer-iteration average log-likelihood.
	TrackLL bool
}

// APRResult is a fitted Poisson CP model.
type APRResult struct {
	Lambda    []float64
	Factors   []*dense.Matrix // column-stochastic up to Lambda (columns sum to Lambda)
	Iters     int
	LogLik    float64 // final Σ x·log(m) − m (up to the constant Σ log(x!))
	Converged bool
	LLTrace   []float64
	TotalTime time.Duration
}

// RunAPR fits a Poisson CP model to a non-negative (count) tensor.
func RunAPR(x *tensor.COO, opt APROptions) (*APRResult, error) {
	n := x.Order()
	if opt.Rank <= 0 {
		return nil, errors.New("cpd: Rank must be positive")
	}
	if x.NNZ() == 0 {
		return nil, errors.New("cpd: empty tensor")
	}
	for _, v := range x.Vals {
		if v < 0 {
			return nil, errors.New("cpd: CP-APR requires a non-negative tensor")
		}
	}
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 25
	}
	inner := opt.InnerIter
	if inner <= 0 {
		inner = 5
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	r := opt.Rank

	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*dense.Matrix, n)
	for m := 0; m < n; m++ {
		factors[m] = dense.Random(x.Dims[m], r, rng)
		for i := range factors[m].Data {
			factors[m].Data[i] += 0.1 // bound away from zero
		}
		normalizeColumnsL1(factors[m], nil)
	}
	// The update derivation requires every non-working factor to be
	// column-stochastic; the scale lives in lambda.
	lambda := make([]float64, r)
	scale := float64(sumVals(x)) / float64(r)
	for j := range lambda {
		lambda[j] = scale
	}

	res := &APRResult{Factors: factors}
	start := time.Now()
	prevLL := math.Inf(-1)
	// pi[k][j] = Π_{m≠mode} U⁽ᵐ⁾(i_m(k), j): the Khatri-Rao row product per
	// nonzero, recomputed per mode (the analogue of the MTTKRP inner rows).
	pi := dense.New(x.NNZ(), r)
	for iter := 1; iter <= maxIters; iter++ {
		for mode := 0; mode < n; mode++ {
			// Absorb lambda into the working factor so the update is plain
			// multiplicative (standard CP-APR formulation).
			b := factors[mode]
			for i := 0; i < b.Rows; i++ {
				row := b.Row(i)
				for j := range row {
					row[j] *= lambda[j]
				}
			}
			computePi(x, factors, mode, pi, opt.Workers)
			for it := 0; it < inner; it++ {
				multiplicativeUpdate(x, mode, b, pi, opt.Workers)
			}
			// Pull the column sums back out as the new lambda.
			normalizeColumnsL1(b, lambda)
		}
		ll := logLikelihood(x, factors, lambda, pi, opt.Workers)
		if opt.TrackLL {
			res.LLTrace = append(res.LLTrace, ll)
		}
		res.Iters = iter
		res.LogLik = ll
		if math.Abs(ll-prevLL)/float64(x.NNZ()) < tol {
			res.Converged = true
			break
		}
		prevLL = ll
	}
	res.Lambda = lambda
	res.TotalTime = time.Since(start)
	return res, nil
}

// computePi fills pi[k,:] with the Hadamard product of the non-target
// factor rows at nonzero k.
func computePi(x *tensor.COO, factors []*dense.Matrix, mode int, pi *dense.Matrix, workers int) {
	n := x.Order()
	par.ForRange(x.NNZ(), workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			row := pi.Row(k)
			for j := range row {
				row[j] = 1
			}
			for m := 0; m < n; m++ {
				if m == mode {
					continue
				}
				f := factors[m].Row(int(x.Inds[m][k]))
				for j := range row {
					row[j] *= f[j]
				}
			}
		}
	})
}

// multiplicativeUpdate applies one CP-APR multiplicative step to the
// working factor b (with lambda absorbed):
//
//	B ← B ∘ ( Φ ⁄ (1·Πᵀ1-row-sums) ),  Φ(i,:) = Σ_{k: row k = i} (x_k/m_k)·π_k
//
// where m_k = ⟨b(i_k,:), π_k⟩ is the model value at nonzero k. The
// denominator Σ_k π_k over *all* columns of the matricization reduces, for
// each row, to the column sums of Π restricted to... since Π rows for
// absent coordinates contribute too; CP-APR's standard trick is that the
// denominator is eᵀΠ per column, independent of the row, computed over all
// possible index combinations — which factorizes into the product of the
// other factors' column sums (each column of every factor is
// column-stochastic except the working one). Here the non-working factors
// are kept column-normalized, so the denominator is exactly 1 per
// component and the update is Φ itself.
func multiplicativeUpdate(x *tensor.COO, mode int, b *dense.Matrix, pi *dense.Matrix, workers int) {
	r := b.Cols
	ind := x.Inds[mode]
	phi := dense.New(b.Rows, r)
	stripes := par.NewStripes(1024)
	par.ForRange(x.NNZ(), workers, func(lo, hi int) {
		tmp := make([]float64, r)
		for k := lo; k < hi; k++ {
			i := ind[k]
			brow := b.Row(int(i))
			prow := pi.Row(k)
			m := 0.0
			for j := 0; j < r; j++ {
				m += brow[j] * prow[j]
			}
			if m < 1e-300 {
				m = 1e-300
			}
			w := x.Vals[k] / m
			for j := 0; j < r; j++ {
				tmp[j] = w * prow[j]
			}
			stripes.Lock(i)
			ph := phi.Row(int(i))
			for j := 0; j < r; j++ {
				ph[j] += tmp[j]
			}
			stripes.Unlock(i)
		}
	})
	dense.Hadamard(b, phi, b)
}

// normalizeColumnsL1 rescales every column of m to sum 1, writing the
// original sums into lambda when non-nil. Zero columns are left untouched
// (their lambda entry reports 0).
func normalizeColumnsL1(m *dense.Matrix, lambda []float64) {
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for i := 0; i < m.Rows; i++ {
			s += m.At(i, j)
		}
		if lambda != nil {
			lambda[j] = s
		}
		if s > 0 {
			inv := 1 / s
			for i := 0; i < m.Rows; i++ {
				m.Set(i, j, m.At(i, j)*inv)
			}
		}
	}
}

func sumVals(x *tensor.COO) float64 {
	s := 0.0
	for _, v := range x.Vals {
		s += v
	}
	return s
}

// logLikelihood evaluates Σ_nz x·log(m) − Σ_full m. The full-model mass
// Σ m factorizes as Σ_j λ_j Π_m (column sums of U⁽ᵐ⁾) = Σ_j λ_j (factors
// column-stochastic), and the first term streams the nonzeros using the
// last computed pi (mode n−1), whose model value needs the mode-(n−1)
// factor with lambda applied.
func logLikelihood(x *tensor.COO, factors []*dense.Matrix, lambda []float64, pi *dense.Matrix, workers int) float64 {
	n := x.Order()
	r := len(lambda)
	last := factors[n-1]
	ind := x.Inds[n-1]
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	partial := make([]float64, w)
	par.ForWorker(x.NNZ(), w, func(worker, lo, hi int) {
		s := 0.0
		for k := lo; k < hi; k++ {
			brow := last.Row(int(ind[k]))
			prow := pi.Row(k)
			m := 0.0
			for j := 0; j < r; j++ {
				m += lambda[j] * brow[j] * prow[j]
			}
			if m < 1e-300 {
				m = 1e-300
			}
			s += x.Vals[k] * math.Log(m)
		}
		partial[worker] += s
	})
	ll := 0.0
	for _, s := range partial {
		ll += s
	}
	for _, l := range lambda {
		ll -= l
	}
	return ll
}

// PredictAPR evaluates the Poisson model rate at one coordinate.
func PredictAPR(res *APRResult, idx []tensor.Index) float64 {
	v := 0.0
	for j := range res.Lambda {
		p := res.Lambda[j]
		for m, f := range res.Factors {
			p *= f.At(int(idx[m]), j)
		}
		v += p
	}
	return v
}
