package cpd

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adatm/internal/ckpt"
	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/tensor"
)

func TestModelRoundTrip(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 300, 0.5, 901)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Lambda {
		if got.Lambda[r] != res.Lambda[r] {
			t.Fatalf("lambda changed: %v vs %v", got.Lambda, res.Lambda)
		}
	}
	for m := range res.Factors {
		if d := got.Factors[m].MaxAbsDiff(res.Factors[m]); d != 0 {
			t.Fatalf("factor %d changed by %g", m, d)
		}
	}
	// The reloaded model must reconstruct identically.
	idx := []tensor.Index{1, 2, 3}
	if a, b := Reconstruct(res, idx), Reconstruct(got, idx); math.Abs(a-b) > 0 {
		t.Fatalf("reconstruction differs: %g vs %g", a, b)
	}
}

func TestReadModelRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "hello",
		"wrong format":   `{"format":"other/v9","order":1,"rank":1,"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
		"order mismatch": `{"format":"adatm-cp/v1","order":2,"rank":1,"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
		"ragged data":    `{"format":"adatm-cp/v1","order":1,"rank":2,"factors":[{"rows":2,"cols":2,"data":[1,2,3]}]}`,
		"bad lambda":     `{"format":"adatm-cp/v1","order":1,"rank":2,"lambda":[1],"factors":[{"rows":1,"cols":2,"data":[1,2]}]}`,
		"zero order":     `{"format":"adatm-cp/v1","order":0,"rank":1,"factors":[]}`,
	}
	for name, in := range cases {
		if _, _, err := ReadModel(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSaveModelCrashMidWriteKeepsOldFile kills the save mid-stream (an
// injected short-writing sink) and asserts the previously saved model
// survives intact — the regression pin for the non-atomic os.Create path.
func TestSaveModelCrashMidWriteKeepsOldFile(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 300, 0.5, 901)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := SaveModel(path, res); err != nil {
		t.Fatal(err)
	}

	res2, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	restore := ckpt.InjectFault(&ckpt.Fault{Point: ckpt.FaultMidWrite, AfterBytes: 64})
	err = SaveModel(path, res2)
	restore()
	if !errors.Is(err, ckpt.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	got, err := LoadModel(path)
	if err != nil {
		t.Fatalf("old model corrupted by crashed save: %v", err)
	}
	for m := range res.Factors {
		if d := got.Factors[m].MaxAbsDiff(res.Factors[m]); d != 0 {
			t.Fatalf("factor %d changed by %g after crashed save", m, d)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("crashed save left stray files: %v", ents)
	}
}

// TestReadModelRejectsNonFinite: NaN/Inf in lambda or factor data must be
// refused with the offending location named, matching ReadTNS's policy.
func TestReadModelRejectsNonFinite(t *testing.T) {
	// Valid JSON can't spell NaN/Inf, so the decoder catches textual forms.
	for name, in := range map[string]string{
		"nan literal":  `{"format":"adatm-cp/v1","order":1,"rank":2,"factors":[{"rows":2,"cols":2,"data":[1,2,NaN,4]}]}`,
		"inf overflow": `{"format":"adatm-cp/v1","order":1,"rank":1,"lambda":[1e999],"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
	} {
		if _, _, err := ReadModel(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Non-textual corruption (or a foreign writer) can still hand us
	// non-finite float64s; the schema validation must name the location.
	fin := func(v ...float64) []*dense.Matrix {
		return []*dense.Matrix{{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}, {Rows: 1, Cols: 2, Data: v}}
	}
	if err := validateModelFinite([]float64{1, math.NaN()}, fin(1, 2)); err == nil || !strings.Contains(err.Error(), "lambda[1]") {
		t.Errorf("NaN lambda: %v", err)
	}
	if err := validateModelFinite([]float64{1, 2}, fin(1, math.Inf(-1))); err == nil ||
		!strings.Contains(err.Error(), "factor 1") || !strings.Contains(err.Error(), "(0,1)") {
		t.Errorf("Inf factor entry: %v", err)
	}
	if err := validateModelFinite([]float64{1, 2}, fin(1, 2)); err != nil {
		t.Errorf("finite model rejected: %v", err)
	}
	// Baseline: a well-formed finite model still loads end to end.
	lambda, factors, err := ReadModel(strings.NewReader(
		`{"format":"adatm-cp/v1","order":1,"rank":1,"lambda":[1],"factors":[{"rows":1,"cols":1,"data":[1]}]}`))
	if err != nil || len(lambda) != 1 || len(factors) != 1 {
		t.Fatalf("baseline model rejected: %v", err)
	}
}

func TestWriteModelRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteModel(&buf, nil, nil); err == nil {
		t.Error("empty factor list accepted")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Error("missing file accepted")
	}
}
