package cpd

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"adatm/internal/coo"
	"adatm/internal/tensor"
)

func TestModelRoundTrip(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 300, 0.5, 901)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Lambda {
		if got.Lambda[r] != res.Lambda[r] {
			t.Fatalf("lambda changed: %v vs %v", got.Lambda, res.Lambda)
		}
	}
	for m := range res.Factors {
		if d := got.Factors[m].MaxAbsDiff(res.Factors[m]); d != 0 {
			t.Fatalf("factor %d changed by %g", m, d)
		}
	}
	// The reloaded model must reconstruct identically.
	idx := []tensor.Index{1, 2, 3}
	if a, b := Reconstruct(res, idx), Reconstruct(got, idx); math.Abs(a-b) > 0 {
		t.Fatalf("reconstruction differs: %g vs %g", a, b)
	}
}

func TestReadModelRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "hello",
		"wrong format":   `{"format":"other/v9","order":1,"rank":1,"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
		"order mismatch": `{"format":"adatm-cp/v1","order":2,"rank":1,"factors":[{"rows":1,"cols":1,"data":[1]}]}`,
		"ragged data":    `{"format":"adatm-cp/v1","order":1,"rank":2,"factors":[{"rows":2,"cols":2,"data":[1,2,3]}]}`,
		"bad lambda":     `{"format":"adatm-cp/v1","order":1,"rank":2,"lambda":[1],"factors":[{"rows":1,"cols":2,"data":[1,2]}]}`,
		"zero order":     `{"format":"adatm-cp/v1","order":0,"rank":1,"factors":[]}`,
	}
	for name, in := range cases {
		if _, _, err := ReadModel(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteModelValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteModel(&buf, nil, nil); err == nil {
		t.Error("empty factor list accepted")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Error("missing file accepted")
	}
}
