package cpd

import (
	"errors"
	"fmt"
	"time"

	"adatm/internal/audit"
	"adatm/internal/ckpt"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/tensor"
)

// CheckpointConfig enables durable, resumable state for a run: the loop
// snapshots its boundary state every iteration and atomically writes a
// checkpoint file whenever a trigger fires, keeping a rolling window of the
// newest files. A crash, OOM-kill, or SIGTERM then costs at most the work
// since the last write instead of the whole run; Resume continues from the
// newest checkpoint and reaches the same fit the uninterrupted run would
// have (bit-for-bit — the checkpoint captures the exact factor state and
// JSON float64 round-trips are exact).
type CheckpointConfig struct {
	// Dir is the checkpoint directory (required; created if absent).
	Dir string
	// Every writes a checkpoint after every N completed iterations.
	// When both Every and Interval are unset, Every defaults to 1.
	Every int
	// Interval writes a checkpoint when this much wall-clock time has
	// passed since the previous write (0 disables the wall-clock trigger).
	Interval time.Duration
	// Retain keeps the newest K checkpoint files (<= 0: ckpt.DefaultRetain).
	Retain int
	// fault arms deterministic write failures for crash-safety tests.
	fault *ckpt.Fault
}

// checkpointer runs the checkpoint protocol inside the ALS loop. The
// boundary snapshot reuses its buffers, so steady-state iterations with
// checkpointing disabled cost one pointer test and enabled ones allocate
// only inside the periodic write itself.
type checkpointer struct {
	mgr       *ckpt.Manager
	every     int
	interval  time.Duration
	snap      ckpt.Checkpoint
	snapValid bool
	written   int // iteration of the last committed checkpoint
	lastWrite time.Time
}

// newCheckpointer builds the loop's checkpointer; a nil config yields a nil
// checkpointer (the free path). sweep is the resolved mode order, so the
// fingerprint is identical whether the caller passed nil or the explicit
// natural order.
func newCheckpointer(x *tensor.COO, opt Options, sweep []int) (*checkpointer, error) {
	cfg := opt.Checkpoint
	if cfg == nil {
		return nil, nil
	}
	mgr, err := ckpt.NewManager(cfg.Dir, cfg.Retain)
	if err != nil {
		return nil, err
	}
	if cfg.fault != nil {
		mgr.SetFault(cfg.fault)
	}
	mgr.Instrument(opt.Metrics)
	every := cfg.Every
	if every <= 0 && cfg.Interval <= 0 {
		every = 1
	}
	c := &checkpointer{mgr: mgr, every: every, interval: cfg.Interval, lastWrite: time.Now()}
	c.snap.Seed = opt.Seed
	c.snap.Fingerprint = fingerprintFor(x, opt, sweep)
	return c, nil
}

// fingerprintFor hashes the tensor plus the trajectory-determining options
// into the identity checkpoints are bound to.
func fingerprintFor(x *tensor.COO, opt Options, sweep []int) string {
	return ckpt.Fingerprint(x.Dims, x.Inds, x.Vals, ckpt.Meta{
		Rank:        opt.Rank,
		Ridge:       opt.Ridge,
		NonNegative: opt.NonNegative,
		ModeOrder:   sweep,
	})
}

// snapshot copies the iteration-boundary state into the pending checkpoint,
// reusing the previous snapshot's buffers.
func (c *checkpointer) snapshot(iter int, fit float64, lambda []float64, factors []*dense.Matrix, trace []float64) {
	c.snap.Iter = iter
	c.snap.Fit = fit
	c.snap.Lambda = append(c.snap.Lambda[:0], lambda...)
	if c.snap.Factors == nil {
		c.snap.Factors = make([]*dense.Matrix, len(factors))
	}
	for m, f := range factors {
		if c.snap.Factors[m] == nil {
			c.snap.Factors[m] = dense.New(f.Rows, f.Cols)
		}
		c.snap.Factors[m].CopyFrom(f)
	}
	c.snap.FitTrace = append(c.snap.FitTrace[:0], trace...)
	c.snapValid = true
}

// boundary is called after every completed iteration: it refreshes the
// snapshot and writes a checkpoint when a trigger is due. A write failure
// aborts the run — the caller asked for durability and is not getting it.
func (c *checkpointer) boundary(iter int, fit float64, lambda []float64, factors []*dense.Matrix, trace []float64) error {
	c.snapshot(iter, fit, lambda, factors, trace)
	if c.due(iter) {
		return c.write()
	}
	return nil
}

func (c *checkpointer) due(iter int) bool {
	if c.every > 0 && iter-c.written >= c.every {
		return true
	}
	return c.interval > 0 && time.Since(c.lastWrite) >= c.interval
}

func (c *checkpointer) write() error {
	if _, err := c.mgr.Save(&c.snap); err != nil {
		return fmt.Errorf("cpd: checkpoint: %w", err)
	}
	c.written = c.snap.Iter
	c.lastWrite = time.Now()
	return nil
}

// finalWrite persists the newest boundary state on any exit path —
// convergence, iteration cap, cancellation (SIGTERM via Ctx), or an early
// Progress stop — so a resume never replays work the run already finished.
func (c *checkpointer) finalWrite() error {
	if c == nil || !c.snapValid || c.snap.Iter <= c.written {
		return nil
	}
	return c.write()
}

// Resume continues a checkpointed run: it validates that the checkpoint was
// taken for exactly this tensor and these options (fingerprint match),
// seeds the loop with the checkpointed factors, λ, fit history, and
// convergence state, and runs the remaining iterations up to opt.MaxIters.
// The trajectory is identical to the uninterrupted run's, so the final fit
// matches to machine precision. Set opt.Checkpoint to keep checkpointing
// the resumed run (usually with the same directory).
func Resume(x *tensor.COO, eng engine.Engine, c *ckpt.Checkpoint, opt Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("cpd: nil checkpoint")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Rank <= 0 {
		return nil, errors.New("cpd: Rank must be positive")
	}
	sweep, err := sweepOrder(opt.ModeOrder, x.Order())
	if err != nil {
		return nil, err
	}
	if fp := fingerprintFor(x, opt, sweep); fp != c.Fingerprint {
		return nil, fmt.Errorf("cpd: checkpoint fingerprint %s does not match this tensor+options (%s): different tensor, rank, ridge, non-negativity, or mode order", c.Fingerprint, fp)
	}
	if len(c.Factors) != x.Order() {
		return nil, fmt.Errorf("cpd: checkpoint has %d factors for order-%d tensor", len(c.Factors), x.Order())
	}
	// initFactors clones Init, so the checkpoint stays untouched by the run.
	opt.Init = c.Factors
	opt.Seed = c.Seed
	if opt.Audit != nil {
		opt.Audit.RecordEvent(audit.Event{Kind: "resume", Iter: c.Iter, Fingerprint: c.Fingerprint})
	}
	return run(x, eng, opt, &resumeState{
		startIter: c.Iter + 1,
		prevFit:   c.Fit,
		lambda:    c.Lambda,
		fitTrace:  c.FitTrace,
	})
}

// resumeState carries a checkpoint's loop state into run.
type resumeState struct {
	startIter int
	prevFit   float64
	lambda    []float64
	fitTrace  []float64
}
