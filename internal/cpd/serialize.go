package cpd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"adatm/internal/ckpt"
	"adatm/internal/dense"
)

// Model serialization: a portable JSON container for fitted CP models
// (λ + factor matrices), so decompositions can be computed once and reused
// by downstream tools.

// modelJSON is the on-disk schema.
type modelJSON struct {
	Format  string       `json:"format"` // "adatm-cp/v1"
	Order   int          `json:"order"`
	Rank    int          `json:"rank"`
	Lambda  []float64    `json:"lambda"`
	Factors []matrixJSON `json:"factors"`
}

type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

const modelFormat = "adatm-cp/v1"

// WriteModel serializes λ and the factor matrices to w as JSON.
func WriteModel(w io.Writer, lambda []float64, factors []*dense.Matrix) error {
	if len(factors) == 0 {
		return fmt.Errorf("cpd: no factors to serialize")
	}
	m := modelJSON{
		Format: modelFormat,
		Order:  len(factors),
		Rank:   factors[0].Cols,
		Lambda: lambda,
	}
	for i, f := range factors {
		if f.Cols != m.Rank {
			return fmt.Errorf("cpd: factor %d has %d columns, want %d", i, f.Cols, m.Rank)
		}
		m.Factors = append(m.Factors, matrixJSON{Rows: f.Rows, Cols: f.Cols, Data: f.Data})
	}
	if lambda != nil && len(lambda) != m.Rank {
		return fmt.Errorf("cpd: lambda has %d entries for rank %d", len(lambda), m.Rank)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&m)
}

// ReadModel parses a model written by WriteModel.
func ReadModel(r io.Reader) (lambda []float64, factors []*dense.Matrix, err error) {
	var m modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, nil, fmt.Errorf("cpd: parsing model: %w", err)
	}
	if m.Format != modelFormat {
		return nil, nil, fmt.Errorf("cpd: unsupported model format %q", m.Format)
	}
	if m.Order != len(m.Factors) || m.Order == 0 {
		return nil, nil, fmt.Errorf("cpd: order %d with %d factors", m.Order, len(m.Factors))
	}
	if m.Lambda != nil && len(m.Lambda) != m.Rank {
		return nil, nil, fmt.Errorf("cpd: lambda length %d for rank %d", len(m.Lambda), m.Rank)
	}
	for i, fj := range m.Factors {
		if fj.Rows < 0 || fj.Cols != m.Rank || len(fj.Data) != fj.Rows*fj.Cols {
			return nil, nil, fmt.Errorf("cpd: factor %d is malformed (%dx%d, %d values)", i, fj.Rows, fj.Cols, len(fj.Data))
		}
		factors = append(factors, &dense.Matrix{Rows: fj.Rows, Cols: fj.Cols, Data: fj.Data})
	}
	if err := validateModelFinite(m.Lambda, factors); err != nil {
		return nil, nil, err
	}
	return m.Lambda, factors, nil
}

// validateModelFinite rejects NaN/Inf in a deserialized model with the
// offending location named — the same policy ReadTNS applies to tensor
// values, so a corrupt model or checkpoint cannot be silently loaded.
// (encoding/json cannot produce non-finite numbers itself, but other
// writers and binary corruption can; this is the schema's invariant, not
// the decoder's.)
func validateModelFinite(lambda []float64, factors []*dense.Matrix) error {
	for i, v := range lambda {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cpd: lambda[%d] is non-finite (%g)", i, v)
		}
	}
	for m, f := range factors {
		for k, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("cpd: factor %d entry (%d,%d) is non-finite (%g)", m, k/f.Cols, k%f.Cols, v)
			}
		}
	}
	return nil
}

// SaveModel writes a decomposition result to a file. The write is
// crash-atomic (temp file + fsync + rename): a process killed mid-save
// leaves the previous model file intact instead of a torn, half-encoded
// one.
func SaveModel(path string, res *Result) error {
	return ckpt.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteModel(w, res.Lambda, res.Factors)
	})
}

// LoadModel reads a decomposition previously written with SaveModel. Only
// λ and the factors round-trip; run statistics are not persisted.
func LoadModel(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lambda, factors, err := ReadModel(bufio.NewReader(f))
	if err != nil {
		return nil, err
	}
	return &Result{Lambda: lambda, Factors: factors}, nil
}
