package cpd

import (
	"encoding/json"
	"testing"
)

func TestPhaseStringNames(t *testing.T) {
	want := map[Phase]string{
		PhaseSymbolic:  "symbolic",
		PhaseMTTKRP:    "mttkrp",
		PhaseGram:      "gram",
		PhaseSolve:     "solve",
		PhaseNormalize: "normalize",
		PhaseFit:       "fit",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), name)
		}
	}
	if got := Phase(-1).String(); got != "unknown" {
		t.Errorf("Phase(-1).String() = %q, want unknown", got)
	}
	if got := NumPhases.String(); got != "unknown" {
		t.Errorf("NumPhases.String() = %q, want unknown", got)
	}
}

func TestPhaseJSONRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		if want := `"` + p.String() + `"`; string(b) != want {
			t.Errorf("marshal %v = %s, want %s", p, b, want)
		}
		var back Phase
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != p {
			t.Errorf("round trip %v -> %v", p, back)
		}
		viaParse, err := ParsePhase(p.String())
		if err != nil || viaParse != p {
			t.Errorf("ParsePhase(%q) = %v, %v", p.String(), viaParse, err)
		}
	}
}

func TestPhaseJSONRejectsInvalid(t *testing.T) {
	if _, err := json.Marshal(Phase(99)); err == nil {
		t.Error("marshaling out-of-range phase succeeded")
	}
	if _, err := json.Marshal(NumPhases); err == nil {
		t.Error("marshaling NumPhases succeeded")
	}
	var p Phase
	if err := json.Unmarshal([]byte(`"warp-drive"`), &p); err == nil {
		t.Error("unmarshaling unknown phase name succeeded")
	}
	if err := json.Unmarshal([]byte(`3`), &p); err == nil {
		t.Error("unmarshaling a bare integer succeeded")
	}
	if _, err := ParsePhase("unknown"); err == nil {
		t.Error(`ParsePhase("unknown") succeeded; "unknown" is not a canonical name`)
	}
}
