package cpd

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adatm/internal/ckpt"
	"adatm/internal/coo"
	"adatm/internal/tensor"
)

// ckptOpts is the shared configuration of the crash/resume suite: a
// tolerance below machine precision so the run always uses all MaxIters,
// making the reference and resumed trajectories directly comparable.
func ckptOpts() Options {
	return Options{Rank: 5, MaxIters: 14, Tol: 1e-300, Seed: 9, TrackFit: true}
}

func ckptTensor() *tensor.COO {
	return tensor.RandomClustered(4, 14, 1100, 0.5, 314)
}

// TestCheckpointResumeMatchesUninterrupted interrupts a checkpointed run at
// several iterations, resumes from the newest checkpoint, and demands the
// final fit match the uninterrupted run to 1e-12 (it is bit-identical: the
// checkpoint restores the exact factor state).
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	x := ckptTensor()
	ref, err := Run(x, coo.New(x, 1), ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, stopAfter := range []int{1, 5, 13} {
		dir := filepath.Join(t.TempDir(), "ck")
		opt := ckptOpts()
		opt.Checkpoint = &CheckpointConfig{Dir: dir, Every: 1, Retain: 4}
		n := 0
		opt.Progress = func(IterStats) bool { n++; return n < stopAfter }
		partial, err := Run(x, coo.New(x, 1), opt)
		if err != nil {
			t.Fatalf("stop@%d: %v", stopAfter, err)
		}
		if !partial.Stopped || partial.Iters != stopAfter {
			t.Fatalf("stop@%d: iters=%d stopped=%v", stopAfter, partial.Iters, partial.Stopped)
		}

		mgr, err := ckpt.NewManager(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := mgr.LoadLatest()
		if err != nil {
			t.Fatalf("stop@%d: %v", stopAfter, err)
		}
		if c.Iter != stopAfter {
			t.Fatalf("stop@%d: latest checkpoint at iter %d", stopAfter, c.Iter)
		}

		opt2 := ckptOpts()
		opt2.Checkpoint = &CheckpointConfig{Dir: dir, Every: 1, Retain: 4}
		res, err := Resume(x, coo.New(x, 1), c, opt2)
		if err != nil {
			t.Fatalf("stop@%d: resume: %v", stopAfter, err)
		}
		if res.Iters != ref.Iters {
			t.Fatalf("stop@%d: resumed to iter %d, want %d", stopAfter, res.Iters, ref.Iters)
		}
		if d := math.Abs(res.Fit - ref.Fit); d > 1e-12 {
			t.Fatalf("stop@%d: fit differs by %g (resumed %v vs %v)", stopAfter, d, res.Fit, ref.Fit)
		}
		for m := range ref.Factors {
			if d := res.Factors[m].MaxAbsDiff(ref.Factors[m]); d != 0 {
				t.Errorf("stop@%d: factor %d differs by %g", stopAfter, m, d)
			}
		}
		// The resumed fit trace must be the uninterrupted trajectory.
		if len(res.FitTrace) != len(ref.FitTrace) {
			t.Fatalf("stop@%d: trace length %d vs %d", stopAfter, len(res.FitTrace), len(ref.FitTrace))
		}
		for i := range ref.FitTrace {
			if res.FitTrace[i] != ref.FitTrace[i] {
				t.Errorf("stop@%d: trace[%d] %v vs %v", stopAfter, i, res.FitTrace[i], ref.FitTrace[i])
			}
		}
		// Rolling retention: exactly Retain files remain after the full run.
		iters, err := mgr.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(iters) != 4 {
			t.Errorf("stop@%d: retention kept %d checkpoints (%v), want 4", stopAfter, len(iters), iters)
		}
	}
}

// TestCrashAtEveryFaultPointThenResume simulates a crash during the k-th
// checkpoint write at each protocol point, then asserts that (a) every file
// left on disk is a complete, loadable checkpoint, and (b) resuming reaches
// the uninterrupted fit within 1e-12.
func TestCrashAtEveryFaultPointThenResume(t *testing.T) {
	x := ckptTensor()
	ref, err := Run(x, coo.New(x, 1), ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	const crashAt = 4 // writes 1..crashAt succeed; the next one "crashes"
	cases := []struct {
		fault      ckpt.Fault
		latestIter int // newest loadable checkpoint after the crash
	}{
		{ckpt.Fault{Point: ckpt.FaultBeforeWrite, Skip: crashAt}, crashAt},
		{ckpt.Fault{Point: ckpt.FaultMidWrite, AfterBytes: 96, Skip: crashAt}, crashAt},
		// After the rename the new checkpoint is already committed.
		{ckpt.Fault{Point: ckpt.FaultAfterRename, Skip: crashAt}, crashAt + 1},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.fault.Point.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "ck")
			opt := ckptOpts()
			opt.Checkpoint = &CheckpointConfig{Dir: dir, Every: 1, Retain: 20, fault: &tc.fault}
			res, err := Run(x, coo.New(x, 1), opt)
			if !errors.Is(err, ckpt.ErrInjected) {
				t.Fatalf("run survived the crash: res=%v err=%v", res, err)
			}

			// No torn state on disk: no temp files, and every checkpoint
			// file parses and validates.
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if !strings.HasPrefix(e.Name(), "ckpt-") {
					t.Fatalf("stray file after crash: %s", e.Name())
				}
				if _, err := ckpt.Load(filepath.Join(dir, e.Name())); err != nil {
					t.Fatalf("torn checkpoint observable after crash: %v", err)
				}
			}

			mgr, err := ckpt.NewManager(dir, 20)
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := mgr.LoadLatest()
			if err != nil {
				t.Fatal(err)
			}
			if c.Iter != tc.latestIter {
				t.Fatalf("latest checkpoint at iter %d, want %d", c.Iter, tc.latestIter)
			}
			res, err = Resume(x, coo.New(x, 1), c, ckptOpts())
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(res.Fit - ref.Fit); d > 1e-12 {
				t.Fatalf("resumed fit differs by %g", d)
			}
		})
	}
}

// TestCheckpointOnCancellation: a Ctx cancellation mid-sweep (the SIGTERM
// path) must persist the last completed iteration even when the periodic
// trigger hasn't fired for it.
func TestCheckpointOnCancellation(t *testing.T) {
	x := ckptTensor()
	dir := filepath.Join(t.TempDir(), "ck")
	opt := ckptOpts()
	opt.Checkpoint = &CheckpointConfig{Dir: dir, Every: 5} // iter 7 is off-cadence
	ctx, cancel := context.WithCancel(context.Background())
	opt.Ctx = ctx
	stopAfter := 7
	n := 0
	opt.Progress = func(IterStats) bool {
		if n++; n >= stopAfter {
			cancel()
		}
		return true
	}
	res, err := Run(x, coo.New(x, 1), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !res.Stopped {
		t.Fatal("not marked stopped")
	}
	mgr, _ := ckpt.NewManager(dir, 0)
	c, _, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if c.Iter != res.Iters {
		t.Fatalf("final checkpoint at iter %d, want last completed iter %d", c.Iter, res.Iters)
	}
}

// TestResumeRejectsMismatchedFingerprint: a checkpoint from a different
// tensor or different run parameters must be refused.
func TestResumeRejectsMismatchedFingerprint(t *testing.T) {
	x := ckptTensor()
	dir := filepath.Join(t.TempDir(), "ck")
	opt := ckptOpts()
	opt.Checkpoint = &CheckpointConfig{Dir: dir, Every: 1}
	n := 0
	opt.Progress = func(IterStats) bool { n++; return n < 3 }
	if _, err := Run(x, coo.New(x, 1), opt); err != nil {
		t.Fatal(err)
	}
	mgr, _ := ckpt.NewManager(dir, 0)
	c, _, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}

	bad := ckptOpts()
	bad.Rank = 6 // different rank
	if _, err := Resume(x, coo.New(x, 1), c, bad); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("different rank accepted: %v", err)
	}
	y := x.Clone()
	y.Vals[0] += 1 // different tensor
	if _, err := Resume(y, coo.New(y, 1), c, ckptOpts()); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("different tensor accepted: %v", err)
	}
	ridge := ckptOpts()
	ridge.Ridge = 0.5
	if _, err := Resume(x, coo.New(x, 1), c, ridge); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("different ridge accepted: %v", err)
	}
	// The matching configuration still resumes.
	if _, err := Resume(x, coo.New(x, 1), c, ckptOpts()); err != nil {
		t.Errorf("matching resume failed: %v", err)
	}
}

// TestResumePastMaxIters: a checkpoint at or past MaxIters yields the
// checkpointed state unchanged rather than extra iterations or an error.
func TestResumePastMaxIters(t *testing.T) {
	x := ckptTensor()
	dir := filepath.Join(t.TempDir(), "ck")
	opt := ckptOpts()
	opt.Checkpoint = &CheckpointConfig{Dir: dir, Every: 1}
	full, err := Run(x, coo.New(x, 1), opt)
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := ckpt.NewManager(dir, 0)
	c, _, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resume(x, coo.New(x, 1), c, ckptOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != full.Iters || res.Fit != full.Fit {
		t.Fatalf("resume past cap: iters=%d fit=%v, want iters=%d fit=%v", res.Iters, res.Fit, full.Iters, full.Fit)
	}
}

// TestCheckpointWallClockTrigger: with only Interval set, the first
// iteration past the interval writes (Interval=0 wall-clock means every
// boundary is due).
func TestCheckpointWallClockTrigger(t *testing.T) {
	x := ckptTensor()
	dir := filepath.Join(t.TempDir(), "ck")
	opt := ckptOpts()
	opt.MaxIters = 4
	opt.Checkpoint = &CheckpointConfig{Dir: dir, Interval: 1} // 1ns: always due
	if _, err := Run(x, coo.New(x, 1), opt); err != nil {
		t.Fatal(err)
	}
	mgr, _ := ckpt.NewManager(dir, 0)
	iters, err := mgr.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 || iters[len(iters)-1] != 4 {
		t.Fatalf("wall-clock trigger wrote %v, want final iter 4 present", iters)
	}
}
