package cpd

import (
	"context"
	"errors"
	"math"
	"testing"

	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/tensor"
)

// factorsConsistent checks the invariants a partial Result must satisfy:
// every factor column-normalized (unit 2-norm or identically zero) and all
// entries finite.
func factorsConsistent(t *testing.T, res *Result) {
	t.Helper()
	for m, f := range res.Factors {
		for j := 0; j < f.Cols; j++ {
			s := 0.0
			for i := 0; i < f.Rows; i++ {
				v := f.At(i, j)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("factor %d has non-finite entry", m)
				}
				s += v * v
			}
			norm := math.Sqrt(s)
			if norm > 1e-9 && math.Abs(norm-1) > 1e-6 {
				t.Fatalf("factor %d column %d norm %g, want 1 or 0", m, j, norm)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	x := tensor.RandomClustered(3, 20, 800, 0.6, 41)
	eng := coo.New(x, 1)

	// Cancel after the second completed iteration via Progress; the run
	// must stop within one sub-iteration of the third.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(x, eng, Options{
		Rank: 4, MaxIters: 50, Tol: 1e-12, Seed: 5, Ctx: ctx,
		Progress: func(s IterStats) bool {
			if s.Iter == 2 {
				cancel()
			}
			return true
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("want partial result on cancellation")
	}
	if !res.Stopped {
		t.Error("Stopped not set on cancellation")
	}
	if res.Iters != 2 {
		t.Errorf("Iters = %d, want 2 (cancelled during iteration 3)", res.Iters)
	}
	if res.TotalTime <= 0 {
		t.Error("TotalTime not set on cancellation")
	}
	factorsConsistent(t, res)
}

func TestRunCancelledBeforeStart(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 200, 0.6, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 10, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iters != 0 {
		t.Fatalf("want zero-iteration partial result, got %+v", res)
	}
	// Regression: a run stopped before its first fit computation must report
	// NaN, not a stale zero that reads as a legitimate (terrible) fit.
	if !math.IsNaN(res.Fit) {
		t.Errorf("Fit = %v on a zero-iteration run, want NaN", res.Fit)
	}
}

func TestRunProgressStop(t *testing.T) {
	x := tensor.RandomClustered(3, 20, 800, 0.6, 43)
	var seen []int
	res, err := Run(x, coo.New(x, 1), Options{
		Rank: 4, MaxIters: 50, Tol: 1e-12, Seed: 5,
		Progress: func(s IterStats) bool {
			seen = append(seen, s.Iter)
			if s.Elapsed < 0 || s.MTTKRPTime <= 0 {
				t.Errorf("iteration %d: bad timings %+v", s.Iter, s)
			}
			return s.Iter < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("Stopped not set after Progress returned false")
	}
	if res.Iters != 3 {
		t.Errorf("Iters = %d, want 3", res.Iters)
	}
	if len(seen) != 3 {
		t.Errorf("Progress called %d times, want 3", len(seen))
	}
	if len(res.Lambda) != 4 {
		t.Errorf("Lambda not sealed on early stop: %v", res.Lambda)
	}
	factorsConsistent(t, res)
}

func TestRunCollectStats(t *testing.T) {
	x := tensor.RandomClustered(3, 60, 30000, 0.6, 44)
	res, err := Run(x, coo.New(x, 1), Options{
		Rank: 8, MaxIters: 10, Tol: 1e-15, Seed: 5, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Stats
	if rs == nil {
		t.Fatal("Stats nil with CollectStats")
	}
	n := x.Order()
	wantCalls := int64(res.Iters * n)
	if got := rs.Phases[PhaseMTTKRP].Count; got != wantCalls {
		t.Errorf("MTTKRP count = %d, want %d", got, wantCalls)
	}
	// COO op model: nnz·N·R per call.
	wantOps := wantCalls * int64(x.NNZ()) * int64(n) * 8
	if got := rs.Phases[PhaseMTTKRP].Ops; got != wantOps {
		t.Errorf("MTTKRP ops = %d, want %d", got, wantOps)
	}
	var modeSum PhaseStats
	for _, mp := range rs.ModeMTTKRP {
		modeSum.Time += mp.Time
		modeSum.Count += mp.Count
		modeSum.Ops += mp.Ops
	}
	if modeSum != rs.Phases[PhaseMTTKRP] {
		t.Errorf("per-mode MTTKRP sum %+v != phase total %+v", modeSum, rs.Phases[PhaseMTTKRP])
	}
	for _, p := range []Phase{PhaseGram, PhaseSolve, PhaseNormalize, PhaseFit} {
		if rs.Phases[p].Count == 0 || rs.Phases[p].Time < 0 {
			t.Errorf("phase %s not populated: %+v", p, rs.Phases[p])
		}
	}
	// The phase breakdown must account for (almost) all of the wall clock.
	sum := rs.PhaseTimeSum()
	if sum > res.TotalTime {
		t.Errorf("phase sum %v exceeds TotalTime %v", sum, res.TotalTime)
	}
	if float64(sum) < 0.80*float64(res.TotalTime) {
		t.Errorf("phase sum %v covers <80%% of TotalTime %v", sum, res.TotalTime)
	}
	if rs.SteadyIters != int64(res.Iters)-1 {
		t.Errorf("SteadyIters = %d, want %d", rs.SteadyIters, res.Iters-1)
	}
}

// Results must be bit-identical with and without stats collection: the
// instrumentation only observes.
func TestCollectStatsDoesNotPerturbResult(t *testing.T) {
	x := tensor.RandomClustered(3, 15, 600, 0.6, 45)
	base, err := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 6, Seed: 9, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fit != inst.Fit || base.Iters != inst.Iters {
		t.Fatalf("instrumented run diverged: fit %v vs %v, iters %d vs %d",
			base.Fit, inst.Fit, base.Iters, inst.Iters)
	}
	for m := range base.Factors {
		if base.Factors[m].MaxAbsDiff(inst.Factors[m]) != 0 {
			t.Errorf("factor %d differs under instrumentation", m)
		}
	}
}

// A malformed engine input surfaces as an error from Run, not a panic.
func TestRunPropagatesEngineError(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 200, 0.6, 46)
	eng := coo.New(x, 1)
	_, err := Run(x, eng, Options{Rank: 3, MaxIters: 2, Seed: 1,
		Init: []*dense.Matrix{
			dense.New(x.Dims[0], 3), dense.New(x.Dims[1], 3), dense.New(x.Dims[2], 3),
		}})
	if err != nil {
		t.Fatalf("well-formed run errored: %v", err)
	}
}
