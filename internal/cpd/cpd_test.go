package cpd

import (
	"math"
	"math/rand"
	"testing"

	"adatm/internal/coo"
	"adatm/internal/csf"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/hicoo"
	"adatm/internal/memo"
	"adatm/internal/tensor"
)

func engines(x *tensor.COO) map[string]engine.Engine {
	out := map[string]engine.Engine{
		"coo":     coo.New(x, 2),
		"csf":     csf.NewAllMode(x, 2),
		"csf-one": csf.NewSingle(x, 2),
		"hicoo":   hicoo.New(x, 2),
	}
	for name, s := range map[string]*memo.Strategy{
		"memo-flat":     memo.Flat(x.Order()),
		"memo-balanced": memo.Balanced(x.Order()),
	} {
		e, err := memo.New(x, s, 2, name)
		if err != nil {
			panic(err)
		}
		out[name] = e
	}
	return out
}

func TestRecoversExactLowRankTensor(t *testing.T) {
	// A noiseless rank-3 tensor must be fit almost perfectly at rank >= 3.
	x := tensor.DenseLowRank([]int{12, 10, 8}, 3, 0, 101)
	for name, eng := range engines(x) {
		res, err := Run(x, eng, Options{Rank: 3, MaxIters: 200, Tol: 1e-10, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Fit < 0.999 {
			t.Errorf("%s: fit %.6f after %d iters, want ~1", name, res.Fit, res.Iters)
		}
	}
}

func TestFitFormulaMatchesExactResidual(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 400, 0.6, 102)
	eng := coo.New(x, 1)
	res, err := Run(x, eng, Options{Rank: 4, MaxIters: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := ResidualNorm(x, res)
	fitExact := 1 - exact/x.Norm()
	if math.Abs(res.Fit-fitExact) > 1e-6 {
		t.Errorf("fast fit %.8f vs exact %.8f", res.Fit, fitExact)
	}
}

func TestFitMonotoneNonDecreasing(t *testing.T) {
	x := tensor.DenseLowRank([]int{10, 9, 8, 7}, 4, 0.05, 103)
	for name, eng := range engines(x) {
		res, err := Run(x, eng, Options{Rank: 6, MaxIters: 25, Tol: 1e-12, Seed: 9, TrackFit: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 1; i < len(res.FitTrace); i++ {
			if res.FitTrace[i] < res.FitTrace[i-1]-1e-7 {
				t.Errorf("%s: fit decreased at iter %d: %.9f -> %.9f", name, i, res.FitTrace[i-1], res.FitTrace[i])
			}
		}
	}
}

// Every engine must produce an identical decomposition from identical
// initial factors: the ALS trajectory depends only on the MTTKRP values.
func TestEnginesAgreeOnTrajectory(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 800, 0.8, 104)
	rng := rand.New(rand.NewSource(11))
	init := make([]*dense.Matrix, 4)
	for m := range init {
		init[m] = dense.Random(x.Dims[m], 6, rng)
	}
	var first *Result
	var firstName string
	for name, eng := range engines(x) {
		res, err := Run(x, eng, Options{Rank: 6, MaxIters: 8, Tol: 1e-14, Init: init})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if first == nil {
			first, firstName = res, name
			continue
		}
		if math.Abs(res.Fit-first.Fit) > 1e-8 {
			t.Errorf("%s fit %.10f differs from %s fit %.10f", name, res.Fit, firstName, first.Fit)
		}
		for m := range res.Factors {
			if d := res.Factors[m].MaxAbsDiff(first.Factors[m]); d > 1e-6 {
				t.Errorf("%s factor %d differs from %s by %g", name, m, firstName, d)
			}
		}
		for r := range res.Lambda {
			if math.Abs(res.Lambda[r]-first.Lambda[r]) > 1e-6*(1+math.Abs(first.Lambda[r])) {
				t.Errorf("%s lambda differs: %v vs %v", name, res.Lambda, first.Lambda)
			}
		}
	}
}

func TestConvergenceFlag(t *testing.T) {
	x := tensor.DenseLowRank([]int{10, 10, 10}, 2, 0, 105)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 4, MaxIters: 100, Tol: 1e-7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge in %d iters (fit %.6f)", res.Iters, res.Fit)
	}
	if res.Iters >= 100 {
		t.Error("used all iterations despite convergence")
	}
}

func TestFactorShapesAndNormalization(t *testing.T) {
	x := tensor.RandomUniform(3, 12, 300, 106)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 5, MaxIters: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lambda) != 5 || len(res.Factors) != 3 {
		t.Fatalf("shapes: lambda=%d factors=%d", len(res.Lambda), len(res.Factors))
	}
	for m, f := range res.Factors {
		if f.Rows != x.Dims[m] || f.Cols != 5 {
			t.Errorf("factor %d is %dx%d", m, f.Rows, f.Cols)
		}
	}
	// Only the final factor is guaranteed unit-norm columns (its norms were
	// pulled into lambda last).
	norms := dense.ColumnNorms(res.Factors[2])
	for r, n := range norms {
		if n > 0 && math.Abs(n-1) > 1e-9 {
			t.Errorf("final factor column %d norm %.12f", r, n)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	x := tensor.RandomUniform(3, 5, 20, 107)
	if _, err := Run(x, coo.New(x, 1), Options{Rank: 0}); err == nil {
		t.Error("Rank 0 accepted")
	}
	empty := tensor.NewCOO([]int{3, 3}, 0)
	if _, err := Run(empty, coo.New(empty, 1), Options{Rank: 2}); err == nil {
		t.Error("empty tensor accepted")
	}
	bad := []*dense.Matrix{dense.New(5, 2), dense.New(5, 2), dense.New(5, 2)}
	if _, err := Run(x, coo.New(x, 1), Options{Rank: 3, Init: bad}); err == nil {
		t.Error("mis-shaped init accepted")
	}
	if _, err := Run(x, coo.New(x, 1), Options{Rank: 2, Init: bad[:2]}); err == nil {
		t.Error("short init list accepted")
	}
}

func TestReconstructMatchesDefinition(t *testing.T) {
	x := tensor.RandomUniform(3, 6, 50, 108)
	res, err := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	idx := []tensor.Index{2, 3, 1}
	want := 0.0
	for r := 0; r < 3; r++ {
		p := res.Lambda[r]
		for m := 0; m < 3; m++ {
			p *= res.Factors[m].At(int(idx[m]), r)
		}
		want += p
	}
	if got := Reconstruct(res, idx); math.Abs(got-want) > 1e-12 {
		t.Errorf("Reconstruct = %g, want %g", got, want)
	}
}

func TestHighOrderDecomposition(t *testing.T) {
	x := tensor.DenseLowRank([]int{6, 6, 6, 6, 6, 6}, 2, 0, 109)
	eng, err := memo.New(x, memo.Balanced(6), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(x, eng, Options{Rank: 4, MaxIters: 60, Tol: 1e-9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.99 {
		t.Errorf("order-6 fit %.4f, want >= 0.99", res.Fit)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	x := tensor.RandomUniform(3, 10, 200, 110)
	a, _ := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 5, Seed: 42})
	b, _ := Run(x, coo.New(x, 1), Options{Rank: 3, MaxIters: 5, Seed: 42})
	if a.Fit != b.Fit {
		t.Errorf("same seed, different fits: %v vs %v", a.Fit, b.Fit)
	}
}
