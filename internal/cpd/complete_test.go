package cpd

import (
	"math"
	"math/rand"
	"testing"

	"adatm/internal/tensor"
)

// plantObserved samples nnz coordinates uniformly and values them from a
// random rank-r model (no noise): completion must drive the observed RMSE
// to ~0 and generalize to held-out coordinates.
func plantObserved(dims []int, nnz, rank int, seed int64) *tensor.COO {
	return tensor.LowRank(dims, nnz, rank, 0, seed)
}

func TestCompleteFitsObservedEntries(t *testing.T) {
	x := plantObserved([]int{40, 30, 20}, 6000, 3, 301)
	res, err := Complete(x, CompleteOptions{Rank: 3, MaxIters: 50, Tol: 1e-9, Seed: 5, Ridge: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 1e-3 {
		t.Errorf("observed RMSE %.6f after %d iters, want ~0 on noiseless low-rank data", res.RMSE, res.Iters)
	}
}

func TestCompleteGeneralizes(t *testing.T) {
	// Same low-rank ground truth split into train/test coordinate sets.
	full := plantObserved([]int{30, 25, 20}, 9000, 2, 302)
	rng := rand.New(rand.NewSource(7))
	train := tensor.NewCOO(full.Dims, full.NNZ())
	var testIdx [][]tensor.Index
	var testVals []float64
	idx := make([]tensor.Index, 3)
	for k := 0; k < full.NNZ(); k++ {
		for m := range idx {
			idx[m] = full.Inds[m][k]
		}
		if rng.Float64() < 0.15 {
			testIdx = append(testIdx, append([]tensor.Index(nil), idx...))
			testVals = append(testVals, full.Vals[k])
		} else {
			train.Append(idx, full.Vals[k])
		}
	}
	res, err := Complete(train, CompleteOptions{Rank: 2, MaxIters: 60, Tol: 1e-10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var se, baseSE, mu float64
	for _, v := range testVals {
		mu += v
	}
	mu /= float64(len(testVals))
	for i, coords := range testIdx {
		d := testVals[i] - res.Predict(coords)
		se += d * d
		b := testVals[i] - mu
		baseSE += b * b
	}
	testRMSE := math.Sqrt(se / float64(len(testIdx)))
	baseRMSE := math.Sqrt(baseSE / float64(len(testIdx)))
	if testRMSE > baseRMSE/2 {
		t.Errorf("held-out RMSE %.4f not well below mean baseline %.4f", testRMSE, baseRMSE)
	}
}

func TestCompleteRMSEMonotoneOverall(t *testing.T) {
	x := plantObserved([]int{25, 25, 25}, 5000, 3, 303)
	res, err := Complete(x, CompleteOptions{Rank: 4, MaxIters: 20, Tol: 1e-12, Seed: 9, TrackRMSE: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.RMSETrace); i++ {
		if res.RMSETrace[i] > res.RMSETrace[i-1]+1e-8 {
			t.Errorf("observed RMSE rose at iter %d: %.8f -> %.8f", i, res.RMSETrace[i-1], res.RMSETrace[i])
		}
	}
}

func TestCompleteHigherOrder(t *testing.T) {
	x := plantObserved([]int{15, 15, 15, 15}, 12000, 2, 304)
	res, err := Complete(x, CompleteOptions{Rank: 2, MaxIters: 60, Tol: 1e-10, Seed: 11, Ridge: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 1e-2 {
		t.Errorf("order-4 observed RMSE %.5f", res.RMSE)
	}
}

func TestCompleteParallelConsistency(t *testing.T) {
	x := plantObserved([]int{30, 20, 20}, 4000, 3, 305)
	a, err := Complete(x, CompleteOptions{Rank: 3, MaxIters: 5, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Complete(x, CompleteOptions{Rank: 3, MaxIters: 5, Seed: 13, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Row systems are independent, so the trajectories are bitwise-stable
	// up to FP reassociation inside each row, which the solver order keeps
	// deterministic per row.
	if math.Abs(a.RMSE-b.RMSE) > 1e-9 {
		t.Errorf("parallel RMSE %.12f differs from sequential %.12f", b.RMSE, a.RMSE)
	}
}

func TestCompleteValidation(t *testing.T) {
	x := plantObserved([]int{5, 5, 5}, 50, 2, 306)
	if _, err := Complete(x, CompleteOptions{Rank: 0}); err == nil {
		t.Error("Rank 0 accepted")
	}
	empty := tensor.NewCOO([]int{3, 3}, 0)
	if _, err := Complete(empty, CompleteOptions{Rank: 2}); err == nil {
		t.Error("empty tensor accepted")
	}
}

func TestCompleteUnobservedRowsStayFinite(t *testing.T) {
	// Row 4 of mode 0 has no observations: its factor row must remain the
	// (finite) initialization and predictions must stay finite.
	x := tensor.NewCOO([]int{5, 3, 3}, 3)
	x.Append([]tensor.Index{0, 0, 0}, 1)
	x.Append([]tensor.Index{1, 1, 1}, 2)
	x.Append([]tensor.Index{2, 2, 2}, 3)
	res, err := Complete(x, CompleteOptions{Rank: 2, MaxIters: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Predict([]tensor.Index{4, 1, 1})
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("prediction for unobserved row not finite: %v", v)
	}
}

func TestBuildRowIndexGroups(t *testing.T) {
	x := tensor.NewCOO([]int{4, 2}, 5)
	x.Append([]tensor.Index{2, 0}, 1)
	x.Append([]tensor.Index{0, 1}, 2)
	x.Append([]tensor.Index{2, 1}, 3)
	x.Append([]tensor.Index{3, 0}, 4)
	x.Append([]tensor.Index{0, 0}, 5)
	ri := buildRowIndex(x, 0)
	if ri.ptr[0] != 0 || ri.ptr[4+0] != 5 {
		t.Fatalf("ptr = %v", ri.ptr)
	}
	// Row 1 empty, rows 0 and 2 have two entries each.
	if ri.ptr[1]-ri.ptr[0] != 2 || ri.ptr[2]-ri.ptr[1] != 0 || ri.ptr[3]-ri.ptr[2] != 2 || ri.ptr[4]-ri.ptr[3] != 1 {
		t.Fatalf("row sizes wrong: %v", ri.ptr)
	}
	for i := 0; i < 4; i++ {
		for e := ri.ptr[i]; e < ri.ptr[i+1]; e++ {
			if int(x.Inds[0][ri.elems[e]]) != i {
				t.Fatalf("element %d grouped under wrong row %d", ri.elems[e], i)
			}
		}
	}
}
