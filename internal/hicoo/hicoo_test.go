package hicoo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func randomFactors(x *tensor.COO, r int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*dense.Matrix, x.Order())
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], r, rng)
	}
	return fs
}

func TestBuildRoundTrip(t *testing.T) {
	// Every (coords, value) must survive blocking: reconstruct COO from the
	// blocked form and compare as multisets via lookups.
	x := tensor.RandomClustered(3, 300, 1500, 0.6, 701)
	h := Build(x)
	if len(h.Vals) != x.NNZ() {
		t.Fatalf("blocked form holds %d of %d nonzeros", len(h.Vals), x.NNZ())
	}
	n := x.Order()
	idx := make([]tensor.Index, n)
	for b := 0; b < h.NBlocks(); b++ {
		for k := h.BPtr[b]; k < h.BPtr[b+1]; k++ {
			for m := 0; m < n; m++ {
				idx[m] = tensor.Index(int(h.BInds[m][b])<<blockBits | int(h.EInds[m][k]))
			}
			if got := x.At(idx); got != h.Vals[k] {
				t.Fatalf("block %d elem %d: value %g at %v, original has %g", b, k, h.Vals[k], idx, got)
			}
		}
	}
}

func TestBlocksAreCoherent(t *testing.T) {
	x := tensor.RandomClustered(4, 200, 2000, 0.8, 702)
	h := Build(x)
	if h.BPtr[0] != 0 || int(h.BPtr[h.NBlocks()]) != len(h.Vals) {
		t.Fatal("block pointers do not span the elements")
	}
	// Block coordinate tuples must be distinct and sorted.
	for b := 1; b < h.NBlocks(); b++ {
		cmp := 0
		for m := 0; m < x.Order(); m++ {
			if h.BInds[m][b-1] != h.BInds[m][b] {
				if h.BInds[m][b-1] < h.BInds[m][b] {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		if cmp >= 0 {
			t.Fatalf("blocks not strictly sorted at %d", b)
		}
	}
}

func TestIndexCompression(t *testing.T) {
	// With index locality, blocked indices must be well below COO's
	// 4-bytes-per-mode-per-nonzero.
	x := tensor.RandomClustered(3, 2000, 30000, 1.0, 703)
	h := Build(x)
	cooBytes := int64(x.NNZ()) * int64(4*x.Order())
	if h.IndexBytes() >= cooBytes {
		t.Errorf("blocked index %d not below COO %d", h.IndexBytes(), cooBytes)
	}
}

func TestMTTKRPMatchesDenseReference(t *testing.T) {
	x := tensor.RandomUniform(3, 9, 70, 704)
	fs := randomFactors(x, 5, 705)
	e := New(x, 2)
	for mode := 0; mode < 3; mode++ {
		out := dense.New(x.Dims[mode], 5)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRP(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("mode %d: diff %g", mode, d)
		}
	}
}

func TestMTTKRPHigherOrders(t *testing.T) {
	for _, order := range []int{3, 4, 5, 6} {
		// Dims above one block edge exercise multi-block paths.
		x := tensor.RandomClustered(order, 300, 800, 0.7, int64(order*707))
		fs := randomFactors(x, 6, int64(order*709))
		e := New(x, 4)
		for mode := 0; mode < order; mode++ {
			out := dense.New(x.Dims[mode], 6)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("order %d mode %d: diff %g", order, mode, d)
			}
		}
	}
}

func TestParallelConsistency(t *testing.T) {
	x := tensor.RandomClustered(4, 400, 4000, 0.9, 711)
	fs := randomFactors(x, 16, 712)
	seq := New(x, 1)
	parl := New(x, 8)
	for mode := 0; mode < 4; mode++ {
		a := dense.New(x.Dims[mode], 16)
		b := dense.New(x.Dims[mode], 16)
		seq.MTTKRP(mode, fs, a)
		parl.MTTKRP(mode, fs, b)
		if d := a.MaxAbsDiff(b); d > 1e-9 {
			t.Errorf("mode %d: parallel differs by %g", mode, d)
		}
	}
}

func TestStatsAndOps(t *testing.T) {
	x := tensor.RandomUniform(3, 200, 500, 713)
	fs := randomFactors(x, 4, 714)
	e := New(x, 1)
	out := dense.New(x.Dims[0], 4)
	e.MTTKRP(0, fs, out)
	if want := int64(x.NNZ()) * 3 * 4; e.Stats().HadamardOps != want {
		t.Errorf("ops %d, want %d", e.Stats().HadamardOps, want)
	}
	if e.Stats().IndexBytes <= 0 {
		t.Error("no index accounting")
	}
	e.ResetStats()
	if e.Stats().HadamardOps != 0 {
		t.Error("ResetStats failed")
	}
}

func TestBlockBoundaryIndices(t *testing.T) {
	// Indices straddling block boundaries (127/128) must round-trip.
	x := tensor.NewCOO([]int{300, 300, 300}, 4)
	x.Append([]tensor.Index{127, 128, 255}, 1)
	x.Append([]tensor.Index{128, 127, 256}, 2)
	x.Append([]tensor.Index{0, 0, 0}, 3)
	x.Append([]tensor.Index{299, 299, 299}, 4)
	fs := randomFactors(x, 3, 715)
	e := New(x, 1)
	for mode := 0; mode < 3; mode++ {
		out := dense.New(300, 3)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-12 {
			t.Errorf("mode %d: diff %g", mode, d)
		}
	}
}

// Property: HiCOO agrees with the sparse reference on random shapes.
func TestEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(3)
		dim := 50 + rng.Intn(500)
		x := tensor.RandomClustered(order, dim, 300, rng.Float64(), seed)
		fs := randomFactors(x, 4, seed+1)
		e := New(x, 2)
		mode := rng.Intn(order)
		out := dense.New(x.Dims[mode], 4)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		return out.MaxAbsDiff(want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
