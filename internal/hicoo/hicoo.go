// Package hicoo implements a HiCOO-style blocked sparse tensor format and
// its MTTKRP kernel — the memory-compact baseline from the same research
// line as the target paper. Nonzeros are grouped into B×…×B index blocks
// (B = 128): each block stores its coordinates once as int32s while the
// elements inside carry only uint8 offsets, cutting index storage roughly
// 4x against COO for tensors with index locality.
//
// Simplifications against the published format: blocks are ordered
// lexicographically by block coordinates rather than by a space-filling
// curve, and there is no superblock scheduling level — parallelism comes
// from dynamic block batches with striped output locks.
package hicoo

import (
	"sort"
	"time"

	"adatm/internal/accum"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// blockBits is log2 of the block edge length.
const blockBits = 7

// BlockEdge is the block size per mode (128).
const BlockEdge = 1 << blockBits

// Tensor is the blocked representation.
type Tensor struct {
	Dims []int
	// Per block: start of its elements in the element arrays, and its
	// block coordinate per mode.
	BPtr  []int32   // len nblocks+1
	BInds [][]int32 // BInds[m][b] = block coordinate of block b in mode m
	// Per element: offset within the block per mode, and the value.
	EInds [][]uint8 // EInds[m][k]
	Vals  []float64
}

// Build blocks a deduplicated COO tensor.
func Build(x *tensor.COO) *Tensor {
	n := x.Order()
	nnz := x.NNZ()
	perm := make([]int32, nnz)
	for i := range perm {
		perm[i] = int32(i)
	}
	// Sort by (block coords…, offsets…) lexicographically; grouping by the
	// block tuple is all that matters for block extraction.
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		for m := 0; m < n; m++ {
			ba, bb := x.Inds[m][ka]>>blockBits, x.Inds[m][kb]>>blockBits
			if ba != bb {
				return ba < bb
			}
		}
		for m := 0; m < n; m++ {
			if x.Inds[m][ka] != x.Inds[m][kb] {
				return x.Inds[m][ka] < x.Inds[m][kb]
			}
		}
		return false
	})
	t := &Tensor{
		Dims:  append([]int(nil), x.Dims...),
		BInds: make([][]int32, n),
		EInds: make([][]uint8, n),
		Vals:  make([]float64, 0, nnz),
	}
	for m := 0; m < n; m++ {
		t.EInds[m] = make([]uint8, 0, nnz)
	}
	sameBlock := func(a, b int32) bool {
		for m := 0; m < n; m++ {
			if x.Inds[m][a]>>blockBits != x.Inds[m][b]>>blockBits {
				return false
			}
		}
		return true
	}
	for i, k := range perm {
		if i == 0 || !sameBlock(perm[i-1], k) {
			t.BPtr = append(t.BPtr, int32(len(t.Vals)))
			for m := 0; m < n; m++ {
				t.BInds[m] = append(t.BInds[m], int32(x.Inds[m][k]>>blockBits))
			}
		}
		for m := 0; m < n; m++ {
			t.EInds[m] = append(t.EInds[m], uint8(x.Inds[m][k]&(BlockEdge-1)))
		}
		t.Vals = append(t.Vals, x.Vals[k])
	}
	t.BPtr = append(t.BPtr, int32(len(t.Vals)))
	return t
}

// NBlocks returns the number of nonzero blocks.
func (t *Tensor) NBlocks() int { return len(t.BPtr) - 1 }

// IndexBytes returns the blocked index storage: 4 bytes per mode per block
// plus 1 byte per mode per nonzero plus the block pointer array.
func (t *Tensor) IndexBytes() int64 {
	n := int64(len(t.Dims))
	return int64(t.NBlocks())*n*4 + int64(len(t.Vals))*n + int64(len(t.BPtr))*4
}

// Engine is the HiCOO MTTKRP kernel.
type Engine struct {
	t       *Tensor
	workers int
	stripes *par.Stripes
	arena   *kernel.Arena
	// chunks holds equal-nnz chunk boundaries over the blocks (blocks have
	// skewed occupancy, so element-weighted chunking balances the load);
	// base holds per-worker decoded block-origin scratch.
	chunks []int
	base   [][]int
	res    *accum.Resolver
	pool   *accum.Pool
	ctr    engine.Counters
	// body is the bound worker body (allocated once so MTTKRP passes a stored
	// func value, not a per-call closure — the zero-alloc steady state); the
	// cur* fields are its call-scoped inputs, set before the parallel region
	// and cleared after.
	body       func(worker, lo, hi int)
	curMode    int
	curFactors []*dense.Matrix
	curOut     *dense.Matrix
	curPool    *accum.Pool
}

// New builds the blocked engine over x. The accumulation backend is
// model-resolved per mode (accum.Auto).
func New(x *tensor.COO, workers int) *Engine {
	return NewWithAccum(x, workers, accum.Config{})
}

// NewWithAccum is New with an explicit accumulation policy.
func NewWithAccum(x *tensor.COO, workers int, cfg accum.Config) *Engine {
	t := Build(x)
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	// Per-block nonzero counts as a prefix sum (BPtr already is one).
	prefix := make([]int64, len(t.BPtr))
	for i, p := range t.BPtr {
		prefix[i] = int64(p)
	}
	e := &Engine{
		t:       t,
		workers: workers,
		arena:   kernel.NewArena(w, 1),
		chunks:  par.WeightedBounds(prefix, w*8),
		base:    make([][]int, w),
		res:     accum.NewResolver(len(t.Dims), cfg),
		pool:    accum.NewPool(w),
	}
	for i := range e.base {
		e.base[i] = make([]int, len(t.Dims))
	}
	e.body = e.runChunk
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "hicoo" }

// FactorUpdated implements engine.Engine; no factor-dependent caches.
func (e *Engine) FactorUpdated(int) {}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	s := engine.Stats{
		IndexBytes: e.t.IndexBytes(),
		ValueBytes: int64(len(e.t.Vals)) * 8,
	}
	e.ctr.Fill(&s)
	return s
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ctr.Reset() }

// Instrument implements engine.Instrumentable. The block schedule is
// immutable after construction, so the imbalance of the element-weighted
// block chunking is computed once here and exported as a constant gauge.
func (e *Engine) Instrument(_ *obs.Tracer, reg *obs.Registry) {
	if reg == nil {
		return
	}
	engine.RegisterCommonMetrics(reg, e.Name(), &e.ctr)
	l := obs.Labels{"engine": e.Name()}
	reg.GaugeFunc("adatm_kernel_arena_bytes",
		"Per-worker scratch arena backing bytes.", l,
		func() float64 { return float64(e.arena.Bytes()) })
	reg.CounterFunc("adatm_kernel_arena_grows_total",
		"Arena backing-store reallocations.", l,
		func() float64 { return float64(e.arena.Grows()) })
	prefix := make([]int64, len(e.t.BPtr))
	for i, p := range e.t.BPtr {
		prefix[i] = int64(p)
	}
	imb := par.ImbalanceRatio(prefix, e.chunks)
	reg.GaugeFunc("adatm_par_chunk_imbalance_ratio",
		"Worst heaviest-chunk/ideal-share ratio of the weighted schedules.", l,
		func() float64 { return imb })
	engine.RegisterAccumMetrics(reg, e.Name(), len(e.t.Dims), e.res, e.pool)
}

// MTTKRP implements engine.Engine. Within a block, every element's factor
// row lives inside one 128-row window per mode, which is where the format's
// cache locality comes from. Blocks run in dynamic parallel batches; the
// target-mode rows go through the mode's resolved accumulation backend —
// striped locks (distinct blocks can share mode-n block coordinates) or
// per-worker privatized copies folded by a parallel reduction.
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.t.Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	t := e.t
	r := out.Cols
	e.arena.EnsureRank(r)
	workers := e.workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	var pool *accum.Pool
	if e.res.Resolve(mode, out.Rows, int64(len(t.Vals)), r, workers) == accum.Privatize {
		pool = e.pool
		pool.Begin(out.Rows, r)
	} else {
		e.stripes = par.EnsureStripes(e.stripes, out.Rows)
		out.Zero()
	}
	e.curMode, e.curFactors, e.curOut, e.curPool = mode, factors, out, pool
	par.ForChunks(e.chunks, e.workers, e.body)
	e.curFactors, e.curOut, e.curPool = nil, nil, nil
	if pool != nil {
		pool.Reduce(out, workers)
	}
	e.ctr.Observe(start)
	return nil
}

// runChunk processes blocks [lo, hi): decodes each block origin once, streams
// its elements through the Hadamard kernel, and accumulates into the output —
// privatized copy when curPool is set, striped-lock scatter otherwise.
func (e *Engine) runChunk(worker, lo, hi int) {
	t := e.t
	mode, factors, out := e.curMode, e.curFactors, e.curOut
	n := len(t.Dims)
	stripes := e.stripes
	row := e.arena.Buf(worker, 0)
	base := e.base[worker]
	var priv *dense.Matrix
	if e.curPool != nil {
		priv = e.curPool.Acquire(worker)
	}
	var local int64
	for b := lo; b < hi; b++ {
		for m := 0; m < n; m++ {
			base[m] = int(t.BInds[m][b]) << blockBits
		}
		k0, k1 := t.BPtr[b], t.BPtr[b+1]
		for k := k0; k < k1; k++ {
			first := true
			for m := 0; m < n; m++ {
				if m == mode {
					continue
				}
				f := factors[m].Row(base[m] + int(t.EInds[m][k]))
				if first {
					kernel.Scale(row, f, t.Vals[k])
					first = false
				} else {
					kernel.MulInto(row, f)
				}
			}
			i := int32(base[mode] + int(t.EInds[mode][k]))
			if priv != nil {
				kernel.AddInto(priv.Row(int(i)), row)
			} else {
				stripes.Lock(i)
				kernel.AddInto(out.Row(int(i)), row)
				stripes.Unlock(i)
			}
		}
		local += int64(k1-k0) * int64(n) * int64(len(row))
	}
	e.ctr.AddOps(local)
}

var _ engine.Engine = (*Engine)(nil)
