package kernel

import "sync/atomic"

// Arena is a set of per-worker scratch R-vectors backed by one contiguous
// allocation, sized once (workers × slots × R) and reused across every
// MTTKRP call of an engine. Engines create the arena at construction with
// the worker count and the number of scratch slots each worker needs (e.g.
// one per CSF level), then call EnsureRank at the top of each kernel
// invocation; after the first call at a given rank the arena performs no
// allocation, which is what makes the steady-state hot loops alloc-free.
//
// EnsureRank must be called from the (single-threaded) kernel entry point,
// never from inside a parallel region. Buf is safe to call concurrently for
// distinct workers: slots of different workers never overlap.
type Arena struct {
	workers int
	slots   int
	r       int
	data    []float64
	// bytes mirrors cap(data)*8 and grows counts backing reallocations, both
	// atomically: a live /metrics scrape reads them concurrently with the
	// (single-threaded) EnsureRank mutation of data itself.
	bytes atomic.Int64
	grows atomic.Int64
}

// NewArena creates an arena for the given worker count and per-worker slot
// count. Both must be at least 1 (engines resolve workers <= 0 to the
// default parallel width before constructing the arena). The backing store
// is allocated lazily by the first EnsureRank.
func NewArena(workers, slots int) *Arena {
	if workers < 1 {
		workers = 1
	}
	if slots < 1 {
		slots = 1
	}
	return &Arena{workers: workers, slots: slots}
}

// Workers returns the worker count the arena was sized for.
func (a *Arena) Workers() int { return a.workers }

// Rank returns the current scratch vector length (0 before the first
// EnsureRank).
func (a *Arena) Rank() int { return a.r }

// EnsureRank resizes the scratch vectors to length r. Growing past the
// backing store's capacity reallocates; shrinking or re-requesting the
// current rank only re-slices, so rank changes within a run never thrash.
func (a *Arena) EnsureRank(r int) {
	if r == a.r {
		return
	}
	need := a.workers * a.slots * r
	if need <= cap(a.data) {
		a.data = a.data[:need]
	} else {
		a.data = make([]float64, need)
		a.bytes.Store(int64(cap(a.data)) * 8)
		a.grows.Add(1)
	}
	a.r = r
}

// Buf returns worker w's slot s scratch vector (length = current rank). The
// returned slice has its capacity clipped so appends never bleed into a
// neighboring slot.
func (a *Arena) Buf(w, s int) []float64 {
	base := (w*a.slots + s) * a.r
	return a.data[base : base+a.r : base+a.r]
}

// Bytes reports the backing storage size of the arena. Safe to call from a
// metrics scrape concurrent with EnsureRank.
func (a *Arena) Bytes() int64 { return a.bytes.Load() }

// Grows reports how many times EnsureRank reallocated the backing store —
// a steady state has exactly one growth per rank high-water mark; more means
// the arena is thrashing. Safe to call concurrently.
func (a *Arena) Grows() int64 { return a.grows.Load() }
