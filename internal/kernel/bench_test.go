// Microbenchmarks for the shared kernel primitives, across the ranks the
// experiment grid sweeps (8, 16, 32 hit the specialized bodies; 17 and 64
// exercise the generic unrolled path). `make bench-kernels` emits these as
// BENCH_kernels.json.
package kernel

import (
	"fmt"
	"math/rand"
	"testing"
)

var benchRanks = []int{8, 16, 17, 32, 64}

func benchVecs(r int) (dst, a, b, c []float64) {
	rng := rand.New(rand.NewSource(int64(r)))
	dst, a, b, c = randVec(r, rng), randVec(r, rng), randVec(r, rng), randVec(r, rng)
	return
}

func BenchmarkKernelScale(b *testing.B) {
	for _, r := range benchRanks {
		dst, src, _, _ := benchVecs(r)
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(r) * 8)
			for i := 0; i < b.N; i++ {
				Scale(dst, src, 1.0000001)
			}
		})
	}
}

func BenchmarkKernelMulInto(b *testing.B) {
	for _, r := range benchRanks {
		dst, src, _, _ := benchVecs(r)
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(r) * 8)
			for i := 0; i < b.N; i++ {
				MulInto(dst, src)
			}
		})
	}
}

func BenchmarkKernelAddInto(b *testing.B) {
	for _, r := range benchRanks {
		dst, src, _, _ := benchVecs(r)
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(r) * 8)
			for i := 0; i < b.N; i++ {
				AddInto(dst, src)
			}
		})
	}
}

func BenchmarkKernelFMAInto(b *testing.B) {
	for _, r := range benchRanks {
		dst, x, y, _ := benchVecs(r)
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(r) * 8)
			for i := 0; i < b.N; i++ {
				FMAInto(dst, x, y)
			}
		})
	}
}

func BenchmarkKernelAxpy(b *testing.B) {
	for _, r := range benchRanks {
		dst, src, _, _ := benchVecs(r)
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(r) * 8)
			for i := 0; i < b.N; i++ {
				Axpy(dst, 1.0000001, src)
			}
		})
	}
}

// BenchmarkKernelHadamardAccum compares the fused kernel against the
// unfused broadcast–multiply–accumulate sequence it replaces in the memo
// engine's inner loop.
func BenchmarkKernelHadamardAccum(b *testing.B) {
	for _, r := range benchRanks {
		for k := 1; k <= 3; k++ {
			dst, x, y, z := benchVecs(r)
			rows := [][]float64{x, y, z}[:k]
			b.Run(fmt.Sprintf("r%d/k%d/fused", r, k), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(r) * 8 * int64(k+1))
				for i := 0; i < b.N; i++ {
					HadamardAccum(dst, 1.0000001, rows)
				}
			})
			b.Run(fmt.Sprintf("r%d/k%d/unfused", r, k), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(r) * 8 * int64(k+1))
				tmp := make([]float64, r)
				for i := 0; i < b.N; i++ {
					for j := range tmp {
						tmp[j] = 1.0000001
					}
					for _, row := range rows {
						MulInto(tmp, row)
					}
					AddInto(dst, tmp)
				}
			})
		}
	}
}

func BenchmarkKernelHadamardAccumVec(b *testing.B) {
	for _, r := range benchRanks {
		for k := 1; k <= 3; k++ {
			dst, base, y, z := benchVecs(r)
			rows := [][]float64{base, y, z}[:k]
			b.Run(fmt.Sprintf("r%d/k%d", r, k), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(r) * 8 * int64(k+1))
				for i := 0; i < b.N; i++ {
					HadamardAccumVec(dst, base, rows)
				}
			})
		}
	}
}
