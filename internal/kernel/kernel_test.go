package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// testLengths covers the specialized paths (8, 16, 32), the 4-wide unrolled
// body, the scalar tail, and the degenerate lengths.
var testLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 40}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testLengths {
		src := randVec(n, rng)
		dst := randVec(n, rng)
		want := make([]float64, n)
		for j := range want {
			want[j] = 2.5 * src[j]
		}
		Scale(dst, src, 2.5)
		if !almostEqual(dst, want, 0) {
			t.Errorf("Scale n=%d: got %v want %v", n, dst, want)
		}
	}
}

func TestMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testLengths {
		a, b := randVec(n, rng), randVec(n, rng)
		dst := randVec(n, rng)
		want := make([]float64, n)
		for j := range want {
			want[j] = a[j] * b[j]
		}
		Mul(dst, a, b)
		if !almostEqual(dst, want, 0) {
			t.Errorf("Mul n=%d mismatch", n)
		}
		// Aliased: dst == a.
		ac := append([]float64(nil), a...)
		Mul(ac, ac, b)
		if !almostEqual(ac, want, 0) {
			t.Errorf("Mul aliased n=%d mismatch", n)
		}
	}
}

func TestMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testLengths {
		src := randVec(n, rng)
		dst := randVec(n, rng)
		want := make([]float64, n)
		for j := range want {
			want[j] = dst[j] * src[j]
		}
		MulInto(dst, src)
		if !almostEqual(dst, want, 0) {
			t.Errorf("MulInto n=%d mismatch", n)
		}
	}
}

func TestAddInto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range testLengths {
		src := randVec(n, rng)
		dst := randVec(n, rng)
		want := make([]float64, n)
		for j := range want {
			want[j] = dst[j] + src[j]
		}
		AddInto(dst, src)
		if !almostEqual(dst, want, 0) {
			t.Errorf("AddInto n=%d mismatch", n)
		}
	}
}

func TestFMAInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range testLengths {
		a, b := randVec(n, rng), randVec(n, rng)
		dst := randVec(n, rng)
		want := make([]float64, n)
		for j := range want {
			want[j] = dst[j] + a[j]*b[j]
		}
		FMAInto(dst, a, b)
		if !almostEqual(dst, want, 0) {
			t.Errorf("FMAInto n=%d mismatch", n)
		}
	}
}

func TestAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range testLengths {
		src := randVec(n, rng)
		dst := randVec(n, rng)
		want := make([]float64, n)
		for j := range want {
			want[j] = dst[j] + 1.75*src[j]
		}
		Axpy(dst, 1.75, src)
		if !almostEqual(dst, want, 0) {
			t.Errorf("Axpy n=%d mismatch", n)
		}
	}
}

func TestHadamardAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range testLengths {
		for k := 0; k <= 5; k++ {
			rows := make([][]float64, k)
			for i := range rows {
				rows[i] = randVec(n, rng)
			}
			dst := randVec(n, rng)
			want := make([]float64, n)
			for j := range want {
				p := -0.5
				for _, row := range rows {
					p *= row[j]
				}
				want[j] = dst[j] + p
			}
			HadamardAccum(dst, -0.5, rows)
			if !almostEqual(dst, want, 1e-15) {
				t.Errorf("HadamardAccum n=%d k=%d mismatch", n, k)
			}
		}
	}
}

func TestHadamardAccumVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range testLengths {
		for k := 0; k <= 5; k++ {
			base := randVec(n, rng)
			rows := make([][]float64, k)
			for i := range rows {
				rows[i] = randVec(n, rng)
			}
			dst := randVec(n, rng)
			want := make([]float64, n)
			for j := range want {
				p := base[j]
				for _, row := range rows {
					p *= row[j]
				}
				want[j] = dst[j] + p
			}
			HadamardAccumVec(dst, base, rows)
			if !almostEqual(dst, want, 1e-15) {
				t.Errorf("HadamardAccumVec n=%d k=%d mismatch", n, k)
			}
		}
	}
}

func TestArena(t *testing.T) {
	a := NewArena(3, 2)
	if a.Workers() != 3 {
		t.Fatalf("workers = %d", a.Workers())
	}
	a.EnsureRank(16)
	if a.Rank() != 16 {
		t.Fatalf("rank = %d", a.Rank())
	}
	// Distinct (worker, slot) buffers never overlap.
	for w := 0; w < 3; w++ {
		for s := 0; s < 2; s++ {
			buf := a.Buf(w, s)
			if len(buf) != 16 {
				t.Fatalf("buf len %d", len(buf))
			}
			for j := range buf {
				buf[j] = float64(w*100 + s*10)
			}
		}
	}
	for w := 0; w < 3; w++ {
		for s := 0; s < 2; s++ {
			for _, v := range a.Buf(w, s) {
				if v != float64(w*100+s*10) {
					t.Fatalf("worker %d slot %d clobbered: %v", w, s, v)
				}
			}
		}
	}
	// Shrinking re-slices without reallocating; steady-state rank is free.
	p := &a.data[0]
	a.EnsureRank(8)
	a.EnsureRank(16)
	if &a.data[0] != p {
		t.Error("EnsureRank reallocated within existing capacity")
	}
	if n := testing.AllocsPerRun(100, func() { a.EnsureRank(16) }); n != 0 {
		t.Errorf("steady-state EnsureRank allocates %v/op", n)
	}
	// Growing reallocates to the larger size.
	a.EnsureRank(64)
	if len(a.Buf(2, 1)) != 64 {
		t.Fatalf("post-grow buf len %d", len(a.Buf(2, 1)))
	}
}

func TestArenaClampsDegenerateSizes(t *testing.T) {
	a := NewArena(0, 0)
	a.EnsureRank(4)
	if len(a.Buf(0, 0)) != 4 {
		t.Fatal("degenerate arena unusable")
	}
}

// The primitives themselves must never allocate.
func TestPrimitivesAllocFree(t *testing.T) {
	dst := make([]float64, 17)
	a := make([]float64, 17)
	b := make([]float64, 17)
	rows := [][]float64{a, b}
	if n := testing.AllocsPerRun(100, func() {
		Scale(dst, a, 2)
		MulInto(dst, a)
		AddInto(dst, a)
		FMAInto(dst, a, b)
		Axpy(dst, 2, a)
		HadamardAccum(dst, 2, rows)
		HadamardAccumVec(dst, a, rows)
	}); n != 0 {
		t.Errorf("primitives allocate %v/op", n)
	}
}
