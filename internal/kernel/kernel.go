// Package kernel holds the shared rank-blocked MTTKRP primitives every
// sparse engine in the repository is built on: element-wise multiply /
// accumulate operations over length-R factor rows, plus fused
// Hadamard-accumulate kernels that multiply several factor rows into an
// accumulator in a single pass over the rank dimension.
//
// All primitives are allocation-free and branch once on the vector length:
// the ranks the experiment grid sweeps (R = 8, 16, 32) dispatch to
// fixed-size bodies (array-pointer conversions let the compiler drop every
// bounds check and fully unroll), and every other length runs a 4-wide
// unrolled loop with a scalar tail. Engines are expected to call these with
// rows of equal length; lengths are taken from dst and inputs must be at
// least as long.
package kernel

// Scale writes dst[j] = a * src[j].
func Scale(dst, src []float64, a float64) {
	switch len(dst) {
	case 8:
		d, s := (*[8]float64)(dst), (*[8]float64)(src)
		for j := range d {
			d[j] = a * s[j]
		}
	case 16:
		d, s := (*[16]float64)(dst), (*[16]float64)(src)
		for j := range d {
			d[j] = a * s[j]
		}
	case 32:
		d, s := (*[32]float64)(dst), (*[32]float64)(src)
		for j := range d {
			d[j] = a * s[j]
		}
	default:
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] = a * src[j]
			dst[j+1] = a * src[j+1]
			dst[j+2] = a * src[j+2]
			dst[j+3] = a * src[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] = a * src[j]
		}
	}
}

// Mul writes dst[j] = a[j] * b[j]. dst may alias a or b.
func Mul(dst, a, b []float64) {
	switch len(dst) {
	case 8:
		d, x, y := (*[8]float64)(dst), (*[8]float64)(a), (*[8]float64)(b)
		for j := range d {
			d[j] = x[j] * y[j]
		}
	case 16:
		d, x, y := (*[16]float64)(dst), (*[16]float64)(a), (*[16]float64)(b)
		for j := range d {
			d[j] = x[j] * y[j]
		}
	case 32:
		d, x, y := (*[32]float64)(dst), (*[32]float64)(a), (*[32]float64)(b)
		for j := range d {
			d[j] = x[j] * y[j]
		}
	default:
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] = a[j] * b[j]
			dst[j+1] = a[j+1] * b[j+1]
			dst[j+2] = a[j+2] * b[j+2]
			dst[j+3] = a[j+3] * b[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] = a[j] * b[j]
		}
	}
}

// MulInto writes dst[j] *= src[j].
func MulInto(dst, src []float64) {
	switch len(dst) {
	case 8:
		d, s := (*[8]float64)(dst), (*[8]float64)(src)
		for j := range d {
			d[j] *= s[j]
		}
	case 16:
		d, s := (*[16]float64)(dst), (*[16]float64)(src)
		for j := range d {
			d[j] *= s[j]
		}
	case 32:
		d, s := (*[32]float64)(dst), (*[32]float64)(src)
		for j := range d {
			d[j] *= s[j]
		}
	default:
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] *= src[j]
			dst[j+1] *= src[j+1]
			dst[j+2] *= src[j+2]
			dst[j+3] *= src[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] *= src[j]
		}
	}
}

// AddInto writes dst[j] += src[j].
func AddInto(dst, src []float64) {
	switch len(dst) {
	case 8:
		d, s := (*[8]float64)(dst), (*[8]float64)(src)
		for j := range d {
			d[j] += s[j]
		}
	case 16:
		d, s := (*[16]float64)(dst), (*[16]float64)(src)
		for j := range d {
			d[j] += s[j]
		}
	case 32:
		d, s := (*[32]float64)(dst), (*[32]float64)(src)
		for j := range d {
			d[j] += s[j]
		}
	default:
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += src[j]
			dst[j+1] += src[j+1]
			dst[j+2] += src[j+2]
			dst[j+3] += src[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += src[j]
		}
	}
}

// FMAInto writes dst[j] += a[j] * b[j].
func FMAInto(dst, a, b []float64) {
	switch len(dst) {
	case 8:
		d, x, y := (*[8]float64)(dst), (*[8]float64)(a), (*[8]float64)(b)
		for j := range d {
			d[j] += x[j] * y[j]
		}
	case 16:
		d, x, y := (*[16]float64)(dst), (*[16]float64)(a), (*[16]float64)(b)
		for j := range d {
			d[j] += x[j] * y[j]
		}
	case 32:
		d, x, y := (*[32]float64)(dst), (*[32]float64)(a), (*[32]float64)(b)
		for j := range d {
			d[j] += x[j] * y[j]
		}
	default:
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += a[j] * b[j]
			dst[j+1] += a[j+1] * b[j+1]
			dst[j+2] += a[j+2] * b[j+2]
			dst[j+3] += a[j+3] * b[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += a[j] * b[j]
		}
	}
}

// Axpy writes dst[j] += a * src[j].
func Axpy(dst []float64, a float64, src []float64) {
	switch len(dst) {
	case 8:
		d, s := (*[8]float64)(dst), (*[8]float64)(src)
		for j := range d {
			d[j] += a * s[j]
		}
	case 16:
		d, s := (*[16]float64)(dst), (*[16]float64)(src)
		for j := range d {
			d[j] += a * s[j]
		}
	case 32:
		d, s := (*[32]float64)(dst), (*[32]float64)(src)
		for j := range d {
			d[j] += a * s[j]
		}
	default:
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += a * src[j]
			dst[j+1] += a * src[j+1]
			dst[j+2] += a * src[j+2]
			dst[j+3] += a * src[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += a * src[j]
		}
	}
}

// HadamardAccum writes dst[j] += v · Π_k rows[k][j] in one pass: the
// broadcast of the scalar, the k Hadamard multiplies, and the accumulation
// are fused, so no temporary R-vector is needed. rows may be empty, in
// which case it degenerates to dst[j] += v.
func HadamardAccum(dst []float64, v float64, rows [][]float64) {
	switch len(rows) {
	case 0:
		for j := range dst {
			dst[j] += v
		}
	case 1:
		Axpy(dst, v, rows[0])
	case 2:
		a, b := rows[0], rows[1]
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += v * a[j] * b[j]
			dst[j+1] += v * a[j+1] * b[j+1]
			dst[j+2] += v * a[j+2] * b[j+2]
			dst[j+3] += v * a[j+3] * b[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += v * a[j] * b[j]
		}
	case 3:
		a, b, c := rows[0], rows[1], rows[2]
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += v * a[j] * b[j] * c[j]
			dst[j+1] += v * a[j+1] * b[j+1] * c[j+1]
			dst[j+2] += v * a[j+2] * b[j+2] * c[j+2]
			dst[j+3] += v * a[j+3] * b[j+3] * c[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += v * a[j] * b[j] * c[j]
		}
	default:
		for j := range dst {
			p := v
			for _, row := range rows {
				p *= row[j]
			}
			dst[j] += p
		}
	}
}

// HadamardAccumVec writes dst[j] += base[j] · Π_k rows[k][j] in one pass,
// the vector-base variant of HadamardAccum (the base is a parent element's
// cached R-row rather than a broadcast nonzero value). rows may be empty,
// in which case it degenerates to AddInto(dst, base).
func HadamardAccumVec(dst, base []float64, rows [][]float64) {
	switch len(rows) {
	case 0:
		AddInto(dst, base)
	case 1:
		FMAInto(dst, base, rows[0])
	case 2:
		a, b := rows[0], rows[1]
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += base[j] * a[j] * b[j]
			dst[j+1] += base[j+1] * a[j+1] * b[j+1]
			dst[j+2] += base[j+2] * a[j+2] * b[j+2]
			dst[j+3] += base[j+3] * a[j+3] * b[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += base[j] * a[j] * b[j]
		}
	case 3:
		a, b, c := rows[0], rows[1], rows[2]
		j := 0
		for ; j+4 <= len(dst); j += 4 {
			dst[j] += base[j] * a[j] * b[j] * c[j]
			dst[j+1] += base[j+1] * a[j+1] * b[j+1] * c[j+1]
			dst[j+2] += base[j+2] * a[j+2] * b[j+2] * c[j+2]
			dst[j+3] += base[j+3] * a[j+3] * b[j+3] * c[j+3]
		}
		for ; j < len(dst); j++ {
			dst[j] += base[j] * a[j] * b[j] * c[j]
		}
	default:
		for j := range dst {
			p := base[j]
			for _, row := range rows {
				p *= row[j]
			}
			dst[j] += p
		}
	}
}
