package csf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/par"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func TestLevelKernelMatchesDenseReference(t *testing.T) {
	x := tensor.RandomUniform(4, 7, 90, 41)
	fs := randomFactors(x, 5, 42)
	e := NewSingle(x, 2)
	for mode := 0; mode < 4; mode++ {
		out := dense.New(x.Dims[mode], 5)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRP(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("mode %d (level %d): max diff %g", mode, e.levelOf[mode], d)
		}
	}
}

func TestSingleHigherOrders(t *testing.T) {
	for _, order := range []int{3, 4, 5, 6, 7} {
		x := tensor.RandomClustered(order, 16, 500, 0.8, int64(order*7))
		fs := randomFactors(x, 6, int64(order*9))
		e := NewSingle(x, 4)
		for mode := 0; mode < order; mode++ {
			out := dense.New(x.Dims[mode], 6)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("order %d mode %d: max diff %g", order, mode, d)
			}
		}
	}
}

func TestSingleParallelConsistency(t *testing.T) {
	x := tensor.RandomClustered(4, 18, 3000, 0.9, 43)
	fs := randomFactors(x, 16, 44)
	seq := NewSingle(x, 1)
	parl := NewSingle(x, 8)
	for mode := 0; mode < 4; mode++ {
		a := dense.New(x.Dims[mode], 16)
		b := dense.New(x.Dims[mode], 16)
		seq.MTTKRP(mode, fs, a)
		parl.MTTKRP(mode, fs, b)
		if d := a.MaxAbsDiff(b); d > 1e-9 {
			t.Errorf("mode %d: parallel differs by %g", mode, d)
		}
	}
}

func TestSingleUsesOneTree(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 2000, 0.8, 45)
	one := NewSingle(x, 1)
	all := NewAllMode(x, 1)
	sOne, sAll := one.Stats(), all.Stats()
	if sOne.IndexBytes*2 >= sAll.IndexBytes {
		t.Errorf("single-tree index %d not well below allmode %d", sOne.IndexBytes, sAll.IndexBytes)
	}
	if sOne.ValueBytes != int64(x.NNZ())*8 {
		t.Errorf("value bytes = %d, want one copy %d", sOne.ValueBytes, x.NNZ()*8)
	}
}

func TestSingleSmallestModeAtRoot(t *testing.T) {
	x := tensor.RandomUniform(3, 5, 50, 46)
	x.Dims = []int{50, 3, 20}
	// regenerate indices within new bounds
	x = tensor.Generate(tensor.GenSpec{Dims: []int{50, 3, 20}, NNZ: 60, Seed: 46})
	e := NewSingle(x, 1)
	if e.tree.ModeOrder[0] != 1 {
		t.Errorf("root mode = %d, want the smallest mode 1", e.tree.ModeOrder[0])
	}
	if e.levelOf[1] != 0 {
		t.Errorf("levelOf[1] = %d", e.levelOf[1])
	}
}

func TestLevelKernelRootEqualsRootKernel(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 400, 0.6, 47)
	fs := randomFactors(x, 4, 48)
	tree := mustBuild(x, []int{0, 1, 2})
	a := dense.New(x.Dims[0], 4)
	b := dense.New(x.Dims[0], 4)
	tree.MTTKRPRoot(fs, a, 2)
	tree.MTTKRPLevel(0, fs, b, 2, par.NewStripes(64))
	if d := a.MaxAbsDiff(b); d > 1e-12 {
		t.Errorf("level-0 kernel differs from root kernel by %g", d)
	}
}

// Property: Single and AllMode agree everywhere.
func TestSingleAllModeAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(3)
		x := tensor.RandomClustered(order, 6+rng.Intn(8), 250, rng.Float64(), seed)
		fs := randomFactors(x, 4, seed+2)
		one := NewSingle(x, 2)
		all := NewAllMode(x, 2)
		mode := rng.Intn(order)
		a := dense.New(x.Dims[mode], 4)
		b := dense.New(x.Dims[mode], 4)
		one.MTTKRP(mode, fs, a)
		all.MTTKRP(mode, fs, b)
		return a.MaxAbsDiff(b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
