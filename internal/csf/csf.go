// Package csf implements the compressed-sparse-fiber tensor format and the
// fiber-factored MTTKRP kernels built on it. This is the data structure and
// algorithm family of SPLATT, the state-of-the-art baseline the paper
// compares against: nonzeros are organized into a forest per mode, so factor
// rows shared along a fiber are multiplied once per fiber instead of once
// per nonzero.
//
// The AllMode engine keeps one CSF tree per mode (SPLATT's ALLMODE
// configuration) and always runs the root-mode kernel, which parallelizes
// race-free over root fibers. Both engines run on the shared kernel layer:
// per-worker scratch comes from a kernel.Arena sized once at construction,
// and root fibers are scheduled in equal-nnz chunks (leaf-count-weighted
// prefix sums) rather than fixed-size blocks, so one heavy fiber cannot
// serialize a whole block of light ones.
package csf

import (
	"fmt"
	"sort"
	"time"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// rootChunksPerWorker is the load-balancing oversubscription factor: root
// fibers are split into workers × rootChunksPerWorker equal-nnz chunks.
const rootChunksPerWorker = 8

// Tensor is one CSF tree: levels ordered by ModeOrder, with Fids[l] holding
// the mode index of every node at level l, Ptr[l] delimiting the children of
// each level-l node within level l+1 (for l < N−1), and Vals holding the
// leaf values (len(Vals) == len(Fids[N−1]) == nnz).
type Tensor struct {
	ModeOrder []int
	Dims      []int
	Fids      [][]tensor.Index
	Ptr       [][]int64
	Vals      []float64
	// RootLeafPtr is the prefix of leaf (= nonzero) counts per root fiber:
	// root fiber i owns leaves [RootLeafPtr[i], RootLeafPtr[i+1]). It is the
	// weight array the load-balanced schedulers chunk by.
	RootLeafPtr []int64
}

// Build constructs a CSF tree from a deduplicated COO tensor using the given
// level order, which must be a permutation of the modes.
func Build(x *tensor.COO, modeOrder []int) (*Tensor, error) {
	n := x.Order()
	if len(modeOrder) != n {
		return nil, fmt.Errorf("csf: mode order has %d entries for order-%d tensor", len(modeOrder), n)
	}
	seen := make([]bool, n)
	for _, m := range modeOrder {
		if m < 0 || m >= n || seen[m] {
			return nil, fmt.Errorf("csf: mode order %v is not a permutation of 0..%d", modeOrder, n-1)
		}
		seen[m] = true
	}
	nnz := x.NNZ()
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		for _, m := range modeOrder {
			ia, ib := x.Inds[m][ka], x.Inds[m][kb]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})

	t := &Tensor{
		ModeOrder: append([]int(nil), modeOrder...),
		Dims:      append([]int(nil), x.Dims...),
		Fids:      make([][]tensor.Index, n),
		Ptr:       make([][]int64, n-1),
		Vals:      make([]float64, 0, nnz),
	}
	for k, p := range perm {
		// diverge = the shallowest level whose index differs from the
		// previous nonzero; every level at or below it starts a new node.
		diverge := 0
		if k > 0 {
			prev := perm[k-1]
			for diverge < n && x.Inds[modeOrder[diverge]][p] == x.Inds[modeOrder[diverge]][prev] {
				diverge++
			}
		}
		if k == 0 {
			diverge = 0
		}
		if diverge == 0 {
			t.RootLeafPtr = append(t.RootLeafPtr, int64(len(t.Vals)))
		}
		for l := diverge; l < n; l++ {
			if l < n-1 {
				t.Ptr[l] = append(t.Ptr[l], int64(len(t.Fids[l+1])))
			}
			t.Fids[l] = append(t.Fids[l], x.Inds[modeOrder[l]][p])
		}
		t.Vals = append(t.Vals, x.Vals[p])
	}
	// Close each pointer array with a sentinel.
	for l := 0; l < n-1; l++ {
		t.Ptr[l] = append(t.Ptr[l], int64(len(t.Fids[l+1])))
	}
	t.RootLeafPtr = append(t.RootLeafPtr, int64(len(t.Vals)))
	return t, nil
}

// mustBuild wraps Build for the engine constructors, which synthesize their
// own mode orders: a build error there is an internal invariant violation,
// not a caller mistake.
func mustBuild(x *tensor.COO, modeOrder []int) *Tensor {
	t, err := Build(x, modeOrder)
	if err != nil {
		panic(err)
	}
	return t
}

// NNodes returns the number of nodes at each level.
func (t *Tensor) NNodes() []int {
	out := make([]int, len(t.Fids))
	for l, f := range t.Fids {
		out[l] = len(f)
	}
	return out
}

// IndexBytes returns the auxiliary storage of the tree (index and pointer
// arrays; values excluded).
func (t *Tensor) IndexBytes() int64 {
	var b int64
	for _, f := range t.Fids {
		b += int64(len(f)) * 4
	}
	for _, p := range t.Ptr {
		b += int64(len(p)) * 8
	}
	return b
}

// children returns the child range of node at level l.
func (t *Tensor) children(l int, node int64) (int64, int64) {
	return t.Ptr[l][node], t.Ptr[l][node+1]
}

// rootWalker is the reusable per-worker state of the root-mode kernel: one
// scratch R-vector per level (arena-backed) plus the call-scoped inputs. A
// method-based walker instead of closures keeps the steady-state kernel
// allocation-free.
type rootWalker struct {
	t       *Tensor
	factors []*dense.Matrix
	scratch [][]float64 // one R-vector per level
	local   int64
	r       int
}

// walk computes the subtree TTV of the node at (l, id), already multiplied
// by the node's own factor row (levels >= 1).
func (w *rootWalker) walk(l int, id int64) []float64 {
	t := w.t
	n := len(t.ModeOrder)
	buf := w.scratch[l]
	if l == n-1 {
		kernel.Scale(buf, w.factors[t.ModeOrder[l]].Row(int(t.Fids[l][id])), t.Vals[id])
		w.local += int64(w.r)
		return buf
	}
	for j := range buf {
		buf[j] = 0
	}
	c0, c1 := t.children(l, id)
	for c := c0; c < c1; c++ {
		kernel.AddInto(buf, w.walk(l+1, c))
		w.local += int64(w.r)
	}
	if l > 0 {
		kernel.MulInto(buf, w.factors[t.ModeOrder[l]].Row(int(t.Fids[l][id])))
		w.local += int64(w.r)
	}
	return buf
}

// rootState bundles the preallocated scheduling and scratch state of the
// root kernel for one tree: equal-nnz chunk bounds over root fibers and one
// walker per worker.
type rootState struct {
	bounds  []int
	walkers []rootWalker
	arena   *kernel.Arena
	// Call-scoped kernel inputs plus a method value bound once at
	// construction: passing the same func value to the scheduler on every
	// call (instead of a fresh closure literal) is what keeps the
	// steady-state kernel at zero allocations.
	t    *Tensor
	out  *dense.Matrix
	body func(worker, lo, hi int)
}

// newRootState sizes the root-kernel state for t with the given resolved
// worker count (must be >= 1).
func newRootState(t *Tensor, workers int) *rootState {
	s := &rootState{
		bounds:  par.WeightedBounds(t.RootLeafPtr, workers*rootChunksPerWorker),
		walkers: make([]rootWalker, workers),
		arena:   kernel.NewArena(workers, len(t.ModeOrder)),
	}
	s.body = s.runChunk
	return s
}

// runChunk processes one scheduled chunk of root fibers.
func (s *rootState) runChunk(worker, lo, hi int) {
	t, out := s.t, s.out
	wk := &s.walkers[worker]
	for root := lo; root < hi; root++ {
		copy(out.Row(int(t.Fids[0][root])), wk.walk(0, int64(root)))
	}
}

// prepare re-points the walkers at the current rank's arena buffers. Called
// from the single-threaded kernel entry.
func (s *rootState) prepare(t *Tensor, factors []*dense.Matrix, r int) {
	n := len(t.ModeOrder)
	s.arena.EnsureRank(r)
	for w := range s.walkers {
		wk := &s.walkers[w]
		wk.t = t
		wk.factors = factors
		wk.r = r
		wk.local = 0
		if wk.scratch == nil {
			wk.scratch = make([][]float64, n)
		}
		for l := 0; l < n; l++ {
			wk.scratch[l] = s.arena.Buf(w, l)
		}
	}
}

// mttkrpRoot is the engine-facing root kernel: load-balanced over equal-nnz
// root-fiber chunks, allocation-free in steady state.
func (t *Tensor) mttkrpRoot(factors []*dense.Matrix, out *dense.Matrix, workers int, s *rootState) int64 {
	out.Zero()
	s.prepare(t, factors, out.Cols)
	s.t, s.out = t, out
	par.ForChunks(s.bounds, workers, s.body)
	s.t, s.out = nil, nil
	var ops int64
	for w := range s.walkers {
		ops += s.walkers[w].local
	}
	return ops
}

// MTTKRPRoot computes the MTTKRP for the tree's root mode into out
// (Dims[ModeOrder[0]] × R), overwriting it. factors holds one matrix per
// original mode. Returns the number of Hadamard op units performed.
//
// This standalone form builds transient scheduling state per call; the
// engines hold a persistent rootState instead and stay allocation-free.
func (t *Tensor) MTTKRPRoot(factors []*dense.Matrix, out *dense.Matrix, workers int) int64 {
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	return t.mttkrpRoot(factors, out, workers, newRootState(t, w))
}

// AllMode is the SPLATT-ALLMODE engine: one CSF tree per mode, root-mode
// kernel for every MTTKRP.
type AllMode struct {
	trees   []*Tensor
	states  []*rootState
	workers int
	ctr     engine.Counters
	idxB    int64
}

// NewAllMode builds the N per-mode trees. Within each tree the non-root
// levels are ordered by ascending mode size, which maximizes fiber reuse
// near the root (the standard SPLATT heuristic).
func NewAllMode(x *tensor.COO, workers int) *AllMode {
	n := x.Order()
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	e := &AllMode{trees: make([]*Tensor, n), states: make([]*rootState, n), workers: workers}
	for mode := 0; mode < n; mode++ {
		rest := make([]int, 0, n-1)
		for m := 0; m < n; m++ {
			if m != mode {
				rest = append(rest, m)
			}
		}
		sort.Slice(rest, func(a, b int) bool {
			if x.Dims[rest[a]] != x.Dims[rest[b]] {
				return x.Dims[rest[a]] < x.Dims[rest[b]]
			}
			return rest[a] < rest[b]
		})
		order := append([]int{mode}, rest...)
		e.trees[mode] = mustBuild(x, order)
		e.states[mode] = newRootState(e.trees[mode], w)
		e.idxB += e.trees[mode].IndexBytes()
	}
	return e
}

// Name implements engine.Engine.
func (e *AllMode) Name() string { return "csf" }

// FactorUpdated implements engine.Engine; CSF caches no factor-dependent
// state.
func (e *AllMode) FactorUpdated(int) {}

// Stats implements engine.Engine. ValueBytes counts the N copies of the
// nonzero values held by the per-mode trees.
func (e *AllMode) Stats() engine.Stats {
	var vb int64
	for _, t := range e.trees {
		vb += int64(len(t.Vals)) * 8
	}
	s := engine.Stats{IndexBytes: e.idxB, ValueBytes: vb, PeakValueBytes: vb}
	e.ctr.Fill(&s)
	return s
}

// ResetStats implements engine.Engine.
func (e *AllMode) ResetStats() { e.ctr.Reset() }

// MTTKRP implements engine.Engine.
func (e *AllMode) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.trees[0].Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	e.ctr.AddOps(e.trees[mode].mttkrpRoot(factors, out, e.workers, e.states[mode]))
	e.ctr.Observe(start)
	return nil
}

var _ engine.Engine = (*AllMode)(nil)
