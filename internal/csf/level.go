package csf

import (
	"sort"
	"sync/atomic"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// MTTKRPLevel computes the MTTKRP for the mode stored at the given CSF
// level, using the general two-direction kernel: the product of the factor
// rows on the path *above* the target level is pushed down, the tensor-
// times-vector reduction of the subtree *below* is pulled up, and their
// Hadamard product accumulates into the output row of the target node.
//
// level == 0 degenerates to the root kernel (no push-down, race-free
// accumulation); deeper levels use striped row locks because nodes in
// different root subtrees can share an output row. Returns the Hadamard op
// unit count.
func (t *Tensor) MTTKRPLevel(level int, factors []*dense.Matrix, out *dense.Matrix, workers int, stripes *par.Stripes) int64 {
	if level == 0 {
		return t.MTTKRPRoot(factors, out, workers)
	}
	n := len(t.ModeOrder)
	r := out.Cols
	out.Zero()
	var ops atomic.Int64
	nroots := len(t.Fids[0])
	par.ForBlocks(nroots, 64, workers, func(lo, hi int) {
		// Scratch: one R-vector per level for the upward reductions, one per
		// level above the target for the downward products.
		up := make([][]float64, n)
		down := make([][]float64, level+1)
		for l := range up {
			up[l] = make([]float64, r)
		}
		for l := range down {
			down[l] = make([]float64, r)
		}
		var local int64

		// walkUp computes the subtree TTV of node (l, id) over the modes of
		// levels l+1..n-1 (excluding level l's own factor row).
		var walkUp func(l int, id int64) []float64
		walkUp = func(l int, id int64) []float64 {
			buf := up[l]
			if l == n-1 {
				v := t.Vals[id]
				for j := range buf {
					buf[j] = v
				}
				return buf
			}
			for j := range buf {
				buf[j] = 0
			}
			c0, c1 := t.children(l, id)
			f := factors[t.ModeOrder[l+1]]
			for c := c0; c < c1; c++ {
				cb := walkUp(l+1, c)
				crow := f.Row(int(t.Fids[l+1][c]))
				for j := range buf {
					buf[j] += cb[j] * crow[j]
				}
				local += 2 * int64(r)
			}
			return buf
		}

		// walkDown carries the Hadamard product of the factor rows at
		// levels 0..l-1 and fires the accumulation at the target level.
		var walkDown func(l int, id int64)
		walkDown = func(l int, id int64) {
			if l == level {
				res := walkUp(l, id)
				d := down[l-1]
				fid := t.Fids[l][id]
				stripes.Lock(fid)
				orow := out.Row(int(fid))
				for j := range orow {
					orow[j] += res[j] * d[j]
				}
				stripes.Unlock(fid)
				local += int64(r)
				return
			}
			// Extend the downward product with this level's factor row.
			buf := down[l]
			frow := factors[t.ModeOrder[l]].Row(int(t.Fids[l][id]))
			if l == 0 {
				copy(buf, frow)
			} else {
				prev := down[l-1]
				for j := range buf {
					buf[j] = prev[j] * frow[j]
				}
			}
			local += int64(r)
			c0, c1 := t.children(l, id)
			for c := c0; c < c1; c++ {
				walkDown(l+1, c)
			}
		}

		for root := lo; root < hi; root++ {
			walkDown(0, int64(root))
		}
		ops.Add(local)
	})
	return ops.Load()
}

// Single is the single-tree CSF engine (SPLATT's memory-lean ONEMODE
// configuration): one CSF ordered smallest-dimension-first, serving every
// mode's MTTKRP through the level kernel above. It trades kernel speed on
// deep modes for an N-fold reduction in index storage versus AllMode.
type Single struct {
	tree    *Tensor
	levelOf []int // levelOf[mode] = CSF level holding that mode
	workers int
	stripes *par.Stripes
	ops     atomic.Int64
}

// NewSingle builds the single-tree engine over x.
func NewSingle(x *tensor.COO, workers int) *Single {
	n := x.Order()
	order := make([]int, n)
	for m := range order {
		order[m] = m
	}
	sort.Slice(order, func(a, b int) bool {
		if x.Dims[order[a]] != x.Dims[order[b]] {
			return x.Dims[order[a]] < x.Dims[order[b]]
		}
		return order[a] < order[b]
	})
	e := &Single{tree: Build(x, order), workers: workers, stripes: par.NewStripes(1024)}
	e.levelOf = make([]int, n)
	for l, m := range order {
		e.levelOf[m] = l
	}
	return e
}

// Name implements engine.Engine.
func (e *Single) Name() string { return "csf-one" }

// FactorUpdated implements engine.Engine; no factor-dependent caches.
func (e *Single) FactorUpdated(int) {}

// Stats implements engine.Engine.
func (e *Single) Stats() engine.Stats {
	vb := int64(len(e.tree.Vals)) * 8
	return engine.Stats{HadamardOps: e.ops.Load(), IndexBytes: e.tree.IndexBytes(), ValueBytes: vb, PeakValueBytes: vb}
}

// ResetStats implements engine.Engine.
func (e *Single) ResetStats() { e.ops.Store(0) }

// MTTKRP implements engine.Engine.
func (e *Single) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) {
	e.ops.Add(e.tree.MTTKRPLevel(e.levelOf[mode], factors, out, e.workers, e.stripes))
}

var _ engine.Engine = (*Single)(nil)
