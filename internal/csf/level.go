package csf

import (
	"sort"
	"time"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// levelWalker is the reusable per-worker state of the general level kernel:
// arena-backed upward-reduction and downward-product scratch plus the
// call-scoped inputs, structured as methods (not closures) so the
// steady-state kernel performs no allocation.
type levelWalker struct {
	t       *Tensor
	factors []*dense.Matrix
	out     *dense.Matrix
	stripes *par.Stripes
	level   int
	up      [][]float64 // one R-vector per level
	down    [][]float64 // one R-vector per level above the target
	local   int64
	r       int
}

// walkUp computes the subtree TTV of node (l, id) over the modes of levels
// l+1..n-1 (excluding level l's own factor row).
func (w *levelWalker) walkUp(l int, id int64) []float64 {
	t := w.t
	n := len(t.ModeOrder)
	buf := w.up[l]
	if l == n-1 {
		v := t.Vals[id]
		for j := range buf {
			buf[j] = v
		}
		return buf
	}
	for j := range buf {
		buf[j] = 0
	}
	c0, c1 := t.children(l, id)
	f := w.factors[t.ModeOrder[l+1]]
	for c := c0; c < c1; c++ {
		kernel.FMAInto(buf, w.walkUp(l+1, c), f.Row(int(t.Fids[l+1][c])))
		w.local += 2 * int64(w.r)
	}
	return buf
}

// walkDown carries the Hadamard product of the factor rows at levels
// 0..l-1 and fires the accumulation at the target level.
func (w *levelWalker) walkDown(l int, id int64) {
	t := w.t
	if l == w.level {
		res := w.walkUp(l, id)
		d := w.down[l-1]
		fid := t.Fids[l][id]
		w.stripes.Lock(fid)
		kernel.FMAInto(w.out.Row(int(fid)), res, d)
		w.stripes.Unlock(fid)
		w.local += int64(w.r)
		return
	}
	// Extend the downward product with this level's factor row.
	buf := w.down[l]
	frow := w.factors[t.ModeOrder[l]].Row(int(t.Fids[l][id]))
	if l == 0 {
		copy(buf, frow)
	} else {
		kernel.Mul(buf, w.down[l-1], frow)
	}
	w.local += int64(w.r)
	c0, c1 := t.children(l, id)
	for c := c0; c < c1; c++ {
		w.walkDown(l+1, c)
	}
}

// levelState bundles the preallocated scheduling and scratch state of the
// level kernel for one tree: equal-nnz chunk bounds over root fibers and
// one walker per worker (up and down scratch live in one arena, 2n slots
// per worker).
type levelState struct {
	bounds  []int
	walkers []levelWalker
	arena   *kernel.Arena
	// body is bound once at construction so each call passes the same func
	// value to the scheduler (no per-call closure allocation).
	body func(worker, lo, hi int)
}

func newLevelState(t *Tensor, workers int) *levelState {
	s := &levelState{
		bounds:  par.WeightedBounds(t.RootLeafPtr, workers*rootChunksPerWorker),
		walkers: make([]levelWalker, workers),
		arena:   kernel.NewArena(workers, 2*len(t.ModeOrder)),
	}
	s.body = s.runChunk
	return s
}

// runChunk processes one scheduled chunk of root fibers.
func (s *levelState) runChunk(worker, lo, hi int) {
	wk := &s.walkers[worker]
	for root := lo; root < hi; root++ {
		wk.walkDown(0, int64(root))
	}
}

func (s *levelState) prepare(t *Tensor, factors []*dense.Matrix, out *dense.Matrix, level, r int, stripes *par.Stripes) {
	n := len(t.ModeOrder)
	s.arena.EnsureRank(r)
	for w := range s.walkers {
		wk := &s.walkers[w]
		wk.t = t
		wk.factors = factors
		wk.out = out
		wk.stripes = stripes
		wk.level = level
		wk.r = r
		wk.local = 0
		if wk.up == nil {
			wk.up = make([][]float64, n)
			wk.down = make([][]float64, n)
		}
		for l := 0; l < n; l++ {
			wk.up[l] = s.arena.Buf(w, l)
			wk.down[l] = s.arena.Buf(w, n+l)
		}
	}
}

// mttkrpLevel is the engine-facing level kernel (level >= 1):
// load-balanced over equal-nnz root-fiber chunks, allocation-free in
// steady state.
func (t *Tensor) mttkrpLevel(level int, factors []*dense.Matrix, out *dense.Matrix, workers int, stripes *par.Stripes, s *levelState) int64 {
	out.Zero()
	s.prepare(t, factors, out, level, out.Cols, stripes)
	par.ForChunks(s.bounds, workers, s.body)
	var ops int64
	for w := range s.walkers {
		ops += s.walkers[w].local
	}
	return ops
}

// MTTKRPLevel computes the MTTKRP for the mode stored at the given CSF
// level, using the general two-direction kernel: the product of the factor
// rows on the path *above* the target level is pushed down, the tensor-
// times-vector reduction of the subtree *below* is pulled up, and their
// Hadamard product accumulates into the output row of the target node.
//
// level == 0 degenerates to the root kernel (no push-down, race-free
// accumulation); deeper levels use striped row locks because nodes in
// different root subtrees can share an output row. Returns the Hadamard op
// unit count.
//
// This standalone form builds transient scheduling state per call; the
// Single engine holds persistent state instead and stays allocation-free.
func (t *Tensor) MTTKRPLevel(level int, factors []*dense.Matrix, out *dense.Matrix, workers int, stripes *par.Stripes) int64 {
	if level == 0 {
		return t.MTTKRPRoot(factors, out, workers)
	}
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	return t.mttkrpLevel(level, factors, out, workers, stripes, newLevelState(t, w))
}

// Single is the single-tree CSF engine (SPLATT's memory-lean ONEMODE
// configuration): one CSF ordered smallest-dimension-first, serving every
// mode's MTTKRP through the level kernel above. It trades kernel speed on
// deep modes for an N-fold reduction in index storage versus AllMode.
type Single struct {
	tree    *Tensor
	levelOf []int // levelOf[mode] = CSF level holding that mode
	workers int
	stripes *par.Stripes
	root    *rootState
	deep    *levelState
	ctr     engine.Counters
}

// NewSingle builds the single-tree engine over x.
func NewSingle(x *tensor.COO, workers int) *Single {
	n := x.Order()
	order := make([]int, n)
	for m := range order {
		order[m] = m
	}
	sort.Slice(order, func(a, b int) bool {
		if x.Dims[order[a]] != x.Dims[order[b]] {
			return x.Dims[order[a]] < x.Dims[order[b]]
		}
		return order[a] < order[b]
	})
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	maxDim := 0
	for _, d := range x.Dims {
		if d > maxDim {
			maxDim = d
		}
	}
	e := &Single{
		tree:    mustBuild(x, order),
		workers: workers,
		stripes: par.StripesFor(maxDim),
	}
	e.root = newRootState(e.tree, w)
	e.deep = newLevelState(e.tree, w)
	e.levelOf = make([]int, n)
	for l, m := range order {
		e.levelOf[m] = l
	}
	return e
}

// Name implements engine.Engine.
func (e *Single) Name() string { return "csf-one" }

// FactorUpdated implements engine.Engine; no factor-dependent caches.
func (e *Single) FactorUpdated(int) {}

// Stats implements engine.Engine.
func (e *Single) Stats() engine.Stats {
	vb := int64(len(e.tree.Vals)) * 8
	s := engine.Stats{IndexBytes: e.tree.IndexBytes(), ValueBytes: vb, PeakValueBytes: vb}
	e.ctr.Fill(&s)
	return s
}

// ResetStats implements engine.Engine.
func (e *Single) ResetStats() { e.ctr.Reset() }

// MTTKRP implements engine.Engine.
func (e *Single) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.tree.Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	level := e.levelOf[mode]
	if level == 0 {
		e.ctr.AddOps(e.tree.mttkrpRoot(factors, out, e.workers, e.root))
	} else {
		e.ctr.AddOps(e.tree.mttkrpLevel(level, factors, out, e.workers, e.stripes, e.deep))
	}
	e.ctr.Observe(start)
	return nil
}

var _ engine.Engine = (*Single)(nil)
