package csf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func randomFactors(x *tensor.COO, r int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*dense.Matrix, x.Order())
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], r, rng)
	}
	return fs
}

func TestBuildStructure(t *testing.T) {
	// Tensor with shared fibers: (0,0,0), (0,0,1), (0,1,0), (1,0,0).
	x := tensor.NewCOO([]int{2, 2, 2}, 4)
	x.Append([]tensor.Index{0, 0, 0}, 1)
	x.Append([]tensor.Index{0, 0, 1}, 2)
	x.Append([]tensor.Index{0, 1, 0}, 3)
	x.Append([]tensor.Index{1, 0, 0}, 4)
	c := mustBuild(x, []int{0, 1, 2})
	nodes := c.NNodes()
	if nodes[0] != 2 { // roots 0 and 1
		t.Errorf("level 0 nodes = %d, want 2", nodes[0])
	}
	if nodes[1] != 3 { // fibers (0,0), (0,1), (1,0)
		t.Errorf("level 1 nodes = %d, want 3", nodes[1])
	}
	if nodes[2] != 4 {
		t.Errorf("level 2 nodes = %d, want 4 (nnz)", nodes[2])
	}
	if len(c.Vals) != 4 {
		t.Errorf("vals = %d", len(c.Vals))
	}
	// Pointer sentinels close each level.
	if c.Ptr[0][len(c.Ptr[0])-1] != int64(nodes[1]) {
		t.Error("level-0 sentinel wrong")
	}
	if c.Ptr[1][len(c.Ptr[1])-1] != int64(nodes[2]) {
		t.Error("level-1 sentinel wrong")
	}
}

func TestRootKernelMatchesDenseReference(t *testing.T) {
	x := tensor.RandomUniform(3, 8, 60, 21)
	fs := randomFactors(x, 5, 22)
	e := NewAllMode(x, 2)
	for mode := 0; mode < 3; mode++ {
		out := dense.New(x.Dims[mode], 5)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRP(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("mode %d: max diff %g vs dense reference", mode, d)
		}
	}
}

func TestHigherOrderMatchesSparseReference(t *testing.T) {
	for _, order := range []int{3, 4, 5, 6, 7} {
		x := tensor.RandomClustered(order, 18, 600, 0.9, int64(order*3))
		fs := randomFactors(x, 8, int64(order*5))
		e := NewAllMode(x, 4)
		for mode := 0; mode < order; mode++ {
			out := dense.New(x.Dims[mode], 8)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("order %d mode %d: max diff %g", order, mode, d)
			}
		}
	}
}

func TestParallelConsistency(t *testing.T) {
	x := tensor.RandomClustered(4, 20, 3000, 0.7, 33)
	fs := randomFactors(x, 16, 34)
	seq := NewAllMode(x, 1)
	parl := NewAllMode(x, 8)
	for mode := 0; mode < 4; mode++ {
		a := dense.New(x.Dims[mode], 16)
		b := dense.New(x.Dims[mode], 16)
		seq.MTTKRP(mode, fs, a)
		parl.MTTKRP(mode, fs, b)
		if d := a.MaxAbsDiff(b); d > 1e-9 {
			t.Errorf("mode %d: parallel differs by %g", mode, d)
		}
	}
}

func TestFiberCompressionReducesOps(t *testing.T) {
	// A highly clustered tensor has far fewer fibers than nonzeros, so CSF
	// must perform fewer ops than the COO bound N·R·nnz per mode.
	x := tensor.RandomClustered(4, 8, 3000, 1.2, 35)
	fs := randomFactors(x, 8, 36)
	e := NewAllMode(x, 1)
	out := dense.New(x.Dims[0], 8)
	e.MTTKRP(0, fs, out)
	cooOps := int64(x.NNZ()) * 4 * 8
	if got := e.Stats().HadamardOps; got >= cooOps {
		t.Errorf("csf ops %d not below coo bound %d on clustered tensor", got, cooOps)
	}
}

func TestIndexBytesPositive(t *testing.T) {
	x := tensor.RandomUniform(3, 10, 200, 37)
	e := NewAllMode(x, 1)
	s := e.Stats()
	if s.IndexBytes <= 0 || s.ValueBytes != int64(3*x.NNZ()*8) {
		t.Errorf("stats = %+v", s)
	}
}

func TestSingleNonzero(t *testing.T) {
	x := tensor.NewCOO([]int{3, 4, 5}, 1)
	x.Append([]tensor.Index{2, 3, 4}, 2.5)
	fs := randomFactors(x, 3, 38)
	e := NewAllMode(x, 1)
	out := dense.New(4, 3)
	e.MTTKRP(1, fs, out)
	for j := 0; j < 3; j++ {
		want := 2.5 * fs[0].At(2, j) * fs[2].At(4, j)
		if diff := out.At(3, j) - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("col %d: got %g want %g", j, out.At(3, j), want)
		}
	}
}

// Property: CSF and the sparse reference agree on random clustered tensors
// of random order.
func TestEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(3)
		x := tensor.RandomClustered(order, 6+rng.Intn(10), 200, rng.Float64(), seed)
		fs := randomFactors(x, 4, seed+1)
		e := NewAllMode(x, 2)
		mode := rng.Intn(order)
		out := dense.New(x.Dims[mode], 4)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		return out.MaxAbsDiff(want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
