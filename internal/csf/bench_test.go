package csf

import (
	"fmt"
	"testing"

	"adatm/internal/dense"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

func benchTensor(order int) *tensor.COO {
	return tensor.RandomClustered(order, 4096, 100000, 0.8, int64(order))
}

func BenchmarkBuild(b *testing.B) {
	for _, order := range []int{3, 4, 6} {
		x := benchTensor(order)
		mo := make([]int, order)
		for i := range mo {
			mo[i] = i
		}
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(x, mo)
			}
			b.ReportMetric(float64(x.NNZ()), "nnz")
		})
	}
}

func BenchmarkRootKernel(b *testing.B) {
	x := benchTensor(4)
	fs := randomFactors(x, 16, 7)
	t := mustBuild(x, []int{0, 1, 2, 3})
	out := dense.New(x.Dims[0], 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.MTTKRPRoot(fs, out, 0)
	}
}

func BenchmarkLevelKernel(b *testing.B) {
	x := benchTensor(4)
	fs := randomFactors(x, 16, 9)
	t := mustBuild(x, []int{0, 1, 2, 3})
	stripes := par.NewStripes(1024)
	for _, level := range []int{1, 2, 3} {
		mode := level
		out := dense.New(x.Dims[mode], 16)
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.MTTKRPLevel(level, fs, out, 0, stripes)
			}
		})
	}
}
