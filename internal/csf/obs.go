package csf

import (
	"adatm/internal/engine"
	"adatm/internal/obs"
	"adatm/internal/par"
)

// registerCSFMetrics wires the counters shared by both CSF engines: common
// engine counters, summed arena footprint across the per-tree kernel states,
// and the worst root-fiber chunk imbalance across the trees — the quantity
// the leaf-count-weighted scheduler is supposed to pin near 1 even on
// power-law fiber-size distributions.
func registerCSFMetrics(reg *obs.Registry, name string, ctr *engine.Counters, trees []*Tensor, bounds [][]int, arenas func() int64, grows func() int64) {
	if reg == nil {
		return
	}
	engine.RegisterCommonMetrics(reg, name, ctr)
	l := obs.Labels{"engine": name}
	reg.GaugeFunc("adatm_kernel_arena_bytes",
		"Per-worker scratch arena backing bytes.", l,
		func() float64 { return float64(arenas()) })
	reg.CounterFunc("adatm_kernel_arena_grows_total",
		"Arena backing-store reallocations.", l,
		func() float64 { return float64(grows()) })
	worst := 1.0
	for i, t := range trees {
		if v := par.ImbalanceRatio(t.RootLeafPtr, bounds[i]); v > worst {
			worst = v
		}
	}
	reg.GaugeFunc("adatm_par_chunk_imbalance_ratio",
		"Worst heaviest-chunk/ideal-share ratio of the weighted schedules.", l,
		func() float64 { return worst })
}

// Instrument implements engine.Instrumentable for the all-mode engine.
func (e *AllMode) Instrument(_ *obs.Tracer, reg *obs.Registry) {
	bounds := make([][]int, len(e.states))
	for i, s := range e.states {
		bounds[i] = s.bounds
	}
	registerCSFMetrics(reg, e.Name(), &e.ctr, e.trees, bounds,
		func() int64 {
			var b int64
			for _, s := range e.states {
				b += s.arena.Bytes()
			}
			return b
		},
		func() int64 {
			var g int64
			for _, s := range e.states {
				g += s.arena.Grows()
			}
			return g
		})
}

// Instrument implements engine.Instrumentable for the single-tree engine.
func (e *Single) Instrument(_ *obs.Tracer, reg *obs.Registry) {
	registerCSFMetrics(reg, e.Name(), &e.ctr,
		[]*Tensor{e.tree, e.tree}, [][]int{e.root.bounds, e.deep.bounds},
		func() int64 { return e.root.arena.Bytes() + e.deep.arena.Bytes() },
		func() int64 { return e.root.arena.Grows() + e.deep.arena.Grows() })
}
