package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric naming convention (DESIGN.md §2d): adatm_<pkg>_<name>_<unit>, e.g.
// adatm_memo_hits_total, adatm_cpd_phase_seconds, adatm_kernel_arena_bytes.

// Labels attaches Prometheus label pairs to a metric series. Keys and values
// may contain any bytes; the exposition writer escapes them.
type Labels map[string]string

// Counter is a monotonically increasing metric backed by one atomic int64.
// A nil *Counter (from a nil registry) no-ops.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add accumulates n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric (atomic bit-pattern storage). A nil
// *Gauge no-ops.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates a delta with a CAS loop.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Buckets are cumulative
// only at exposition time; observation is one binary search plus two atomic
// adds, allocation-free and safe from any goroutine. Non-finite observations
// (NaN, ±Inf) are rejected and counted in Rejected, so the exposed _sum can
// never be poisoned into NaN/Inf. A nil *Histogram no-ops.
type Histogram struct {
	bounds   []float64 // ascending upper bounds, excluding +Inf
	buckets  []atomic.Int64
	inf      atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64
	rejected atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.rejected.Add(1)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound with v <= bound
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveN records n observations of the same value v in O(1): one bucket
// add instead of n. Used by bulk importers (e.g. folding a runtime/metrics
// histogram delta) where per-observation Observe calls would be wasteful.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.rejected.Add(n)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(n)
	} else {
		h.inf.Add(n)
	}
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v*float64(n))) {
			return
		}
	}
}

// Count returns the number of accepted observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of accepted observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Rejected returns the number of non-finite observations dropped.
func (h *Histogram) Rejected() int64 {
	if h == nil {
		return 0
	}
	return h.rejected.Load()
}

// NewHistogram builds a standalone (unregistered) histogram with the given
// ascending bucket bounds (nil selects LatencyBuckets). Use this when a
// component needs a private distribution — e.g. the health probe's fit-delta
// baseline — without requiring a registry. The same validation as
// Registry.Histogram applies: non-finite or non-ascending bounds panic.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	validateBounds("histogram", bounds)
	bb := make([]float64, len(bounds))
	copy(bb, bounds)
	return &Histogram{bounds: bb, buckets: make([]atomic.Int64, len(bb))}
}

// validateBounds panics unless bounds are finite and strictly ascending.
func validateBounds(name string, bounds []float64) {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bound %d is not finite", name, i))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution from the bucket counts alone — the same information the text
// exposition carries, so an estimate computed here matches one recomputed
// from a scrape. Within the target bucket the value is interpolated
// geometrically when the bucket's bounds are both positive (exact-ish for
// log-scaled buckets) and linearly when the bucket touches zero or negative
// territory. Observations in the +Inf overflow bucket report the highest
// finite bound. Returns NaN when the histogram is empty, nil, or q is
// outside [0, 1].
//
// The estimate is allocation-free and safe under concurrent Observe; counts
// are read once per bucket, so a racing observation shifts the result by at
// most one sample.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	total += h.inf.Load()
	if total == 0 {
		return math.NaN()
	}
	// Rank of the target observation, 1-based: ceil(q·total), clamped to ≥1
	// so Quantile(0) reports the lowest populated bucket.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		lo := math.Inf(-1)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Fraction of the way through this bucket's population.
		frac := float64(rank-(cum-n)) / float64(n)
		if lo > 0 && hi > 0 {
			return lo * math.Pow(hi/lo, frac)
		}
		if math.IsInf(lo, -1) {
			return hi
		}
		return lo + (hi-lo)*frac
	}
	// Target falls in the +Inf overflow bucket: report the highest finite
	// bound (the estimate cannot do better from bucket counts).
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return math.NaN()
}

// LatencyBuckets returns the default log-scaled latency bounds in seconds:
// powers of two from 1 µs to ~33 s. Log scaling keeps the bucket count small
// while spanning the six orders of magnitude between a single chunk and a
// full decomposition.
func LatencyBuckets() []float64 {
	out := make([]float64, 26)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series (a family member with fixed labels).
type series struct {
	labelStr string // pre-rendered, escaped {k="v",...} (empty for no labels)
	labels   Labels
	c        *Counter
	g        *Gauge
	h        *Histogram
	fn       func() float64   // callback counters/gauges
	sync     func(*Histogram) // refreshed-at-exposition histograms
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // by labelStr
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is idempotent: re-registering the same
// name+labels returns the existing collector, so engines can be instrumented
// repeatedly (reruns, retries) without double counting. Registering an
// existing name with a different kind panics — that is a programming error,
// not a runtime condition.
//
// A nil *Registry is valid: registration methods return nil collectors
// (whose methods no-op) and WriteTo writes nothing.
type Registry struct {
	mu       sync.RWMutex // register() writes; WriteTo/Snapshot hold the read lock for the full render
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels builds the deterministic, escaped {k="v",...} suffix: keys
// sorted, values escaped per the exposition format.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// register resolves (name, labels) to its series, creating family and series
// on first sight. Returns nil on a nil registry.
func (r *Registry) register(name, help string, kind metricKind, labels Labels, mk func() *series) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	key := renderLabels(labels)
	if s := f.series[key]; s != nil {
		return s
	}
	s := mk()
	s.labelStr = key
	s.labels = labels
	f.series[key] = s
	return s
}

// Counter registers (or returns) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.register(name, help, kindCounter, labels, func() *series { return &series{c: &Counter{}} })
	if s == nil {
		return nil
	}
	return s.c
}

// Gauge registers (or returns) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() *series { return &series{g: &Gauge{}} })
	if s == nil {
		return nil
	}
	return s.g
}

// Histogram registers (or returns) the histogram series name{labels} with
// the given ascending bucket bounds (nil selects LatencyBuckets). Non-finite
// bounds panic at registration — they would corrupt the cumulative buckets.
// Re-registering an existing series with different bounds panics too: the
// caller would otherwise silently get data bucketed by the original bounds.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	validateBounds(name, bounds)
	s := r.register(name, help, kindHistogram, labels, func() *series {
		bb := make([]float64, len(bounds))
		copy(bb, bounds)
		return &series{h: &Histogram{bounds: bb, buckets: make([]atomic.Int64, len(bb))}}
	})
	if s == nil {
		return nil
	}
	if !equalBounds(s.h.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds (%v, was %v)", name, bounds, s.h.bounds))
	}
	return s.h
}

// SyncedHistogram registers a histogram whose contents are refreshed by sync
// immediately before every exposition (WriteTo and Snapshot). This is the
// bridge for sources that are themselves cumulative histograms — e.g. the
// runtime/metrics GC-pause distribution — where there is no per-event
// callback to Observe from: sync reads the source, folds the delta since its
// last call into the histogram (ObserveN), and returns.
//
// sync runs while the registry lock is held, possibly concurrently from
// racing scrapes: it must synchronize its own delta state, must not block,
// and must not register metrics on this registry. Re-registering an existing
// series keeps the first sync hook.
func (r *Registry) SyncedHistogram(name, help string, labels Labels, bounds []float64, sync func(*Histogram)) *Histogram {
	h := r.Histogram(name, help, labels, bounds)
	if h == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.families[name].series[renderLabels(labels)]
	if s.sync == nil {
		s.sync = sync
	}
	return h
}

// equalBounds reports whether two bound slices are element-wise identical.
// Bounds are immutable after series creation, so this is safe outside the
// registry lock.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time. fn must be safe to call from any goroutine (read atomics only), must
// be monotonically non-decreasing, and must not register metrics on this
// registry — it runs while WriteTo/Snapshot hold the registry lock.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, kindCounter, labels, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time. fn must be safe to call from any goroutine and must not register
// metrics on this registry — it runs while WriteTo/Snapshot hold the
// registry lock.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, kindGauge, labels, func() *series { return &series{fn: fn} })
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf spelled out.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families sorted by name, series
// sorted by rendered label string. Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	// Hold the read lock for the whole render: family and series maps grow
	// under register()'s write lock, and sample reads are all atomics, so the
	// critical section is cheap and scrapes never race a registration.
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case f.kind == kindHistogram:
				if s.sync != nil {
					s.sync(s.h)
				}
				writeHistogram(&b, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(s.fn()))
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(float64(s.c.Value())))
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(s.g.Value()))
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHistogram renders one histogram series: cumulative le-labeled
// buckets, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	// Splice le into the existing label string.
	open := "{"
	closeRest := "}"
	if s.labelStr != "" {
		open = s.labelStr[:len(s.labelStr)-1] + ","
		closeRest = "}"
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=%q%s %d\n", name, open, formatValue(bound), closeRest, cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"%s %d\n", name, open, closeRest, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labelStr, formatValue(h.Sum()))
	// _count is derived from the cumulative bucket total, not h.count:
	// Observe increments buckets before count, so reading count separately
	// could exceed the +Inf bucket under a concurrent Observe, violating the
	// Prometheus invariant that the +Inf bucket equals _count.
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labelStr, cum)
}

// Snapshot returns a flat name{labels} → value map of every series
// (histograms contribute _sum and _count entries). This is the expvar bridge
// payload and a convenient test probe.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.RLock() // full-render read lock, same reasoning as WriteTo
	defer r.mu.RUnlock()
	for _, f := range r.families {
		for _, s := range f.series {
			switch {
			case f.kind == kindHistogram:
				if s.sync != nil {
					s.sync(s.h)
				}
				out[f.name+"_sum"+s.labelStr] = s.h.Sum()
				out[f.name+"_count"+s.labelStr] = float64(s.h.Count())
			case s.fn != nil:
				out[f.name+s.labelStr] = s.fn()
			case s.c != nil:
				out[f.name+s.labelStr] = float64(s.c.Value())
			case s.g != nil:
				out[f.name+s.labelStr] = s.g.Value()
			}
		}
	}
	return out
}

// ExpvarFunc returns the registry as an expvar.Func for use with
// expvar.Publish or a /debug/vars-style endpoint.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

// published guards PublishExpvar against the expvar.Publish duplicate-name
// panic across repeated calls (e.g. tests).
var published sync.Map

// PublishExpvar publishes the registry under the given expvar name,
// idempotently: the first call wins, later calls (even from other
// registries) are ignored rather than panicking.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, loaded := published.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, r.ExpvarFunc())
}
