package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// decodeTrace parses an exported trace and returns the event list.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var obj struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return obj.TraceEvents
}

// checkBalanced asserts the Chrome trace invariant the exporter guarantees:
// every event is either a complete ("X") or metadata ("M") event, and any
// "B" has a matching "E" on the same (pid, tid). The ring stores only
// completed spans, so this must hold even after arbitrary wrap-around.
func checkBalanced(t *testing.T, events []map[string]any) {
	t.Helper()
	open := map[string]int{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		key, _ := ev["tid"].(float64)
		switch ph {
		case "X", "M":
		case "B":
			open[ph+string(rune(int(key)))]++
		case "E":
			k := "B" + string(rune(int(key)))
			if open[k] == 0 {
				t.Errorf("E event with no open B on tid %v", key)
			}
			open[k]--
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	for k, n := range open {
		if n != 0 {
			t.Errorf("%d unclosed B events (%s)", n, k)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(128)
	tr.SetTrackName(0, "main")
	tr.SetTrackName(1, "worker1")
	sp := tr.StartSpan("gram", 0)
	inner := tr.StartSpan("par.chunk", 1)
	inner.End()
	sp.End()
	tr.EmitRange("mttkrp/mode0", 0, 10, 500)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	checkBalanced(t, events)
	var names []string
	meta := 0
	for _, ev := range events {
		if ev["ph"] == "M" {
			meta++
			continue
		}
		names = append(names, ev["name"].(string))
	}
	if meta != 2 {
		t.Errorf("thread_name metadata events = %d, want 2", meta)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"gram", "par.chunk", "mttkrp/mode0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("span %q missing from %v", want, names)
		}
	}
}

func TestChromeTraceRingWrapMidSpan(t *testing.T) {
	// A tiny ring forced to wrap while spans are open: the export must still
	// be valid JSON with only complete events — no orphaned B/E pairs.
	tr := NewTracer(8)
	outer := tr.StartSpan("outer", 0)
	for i := 0; i < 100; i++ {
		tr.StartSpan("inner", int32(i%4)).End()
	}
	outer.End()
	if tr.Len() != 8 {
		t.Errorf("Len = %d, want 8 (ring capacity)", tr.Len())
	}
	if tr.Dropped() != 101-8 {
		t.Errorf("Dropped = %d, want %d", tr.Dropped(), 101-8)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	checkBalanced(t, events)
	if len(events) != 8 {
		t.Errorf("exported %d events, want 8", len(events))
	}
	// Start times must be sorted for stable diffing and stream consumers.
	prev := -1.0
	for _, ev := range events {
		ts := ev["ts"].(float64)
		if ts < prev {
			t.Errorf("events not sorted by ts: %v after %v", ts, prev)
		}
		prev = ts
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64) // much smaller than the emit count: laps constantly
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.StartSpan("s", int32(w)).End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Errorf("Len = %d, want 64", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, decodeTrace(t, buf.Bytes()))
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 {
		t.Error("nil Now != 0")
	}
	sp := tr.StartSpan("x", 0)
	sp.End()
	tr.Emit("x", 0, 0)
	tr.EmitRange("x", 0, 0, 1)
	tr.SetTrackName(0, "main")
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer holds events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) != 0 {
		t.Errorf("nil tracer exported %d events", len(events))
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := NewTracer(4)
	tr.EmitRange("backwards", 0, 100, -50)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTrace(t, buf.Bytes()) {
		if d, ok := ev["dur"].(float64); ok && d < 0 {
			t.Errorf("negative duration %v exported", d)
		}
	}
}
