package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("adatm_memo_hits_total", "Cached subtree reuses.", Labels{"engine": "memo-balanced"})
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	g := r.Gauge("adatm_kernel_arena_bytes", "Arena backing bytes.", nil)
	g.Set(4096)
	out := expose(t, r)
	for _, want := range []string{
		"# HELP adatm_memo_hits_total Cached subtree reuses.",
		"# TYPE adatm_memo_hits_total counter",
		`adatm_memo_hits_total{engine="memo-balanced"} 4`,
		"# TYPE adatm_kernel_arena_bytes gauge",
		"adatm_kernel_arena_bytes 4096",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", Labels{"path": `a\b"c` + "\nd"}).Inc()
	out := expose(t, r)
	want := `m_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series %q not found in:\n%s", want, out)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "line one\nline \\ two", nil)
	out := expose(t, r)
	if !strings.Contains(out, `# HELP m_total line one\nline \\ two`) {
		t.Errorf("help not escaped:\n%s", out)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	// Register in scrambled order; exposition must sort families by name and
	// series by label string so scrapes diff cleanly.
	r := NewRegistry()
	r.Counter("zzz_total", "", nil).Inc()
	r.Gauge("aaa_bytes", "", Labels{"engine": "csf"}).Set(1)
	r.Gauge("aaa_bytes", "", Labels{"engine": "coo"}).Set(2)
	r.Counter("mmm_total", "", nil)
	first := expose(t, r)
	for i := 0; i < 10; i++ {
		if got := expose(t, r); got != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", got, first)
		}
	}
	ia := strings.Index(first, "aaa_bytes")
	im := strings.Index(first, "mmm_total")
	iz := strings.Index(first, "zzz_total")
	if !(ia < im && im < iz) {
		t.Errorf("families not name-sorted: aaa@%d mmm@%d zzz@%d", ia, im, iz)
	}
	if coo, csf := strings.Index(first, `engine="coo"`), strings.Index(first, `engine="csf"`); coo > csf {
		t.Errorf("series not label-sorted: coo@%d csf@%d", coo, csf)
	}
}

func TestHistogramRejectsNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil, []float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(0.05)
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2 (non-finite rejected)", got)
	}
	if got := h.Rejected(); got != 3 {
		t.Errorf("rejected = %d, want 3", got)
	}
	if s := h.Sum(); math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s-0.055) > 1e-12 {
		t.Errorf("sum = %v, want 0.055", s)
	}
	out := expose(t, r)
	if strings.Contains(out, "NaN") || strings.Contains(strings.Replace(out, `le="+Inf"`, "", -1), "Inf") {
		t.Errorf("non-finite value leaked into exposition:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", Labels{"phase": "solve"}, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{phase="solve",le="1"} 2`, // le is inclusive
		`lat_seconds_bucket{phase="solve",le="10"} 3`,
		`lat_seconds_bucket{phase="solve",le="100"} 4`,
		`lat_seconds_bucket{phase="solve",le="+Inf"} 5`,
		`lat_seconds_sum{phase="solve"} 556.5`,
		`lat_seconds_count{phase="solve"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]float64{{1, math.NaN()}, {1, math.Inf(1)}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: no panic", bounds)
				}
			}()
			r.Histogram("bad_seconds", "", nil, bounds)
		}()
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", Labels{"engine": "coo"})
	b := r.Counter("c_total", "", Labels{"engine": "coo"})
	if a != b {
		t.Error("re-registration returned a distinct counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registered counter does not share state")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("c_total", "", nil)
}

func TestNilRegistryAndCollectors(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "", nil)
	c.Inc()
	c.Add(5)
	g := r.Gauge("x", "", nil)
	g.Set(1)
	g.Add(2)
	var h *Histogram
	h = r.Histogram("x_seconds", "", nil, nil)
	h.Observe(1)
	r.CounterFunc("f_total", "", nil, func() float64 { return 1 })
	r.GaugeFunc("f", "", nil, func() float64 { return 1 })
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil WriteTo = (%d, %v)", n, err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil Snapshot not empty")
	}
	r.PublishExpvar("nil-reg")
}

func TestFuncMetricsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.CounterFunc("fn_total", "from callback", Labels{"k": "v"}, func() float64 { return v })
	v = 42
	out := expose(t, r)
	if !strings.Contains(out, `fn_total{k="v"} 42`) {
		t.Errorf("func counter not read at exposition:\n%s", out)
	}
	h := r.Histogram("h_seconds", "", nil, []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap[`fn_total{k="v"}`] != 42 || snap["h_seconds_count"] != 1 || snap["h_seconds_sum"] != 0.5 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "", nil, []float64{1, 2, 3})
	if h := r.Histogram("lat_seconds", "", nil, []float64{1, 2, 3}); h == nil {
		t.Fatal("same-bounds re-registration should return the series")
	}
	defer func() {
		if recover() == nil {
			t.Error("different bounds on re-registration did not panic")
		}
	}()
	r.Histogram("lat_seconds", "", nil, []float64{1, 2})
}

// TestConcurrentRegistrationAndExposition scrapes while new series are still
// being registered — the shipped wiring does exactly this (the debug server
// starts before Decompose instruments the engines). Run under -race this
// pins the register/WriteTo map race.
func TestConcurrentRegistrationAndExposition(t *testing.T) {
	r := NewRegistry()
	// Pre-populate one big histogram family (26 default buckets × 200 series)
	// so every render dwells a long time iterating that family's series map —
	// the widest possible window for a concurrent insert to land in it.
	for i := 0; i < 200; i++ {
		r.Histogram("h_seconds", "", Labels{"i": strconv.Itoa(i)}, nil).Observe(0.1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Fresh label values: each call inserts a new series into the family
		// the scraper is concurrently iterating.
		for i := 200; i < 320; i++ {
			r.Histogram("h_seconds", "", Labels{"i": strconv.Itoa(i)}, nil).Observe(0.1)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		r.Snapshot()
	}
}

// TestHistogramCountMatchesInfBucket pins the Prometheus invariant that the
// le="+Inf" cumulative bucket equals _count while observations race a scrape.
func TestHistogramCountMatchesInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", nil, []float64{0.5})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.25)
				h.Observe(2.5)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		out := expose(t, r)
		var inf, count int64
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, `h_seconds_bucket{le="+Inf"} `) {
				fmt.Sscanf(line, `h_seconds_bucket{le="+Inf"} %d`, &inf)
			}
			if strings.HasPrefix(line, "h_seconds_count ") {
				fmt.Sscanf(line, "h_seconds_count %d", &count)
			}
		}
		if inf != count {
			t.Fatalf("+Inf bucket %d != _count %d", inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h_seconds", "", nil, []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("c=%d g=%v h=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
	if math.Abs(h.Sum()-2000) > 1e-9 {
		t.Errorf("histogram sum = %v, want 2000", h.Sum())
	}
}
