package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server is the live debug endpoint: /metrics (Prometheus text format),
// /healthz, /run (JSON snapshot of the in-flight run), /debug/pprof/* and
// /debug/vars. It binds immediately (addr ":0" picks a free port — read the
// resolved one back from Addr) and serves until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
	run atomic.Value // latest SetRun payload (any JSON-marshalable value)
}

// Serve binds addr and starts serving the debug endpoints in a background
// goroutine. reg may be nil (the /metrics endpoint then renders empty).
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetRun publishes the latest run snapshot served at /run. The value must be
// JSON-marshalable; it is marshaled at request time, so pass immutable
// snapshots, not live mutable state.
func (s *Server) SetRun(v any) { s.run.Store(v) }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w) //nolint:errcheck // client went away
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck
}

func (s *Server) handleRun(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	v := s.run.Load()
	if v == nil {
		w.Write([]byte("{}\n")) //nolint:errcheck
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}
