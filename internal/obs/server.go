package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server is the live debug endpoint: /metrics (Prometheus text format),
// /healthz, /run (JSON snapshot of the in-flight run), /plan (the latest
// model-audit decision+report), /timeseries (the attached Sampler's resource
// timeline), /iters (the attached IterLog's per-iteration health history,
// with ?follow=1 live streaming), /debug/pprof/* and /debug/vars. It binds immediately (addr ":0"
// picks a free port — read the resolved one back from Addr) and serves until
// Close.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	reg     *Registry
	run     atomic.Value            // latest SetRun payload (any JSON-marshalable value)
	plan    atomic.Value            // latest SetPlan payload (any JSON-marshalable value)
	sampler atomic.Pointer[Sampler] // resource timeline behind /timeseries
	iters   atomic.Pointer[IterLog] // iteration-health history behind /iters
}

// Serve binds addr and starts serving the debug endpoints in a background
// goroutine. reg may be nil (the /metrics endpoint then renders empty).
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/timeseries", s.handleTimeseries)
	mux.HandleFunc("/iters", s.handleIters)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetRun publishes the latest run snapshot served at /run. The value must be
// JSON-marshalable; it is marshaled at request time, so pass immutable
// snapshots, not live mutable state.
func (s *Server) SetRun(v any) { s.run.Store(v) }

// SetPlan publishes the latest model-audit payload served at /plan —
// typically an audit.Record (the selection decision, then decision+report
// once the run reconciles). Same immutability rule as SetRun: the value is
// marshaled at request time, so pass snapshots that are never mutated after
// publication.
func (s *Server) SetPlan(v any) { s.plan.Store(v) }

// closeTimeout bounds the graceful drain in Close. Debug-endpoint responses
// are small and fast; anything still in flight after this long is wedged.
const closeTimeout = 2 * time.Second

// Close shuts the server down gracefully: in-flight requests (a /metrics
// scrape racing process exit) get closeTimeout to complete before the
// connections are forcibly closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w) //nolint:errcheck // client went away
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck
}

func (s *Server) handleRun(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.run.Load())
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plan.Load())
}

// SetSampler attaches (or, with nil, detaches) the resource-timeline sampler
// served at /timeseries. The caller owns the sampler's lifecycle (Start/
// Stop); the server only reads snapshots.
func (s *Server) SetSampler(sp *Sampler) { s.sampler.Store(sp) }

// timeseriesPayload is the /timeseries response envelope.
type timeseriesPayload struct {
	IntervalNS int64            `json:"interval_ns"`
	Samples    []ResourceSample `json:"samples"`
}

func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	sp := s.sampler.Load()
	payload := timeseriesPayload{
		IntervalNS: int64(sp.Interval()),
		Samples:    sp.Snapshot(),
	}
	if payload.Samples == nil {
		payload.Samples = []ResourceSample{}
	}
	writeJSON(w, payload)
}

// SetIterLog attaches (or, with nil, detaches) the iteration-health history
// served at /iters. The producer owns the log's lifecycle (Append/Close);
// the server only reads copies.
func (s *Server) SetIterLog(l *IterLog) { s.iters.Store(l) }

// itersPayload is the /iters snapshot response envelope.
type itersPayload struct {
	// Seq is the total number of samples ever appended; pass it back as
	// ?after= (or track it client-side against follow output) to resume.
	Seq    int64        `json:"seq"`
	Closed bool         `json:"closed"`
	Iters  []IterSample `json:"iters"`
}

// iterFollowPoll is the cadence at which a ?follow=1 stream checks the log
// for new samples. Polling (rather than a condition variable) keeps the
// handler free of missed-wakeup hazards when clients disconnect mid-wait;
// 100ms is far below any human-visible latency and far above the cost of an
// empty After call.
const iterFollowPoll = 100 * time.Millisecond

// handleIters serves the iteration-health history. Without query parameters
// it returns one JSON snapshot of the retained window. With ?follow=1 it
// streams NDJSON — one IterSample object per line — starting from the full
// retained window and continuing live until the log is closed or the client
// disconnects.
func (s *Server) handleIters(w http.ResponseWriter, r *http.Request) {
	l := s.iters.Load()
	if r.URL.Query().Get("follow") == "" {
		samples, seq, closed := l.After(0)
		if samples == nil {
			samples = []IterSample{}
		}
		writeJSON(w, itersPayload{Seq: seq, Closed: closed, Iters: samples})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if l == nil {
		return
	}
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush() // commit headers so clients see the stream open immediately
	}
	enc := json.NewEncoder(w)
	ctx := r.Context()
	ticker := time.NewTicker(iterFollowPoll)
	defer ticker.Stop()
	var after int64
	for {
		samples, seq, closed := l.After(after)
		for i := range samples {
			if err := enc.Encode(&samples[i]); err != nil {
				return
			}
		}
		if len(samples) > 0 && fl != nil {
			fl.Flush()
		}
		after = seq
		if closed {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if v == nil {
		w.Write([]byte("{}\n")) //nolint:errcheck
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}
