package obs

import (
	"math"
	"sync"
)

// IterSample is one CP-ALS iteration's numerical-health record: the fit
// trajectory, λ dynamics, the per-mode condition estimates of the
// Gram-Hadamard systems, factor column congruence, and the rule layer's
// verdict for that iteration. Every float must be finite — Append sanitizes
// defensively so the JSON endpoints can never fail to marshal a sample.
type IterSample struct {
	// Run labels the producing run when one log is shared across runs
	// (e.g. an experiment sweep); empty for single-run processes.
	Run string `json:"run,omitempty"`
	// Iter is the 1-based ALS iteration the sample describes.
	Iter int     `json:"iter"`
	Fit  float64 `json:"fit"`
	// FitDelta is fit − previous fit (0 on the first iteration, where no
	// previous fit exists).
	FitDelta float64 `json:"fit_delta"`
	// LambdaRatio is max|λ|/min|λ| across components.
	LambdaRatio float64 `json:"lambda_ratio"`
	// MaxKappa / MaxCongruence are the worst per-mode values of Kappa and
	// Congruence below.
	MaxKappa      float64 `json:"max_kappa"`
	MaxCongruence float64 `json:"max_congruence"`
	// Kappa is the estimated condition number of each mode's R×R
	// Gram-Hadamard system.
	Kappa []float64 `json:"kappa,omitempty"`
	// Congruence is each mode's max off-diagonal of the normalized factor
	// cross-Gram — the standard swamp indicator.
	Congruence []float64 `json:"congruence,omitempty"`
	// State is the rule layer's debounced verdict name ("healthy",
	// "stalled", "swamp-suspect", "ill-conditioned").
	State string `json:"state"`
}

// DefaultIterLogCapacity is the ring size NewIterLog picks for capacity <= 0.
const DefaultIterLogCapacity = 1024

// IterLog is a bounded ring of per-iteration health samples, written by the
// solver's health probe and read by the /iters debug endpoint. Append is
// allocation-free once the ring is warm (the first Append sizes every slot's
// per-mode slices from one backing array), so the probe can feed it from the
// pinned zero-alloc steady state. Readers get copies and may poll After with
// their last seen sequence number to stream a live run.
//
// A nil *IterLog is valid: Append/Close no-op and the read methods return
// empty results, so the disabled path is one pointer test.
type IterLog struct {
	mu     sync.Mutex
	ring   []IterSample
	seq    int64 // total samples ever appended
	closed bool
	warmed bool
}

// NewIterLog builds a ring holding the newest capacity samples
// (capacity <= 0 selects DefaultIterLogCapacity).
func NewIterLog(capacity int) *IterLog {
	if capacity <= 0 {
		capacity = DefaultIterLogCapacity
	}
	return &IterLog{ring: make([]IterSample, capacity)}
}

// finiteOr replaces a non-finite value so a sample can always marshal:
// NaN → 0, ±Inf → ±MaxFloat64.
func finiteOr(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// Append records one sample (copied; the caller may reuse s and its slices).
func (l *IterLog) Append(s IterSample) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.warmed {
		// Carve every slot's per-mode slices out of one backing array so
		// steady-state appends never allocate. A later sample with more
		// modes (a shared log across runs of different orders) grows its
		// slot's slice the ordinary way.
		l.warmed = true
		n := len(s.Kappa)
		if c := len(s.Congruence); c > n {
			n = c
		}
		if n > 0 {
			backing := make([]float64, 2*len(l.ring)*n)
			for i := range l.ring {
				off := 2 * i * n
				l.ring[i].Kappa = backing[off : off : off+n]
				l.ring[i].Congruence = backing[off+n : off+n : off+2*n]
			}
		}
	}
	slot := &l.ring[l.seq%int64(len(l.ring))]
	slot.Run = s.Run
	slot.Iter = s.Iter
	slot.Fit = finiteOr(s.Fit)
	slot.FitDelta = finiteOr(s.FitDelta)
	slot.LambdaRatio = finiteOr(s.LambdaRatio)
	slot.MaxKappa = finiteOr(s.MaxKappa)
	slot.MaxCongruence = finiteOr(s.MaxCongruence)
	slot.Kappa = slot.Kappa[:0]
	for _, v := range s.Kappa {
		slot.Kappa = append(slot.Kappa, finiteOr(v))
	}
	slot.Congruence = slot.Congruence[:0]
	for _, v := range s.Congruence {
		slot.Congruence = append(slot.Congruence, finiteOr(v))
	}
	slot.State = s.State
	l.seq++
}

// Seq returns the total number of samples ever appended (the next sample's
// global sequence number).
func (l *IterLog) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close marks the producing run finished, so followers of the live stream
// know no further samples will arrive. Idempotent; Append after Close is
// still accepted (a new run may reuse the log).
func (l *IterLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}

// Closed reports whether Close has been called.
func (l *IterLog) Closed() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// After returns copies of the retained samples with global sequence >= after
// (oldest first), the log's current sequence number, and whether the log is
// closed. Samples older than the ring window are silently unavailable;
// pass the previously returned seq to stream without duplicates.
func (l *IterLog) After(after int64) (samples []IterSample, seq int64, closed bool) {
	if l == nil {
		return nil, 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := after
	if oldest := l.seq - int64(len(l.ring)); start < oldest {
		start = oldest
	}
	if start < 0 {
		start = 0
	}
	if start >= l.seq {
		return nil, l.seq, l.closed
	}
	out := make([]IterSample, 0, l.seq-start)
	for i := start; i < l.seq; i++ {
		s := l.ring[i%int64(len(l.ring))]
		s.Kappa = append([]float64(nil), s.Kappa...)
		s.Congruence = append([]float64(nil), s.Congruence...)
		out = append(out, s)
	}
	return out, l.seq, l.closed
}

// Snapshot returns copies of every retained sample, oldest first.
func (l *IterLog) Snapshot() []IterSample {
	s, _, _ := l.After(0)
	return s
}
