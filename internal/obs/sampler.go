package obs

import (
	"runtime"
	"sync"
	"time"
)

// ResourceSample is one point of the background resource timeline: the
// process's heap footprint, cumulative GC activity, and goroutine count at
// an instant. Samples are small and fixed-size so a long-lived ring stays
// cheap; rates (GC pauses per second, heap growth) are derived by the
// consumer from consecutive samples.
type ResourceSample struct {
	UnixNano       int64  `json:"t"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
	Goroutines     int    `json:"goroutines"`
}

// Default sampler cadence and ring capacity: 100 ms × 4096 samples ≈ seven
// minutes of timeline, enough to cover a bench suite or explain a noisy
// sample window post hoc without unbounded growth.
const (
	defaultSampleInterval = 100 * time.Millisecond
	defaultSamplerCap     = 4096
)

// Sampler records a ring-buffered timeline of process resource samples on a
// fixed cadence in a background goroutine. It exists to explain performance
// measurements after the fact: a bench sample that ran concurrently with a
// GC cycle or a goroutine spike is visible in the timeline window that
// brackets it (see the /timeseries endpoint and the perf suite's embedded
// timelines).
//
// A nil *Sampler is valid: every method no-ops.
type Sampler struct {
	interval time.Duration

	mu    sync.Mutex
	buf   []ResourceSample // ring storage
	n     int              // total samples ever written
	stop  chan struct{}
	done  chan struct{}
	state int // 0 new, 1 started, 2 stopped
}

// NewSampler builds a sampler with the given cadence and ring capacity
// (<= 0 selects the defaults: 100 ms, 4096 samples).
func NewSampler(interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = defaultSampleInterval
	}
	if capacity <= 0 {
		capacity = defaultSamplerCap
	}
	return &Sampler{
		interval: interval,
		buf:      make([]ResourceSample, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling cadence.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Start launches the background sampling goroutine and records an immediate
// first sample, so even a window shorter than one interval has data. Start
// is idempotent; starting a stopped sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.state != 0 {
		s.mu.Unlock()
		return
	}
	s.state = 1
	s.mu.Unlock()
	s.record()
	go s.loop()
}

// Stop halts the background goroutine and waits for it to exit. Idempotent;
// safe on a sampler that was never started.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	switch s.state {
	case 0:
		s.state = 2
		s.mu.Unlock()
		return
	case 2:
		s.mu.Unlock()
		<-s.done
		return
	}
	s.state = 2
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			s.record() // final sample closes the timeline at the stop instant
			return
		case <-t.C:
			s.record()
		}
	}
}

// record appends one sample to the ring. ReadMemStats stops the world
// briefly; at the default 100 ms cadence that overhead is ~negligible and,
// critically, identical for every bench scenario it runs alongside.
func (s *Sampler) record() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sample := ResourceSample{
		UnixNano:       time.Now().UnixNano(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCPauseTotalNS: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
		Goroutines:     runtime.NumGoroutine(),
	}
	s.mu.Lock()
	s.buf[s.n%len(s.buf)] = sample
	s.n++
	s.mu.Unlock()
}

// Snapshot returns the retained samples in chronological order.
func (s *Sampler) Snapshot() []ResourceSample {
	return s.Since(0)
}

// Since returns the retained samples with UnixNano >= t, in chronological
// order — the probe the perf runner uses to embed the timeline window of one
// suite run into its bench record.
func (s *Sampler) Since(t int64) []ResourceSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	size := len(s.buf)
	start := 0
	if n > size {
		start = n - size
	}
	out := make([]ResourceSample, 0, n-start)
	for i := start; i < n; i++ {
		if sm := s.buf[i%size]; sm.UnixNano >= t {
			out = append(out, sm)
		}
	}
	return out
}
