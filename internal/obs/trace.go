// Package obs is the repository's zero-third-party-dependency observability
// layer: a span tracer exporting Chrome trace-event JSON (Perfetto-loadable),
// a metrics registry with Prometheus text exposition and an expvar bridge,
// and a live debug HTTP server.
//
// Everything is built around one invariant: the uninstrumented path costs a
// pointer test and nothing else. A nil *Tracer and a nil *Registry are fully
// valid receivers whose methods no-op without allocating, so hot kernels can
// carry instrumentation hooks unconditionally — the steady-state zero-alloc
// guarantees of the engine layer survive with observability compiled in but
// switched off (pinned by alloc_test.go).
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// event is one completed span in the ring buffer. Spans are recorded at End
// as Chrome "X" complete events (timestamp + duration in one record), so a
// wrapped ring can never orphan a begin event: whatever survives the wrap is
// a well-formed trace.
type event struct {
	name  string
	track int32
	ts    int64 // nanoseconds since the tracer's origin
	dur   int64 // nanoseconds
}

// Tracer records spans into a fixed-capacity ring buffer. Emission is
// mutex-guarded (spans are chunk/phase/node granularity, not per-nonzero, so
// the lock is far off any inner loop) and allocation-free; when the ring is
// full the oldest events are overwritten and Dropped counts the loss.
//
// A nil *Tracer is valid: every method no-ops after a pointer test.
type Tracer struct {
	mu     sync.Mutex
	events []event
	n      uint64 // total events ever emitted
	origin time.Time
	tracks map[int32]string
}

// DefaultEvents is the ring capacity NewTracer uses for capacity <= 0
// (64 Ki events ≈ 3 MiB).
const DefaultEvents = 1 << 16

// NewTracer creates a tracer with the given ring capacity (<= 0 selects
// DefaultEvents). The origin of the trace clock is the call time.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	return &Tracer{
		events: make([]event, 0, capacity),
		origin: time.Now(),
		tracks: make(map[int32]string),
	}
}

// Now returns the current trace timestamp (nanoseconds since the tracer's
// origin, monotonic). Zero on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.origin).Nanoseconds()
}

// Emit records a completed span that started at startNS (a Now value) and
// ends now. No-op on a nil tracer.
func (t *Tracer) Emit(name string, track int32, startNS int64) {
	if t == nil {
		return
	}
	t.EmitRange(name, track, startNS, t.Now()-startNS)
}

// EmitRange records a completed span with an explicit start and duration.
// No-op on a nil tracer; allocation-free once the ring is warm.
func (t *Tracer) EmitRange(name string, track int32, startNS, durNS int64) {
	if t == nil {
		return
	}
	if durNS < 0 {
		durNS = 0
	}
	ev := event{name: name, track: track, ts: startNS, dur: durNS}
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = t.events[:len(t.events)+1]
	}
	t.events[t.n%uint64(cap(t.events))] = ev
	t.n++
	t.mu.Unlock()
}

// Span is a live measurement handle: a value type, so starting and ending a
// span allocates nothing. The zero Span (from a nil tracer) ends as a no-op.
type Span struct {
	t     *Tracer
	name  string
	track int32
	start int64
}

// StartSpan begins a span on the given track (Chrome trace tid; use 0 for
// the main goroutine and worker+1 for pool workers, so scheduler gaps show
// as empty stretches on worker tracks).
func (t *Tracer) StartSpan(name string, track int32) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, track: track, start: t.Now()}
}

// End completes the span and records it. Safe on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Emit(s.name, s.track, s.start)
}

// SetTrackName labels a track; the exporter emits it as a thread_name
// metadata event so Perfetto shows readable lane names.
func (t *Tracer) SetTrackName(track int32, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracks[track] = name
	t.mu.Unlock()
}

// Len reports the number of events currently held (at most the capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(cap(t.events)) {
		return 0
	}
	return t.n - uint64(cap(t.events))
}

// chromeEvent is the trace-event JSON schema (the subset Perfetto needs).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int32             `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the containing JSON object format ({"traceEvents": [...]}),
// which both chrome://tracing and Perfetto load directly.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the retained events as Chrome trace-event JSON.
// Every span is a complete ("X") event and track names become thread_name
// metadata ("M") events, so the output is valid regardless of how often the
// ring wrapped. Events are sorted by start time.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	evs := make([]event, len(t.events))
	copy(evs, t.events)
	names := make(map[int32]string, len(t.tracks))
	for k, v := range t.tracks {
		names[k] = v
	}
	t.mu.Unlock()

	sort.Slice(evs, func(a, b int) bool { return evs[a].ts < evs[b].ts })

	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = make([]chromeEvent, 0, len(evs)+len(names))
	tracks := make([]int32, 0, len(names))
	for tr := range names {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(a, b int) bool { return tracks[a] < tracks[b] })
	for _, tr := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tr,
			Args: map[string]string{"name": names[tr]},
		})
	}
	for _, ev := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.name, Ph: "X", PID: 1, TID: ev.track, Cat: "adatm",
			TS:  float64(ev.ts) / 1e3,
			Dur: float64(ev.dur) / 1e3,
		})
	}
	return json.NewEncoder(w).Encode(out)
}
