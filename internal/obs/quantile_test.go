package obs

import (
	"bufio"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile is not NaN")
	}
	h := NewHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
	h.Observe(1.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Errorf("Quantile(%v) is not NaN", q)
		}
	}
	if got := h.Quantile(0); math.IsNaN(got) {
		t.Error("Quantile(0) on a populated histogram is NaN")
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 10; i++ {
		h.Observe(3) // all land in (2, 4]
	}
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < 2 || got > 4 {
			t.Errorf("Quantile(%v) = %v, want within (2, 4]", q, got)
		}
	}
}

func TestQuantileLogBucketsMedian(t *testing.T) {
	// Log2 buckets, log-uniform observations: the geometric interpolation
	// should land the median within one bucket width of the true median.
	h := NewHistogram(FitDeltaTestBounds())
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 0, 4001)
	for i := 0; i < 4001; i++ {
		v := math.Ldexp(1, -30) * math.Pow(2, rng.Float64()*20) // 2^-30 .. 2^-10
		vals = append(vals, v)
		h.Observe(v)
	}
	// Exact median.
	sortFloats(vals)
	exact := vals[len(vals)/2]
	got := h.Quantile(0.5)
	if got < exact/2 || got > exact*2 {
		t.Errorf("median estimate %v vs exact %v: outside one log2 bucket", got, exact)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // +Inf overflow
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want highest finite bound 2", got)
	}
}

func TestQuantileNegativeAndZeroBounds(t *testing.T) {
	h := NewHistogram([]float64{-2, 0, 2})
	h.Observe(-1)
	h.Observe(1)
	lo := h.Quantile(0.25)
	hi := h.Quantile(0.75)
	if lo < -2 || lo > 0 {
		t.Errorf("Quantile(0.25) = %v, want in [-2, 0]", lo)
	}
	if hi < 0 || hi > 2 {
		t.Errorf("Quantile(0.75) = %v, want in [0, 2]", hi)
	}
}

// A quantile recomputed from the scraped text exposition must equal the one
// computed in-process: both views see the same bucket counts.
func TestQuantileExpositionConsistency(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	h := reg.Histogram("adatm_test_quantile_seconds", "test", nil, bounds)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h.Observe(math.Pow(10, rng.Float64()*4-3)) // 1e-3 .. 1e1
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	scraped := scrapeHistogram(t, sb.String(), "adatm_test_quantile_seconds")
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := h.Quantile(q)
		got := scraped.quantile(q)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("q=%v: exposition-derived %v != in-process %v", q, got, want)
		}
	}
}

// scrapedHist re-implements the quantile estimate from exposition bucket
// lines, mirroring what a Prometheus-side histogram_quantile sees.
type scrapedHist struct {
	bounds []float64 // finite bounds
	counts []int64   // per-bucket (de-cumulated), same length
	inf    int64
}

func scrapeHistogram(t *testing.T, text, name string) *scrapedHist {
	t.Helper()
	s := &scrapedHist{}
	var prev int64
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+"_bucket{") {
			continue
		}
		leStart := strings.Index(line, `le="`) + 4
		leEnd := strings.Index(line[leStart:], `"`) + leStart
		leStr := line[leStart:leEnd]
		cum, err := strconv.ParseInt(strings.TrimSpace(line[strings.LastIndex(line, " ")+1:]), 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if leStr == "+Inf" {
			s.inf = cum - prev
		} else {
			b, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
			s.bounds = append(s.bounds, b)
			s.counts = append(s.counts, cum-prev)
		}
		prev = cum
	}
	if len(s.bounds) == 0 {
		t.Fatalf("no %s_bucket lines in exposition", name)
	}
	return s
}

func (s *scrapedHist) quantile(q float64) float64 {
	var total int64
	for _, n := range s.counts {
		total += n
	}
	total += s.inf
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.counts {
		cum += n
		if n == 0 || cum < rank {
			continue
		}
		lo := math.Inf(-1)
		if i > 0 {
			lo = s.bounds[i-1]
		}
		hi := s.bounds[i]
		frac := float64(rank-(cum-n)) / float64(n)
		if lo > 0 && hi > 0 {
			return lo * math.Pow(hi/lo, frac)
		}
		if math.IsInf(lo, -1) {
			return hi
		}
		return lo + (hi-lo)*frac
	}
	return s.bounds[len(s.bounds)-1]
}

func TestQuantileAllocationFree(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 9))
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.5)
	})
	if allocs != 0 {
		t.Errorf("Quantile: %v allocs, want 0", allocs)
	}
}

// FitDeltaTestBounds mirrors health.FitDeltaBuckets without importing it
// (obs cannot depend on health): 41 powers of two from 2^-40 up to 1.
func FitDeltaTestBounds() []float64 {
	out := make([]float64, 41)
	b := math.Ldexp(1, -40)
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
