package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adatm_memo_hits_total", "hits", Labels{"engine": "memo"}).Add(7)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, `adatm_memo_hits_total{engine="memo"} 7`) {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	// /run before any snapshot: empty object, still valid JSON.
	code, body = get(t, base+"/run")
	if code != 200 || strings.TrimSpace(body) != "{}" {
		t.Errorf("/run (empty) = %d %q", code, body)
	}
	srv.SetRun(map[string]any{"iter": 3, "fit": 0.5})
	_, body = get(t, base+"/run")
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/run not JSON: %v\n%s", err, body)
	}
	if snap["iter"] != float64(3) || snap["fit"] != 0.5 {
		t.Errorf("/run = %v", snap)
	}

	// pprof index and expvar must be mounted.
	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get(t, base+"/debug/vars"); code != 200 {
		t.Errorf("/debug/vars = %d", code)
	}
}

func TestServerNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := get(t, "http://"+srv.Addr()+"/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics with nil registry = %d %q", code, body)
	}
}
