package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestSamplerRecordsAndStops(t *testing.T) {
	s := NewSampler(time.Millisecond, 64)
	s.Start()
	// Start records an immediate sample, so even a zero-length window has one.
	if got := len(s.Snapshot()); got < 1 {
		t.Fatalf("no immediate sample after Start (got %d)", got)
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	samples := s.Snapshot()
	if len(samples) < 2 {
		t.Fatalf("got %d samples after 20ms at 1ms cadence, want >= 2", len(samples))
	}
	for i, sm := range samples {
		if sm.UnixNano == 0 {
			t.Fatalf("sample %d has zero timestamp", i)
		}
		if sm.HeapAllocBytes == 0 {
			t.Fatalf("sample %d has zero heap", i)
		}
		if i > 0 && sm.UnixNano < samples[i-1].UnixNano {
			t.Fatalf("samples not chronological at %d", i)
		}
	}
	n := len(samples)
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Snapshot()); got != n {
		t.Fatalf("sampler still recording after Stop: %d -> %d", n, got)
	}
	s.Stop() // idempotent
}

func TestSamplerRingWraps(t *testing.T) {
	s := NewSampler(time.Hour, 4) // manual records only
	for i := 0; i < 10; i++ {
		s.record()
	}
	got := s.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring kept %d samples, want capacity 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].UnixNano < got[i-1].UnixNano {
			t.Fatalf("wrapped ring not chronological at %d", i)
		}
	}
}

func TestSamplerSince(t *testing.T) {
	s := NewSampler(time.Hour, 16)
	s.record()
	cut := time.Now().UnixNano()
	time.Sleep(time.Millisecond)
	s.record()
	s.record()
	if got := len(s.Since(cut)); got != 2 {
		t.Fatalf("Since returned %d samples, want 2", got)
	}
	if got := len(s.Since(0)); got != 3 {
		t.Fatalf("Since(0) returned %d samples, want 3", got)
	}
}

func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	if s.Snapshot() != nil || s.Since(0) != nil || s.Interval() != 0 {
		t.Fatal("nil sampler must no-op")
	}
}

func TestSamplerStopBeforeStart(t *testing.T) {
	s := NewSampler(time.Millisecond, 8)
	s.Stop()
	s.Start() // must not launch after Stop
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Snapshot()); got != 0 {
		t.Fatalf("stopped-before-start sampler recorded %d samples", got)
	}
}

// TestTimeseriesEndpoint checks the /timeseries envelope with and without an
// attached sampler.
func TestTimeseriesEndpoint(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() timeseriesPayload {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + "/timeseries")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var p timeseriesPayload
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatalf("invalid /timeseries JSON: %v\n%s", err, body)
		}
		return p
	}

	// No sampler attached: empty but well-formed.
	if p := get(); len(p.Samples) != 0 || p.IntervalNS != 0 {
		t.Fatalf("detached /timeseries = %+v, want empty", p)
	}

	s := NewSampler(time.Millisecond, 128)
	s.Start()
	defer s.Stop()
	srv.SetSampler(s)
	time.Sleep(10 * time.Millisecond)

	p := get()
	if p.IntervalNS != int64(time.Millisecond) {
		t.Fatalf("interval_ns = %d, want %d", p.IntervalNS, time.Millisecond)
	}
	if len(p.Samples) < 2 {
		t.Fatalf("got %d timeline samples, want >= 2", len(p.Samples))
	}
	if p.Samples[0].HeapAllocBytes == 0 || p.Samples[0].Goroutines == 0 {
		t.Fatalf("timeline sample missing fields: %+v", p.Samples[0])
	}
}

// TestTimeseriesRace hammers /timeseries from many goroutines while the
// sampler records and is swapped in and out — run under -race alongside the
// other server tests, this pins the Sampler/Server handoff as data-race
// free.
func TestTimeseriesRace(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s := NewSampler(time.Millisecond, 64)
	s.Start()
	defer s.Stop()
	srv.SetSampler(s)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + srv.Addr() + "/timeseries")
				if err != nil {
					continue // server shutting down
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	// Direct snapshot readers (the perf runner path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Since(time.Now().Add(-time.Second).UnixNano())
			}
		}
	}()
	// Attach/detach churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				srv.SetSampler(nil)
			} else {
				srv.SetSampler(s)
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// ExampleSampler documents the timeline lifecycle.
func ExampleSampler() {
	s := NewSampler(10*time.Millisecond, 256)
	s.Start()
	// ... workload ...
	s.Stop()
	fmt.Println(len(s.Snapshot()) > 0)
	// Output: true
}
