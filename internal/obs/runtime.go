package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterRuntimeMetrics exports process-level Go runtime gauges into reg:
// heap footprint, goroutine count, GC activity, and the standard
// build-metadata gauge (adatm_build_info, value 1, identity in the labels)
// so scrapes can tell which binary they are talking to. ReadMemStats stops
// the world briefly, so the memory series are callback metrics evaluated
// per scrape, not on the compute path. Safe on a nil registry.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("adatm_build_info",
		"Build metadata of the running binary (value is always 1; identity is in the labels).",
		buildInfoLabels()).Set(1)
	mem := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	reg.GaugeFunc("adatm_go_heap_alloc_bytes", "Live heap bytes.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	reg.GaugeFunc("adatm_go_heap_sys_bytes", "Heap bytes obtained from the OS.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }))
	reg.CounterFunc("adatm_go_gc_cycles_total", "Completed GC cycles.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	reg.CounterFunc("adatm_go_alloc_bytes_total", "Cumulative heap bytes allocated.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.TotalAlloc) }))
	reg.GaugeFunc("adatm_go_goroutines", "Current goroutine count.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("adatm_go_maxprocs", "GOMAXPROCS at scrape time.", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}

// buildInfoLabels reads the binary's identity from the embedded build info:
// the Go toolchain version, the main-module version, and the VCS revision
// when the binary was built from a checkout. Missing fields degrade to
// "unknown" rather than being omitted, so the label set is stable.
func buildInfoLabels() Labels {
	l := Labels{
		"goversion": runtime.Version(),
		"version":   "unknown",
		"revision":  "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return l
	}
	if bi.Main.Version != "" {
		l["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			l["revision"] = s.Value
		}
	}
	return l
}
