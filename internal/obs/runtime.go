package obs

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
)

// RegisterRuntimeMetrics exports process-level Go runtime gauges into reg:
// heap footprint, goroutine count, GC activity, and the standard
// build-metadata gauge (adatm_build_info, value 1, identity in the labels)
// so scrapes can tell which binary they are talking to. ReadMemStats stops
// the world briefly, so the memory series are callback metrics evaluated
// per scrape, not on the compute path. Safe on a nil registry.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("adatm_build_info",
		"Build metadata of the running binary (value is always 1; identity is in the labels).",
		buildInfoLabels()).Set(1)
	mem := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	reg.GaugeFunc("adatm_go_heap_alloc_bytes", "Live heap bytes.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	reg.GaugeFunc("adatm_go_heap_sys_bytes", "Heap bytes obtained from the OS.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }))
	reg.CounterFunc("adatm_go_gc_cycles_total", "Completed GC cycles.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	reg.CounterFunc("adatm_go_alloc_bytes_total", "Cumulative heap bytes allocated.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.TotalAlloc) }))
	reg.GaugeFunc("adatm_go_goroutines", "Current goroutine count.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("adatm_go_maxprocs", "GOMAXPROCS at scrape time.", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	registerGCPauseHistogram(reg)
}

// gcPauseMetric is the runtime/metrics name of the stop-the-world GC pause
// distribution.
const gcPauseMetric = "/gc/pauses:seconds"

// gcPauseBuckets returns the bounds of adatm_gc_pause_seconds: powers of two
// from 100 ns to ~105 ms. GC pauses sit well below the MTTKRP latency range,
// so LatencyBuckets (1 µs floor) would collapse the interesting sub-µs tail.
func gcPauseBuckets() []float64 {
	out := make([]float64, 21)
	b := 1e-7
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// registerGCPauseHistogram exports the runtime's GC pause distribution as
// the adatm_gc_pause_seconds histogram. runtime/metrics only exposes a
// cumulative histogram (no per-pause callback), so this is a synced
// histogram: at every exposition the delta since the previous scrape is
// folded in, each source bucket represented by its midpoint. The fold state
// is guarded by its own mutex because racing scrapes may run the sync hook
// concurrently.
func registerGCPauseHistogram(reg *Registry) {
	samples := []metrics.Sample{{Name: gcPauseMetric}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		return // metric absent on this runtime; skip rather than export garbage
	}
	var mu sync.Mutex
	prev := append([]uint64(nil), samples[0].Value.Float64Histogram().Counts...)
	reg.SyncedHistogram("adatm_gc_pause_seconds",
		"Stop-the-world GC pause latency (folded from runtime/metrics "+gcPauseMetric+" at scrape time).",
		nil, gcPauseBuckets(), func(h *Histogram) {
			mu.Lock()
			defer mu.Unlock()
			metrics.Read(samples)
			src := samples[0].Value.Float64Histogram()
			for i, c := range src.Counts {
				var p uint64
				if i < len(prev) {
					p = prev[i]
				}
				if c > p {
					h.ObserveN(bucketMidpoint(src.Buckets, i), int64(c-p))
				}
			}
			prev = append(prev[:0], src.Counts...)
		})
}

// bucketMidpoint picks the representative value of source bucket i
// [Buckets[i], Buckets[i+1]): the arithmetic midpoint, degrading to the
// finite edge when the other is infinite.
func bucketMidpoint(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// buildInfoLabels reads the binary's identity from the embedded build info:
// the Go toolchain version, the main-module version, and the VCS revision
// when the binary was built from a checkout. Missing fields degrade to
// "unknown" rather than being omitted, so the label set is stable.
func buildInfoLabels() Labels {
	l := Labels{
		"goversion": runtime.Version(),
		"version":   "unknown",
		"revision":  "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return l
	}
	if bi.Main.Version != "" {
		l["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			l["revision"] = s.Value
		}
	}
	return l
}
