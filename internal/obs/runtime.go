package obs

import "runtime"

// RegisterRuntimeMetrics exports process-level Go runtime gauges into reg:
// heap footprint, goroutine count, and GC activity. ReadMemStats stops the
// world briefly, so these are callback metrics evaluated per scrape, not on
// the compute path. Safe on a nil registry.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	mem := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	reg.GaugeFunc("adatm_go_heap_alloc_bytes", "Live heap bytes.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	reg.GaugeFunc("adatm_go_heap_sys_bytes", "Heap bytes obtained from the OS.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }))
	reg.CounterFunc("adatm_go_gc_cycles_total", "Completed GC cycles.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	reg.CounterFunc("adatm_go_alloc_bytes_total", "Cumulative heap bytes allocated.", nil,
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.TotalAlloc) }))
	reg.GaugeFunc("adatm_go_goroutines", "Current goroutine count.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("adatm_go_maxprocs", "GOMAXPROCS at scrape time.", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
