package obs

import (
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// The /plan endpoint mirrors /run: empty object before any publication,
// then the latest SetPlan payload as indented JSON.
func TestServerPlanEndpoint(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/plan")
	if code != 200 || strings.TrimSpace(body) != "{}" {
		t.Errorf("/plan (empty) = %d %q", code, body)
	}

	srv.SetPlan(map[string]any{"chosen": "2group@2", "rel_err": 0.05})
	_, body = get(t, base+"/plan")
	var plan map[string]any
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatalf("/plan not JSON: %v\n%s", err, body)
	}
	if plan["chosen"] != "2group@2" || plan["rel_err"] != 0.05 {
		t.Errorf("/plan = %v", plan)
	}
}

// Close must drain in-flight requests rather than sever them: a /metrics
// scrape racing shutdown still gets its complete response. The scrape is
// held open deliberately with a gauge callback that blocks inside the
// registry render until the test has initiated Close.
func TestCloseDrainsInflightScrape(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	reg.GaugeFunc("adatm_test_blocking_gauge", "Blocks the scrape until released.", nil, func() float64 {
		once.Do(func() { close(entered) })
		<-release
		return 1
	})
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		code int
		body string
	}
	scraped := make(chan scrape, 1)
	go func() {
		code, body := get(t, "http://"+srv.Addr()+"/metrics")
		scraped <- scrape{code, body}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never reached the blocking gauge")
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Give Shutdown time to stop the listener and start waiting on the
	// in-flight connection before the handler is allowed to finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case s := <-scraped:
		if s.code != 200 || !strings.Contains(s.body, "adatm_test_blocking_gauge 1") {
			t.Errorf("in-flight scrape across Close = %d:\n%s", s.code, s.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never completed")
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
}

// RegisterRuntimeMetrics must expose the standard build-info gauge: value 1,
// identity in the labels, every label present even when build info is
// unavailable.
func TestBuildInfoMetric(t *testing.T) {
	l := buildInfoLabels()
	if l["goversion"] != runtime.Version() {
		t.Errorf("goversion label = %q, want %q", l["goversion"], runtime.Version())
	}
	for _, k := range []string{"goversion", "version", "revision"} {
		if l[k] == "" {
			t.Errorf("label %q is empty", k)
		}
	}

	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "adatm_build_info{") {
		t.Fatalf("exposition missing adatm_build_info:\n%s", out)
	}
	for _, frag := range []string{`goversion="` + runtime.Version() + `"`, `version="`, `revision="`} {
		if !strings.Contains(out, frag) {
			t.Errorf("adatm_build_info missing %s", frag)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "adatm_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("adatm_build_info value: %q, want 1", line)
		}
	}
}
