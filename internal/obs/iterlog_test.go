package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleAt(iter int) IterSample {
	return IterSample{
		Iter: iter, Fit: 0.5 + float64(iter)/100, FitDelta: 0.01,
		LambdaRatio: 2, MaxKappa: 10, MaxCongruence: 0.3,
		Kappa: []float64{10, 8, 6}, Congruence: []float64{0.3, 0.2, 0.1},
		State: "healthy",
	}
}

func TestIterLogAppendSnapshot(t *testing.T) {
	l := NewIterLog(8)
	for i := 1; i <= 5; i++ {
		l.Append(sampleAt(i))
	}
	snap := l.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d samples, want 5", len(snap))
	}
	for i, s := range snap {
		if s.Iter != i+1 {
			t.Errorf("snapshot[%d].Iter = %d, want %d", i, s.Iter, i+1)
		}
		if len(s.Kappa) != 3 || len(s.Congruence) != 3 {
			t.Errorf("snapshot[%d] per-mode slices %d/%d, want 3/3", i, len(s.Kappa), len(s.Congruence))
		}
	}
	// Snapshots are copies: mutating one must not reach the ring.
	snap[0].Kappa[0] = -99
	if l.Snapshot()[0].Kappa[0] == -99 {
		t.Error("snapshot aliases ring storage")
	}
}

func TestIterLogRingWraparound(t *testing.T) {
	l := NewIterLog(4)
	for i := 1; i <= 10; i++ {
		l.Append(sampleAt(i))
	}
	if l.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", l.Seq())
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d samples, want the newest 4", len(snap))
	}
	for i, s := range snap {
		if s.Iter != 7+i {
			t.Errorf("snapshot[%d].Iter = %d, want %d", i, s.Iter, 7+i)
		}
	}
}

func TestIterLogAfter(t *testing.T) {
	l := NewIterLog(16)
	for i := 1; i <= 6; i++ {
		l.Append(sampleAt(i))
	}
	samples, seq, closed := l.After(4)
	if seq != 6 || closed {
		t.Fatalf("After(4) seq=%d closed=%v, want 6 false", seq, closed)
	}
	if len(samples) != 2 || samples[0].Iter != 5 || samples[1].Iter != 6 {
		t.Fatalf("After(4) = %+v, want iters 5,6", samples)
	}
	// Caught up: no samples, same seq.
	samples, seq, _ = l.After(seq)
	if len(samples) != 0 || seq != 6 {
		t.Fatalf("After(6) = %d samples seq=%d, want 0 and 6", len(samples), seq)
	}
	l.Close()
	if _, _, closed := l.After(6); !closed {
		t.Error("After after Close does not report closed")
	}
	if !l.Closed() {
		t.Error("Closed() = false after Close")
	}
}

func TestIterLogSanitizesNonFinite(t *testing.T) {
	l := NewIterLog(4)
	l.Append(IterSample{
		Iter: 1, Fit: math.NaN(), FitDelta: math.Inf(1),
		LambdaRatio: math.Inf(-1), Kappa: []float64{math.NaN()},
		State: "healthy",
	})
	s := l.Snapshot()[0]
	if s.Fit != 0 || s.FitDelta != math.MaxFloat64 || s.LambdaRatio != -math.MaxFloat64 || s.Kappa[0] != 0 {
		t.Errorf("non-finite values not sanitized: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("sanitized sample still fails to marshal: %v", err)
	}
}

func TestIterLogNilSafe(t *testing.T) {
	var l *IterLog
	l.Append(sampleAt(1))
	l.Close()
	if l.Seq() != 0 || l.Closed() {
		t.Error("nil IterLog reports non-zero state")
	}
	if s := l.Snapshot(); len(s) != 0 {
		t.Errorf("nil Snapshot = %v", s)
	}
	if samples, seq, closed := l.After(0); samples != nil || seq != 0 || closed {
		t.Error("nil After returns non-zero state")
	}
}

// Steady-state appends must not allocate: the probe feeds the log from
// inside the solver's pinned zero-alloc iteration loop.
func TestIterLogAppendSteadyStateZeroAlloc(t *testing.T) {
	l := NewIterLog(8)
	s := sampleAt(1)
	l.Append(s) // warm: slot slices carved from the shared backing array
	allocs := testing.AllocsPerRun(100, func() {
		l.Append(s)
	})
	if allocs != 0 {
		t.Errorf("steady-state Append: %v allocs, want 0", allocs)
	}
}

func TestIterLogConcurrentAppendRead(t *testing.T) {
	l := NewIterLog(32)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 200; i++ {
			l.Append(sampleAt(i))
		}
		l.Close()
	}()
	go func() {
		defer wg.Done()
		var after int64
		for {
			samples, seq, closed := l.After(after)
			for _, s := range samples {
				if s.Iter <= 0 || s.State != "healthy" {
					t.Errorf("torn sample: %+v", s)
					return
				}
			}
			after = seq
			if closed {
				return
			}
		}
	}()
	wg.Wait()
}

func TestServerItersSnapshot(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// No log attached: valid empty payload.
	code, body := get(t, base+"/iters")
	if code != 200 {
		t.Fatalf("/iters (no log) = %d", code)
	}
	var payload struct {
		Seq    int64        `json:"seq"`
		Closed bool         `json:"closed"`
		Iters  []IterSample `json:"iters"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/iters (no log) not JSON: %v\n%s", err, body)
	}
	if payload.Seq != 0 || len(payload.Iters) != 0 {
		t.Errorf("/iters (no log) = %+v", payload)
	}

	l := NewIterLog(8)
	srv.SetIterLog(l)
	for i := 1; i <= 3; i++ {
		l.Append(sampleAt(i))
	}
	_, body = get(t, base+"/iters")
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/iters not JSON: %v\n%s", err, body)
	}
	if payload.Seq != 3 || len(payload.Iters) != 3 || payload.Closed {
		t.Fatalf("/iters = seq=%d closed=%v n=%d, want 3 false 3", payload.Seq, payload.Closed, len(payload.Iters))
	}
	if payload.Iters[2].Iter != 3 || payload.Iters[2].State != "healthy" {
		t.Errorf("/iters last sample = %+v", payload.Iters[2])
	}
}

func TestServerItersFollowStreamsLive(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l := NewIterLog(8)
	srv.SetIterLog(l)
	l.Append(sampleAt(1)) // backlog before the client connects

	resp, err := http.Get("http://" + srv.Addr() + "/iters?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("follow Content-Type = %q", ct)
	}

	type line struct {
		iter  int
		state string
	}
	lines := make(chan line, 16)
	errs := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var s IterSample
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				errs <- err
				return
			}
			lines <- line{s.Iter, s.State}
		}
		close(lines)
	}()

	expect := func(iter int) {
		t.Helper()
		select {
		case err := <-errs:
			t.Fatalf("follow stream: bad NDJSON: %v", err)
		case got, ok := <-lines:
			if !ok {
				t.Fatalf("follow stream ended before iter %d", iter)
			}
			if got.iter != iter {
				t.Fatalf("follow stream got iter %d, want %d", got.iter, iter)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("follow stream timed out waiting for iter %d", iter)
		}
	}
	expect(1) // the backlog
	l.Append(sampleAt(2))
	expect(2) // appended while streaming
	l.Close()
	// After Close the handler must terminate the stream.
	select {
	case _, ok := <-lines:
		if ok {
			t.Fatal("unexpected extra sample after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow stream did not terminate after Close")
	}
}

func TestServerItersFollowDrainsClosedLog(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l := NewIterLog(8)
	for i := 1; i <= 4; i++ {
		l.Append(sampleAt(i))
	}
	l.Close()
	srv.SetIterLog(l)

	// A follower of an already-finished run gets the backlog and EOF.
	code, body := get(t, "http://"+srv.Addr()+"/iters?follow=1")
	if code != 200 {
		t.Fatalf("/iters?follow=1 = %d", code)
	}
	var n int
	for _, ln := range strings.Split(strings.TrimSpace(body), "\n") {
		var s IterSample
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		n++
	}
	if n != 4 {
		t.Errorf("closed-log follow returned %d lines, want 4", n)
	}
}
