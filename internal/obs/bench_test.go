package obs

import "testing"

// The overhead contract in DESIGN.md §2d is backed by these numbers: a
// disabled span is a nil test, an enabled span is two clock reads plus a
// mutexed ring write, and a histogram observation is a handful of atomics.

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("x", 0)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("x", 0)
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("adatm_bench_total", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("adatm_bench_seconds", "bench", nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkNilRegistryCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("adatm_bench_total", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
