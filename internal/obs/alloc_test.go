// Allocation regression suite for the observability layer itself: the
// disabled (nil) path must compile down to a pointer test, and the enabled
// hot-path operations — span emission into a warm ring, counter/gauge/
// histogram observation — must not allocate either, so instrumentation can
// sit inside the engines' steady-state zero-alloc kernels.
package obs

import "testing"

func TestNilInstrumentationZeroAlloc(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	c := reg.Counter("x_total", "", nil)
	g := reg.Gauge("x", "", nil)
	h := reg.Histogram("x_seconds", "", nil, []float64{1})
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan("kernel", 0)
		tr.EmitRange("phase", 0, 0, 1)
		sp.End()
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
		_ = tr.Now()
	})
	if allocs != 0 {
		t.Errorf("nil-instrumentation path: %v allocs, want 0", allocs)
	}
}

func TestEnabledInstrumentationZeroAlloc(t *testing.T) {
	tr := NewTracer(256)
	reg := NewRegistry()
	c := reg.Counter("x_total", "", nil)
	g := reg.Gauge("x", "", nil)
	h := reg.Histogram("x_seconds", "", nil, []float64{0.001, 1})
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan("kernel", 1)
		sp.End()
		tr.EmitRange("phase", 0, tr.Now(), 10)
		c.Inc()
		g.Set(2)
		h.Observe(0.01)
	})
	if allocs != 0 {
		t.Errorf("enabled-instrumentation path: %v allocs, want 0", allocs)
	}
}
