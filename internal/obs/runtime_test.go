package obs

import (
	"math"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestGCPauseHistogramExposition checks the adatm_gc_pause_seconds satellite
// end to end: forced GC cycles must surface as observations in the exposed
// histogram, in valid Prometheus text format (TYPE line, le-labelled
// cumulative buckets, +Inf bucket equal to _count).
func TestGCPauseHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	// Forced GC cycles record pauses in /gc/pauses:seconds. Several cycles
	// so the count is comfortably nonzero.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	text := b.String()

	if !strings.Contains(text, "# TYPE adatm_gc_pause_seconds histogram") {
		t.Fatalf("exposition missing histogram TYPE line:\n%s", text)
	}
	if !strings.Contains(text, `adatm_gc_pause_seconds_bucket{le="+Inf"}`) {
		t.Fatalf("exposition missing +Inf bucket:\n%s", text)
	}

	count := extractValue(t, text, `adatm_gc_pause_seconds_count (\S+)`)
	if count < 1 {
		t.Fatalf("adatm_gc_pause_seconds_count = %v, want >= 1 after forced GC", count)
	}
	inf := extractValue(t, text, `adatm_gc_pause_seconds_bucket\{le="\+Inf"\} (\S+)`)
	if inf != count {
		t.Fatalf("+Inf bucket %v != _count %v (Prometheus invariant)", inf, count)
	}
	sum := extractValue(t, text, `adatm_gc_pause_seconds_sum (\S+)`)
	if sum <= 0 {
		t.Fatalf("adatm_gc_pause_seconds_sum = %v, want > 0", sum)
	}

	// Buckets must be cumulative (monotone non-decreasing in le order).
	re := regexp.MustCompile(`adatm_gc_pause_seconds_bucket\{le="[^"]+"\} (\d+)`)
	prev := int64(-1)
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", m[1], err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d\n%s", v, prev, text)
		}
		prev = v
	}

	// A second scrape must not double-count the already-folded pauses: the
	// count may only grow by pauses that happened in between.
	runtime.GC()
	var b2 strings.Builder
	if _, err := reg.WriteTo(&b2); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	count2 := extractValue(t, b2.String(), `adatm_gc_pause_seconds_count (\S+)`)
	if count2 < count {
		t.Fatalf("second scrape count %v < first %v (delta fold went backwards)", count2, count)
	}
}

// extractValue pulls the first capture group of pattern out of the
// exposition text as a float.
func extractValue(t *testing.T, text, pattern string) float64 {
	t.Helper()
	m := regexp.MustCompile(pattern).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("exposition missing %q:\n%s", pattern, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parse %q: %v", m[1], err)
	}
	return v
}

// TestGCPauseBucketsSubMicrosecond pins the design choice that the GC-pause
// bounds reach below 1 µs: real pauses on modern Go are frequently sub-µs,
// and LatencyBuckets' 1 µs floor would fold the whole distribution into the
// first bucket.
func TestGCPauseBucketsSubMicrosecond(t *testing.T) {
	b := gcPauseBuckets()
	if b[0] >= 1e-6 {
		t.Fatalf("first GC-pause bound %g, want < 1e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if top := b[len(b)-1]; top < 0.05 {
		t.Fatalf("top GC-pause bound %g, want >= 50ms to catch pathological pauses", top)
	}
}

// TestBucketMidpoint covers the infinite-edge degradation used when folding
// runtime/metrics buckets.
func TestBucketMidpoint(t *testing.T) {
	bounds := []float64{math.Inf(-1), 1e-6, 2e-6, math.Inf(1)}
	if got := bucketMidpoint(bounds, 0); got != 1e-6 {
		t.Fatalf("(-Inf,1e-6) midpoint = %g, want 1e-6", got)
	}
	if got := bucketMidpoint(bounds, 1); got != 1.5e-6 {
		t.Fatalf("(1e-6,2e-6) midpoint = %g, want 1.5e-6", got)
	}
	if got := bucketMidpoint(bounds, 2); got != 2e-6 {
		t.Fatalf("(2e-6,+Inf) midpoint = %g, want 2e-6", got)
	}
}
