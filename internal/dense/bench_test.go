package dense

import (
	"math/rand"
	"testing"
)

func BenchmarkGram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{10000, 16}, {100000, 16}, {10000, 64}} {
		a := Random(shape[0], shape[1], rng)
		out := New(shape[1], shape[1])
		b.Run(benchName(shape[0], shape[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Gram(a, out, 0)
			}
		})
	}
}

func BenchmarkSymEig(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{16, 64} {
		a := randomSPD(n, rng)
		b.Run(benchName(n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SymEig(a)
			}
		})
	}
}

func BenchmarkSolveSPDInPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(16, rng)
	m := Random(50000, 16, rng)
	work := m.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(m)
		SolveSPDInPlace(a, work, 0)
	}
}

func benchName(r, c int) string {
	return itoa(r) + "x" + itoa(c)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
