package dense

import (
	"math"
)

// SymEig computes the eigendecomposition of a symmetric matrix a = V·diag(w)·Vᵀ
// using the cyclic Jacobi method. It returns the eigenvalues w (unordered) and
// the matrix V whose columns are the corresponding orthonormal eigenvectors.
// a is not modified. Intended for the small R×R Gram/Hadamard matrices of
// CP-ALS (R ≤ a few hundred).
func SymEig(a *Matrix) (w []float64, v *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("dense: SymEig of non-square matrix")
	}
	// Work on a copy; rotate until off-diagonal mass is negligible.
	s := a.Clone()
	v = Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += s.At(p, q) * s.At(p, q)
			}
		}
		if off <= 1e-30*(1+s.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := s.At(p, p), s.At(q, q)
				// Rotation angle that annihilates (p, q).
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				// Apply the rotation to rows/columns p and q of s.
				for k := 0; k < n; k++ {
					skp, skq := s.At(k, p), s.At(k, q)
					s.Set(k, p, c*skp-sn*skq)
					s.Set(k, q, sn*skp+c*skq)
				}
				for k := 0; k < n; k++ {
					spk, sqk := s.At(p, k), s.At(q, k)
					s.Set(p, k, c*spk-sn*sqk)
					s.Set(q, k, sn*spk+c*sqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-sn*vkq)
					v.Set(k, q, sn*vkp+c*vkq)
				}
			}
		}
	}
	w = make([]float64, n)
	for i := range w {
		w[i] = s.At(i, i)
	}
	return w, v
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// PseudoInverseSym returns the Moore–Penrose pseudoinverse of a symmetric
// matrix via its eigendecomposition: a⁺ = V·diag(1/w_i for |w_i|>tol)·Vᵀ.
// tol <= 0 selects an automatic tolerance of n·ε·max|w|.
func PseudoInverseSym(a *Matrix, tol float64) *Matrix {
	n := a.Rows
	w, v := SymEig(a)
	if tol <= 0 {
		maxw := 0.0
		for _, x := range w {
			if ax := math.Abs(x); ax > maxw {
				maxw = ax
			}
		}
		tol = float64(n) * 2.22e-16 * maxw
	}
	// a⁺ = Σ_i (1/w_i)·v_i·v_iᵀ over the well-conditioned spectrum.
	inv := New(n, n)
	for i := 0; i < n; i++ {
		if math.Abs(w[i]) <= tol {
			continue
		}
		wi := 1 / w[i]
		for r := 0; r < n; r++ {
			vr := v.At(r, i) * wi
			if vr == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				inv.Data[r*n+c] += vr * v.At(c, i)
			}
		}
	}
	return inv
}

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix. Returns ok=false if a pivot is not
// positive (matrix not SPD within floating-point tolerance).
func Cholesky(a *Matrix) (l *Matrix, ok bool) {
	n := a.Rows
	if a.Cols != n {
		panic("dense: Cholesky of non-square matrix")
	}
	l = New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, false
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, true
}

// SolveSPDInPlace solves x·a = b for every row of b, overwriting b with the
// solutions, where a is symmetric positive definite (the CP-ALS update
// U ← M·H⁺ with H SPD is exactly this with b = M). If the Cholesky
// factorization fails, it falls back to the pseudoinverse. workers controls
// row-level parallelism.
func SolveSPDInPlace(a *Matrix, b *Matrix, workers int) {
	n := a.Rows
	if b.Cols != n {
		panic("dense: SolveSPDInPlace shape mismatch")
	}
	l, ok := Cholesky(a)
	if !ok {
		// Rank-deficient H: fall back to the pseudoinverse product.
		pinv := PseudoInverseSym(a, 0)
		tmp := MatMul(b, pinv, nil, workers)
		b.CopyFrom(tmp)
		return
	}
	// Row-wise: solve aᵀ x = bᵀ i.e. (L Lᵀ) x = rowᵀ per row (a symmetric).
	solveRow := func(row []float64) {
		// Forward solve L y = row.
		for i := 0; i < n; i++ {
			s := row[i]
			li := l.Row(i)
			for k := 0; k < i; k++ {
				s -= li[k] * row[k]
			}
			row[i] = s / li[i]
		}
		// Backward solve Lᵀ x = y.
		for i := n - 1; i >= 0; i-- {
			s := row[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * row[k]
			}
			row[i] = s / l.At(i, i)
		}
	}
	rowsParallel(b, workers, solveRow)
}
