package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func naiveGram(a *Matrix) *Matrix {
	out := New(a.Cols, a.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < a.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * a.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for negative dimension")
		}
	}()
	New(-1, 2)
}

func TestRowAliases(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row does not alias storage")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %+v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestGramMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{1, 1}, {5, 3}, {17, 8}, {100, 16}, {3, 7}} {
		a := Random(shape[0], shape[1], rng)
		for _, workers := range []int{1, 4} {
			got := Gram(a, nil, workers)
			want := naiveGram(a)
			if d := got.MaxAbsDiff(want); d > 1e-10 {
				t.Errorf("Gram %v workers=%d: max diff %g", shape, workers, d)
			}
		}
	}
}

func TestGramReuseOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(10, 4, rng)
	out := New(4, 4)
	out.Fill(123) // must be overwritten, not accumulated
	Gram(a, out, 2)
	want := naiveGram(a)
	if d := out.MaxAbsDiff(want); d > 1e-10 {
		t.Errorf("Gram into reused output: max diff %g", d)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(7, 5, rng)
	b := Random(5, 9, rng)
	got := MatMul(a, b, nil, 3)
	want := New(7, 9)
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			s := 0.0
			for k := 0; k < 5; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if d := got.MaxAbsDiff(want); d > 1e-10 {
		t.Errorf("MatMul: max diff %g", d)
	}
}

func TestMatMulAliasPanics(t *testing.T) {
	a := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when output aliases input")
		}
	}()
	MatMul(a, a, a, 1)
}

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Hadamard(a, b, nil)
	want := FromRows([][]float64{{5, 12}, {21, 32}})
	if !got.Equal(want, 0) {
		t.Errorf("Hadamard: got %v", got.Data)
	}
	// In-place into a.
	Hadamard(a, b, a)
	if !a.Equal(want, 0) {
		t.Errorf("Hadamard in-place: got %v", a.Data)
	}
}

func TestHadamardAll(t *testing.T) {
	a := FromRows([][]float64{{2}})
	b := FromRows([][]float64{{3}})
	c := FromRows([][]float64{{4}})
	if got := HadamardAll([]*Matrix{a, b, c}).At(0, 0); got != 24 {
		t.Errorf("HadamardAll: got %g", got)
	}
	if a.At(0, 0) != 2 {
		t.Error("HadamardAll mutated an input")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.Transpose()
	if tt.Rows != 3 || tt.Cols != 2 || tt.At(2, 0) != 3 || tt.At(1, 1) != 5 {
		t.Errorf("Transpose wrong: %+v", tt)
	}
}

func TestColumnNormsAndNormalize(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {4, 0}})
	norms := NormalizeColumns(m)
	if !almostEqual(norms[0], 5, 1e-12) || norms[1] != 0 {
		t.Errorf("norms = %v", norms)
	}
	if !almostEqual(m.At(0, 0), 0.6, 1e-12) || !almostEqual(m.At(1, 0), 0.8, 1e-12) {
		t.Errorf("normalized col 0 = %g, %g", m.At(0, 0), m.At(1, 0))
	}
	// Zero column untouched.
	if m.At(0, 1) != 0 || m.At(1, 1) != 0 {
		t.Error("zero column modified")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Errorf("Frobenius = %g", m.FrobeniusNorm())
	}
}

func TestScaleFillZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	m.Scale(2)
	if m.At(1, 1) != 6 {
		t.Errorf("Scale/Fill: %v", m.Data)
	}
	m.Zero()
	if m.FrobeniusNorm() != 0 {
		t.Error("Zero did not clear")
	}
}

// Property: Gram is symmetric and positive semidefinite on random inputs
// (diagonal dominance is not guaranteed, but xᵀ(AᵀA)x = ‖Ax‖² ≥ 0).
func TestGramPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(8)
		a := Random(rows, cols, rng)
		g := Gram(a, nil, 2)
		// Symmetry.
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				if !almostEqual(g.At(i, j), g.At(j, i), 1e-10) {
					return false
				}
			}
		}
		// PSD via random quadratic forms.
		for trial := 0; trial < 4; trial++ {
			x := make([]float64, cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			q := 0.0
			for i := 0; i < cols; i++ {
				for j := 0; j < cols; j++ {
					q += x[i] * g.At(i, j) * x[j]
				}
			}
			if q < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, k, j := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Random(i, k, rng)
		b := Random(k, j, rng)
		left := MatMul(a, b, nil, 1).Transpose()
		right := MatMul(b.Transpose(), a.Transpose(), nil, 1)
		return left.MaxAbsDiff(right) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
