// Package dense implements the small dense linear-algebra kernel set that
// CP-ALS needs: row-major matrices, Gram products, Hadamard products,
// symmetric eigendecomposition (cyclic Jacobi), SPD Cholesky solves, and the
// Moore–Penrose pseudoinverse of small symmetric matrices.
//
// Factor matrices in CP-ALS are tall and skinny (I_n × R with R ≤ 256), and
// everything quadratic in R happens on R × R matrices, so simple cache-aware
// loops are sufficient; there is no blocking or SIMD here by design.
package dense

import (
	"fmt"
	"math"
	"math/rand"

	"adatm/internal/par"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows (copied).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("dense: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Random returns a Rows×Cols matrix with entries uniform in [0, 1), drawn
// from rng. CP-ALS initialization uses non-negative entries so that the first
// Gram matrices are well conditioned.
func Random(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("dense: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero clears every entry.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every entry to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every entry by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Equal reports whether m and n have the same shape and entries within tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference; shapes
// must match.
func (m *Matrix) MaxAbsDiff(n *Matrix) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("dense: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i := range m.Data {
		if d := math.Abs(m.Data[i] - n.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squares) of the entries.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Gram computes AᵀA into out (Cols×Cols), parallelizing over the rows of A
// with per-worker accumulators. out may be nil, in which case a fresh matrix
// is allocated. Returns out.
func Gram(a *Matrix, out *Matrix, workers int) *Matrix {
	c := a.Cols
	if out == nil {
		out = New(c, c)
	}
	if out.Rows != c || out.Cols != c {
		panic("dense: Gram output shape mismatch")
	}
	out.Zero()
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	partial := make([][]float64, w)
	par.ForWorker(a.Rows, w, func(worker, lo, hi int) {
		acc := make([]float64, c*c)
		for i := lo; i < hi; i++ {
			row := a.Row(i)
			for p := 0; p < c; p++ {
				rp := row[p]
				if rp == 0 {
					continue
				}
				accRow := acc[p*c : (p+1)*c]
				for q := 0; q < c; q++ {
					accRow[q] += rp * row[q]
				}
			}
		}
		partial[worker] = acc
	})
	for _, acc := range partial {
		if acc == nil {
			continue
		}
		for i, v := range acc {
			out.Data[i] += v
		}
	}
	return out
}

// Hadamard computes the element-wise product a .* b into out (all same
// shape). out may alias a or b, or be nil. Returns out.
func Hadamard(a, b, out *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("dense: Hadamard shape mismatch")
	}
	if out == nil {
		out = New(a.Rows, a.Cols)
	}
	if out.Rows != a.Rows || out.Cols != a.Cols {
		panic("dense: Hadamard output shape mismatch")
	}
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// HadamardAll multiplies all the given matrices element-wise into a fresh
// matrix. Panics if the list is empty or shapes differ.
func HadamardAll(ms []*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("dense: HadamardAll of empty list")
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		Hadamard(out, m, out)
	}
	return out
}

// MatMul computes a·b into out (a.Rows × b.Cols), parallelizing over the
// rows of a. out may be nil. Returns out.
func MatMul(a, b, out *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic("dense: MatMul inner dimension mismatch")
	}
	if out == nil {
		out = New(a.Rows, b.Cols)
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic("dense: MatMul output shape mismatch")
	}
	if out == a || out == b {
		panic("dense: MatMul output must not alias an input")
	}
	par.ForRange(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// rowsParallel applies f to every row of m, parallelizing over rows.
func rowsParallel(m *Matrix, workers int, f func(row []float64)) {
	par.ForRange(m.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(m.Row(i))
		}
	})
}

// ColumnNorms returns the Euclidean norm of every column.
func ColumnNorms(m *Matrix) []float64 {
	norms := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j := range norms {
		norms[j] = math.Sqrt(norms[j])
	}
	return norms
}

// NormalizeColumns scales each column of m to unit Euclidean norm and
// returns the original norms. Zero columns are left untouched and report a
// norm of 0 so callers can treat the component as dead.
func NormalizeColumns(m *Matrix) []float64 {
	norms := ColumnNorms(m)
	inv := make([]float64, m.Cols)
	for j, n := range norms {
		if n > 0 {
			inv[j] = 1 / n
		} else {
			inv[j] = 1 // leave zero columns as-is
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= inv[j]
		}
	}
	return norms
}
