package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSymmetric builds a random symmetric n×n matrix.
func randomSymmetric(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// randomSPD builds AᵀA + εI, guaranteed SPD.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	a := Random(n+3, n, rng)
	g := Gram(a, nil, 1)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+0.1)
	}
	return g
}

func reconstructEig(w []float64, v *Matrix) *Matrix {
	n := len(w)
	out := New(n, n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += w[k] * v.At(i, k) * v.At(j, k)
			}
		}
	}
	return out
}

func TestSymEigReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 32} {
		a := randomSymmetric(n, rng)
		w, v := SymEig(a)
		if d := reconstructEig(w, v).MaxAbsDiff(a); d > 1e-8 {
			t.Errorf("n=%d: reconstruction error %g", n, d)
		}
		// V orthonormal: VᵀV == I.
		vtv := Gram(v, nil, 1)
		if d := vtv.MaxAbsDiff(Identity(n)); d > 1e-8 {
			t.Errorf("n=%d: VᵀV deviates from I by %g", n, d)
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -2}})
	w, _ := SymEig(a)
	got := []float64{w[0], w[1]}
	if !(almostEqual(got[0], 3, 1e-12) && almostEqual(got[1], -2, 1e-12)) &&
		!(almostEqual(got[0], -2, 1e-12) && almostEqual(got[1], 3, 1e-12)) {
		t.Errorf("eigenvalues of diag(3,-2): %v", got)
	}
}

func TestPseudoInverseSymSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 4, 8, 16} {
		a := randomSPD(n, rng)
		inv := PseudoInverseSym(a, 0)
		prod := MatMul(a, inv, nil, 1)
		if d := prod.MaxAbsDiff(Identity(n)); d > 1e-7 {
			t.Errorf("n=%d: A·A⁺ deviates from I by %g", n, d)
		}
	}
}

// Penrose conditions hold for singular symmetric matrices too.
func TestPseudoInverseSymSingular(t *testing.T) {
	// Rank-1: a = uuᵀ.
	u := []float64{1, 2, 2}
	a := New(3, 3)
	for i := range u {
		for j := range u {
			a.Set(i, j, u[i]*u[j])
		}
	}
	p := PseudoInverseSym(a, 0)
	// A·A⁺·A == A.
	apa := MatMul(MatMul(a, p, nil, 1), a, nil, 1)
	if d := apa.MaxAbsDiff(a); d > 1e-8 {
		t.Errorf("A·A⁺·A deviates by %g", d)
	}
	// A⁺·A·A⁺ == A⁺.
	pap := MatMul(MatMul(p, a, nil, 1), p, nil, 1)
	if d := pap.MaxAbsDiff(p); d > 1e-8 {
		t.Errorf("A⁺·A·A⁺ deviates by %g", d)
	}
}

func TestCholeskySPD(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(6, rng)
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("Cholesky failed on SPD matrix")
	}
	llt := MatMul(l, l.Transpose(), nil, 1)
	if d := llt.MaxAbsDiff(a); d > 1e-9 {
		t.Errorf("L·Lᵀ deviates by %g", d)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, ok := Cholesky(a); ok {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveSPDInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 5
	a := randomSPD(n, rng)
	x := Random(7, n, rng) // true solution rows
	b := MatMul(x, a, nil, 1)
	SolveSPDInPlace(a, b, 2)
	if d := b.MaxAbsDiff(x); d > 1e-7 {
		t.Errorf("solution deviates by %g", d)
	}
}

func TestSolveSPDFallsBackOnSingular(t *testing.T) {
	// Singular H: solve must not produce NaN/Inf (pseudoinverse fallback).
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	b := FromRows([][]float64{{2, 2}, {4, 4}})
	SolveSPDInPlace(a, b, 1)
	for _, v := range b.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite entry after singular solve: %v", b.Data)
		}
	}
	// The minimum-norm solution of x·[[1,1],[1,1]] = [2,2] is [1,1].
	if !almostEqual(b.At(0, 0), 1, 1e-9) || !almostEqual(b.At(0, 1), 1, 1e-9) {
		t.Errorf("row 0 = %v, want [1 1]", b.Row(0))
	}
}

// Property: eigenvalue sum equals the trace, eigenvalue product equals the
// determinant for 2×2 symmetric matrices (closed form).
func TestSymEig2x2Property(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 || math.Abs(c) > 1e6 {
			return true // skip extreme magnitudes
		}
		m := FromRows([][]float64{{a, b}, {b, c}})
		w, _ := SymEig(m)
		scale := 1 + math.Abs(a) + math.Abs(b) + math.Abs(c)
		trOK := math.Abs((w[0]+w[1])-(a+c)) < 1e-8*scale
		detOK := math.Abs(w[0]*w[1]-(a*c-b*b)) < 1e-7*scale*scale
		return trOK && detOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
