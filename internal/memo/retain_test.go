package memo

import (
	"testing"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func TestRetainBuffersCorrectness(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 500, 0.8, 421)
	fs := randomFactors(x, 6, 422)
	e, err := NewWithConfig(x, Balanced(4), Config{Workers: 2, RetainBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 6)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Fatalf("iter %d mode %d: diff %g (stale retained buffer?)", iter, mode, d)
			}
			e.FactorUpdated(mode)
		}
	}
}

func TestRetainBuffersNoReallocation(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 400, 0.7, 423)
	fs := randomFactors(x, 4, 424)
	e, err := NewWithConfig(x, Balanced(4), Config{Workers: 1, RetainBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	sweep := func() {
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 4)
			e.MTTKRP(mode, fs, out)
			e.FactorUpdated(mode)
		}
	}
	sweep()
	peakAfterFirst := e.Stats().PeakValueBytes
	// Buffers must be identical across sweeps (pointer-stable).
	bufs := make(map[*node]*float64)
	for _, nd := range e.all {
		if nd.buf != nil {
			bufs[nd] = &nd.buf[0]
		}
	}
	sweep()
	for _, nd := range e.all {
		if p, ok := bufs[nd]; ok && &nd.buf[0] != p {
			t.Fatal("retained buffer was reallocated")
		}
	}
	if got := e.Stats().PeakValueBytes; got != peakAfterFirst {
		t.Errorf("peak grew across sweeps with retained buffers: %d -> %d", peakAfterFirst, got)
	}
}

func TestRetainBuffersRankChange(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 300, 0.6, 425)
	e, err := NewWithConfig(x, Balanced(3), Config{Workers: 1, RetainBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{4, 8, 2} { // grow then shrink
		fs := randomFactors(x, r, int64(r))
		for mode := 0; mode < 3; mode++ {
			out := dense.New(x.Dims[mode], r)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Fatalf("rank %d mode %d: diff %g", r, mode, d)
			}
			e.FactorUpdated(mode)
		}
	}
	if e.Stats().PeakValueBytes <= 0 {
		t.Error("no peak accounting")
	}
}

// The ablation: steady-state sweeps must allocate (almost) nothing with
// retained buffers, and one value matrix per node without.
func BenchmarkRetainBuffersAblation(b *testing.B) {
	x := tensor.RandomClustered(4, 4096, 100000, 0.8, 426)
	fs := randomFactors(x, 16, 427)
	for _, retain := range []bool{false, true} {
		name := "alloc-per-iter"
		if retain {
			name = "retain-buffers"
		}
		e, err := NewWithConfig(x, Balanced(4), Config{RetainBuffers: retain})
		if err != nil {
			b.Fatal(err)
		}
		out := dense.New(x.Dims[0], 16)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for mode := 0; mode < 4; mode++ {
					mm := &dense.Matrix{Rows: x.Dims[mode], Cols: 16, Data: out.Data[:x.Dims[mode]*16]}
					e.MTTKRP(mode, fs, mm)
					e.FactorUpdated(mode)
				}
			}
		})
	}
}
