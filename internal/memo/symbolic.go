package memo

import (
	"adatm/internal/dense"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// node is the runtime form of a strategy-tree node: the symbolic structure
// (distinct projected index tuples plus the reduction mapping from the
// parent's elements) computed once, and the numeric value matrix
// materialized and invalidated as CP-ALS sweeps the modes.
type node struct {
	lo, hi   int // mode range [lo, hi)
	parent   *node
	children []*node

	// delta is the set of modes contracted away when computing this node
	// from its parent: parent range minus [lo, hi).
	delta []int

	// Symbolic structure. inds[m-lo] is the index array of mode m over the
	// node's nelem distinct projected tuples; for the root these alias the
	// input tensor's arrays. redPtr/redElems (nil for the root) group the
	// parent's element ids by the tuple of this node they project onto:
	// parent elements redElems[redPtr[i]:redPtr[i+1]] reduce into element i.
	nelem    int
	inds     [][]tensor.Index
	redPtr   []int64
	redElems []int32

	// vals is the nelem × R semi-sparse value matrix; nil when invalidated.
	// Leaf nodes never materialize vals: their contraction is fused with
	// the MTTKRP output scatter.
	vals *dense.Matrix
	// buf optionally retains the value storage across invalidations (the
	// engine's RetainBuffers mode), avoiding one allocation per node per
	// ALS iteration.
	buf []float64
	// mat is the reusable matrix header wrapped around buf in retain mode,
	// so re-materializing a node allocates nothing.
	mat dense.Matrix

	// Kernel-layer state resolved once at build time so the numeric phase
	// performs no per-call setup allocation: deltaIdx[k] is the parent's
	// index array for mode delta[k], facBuf is the per-call factor-matrix
	// scratch (filled at the top of each compute), and chunks holds the
	// equal-weight chunk boundaries over this node's elements (weighted by
	// reduction-group size via the redPtr prefix sums — the load-balanced
	// schedule for skewed reductions).
	deltaIdx [][]tensor.Index
	facBuf   []*dense.Matrix
	chunks   []int

	// id is the node's index in the engine's pre-order list, assigned at
	// instrumentation time to address the per-node rebuild span names.
	id int
}

// buildTree materializes the symbolic structure for every strategy node,
// processing each tree level's nodes concurrently (a node depends only on
// its parent, so breadth-first order exposes the natural coarse parallelism
// of the preprocessing). Returns the root, all nodes in breadth-first
// order, and the leaf for each mode.
func buildTree(x *tensor.COO, strat *Strategy, workers int) (root *node, all []*node, leaves []*node) {
	n := x.Order()
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	leaves = make([]*node, n)
	root = &node{lo: 0, hi: n, nelem: x.NNZ(), inds: x.Inds}
	all = append(all, root)

	type task struct {
		s  *Strategy
		pn *node
	}
	level := []task{{strat, root}}
	for len(level) > 0 {
		// Wire up the level's skeleton nodes sequentially, then fill their
		// symbolic structure in parallel.
		var nodes []*node
		var next []task
		for _, tk := range level {
			for _, cs := range tk.s.Children {
				cn := &node{lo: cs.Lo, hi: cs.Hi, parent: tk.pn}
				for m := tk.pn.lo; m < tk.pn.hi; m++ {
					if m < cs.Lo || m >= cs.Hi {
						cn.delta = append(cn.delta, m)
					}
				}
				tk.pn.children = append(tk.pn.children, cn)
				all = append(all, cn)
				nodes = append(nodes, cn)
				if cs.IsLeaf() {
					leaves[cs.Lo] = cn
				} else {
					next = append(next, task{cs, cn})
				}
			}
		}
		par.For(len(nodes), workers, func(i int) {
			buildSymbolic(nodes[i], x.Dims)
			finalizeNode(nodes[i], w)
		})
		level = next
	}
	return root, all, leaves
}

// finalizeNode resolves the kernel-layer state of a freshly built node: the
// delta-mode index arrays (stable for the life of the engine — parent inds
// are built once and never reallocated), the factor scratch, and the
// nnz-weighted chunk boundaries used by the load-balanced scheduler
// (workers × 8 chunks of roughly equal reduction weight).
func finalizeNode(c *node, workers int) {
	p := c.parent
	c.deltaIdx = make([][]tensor.Index, len(c.delta))
	for k, d := range c.delta {
		c.deltaIdx[k] = p.inds[d-p.lo]
	}
	c.facBuf = make([]*dense.Matrix, len(c.delta))
	c.chunks = par.WeightedBounds(c.redPtr, workers*8)
}

// buildSymbolic computes the symbolic projection of c's parent onto
// [c.lo, c.hi): sort the parent's elements by their projected index tuple
// (LSD radix), collapse duplicates into distinct child elements, and record
// the grouping as the reduction mapping.
func buildSymbolic(c *node, dims []int) {
	p := c.parent
	lo, hi := c.lo, c.hi
	// Key arrays: the parent's index arrays for the child's modes.
	keys := make([][]tensor.Index, hi-lo)
	for m := lo; m < hi; m++ {
		keys[m-lo] = p.inds[m-p.lo]
	}
	perm := make([]int32, p.nelem)
	for i := range perm {
		perm[i] = int32(i)
	}
	sortByKeys(perm, keys, dims[lo:hi])
	sameKey := func(a, b int32) bool {
		for _, key := range keys {
			if key[a] != key[b] {
				return false
			}
		}
		return true
	}
	c.inds = make([][]tensor.Index, hi-lo)
	c.redElems = perm
	c.redPtr = append(c.redPtr, 0)
	for i := 0; i < len(perm); i++ {
		if i == 0 || !sameKey(perm[i-1], perm[i]) {
			if i > 0 {
				c.redPtr = append(c.redPtr, int64(i))
			}
			for k, key := range keys {
				c.inds[k] = append(c.inds[k], key[perm[i]])
			}
		}
	}
	c.redPtr = append(c.redPtr, int64(len(perm)))
	c.nelem = len(c.inds[0])
}

// indexBytes returns the symbolic storage of the node (index arrays plus
// reduction mapping); the root costs nothing because it aliases the input.
func (t *node) indexBytes() int64 {
	if t.parent == nil {
		return 0
	}
	var b int64
	for _, ind := range t.inds {
		b += int64(len(ind)) * 4
	}
	b += int64(len(t.redPtr))*8 + int64(len(t.redElems))*4
	return b
}

// isLeaf reports whether the node covers a single mode.
func (t *node) isLeaf() bool { return t.hi-t.lo == 1 }

// dependsOn reports whether the node's semi-sparse values depend on the
// factor matrix of the given mode (i.e. the mode was contracted away
// somewhere on the path from the root).
func (t *node) dependsOn(mode int) bool {
	return t.parent != nil && (mode < t.lo || mode >= t.hi)
}
