// Package memo implements the paper's central contribution: memoized MTTKRP
// for sparse CP-ALS via trees of semi-sparse intermediate tensors.
//
// A Strategy is a tree over the mode range [0, N): the root covers every
// mode, each internal node's range is partitioned among its children, and
// the N leaves are the single modes. Each tree node owns a semi-sparse
// tensor — the input tensor contracted (tensor-times-matrix-rows via
// Hadamard products) over all modes *outside* the node's range — and the
// tree shape decides how much partial work is shared between the ALS
// sub-iterations:
//
//   - Flat: every leaf hangs off the root. No sharing; per-mode
//     recomputation with index compression (the conventional scheme).
//   - TwoGroup: a 3-level tree splitting the modes into two halves
//     (the Phan et al. scheme generalized to sparse tensors) — each half's
//     contraction is computed once and reused by all its modes.
//   - Balanced: a balanced binary tree, the maximal-reuse limit with
//     O(N log N) tensor contractions per ALS iteration.
//   - arbitrary binary trees chosen by the cost model (package model).
//
// Children cover contiguous mode ranges because CP-ALS sweeps the modes in
// order: contiguity is exactly the condition under which every node is
// computed once and reused until its whole range has been swept.
package memo

import (
	"fmt"
	"strings"
)

// Strategy is a node of a memoization tree over the contiguous mode range
// [Lo, Hi). Leaves have Hi == Lo+1 and no children; internal nodes have at
// least two children whose ranges partition [Lo, Hi) in order.
type Strategy struct {
	Lo, Hi   int
	Children []*Strategy
}

// IsLeaf reports whether s covers a single mode.
func (s *Strategy) IsLeaf() bool { return s.Hi-s.Lo == 1 }

// Span returns the number of modes covered.
func (s *Strategy) Span() int { return s.Hi - s.Lo }

// Validate checks that s is a well-formed strategy for an order-n tensor.
func (s *Strategy) Validate(n int) error {
	if s.Lo != 0 || s.Hi != n {
		return fmt.Errorf("memo: root covers [%d,%d), want [0,%d)", s.Lo, s.Hi, n)
	}
	return s.validate()
}

func (s *Strategy) validate() error {
	if s.Lo >= s.Hi {
		return fmt.Errorf("memo: empty node range [%d,%d)", s.Lo, s.Hi)
	}
	if s.IsLeaf() {
		if len(s.Children) != 0 {
			return fmt.Errorf("memo: leaf [%d,%d) has children", s.Lo, s.Hi)
		}
		return nil
	}
	if len(s.Children) < 2 {
		return fmt.Errorf("memo: internal node [%d,%d) has %d children, want >= 2", s.Lo, s.Hi, len(s.Children))
	}
	at := s.Lo
	for _, c := range s.Children {
		if c.Lo != at {
			return fmt.Errorf("memo: child range [%d,%d) does not continue from %d", c.Lo, c.Hi, at)
		}
		if c.Hi > s.Hi {
			return fmt.Errorf("memo: child range [%d,%d) escapes parent [%d,%d)", c.Lo, c.Hi, s.Lo, s.Hi)
		}
		if err := c.validate(); err != nil {
			return err
		}
		at = c.Hi
	}
	if at != s.Hi {
		return fmt.Errorf("memo: children of [%d,%d) stop at %d", s.Lo, s.Hi, at)
	}
	return nil
}

// Flat returns the no-memoization strategy: all n leaves directly under the
// root.
func Flat(n int) *Strategy {
	root := &Strategy{Lo: 0, Hi: n}
	for m := 0; m < n; m++ {
		root.Children = append(root.Children, &Strategy{Lo: m, Hi: m + 1})
	}
	return root
}

// TwoGroup returns the 3-level strategy splitting the modes at the given
// point: the two groups [0, split) and [split, n) are each contracted once
// and shared by their modes. split must be in [1, n-1].
func TwoGroup(n, split int) *Strategy {
	if split < 1 || split >= n {
		panic(fmt.Sprintf("memo: TwoGroup split %d out of range for order %d", split, n))
	}
	group := func(lo, hi int) *Strategy {
		g := &Strategy{Lo: lo, Hi: hi}
		if hi-lo == 1 {
			return g
		}
		for m := lo; m < hi; m++ {
			g.Children = append(g.Children, &Strategy{Lo: m, Hi: m + 1})
		}
		return g
	}
	return &Strategy{Lo: 0, Hi: n, Children: []*Strategy{group(0, split), group(split, n)}}
}

// Balanced returns the balanced binary strategy (the dimension-tree limit of
// the design space).
func Balanced(n int) *Strategy {
	var build func(lo, hi int) *Strategy
	build = func(lo, hi int) *Strategy {
		s := &Strategy{Lo: lo, Hi: hi}
		if hi-lo == 1 {
			return s
		}
		mid := lo + (hi-lo+1)/2
		s.Children = []*Strategy{build(lo, mid), build(mid, hi)}
		return s
	}
	return build(0, n)
}

// BinaryFromSplits builds a binary strategy from a split table: split(lo,
// hi) returns the split point for the internal node covering [lo, hi). This
// is how the cost model materializes its DP solution.
func BinaryFromSplits(n int, split func(lo, hi int) int) *Strategy {
	var build func(lo, hi int) *Strategy
	build = func(lo, hi int) *Strategy {
		s := &Strategy{Lo: lo, Hi: hi}
		if hi-lo == 1 {
			return s
		}
		mid := split(lo, hi)
		if mid <= lo || mid >= hi {
			panic(fmt.Sprintf("memo: invalid split %d for [%d,%d)", mid, lo, hi))
		}
		s.Children = []*Strategy{build(lo, mid), build(mid, hi)}
		return s
	}
	return build(0, n)
}

// CountNodes returns the total number of tree nodes including the root and
// leaves.
func (s *Strategy) CountNodes() int {
	n := 1
	for _, c := range s.Children {
		n += c.CountNodes()
	}
	return n
}

// Depth returns the number of levels (a lone leaf has depth 1).
func (s *Strategy) Depth() int {
	d := 0
	for _, c := range s.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// String renders the tree in a compact nested-range notation, e.g.
// "([0-1][2-3])" for a balanced order-4 tree.
func (s *Strategy) String() string {
	var b strings.Builder
	s.render(&b)
	return b.String()
}

func (s *Strategy) render(b *strings.Builder) {
	if s.IsLeaf() {
		fmt.Fprintf(b, "%d", s.Lo)
		return
	}
	b.WriteByte('(')
	for i, c := range s.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		if c.IsLeaf() {
			c.render(b)
		} else if c.flatGroup() {
			fmt.Fprintf(b, "[%d-%d]", c.Lo, c.Hi-1)
		} else {
			c.render(b)
		}
	}
	b.WriteByte(')')
}

// flatGroup reports whether every child of s is a leaf.
func (s *Strategy) flatGroup() bool {
	for _, c := range s.Children {
		if !c.IsLeaf() {
			return false
		}
	}
	return len(s.Children) > 0
}

// Equal reports structural equality of two strategies.
func (s *Strategy) Equal(o *Strategy) bool {
	if s.Lo != o.Lo || s.Hi != o.Hi || len(s.Children) != len(o.Children) {
		return false
	}
	for i := range s.Children {
		if !s.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}
