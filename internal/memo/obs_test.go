package memo

import (
	"strings"
	"testing"

	"adatm/internal/dense"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// TestMemoCountersAcrossSweeps pins the hit/miss/eviction semantics: a cold
// sweep only misses, an identical re-sweep only hits, and a factor update
// evicts the dependent subtrees so the next sweep misses again.
func TestMemoCountersAcrossSweeps(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 500, 0.8, 7)
	e, err := New(x, Balanced(4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	fs := randomFactors(x, 4, 9)
	sweep := func() {
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 4)
			if err := e.MTTKRP(mode, fs, out); err != nil {
				t.Fatal(err)
			}
		}
	}

	sweep()
	hits, misses, evicts := e.MemoStats()
	if misses == 0 {
		t.Fatal("cold sweep recorded no misses")
	}
	if evicts != 0 {
		t.Fatalf("cold sweep recorded %d evictions, want 0", evicts)
	}

	sweep()
	h2, m2, _ := e.MemoStats()
	if h2 <= hits {
		t.Errorf("identical re-sweep recorded no cache hits (%d -> %d)", hits, h2)
	}
	if m2 != misses {
		t.Errorf("identical re-sweep rebuilt nodes: misses %d -> %d", misses, m2)
	}

	e.FactorUpdated(0)
	_, _, ev := e.MemoStats()
	if ev == 0 {
		t.Error("FactorUpdated(0) evicted nothing")
	}
	sweep()
	_, m3, _ := e.MemoStats()
	if m3 <= m2 {
		t.Error("sweep after invalidation recorded no rebuild misses")
	}
}

// TestMemoInstrument exercises the full instrumentation wiring: rebuild
// spans land in the tracer and the registry exposes the memo counter and
// gauge families with the engine label.
func TestMemoInstrument(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 500, 0.8, 11)
	e, err := New(x, Balanced(4), 1, "memo-balanced")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(1024)
	reg := obs.NewRegistry()
	e.Instrument(tr, reg)
	fs := randomFactors(x, 4, 13)
	for mode := 0; mode < 4; mode++ {
		out := dense.New(x.Dims[mode], 4)
		if err := e.MTTKRP(mode, fs, out); err != nil {
			t.Fatal(err)
		}
	}

	if tr.Len() == 0 {
		t.Fatal("instrumented run emitted no spans")
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "memo.rebuild[") {
		t.Error("trace export contains no memo.rebuild spans")
	}

	sb.Reset()
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"adatm_memo_hits_total",
		"adatm_memo_misses_total",
		"adatm_memo_evictions_total",
		"adatm_memo_value_bytes",
		"adatm_memo_peak_value_bytes",
		"adatm_engine_mttkrp_calls_total",
		"adatm_par_chunk_imbalance_ratio",
		`engine="memo-balanced"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %s", want)
		}
	}
}

// TestInstrumentNilSinks is the safety contract: instrumenting with nil
// tracer/registry must be a no-op, not a panic, and must not enable the
// span path.
func TestInstrumentNilSinks(t *testing.T) {
	x := tensor.RandomUniform(3, 8, 200, 17)
	e, err := New(x, Flat(3), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	e.Instrument(nil, nil)
	if e.tr != nil {
		t.Fatal("nil instrumentation enabled the tracer path")
	}
	fs := randomFactors(x, 3, 19)
	out := dense.New(x.Dims[0], 3)
	if err := e.MTTKRP(0, fs, out); err != nil {
		t.Fatal(err)
	}
}
