package memo

import (
	"fmt"
	"time"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Engine is the memoized MTTKRP engine: a strategy tree of semi-sparse
// intermediate tensors over a fixed input tensor. The symbolic phase runs
// once at construction; every MTTKRP materializes (or reuses) the value
// matrices along the path from the root to the requested mode's leaf, and
// FactorUpdated invalidates exactly the nodes contracted with the factor
// that changed.
type Engine struct {
	x       *tensor.COO
	strat   *Strategy
	name    string
	workers int
	retain  bool

	root   *node
	all    []*node
	leaves []*node

	rank int // R of the cached value matrices; 0 until the first MTTKRP

	// Per-worker factor-row scratch for the fused Hadamard-accumulate
	// kernel, sized workers × maxDelta at construction so the numeric
	// phase allocates nothing.
	rowsBuf [][][]float64
	// Call-scoped compute inputs plus a method value bound once at
	// construction: every compute passes the same func value to the
	// scheduler instead of a fresh closure, keeping steady state at zero
	// allocations.
	curNode     *node
	curDst      *dense.Matrix
	curScatter  []tensor.Index
	curFromRoot bool
	body        func(worker, lo, hi int)

	ctr        engine.Counters
	idxBytes   int64
	curValB    int64
	peakValB   int64
	symbolicNS int64
}

// New builds the engine for the given strategy. name labels the engine in
// reports (e.g. "memo-binary"); an empty name defaults to "memo".
func New(x *tensor.COO, strat *Strategy, workers int, name string) (*Engine, error) {
	return NewWithConfig(x, strat, Config{Workers: workers, Name: name})
}

// Config holds the optional knobs of the memoized engine.
type Config struct {
	Workers int
	Name    string
	// RetainBuffers keeps each node's value storage allocated across
	// invalidations, trading steady peak memory (every node's buffer lives
	// simultaneously after the first iteration) for zero per-iteration
	// allocation.
	RetainBuffers bool
}

// NewWithConfig is New with the full configuration surface.
func NewWithConfig(x *tensor.COO, strat *Strategy, cfg Config) (*Engine, error) {
	if err := strat.Validate(x.Order()); err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "memo"
	}
	e := &Engine{x: x, strat: strat, name: name, workers: cfg.Workers, retain: cfg.RetainBuffers}
	start := time.Now()
	e.root, e.all, e.leaves = buildTree(x, strat, cfg.Workers)
	e.symbolicNS = time.Since(start).Nanoseconds()
	maxDelta := 0
	for _, t := range e.all {
		e.idxBytes += t.indexBytes()
		if len(t.delta) > maxDelta {
			maxDelta = len(t.delta)
		}
	}
	w := cfg.Workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	e.rowsBuf = make([][][]float64, w)
	for i := range e.rowsBuf {
		e.rowsBuf[i] = make([][]float64, maxDelta)
	}
	e.body = e.runChunk
	return e, nil
}

// Strategy returns the strategy tree the engine was built with.
func (e *Engine) Strategy() *Strategy { return e.strat }

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	s := engine.Stats{
		IndexBytes:     e.idxBytes,
		ValueBytes:     e.curValB,
		PeakValueBytes: e.peakValB,
		SymbolicNS:     e.symbolicNS,
	}
	e.ctr.Fill(&s)
	return s
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ctr.Reset() }

// FactorUpdated implements engine.Engine: every cached node contracted with
// factors[mode] becomes stale and is dropped.
func (e *Engine) FactorUpdated(mode int) {
	for _, t := range e.all {
		if t.vals != nil && t.dependsOn(mode) {
			e.free(t)
		}
	}
}

// invalidateAll drops every cached value matrix (used when R changes).
func (e *Engine) invalidateAll() {
	for _, t := range e.all {
		if t.vals != nil {
			e.free(t)
		}
	}
}

func (e *Engine) free(t *node) {
	if !e.retain {
		e.curValB -= int64(t.nelem) * int64(e.rank) * 8
	}
	t.vals = nil
}

func (e *Engine) alloc(t *node, r int) {
	need := t.nelem * r
	if e.retain {
		if cap(t.buf) >= need {
			// Reuse the retained storage through the node's own matrix
			// header: no allocation, bytes already counted.
			t.mat = dense.Matrix{Rows: t.nelem, Cols: r, Data: t.buf[:need]}
			t.vals = &t.mat
			return
		}
		// Replacing retained storage (rank grew): swap the accounting.
		e.curValB -= int64(cap(t.buf)) * 8
	}
	t.vals = dense.New(t.nelem, r)
	if e.retain {
		t.buf = t.vals.Data
	}
	e.curValB += int64(need) * 8
	if e.curValB > e.peakValB {
		e.peakValB = e.curValB
	}
}

// MTTKRP implements engine.Engine.
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.x.Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	r := out.Cols
	if e.rank != r {
		e.invalidateAll()
		e.rank = r
	}
	leaf := e.leaves[mode]
	e.ensure(leaf.parent, factors, r)
	// The leaf contraction is fused with the output scatter: each leaf
	// element's row is accumulated straight into the output row of its mode
	// index instead of being materialized and then copied. Mode indices
	// absent from the tensor keep zero rows.
	out.Zero()
	e.compute(leaf, factors, r, out, leaf.inds[0])
	e.ctr.Observe(start)
	return nil
}

// ensure materializes t.vals (recursively materializing ancestors first).
func (e *Engine) ensure(t *node, factors []*dense.Matrix, r int) {
	if t.vals != nil || t.parent == nil {
		return
	}
	p := t.parent
	e.ensure(p, factors, r)
	e.alloc(t, r)
	e.compute(t, factors, r, t.vals, nil)
}

// compute evaluates the contraction of the parent's semi-sparse tensor with
// the delta-mode factor rows, reduced into t's elements. The inner loop is
// the paper's TTM-through-Hadamard kernel, run through the shared fused
// primitives: for each parent element, its R-row (or the broadcast scalar
// nonzero value when the parent is the root) is multiplied by one factor
// row per removed mode and accumulated into the owning destination row in
// a single pass, with no temporary R-vector. When scatter is nil, element
// i's row is dst.Row(i) (materializing t.vals); otherwise it is
// dst.Row(scatter[i]) (the fused leaf-to-output scatter). Elements are
// scheduled in reduction-weighted chunks; distinct elements own distinct
// destination rows, so no synchronization is needed.
func (e *Engine) compute(t *node, factors []*dense.Matrix, r int, dst *dense.Matrix, scatter []tensor.Index) {
	p := t.parent
	for k, d := range t.delta {
		t.facBuf[k] = factors[d]
	}
	e.curNode, e.curDst, e.curScatter, e.curFromRoot = t, dst, scatter, p.parent == nil
	par.ForChunks(t.chunks, e.workers, e.body)
	e.curNode, e.curDst, e.curScatter = nil, nil, nil
	e.ctr.AddOps(int64(p.nelem) * int64(len(t.delta)+1) * int64(r))
}

// runChunk processes one scheduled chunk of the current compute's child
// elements on the given worker.
func (e *Engine) runChunk(worker, lo, hi int) {
	t := e.curNode
	p := t.parent
	dst, scatter, fromRoot := e.curDst, e.curScatter, e.curFromRoot
	vals := e.x.Vals
	rows := e.rowsBuf[worker]
	k := len(t.delta)
	for i := lo; i < hi; i++ {
		var out []float64
		if scatter == nil {
			out = dst.Row(i)
		} else {
			out = dst.Row(int(scatter[i]))
		}
		for j := range out {
			out[j] = 0
		}
		for ei := t.redPtr[i]; ei < t.redPtr[i+1]; ei++ {
			pe := int(t.redElems[ei])
			for kk := 0; kk < k; kk++ {
				rows[kk] = t.facBuf[kk].Row(int(t.deltaIdx[kk][pe]))
			}
			if fromRoot {
				// Single-pass v · Πf accumulate; with a single removed
				// mode this is a bare out[j] += v·f[j] (no broadcast).
				kernel.HadamardAccum(out, vals[pe], rows[:k])
			} else {
				kernel.HadamardAccumVec(out, p.vals.Row(pe), rows[:k])
			}
		}
	}
}

// NodeElemCounts returns, for every node in pre-order, its mode range and
// the number of distinct projected tuples — the quantities the cost model
// estimates. Used to validate the model against the exact symbolic phase.
func (e *Engine) NodeElemCounts() []NodeCount {
	out := make([]NodeCount, 0, len(e.all))
	for _, t := range e.all {
		out = append(out, NodeCount{Lo: t.lo, Hi: t.hi, Elems: t.nelem})
	}
	return out
}

// NodeCount reports the element count of one tree node.
type NodeCount struct {
	Lo, Hi int
	Elems  int
}

// PerIterationOps returns the exact number of Hadamard op units one full
// CP-ALS iteration (one MTTKRP per mode, in order, with the standard
// invalidation pattern) costs at rank r: every non-root node is computed
// exactly once per iteration, costing parentElems·(|δ|+1)·r.
func (e *Engine) PerIterationOps(r int) int64 {
	var ops int64
	for _, t := range e.all {
		if t.parent == nil {
			continue
		}
		ops += int64(t.parent.nelem) * int64(len(t.delta)+1) * int64(r)
	}
	return ops
}

var _ engine.Engine = (*Engine)(nil)

// Describe returns a short human-readable summary of the tree: node count,
// depth, and per-node element counts relative to nnz.
func (e *Engine) Describe() string {
	return fmt.Sprintf("%s depth=%d nodes=%d nnz=%d", e.strat, e.strat.Depth(), e.strat.CountNodes(), e.x.NNZ())
}
