package memo

import (
	"fmt"
	"sync/atomic"
	"time"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Engine is the memoized MTTKRP engine: a strategy tree of semi-sparse
// intermediate tensors over a fixed input tensor. The symbolic phase runs
// once at construction; every MTTKRP materializes (or reuses) the value
// matrices along the path from the root to the requested mode's leaf, and
// FactorUpdated invalidates exactly the nodes contracted with the factor
// that changed.
type Engine struct {
	x       *tensor.COO
	strat   *Strategy
	name    string
	workers int
	retain  bool

	root   *node
	all    []*node
	leaves []*node

	rank int // R of the cached value matrices; 0 until the first MTTKRP

	ops        atomic.Int64
	idxBytes   int64
	curValB    int64
	peakValB   int64
	symbolicNS int64
}

// New builds the engine for the given strategy. name labels the engine in
// reports (e.g. "memo-binary"); an empty name defaults to "memo".
func New(x *tensor.COO, strat *Strategy, workers int, name string) (*Engine, error) {
	return NewWithConfig(x, strat, Config{Workers: workers, Name: name})
}

// Config holds the optional knobs of the memoized engine.
type Config struct {
	Workers int
	Name    string
	// RetainBuffers keeps each node's value storage allocated across
	// invalidations, trading steady peak memory (every node's buffer lives
	// simultaneously after the first iteration) for zero per-iteration
	// allocation.
	RetainBuffers bool
}

// NewWithConfig is New with the full configuration surface.
func NewWithConfig(x *tensor.COO, strat *Strategy, cfg Config) (*Engine, error) {
	if err := strat.Validate(x.Order()); err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "memo"
	}
	e := &Engine{x: x, strat: strat, name: name, workers: cfg.Workers, retain: cfg.RetainBuffers}
	start := time.Now()
	e.root, e.all, e.leaves = buildTree(x, strat, cfg.Workers)
	e.symbolicNS = time.Since(start).Nanoseconds()
	for _, t := range e.all {
		e.idxBytes += t.indexBytes()
	}
	return e, nil
}

// Strategy returns the strategy tree the engine was built with.
func (e *Engine) Strategy() *Strategy { return e.strat }

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		HadamardOps:    e.ops.Load(),
		IndexBytes:     e.idxBytes,
		ValueBytes:     e.curValB,
		PeakValueBytes: e.peakValB,
		SymbolicNS:     e.symbolicNS,
	}
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ops.Store(0) }

// FactorUpdated implements engine.Engine: every cached node contracted with
// factors[mode] becomes stale and is dropped.
func (e *Engine) FactorUpdated(mode int) {
	for _, t := range e.all {
		if t.vals != nil && t.dependsOn(mode) {
			e.free(t)
		}
	}
}

// invalidateAll drops every cached value matrix (used when R changes).
func (e *Engine) invalidateAll() {
	for _, t := range e.all {
		if t.vals != nil {
			e.free(t)
		}
	}
}

func (e *Engine) free(t *node) {
	if !e.retain {
		e.curValB -= int64(t.nelem) * int64(e.rank) * 8
	}
	t.vals = nil
}

func (e *Engine) alloc(t *node, r int) {
	need := t.nelem * r
	if e.retain {
		if cap(t.buf) >= need {
			// Reuse the retained storage: no allocation, bytes already
			// counted.
			t.vals = &dense.Matrix{Rows: t.nelem, Cols: r, Data: t.buf[:need]}
			return
		}
		// Replacing retained storage (rank grew): swap the accounting.
		e.curValB -= int64(cap(t.buf)) * 8
	}
	t.vals = dense.New(t.nelem, r)
	if e.retain {
		t.buf = t.vals.Data
	}
	e.curValB += int64(need) * 8
	if e.curValB > e.peakValB {
		e.peakValB = e.curValB
	}
}

// MTTKRP implements engine.Engine.
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) {
	r := out.Cols
	if out.Rows != e.x.Dims[mode] {
		panic("memo: MTTKRP output row count mismatch")
	}
	if e.rank != r {
		e.invalidateAll()
		e.rank = r
	}
	leaf := e.leaves[mode]
	e.ensure(leaf, factors, r)
	// Scatter the leaf's value rows into the (possibly larger) output; mode
	// indices absent from the tensor keep zero rows.
	out.Zero()
	ind := leaf.inds[0]
	par.ForRange(leaf.nelem, e.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(int(ind[i])), leaf.vals.Row(i))
		}
	})
}

// ensure materializes t.vals (recursively materializing ancestors first).
func (e *Engine) ensure(t *node, factors []*dense.Matrix, r int) {
	if t.vals != nil || t.parent == nil {
		return
	}
	p := t.parent
	e.ensure(p, factors, r)
	e.alloc(t, r)
	e.compute(t, factors, r)
}

// compute evaluates the contraction of the parent's semi-sparse tensor with
// the delta-mode factor rows, reduced into t's elements. The loop is the
// paper's TTM-through-Hadamard kernel: for each parent element, load its
// R-row (or broadcast the scalar nonzero value when the parent is the
// root), multiply element-wise by one factor row per removed mode, and
// accumulate into the owning child element. Parallel over child elements,
// so no synchronization is needed.
func (e *Engine) compute(t *node, factors []*dense.Matrix, r int) {
	p := t.parent
	fromRoot := p.parent == nil
	// Factor rows are looked up through the parent's index arrays.
	deltaInds := make([][]tensor.Index, len(t.delta))
	deltaFac := make([]*dense.Matrix, len(t.delta))
	for k, d := range t.delta {
		deltaInds[k] = p.inds[d-p.lo]
		deltaFac[k] = factors[d]
	}
	vals := e.x.Vals
	par.ForBlocks(t.nelem, 256, e.workers, func(lo, hi int) {
		tmp := make([]float64, r)
		for i := lo; i < hi; i++ {
			out := t.vals.Row(i)
			for j := range out {
				out[j] = 0
			}
			for ei := t.redPtr[i]; ei < t.redPtr[i+1]; ei++ {
				pe := int(t.redElems[ei])
				if fromRoot {
					v := vals[pe]
					for j := range tmp {
						tmp[j] = v
					}
				} else {
					copy(tmp, p.vals.Row(pe))
				}
				for k := range deltaFac {
					f := deltaFac[k].Row(int(deltaInds[k][pe]))
					for j := range tmp {
						tmp[j] *= f[j]
					}
				}
				for j := range out {
					out[j] += tmp[j]
				}
			}
		}
	})
	e.ops.Add(int64(p.nelem) * int64(len(t.delta)+1) * int64(r))
}

// NodeElemCounts returns, for every node in pre-order, its mode range and
// the number of distinct projected tuples — the quantities the cost model
// estimates. Used to validate the model against the exact symbolic phase.
func (e *Engine) NodeElemCounts() []NodeCount {
	out := make([]NodeCount, 0, len(e.all))
	for _, t := range e.all {
		out = append(out, NodeCount{Lo: t.lo, Hi: t.hi, Elems: t.nelem})
	}
	return out
}

// NodeCount reports the element count of one tree node.
type NodeCount struct {
	Lo, Hi int
	Elems  int
}

// PerIterationOps returns the exact number of Hadamard op units one full
// CP-ALS iteration (one MTTKRP per mode, in order, with the standard
// invalidation pattern) costs at rank r: every non-root node is computed
// exactly once per iteration, costing parentElems·(|δ|+1)·r.
func (e *Engine) PerIterationOps(r int) int64 {
	var ops int64
	for _, t := range e.all {
		if t.parent == nil {
			continue
		}
		ops += int64(t.parent.nelem) * int64(len(t.delta)+1) * int64(r)
	}
	return ops
}

var _ engine.Engine = (*Engine)(nil)

// Describe returns a short human-readable summary of the tree: node count,
// depth, and per-node element counts relative to nnz.
func (e *Engine) Describe() string {
	return fmt.Sprintf("%s depth=%d nodes=%d nnz=%d", e.strat, e.strat.Depth(), e.strat.CountNodes(), e.x.NNZ())
}
