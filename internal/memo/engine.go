package memo

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"adatm/internal/accum"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Engine is the memoized MTTKRP engine: a strategy tree of semi-sparse
// intermediate tensors over a fixed input tensor. The symbolic phase runs
// once at construction; every MTTKRP materializes (or reuses) the value
// matrices along the path from the root to the requested mode's leaf, and
// FactorUpdated invalidates exactly the nodes contracted with the factor
// that changed.
type Engine struct {
	x       *tensor.COO
	strat   *Strategy
	name    string
	workers int
	retain  bool

	root   *node
	all    []*node
	leaves []*node

	rank int // R of the cached value matrices; 0 until the first MTTKRP

	// Per-worker factor-row scratch for the fused Hadamard-accumulate
	// kernel, sized workers × maxDelta at construction so the numeric
	// phase allocates nothing.
	rowsBuf [][][]float64
	// Call-scoped compute inputs plus a method value bound once at
	// construction: every compute passes the same func value to the
	// scheduler instead of a fresh closure, keeping steady state at zero
	// allocations.
	curNode     *node
	curDst      *dense.Matrix
	curScatter  []tensor.Index
	curFromRoot bool
	body        func(worker, lo, hi int)

	// Privatized leaf accumulation: the scatter path above is already
	// lock-free (distinct leaf elements own distinct output rows), but its
	// parallel width is capped by the leaf element count — a short target
	// mode starves it. The privatized path parallelizes over the flattened
	// reduction entries instead, each worker accumulating into a private
	// output copy folded afterwards by pool.Reduce. privBody is the bound
	// method value mirroring body, for the same zero-alloc reason.
	res      *accum.Resolver
	pool     *accum.Pool
	privBody func(worker, lo, hi int)

	ctr        engine.Counters
	idxBytes   int64
	curValB    atomic.Int64
	peakValB   atomic.Int64
	symbolicNS int64

	// Memoization effectiveness counters: a hit is an ensure request served
	// by an already-materialized node, a miss is a node (re)build, an
	// eviction is a cached node dropped by invalidation. Atomic so a live
	// /metrics scrape can read them mid-run; the mutating paths are the
	// single-threaded kernel entry, so the adds never contend.
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64

	// tr, when non-nil, receives one span per node rebuild (named at
	// instrumentation time in spanNames, indexed like all).
	tr        *obs.Tracer
	spanNames []string
}

// New builds the engine for the given strategy. name labels the engine in
// reports (e.g. "memo-binary"); an empty name defaults to "memo".
func New(x *tensor.COO, strat *Strategy, workers int, name string) (*Engine, error) {
	return NewWithConfig(x, strat, Config{Workers: workers, Name: name})
}

// Config holds the optional knobs of the memoized engine.
type Config struct {
	Workers int
	Name    string
	// RetainBuffers keeps each node's value storage allocated across
	// invalidations, trading steady peak memory (every node's buffer lives
	// simultaneously after the first iteration) for zero per-iteration
	// allocation.
	RetainBuffers bool
	// Accum is the output-accumulation policy for the leaf contraction
	// (LockFree is forced on — the scatter baseline here takes no locks).
	Accum accum.Config
}

// NewWithConfig is New with the full configuration surface.
func NewWithConfig(x *tensor.COO, strat *Strategy, cfg Config) (*Engine, error) {
	if err := strat.Validate(x.Order()); err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "memo"
	}
	e := &Engine{x: x, strat: strat, name: name, workers: cfg.Workers, retain: cfg.RetainBuffers}
	start := time.Now()
	e.root, e.all, e.leaves = buildTree(x, strat, cfg.Workers)
	e.symbolicNS = time.Since(start).Nanoseconds()
	maxDelta := 0
	for _, t := range e.all {
		e.idxBytes += t.indexBytes()
		if len(t.delta) > maxDelta {
			maxDelta = len(t.delta)
		}
	}
	w := cfg.Workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	e.rowsBuf = make([][][]float64, w)
	for i := range e.rowsBuf {
		e.rowsBuf[i] = make([][]float64, maxDelta)
	}
	e.body = e.runChunk
	acfg := cfg.Accum
	acfg.LockFree = true
	e.res = accum.NewResolver(x.Order(), acfg)
	e.pool = accum.NewPool(w)
	e.privBody = e.runPrivChunk
	return e, nil
}

// Strategy returns the strategy tree the engine was built with.
func (e *Engine) Strategy() *Strategy { return e.strat }

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.name }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	s := engine.Stats{
		IndexBytes:     e.idxBytes,
		ValueBytes:     e.curValB.Load(),
		PeakValueBytes: e.peakValB.Load(),
		SymbolicNS:     e.symbolicNS,
	}
	e.ctr.Fill(&s)
	return s
}

// MemoStats reports the memoization effectiveness counters: ensure requests
// served from cache (hits), node (re)builds (misses), and cached nodes
// dropped by invalidation (evictions).
func (e *Engine) MemoStats() (hits, misses, evictions int64) {
	return e.hits.Load(), e.misses.Load(), e.evicts.Load()
}

// Instrument implements engine.Instrumentable: the memoization counters and
// live value-storage gauge go to the registry, and node rebuilds are spanned
// in the tracer (named memo.rebuild[lo:hi) after each node's mode range).
// The worst per-node chunk imbalance of the reduction schedule is exported
// as a gauge — the number the weighted scheduler exists to keep near 1.
func (e *Engine) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		e.spanNames = make([]string, len(e.all))
		for i, t := range e.all {
			e.spanNames[i] = "memo.rebuild[" + strconv.Itoa(t.lo) + ":" + strconv.Itoa(t.hi) + ")"
			t.id = i
		}
		e.tr = tr
	}
	if reg == nil {
		return
	}
	engine.RegisterCommonMetrics(reg, e.name, &e.ctr)
	l := obs.Labels{"engine": e.name}
	reg.CounterFunc("adatm_memo_hits_total",
		"Memoized-node requests served from cache.", l,
		func() float64 { return float64(e.hits.Load()) })
	reg.CounterFunc("adatm_memo_misses_total",
		"Memoized-node requests that (re)built the node.", l,
		func() float64 { return float64(e.misses.Load()) })
	reg.CounterFunc("adatm_memo_evictions_total",
		"Cached nodes dropped by factor invalidation.", l,
		func() float64 { return float64(e.evicts.Load()) })
	reg.GaugeFunc("adatm_memo_value_bytes",
		"Live semi-sparse value storage of the strategy tree.", l,
		func() float64 { return float64(e.curValB.Load()) })
	reg.GaugeFunc("adatm_memo_peak_value_bytes",
		"Peak simultaneously live value storage.", l,
		func() float64 { return float64(e.peakValB.Load()) })
	worst := 1.0
	for _, t := range e.all {
		if t.parent == nil {
			continue
		}
		if v := par.ImbalanceRatio(t.redPtr, t.chunks); v > worst {
			worst = v
		}
	}
	reg.GaugeFunc("adatm_par_chunk_imbalance_ratio",
		"Worst heaviest-chunk/ideal-share ratio of the weighted schedules.", l,
		func() float64 { return worst })
	engine.RegisterAccumMetrics(reg, e.name, len(e.x.Dims), e.res, e.pool)
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ctr.Reset() }

// FactorUpdated implements engine.Engine: every cached node contracted with
// factors[mode] becomes stale and is dropped.
func (e *Engine) FactorUpdated(mode int) {
	for _, t := range e.all {
		if t.vals != nil && t.dependsOn(mode) {
			e.free(t)
		}
	}
}

// invalidateAll drops every cached value matrix (used when R changes).
func (e *Engine) invalidateAll() {
	for _, t := range e.all {
		if t.vals != nil {
			e.free(t)
		}
	}
}

func (e *Engine) free(t *node) {
	if !e.retain {
		e.curValB.Add(-int64(t.nelem) * int64(e.rank) * 8)
	}
	t.vals = nil
	e.evicts.Add(1)
}

func (e *Engine) alloc(t *node, r int) {
	need := t.nelem * r
	if e.retain {
		if cap(t.buf) >= need {
			// Reuse the retained storage through the node's own matrix
			// header: no allocation, bytes already counted.
			t.mat = dense.Matrix{Rows: t.nelem, Cols: r, Data: t.buf[:need]}
			t.vals = &t.mat
			return
		}
		// Replacing retained storage (rank grew): swap the accounting.
		e.curValB.Add(-int64(cap(t.buf)) * 8)
	}
	t.vals = dense.New(t.nelem, r)
	if e.retain {
		t.buf = t.vals.Data
	}
	cur := e.curValB.Add(int64(need) * 8)
	if cur > e.peakValB.Load() {
		e.peakValB.Store(cur)
	}
}

// MTTKRP implements engine.Engine.
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.x.Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	r := out.Cols
	if e.rank != r {
		e.invalidateAll()
		e.rank = r
	}
	leaf := e.leaves[mode]
	e.ensure(leaf.parent, factors, r)
	// The leaf contraction is fused with the output scatter: each leaf
	// element's row is accumulated straight into the output row of its mode
	// index instead of being materialized and then copied. Mode indices
	// absent from the tensor keep zero rows. The accumulation backend is
	// resolved per mode: element-parallel in-place scatter (lock-free but
	// starved when the mode has few distinct indices), or entry-parallel
	// privatized accumulation with a folding reduction.
	workers := e.workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	if e.res.Resolve(mode, out.Rows, int64(len(leaf.redElems)), r, workers) == accum.Privatize {
		e.computePrivatized(leaf, factors, r, out, workers)
	} else {
		out.Zero()
		e.compute(leaf, factors, r, out, leaf.inds[0])
	}
	e.ctr.Observe(start)
	return nil
}

// ensure materializes t.vals (recursively materializing ancestors first),
// counting cache hits and (re)build misses and spanning each rebuild.
func (e *Engine) ensure(t *node, factors []*dense.Matrix, r int) {
	if t.parent == nil {
		return
	}
	if t.vals != nil {
		e.hits.Add(1)
		return
	}
	e.misses.Add(1)
	p := t.parent
	e.ensure(p, factors, r)
	e.alloc(t, r)
	if e.tr != nil {
		sp := e.tr.StartSpan(e.spanNames[t.id], 0)
		e.compute(t, factors, r, t.vals, nil)
		sp.End()
		return
	}
	e.compute(t, factors, r, t.vals, nil)
}

// compute evaluates the contraction of the parent's semi-sparse tensor with
// the delta-mode factor rows, reduced into t's elements. The inner loop is
// the paper's TTM-through-Hadamard kernel, run through the shared fused
// primitives: for each parent element, its R-row (or the broadcast scalar
// nonzero value when the parent is the root) is multiplied by one factor
// row per removed mode and accumulated into the owning destination row in
// a single pass, with no temporary R-vector. When scatter is nil, element
// i's row is dst.Row(i) (materializing t.vals); otherwise it is
// dst.Row(scatter[i]) (the fused leaf-to-output scatter). Elements are
// scheduled in reduction-weighted chunks; distinct elements own distinct
// destination rows, so no synchronization is needed.
func (e *Engine) compute(t *node, factors []*dense.Matrix, r int, dst *dense.Matrix, scatter []tensor.Index) {
	p := t.parent
	for k, d := range t.delta {
		t.facBuf[k] = factors[d]
	}
	e.curNode, e.curDst, e.curScatter, e.curFromRoot = t, dst, scatter, p.parent == nil
	par.ForChunks(t.chunks, e.workers, e.body)
	e.curNode, e.curDst, e.curScatter = nil, nil, nil
	e.ctr.AddOps(int64(p.nelem) * int64(len(t.delta)+1) * int64(r))
}

// runChunk processes one scheduled chunk of the current compute's child
// elements on the given worker.
func (e *Engine) runChunk(worker, lo, hi int) {
	t := e.curNode
	p := t.parent
	dst, scatter, fromRoot := e.curDst, e.curScatter, e.curFromRoot
	vals := e.x.Vals
	rows := e.rowsBuf[worker]
	k := len(t.delta)
	for i := lo; i < hi; i++ {
		var out []float64
		if scatter == nil {
			out = dst.Row(i)
		} else {
			out = dst.Row(int(scatter[i]))
		}
		for j := range out {
			out[j] = 0
		}
		for ei := t.redPtr[i]; ei < t.redPtr[i+1]; ei++ {
			pe := int(t.redElems[ei])
			for kk := 0; kk < k; kk++ {
				rows[kk] = t.facBuf[kk].Row(int(t.deltaIdx[kk][pe]))
			}
			if fromRoot {
				// Single-pass v · Πf accumulate; with a single removed
				// mode this is a bare out[j] += v·f[j] (no broadcast).
				kernel.HadamardAccum(out, vals[pe], rows[:k])
			} else {
				kernel.HadamardAccumVec(out, p.vals.Row(pe), rows[:k])
			}
		}
	}
}

// computePrivatized is the privatized-accumulation variant of the fused
// leaf contraction: workers split the flattened reduction entries (full
// parallel width even when the leaf has fewer elements than workers) and
// accumulate into per-worker output copies, folded into out by a parallel
// tiled reduction. Mirrors compute's call-scoped-field pattern so the
// steady state stays allocation-free.
func (e *Engine) computePrivatized(t *node, factors []*dense.Matrix, r int, out *dense.Matrix, workers int) {
	p := t.parent
	for k, d := range t.delta {
		t.facBuf[k] = factors[d]
	}
	e.pool.Begin(out.Rows, r)
	e.curNode, e.curScatter, e.curFromRoot = t, t.inds[0], p.parent == nil
	par.ForWorker(len(t.redElems), e.workers, e.privBody)
	e.pool.Reduce(out, workers)
	e.curNode, e.curScatter = nil, nil
	e.ctr.AddOps(int64(p.nelem) * int64(len(t.delta)+1) * int64(r))
}

// runPrivChunk processes reduction entries [lo, hi) of the current
// privatized leaf contraction on the given worker. The owning leaf element
// of entry lo is found by binary search on the reduction pointer (hand
// rolled: sort.Search's closure would allocate in this zero-alloc path) and
// then advanced in step with the entries.
func (e *Engine) runPrivChunk(worker, lo, hi int) {
	t := e.curNode
	p := t.parent
	scatter, fromRoot := e.curScatter, e.curFromRoot
	vals := e.x.Vals
	rows := e.rowsBuf[worker]
	k := len(t.delta)
	priv := e.pool.Acquire(worker)
	// Greatest i with redPtr[i] <= lo: invariant redPtr[a] <= lo < redPtr[b].
	a, b := 0, len(t.redPtr)-1
	for a+1 < b {
		mid := int(uint(a+b) >> 1)
		if t.redPtr[mid] <= int64(lo) {
			a = mid
		} else {
			b = mid
		}
	}
	i := a
	for ei := lo; ei < hi; ei++ {
		for int64(ei) >= t.redPtr[i+1] {
			i++
		}
		out := priv.Row(int(scatter[i]))
		pe := int(t.redElems[ei])
		for kk := 0; kk < k; kk++ {
			rows[kk] = t.facBuf[kk].Row(int(t.deltaIdx[kk][pe]))
		}
		if fromRoot {
			kernel.HadamardAccum(out, vals[pe], rows[:k])
		} else {
			kernel.HadamardAccumVec(out, p.vals.Row(pe), rows[:k])
		}
	}
}

// NodeElemCounts returns, for every node in pre-order, its mode range and
// the number of distinct projected tuples — the quantities the cost model
// estimates. Used to validate the model against the exact symbolic phase.
func (e *Engine) NodeElemCounts() []NodeCount {
	out := make([]NodeCount, 0, len(e.all))
	for _, t := range e.all {
		out = append(out, NodeCount{Lo: t.lo, Hi: t.hi, Elems: t.nelem})
	}
	return out
}

// NodeCount reports the element count of one tree node.
type NodeCount struct {
	Lo, Hi int
	Elems  int
}

// PerIterationOps returns the exact number of Hadamard op units one full
// CP-ALS iteration (one MTTKRP per mode, in order, with the standard
// invalidation pattern) costs at rank r: every non-root node is computed
// exactly once per iteration, costing parentElems·(|δ|+1)·r.
func (e *Engine) PerIterationOps(r int) int64 {
	var ops int64
	for _, t := range e.all {
		if t.parent == nil {
			continue
		}
		ops += int64(t.parent.nelem) * int64(len(t.delta)+1) * int64(r)
	}
	return ops
}

var _ engine.Engine = (*Engine)(nil)

// Describe returns a short human-readable summary of the tree: node count,
// depth, and per-node element counts relative to nnz.
func (e *Engine) Describe() string {
	return fmt.Sprintf("%s depth=%d nodes=%d nnz=%d", e.strat, e.strat.Depth(), e.strat.CountNodes(), e.x.NNZ())
}
