package memo

import (
	"adatm/internal/tensor"
)

// sortByKeys stable-sorts perm (a permutation of parent element ids) by the
// lexicographic order of the given key columns using LSD radix passes: keys
// are processed from least to most significant, each with a stable counting
// sort. Small modes (< 2^16) take one pass over dim buckets; larger modes
// take two 16-bit passes. This replaces comparison sorting in the symbolic
// phase, cutting its cost from O(E·log E·K) comparisons to O(E·K) moves.
func sortByKeys(perm []int32, keys [][]tensor.Index, dims []int) {
	if len(perm) < 2 {
		return
	}
	src := perm
	dst := make([]int32, len(perm))
	for k := len(keys) - 1; k >= 0; k-- {
		key := keys[k]
		dim := dims[k]
		if dim <= 1<<16 {
			countingPass(src, dst, func(e int32) uint32 { return uint32(key[e]) }, dim)
			src, dst = dst, src
		} else {
			countingPass(src, dst, func(e int32) uint32 { return uint32(key[e]) & 0xffff }, 1<<16)
			src, dst = dst, src
			countingPass(src, dst, func(e int32) uint32 { return uint32(key[e]) >> 16 }, (dim>>16)+1)
			src, dst = dst, src
		}
	}
	// After an odd number of passes the result lives in the scratch buffer;
	// copy it back into the caller's slice.
	if &src[0] != &perm[0] {
		copy(perm, src)
	}
}

// countingPass stable-sorts src into dst by bucket(e) over nbuckets.
func countingPass(src, dst []int32, bucket func(int32) uint32, nbuckets int) {
	counts := make([]int32, nbuckets+1)
	for _, e := range src {
		counts[bucket(e)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	for _, e := range src {
		b := bucket(e)
		dst[counts[b]] = e
		counts[b]++
	}
}
