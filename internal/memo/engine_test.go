package memo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func randomFactors(x *tensor.COO, r int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*dense.Matrix, x.Order())
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], r, rng)
	}
	return fs
}

func strategiesFor(n int) map[string]*Strategy {
	out := map[string]*Strategy{
		"flat":     Flat(n),
		"balanced": Balanced(n),
	}
	if n >= 3 {
		out["2group"] = TwoGroup(n, n/2)
	}
	return out
}

func TestSymbolicInvariants(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 800, 0.8, 51)
	e, err := New(x, Balanced(4), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.root.nelem != x.NNZ() {
		t.Fatalf("root elems = %d, want nnz %d", e.root.nelem, x.NNZ())
	}
	for _, nd := range e.all {
		if nd.parent == nil {
			continue
		}
		// Reduction sets partition [0, parent.nelem).
		if nd.redPtr[0] != 0 || nd.redPtr[len(nd.redPtr)-1] != int64(nd.parent.nelem) {
			t.Fatalf("node [%d,%d): reduction pointers do not span the parent", nd.lo, nd.hi)
		}
		if len(nd.redElems) != nd.parent.nelem {
			t.Fatalf("node [%d,%d): redElems length %d != parent elems %d", nd.lo, nd.hi, len(nd.redElems), nd.parent.nelem)
		}
		seen := make([]bool, nd.parent.nelem)
		for _, pe := range nd.redElems {
			if seen[pe] {
				t.Fatalf("node [%d,%d): parent element %d appears twice", nd.lo, nd.hi, pe)
			}
			seen[pe] = true
		}
		// Projected tuples strictly increasing (sorted + deduplicated).
		for i := 1; i < nd.nelem; i++ {
			cmp := 0
			for _, ind := range nd.inds {
				if ind[i-1] != ind[i] {
					if ind[i-1] < ind[i] {
						cmp = -1
					} else {
						cmp = 1
					}
					break
				}
			}
			if cmp >= 0 {
				t.Fatalf("node [%d,%d): tuples not strictly increasing at %d", nd.lo, nd.hi, i)
			}
		}
		// Each element's tuple matches every parent element in its set.
		for i := 0; i < nd.nelem; i++ {
			for e := nd.redPtr[i]; e < nd.redPtr[i+1]; e++ {
				pe := nd.redElems[e]
				for k, m := 0, nd.lo; m < nd.hi; k, m = k+1, m+1 {
					if nd.inds[k][i] != nd.parent.inds[m-nd.parent.lo][pe] {
						t.Fatalf("node [%d,%d): element %d reduction mismatch", nd.lo, nd.hi, i)
					}
				}
			}
		}
	}
}

func TestMatchesDenseReferenceAllStrategies(t *testing.T) {
	x := tensor.RandomUniform(4, 6, 80, 52)
	fs := randomFactors(x, 5, 53)
	for name, s := range strategiesFor(4) {
		e, err := New(x, s, 2, name)
		if err != nil {
			t.Fatal(err)
		}
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 5)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRP(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-9 {
				t.Errorf("%s mode %d: max diff %g vs dense reference", name, mode, d)
			}
		}
	}
}

func TestHigherOrderMatchesSparseReference(t *testing.T) {
	for _, order := range []int{3, 4, 5, 6, 8} {
		x := tensor.RandomClustered(order, 15, 700, 0.9, int64(order*11))
		fs := randomFactors(x, 8, int64(order*13))
		for name, s := range strategiesFor(order) {
			e, err := New(x, s, 4, name)
			if err != nil {
				t.Fatal(err)
			}
			for mode := 0; mode < order; mode++ {
				out := dense.New(x.Dims[mode], 8)
				e.MTTKRP(mode, fs, out)
				want := ref.MTTKRPSparse(x, mode, fs)
				if d := out.MaxAbsDiff(want); d > 1e-8 {
					t.Errorf("order %d %s mode %d: max diff %g", order, name, mode, d)
				}
			}
		}
	}
}

// The critical cache-coherence test: interleave factor updates with MTTKRPs
// the way CP-ALS does and verify no stale intermediate is ever used.
func TestInvalidationUnderALSSweep(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 600, 0.7, 61)
	fs := randomFactors(x, 6, 62)
	rng := rand.New(rand.NewSource(63))
	e, err := New(x, Balanced(4), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 6)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Fatalf("iter %d mode %d: stale cache, diff %g", iter, mode, d)
			}
			// Overwrite the factor like the ALS update would.
			fs[mode] = dense.Random(x.Dims[mode], 6, rng)
			e.FactorUpdated(mode)
		}
	}
}

// Changing the rank between calls must drop every cached value matrix.
func TestRankChangeInvalidates(t *testing.T) {
	x := tensor.RandomUniform(3, 8, 100, 64)
	e, err := New(x, Balanced(3), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	fs4 := randomFactors(x, 4, 65)
	out4 := dense.New(x.Dims[0], 4)
	e.MTTKRP(0, fs4, out4)
	fs7 := randomFactors(x, 7, 66)
	out7 := dense.New(x.Dims[1], 7)
	e.MTTKRP(1, fs7, out7)
	want := ref.MTTKRPSparse(x, 1, fs7)
	if d := out7.MaxAbsDiff(want); d > 1e-8 {
		t.Errorf("rank change left stale caches: diff %g", d)
	}
}

func TestOpsAccountingMatchesPrediction(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 500, 0.8, 67)
	fs := randomFactors(x, 8, 68)
	for name, s := range strategiesFor(4) {
		e, err := New(x, s, 1, name)
		if err != nil {
			t.Fatal(err)
		}
		// One full sweep with the ALS protocol: every non-root node is
		// materialized exactly once.
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 8)
			e.MTTKRP(mode, fs, out)
			e.FactorUpdated(mode)
		}
		if got, want := e.Stats().HadamardOps, e.PerIterationOps(8); got != want {
			t.Errorf("%s: measured ops %d != predicted %d", name, got, want)
		}
	}
}

// A second sweep costs exactly the same as the first: steady-state reuse.
func TestSteadyStateOpsPerIteration(t *testing.T) {
	x := tensor.RandomClustered(5, 8, 400, 0.9, 69)
	fs := randomFactors(x, 4, 70)
	e, err := New(x, Balanced(5), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	sweep := func() int64 {
		e.ResetStats()
		for mode := 0; mode < 5; mode++ {
			out := dense.New(x.Dims[mode], 4)
			e.MTTKRP(mode, fs, out)
			e.FactorUpdated(mode)
		}
		return e.Stats().HadamardOps
	}
	first, second := sweep(), sweep()
	if first != second {
		t.Errorf("sweep ops differ: %d then %d", first, second)
	}
}

// Repeated MTTKRP on the same mode without factor updates must reuse the
// cache (no additional ops).
func TestReuseWithoutUpdates(t *testing.T) {
	x := tensor.RandomUniform(4, 8, 300, 71)
	fs := randomFactors(x, 4, 72)
	e, err := New(x, Balanced(4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	out := dense.New(x.Dims[2], 4)
	e.MTTKRP(2, fs, out)
	opsAfterFirst := e.Stats().HadamardOps
	e.MTTKRP(2, fs, out)
	// Every ancestor stays cached; only the fused leaf-to-output contraction
	// re-runs (leaves are never materialized, so their work is repeated per
	// call by design).
	leaf := e.leaves[2]
	leafOps := int64(leaf.parent.nelem) * int64(len(leaf.delta)+1) * 4
	if got := e.Stats().HadamardOps - opsAfterFirst; got != leafOps {
		t.Errorf("second identical MTTKRP performed %d extra ops, want leaf-only %d", got, leafOps)
	}
}

func TestPeakValueBytesBounded(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 500, 0.5, 73)
	fs := randomFactors(x, 8, 74)
	e, err := New(x, Balanced(4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for mode := 0; mode < 4; mode++ {
		out := dense.New(x.Dims[mode], 8)
		e.MTTKRP(mode, fs, out)
		e.FactorUpdated(mode)
	}
	// Upper bound: every node materialized simultaneously.
	var bound int64
	for _, nd := range e.all {
		if nd.parent != nil {
			bound += int64(nd.nelem) * 8 * 8
		}
	}
	s := e.Stats()
	if s.PeakValueBytes <= 0 || s.PeakValueBytes > bound {
		t.Errorf("peak %d outside (0, %d]", s.PeakValueBytes, bound)
	}
	if s.IndexBytes <= 0 {
		t.Error("index bytes not accounted")
	}
}

func TestNodeElemCounts(t *testing.T) {
	x := tensor.RandomClustered(3, 6, 300, 1.0, 75)
	e, err := New(x, Balanced(3), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	counts := e.NodeElemCounts()
	if counts[0].Elems != x.NNZ() {
		t.Errorf("root count %d != nnz %d", counts[0].Elems, x.NNZ())
	}
	// Leaf counts equal the number of distinct indices per mode.
	for _, c := range counts {
		if c.Hi-c.Lo != 1 {
			continue
		}
		set := map[tensor.Index]struct{}{}
		for _, i := range x.Inds[c.Lo] {
			set[i] = struct{}{}
		}
		if c.Elems != len(set) {
			t.Errorf("leaf %d: %d elems, want %d distinct", c.Lo, c.Elems, len(set))
		}
	}
}

func TestScatterLeavesAbsentRowsZero(t *testing.T) {
	x := tensor.NewCOO([]int{5, 3, 3}, 2)
	x.Append([]tensor.Index{0, 1, 2}, 1.0)
	x.Append([]tensor.Index{4, 0, 1}, 2.0)
	fs := randomFactors(x, 3, 76)
	e, err := New(x, Balanced(3), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	out := dense.New(5, 3)
	out.Fill(9) // stale garbage
	e.MTTKRP(0, fs, out)
	for _, i := range []int{1, 2, 3} {
		for j := 0; j < 3; j++ {
			if out.At(i, j) != 0 {
				t.Fatalf("row %d not zeroed: %v", i, out.Row(i))
			}
		}
	}
}

func TestInvalidStrategyRejected(t *testing.T) {
	x := tensor.RandomUniform(3, 5, 20, 77)
	if _, err := New(x, Flat(4), 1, ""); err == nil {
		t.Fatal("New accepted a strategy of the wrong order")
	}
}

func TestParallelConsistency(t *testing.T) {
	x := tensor.RandomClustered(5, 12, 2000, 0.8, 78)
	fs := randomFactors(x, 16, 79)
	a, _ := New(x, Balanced(5), 1, "")
	b, _ := New(x, Balanced(5), 8, "")
	for mode := 0; mode < 5; mode++ {
		oa := dense.New(x.Dims[mode], 16)
		ob := dense.New(x.Dims[mode], 16)
		a.MTTKRP(mode, fs, oa)
		b.MTTKRP(mode, fs, ob)
		if d := oa.MaxAbsDiff(ob); d > 1e-9 {
			t.Errorf("mode %d: parallel differs by %g", mode, d)
		}
	}
}

// Property: every strategy produces the same MTTKRP as the sparse reference
// on random tensors of random order, shape, and skew.
func TestEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(4)
		x := tensor.RandomClustered(order, 5+rng.Intn(8), 150+rng.Intn(200), rng.Float64()*1.2, seed)
		fs := randomFactors(x, 3+rng.Intn(5), seed+1)
		r := fs[0].Cols
		mode := rng.Intn(order)
		want := ref.MTTKRPSparse(x, mode, fs)
		for name, s := range strategiesFor(order) {
			e, err := New(x, s, 2, name)
			if err != nil {
				return false
			}
			out := dense.New(x.Dims[mode], r)
			e.MTTKRP(mode, fs, out)
			if out.MaxAbsDiff(want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
