package memo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func TestPermutedMatchesReference(t *testing.T) {
	x := tensor.RandomClustered(4, 12, 600, 0.8, 401)
	fs := randomFactors(x, 5, 402)
	perm := []int{2, 0, 3, 1}
	e, err := NewPermuted(x, Balanced(4), perm, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for mode := 0; mode < 4; mode++ {
		out := dense.New(x.Dims[mode], 5)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-8 {
			t.Errorf("mode %d: diff %g", mode, d)
		}
	}
}

func TestPermutedSweepProtocol(t *testing.T) {
	x := tensor.RandomClustered(5, 10, 500, 0.7, 403)
	fs := randomFactors(x, 4, 404)
	rng := rand.New(rand.NewSource(405))
	perm := []int{4, 1, 3, 0, 2}
	e, err := NewPermuted(x, Balanced(5), perm, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	order := e.SweepOrder()
	for iter := 0; iter < 2; iter++ {
		for _, mode := range order {
			out := dense.New(x.Dims[mode], 4)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Fatalf("iter %d mode %d: diff %g", iter, mode, d)
			}
			fs[mode] = dense.Random(x.Dims[mode], 4, rng)
			e.FactorUpdated(mode)
		}
	}
}

// Sweeping in the permuted order must keep the once-per-iteration property:
// steady-state per-sweep ops equal PerIterationOps.
func TestPermutedOncePerIteration(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 400, 0.9, 406)
	fs := randomFactors(x, 8, 407)
	perm := []int{3, 1, 0, 2}
	e, err := NewPermuted(x, Balanced(4), perm, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(order []int) int64 {
		e.ResetStats()
		for _, mode := range order {
			out := dense.New(x.Dims[mode], 8)
			e.MTTKRP(mode, fs, out)
			e.FactorUpdated(mode)
		}
		return e.Stats().HadamardOps
	}
	sweep(e.SweepOrder()) // fill caches
	got := sweep(e.SweepOrder())
	if want := e.PerIterationOps(8); got != want {
		t.Errorf("permuted sweep ops %d != once-per-node %d", got, want)
	}
	// Sweeping in the WRONG (natural) order must cost at least as much.
	natural := []int{0, 1, 2, 3}
	sweep(natural)
	if wrong := sweep(natural); wrong < got {
		t.Errorf("natural-order sweep %d unexpectedly cheaper than permuted %d", wrong, got)
	}
}

func TestPermutedValidation(t *testing.T) {
	x := tensor.RandomUniform(3, 6, 50, 408)
	bad := [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}, {-1, 0, 1}}
	for _, perm := range bad {
		if _, err := NewPermuted(x, Balanced(3), perm, 1, ""); err == nil {
			t.Errorf("permutation %v accepted", perm)
		}
	}
}

func TestPermutedIdentityEqualsPlain(t *testing.T) {
	x := tensor.RandomClustered(4, 10, 300, 0.6, 409)
	fs := randomFactors(x, 4, 410)
	plain, _ := New(x, Balanced(4), 1, "")
	permuted, err := NewPermuted(x, Balanced(4), []int{0, 1, 2, 3}, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for mode := 0; mode < 4; mode++ {
		a := dense.New(x.Dims[mode], 4)
		b := dense.New(x.Dims[mode], 4)
		plain.MTTKRP(mode, fs, a)
		permuted.MTTKRP(mode, fs, b)
		if d := a.MaxAbsDiff(b); d > 1e-12 {
			t.Errorf("mode %d: identity permutation differs by %g", mode, d)
		}
	}
}

// Property: random permutations with random strategies stay correct under
// the permuted-sweep ALS protocol.
func TestPermutedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(4)
		perm := rng.Perm(order)
		x := tensor.RandomClustered(order, 6+rng.Intn(8), 200, rng.Float64(), seed)
		fs := make([]*dense.Matrix, order)
		for m := range fs {
			fs[m] = dense.Random(x.Dims[m], 3, rng)
		}
		e, err := NewPermuted(x, randomBinary(order, rng), perm, 2, "")
		if err != nil {
			return false
		}
		for _, mode := range e.SweepOrder() {
			out := dense.New(x.Dims[mode], 3)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if out.MaxAbsDiff(want) > 1e-8 {
				return false
			}
			fs[mode] = dense.Random(x.Dims[mode], 3, rng)
			e.FactorUpdated(mode)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
