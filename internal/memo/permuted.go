package memo

import (
	"fmt"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/tensor"
)

// Permuted wraps a memoized engine built over a mode-permuted copy of the
// tensor, translating between the caller's (original) mode numbering and
// the permuted numbering. This unlocks the remaining dimension of the
// strategy space: grouping modes that are *not* adjacent in the original
// ordering (strategy trees always cover contiguous ranges, so the grouping
// is chosen by permuting first).
//
// For the once-per-iteration reuse property to hold, CP-ALS must sweep the
// modes in the permuted order — pass SweepOrder to the driver's ModeOrder
// option.
type Permuted struct {
	inner *Engine
	perm  []int // perm[p] = original mode at permuted position p
	pos   []int // pos[m]  = permuted position of original mode m
	// scratch for the factor-reordering view
	pfactors []*dense.Matrix
}

// NewPermuted builds a memoized engine over x with the given mode
// permutation (perm[p] is the original mode placed at position p) and a
// strategy tree over the permuted positions.
func NewPermuted(x *tensor.COO, strat *Strategy, perm []int, workers int, name string) (*Permuted, error) {
	n := x.Order()
	if len(perm) != n {
		return nil, fmt.Errorf("memo: permutation of length %d for order-%d tensor", len(perm), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for p, m := range perm {
		if m < 0 || m >= n || pos[m] != -1 {
			return nil, fmt.Errorf("memo: invalid mode permutation %v", perm)
		}
		pos[m] = p
	}
	if name == "" {
		name = "memo-perm"
	}
	px := x.PermuteModes(perm)
	inner, err := New(px, strat, workers, name)
	if err != nil {
		return nil, err
	}
	return &Permuted{
		inner:    inner,
		perm:     append([]int(nil), perm...),
		pos:      pos,
		pfactors: make([]*dense.Matrix, n),
	}, nil
}

// SweepOrder returns the original-mode order CP-ALS should use so that
// every tree node is materialized exactly once per iteration (the permuted
// positions visited 0,1,…,N−1).
func (e *Permuted) SweepOrder() []int { return append([]int(nil), e.perm...) }

// Permutation returns perm (original mode at each permuted position).
func (e *Permuted) Permutation() []int { return append([]int(nil), e.perm...) }

// Strategy returns the inner strategy tree (over permuted positions).
func (e *Permuted) Strategy() *Strategy { return e.inner.Strategy() }

// Name implements engine.Engine.
func (e *Permuted) Name() string { return e.inner.Name() }

// Stats implements engine.Engine.
func (e *Permuted) Stats() engine.Stats { return e.inner.Stats() }

// ResetStats implements engine.Engine.
func (e *Permuted) ResetStats() { e.inner.ResetStats() }

// FactorUpdated implements engine.Engine.
func (e *Permuted) FactorUpdated(mode int) { e.inner.FactorUpdated(e.pos[mode]) }

// MTTKRP implements engine.Engine: mode and factors are in the original
// numbering.
func (e *Permuted) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if mode < 0 || mode >= len(e.perm) {
		return fmt.Errorf("memo: MTTKRP mode %d out of range for order-%d tensor", mode, len(e.perm))
	}
	if len(factors) != len(e.perm) {
		return fmt.Errorf("memo: MTTKRP got %d factors for order-%d tensor", len(factors), len(e.perm))
	}
	for p, m := range e.perm {
		e.pfactors[p] = factors[m]
	}
	return e.inner.MTTKRP(e.pos[mode], e.pfactors, out)
}

// PerIterationOps forwards to the inner engine.
func (e *Permuted) PerIterationOps(r int) int64 { return e.inner.PerIterationOps(r) }

var _ engine.Engine = (*Permuted)(nil)
