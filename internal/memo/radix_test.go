package memo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adatm/internal/tensor"
)

// referenceSort applies the comparison-based lexicographic sort the radix
// version replaced.
func referenceSort(perm []int32, keys [][]tensor.Index) {
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		for _, key := range keys {
			if key[ka] != key[kb] {
				return key[ka] < key[kb]
			}
		}
		return false
	})
}

func TestSortByKeysMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		nkeys := 1 + rng.Intn(4)
		dims := make([]int, nkeys)
		keys := make([][]tensor.Index, nkeys)
		for k := range keys {
			dims[k] = 1 + rng.Intn(1000)
			col := make([]tensor.Index, n)
			for i := range col {
				col[i] = tensor.Index(rng.Intn(dims[k]))
			}
			keys[k] = col
		}
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(i)
			b[i] = int32(i)
		}
		sortByKeys(a, keys, dims)
		referenceSort(b, keys)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: mismatch at %d: %d vs %d", trial, i, a[i], b[i])
			}
		}
	}
}

func TestSortByKeysLargeDims(t *testing.T) {
	// Dims above 2^16 exercise the two-pass split.
	rng := rand.New(rand.NewSource(2))
	n := 2000
	dim := 1 << 20
	key := make([]tensor.Index, n)
	for i := range key {
		key[i] = tensor.Index(rng.Intn(dim))
	}
	perm := make([]int32, n)
	ref := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
		ref[i] = int32(i)
	}
	sortByKeys(perm, [][]tensor.Index{key}, []int{dim})
	referenceSort(ref, [][]tensor.Index{key})
	for i := range perm {
		if perm[i] != ref[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSortByKeysStability(t *testing.T) {
	// Equal keys must preserve input order (stability drives the grouped
	// reduction sets).
	key := []tensor.Index{3, 1, 3, 1, 3}
	perm := []int32{0, 1, 2, 3, 4}
	sortByKeys(perm, [][]tensor.Index{key}, []int{4})
	want := []int32{1, 3, 0, 2, 4}
	for i := range perm {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestSortByKeysTrivial(t *testing.T) {
	sortByKeys(nil, nil, nil)
	one := []int32{0}
	sortByKeys(one, [][]tensor.Index{{5}}, []int{10})
	if one[0] != 0 {
		t.Fatal("single-element sort changed the slice")
	}
}

// Property: sortByKeys output is a permutation sorted by the key order.
func TestSortByKeysProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		dims := []int{1 + rng.Intn(70000), 1 + rng.Intn(50)}
		keys := [][]tensor.Index{make([]tensor.Index, n), make([]tensor.Index, n)}
		for i := 0; i < n; i++ {
			keys[0][i] = tensor.Index(rng.Intn(dims[0]))
			keys[1][i] = tensor.Index(rng.Intn(dims[1]))
		}
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		sortByKeys(perm, keys, dims)
		seen := make([]bool, n)
		for _, p := range perm {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		for i := 1; i < n; i++ {
			a, b := perm[i-1], perm[i]
			if keys[0][a] > keys[0][b] {
				return false
			}
			if keys[0][a] == keys[0][b] && keys[1][a] > keys[1][b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
