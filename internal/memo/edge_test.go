package memo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

// randomBinary builds a random contiguous binary strategy over [0, n).
func randomBinary(n int, rng *rand.Rand) *Strategy {
	var build func(lo, hi int) *Strategy
	build = func(lo, hi int) *Strategy {
		s := &Strategy{Lo: lo, Hi: hi}
		if hi-lo == 1 {
			return s
		}
		split := lo + 1 + rng.Intn(hi-lo-1)
		s.Children = []*Strategy{build(lo, split), build(split, hi)}
		return s
	}
	return build(0, n)
}

// Property: arbitrary binary trees (not just the named shapes) compute the
// correct MTTKRP under the full ALS protocol.
func TestRandomBinaryStrategyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(5)
		s := randomBinary(order, rng)
		if s.Validate(order) != nil {
			return false
		}
		x := tensor.RandomClustered(order, 6+rng.Intn(8), 200, rng.Float64(), seed)
		fs := make([]*dense.Matrix, order)
		for m := range fs {
			fs[m] = dense.Random(x.Dims[m], 4, rng)
		}
		e, err := New(x, s, 2, "rand-binary")
		if err != nil {
			return false
		}
		for iter := 0; iter < 2; iter++ {
			for mode := 0; mode < order; mode++ {
				out := dense.New(x.Dims[mode], 4)
				e.MTTKRP(mode, fs, out)
				want := ref.MTTKRPSparse(x, mode, fs)
				if out.MaxAbsDiff(want) > 1e-8 {
					return false
				}
				fs[mode] = dense.Random(x.Dims[mode], 4, rng)
				e.FactorUpdated(mode)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestOrderTwoTensor(t *testing.T) {
	// Order 2 (a sparse matrix) is the degenerate base case: the only
	// strategies are flat == balanced == one split.
	x := tensor.RandomUniform(2, 12, 80, 211)
	fs := []*dense.Matrix{
		dense.Random(12, 3, rand.New(rand.NewSource(1))),
		dense.Random(12, 3, rand.New(rand.NewSource(2))),
	}
	for _, s := range []*Strategy{Flat(2), Balanced(2)} {
		e, err := New(x, s, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		for mode := 0; mode < 2; mode++ {
			out := dense.New(12, 3)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-9 {
				t.Errorf("%s mode %d: diff %g", s, mode, d)
			}
		}
	}
}

func TestTensorWithEmptySlices(t *testing.T) {
	// Mode 0 uses only indices {0, 7}; the symbolic phase and leaf scatter
	// must handle the holes.
	x := tensor.NewCOO([]int{8, 3, 3}, 3)
	x.Append([]tensor.Index{0, 0, 0}, 1)
	x.Append([]tensor.Index{7, 1, 2}, 2)
	x.Append([]tensor.Index{7, 2, 1}, 3)
	rng := rand.New(rand.NewSource(3))
	fs := []*dense.Matrix{
		dense.Random(8, 4, rng), dense.Random(3, 4, rng), dense.Random(3, 4, rng),
	}
	e, err := New(x, Balanced(3), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for mode := 0; mode < 3; mode++ {
		out := dense.New(x.Dims[mode], 4)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRP(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-10 {
			t.Errorf("mode %d: diff %g", mode, d)
		}
	}
	if e.leaves[0].nelem != 2 {
		t.Errorf("leaf 0 has %d elements, want 2 distinct indices", e.leaves[0].nelem)
	}
}

func TestSingleNonzeroTensor(t *testing.T) {
	x := tensor.NewCOO([]int{4, 4, 4, 4}, 1)
	x.Append([]tensor.Index{1, 2, 3, 0}, 2.0)
	rng := rand.New(rand.NewSource(4))
	fs := make([]*dense.Matrix, 4)
	for m := range fs {
		fs[m] = dense.Random(4, 2, rng)
	}
	e, err := New(x, Balanced(4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	out := dense.New(4, 2)
	e.MTTKRP(2, fs, out)
	for j := 0; j < 2; j++ {
		want := 2.0 * fs[0].At(1, j) * fs[1].At(2, j) * fs[3].At(0, j)
		got := out.At(3, j)
		if d := got - want; d > 1e-12 || d < -1e-12 {
			t.Errorf("col %d: got %g want %g", j, got, want)
		}
	}
}

func TestWideFlatTreeHighOrder(t *testing.T) {
	// Order 10 flat tree: 10 leaves under the root, each with |δ| = 9.
	x := tensor.RandomClustered(10, 6, 300, 0.5, 223)
	rng := rand.New(rand.NewSource(5))
	fs := make([]*dense.Matrix, 10)
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], 3, rng)
	}
	e, err := New(x, Flat(10), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []int{0, 5, 9} {
		out := dense.New(x.Dims[mode], 3)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("mode %d: diff %g", mode, d)
		}
	}
}
