package memo

import (
	"fmt"
	"testing"

	"adatm/internal/dense"
	"adatm/internal/tensor"
)

func benchTensor(order int) *tensor.COO {
	return tensor.RandomClustered(order, 4096, 100000, 0.8, int64(order))
}

func BenchmarkSymbolicBuild(b *testing.B) {
	for _, order := range []int{4, 6, 8} {
		x := benchTensor(order)
		for _, s := range []struct {
			name  string
			strat *Strategy
		}{{"flat", Flat(order)}, {"balanced", Balanced(order)}} {
			b.Run(fmt.Sprintf("order%d/%s", order, s.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := New(x, s.strat, 0, ""); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(x.NNZ()), "nnz")
			})
		}
	}
}

func BenchmarkNumericSweep(b *testing.B) {
	for _, order := range []int{4, 6} {
		x := benchTensor(order)
		fs := randomFactors(x, 16, 5)
		for _, s := range []struct {
			name  string
			strat *Strategy
		}{{"flat", Flat(order)}, {"balanced", Balanced(order)}} {
			e, err := New(x, s.strat, 0, "")
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("order%d/%s", order, s.name), func(b *testing.B) {
				out := dense.New(x.Dims[0], 16)
				for i := 0; i < b.N; i++ {
					for mode := 0; mode < order; mode++ {
						e.MTTKRP(mode, fs, out)
						e.FactorUpdated(mode)
					}
				}
			})
		}
	}
}

func BenchmarkSortByKeys(b *testing.B) {
	x := benchTensor(4)
	keys := [][]tensor.Index{x.Inds[0], x.Inds[1]}
	dims := []int{x.Dims[0], x.Dims[1]}
	perm := make([]int32, x.NNZ())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range perm {
			perm[j] = int32(j)
		}
		sortByKeys(perm, keys, dims)
	}
	b.ReportMetric(float64(x.NNZ()), "keys")
}
