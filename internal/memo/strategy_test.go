package memo

import (
	"testing"
	"testing/quick"
)

func TestFlatShape(t *testing.T) {
	s := Flat(5)
	if err := s.Validate(5); err != nil {
		t.Fatal(err)
	}
	if len(s.Children) != 5 || s.Depth() != 2 || s.CountNodes() != 6 {
		t.Errorf("flat(5): children=%d depth=%d nodes=%d", len(s.Children), s.Depth(), s.CountNodes())
	}
}

func TestTwoGroupShape(t *testing.T) {
	s := TwoGroup(6, 2)
	if err := s.Validate(6); err != nil {
		t.Fatal(err)
	}
	if len(s.Children) != 2 {
		t.Fatalf("children = %d", len(s.Children))
	}
	if s.Children[0].Span() != 2 || s.Children[1].Span() != 4 {
		t.Errorf("group spans: %d, %d", s.Children[0].Span(), s.Children[1].Span())
	}
	if s.Depth() != 3 {
		t.Errorf("depth = %d, want 3", s.Depth())
	}
}

func TestTwoGroupSplitOneMakesLeafChild(t *testing.T) {
	s := TwoGroup(4, 1)
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	if !s.Children[0].IsLeaf() {
		t.Error("left group of span 1 should be a leaf")
	}
}

func TestTwoGroupBadSplitPanics(t *testing.T) {
	for _, split := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("split=%d: want panic", split)
				}
			}()
			TwoGroup(4, split)
		}()
	}
}

func TestBalancedShapes(t *testing.T) {
	for n := 2; n <= 12; n++ {
		s := Balanced(n)
		if err := s.Validate(n); err != nil {
			t.Fatalf("balanced(%d): %v", n, err)
		}
		// Balanced binary: depth == ceil(log2 n) + 1.
		depth := 1
		for span := 1; span < n; span *= 2 {
			depth++
		}
		if s.Depth() != depth {
			t.Errorf("balanced(%d): depth %d, want %d", n, s.Depth(), depth)
		}
		if got := countLeaves(s); got != n {
			t.Errorf("balanced(%d): %d leaves", n, got)
		}
	}
}

func countLeaves(s *Strategy) int {
	if s.IsLeaf() {
		return 1
	}
	n := 0
	for _, c := range s.Children {
		n += countLeaves(c)
	}
	return n
}

func TestValidateRejectsBadTrees(t *testing.T) {
	cases := map[string]*Strategy{
		"wrong root range": {Lo: 1, Hi: 4},
		"single child": {Lo: 0, Hi: 3, Children: []*Strategy{
			{Lo: 0, Hi: 3, Children: []*Strategy{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 3}}},
		}},
		"gap": {Lo: 0, Hi: 3, Children: []*Strategy{
			{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3},
		}},
		"overlap": {Lo: 0, Hi: 3, Children: []*Strategy{
			{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3},
		}},
		"escape": {Lo: 0, Hi: 3, Children: []*Strategy{
			{Lo: 0, Hi: 1}, {Lo: 1, Hi: 4},
		}},
		"leaf with children": {Lo: 0, Hi: 2, Children: []*Strategy{
			{Lo: 0, Hi: 1, Children: []*Strategy{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}},
			{Lo: 1, Hi: 2},
		}},
		"incomplete": {Lo: 0, Hi: 4, Children: []*Strategy{
			{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2},
		}},
	}
	for name, s := range cases {
		n := 3
		if name == "incomplete" {
			n = 4
		}
		if err := s.Validate(n); err == nil {
			t.Errorf("%s: Validate accepted a malformed tree", name)
		}
	}
}

func TestBinaryFromSplitsMidpoint(t *testing.T) {
	s := BinaryFromSplits(4, func(lo, hi int) int { return (lo + hi) / 2 })
	if !s.Equal(Balanced(4)) {
		t.Errorf("midpoint splits != balanced: %s vs %s", s, Balanced(4))
	}
}

func TestBinaryFromSplitsBadSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range split")
		}
	}()
	BinaryFromSplits(3, func(lo, hi int) int { return lo })
}

func TestStringRendering(t *testing.T) {
	if got := Balanced(4).String(); got != "([0-1] [2-3])" {
		t.Errorf("balanced(4) = %q", got)
	}
	if got := Flat(3).String(); got != "(0 1 2)" {
		t.Errorf("flat(3) = %q", got)
	}
	if got := TwoGroup(5, 2).String(); got != "([0-1] [2-4])" {
		t.Errorf("2group(5,2) = %q", got)
	}
}

func TestEqual(t *testing.T) {
	if !Balanced(4).Equal(Balanced(4)) {
		t.Error("identical trees unequal")
	}
	if Balanced(4).Equal(Flat(4)) {
		t.Error("different trees equal")
	}
	// At n=3, TwoGroup(3,2) and Balanced(3) coincide.
	if !TwoGroup(3, 2).Equal(Balanced(3)) {
		t.Errorf("TwoGroup(3,2)=%s, Balanced(3)=%s should coincide", TwoGroup(3, 2), Balanced(3))
	}
}

// Property: every constructor yields a valid strategy with n leaves.
func TestConstructorsValidProperty(t *testing.T) {
	f := func(nRaw, sRaw uint8) bool {
		n := 2 + int(nRaw%10)
		split := 1 + int(sRaw)%(n-1)
		for _, s := range []*Strategy{Flat(n), TwoGroup(n, split), Balanced(n)} {
			if s.Validate(n) != nil || countLeaves(s) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
