// Package coo implements the element-streaming MTTKRP baseline: for every
// nonzero, the Hadamard product of the N−1 non-target factor rows is
// accumulated into the output row selected by the target-mode index. This is
// the algorithm used by coordinate-format tensor libraries (Tensor Toolbox
// style) and is the "no reuse, no compression" end of the design space the
// paper improves on: N·(N−1)·R·nnz multiply–adds per ALS iteration.
package coo

import (
	"time"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Engine is the streaming-COO MTTKRP kernel.
type Engine struct {
	x       *tensor.COO
	workers int
	stripes *par.Stripes
	arena   *kernel.Arena
	ctr     engine.Counters
}

// New builds a COO engine over x. workers <= 0 selects GOMAXPROCS.
func New(x *tensor.COO, workers int) *Engine {
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	return &Engine{x: x, workers: workers, arena: kernel.NewArena(w, 1)}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "coo" }

// FactorUpdated implements engine.Engine; the COO kernel caches nothing.
func (e *Engine) FactorUpdated(int) {}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	var s engine.Stats
	e.ctr.Fill(&s)
	return s
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ctr.Reset() }

// Instrument implements engine.Instrumentable. The COO kernel splits
// nonzeros evenly across workers, so its chunk-imbalance gauge is the
// definitional 1.0 — exported anyway so dashboards see every engine on the
// same axis.
func (e *Engine) Instrument(_ *obs.Tracer, reg *obs.Registry) {
	if reg == nil {
		return
	}
	engine.RegisterCommonMetrics(reg, e.Name(), &e.ctr)
	l := obs.Labels{"engine": e.Name()}
	reg.GaugeFunc("adatm_kernel_arena_bytes",
		"Per-worker scratch arena backing bytes.", l,
		func() float64 { return float64(e.arena.Bytes()) })
	reg.CounterFunc("adatm_kernel_arena_grows_total",
		"Arena backing-store reallocations.", l,
		func() float64 { return float64(e.arena.Grows()) })
	reg.GaugeFunc("adatm_par_chunk_imbalance_ratio",
		"Worst heaviest-chunk/ideal-share ratio of the weighted schedules.", l,
		func() float64 { return 1 })
}

// ensureStripes sizes the scatter lock pool from the actual output height
// (next power of two, capped at 8192). Output heights differ per mode, so
// the pool grows lazily to the largest mode seen; regrowth only ever
// happens on the single-threaded entry path.
func (e *Engine) ensureStripes(rows int) {
	if e.stripes == nil || (e.stripes.Len() < rows && e.stripes.Len() < 8192) {
		e.stripes = par.StripesFor(rows)
	}
}

// MTTKRP implements engine.Engine. Parallelizes over nonzero blocks; output
// rows are protected by striped locks since distinct nonzeros may target the
// same row.
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.x.Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	x := e.x
	n := x.Order()
	r := out.Cols
	e.ensureStripes(out.Rows)
	e.arena.EnsureRank(r)
	out.Zero()
	target := x.Inds[mode]
	stripes := e.stripes
	par.ForWorker(x.NNZ(), e.workers, func(worker, lo, hi int) {
		row := e.arena.Buf(worker, 0)
		for k := lo; k < hi; k++ {
			// Fold the first non-target factor row in with the value
			// broadcast, then Hadamard-multiply the remaining rows.
			first := true
			for m := 0; m < n; m++ {
				if m == mode {
					continue
				}
				f := factors[m].Row(int(x.Inds[m][k]))
				if first {
					kernel.Scale(row, f, x.Vals[k])
					first = false
				} else {
					kernel.MulInto(row, f)
				}
			}
			if first { // degenerate order-1 tensor: bare value broadcast
				for j := range row {
					row[j] = x.Vals[k]
				}
			}
			i := target[k]
			stripes.Lock(i)
			kernel.AddInto(out.Row(int(i)), row)
			stripes.Unlock(i)
		}
		e.ctr.AddOps(int64(hi-lo) * int64(n) * int64(r))
	})
	e.ctr.Observe(start)
	return nil
}

var _ engine.Engine = (*Engine)(nil)
