// Package coo implements the element-streaming MTTKRP baseline: for every
// nonzero, the Hadamard product of the N−1 non-target factor rows is
// accumulated into the output row selected by the target-mode index. This is
// the algorithm used by coordinate-format tensor libraries (Tensor Toolbox
// style) and is the "no reuse, no compression" end of the design space the
// paper improves on: N·(N−1)·R·nnz multiply–adds per ALS iteration.
package coo

import (
	"time"

	"adatm/internal/accum"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/kernel"
	"adatm/internal/obs"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Engine is the streaming-COO MTTKRP kernel.
type Engine struct {
	x       *tensor.COO
	workers int
	stripes *par.Stripes
	arena   *kernel.Arena
	res     *accum.Resolver
	pool    *accum.Pool
	ctr     engine.Counters
	// body is the bound worker body (allocated once so MTTKRP passes a stored
	// func value, not a per-call closure — the zero-alloc steady state); the
	// cur* fields are its call-scoped inputs, set before the parallel region
	// and cleared after.
	body       func(worker, lo, hi int)
	curMode    int
	curFactors []*dense.Matrix
	curOut     *dense.Matrix
	curPool    *accum.Pool
}

// New builds a COO engine over x. workers <= 0 selects GOMAXPROCS. The
// accumulation backend is model-resolved per mode (accum.Auto).
func New(x *tensor.COO, workers int) *Engine {
	return NewWithAccum(x, workers, accum.Config{})
}

// NewWithAccum is New with an explicit accumulation policy.
func NewWithAccum(x *tensor.COO, workers int, cfg accum.Config) *Engine {
	w := workers
	if w <= 0 {
		w = par.MaxWorkers()
	}
	e := &Engine{
		x:       x,
		workers: workers,
		arena:   kernel.NewArena(w, 1),
		res:     accum.NewResolver(x.Order(), cfg),
		pool:    accum.NewPool(w),
	}
	e.body = e.runChunk
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "coo" }

// FactorUpdated implements engine.Engine; the COO kernel caches nothing.
func (e *Engine) FactorUpdated(int) {}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	var s engine.Stats
	e.ctr.Fill(&s)
	return s
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ctr.Reset() }

// Instrument implements engine.Instrumentable. The COO kernel splits
// nonzeros evenly across workers, so its chunk-imbalance gauge is the
// definitional 1.0 — exported anyway so dashboards see every engine on the
// same axis.
func (e *Engine) Instrument(_ *obs.Tracer, reg *obs.Registry) {
	if reg == nil {
		return
	}
	engine.RegisterCommonMetrics(reg, e.Name(), &e.ctr)
	l := obs.Labels{"engine": e.Name()}
	reg.GaugeFunc("adatm_kernel_arena_bytes",
		"Per-worker scratch arena backing bytes.", l,
		func() float64 { return float64(e.arena.Bytes()) })
	reg.CounterFunc("adatm_kernel_arena_grows_total",
		"Arena backing-store reallocations.", l,
		func() float64 { return float64(e.arena.Grows()) })
	reg.GaugeFunc("adatm_par_chunk_imbalance_ratio",
		"Worst heaviest-chunk/ideal-share ratio of the weighted schedules.", l,
		func() float64 { return 1 })
	engine.RegisterAccumMetrics(reg, e.Name(), e.x.Order(), e.res, e.pool)
}

// MTTKRP implements engine.Engine. Parallelizes over nonzero blocks; output
// rows are accumulated through the mode's resolved backend — striped-lock
// scatter into the shared output, or per-worker private copies folded by a
// parallel reduction (see internal/accum).
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(e.x.Dims, mode, factors, out); err != nil {
		return err
	}
	start := time.Now()
	x := e.x
	r := out.Cols
	e.arena.EnsureRank(r)
	workers := e.workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	var pool *accum.Pool
	if e.res.Resolve(mode, out.Rows, int64(x.NNZ()), r, workers) == accum.Privatize {
		pool = e.pool
		pool.Begin(out.Rows, r)
	} else {
		e.stripes = par.EnsureStripes(e.stripes, out.Rows)
		out.Zero()
	}
	e.curMode, e.curFactors, e.curOut, e.curPool = mode, factors, out, pool
	par.ForWorker(x.NNZ(), e.workers, e.body)
	e.curFactors, e.curOut, e.curPool = nil, nil, nil
	if pool != nil {
		pool.Reduce(out, workers)
	}
	e.ctr.Observe(start)
	return nil
}

// runChunk streams nonzeros [lo, hi) through the Hadamard kernel and
// accumulates them into the output — privatized copy when curPool is set,
// striped-lock scatter otherwise.
func (e *Engine) runChunk(worker, lo, hi int) {
	x := e.x
	mode, factors, out := e.curMode, e.curFactors, e.curOut
	n := x.Order()
	target := x.Inds[mode]
	stripes := e.stripes
	row := e.arena.Buf(worker, 0)
	var priv *dense.Matrix
	if e.curPool != nil {
		priv = e.curPool.Acquire(worker)
	}
	for k := lo; k < hi; k++ {
		// Fold the first non-target factor row in with the value broadcast,
		// then Hadamard-multiply the remaining rows.
		first := true
		for m := 0; m < n; m++ {
			if m == mode {
				continue
			}
			f := factors[m].Row(int(x.Inds[m][k]))
			if first {
				kernel.Scale(row, f, x.Vals[k])
				first = false
			} else {
				kernel.MulInto(row, f)
			}
		}
		if first { // degenerate order-1 tensor: bare value broadcast
			for j := range row {
				row[j] = x.Vals[k]
			}
		}
		i := target[k]
		if priv != nil {
			kernel.AddInto(priv.Row(int(i)), row)
		} else {
			stripes.Lock(i)
			kernel.AddInto(out.Row(int(i)), row)
			stripes.Unlock(i)
		}
	}
	e.ctr.AddOps(int64(hi-lo) * int64(n) * int64(len(row)))
}

var _ engine.Engine = (*Engine)(nil)
