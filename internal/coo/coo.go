// Package coo implements the element-streaming MTTKRP baseline: for every
// nonzero, the Hadamard product of the N−1 non-target factor rows is
// accumulated into the output row selected by the target-mode index. This is
// the algorithm used by coordinate-format tensor libraries (Tensor Toolbox
// style) and is the "no reuse, no compression" end of the design space the
// paper improves on: N·(N−1)·R·nnz multiply–adds per ALS iteration.
package coo

import (
	"sync/atomic"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Engine is the streaming-COO MTTKRP kernel.
type Engine struct {
	x       *tensor.COO
	workers int
	stripes *par.Stripes
	ops     atomic.Int64
}

// New builds a COO engine over x. workers <= 0 selects GOMAXPROCS.
func New(x *tensor.COO, workers int) *Engine {
	return &Engine{x: x, workers: workers, stripes: par.NewStripes(1024)}
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "coo" }

// FactorUpdated implements engine.Engine; the COO kernel caches nothing.
func (e *Engine) FactorUpdated(int) {}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{HadamardOps: e.ops.Load()}
}

// ResetStats implements engine.Engine.
func (e *Engine) ResetStats() { e.ops.Store(0) }

// MTTKRP implements engine.Engine. Parallelizes over nonzero blocks; output
// rows are protected by striped locks since distinct nonzeros may target the
// same row.
func (e *Engine) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) {
	x := e.x
	n := x.Order()
	r := out.Cols
	if out.Rows != x.Dims[mode] {
		panic("coo: MTTKRP output row count mismatch")
	}
	out.Zero()
	target := x.Inds[mode]
	par.ForRange(x.NNZ(), e.workers, func(lo, hi int) {
		row := make([]float64, r)
		for k := lo; k < hi; k++ {
			v := x.Vals[k]
			for j := range row {
				row[j] = v
			}
			for m := 0; m < n; m++ {
				if m == mode {
					continue
				}
				f := factors[m].Row(int(x.Inds[m][k]))
				for j := range row {
					row[j] *= f[j]
				}
			}
			i := target[k]
			e.stripes.Lock(i)
			o := out.Row(int(i))
			for j := range row {
				o[j] += row[j]
			}
			e.stripes.Unlock(i)
		}
		e.ops.Add(int64(hi-lo) * int64(n) * int64(r))
	})
}

var _ engine.Engine = (*Engine)(nil)
