package coo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/dense"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func randomFactors(x *tensor.COO, r int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*dense.Matrix, x.Order())
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], r, rng)
	}
	return fs
}

func TestMTTKRPMatchesDenseReference(t *testing.T) {
	x := tensor.RandomUniform(3, 8, 60, 1)
	fs := randomFactors(x, 5, 2)
	e := New(x, 2)
	for mode := 0; mode < 3; mode++ {
		out := dense.New(x.Dims[mode], 5)
		e.MTTKRP(mode, fs, out)
		want := ref.MTTKRP(x, mode, fs)
		if d := out.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("mode %d: max diff %g vs dense reference", mode, d)
		}
	}
}

func TestMTTKRPMatchesSparseReferenceHigherOrder(t *testing.T) {
	for _, order := range []int{3, 4, 5, 6} {
		x := tensor.RandomClustered(order, 20, 500, 0.8, int64(order))
		fs := randomFactors(x, 8, int64(order)*7)
		e := New(x, 4)
		for mode := 0; mode < order; mode++ {
			out := dense.New(x.Dims[mode], 8)
			e.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("order %d mode %d: max diff %g", order, mode, d)
			}
		}
	}
}

func TestMTTKRPOverwritesOutput(t *testing.T) {
	x := tensor.RandomUniform(3, 6, 40, 3)
	fs := randomFactors(x, 4, 4)
	e := New(x, 1)
	out := dense.New(x.Dims[0], 4)
	out.Fill(1e9) // stale garbage must be cleared
	e.MTTKRP(0, fs, out)
	want := ref.MTTKRPSparse(x, 0, fs)
	if d := out.MaxAbsDiff(want); d > 1e-8 {
		t.Errorf("stale output leaked through: diff %g", d)
	}
}

func TestParallelConsistency(t *testing.T) {
	x := tensor.RandomClustered(4, 15, 2000, 1.0, 9)
	fs := randomFactors(x, 16, 10)
	seq := New(x, 1)
	parl := New(x, 8)
	for mode := 0; mode < 4; mode++ {
		a := dense.New(x.Dims[mode], 16)
		b := dense.New(x.Dims[mode], 16)
		seq.MTTKRP(mode, fs, a)
		parl.MTTKRP(mode, fs, b)
		if d := a.MaxAbsDiff(b); d > 1e-9 {
			t.Errorf("mode %d: parallel differs from sequential by %g", mode, d)
		}
	}
}

func TestStatsCount(t *testing.T) {
	x := tensor.RandomUniform(3, 10, 100, 11)
	fs := randomFactors(x, 4, 12)
	e := New(x, 1)
	out := dense.New(x.Dims[0], 4)
	e.MTTKRP(0, fs, out)
	wantOps := int64(x.NNZ()) * 3 * 4 // N·R per nonzero
	if got := e.Stats().HadamardOps; got != wantOps {
		t.Errorf("ops = %d, want %d", got, wantOps)
	}
	e.ResetStats()
	if e.Stats().HadamardOps != 0 {
		t.Error("ResetStats did not zero the counter")
	}
}

func TestWrongOutputShapeErrors(t *testing.T) {
	x := tensor.RandomUniform(3, 6, 20, 13)
	fs := randomFactors(x, 4, 14)
	e := New(x, 1)
	if err := e.MTTKRP(0, fs, dense.New(x.Dims[0]+1, 4)); err == nil {
		t.Fatal("want error for wrong output shape")
	}
}

// Property: MTTKRP is linear in the tensor values — scaling all nonzeros by
// c scales the result by c.
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		c := float64(cRaw%10) + 0.5
		x := tensor.RandomUniform(3, 6, 50, seed)
		fs := randomFactors(x, 3, seed+1)
		e := New(x, 2)
		a := dense.New(x.Dims[1], 3)
		e.MTTKRP(1, fs, a)
		y := x.Clone()
		for k := range y.Vals {
			y.Vals[k] *= c
		}
		e2 := New(y, 2)
		b := dense.New(y.Dims[1], 3)
		e2.MTTKRP(1, fs, b)
		a.Scale(c)
		return a.MaxAbsDiff(b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
