package accum

import (
	"sync/atomic"
	"time"

	"adatm/internal/dense"
	"adatm/internal/kernel"
	"adatm/internal/par"
)

// reduceTileFloats sizes the row tiles of the parallel reduction: each
// worker streams every live partial through one output tile before moving
// on, so the tile (≈32 KiB) stays cache-resident across the W passes.
const reduceTileFloats = 4096

// Pool is the privatized-accumulation buffer set: one rows×R output copy
// per worker, backed by a single allocation that is sized once and reused
// across every MTTKRP call of an engine (zero-alloc steady state, like
// kernel.Arena). A call cycle is:
//
//	pool.Begin(out.Rows, r)            // single-threaded kernel entry
//	m := pool.Acquire(worker)          // inside the parallel region
//	... kernel.AddInto(m.Row(i), row)  // lock-free scatter into the copy
//	pool.Reduce(out, workers)          // single-threaded kernel exit
//
// Acquire zeroes a worker's copy lazily on its first acquisition of the
// call (stamped by an epoch), so idle workers cost nothing and Reduce folds
// only the copies that were actually written.
type Pool struct {
	workers int
	rows, r int
	epoch   uint64
	data    []float64
	mats    []dense.Matrix
	// live[w] == epoch marks worker w's copy as written this call. Distinct
	// workers write distinct entries inside the parallel region; Reduce
	// reads them after the region's barrier.
	live    []uint64
	liveIDs []int
	// redBody is the bound reduction body (allocated once at construction so
	// Reduce passes a stored func value, not a fresh closure); redOut and
	// redTile are its call-scoped inputs, set by Reduce before the parallel
	// region and cleared after.
	redBody func(lo, hi int)
	redOut  *dense.Matrix
	redTile int
	// bytes mirrors cap(data)*8 and grows counts backing reallocations,
	// atomically: a /metrics scrape reads them mid-run. reduceNS accumulates
	// wall time inside Reduce — the overhead the privatized path pays for
	// dropping the locks.
	bytes    atomic.Int64
	grows    atomic.Int64
	reduceNS atomic.Int64
}

// NewPool creates a pool for the given worker count (minimum 1). The
// backing store is allocated lazily by the first Begin.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		mats:    make([]dense.Matrix, workers),
		live:    make([]uint64, workers),
		liveIDs: make([]int, 0, workers),
	}
	p.redBody = p.reduceRange
	return p
}

// Workers returns the worker count the pool was sized for.
func (p *Pool) Workers() int { return p.workers }

// Begin opens an accumulation call over a rows×r output. Must be called
// from the single-threaded kernel entry. Growing past the backing store's
// capacity reallocates; shrinking or repeating a shape only re-slices.
func (p *Pool) Begin(rows, r int) {
	if rows != p.rows || r != p.r {
		need := p.workers * rows * r
		if need <= cap(p.data) {
			p.data = p.data[:need]
		} else {
			p.data = make([]float64, need)
			p.bytes.Store(int64(cap(p.data)) * 8)
			p.grows.Add(1)
		}
		stride := rows * r
		for w := 0; w < p.workers; w++ {
			p.mats[w] = dense.Matrix{Rows: rows, Cols: r, Data: p.data[w*stride : (w+1)*stride : (w+1)*stride]}
		}
		p.rows, p.r = rows, r
	}
	p.epoch++
}

// Acquire returns worker w's private output copy, zeroing it on the first
// acquisition of the current call. Safe to call concurrently for distinct
// workers, and repeatedly (e.g. once per dynamic chunk) for the same worker.
func (p *Pool) Acquire(w int) *dense.Matrix {
	m := &p.mats[w]
	if p.live[w] != p.epoch {
		clear(m.Data)
		p.live[w] = p.epoch
	}
	return m
}

// Reduce folds the copies written since Begin into out (fully overwriting
// it): out.Row(i) = Σ_w partial_w.Row(i), computed as a parallel reduction
// over cache-sized row tiles — each worker owns a contiguous row block, and
// within it streams every live partial through one ~32 KiB tile at a time.
// out must be the rows×r shape Begin was opened with.
func (p *Pool) Reduce(out *dense.Matrix, workers int) {
	start := time.Now()
	ids := p.liveIDs[:0]
	for w := 0; w < p.workers; w++ {
		if p.live[w] == p.epoch {
			ids = append(ids, w)
		}
	}
	p.liveIDs = ids
	if len(ids) == 0 {
		out.Zero()
		p.reduceNS.Add(time.Since(start).Nanoseconds())
		return
	}
	tileRows := reduceTileFloats / p.r
	if tileRows < 1 {
		tileRows = 1
	}
	p.redOut, p.redTile = out, tileRows
	par.ForRange(p.rows, workers, p.redBody)
	p.redOut = nil
	p.reduceNS.Add(time.Since(start).Nanoseconds())
}

// reduceRange folds rows [lo, hi) of every live partial into the output, one
// cache tile at a time: the first partial is copied, the rest added.
func (p *Pool) reduceRange(lo, hi int) {
	out, ids, r, tileRows := p.redOut, p.liveIDs, p.r, p.redTile
	for t0 := lo; t0 < hi; t0 += tileRows {
		t1 := t0 + tileRows
		if t1 > hi {
			t1 = hi
		}
		o := out.Data[t0*r : t1*r]
		copy(o, p.mats[ids[0]].Data[t0*r:t1*r])
		for _, w := range ids[1:] {
			kernel.AddInto(o, p.mats[w].Data[t0*r:t1*r])
		}
	}
}

// Bytes reports the backing storage size of the pool. Safe to call from a
// metrics scrape concurrent with Begin.
func (p *Pool) Bytes() int64 { return p.bytes.Load() }

// Grows reports how many times Begin reallocated the backing store — the
// steady state grows once per (rows, r) high-water mark.
func (p *Pool) Grows() int64 { return p.grows.Load() }

// ReduceNS reports cumulative wall time spent inside Reduce, in
// nanoseconds. Safe to call concurrently.
func (p *Pool) ReduceNS() int64 { return p.reduceNS.Load() }
