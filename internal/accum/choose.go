package accum

// Analytical model of the accumulation backends. The terms follow the same
// roofline style as internal/model's time model: compute scaled by
// NsPerOp, streamed bytes by NsPerByte, plus a lock-traffic term for the
// striped scatter. The absolute numbers only matter up to the ratio between
// the two backends, so uncalibrated DefaultCosts rank correctly on any
// recent hardware; callers that already calibrated the roofline model can
// substitute its coefficients (model.Coeffs.AccumCosts).

// Costs are the machine coefficients of the accumulation model.
type Costs struct {
	// NsPerOp is nanoseconds per scalar multiply–add on a factor row.
	NsPerOp float64
	// NsPerByte is nanoseconds per byte of streaming memory traffic.
	NsPerByte float64
	// NsPerLock is nanoseconds per uncontended mutex lock/unlock pair.
	NsPerLock float64
}

// DefaultCosts are conservative constants for contemporary x86/ARM server
// cores. Only the ratios matter for the scatter-vs-privatize decision.
var DefaultCosts = Costs{NsPerOp: 0.5, NsPerByte: 0.06, NsPerLock: 20}

// normalize fills zero coefficients from DefaultCosts so a partially
// calibrated Costs never divides the model by zero.
func (c Costs) normalize() Costs {
	if c.NsPerOp <= 0 {
		c.NsPerOp = DefaultCosts.NsPerOp
	}
	if c.NsPerByte <= 0 {
		c.NsPerByte = DefaultCosts.NsPerByte
	}
	if c.NsPerLock <= 0 {
		c.NsPerLock = DefaultCosts.NsPerLock
	}
	return c
}

// Input describes one (engine, mode) accumulation problem.
type Input struct {
	// Rows is the output height of the target mode (dims[mode]).
	Rows int
	// NNZ is the number of row accumulations streamed into the output: the
	// tensor's nonzeros for element-streaming engines, the leaf reduction
	// entries for the memoized engine.
	NNZ int64
	// Rank is R, the accumulated row length.
	Rank int
	// Workers is the parallel width of the kernel.
	Workers int
	// LockFree marks engines whose baseline scatter needs no locks because
	// distinct schedulable units own distinct output rows (the memoized
	// leaf contraction): its scatter cost is parallelism starvation on
	// short modes rather than lock traffic.
	LockFree bool
	// Budget is the byte budget available for the privatized footprint
	// (typically the memory budget minus the engine's predicted auxiliary
	// bytes); <= 0 means unbounded.
	Budget int64
}

// Choice is the model's verdict for one Input: the picked strategy plus the
// evidence, so the audit layer can replay the decision.
type Choice struct {
	Strategy Strategy `json:"strategy"`
	// ScatterNS and PrivatizeNS are the predicted wall nanoseconds the
	// accumulation layer adds to one MTTKRP call under each backend.
	ScatterNS   float64 `json:"scatter_ns"`
	PrivatizeNS float64 `json:"privatize_ns"`
	// FootprintBytes is the privatized pool size workers·rows·R·8.
	FootprintBytes int64 `json:"footprint_bytes"`
	// Feasible reports the footprint fit the budget; when false the scatter
	// is forced regardless of the time forecast.
	Feasible bool `json:"feasible"`
}

// maxStripes mirrors par.StripesFor's cap (kept as a plain constant so the
// model does not depend on par).
const maxStripes = 8192

// stripesFor predicts the stripe count par.StripesFor gives rows output
// rows: next power of two, capped, minimum 1.
func stripesFor(rows int) int {
	n := 1
	for n < rows && n < maxStripes {
		n <<= 1
	}
	return n
}

// Choose evaluates the accumulation model for one (engine, mode) problem.
//
// Scatter: every accumulation pays the R-row add plus (unless LockFree) a
// lock pair inflated by the expected contention 1 + (P−1)/S on S stripes;
// the parallel width is clamped to the stripe count (short modes collapse
// the stripes and serialize the scatter). LockFree engines instead clamp
// the width to the distinct output rows — their scatter parallelism cannot
// exceed the number of reduction groups.
//
// Privatize: the same adds run lock-free at full width, plus each worker
// zeroes its private copy (rows·R·8 bytes, concurrent across workers) and
// the W partials are parallel-reduced into the output (W·rows·R flops and
// 8·(W+1)·rows·R bytes of traffic across P workers).
func Choose(in Input, c Costs) Choice {
	c = c.normalize()
	rows, r := float64(in.Rows), float64(in.Rank)
	if in.Rows < 1 || in.Rank < 1 || in.NNZ < 1 {
		return Choice{Strategy: Scatter, Feasible: true}
	}
	p := float64(in.Workers)
	if p < 1 {
		p = 1
	}
	nnz := float64(in.NNZ)
	addNS := r * c.NsPerOp // the in-loop R-row accumulate

	var scatterNS float64
	if in.LockFree {
		width := p
		if rows < width {
			width = rows
		}
		scatterNS = nnz * addNS / width
	} else {
		s := float64(stripesFor(in.Rows))
		width := p
		if s < width {
			width = s
		}
		contention := 1 + (p-1)/s
		scatterNS = nnz * (addNS + c.NsPerLock*contention) / width
	}

	w := p // one private copy per worker
	copyBytes := rows * r * 8
	privatizeNS := nnz*addNS/p + // lock-free scatter at full width
		copyBytes*c.NsPerByte + // per-worker zeroing, concurrent
		(w*rows*r*c.NsPerOp+(w+1)*copyBytes*c.NsPerByte)/p // tiled reduction

	foot := int64(in.Workers)
	if foot < 1 {
		foot = 1
	}
	foot *= int64(in.Rows) * int64(in.Rank) * 8
	ch := Choice{
		ScatterNS:      scatterNS,
		PrivatizeNS:    privatizeNS,
		FootprintBytes: foot,
		Feasible:       in.Budget <= 0 || foot <= in.Budget,
	}
	if ch.Feasible && privatizeNS < scatterNS {
		ch.Strategy = Privatize
	} else {
		ch.Strategy = Scatter
	}
	return ch
}
