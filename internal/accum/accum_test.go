package accum

import (
	"encoding/json"
	"math/rand"
	"testing"

	"adatm/internal/dense"
)

func TestStrategyParseStringRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Auto, Scatter, Privatize} {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Fatalf("Parse(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if s, err := Parse(""); err != nil || s != Auto {
		t.Fatalf("Parse(\"\") = %v, %v; want Auto", s, err)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse(\"bogus\") succeeded; want error")
	}
}

func TestStrategyJSON(t *testing.T) {
	b, err := json.Marshal(Privatize)
	if err != nil || string(b) != `"privatize"` {
		t.Fatalf("Marshal(Privatize) = %s, %v", b, err)
	}
	var s Strategy
	if err := json.Unmarshal([]byte(`"scatter"`), &s); err != nil || s != Scatter {
		t.Fatalf("Unmarshal scatter = %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`7`), &s); err == nil {
		t.Fatal("Unmarshal of a number succeeded; want error")
	}
}

// TestPoolReduce checks the privatized cycle end to end: partial sums written
// by a subset of workers must fold into exactly their element-wise sum, with
// stale data from earlier epochs ignored.
func TestPoolReduce(t *testing.T) {
	const workers, rows, r = 4, 37, 9
	p := NewPool(workers)
	out := dense.New(rows, r)

	// Epoch 1: all workers write garbage so epoch 2 must re-zero.
	p.Begin(rows, r)
	for w := 0; w < workers; w++ {
		m := p.Acquire(w)
		for i := range m.Data {
			m.Data[i] = -1e9
		}
	}
	p.Reduce(out, workers)

	// Epoch 2: only workers 1 and 3 participate.
	p.Begin(rows, r)
	rng := rand.New(rand.NewSource(42))
	want := make([]float64, rows*r)
	for _, w := range []int{1, 3} {
		m := p.Acquire(w)
		for i := range m.Data {
			v := rng.Float64()
			m.Data[i] = v
			want[i] += v
		}
	}
	p.Reduce(out, workers)
	for i, v := range out.Data {
		if diff := v - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("out[%d] = %g, want %g", i, v, want[i])
		}
	}

	// Epoch 3: nobody writes — Reduce must zero the output.
	out.Data[0] = 123
	p.Begin(rows, r)
	p.Reduce(out, workers)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("idle-epoch out[%d] = %g, want 0", i, v)
		}
	}
}

// TestPoolRegrow pins the arena behaviour: growing reallocates once, and
// shrinking or repeating a shape reuses the backing store.
func TestPoolRegrow(t *testing.T) {
	p := NewPool(2)
	p.Begin(8, 4)
	if p.Grows() != 1 {
		t.Fatalf("grows after first Begin = %d, want 1", p.Grows())
	}
	p.Begin(1024, 16) // grow
	if p.Grows() != 2 {
		t.Fatalf("grows after larger Begin = %d, want 2", p.Grows())
	}
	wantBytes := p.Bytes()
	p.Begin(8, 4)     // shrink: reuse
	p.Begin(1024, 16) // high-water repeat: reuse
	if p.Grows() != 2 {
		t.Fatalf("grows after reuse = %d, want 2", p.Grows())
	}
	if p.Bytes() != wantBytes {
		t.Fatalf("bytes changed on reuse: %d != %d", p.Bytes(), wantBytes)
	}

	// Correctness across the regrow: single worker writing ones.
	out := dense.New(1024, 16)
	p.Begin(1024, 16)
	m := p.Acquire(0)
	for i := range m.Data {
		m.Data[i] = 1
	}
	p.Reduce(out, 2)
	for i, v := range out.Data {
		if v != 1 {
			t.Fatalf("out[%d] = %g, want 1", i, v)
		}
	}
}

// TestChooseCrossover pins the model's headline behaviour from the paper
// framing: short target modes privatize, tall ones scatter, and a budget
// that cannot fit the private copies forces the scatter.
func TestChooseCrossover(t *testing.T) {
	short := Input{Rows: 16, NNZ: 1 << 20, Rank: 16, Workers: 8}
	if ch := Choose(short, Costs{}); ch.Strategy != Privatize {
		t.Fatalf("short mode chose %v (scatter=%.0fns privatize=%.0fns); want privatize",
			ch.Strategy, ch.ScatterNS, ch.PrivatizeNS)
	}
	tall := Input{Rows: 1 << 20, NNZ: 1 << 20, Rank: 16, Workers: 8}
	if ch := Choose(tall, Costs{}); ch.Strategy != Scatter {
		t.Fatalf("tall mode chose %v (scatter=%.0fns privatize=%.0fns); want scatter",
			ch.Strategy, ch.ScatterNS, ch.PrivatizeNS)
	}
	// Same short mode but a budget below the 16×16×8×8-byte footprint.
	tight := short
	tight.Budget = 1024
	if ch := Choose(tight, Costs{}); ch.Strategy != Scatter || ch.Feasible {
		t.Fatalf("budget-bound mode chose %v feasible=%v; want scatter, infeasible",
			ch.Strategy, ch.Feasible)
	}
	// Lock-free engines (memo leaf) privatize only when the mode starves
	// their row-parallel scatter (rows < workers): the win is parallel
	// width, not lock elision.
	lf := Input{Rows: 4, NNZ: 1 << 20, Rank: 16, Workers: 8, LockFree: true}
	if ch := Choose(lf, Costs{}); ch.Strategy != Privatize {
		t.Fatalf("lock-free starved mode chose %v (scatter=%.0fns privatize=%.0fns); want privatize",
			ch.Strategy, ch.ScatterNS, ch.PrivatizeNS)
	}
	wide := lf
	wide.Rows = 1 << 16
	if ch := Choose(wide, Costs{}); ch.Strategy != Scatter {
		t.Fatalf("lock-free wide mode chose %v; want scatter", ch.Strategy)
	}
}

func TestResolverCachingAndOverrides(t *testing.T) {
	// Forced strategy wins over everything.
	r := NewResolver(3, Config{Strategy: Privatize})
	if s := r.Resolve(0, 1<<20, 1<<20, 16, 8); s != Privatize {
		t.Fatalf("forced resolve = %v, want privatize", s)
	}
	// Per-mode table wins over the model.
	r = NewResolver(3, Config{PerMode: []Strategy{Scatter, Privatize, Auto}})
	if s := r.Resolve(1, 1<<20, 1<<20, 16, 8); s != Privatize {
		t.Fatalf("per-mode resolve = %v, want privatize", s)
	}
	// Auto entry falls through to the model and caches per rank.
	if s := r.Resolve(2, 16, 1<<20, 16, 8); s != Privatize {
		t.Fatalf("auto short-mode resolve = %v, want privatize", s)
	}
	if s := r.Resolved(2); s != Privatize {
		t.Fatalf("Resolved(2) = %v, want privatize", s)
	}
	// A rank change re-evaluates rather than serving the stale entry.
	if s := r.Resolve(2, 16, 1<<20, 32, 8); s != Privatize {
		t.Fatalf("rank-change resolve = %v, want privatize", s)
	}
	if s := r.Resolved(0); s != Scatter {
		t.Fatalf("Resolved(0) = %v, want scatter (per-mode pin)", s)
	}
	if s := r.Resolved(2); s != Privatize {
		t.Fatalf("Resolved(2) after rank change = %v, want privatize", s)
	}
}
