package accum

import "sync/atomic"

// Config carries an engine's accumulation policy. The zero value means
// "Auto everywhere with default costs and no budget", so engines that are
// constructed without explicit options keep working.
type Config struct {
	// Strategy forces one backend for every mode; Auto defers to PerMode
	// and then the cost model.
	Strategy Strategy
	// PerMode, when non-nil, pins a strategy per target mode (the
	// plan-time table from model.Plan.Accum). Entries equal to Auto fall
	// through to the cost model.
	PerMode []Strategy
	// Workers is the parallel width the engine runs its kernels with
	// (<= 0 means par.MaxWorkers at resolve time, supplied by the caller).
	Workers int
	// LockFree marks engines whose scatter baseline takes no locks (memo
	// leaf contraction); see Input.LockFree.
	LockFree bool
	// Costs are the model coefficients; zero fields fall back to
	// DefaultCosts.
	Costs Costs
	// Budget bounds the privatized footprint in bytes; <= 0 is unbounded.
	Budget int64
}

// Resolver answers "which backend for this mode at this rank?" at kernel
// entry. Auto decisions are cached per mode keyed by the rank they were
// made for, in atomics, so a /metrics scrape can read the resolved table
// while kernels run.
type Resolver struct {
	cfg Config
	// cached[m] packs (rank<<2 | strategy+1); 0 means unresolved. A rank
	// change (rare — between decompositions) just re-evaluates the model.
	cached []atomic.Int32
}

// NewResolver builds a resolver for an engine with nmodes target modes.
func NewResolver(nmodes int, cfg Config) *Resolver {
	return &Resolver{cfg: cfg, cached: make([]atomic.Int32, nmodes)}
}

// Workers reports the configured parallel width (may be <= 0 for default).
func (r *Resolver) Workers() int { return r.cfg.Workers }

// Resolve picks the backend for one MTTKRP call: forced strategy first,
// then the plan's per-mode table, then the cached or freshly evaluated
// cost model. workers is the effective parallel width of this call.
func (r *Resolver) Resolve(mode, rows int, nnz int64, rank, workers int) Strategy {
	if s := r.cfg.Strategy; s != Auto {
		return s
	}
	if pm := r.cfg.PerMode; mode < len(pm) {
		if s := pm[mode]; s != Auto {
			return s
		}
	}
	if mode >= len(r.cached) {
		// Defensive: unknown mode, evaluate without caching.
		return r.choose(rows, nnz, rank, workers).Strategy
	}
	if v := r.cached[mode].Load(); v != 0 && int(v>>2) == rank {
		return Strategy(v&3) - 1
	}
	s := r.choose(rows, nnz, rank, workers).Strategy
	r.cached[mode].Store(int32(rank)<<2 | int32(s+1))
	return s
}

// Resolved reports the backend mode resolved to on its last kernel entry,
// or Auto if the mode has not run yet. Safe to call concurrently with
// Resolve (metrics gauges read this).
func (r *Resolver) Resolved(mode int) Strategy {
	if s := r.cfg.Strategy; s != Auto {
		return s
	}
	if pm := r.cfg.PerMode; mode < len(pm) {
		if s := pm[mode]; s != Auto {
			return s
		}
	}
	if mode < len(r.cached) {
		if v := r.cached[mode].Load(); v != 0 {
			return Strategy(v&3) - 1
		}
	}
	return Auto
}

func (r *Resolver) choose(rows int, nnz int64, rank, workers int) Choice {
	return Choose(Input{
		Rows:     rows,
		NNZ:      nnz,
		Rank:     rank,
		Workers:  workers,
		LockFree: r.cfg.LockFree,
		Budget:   r.cfg.Budget,
	}, r.cfg.Costs)
}
