// Package accum provides the output-accumulation backends of the parallel
// MTTKRP kernels. Every sparse engine ends its inner loop the same way: a
// length-R row is added into the output row owned by the nonzero's
// target-mode index, and distinct workers may own the same row. Two backends
// resolve that conflict:
//
//   - Scatter: workers add straight into the shared output under striped
//     locks (or lock-free where the engine guarantees distinct rows, as the
//     memoized leaf contraction does). No extra memory, but the lock pair
//     per nonzero dominates short row kernels and short target modes
//     collapse the stripes onto a handful of locks.
//
//   - Privatize: each worker accumulates into a private rows×R copy of the
//     output (arena-style, reused across iterations), and the W partials are
//     folded into the shared output afterwards by a parallel tiled
//     reduction. Lock-free scatter at the cost of W·rows·R·8 bytes of
//     footprint plus W·rows·R reduction flops.
//
// Neither backend wins everywhere — the trade is mode- and shape-dependent
// (few output rows favor privatization, tall outputs favor the scatter) —
// so the choice is made per (engine, mode) by the same analytical-model
// machinery that picks the MTTKRP algorithm: see Choose here and the
// model-layer integration in internal/model.
package accum

import "fmt"

// Strategy selects an output-accumulation backend.
type Strategy uint8

const (
	// Auto defers the choice to the cost model, per target mode.
	Auto Strategy = iota
	// Scatter accumulates into the shared output in place (striped locks,
	// or lock-free where rows are conflict-free by construction).
	Scatter
	// Privatize accumulates into per-worker private output copies and
	// parallel-reduces them into the shared output.
	Privatize
)

// String implements fmt.Stringer with the CLI spelling of the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Scatter:
		return "scatter"
	case Privatize:
		return "privatize"
	default:
		return fmt.Sprintf("accum(%d)", uint8(s))
	}
}

// Parse converts the CLI spelling ("auto", "scatter", "privatize") into a
// Strategy. The empty string means Auto.
func Parse(s string) (Strategy, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "scatter":
		return Scatter, nil
	case "privatize":
		return Privatize, nil
	default:
		return Auto, fmt.Errorf("accum: unknown strategy %q (want auto, scatter, or privatize)", s)
	}
}

// MarshalJSON renders the strategy as its string spelling, so audit records
// and /plan payloads stay human-readable.
func (s Strategy) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string spelling.
func (s *Strategy) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		v, err := Parse(string(b[1 : len(b)-1]))
		if err != nil {
			return err
		}
		*s = v
		return nil
	}
	return fmt.Errorf("accum: cannot unmarshal %q as a strategy", b)
}
