package dist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/tensor"
)

// ---------------------------------------------------------------------------
// Shards round-trip: a partition must tear the tensor into shards that
// reassemble exactly — every nonzero in exactly one shard, dims preserved,
// nnz conserved — for every partitioner and for fuzzed tensors.
// ---------------------------------------------------------------------------

// nnzKey builds a collision-free string key for one nonzero (indices + the
// exact float bits), so multiset equality catches duplicated coordinates
// with distinct values too.
func nnzKey(inds []tensor.Index, val float64) string {
	return fmt.Sprintf("%v|%016x", inds, math.Float64bits(val))
}

func nnzMultiset(x *tensor.COO) map[string]int {
	set := make(map[string]int, x.NNZ())
	idx := make([]tensor.Index, x.Order())
	for k := 0; k < x.NNZ(); k++ {
		for m := range idx {
			idx[m] = x.Inds[m][k]
		}
		set[nnzKey(idx, x.Vals[k])]++
	}
	return set
}

func checkShardsRoundTrip(t *testing.T, x *tensor.COO, p *Partition) {
	t.Helper()
	shards := Shards(x, p)
	if len(shards) != p.P {
		t.Fatalf("%s: %d shards for P=%d", p.Name, len(shards), p.P)
	}
	want := nnzMultiset(x)
	got := make(map[string]int)
	total := 0
	for q, s := range shards {
		// Shard dims must match the parent exactly so per-shard MTTKRP
		// partials align row-for-row with the global output.
		if len(s.Dims) != len(x.Dims) {
			t.Fatalf("%s shard %d: order %d vs parent %d", p.Name, q, len(s.Dims), len(x.Dims))
		}
		for m, d := range s.Dims {
			if d != x.Dims[m] {
				t.Fatalf("%s shard %d: dim[%d]=%d vs parent %d", p.Name, q, m, d, x.Dims[m])
			}
		}
		total += s.NNZ()
		for k, c := range nnzMultiset(s) {
			got[k] += c
		}
	}
	if total != x.NNZ() {
		t.Fatalf("%s: shard nnz sum %d vs parent %d", p.Name, total, x.NNZ())
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct nonzeros across shards vs %d in parent", p.Name, len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("%s: nonzero %s appears %d times across shards, %d in parent", p.Name, k, got[k], c)
		}
	}
}

func TestShardsRoundTripAllPartitioners(t *testing.T) {
	x := tensor.RandomClustered(3, 14, 900, 0.6, 620)
	for _, procs := range []int{1, 2, 5, 9} {
		for _, p := range partitioners(x, procs) {
			checkShardsRoundTrip(t, x, p)
		}
	}
}

// Fuzzed tensors: random order/dims/density, all three partitioners.
func TestShardsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(3)
		procs := 1 + rng.Intn(10)
		x := tensor.RandomClustered(order, 5+rng.Intn(12), 40+rng.Intn(400), rng.Float64(), seed)
		for _, p := range partitioners(x, procs) {
			shards := Shards(x, p)
			total := 0
			for _, s := range shards {
				total += s.NNZ()
				for m, d := range s.Dims {
					if d != x.Dims[m] {
						return false
					}
				}
			}
			if total != x.NNZ() {
				return false
			}
			// Exactly-one-shard membership via the owner array itself:
			// shard q holds precisely the nonzeros with Owner[k] == q,
			// in parent order. Verify against the loads.
			loads := p.Loads()
			for q, s := range shards {
				if s.NNZ() != loads[q] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// AnalyzeComm invariants, recomputed by brute force.
// ---------------------------------------------------------------------------

func TestAnalyzeCommInvariants(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 500, 0.6, 621)
	for _, procs := range []int{2, 4, 7} {
		for _, p := range partitioners(x, procs) {
			owners, stats := AnalyzeComm(x, p)

			// Brute-force connectivity per (mode, row).
			var totalRows int64
			var messages int64
			for m := 0; m < x.Order(); m++ {
				touch := make(map[tensor.Index]map[int32]bool)
				for k := 0; k < x.NNZ(); k++ {
					i := x.Inds[m][k]
					if touch[i] == nil {
						touch[i] = map[int32]bool{}
					}
					touch[i][p.Owner[k]] = true
				}
				// TotalRows invariant: Σ_rows (κ_i − 1).
				for _, set := range touch {
					totalRows += int64(len(set) - 1)
				}
				// Messages invariant: distinct sender→owner pairs, folds
				// only (sender ≠ owner), counted per mode.
				pairs := map[[2]int32]bool{}
				for i, set := range touch {
					own := owners.Owner[m][i]
					if !set[own] {
						t.Fatalf("%s P=%d mode %d row %d: owner %d does not touch the row", p.Name, procs, m, i, own)
					}
					for proc := range set {
						if proc != own {
							pairs[[2]int32{proc, own}] = true
						}
					}
				}
				messages += int64(len(pairs))
				// Empty rows own nothing.
				for i, o := range owners.Owner[m] {
					if touch[tensor.Index(i)] == nil && o != -1 {
						t.Fatalf("%s P=%d mode %d row %d: empty row owned by %d", p.Name, procs, m, i, o)
					}
				}
			}
			if stats.TotalRows != totalRows {
				t.Errorf("%s P=%d: TotalRows %d, brute force %d", p.Name, procs, stats.TotalRows, totalRows)
			}
			if stats.Messages != messages {
				t.Errorf("%s P=%d: Messages %d, brute force %d", p.Name, procs, stats.Messages, messages)
			}
		}
	}
}

// An explicitly empty row (a dim index no nonzero uses) must get owner −1.
func TestAnalyzeCommEmptyRowOwner(t *testing.T) {
	x := tensor.NewCOO([]int{4, 4, 4}, 2)
	x.Append([]tensor.Index{0, 0, 0}, 1.0)
	x.Append([]tensor.Index{3, 3, 3}, 2.0)
	p := &Partition{P: 2, Owner: []int32{0, 1}, Name: "manual"}
	owners, stats := AnalyzeComm(x, p)
	for m := 0; m < 3; m++ {
		for _, i := range []int{1, 2} {
			if owners.Owner[m][i] != -1 {
				t.Errorf("mode %d row %d: want owner -1, got %d", m, i, owners.Owner[m][i])
			}
		}
		if owners.Owner[m][0] != 0 || owners.Owner[m][3] != 1 {
			t.Errorf("mode %d: singleton rows must be owned by their sole toucher: %v", m, owners.Owner[m][:4])
		}
	}
	if stats.TotalRows != 0 || stats.Messages != 0 {
		t.Errorf("disjoint nonzeros need no communication: %+v", stats)
	}
}

// ---------------------------------------------------------------------------
// Partition degenerate-input regressions (ISSUE 10 satellite).
// ---------------------------------------------------------------------------

func TestImbalanceEmptyAndSparsePartitions(t *testing.T) {
	// All-empty: nnz == 0 under P=8 must be imbalance 1, not NaN.
	empty := &Partition{P: 8, Owner: nil, Name: "empty"}
	if imb := empty.Imbalance(); imb != 1 || math.IsNaN(imb) {
		t.Errorf("empty partition imbalance = %v, want 1", imb)
	}
	if loads := empty.Loads(); len(loads) != 8 {
		t.Errorf("empty partition loads = %v, want 8 zeros", loads)
	}

	// P > nnz: some shards empty, imbalance finite and ≥ 1.
	x := tensor.RandomClustered(3, 6, 5, 0.5, 622)
	for _, p := range partitioners(x, 16) {
		imb := p.Imbalance()
		if math.IsNaN(imb) || math.IsInf(imb, 0) || imb < 1 {
			t.Errorf("%s P=16 nnz=%d: imbalance %v", p.Name, x.NNZ(), imb)
		}
		checkShardsRoundTrip(t, x, p)
	}

	// Degenerate P: never panic, never divide by zero.
	broken := &Partition{P: 0, Owner: nil, Name: "p0"}
	if imb := broken.Imbalance(); imb != 1 {
		t.Errorf("P=0 imbalance = %v, want 1", imb)
	}
	if loads := broken.Loads(); len(loads) != 0 {
		t.Errorf("P=0 loads = %v, want empty", loads)
	}
}

// factorGrid ties on equal dims must resolve deterministically to the
// lowest mode index (pinned: the conformance fixtures and audit records
// depend on stable grids).
func TestFactorGridDeterministicTies(t *testing.T) {
	cases := []struct {
		procs int
		dims  []int
		want  []int
	}{
		{4, []int{10, 10, 10}, []int{2, 2, 1}},
		{8, []int{5, 5, 5}, []int{2, 2, 2}},
		{6, []int{7, 7}, []int{2, 3}},
	}
	for _, c := range cases {
		got := factorGrid(c.procs, c.dims)
		if len(got) != len(c.want) {
			t.Fatalf("factorGrid(%d,%v) = %v", c.procs, c.dims, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("factorGrid(%d,%v) = %v, want %v", c.procs, c.dims, got, c.want)
				break
			}
		}
		// And it must be a pure function: repeated calls agree.
		again := factorGrid(c.procs, c.dims)
		for i := range got {
			if got[i] != again[i] {
				t.Errorf("factorGrid(%d,%v) unstable: %v then %v", c.procs, c.dims, got, again)
				break
			}
		}
	}
}
